// lupinectl: command-line front end to the Lupine toolchain.
//
//   lupinectl build <app> [--nokml] [--tiny] [--general]   build a unikernel
//   lupinectl run <app> [--mem <MiB>]                      build + boot + run
//   lupinectl search <app>                                 derive minimal config
//   lupinectl trace <app>                                  trace-based manifest
//   lupinectl lmbench <variant>                            syscall microbench
//   lupinectl apps                                         list known apps
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/config_search.h"
#include "src/core/lupine.h"
#include "src/core/manifest_gen.h"
#include "src/kconfig/dotconfig.h"
#include "src/unikernels/linux_system.h"
#include "src/workload/app_bench.h"
#include "src/workload/lmbench.h"

using namespace lupine;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lupinectl <command> [args]\n"
               "  build <app> [--nokml] [--tiny] [--general]\n"
               "  run <app> [--mem <MiB>]\n"
               "  search <app>\n"
               "  trace <app>\n"
               "  lmbench <microvm|lupine|lupine-nokml|lupine-general>\n"
               "  apps\n");
  return 2;
}

bool HasFlag(const std::vector<std::string>& args, const char* flag) {
  for (const auto& a : args) {
    if (a == flag) {
      return true;
    }
  }
  return false;
}

int CmdBuild(const std::string& app, const std::vector<std::string>& args) {
  core::BuildOptions options;
  options.kml = !HasFlag(args, "--nokml");
  options.tiny = HasFlag(args, "--tiny");
  options.general_config = HasFlag(args, "--general");
  core::LupineBuilder builder;
  auto unikernel = builder.BuildForApp(app, options);
  if (!unikernel.ok()) {
    std::fprintf(stderr, "build failed: %s\n", unikernel.status().ToString().c_str());
    return 1;
  }
  std::printf("kernel:    %s\n", unikernel->config.name().c_str());
  std::printf("options:   %zu\n", unikernel->config.EnabledCount());
  std::printf("image:     %s\n", FormatSize(unikernel->kernel.size).c_str());
  std::printf("rootfs:    %s\n", FormatSize(unikernel->rootfs.size()).c_str());
  std::printf("\n--- init script ---\n%s", unikernel->init_script.c_str());
  return 0;
}

int CmdRun(const std::string& app, const std::vector<std::string>& args) {
  Bytes memory = 512 * kMiB;
  for (size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == "--mem") {
      memory = static_cast<Bytes>(std::stoull(args[i + 1])) * kMiB;
    }
  }
  core::LupineBuilder builder;
  auto unikernel = builder.BuildForApp(app);
  if (!unikernel.ok()) {
    std::fprintf(stderr, "build failed: %s\n", unikernel.status().ToString().c_str());
    return 1;
  }
  auto vm = unikernel->Launch(memory);
  auto result = vm->BootAndRun();
  std::printf("boot:      %s\n", FormatDuration(vm->boot_report().to_init).c_str());
  std::printf("memory:    %s peak\n", FormatSize(vm->kernel().mm().peak()).c_str());
  if (result.status.ok()) {
    std::printf("exit code: %d\n", result.exit_code);
  } else {
    std::printf("state:     %s\n", result.status.ToString().c_str());
  }
  std::printf("\n--- console ---\n%s", result.console.c_str());
  return result.status.ok() && result.exit_code != 0 ? result.exit_code : 0;
}

int CmdSearch(const std::string& app) {
  auto result = core::DeriveMinimalConfig(app);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  if (!result->success) {
    std::fprintf(stderr, "search failed after %d boots:\n%s\n", result->boots,
                 result->failure.c_str());
    return 1;
  }
  std::printf("%d boots; %zu options atop lupine-base:\n", result->boots,
              result->added_options.size());
  for (const auto& option : result->added_options) {
    std::printf("CONFIG_%s=y\n", option.c_str());
  }
  return 0;
}

int CmdTrace(const std::string& app) {
  auto result = core::GenerateManifestFromTrace(app);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("# %zu syscalls observed (%zu distinct)\n", result->syscall_events,
              result->distinct_syscalls);
  for (const auto& option : result->options) {
    std::printf("CONFIG_%s=y\n", option.c_str());
  }
  auto coverage = core::CheckLupineGeneralCoverage(result->options);
  std::printf("# lupine-general: %s\n", coverage.covered ? "covers this app" : "INSUFFICIENT");
  return 0;
}

int CmdLmbench(const std::string& variant) {
  unikernels::LinuxVariantSpec spec;
  if (variant == "microvm") {
    spec = unikernels::MicrovmSpec();
  } else if (variant == "lupine") {
    spec = unikernels::LupineSpec();
  } else if (variant == "lupine-nokml") {
    spec = unikernels::LupineNokmlSpec();
  } else if (variant == "lupine-general") {
    spec = unikernels::LupineGeneralSpec();
  } else {
    std::fprintf(stderr, "unknown variant %s\n", variant.c_str());
    return 2;
  }
  unikernels::LinuxSystem system(spec);
  auto vm = system.MakeVm("hello-world", 512 * kMiB, /*bench_rootfs=*/true);
  if (!vm.ok() || !(*vm)->Boot().ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }
  (*vm)->kernel().Run();
  auto lat = workload::MeasureSyscallLatency(**vm);
  std::printf("%s: null %.3f us, read %.3f us, write %.3f us\n", spec.name.c_str(),
              lat.null_us, lat.read_us, lat.write_us);
  return 0;
}

int CmdApps() {
  std::printf("%-16s %-8s %-22s %s\n", "name", "options", "ready line", "description");
  for (const auto& m : apps::Top20Manifests()) {
    std::printf("%-16s %-8zu %-22.22s %s\n", m.name.c_str(), m.required_options.size(),
                m.ready_line.c_str(), m.description.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  if (command == "apps") {
    return CmdApps();
  }
  if (command == "lmbench") {
    return args.empty() ? Usage() : CmdLmbench(args[0]);
  }
  if (args.empty()) {
    return Usage();
  }
  const std::string& app = args[0];
  if (command == "build") {
    return CmdBuild(app, args);
  }
  if (command == "run") {
    return CmdRun(app, args);
  }
  if (command == "search") {
    return CmdSearch(app);
  }
  if (command == "trace") {
    return CmdTrace(app);
  }
  return Usage();
}

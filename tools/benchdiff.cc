// benchdiff CLI: compare fresh BENCH_*.json artifacts against the committed
// bench/baselines/ snapshot and exit nonzero on any regression.
//
// Usage:
//   benchdiff [--baseline-dir DIR] [--rules FILE] [--verbose] CURRENT.json...
//   benchdiff --baseline BASE.json CURRENT.json
//
// In directory mode each CURRENT.json is matched to DIR/<basename>; a
// missing baseline is reported loudly but does not gate (seed it by copying
// the fresh artifact into the directory). Exit codes: 0 clean, 1 at least
// one regression, 2 usage or parse error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "tools/benchdiff_lib.h"

namespace {

using lupine::Result;
using lupine::Status;
using lupine::Err;

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status(Err::kIo, "cannot open " + path);
  }
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    text.append(buf, got);
  }
  std::fclose(file);
  return text;
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int Usage() {
  std::fprintf(stderr,
               "usage: benchdiff [--baseline-dir DIR] [--baseline FILE] [--rules FILE] "
               "[--verbose] CURRENT.json...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_dir = "bench/baselines";
  std::string baseline_file;
  std::string rules_file;
  bool verbose = false;
  std::vector<std::string> currents;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--baseline-dir") {
      const char* v = value();
      if (v == nullptr) return Usage();
      baseline_dir = v;
    } else if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) return Usage();
      baseline_file = v;
    } else if (arg == "--rules") {
      const char* v = value();
      if (v == nullptr) return Usage();
      rules_file = v;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "benchdiff: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      currents.push_back(arg);
    }
  }
  if (currents.empty()) {
    return Usage();
  }
  if (!baseline_file.empty() && currents.size() != 1) {
    std::fprintf(stderr, "benchdiff: --baseline takes exactly one CURRENT.json\n");
    return Usage();
  }

  std::vector<lupine::tools::Rule> rules;
  if (!rules_file.empty()) {
    auto text = ReadFile(rules_file);
    if (!text.ok()) {
      std::fprintf(stderr, "benchdiff: %s\n", text.status().ToString().c_str());
      return 2;
    }
    auto parsed = lupine::tools::ParseRules(*text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "benchdiff: %s: %s\n", rules_file.c_str(),
                   parsed.status().ToString().c_str());
      return 2;
    }
    rules = std::move(*parsed);
  }
  // User rules first, defaults as the backstop (first glob match wins).
  for (lupine::tools::Rule& rule : lupine::tools::DefaultRules()) {
    rules.push_back(std::move(rule));
  }

  size_t total_regressions = 0;
  size_t compared = 0;
  for (const std::string& current_path : currents) {
    const std::string base_path =
        !baseline_file.empty() ? baseline_file : baseline_dir + "/" + Basename(current_path);

    auto current_text = ReadFile(current_path);
    if (!current_text.ok()) {
      std::fprintf(stderr, "benchdiff: %s\n", current_text.status().ToString().c_str());
      return 2;
    }
    auto base_text = ReadFile(base_path);
    if (!base_text.ok()) {
      std::printf("== benchdiff: %s ==\nNO BASELINE at %s — seed it with:\n  cp %s %s\n\n",
                  Basename(current_path).c_str(), base_path.c_str(), current_path.c_str(),
                  base_path.c_str());
      continue;
    }

    auto baseline = lupine::tools::FlattenBench(*base_text);
    if (!baseline.ok()) {
      std::fprintf(stderr, "benchdiff: %s: %s\n", base_path.c_str(),
                   baseline.status().ToString().c_str());
      return 2;
    }
    auto current = lupine::tools::FlattenBench(*current_text);
    if (!current.ok()) {
      std::fprintf(stderr, "benchdiff: %s: %s\n", current_path.c_str(),
                   current.status().ToString().c_str());
      return 2;
    }

    const auto report = lupine::tools::Compare(*baseline, *current, rules);
    std::printf("%s\n",
                lupine::tools::RenderReport(Basename(current_path), report, verbose).c_str());
    total_regressions += report.regressions;
    ++compared;
  }

  if (total_regressions > 0) {
    std::printf("benchdiff: %zu regression(s) across %zu artifact(s)\n", total_regressions,
                compared);
    return 1;
  }
  std::printf("benchdiff: clean (%zu artifact(s) compared)\n", compared);
  return 0;
}

#include "tools/benchdiff_lib.h"

#include <cmath>
#include <cstdio>
#include <set>

#include "src/util/json.h"
#include "src/util/table.h"

namespace lupine::tools {

const char* DirectionName(Direction direction) {
  switch (direction) {
    case Direction::kLowerIsBetter:
      return "lower-better";
    case Direction::kHigherIsBetter:
      return "higher-better";
    case Direction::kTwoSided:
      return "two-sided";
    case Direction::kInformational:
      return "info";
  }
  return "unknown";
}

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk:
      return "ok";
    case Verdict::kImproved:
      return "IMPROVED";
    case Verdict::kRegressed:
      return "REGRESSED";
    case Verdict::kNew:
      return "new";
    case Verdict::kMissing:
      return "MISSING";
    case Verdict::kLabelMismatch:
      return "LABEL-MISMATCH";
  }
  return "unknown";
}

bool GlobMatch(std::string_view pattern, std::string_view key) {
  // Iterative '*' backtracking: the classic two-pointer match.
  size_t p = 0, k = 0;
  size_t star = std::string_view::npos, mark = 0;
  while (k < key.size()) {
    if (p < pattern.size() && (pattern[p] == key[k])) {
      ++p;
      ++k;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = k;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      k = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

std::vector<Rule> DefaultRules() {
  return {
      // Wall-clock measurements vary machine to machine: never gate.
      {"*wall_ms", Direction::kInformational, 0.0},
      {"*_per_sec", Direction::kInformational, 0.0},
      {"*_us_per_app*", Direction::kInformational, 0.0},
      {"*speedup*", Direction::kInformational, 0.0},
      {"*fleet_build_ms", Direction::kInformational, 0.0},
      // Virtual-clock timings are deterministic; a small tolerance absorbs
      // intentional cost-model tweaks while catching real drift.
      {"*makespan_ms", Direction::kLowerIsBetter, 0.10},
      {"*makespan_inflation", Direction::kLowerIsBetter, 0.10},
      {"*virtual_makespan_ms", Direction::kLowerIsBetter, 0.10},
      {"*recovery_ms", Direction::kLowerIsBetter, 0.25},
      {"*_ns", Direction::kLowerIsBetter, 0.10},
      {"*latency*", Direction::kLowerIsBetter, 0.10},
      // Outcomes where more is strictly better.
      {"*completion_rate", Direction::kHigherIsBetter, 0.02},
      {"*hit_rate", Direction::kHigherIsBetter, 0.05},
      {"*recovered", Direction::kHigherIsBetter, 0.25},
      {"*boots_per_virtual_sec", Direction::kHigherIsBetter, 0.10},
      // Everything else (counts, sizes, shapes) is deterministic under the
      // virtual clock: any drift beyond noise means behavior changed.
      {"*", Direction::kTwoSided, 0.10},
  };
}

Result<std::vector<Rule>> ParseRules(const std::string& json_text) {
  auto doc = ParseJson(json_text);
  if (!doc.ok()) {
    return doc.status();
  }
  if (!doc->is_array()) {
    return Status(Err::kInval, "rules document must be a JSON array");
  }
  std::vector<Rule> rules;
  for (const JsonValue& entry : doc->array) {
    const JsonValue* pattern = entry.Find("pattern");
    if (pattern == nullptr || !pattern->is_string()) {
      return Status(Err::kInval, "rule missing string \"pattern\"");
    }
    Rule rule;
    rule.pattern = pattern->str;
    if (const JsonValue* direction = entry.Find("direction"); direction != nullptr) {
      if (direction->str == "lower-better") {
        rule.direction = Direction::kLowerIsBetter;
      } else if (direction->str == "higher-better") {
        rule.direction = Direction::kHigherIsBetter;
      } else if (direction->str == "two-sided") {
        rule.direction = Direction::kTwoSided;
      } else if (direction->str == "informational" || direction->str == "info") {
        rule.direction = Direction::kInformational;
      } else {
        return Status(Err::kInval, "rule \"" + rule.pattern +
                                       "\": unknown direction \"" + direction->str + "\"");
      }
    }
    if (const JsonValue* threshold = entry.Find("threshold"); threshold != nullptr) {
      if (!threshold->is_number() || threshold->number < 0.0) {
        return Status(Err::kInval,
                      "rule \"" + rule.pattern + "\": threshold must be a number >= 0");
      }
      rule.threshold = threshold->number;
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

namespace {

void FlattenInto(const JsonValue& value, const std::string& path, FlatDoc& out) {
  switch (value.kind) {
    case JsonValue::Kind::kNumber:
      out.numbers[path] = value.number;
      break;
    case JsonValue::Kind::kBool:
      out.numbers[path] = value.boolean ? 1.0 : 0.0;
      break;
    case JsonValue::Kind::kString:
      out.strings[path] = value.str;
      break;
    case JsonValue::Kind::kNull:
      break;
    case JsonValue::Kind::kArray:
      for (size_t i = 0; i < value.array.size(); ++i) {
        FlattenInto(value.array[i], path + "." + std::to_string(i), out);
      }
      break;
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : value.object) {
        FlattenInto(member, path.empty() ? key : path + "." + key, out);
      }
      break;
  }
}

const Rule& MatchRule(const std::vector<Rule>& rules, const std::string& key) {
  for (const Rule& rule : rules) {
    if (GlobMatch(rule.pattern, key)) {
      return rule;
    }
  }
  static const Rule kFallback{"*", Direction::kTwoSided, 0.10};
  return kFallback;
}

}  // namespace

Result<FlatDoc> FlattenBench(const std::string& json_text) {
  auto doc = ParseJson(json_text);
  if (!doc.ok()) {
    return doc.status();
  }
  FlatDoc flat;
  FlattenInto(*doc, "", flat);
  return flat;
}

DiffReport Compare(const FlatDoc& baseline, const FlatDoc& current,
                   const std::vector<Rule>& rules) {
  DiffReport report;
  auto gate = [&report](Delta& delta) {
    if (delta.verdict == Verdict::kRegressed || delta.verdict == Verdict::kMissing ||
        delta.verdict == Verdict::kLabelMismatch) {
      ++report.regressions;
    } else if (delta.verdict == Verdict::kImproved) {
      ++report.improvements;
    }
  };

  // String identity first: a shifted row label invalidates the numbers.
  std::set<std::string> string_keys;
  for (const auto& [key, value] : baseline.strings) {
    string_keys.insert(key);
  }
  for (const auto& [key, value] : current.strings) {
    string_keys.insert(key);
  }
  for (const std::string& key : string_keys) {
    auto base = baseline.strings.find(key);
    auto cur = current.strings.find(key);
    if (base != baseline.strings.end() && cur != current.strings.end() &&
        base->second == cur->second) {
      continue;  // Identical labels carry no information in the table.
    }
    Delta delta;
    delta.key = key + " (\"" +
                (base != baseline.strings.end() ? base->second : "<absent>") + "\" -> \"" +
                (cur != current.strings.end() ? cur->second : "<absent>") + "\")";
    // An informational rule exempts a string field from identity gating
    // (e.g. determinism digests that shift with every cost-model tweak).
    delta.rule = MatchRule(rules, key);
    delta.verdict = delta.rule.direction == Direction::kInformational
                        ? Verdict::kOk
                        : Verdict::kLabelMismatch;
    gate(delta);
    report.deltas.push_back(std::move(delta));
  }

  std::set<std::string> number_keys;
  for (const auto& [key, value] : baseline.numbers) {
    number_keys.insert(key);
  }
  for (const auto& [key, value] : current.numbers) {
    number_keys.insert(key);
  }
  for (const std::string& key : number_keys) {
    Delta delta;
    delta.key = key;
    delta.rule = MatchRule(rules, key);
    auto base = baseline.numbers.find(key);
    auto cur = current.numbers.find(key);
    if (base == baseline.numbers.end()) {
      delta.current = cur->second;
      delta.verdict = Verdict::kNew;
      gate(delta);
      report.deltas.push_back(std::move(delta));
      continue;
    }
    if (cur == current.numbers.end()) {
      delta.baseline = base->second;
      delta.verdict = Verdict::kMissing;
      gate(delta);
      report.deltas.push_back(std::move(delta));
      continue;
    }
    delta.baseline = base->second;
    delta.current = cur->second;
    const double diff = delta.current - delta.baseline;
    if (delta.baseline != 0.0) {
      delta.rel = diff / std::fabs(delta.baseline);
    } else {
      delta.rel = diff == 0.0 ? 0.0 : (diff > 0.0 ? HUGE_VAL : -HUGE_VAL);
    }
    switch (delta.rule.direction) {
      case Direction::kInformational:
        delta.verdict = Verdict::kOk;
        break;
      case Direction::kTwoSided:
        delta.verdict =
            std::fabs(delta.rel) > delta.rule.threshold ? Verdict::kRegressed : Verdict::kOk;
        break;
      case Direction::kLowerIsBetter:
        delta.verdict = delta.rel > delta.rule.threshold    ? Verdict::kRegressed
                        : delta.rel < -delta.rule.threshold ? Verdict::kImproved
                                                            : Verdict::kOk;
        break;
      case Direction::kHigherIsBetter:
        delta.verdict = delta.rel < -delta.rule.threshold  ? Verdict::kRegressed
                        : delta.rel > delta.rule.threshold ? Verdict::kImproved
                                                           : Verdict::kOk;
        break;
    }
    gate(delta);
    report.deltas.push_back(std::move(delta));
  }
  return report;
}

std::string RenderReport(const std::string& name, const DiffReport& report, bool verbose) {
  Table table({"metric", "baseline", "current", "delta", "direction", "verdict"});
  size_t unchanged = 0;
  for (const Delta& delta : report.deltas) {
    if (delta.verdict == Verdict::kOk && delta.rel == 0.0) {
      ++unchanged;
      if (!verbose) {
        continue;
      }
    }
    char base_cell[32], cur_cell[32], rel_cell[32];
    std::snprintf(base_cell, sizeof(base_cell), "%.4g", delta.baseline);
    std::snprintf(cur_cell, sizeof(cur_cell), "%.4g", delta.current);
    if (std::isinf(delta.rel)) {
      std::snprintf(rel_cell, sizeof(rel_cell), "%sinf", delta.rel > 0 ? "+" : "-");
    } else {
      std::snprintf(rel_cell, sizeof(rel_cell), "%+.1f%%", delta.rel * 100.0);
    }
    const bool has_values =
        delta.verdict != Verdict::kNew && delta.verdict != Verdict::kMissing &&
        delta.verdict != Verdict::kLabelMismatch;
    table.AddRow(delta.key, delta.verdict == Verdict::kNew ? "-" : base_cell,
                 delta.verdict == Verdict::kMissing ? "-" : cur_cell,
                 has_values ? rel_cell : "-",
                 delta.verdict == Verdict::kLabelMismatch ? "-"
                                                          : DirectionName(delta.rule.direction),
                 VerdictName(delta.verdict));
  }
  std::string out = "== benchdiff: " + name + " ==\n";
  if (table.num_rows() > 0) {
    out += table.ToString();
  }
  char summary[160];
  std::snprintf(summary, sizeof(summary),
                "%zu metrics: %zu regressed, %zu improved, %zu unchanged\n",
                report.deltas.size(), report.regressions, report.improvements, unchanged);
  out += summary;
  return out;
}

}  // namespace lupine::tools

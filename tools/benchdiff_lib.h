// benchdiff: the bench regression sentinel.
//
// CI runs every ext_* bench and gets a BENCH_*.json artifact; this library
// compares a freshly produced artifact against the committed snapshot in
// bench/baselines/ and turns "the perf trajectory drifted" into a nonzero
// exit code instead of archaeology. Documents are flattened to dotted-path
// metrics ("sweep.2.retries"), each metric is matched against an ordered
// rule list (first glob wins) carrying a relative threshold and a direction
// annotation, and the verdicts render as a util/table delta table.
//
// Directions:
//   lower-better   — +threshold excess is a regression, -threshold a win.
//   higher-better  — the mirror image.
//   two-sided      — any move beyond the threshold regresses (for metrics
//                    the virtual clock makes deterministic: a drift in
//                    either direction means behavior changed).
//   informational  — never gates (wall-clock timings vary per machine).
//
// String-valued fields (row labels like "site") are compared for equality:
// a mismatch means the document layout shifted under the baseline, which
// gates as a regression because every numeric comparison after it is
// meaningless — unless an informational rule matches the key (determinism
// digests drift with every intentional cost-model tweak; the gated
// invariant is the in-run "ok" flag next to them).
#ifndef TOOLS_BENCHDIFF_LIB_H_
#define TOOLS_BENCHDIFF_LIB_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"

namespace lupine::tools {

enum class Direction { kLowerIsBetter, kHigherIsBetter, kTwoSided, kInformational };
const char* DirectionName(Direction direction);

struct Rule {
  std::string pattern;   // Glob over the dotted path; '*' matches any run.
  Direction direction = Direction::kTwoSided;
  double threshold = 0.0;  // Relative: 0.10 = 10% movement allowed.
};

// '*' wildcard glob (no character classes); matches the whole key.
bool GlobMatch(std::string_view pattern, std::string_view key);

// The built-in rule table: wall-clock metrics informational, virtual-time
// and count metrics two-sided-tight, rates/latencies directional. The last
// rule is a catch-all.
std::vector<Rule> DefaultRules();

// Parses a rules document: [{"pattern": "...", "direction":
// "lower-better|higher-better|two-sided|informational", "threshold": 0.1}].
// Parsed rules take precedence over (are consulted before) DefaultRules().
Result<std::vector<Rule>> ParseRules(const std::string& json_text);

// A bench document flattened to dotted paths. Arrays contribute their index
// ("sweep.2.retries"); booleans become 0/1 numbers; strings are kept apart
// for identity comparison.
struct FlatDoc {
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;
};
Result<FlatDoc> FlattenBench(const std::string& json_text);

enum class Verdict {
  kOk,            // Within threshold.
  kImproved,      // Beyond threshold in the better direction.
  kRegressed,     // Beyond threshold in the worse direction.
  kNew,           // Only in the current document (baseline needs reseeding).
  kMissing,       // Only in the baseline — a metric disappeared; gates.
  kLabelMismatch, // String field differs from baseline; gates.
};
const char* VerdictName(Verdict verdict);

struct Delta {
  std::string key;
  double baseline = 0.0;
  double current = 0.0;
  double rel = 0.0;  // (current - baseline) / |baseline|; ±inf from zero.
  Rule rule;
  Verdict verdict = Verdict::kOk;
};

struct DiffReport {
  std::vector<Delta> deltas;  // Document order (flattened-path order).
  size_t regressions = 0;     // kRegressed + kMissing + kLabelMismatch.
  size_t improvements = 0;
};

DiffReport Compare(const FlatDoc& baseline, const FlatDoc& current,
                   const std::vector<Rule>& rules);

// Renders the delta table plus a one-line summary. `name` labels the
// artifact (e.g. "BENCH_chaos.json"). Unchanged in-threshold metrics are
// folded into the summary count unless `verbose`.
std::string RenderReport(const std::string& name, const DiffReport& report,
                         bool verbose = false);

}  // namespace lupine::tools

#endif  // TOOLS_BENCHDIFF_LIB_H_

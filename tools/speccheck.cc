// speccheck CLI: lint declarative workload scenario files.
//
// Usage:
//   speccheck SPEC.json...
//   speccheck --dir DIR        # lint every *.json in DIR
//
// Each diagnostic prints as "path:line:col: message" (compiler-style, so
// editors can jump to it). Exit codes: 0 every spec clean, 1 at least one
// diagnostic, 2 usage or I/O error. CI runs this over bench/scenarios/ as a
// ctest, so a spec the interpreter would reject can never be committed.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/loadspec/parser.h"
#include "src/util/result.h"

namespace {

using lupine::Err;
using lupine::Result;
using lupine::Status;

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status(Err::kIo, "cannot open " + path);
  }
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    text.append(buf, got);
  }
  std::fclose(file);
  return text;
}

int Usage() {
  std::fprintf(stderr, "usage: speccheck [--dir DIR] SPEC.json...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0) {
      if (i + 1 >= argc) {
        return Usage();
      }
      const std::string dir = argv[++i];
      std::error_code ec;
      for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".json") {
          paths.push_back(entry.path().string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "speccheck: cannot read directory %s\n", dir.c_str());
        return 2;
      }
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) {
    return Usage();
  }
  std::sort(paths.begin(), paths.end());

  int dirty = 0;
  for (const std::string& path : paths) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "speccheck: %s\n", text.status().ToString().c_str());
      return 2;
    }
    std::vector<lupine::loadspec::SpecDiagnostic> diags;
    if (lupine::loadspec::LintScenario(text.value(), &diags)) {
      std::printf("%s: OK\n", path.c_str());
      continue;
    }
    ++dirty;
    for (const auto& diag : diags) {
      std::printf("%s:%s\n", path.c_str(), diag.ToString().c_str());
    }
  }
  if (dirty > 0) {
    std::printf("%d of %zu specs have problems\n", dirty, paths.size());
    return 1;
  }
  return 0;
}

// Ablation (Section 2.2): monitor choice and PCI enumeration. LightVM and
// Firecracker "optimize for boot time by eliminating PCI enumeration";
// QEMU-style monitors expose a PCI bus that a PCI-enabled kernel must walk.
#include "src/apps/builtin.h"
#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"
#include "src/util/table.h"
#include "src/vmm/vm.h"

using namespace lupine;

namespace {

Result<Nanos> BootWith(const vmm::MonitorProfile& monitor, bool with_pci) {
  kconfig::Config config = kconfig::LupineGeneral();
  if (with_pci) {
    kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
    (void)resolver.Enable(config, kconfig::names::kPci);
    config.set_name("lupine-general+pci");
  }
  kbuild::ImageBuilder builder;
  auto image = builder.Build(config);
  if (!image.ok()) {
    return image.status();
  }
  apps::RegisterBuiltinApps();
  vmm::VmSpec spec;
  spec.monitor = monitor;
  spec.image = image.take();
  spec.rootfs = apps::BuildAppRootfsForApp("hello-world", false);
  vmm::Vm vm(std::move(spec));
  if (Status s = vm.Boot(); !s.ok()) {
    return s;
  }
  return vm.boot_report().to_init;
}

}  // namespace

int main() {
  PrintBanner("Ablation: monitor choice and PCI enumeration (hello boot, ms)");

  Table table({"monitor", "kernel", "boot (ms)"});
  struct Case {
    const vmm::MonitorProfile& monitor;
    bool pci;
  };
  const Case cases[] = {
      {vmm::Firecracker(), false},
      {vmm::Solo5Hvt(), false},
      {vmm::Uhyve(), false},
      {vmm::Qemu(), false},
      {vmm::Qemu(), true},
  };
  for (const auto& c : cases) {
    auto boot = BootWith(c.monitor, c.pci);
    if (boot.ok()) {
      table.AddRow(c.monitor.name, c.pci ? "lupine-general+PCI" : "lupine-general",
                   ToMillis(boot.value()));
    }
  }
  table.Print();

  std::printf("\nPaper shape: unikernel monitors boot in single-digit milliseconds of\n"
              "overhead; Firecracker stays light by dropping PCI; a traditional\n"
              "monitor adds device-model setup, and PCI enumeration adds ~10 ms of\n"
              "guest-side probing on top (Sections 2.2, 4.3).\n");
  return 0;
}

// Section 5: worst-case overhead of CONFIG_SMP on one VCPU
// (sem_posix / futex / make -j).
#include "src/apps/builtin.h"
#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"
#include "src/util/table.h"
#include "src/workload/stress.h"

using namespace lupine;

namespace {

std::unique_ptr<vmm::Vm> VmWithSmp(bool smp) {
  kconfig::Config config = kconfig::LupineGeneral();
  if (smp) {
    kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
    (void)resolver.Enable(config, kconfig::names::kSmp);
    config.set_name("lupine-general+smp");
  }
  kbuild::ImageBuilder builder;
  auto image = builder.Build(config);
  if (!image.ok()) {
    return nullptr;
  }
  apps::RegisterBuiltinApps();
  vmm::VmSpec spec;
  spec.monitor = vmm::Firecracker();
  spec.image = image.take();
  spec.rootfs = apps::BuildBenchRootfs(false);
  spec.memory = 512 * kMiB;
  auto vm = std::make_unique<vmm::Vm>(std::move(spec));
  if (!vm->Boot().ok()) {
    return nullptr;
  }
  vm->kernel().Run();
  return vm;
}

}  // namespace

int main() {
  PrintBanner("Section 5: SMP kernel overhead on 1 VCPU (worst case)");

  Table table({"workload", "workers/jobs", "!SMP (ms)", "SMP (ms)", "overhead", "paper"});

  struct Case {
    const char* name;
    const char* bound;
    std::function<Nanos(vmm::Vm&)> run;
  };
  std::vector<Case> cases = {
      {"sem_posix", "<=3%",
       [](vmm::Vm& vm) { return workload::RunSemStress(vm, 32, 40); }},
      {"futex", "<=8%",
       [](vmm::Vm& vm) { return workload::RunFutexStress(vm, 32, 40); }},
      {"make -j", "<=3%",
       [](vmm::Vm& vm) { return workload::RunMakeJob(vm, 8, 60); }},
  };

  for (const auto& c : cases) {
    auto uni = VmWithSmp(false);
    auto smp = VmWithSmp(true);
    if (uni == nullptr || smp == nullptr) {
      return 1;
    }
    Nanos t_uni = c.run(*uni);
    Nanos t_smp = c.run(*smp);
    double overhead = (static_cast<double>(t_smp) - static_cast<double>(t_uni)) /
                      static_cast<double>(t_uni);
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.1f%%", overhead * 100);
    table.AddRow(c.name, 32, ToMillis(t_uni), ToMillis(t_smp), pct, c.bound);
  }
  table.Print();

  std::printf("\nPaper conclusion: \"the choice to use SMP ... will almost always\n"
              "outweigh the alternative.\"\n");
  return 0;
}

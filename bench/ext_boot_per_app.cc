// Extension: boot time of every per-app Lupine kernel. Supports the paper's
// observation that lupine-general bounds the app-specific kernels (its +2 ms
// is the worst case) and that per-app variation is small.
#include "src/kconfig/presets.h"
#include "src/unikernels/linux_system.h"
#include "src/util/table.h"

using namespace lupine;

int main() {
  PrintBanner("Extension: boot time of every app-specialized lupine kernel (nokml)");

  unikernels::LinuxSystem app_specific(unikernels::LupineNokmlSpec());
  unikernels::LinuxSystem general(unikernels::LupineGeneralNokmlSpec());

  auto general_boot = general.BootTime("hello-world");
  if (!general_boot.ok()) {
    return 1;
  }

  Table table({"app", "#opts", "boot (ms)", "vs lupine-general"});
  double worst = 0;
  for (const auto& app : kconfig::Top20AppNames()) {
    auto boot = app_specific.BootTime(app);
    if (!boot.ok()) {
      table.AddRow(app, "-", "-", boot.status().ToString());
      continue;
    }
    double delta_ms = ToMillis(general_boot.value() - boot.value());
    worst = std::max(worst, ToMillis(boot.value()));
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.2f ms", -delta_ms);
    table.AddRow(app, static_cast<int>(kconfig::AppExtraOptions(app).size()),
                 ToMillis(boot.value()), delta);
  }
  table.AddRow("lupine-general", 19, ToMillis(general_boot.value()), "+0.00 ms");
  table.Print();

  std::printf("\nEvery app kernel boots within ~2 ms of lupine-general (paper: the\n"
              "general kernel is an upper bound for the boot time of any Table 3\n"
              "app kernel, Section 4.3). Worst app kernel: %.2f ms.\n", worst);
  return 0;
}

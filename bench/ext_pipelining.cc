// Extension: redis-benchmark pipelining sweep (-P). Batching amortizes the
// per-round-trip kernel path; the specialization win persists at every
// depth because the remaining work is still the same kernel code.
#include "src/unikernels/linux_system.h"
#include "src/util/table.h"
#include "src/workload/app_bench.h"

using namespace lupine;

namespace {

Result<double> RedisRps(const unikernels::LinuxVariantSpec& spec, int pipeline) {
  unikernels::LinuxSystem system(spec);
  auto vm = system.MakeVm("redis", 512 * kMiB);
  if (!vm.ok()) {
    return vm.status();
  }
  if (!workload::BootAppServer(**vm, "Ready to accept connections")) {
    return Status(Err::kIo, "redis failed to start");
  }
  auto result = workload::RunRedisBenchmark(**vm, /*set_workload=*/false, /*ops=*/4000,
                                            /*connections=*/8, /*value_size=*/64, pipeline);
  if (result.completed == 0 || result.errors != 0) {
    return Status(Err::kIo, "benchmark failed");
  }
  return result.requests_per_sec;
}

}  // namespace

int main() {
  PrintBanner("Extension: redis-get throughput vs pipeline depth (-P)");

  Table table({"pipeline", "microvm req/s", "lupine req/s", "lupine speedup"});
  for (int pipeline : {1, 2, 4, 8, 16, 32}) {
    auto microvm = RedisRps(unikernels::MicrovmSpec(), pipeline);
    auto lupine = RedisRps(unikernels::LupineSpec(), pipeline);
    if (!microvm.ok() || !lupine.ok()) {
      return 1;
    }
    char speedup[16];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", lupine.value() / microvm.value());
    table.AddRow(pipeline, microvm.value(), lupine.value(), speedup);
  }
  table.Print();

  std::printf("\nShape: throughput rises with depth as syscall/packet costs amortize,\n"
              "and lupine's advantage decays with it — the win lives in exactly the\n"
              "per-syscall/per-packet work that batching removes. The same logic as\n"
              "Fig. 10's KML amortization, applied to specialization as a whole.\n");
  return 0;
}

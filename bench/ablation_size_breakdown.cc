// Ablation: where microVM's image bytes go, by Fig. 4 category — what each
// class of options costs in the image and what removing it buys lupine.
#include "src/kbuild/builder.h"
#include "src/kconfig/presets.h"
#include "src/util/table.h"

using namespace lupine;
using namespace lupine::kconfig;

int main() {
  PrintBanner("Ablation: microVM image size by option category");

  kbuild::ImageBuilder builder;
  Config microvm = MicrovmConfig();
  auto image = builder.Build(microvm);
  if (!image.ok()) {
    return 1;
  }

  struct Row {
    const char* label;
    OptionClass cls;
  };
  const Row rows[] = {
      {"lupine-base (retained)", OptionClass::kBase},
      {"app: network protocols", OptionClass::kAppNetwork},
      {"app: filesystems", OptionClass::kAppFilesystem},
      {"app: syscall gates", OptionClass::kAppSyscall},
      {"app: compression", OptionClass::kAppCompression},
      {"app: crypto", OptionClass::kAppCrypto},
      {"app: debugging", OptionClass::kAppDebug},
      {"app: other services", OptionClass::kAppOther},
      {"multiple processes", OptionClass::kMultiProcess},
      {"hardware management", OptionClass::kHardware},
  };

  Table table({"category", "MB", "% of image"});
  table.AddRow("unconfigurable core", ToMiB(kbuild::ImageBuilder::CoreSize()),
               100.0 * static_cast<double>(kbuild::ImageBuilder::CoreSize()) /
                   static_cast<double>(image->size));
  for (const auto& row : rows) {
    Bytes bytes = builder.SizeOfClass(microvm, row.cls);
    table.AddRow(row.label, ToMiB(bytes),
                 100.0 * static_cast<double>(bytes) / static_cast<double>(image->size));
  }
  table.AddRow("TOTAL (microvm image)", ToMiB(image->size), 100.0);
  table.Print();

  auto base_image = builder.Build(LupineBase());
  if (base_image.ok()) {
    std::printf("\nDropping the removable categories shrinks the image from %s to %s\n"
                "(hardware management is the single largest win).\n",
                FormatSize(image->size).c_str(), FormatSize(base_image->size).c_str());
  }
  return 0;
}

// Ablation (Section 3.1.2): KPTI's effect on syscall latency — the paper
// measured a 10x slowdown on Linux 5.0, motivating its removal for the
// single-security-domain unikernel case.
#include "src/apps/builtin.h"
#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"
#include "src/util/table.h"
#include "src/workload/lmbench.h"

using namespace lupine;

namespace {

std::unique_ptr<vmm::Vm> VmWithKpti(bool kpti) {
  kconfig::Config config = kconfig::LupineGeneral();
  if (kpti) {
    kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
    (void)resolver.Enable(config, kconfig::names::kKpti);
    config.set_name("lupine-general+kpti");
  }
  kbuild::ImageBuilder builder;
  auto image = builder.Build(config);
  if (!image.ok()) {
    return nullptr;
  }
  apps::RegisterBuiltinApps();
  vmm::VmSpec spec;
  spec.monitor = vmm::Firecracker();
  spec.image = image.take();
  spec.rootfs = apps::BuildBenchRootfs(false);
  auto vm = std::make_unique<vmm::Vm>(std::move(spec));
  if (!vm->Boot().ok()) {
    return nullptr;
  }
  vm->kernel().Run();
  return vm;
}

}  // namespace

int main() {
  PrintBanner("Ablation: KPTI (kernel page-table isolation) syscall cost");

  auto plain = VmWithKpti(false);
  auto kpti = VmWithKpti(true);
  if (plain == nullptr || kpti == nullptr) {
    return 1;
  }
  auto a = workload::MeasureSyscallLatency(*plain);
  auto b = workload::MeasureSyscallLatency(*kpti);

  Table table({"kernel", "null (us)", "read (us)", "write (us)"});
  table.AddRow("lupine-general", a.null_us, a.read_us, a.write_us);
  table.AddRow("lupine-general + KPTI", b.null_us, b.read_us, b.write_us);
  table.Print();

  std::printf("\nnull-call slowdown with KPTI: %.1fx (paper: ~10x on the transition)\n",
              b.null_us / a.null_us);
  return 0;
}

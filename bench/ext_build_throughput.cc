// Extension: fleet build throughput. The MultiK deployment story (Section 6)
// assumes specializing a kernel per application is cheap enough to do at
// fleet scale; this benchmark measures the specialize→resolve→build pipeline
// itself. Three measurements:
//
//   1. Resolve latency — dependency resolution for each top-20 app, with the
//      resolver's closure memoization off (every Enable re-walks the
//      depends_on/select graph, the pre-optimization behavior) vs on.
//   2. Fleet build throughput — serial, memoization off (baseline) vs a
//      thread pool over the single-flight KernelCache, memoization on.
//   3. Cache effectiveness — requests vs actual kernel builds for the fleet
//      (16 of the 20 apps share the zero-option lupine-base kernel).
//
// Results go to stdout and BENCH_build_throughput.json (consumed by CI as an
// artifact). The exit code is always 0: absolute numbers and speedups are
// hardware-dependent, so regression gating belongs to the CI dashboards, not
// this binary.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "src/core/multik.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

using namespace lupine;

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// Resolves every top-20 app config `rounds` times; returns total milliseconds.
double TimeResolves(int rounds) {
  const auto& apps = kconfig::Top20AppNames();
  const auto start = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (const auto& app : apps) {
      auto config = kconfig::LupineForApp(app);
      if (!config.ok()) {
        std::fprintf(stderr, "resolve %s: %s\n", app.c_str(),
                     config.status().ToString().c_str());
      }
    }
  }
  return ElapsedMs(start);
}

// Builds the whole fleet through a fresh KernelCache; returns wall ms.
double TimeFleetBuild(bool parallel, size_t threads, core::KernelCache::Stats* stats_out) {
  core::KernelCache cache;
  const auto& apps = kconfig::Top20AppNames();
  const auto start = Clock::now();
  if (parallel) {
    ThreadPool pool(threads);
    std::vector<std::future<Result<core::KernelCache::ArtifactPtr>>> builds;
    builds.reserve(apps.size());
    for (const auto& app : apps) {
      builds.push_back(pool.Submit([&cache, &app] { return cache.GetOrBuild(app); }));
    }
    for (size_t i = 0; i < builds.size(); ++i) {
      auto artifact = builds[i].get();
      if (!artifact.ok()) {
        std::fprintf(stderr, "build %s: %s\n", apps[i].c_str(),
                     artifact.status().ToString().c_str());
      }
    }
  } else {
    for (const auto& app : apps) {
      auto artifact = cache.GetOrBuild(app);
      if (!artifact.ok()) {
        std::fprintf(stderr, "build %s: %s\n", app.c_str(),
                     artifact.status().ToString().c_str());
      }
    }
  }
  const double elapsed = ElapsedMs(start);
  if (stats_out != nullptr) {
    *stats_out = cache.stats();
  }
  return elapsed;
}

double BestOf(int rounds, const std::function<double()>& run) {
  double best = run();
  for (int i = 1; i < rounds; ++i) {
    best = std::min(best, run());
  }
  return best;
}

}  // namespace

int main() {
  PrintBanner("Extension: fleet build throughput (specialize/resolve/build pipeline)");

  constexpr int kResolveRounds = 50;  // 50 x 20 apps per timing.
  constexpr int kBuildRounds = 3;     // Best-of over fresh caches.
  const size_t threads = ThreadPool::DefaultThreads();
  const size_t fleet_size = kconfig::Top20AppNames().size();

  // --- 1. Resolve latency, memoized vs not ---------------------------------
  kconfig::Resolver::SetMemoizationEnabled(false);
  const double resolve_walk_ms = TimeResolves(kResolveRounds);
  kconfig::Resolver::SetMemoizationEnabled(true);
  (void)TimeResolves(1);  // Warm the closure cache once.
  const double resolve_memo_ms = TimeResolves(kResolveRounds);
  const double resolves = static_cast<double>(kResolveRounds) * fleet_size;

  // --- 2. Fleet build throughput, serial vs pooled -------------------------
  kconfig::Resolver::SetMemoizationEnabled(false);
  const double serial_ms =
      BestOf(kBuildRounds, [] { return TimeFleetBuild(false, 1, nullptr); });
  kconfig::Resolver::SetMemoizationEnabled(true);
  core::KernelCache::Stats stats;
  const double parallel_ms = BestOf(
      kBuildRounds, [threads, &stats] { return TimeFleetBuild(true, threads, &stats); });

  const double serial_bps = fleet_size / (serial_ms / 1000.0);
  const double parallel_bps = fleet_size / (parallel_ms / 1000.0);
  const double speedup = serial_ms / parallel_ms;
  const double resolve_speedup = resolve_walk_ms / resolve_memo_ms;
  const double hit_rate =
      stats.requests == 0
          ? 0.0
          : 1.0 - static_cast<double>(stats.builds) / static_cast<double>(stats.requests);

  Table table({"metric", "serial/walk", "pooled/memo", "speedup"});
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", resolve_speedup);
  table.AddRow("resolve us/app", resolve_walk_ms * 1000.0 / resolves,
               resolve_memo_ms * 1000.0 / resolves, buf);
  std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
  table.AddRow("fleet build ms", serial_ms, parallel_ms, buf);
  table.AddRow("builds/sec", serial_bps, parallel_bps, "");
  table.Print();

  std::printf("\nworkers: %zu, fleet: %zu apps\n", threads, fleet_size);
  std::printf("cache: %zu requests, %zu kernel builds, %zu distinct kernels "
              "(hit rate %.0f%%)\n",
              stats.requests, stats.builds, stats.distinct_kernels, hit_rate * 100.0);

  // --- 3. JSON artifact ----------------------------------------------------
  std::FILE* json = std::fopen("BENCH_build_throughput.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"threads\": %zu,\n", threads);
    std::fprintf(json, "  \"fleet_size\": %zu,\n", fleet_size);
    std::fprintf(json, "  \"resolve_us_per_app_unmemoized\": %.3f,\n",
                 resolve_walk_ms * 1000.0 / resolves);
    std::fprintf(json, "  \"resolve_us_per_app_memoized\": %.3f,\n",
                 resolve_memo_ms * 1000.0 / resolves);
    std::fprintf(json, "  \"resolve_speedup\": %.3f,\n", resolve_speedup);
    std::fprintf(json, "  \"serial_fleet_build_ms\": %.3f,\n", serial_ms);
    std::fprintf(json, "  \"parallel_fleet_build_ms\": %.3f,\n", parallel_ms);
    std::fprintf(json, "  \"serial_builds_per_sec\": %.3f,\n", serial_bps);
    std::fprintf(json, "  \"parallel_builds_per_sec\": %.3f,\n", parallel_bps);
    std::fprintf(json, "  \"fleet_build_speedup\": %.3f,\n", speedup);
    std::fprintf(json, "  \"cache_requests\": %zu,\n", stats.requests);
    std::fprintf(json, "  \"cache_builds\": %zu,\n", stats.builds);
    std::fprintf(json, "  \"distinct_kernels\": %zu,\n", stats.distinct_kernels);
    std::fprintf(json, "  \"cache_hit_rate\": %.3f\n", hit_rate);
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_build_throughput.json\n");
  }
  return 0;
}

// Extension: chaos sweep over the fleet resilience layer. The paper's
// posture (Section 2.2) is that a Lupine guest cannot recover itself — the
// application runs in ring 0 — so every recovery mechanism lives monitor
// side: per-task retries with deterministic backoff, per-stage deadlines,
// artifact quarantine and a fleet circuit breaker. This benchmark injects
// seeded fault schedules into whole fleet boots and measures what those
// mechanisms buy.
//
// Legs:
//   1. Baseline — the top-20 fleet, no faults, the reference makespan.
//   2. Chaos sweep — FaultSite x probability grid. Every task owns a private
//      injector forked off (plan seed, task index), so each point is
//      deterministic and independent of worker count. Reports completion
//      rate, retries, deadline kills, makespan inflation vs baseline and the
//      mean virtual time-to-recovery.
//   3. Recover-all — bench/plans/boot_initcall_twice.json caps the initcall
//      fault at 2 fires per task: with 3 retry attempts the fleet must
//      complete with zero lost boots.
//   4. Poisoned rootfs — bench/plans/poisoned_rootfs.json corrupts every
//      boot. Quarantine caps failed launches per app at 1 + rebuild_limit
//      (rebuild-once-then-poison) instead of rounds x workers crash loops.
//
// Results go to stdout and BENCH_chaos.json (a CI artifact). Exit code is
// always 0: regression gating belongs to the CI dashboards.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/fleet_boot.h"
#include "src/core/multik.h"
#include "src/kconfig/presets.h"
#include "src/util/fault.h"
#include "src/util/retry.h"
#include "src/util/table.h"

using namespace lupine;

namespace {

// Loads a fault plan from bench/plans/, falling back to the embedded copy of
// the same document when the bench runs from a directory the repo checkout
// is not visible from (CI artifact stages, bare build dirs).
FaultPlan LoadPlan(const char* filename, const char* embedded) {
  for (const std::string dir : {"bench/plans/", "../bench/plans/", "../../bench/plans/"}) {
    std::FILE* file = std::fopen((dir + filename).c_str(), "rb");
    if (file == nullptr) {
      continue;
    }
    std::string text;
    char buffer[4096];
    size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      text.append(buffer, n);
    }
    std::fclose(file);
    auto plan = FaultPlanFromJson(text);
    if (plan.ok()) {
      return *plan;
    }
    std::fprintf(stderr, "%s%s: %s (using embedded copy)\n", dir.c_str(), filename,
                 plan.status().ToString().c_str());
    break;
  }
  auto plan = FaultPlanFromJson(embedded);
  return plan.ok() ? *plan : FaultPlan{};
}

// The retry schedule every chaos leg uses: small deterministic backoffs so
// recovery time is visible but doesn't dominate the makespan.
RetryPolicy ChaosRetry(int max_attempts) {
  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.backoff.initial = Millis(10);
  retry.backoff.cap = Millis(200);
  return retry;
}

}  // namespace

int main() {
  PrintBanner("Extension: chaos sweep (fault sites x probability, fleet resilience)");

  const size_t fleet_size = kconfig::Top20AppNames().size();
  constexpr size_t kWorkers = 4;
  constexpr size_t kRounds = 2;
  const size_t tasks = fleet_size * kRounds;

  // One warm cache for the baseline + sweep; quarantine off so every failed
  // launch is priced by retry alone and the counts stay deterministic.
  core::KernelCache cache;
  cache.set_quarantine({.enabled = false});

  // --- 1. Baseline ----------------------------------------------------------
  core::FleetBootOptions baseline_options;
  baseline_options.workers = kWorkers;
  baseline_options.rounds = kRounds;
  auto baseline = core::RunFleetBoot(cache, baseline_options);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline: %s\n", baseline.status().ToString().c_str());
    return 0;
  }
  const double baseline_ms = static_cast<double>(baseline->virtual_makespan) / 1e6;
  std::printf("baseline: %zu boots, virtual makespan %.3f ms\n\n", baseline->boots,
              baseline_ms);

  // --- 2. Chaos sweep -------------------------------------------------------
  const std::vector<FaultSite> sites = {FaultSite::kBootDecompress, FaultSite::kBootInitcall,
                                        FaultSite::kRootfsCorrupt, FaultSite::kBootStall};
  const std::vector<double> probabilities = {0.05, 0.2, 0.5};

  struct SweepPoint {
    FaultSite site;
    double probability;
    core::FleetBootResult result;
  };
  std::vector<SweepPoint> sweep;
  for (FaultSite site : sites) {
    for (double probability : probabilities) {
      FaultPlan plan;
      plan.seed = 42;
      plan.Add({.site = site, .probability = probability});

      core::FleetBootOptions options;
      options.workers = kWorkers;
      options.rounds = kRounds;
      options.retry = ChaosRetry(4);
      options.deadlines.boot = Seconds(2);  // Caps a kBootStall wedge at 2s, not 60s.
      options.fault_plan = &plan;
      auto result = core::RunFleetBoot(cache, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s p=%.2f: %s\n", FaultSiteName(site), probability,
                     result.status().ToString().c_str());
        return 0;
      }
      sweep.push_back({site, probability, *result});
    }
  }

  Table table({"site", "p", "boots", "completion", "retries", "deadline kills",
               "makespan infl.", "mean recovery ms"});
  for (const SweepPoint& point : sweep) {
    const double completion = static_cast<double>(point.result.boots) / tasks;
    const double inflation =
        static_cast<double>(point.result.virtual_makespan) / 1e6 / baseline_ms;
    const double recovery_ms =
        point.result.recovered == 0
            ? 0.0
            : static_cast<double>(point.result.virtual_recovery_total) / 1e6 /
                  static_cast<double>(point.result.recovered);
    table.AddRow(FaultSiteName(point.site), point.probability,
                 static_cast<double>(point.result.boots), completion,
                 static_cast<double>(point.result.retries),
                 static_cast<double>(point.result.deadline_exceeded), inflation, recovery_ms);
  }
  table.Print();

  // --- 3. Recover-all: capped fault + retries => zero lost boots -----------
  const FaultPlan recover_plan = LoadPlan(
      "boot_initcall_twice.json",
      R"({"seed": 42, "rules": [{"site": "boot-initcall", "trigger_on": 1, "period": 1, "probability": 0, "max_fires": 2}]})");
  core::FleetBootOptions recover_options;
  recover_options.workers = kWorkers;
  recover_options.retry = ChaosRetry(3);
  recover_options.fault_plan = &recover_plan;
  auto recover = core::RunFleetBoot(cache, recover_options);
  if (!recover.ok()) {
    std::fprintf(stderr, "recover-all: %s\n", recover.status().ToString().c_str());
    return 0;
  }
  std::printf("\nrecover-all: %zu/%zu boots, %zu lost, %zu retries, %zu recovered "
              "(want 0 lost: the initcall fault stops after 2 fires per task)\n",
              recover->boots, fleet_size, recover->failures, recover->retries,
              recover->recovered);

  // --- 4. Poisoned rootfs: quarantine caps the blast radius ----------------
  const FaultPlan poison_plan = LoadPlan(
      "poisoned_rootfs.json",
      R"({"seed": 7, "rules": [{"site": "rootfs-corrupt", "trigger_on": 1, "period": 1, "probability": 0, "max_fires": -1}]})");
  core::KernelCache poisoned_cache;  // Fresh cache, quarantine on (the default).
  constexpr size_t kPoisonRounds = 3;
  core::FleetBootOptions poison_options;
  poison_options.workers = 1;  // Serial: quarantine counts are exact.
  poison_options.rounds = kPoisonRounds;
  poison_options.fault_plan = &poison_plan;
  auto poisoned = core::RunFleetBoot(poisoned_cache, poison_options);
  if (!poisoned.ok()) {
    std::fprintf(stderr, "poisoned-rootfs: %s\n", poisoned.status().ToString().c_str());
    return 0;
  }
  const auto poison_stats = poisoned_cache.stats();
  std::printf("\npoisoned-rootfs: %zu rounds x %zu apps, %zu failed launches "
              "(uncontained: %zu), %zu quarantine denials, %zu rebuilds, %zu poisoned\n",
              kPoisonRounds, fleet_size, poisoned->launch_failures,
              kPoisonRounds * fleet_size, poisoned->quarantined,
              poison_stats.quarantine_rebuilds, poison_stats.quarantine_poisoned);

  // --- 5. JSON artifact ----------------------------------------------------
  std::FILE* json = std::fopen("BENCH_chaos.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"fleet_size\": %zu,\n", fleet_size);
    std::fprintf(json, "  \"tasks_per_point\": %zu,\n", tasks);
    std::fprintf(json, "  \"baseline_makespan_ms\": %.3f,\n", baseline_ms);
    std::fprintf(json, "  \"sweep\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& point = sweep[i];
      const double makespan_ms = static_cast<double>(point.result.virtual_makespan) / 1e6;
      const double recovery_ms =
          point.result.recovered == 0
              ? 0.0
              : static_cast<double>(point.result.virtual_recovery_total) / 1e6 /
                    static_cast<double>(point.result.recovered);
      std::fprintf(json,
                   "    {\"site\": \"%s\", \"probability\": %.2f, \"boots\": %zu, "
                   "\"failures\": %zu, \"completion_rate\": %.4f, \"retries\": %zu, "
                   "\"launch_failures\": %zu, \"deadline_exceeded\": %zu, "
                   "\"recovered\": %zu, \"makespan_ms\": %.3f, "
                   "\"makespan_inflation\": %.4f, \"mean_recovery_ms\": %.3f}%s\n",
                   FaultSiteName(point.site), point.probability, point.result.boots,
                   point.result.failures,
                   static_cast<double>(point.result.boots) / tasks, point.result.retries,
                   point.result.launch_failures, point.result.deadline_exceeded,
                   point.result.recovered, makespan_ms, makespan_ms / baseline_ms,
                   recovery_ms, i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json,
                 "  \"recover_all\": {\"boots\": %zu, \"failures\": %zu, \"retries\": %zu, "
                 "\"recovered\": %zu},\n",
                 recover->boots, recover->failures, recover->retries, recover->recovered);
    std::fprintf(json,
                 "  \"poisoned_rootfs\": {\"rounds\": %zu, \"launch_failures\": %zu, "
                 "\"uncontained_launches\": %zu, \"quarantined\": %zu, "
                 "\"quarantine_rebuilds\": %zu, \"quarantine_poisoned\": %zu}\n",
                 kPoisonRounds, poisoned->launch_failures, kPoisonRounds * fleet_size,
                 poisoned->quarantined, poison_stats.quarantine_rebuilds,
                 poison_stats.quarantine_poisoned);
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_chaos.json\n");
  }
  return 0;
}

// Extension: parallel fleet boot throughput. MultiK-style deployments boot
// whole fleets of specialized unikernels; this benchmark measures how boot
// throughput scales when the fleet is sharded across monitor workers, with
// every artifact served warm from the content-addressed caches.
//
// Methodology: fibers (and VMs mid-run) are thread-local, so the driver
// statically shards the fleet across ThreadPool workers and reports the
// *virtual* makespan — the largest per-worker sum of simulated boot times
// (monitor start -> init exec). That figure is a deterministic property of
// the simulation, so the reported speedups do not depend on how many host
// cores this process is given (CI runners often pin it to one). Host wall
// time is included as an informational column only.
//
// Legs:
//   1. Worker sweep — boots rounds x top-20 VMs at 1/2/4/8 workers from one
//      warm KernelCache; reports virtual boots/sec and speedup vs serial,
//      and asserts-by-reporting that the warm storms rebuilt zero rootfs
//      blobs and zero kernels.
//   2. Cross-build batching — a fresh cache with batch_general=true proves
//      each per-app config against lupine-general and serves the shared
//      kernel: one build for the whole fleet.
//   3. Skewed fleet — a fault rule wedges every postgres boot for an extra
//      630 virtual ms (~10x a normal boot), and the leg compares the static
//      shards against work stealing at 1/2/4/8 workers: static strands the
//      skew on one shard, stealing drains the other deques around it.
//   4. Cold cache — every (schedule, workers) point provisions a fresh
//      cache, comparing static, monolithic stealing (single-flight groups)
//      and the pipelined stage DAG: pipelining overlaps kernel builds,
//      rootfs assembly and boots instead of blocking boot tasks on flights.
//
// Results go to stdout and BENCH_fleet_boot.json (a CI artifact). Exit code
// is always 0: regression gating belongs to the CI dashboards.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/fleet_boot.h"
#include "src/core/multik.h"
#include "src/kconfig/presets.h"
#include "src/util/fault.h"
#include "src/util/table.h"

using namespace lupine;

namespace {

const char* ScheduleName(core::FleetSchedule schedule) {
  switch (schedule) {
    case core::FleetSchedule::kStaticShards:
      return "static";
    case core::FleetSchedule::kWorkStealing:
      return "stealing";
    case core::FleetSchedule::kPipelined:
      return "pipelined";
  }
  return "?";
}

}  // namespace

int main() {
  PrintBanner("Extension: parallel fleet boot (virtual-timeline throughput)");

  constexpr size_t kRounds = 5;  // 5 x 20 apps = 100 boots per sweep point.
  const std::vector<size_t> worker_counts = {1, 2, 4, 8};
  const size_t fleet_size = kconfig::Top20AppNames().size();

  // --- 1. Worker sweep over a warm cache -----------------------------------
  core::KernelCache cache;
  {
    core::FleetBootOptions warmup;
    auto warm = core::RunFleetBoot(cache, warmup);
    if (!warm.ok()) {
      std::fprintf(stderr, "warmup: %s\n", warm.status().ToString().c_str());
      return 0;
    }
  }
  const size_t rootfs_builds_warm = cache.rootfs_stats().builds;
  const size_t kernel_builds_warm = cache.stats().builds;

  struct SweepPoint {
    size_t workers = 0;
    core::FleetBootResult result;
  };
  std::vector<SweepPoint> sweep;
  for (size_t workers : worker_counts) {
    core::FleetBootOptions options;
    options.workers = workers;
    options.rounds = kRounds;
    auto result = core::RunFleetBoot(cache, options);
    if (!result.ok()) {
      std::fprintf(stderr, "workers=%zu: %s\n", workers, result.status().ToString().c_str());
      return 0;
    }
    sweep.push_back({workers, *result});
  }
  const size_t redundant_rootfs_builds = cache.rootfs_stats().builds - rootfs_builds_warm;
  const size_t redundant_kernel_builds = cache.stats().builds - kernel_builds_warm;
  const double serial_ms = static_cast<double>(sweep.front().result.virtual_makespan) / 1e6;

  Table table({"workers", "boots", "virtual ms", "boots/sec (virtual)", "speedup", "wall ms"});
  for (const SweepPoint& point : sweep) {
    const double virtual_ms = static_cast<double>(point.result.virtual_makespan) / 1e6;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", serial_ms / virtual_ms);
    table.AddRow(static_cast<double>(point.workers), static_cast<double>(point.result.boots),
                 virtual_ms, point.result.boots_per_virtual_sec, speedup,
                 point.result.wall_ms);
  }
  table.Print();
  std::printf("\nfleet: %zu apps x %zu rounds per point; warm cache\n", fleet_size, kRounds);
  std::printf("redundant builds during storms: %zu rootfs, %zu kernels (want 0/0)\n",
              redundant_rootfs_builds, redundant_kernel_builds);

  // --- 2. Cross-build batching against lupine-general ----------------------
  core::BuildOptions batch_options;
  batch_options.batch_general = true;
  core::KernelCache batched(batch_options);
  size_t batch_failures = 0;
  for (const auto& app : kconfig::Top20AppNames()) {
    if (!batched.GetOrBuild(app).ok()) {
      ++batch_failures;
    }
  }
  auto batch_stats = batched.stats();
  std::printf("\nbatching: %zu apps -> %zu kernel builds, %zu served the shared "
              "lupine-general image (%zu failures)\n",
              fleet_size, batch_stats.builds, batch_stats.general_served, batch_failures);

  // --- 3. Skewed fleet: static shards vs work stealing ---------------------
  // One rule gives every postgres boot an extra 630 virtual ms of decompress
  // stall — roughly 10x a normal warm boot. Static sharding strands all of
  // postgres's boots on one shard; stealing lets idle workers drain the
  // other deques around the wedge.
  constexpr size_t kSkewRounds = 4;
  FaultPlan skew_plan;
  skew_plan.Add({.site = FaultSite::kBootStall,
                 .trigger_on = 1,
                 .period = 1,
                 .app = "postgres",
                 .stall = Millis(630)});
  const std::vector<core::FleetSchedule> schedules = {
      core::FleetSchedule::kStaticShards, core::FleetSchedule::kWorkStealing,
      core::FleetSchedule::kPipelined};

  struct SchedPoint {
    size_t workers = 0;
    core::FleetSchedule schedule = core::FleetSchedule::kStaticShards;
    core::FleetBootResult result;
  };
  std::vector<SchedPoint> skew;
  for (size_t workers : worker_counts) {
    for (core::FleetSchedule schedule : schedules) {
      core::FleetBootOptions options;
      options.workers = workers;
      options.rounds = kSkewRounds;
      options.schedule = schedule;
      options.fault_plan = &skew_plan;
      auto result = core::RunFleetBoot(cache, options);
      if (!result.ok()) {
        std::fprintf(stderr, "skew %s workers=%zu: %s\n", ScheduleName(schedule), workers,
                     result.status().ToString().c_str());
        return 0;
      }
      skew.push_back({workers, schedule, *result});
    }
  }
  std::printf("\nskewed fleet (postgres boots +630ms, %zu rounds, warm cache):\n", kSkewRounds);
  Table skew_table({"workers", "schedule", "virtual ms", "steals", "vs static"});
  for (size_t i = 0; i < skew.size(); ++i) {
    const SchedPoint& point = skew[i];
    const double virtual_ms = static_cast<double>(point.result.virtual_makespan) / 1e6;
    // The static point for this worker count leads its group of three.
    const double static_ms =
        static_cast<double>(skew[i - i % schedules.size()].result.virtual_makespan) / 1e6;
    char gain[32];
    std::snprintf(gain, sizeof(gain), "%.2fx", static_ms / virtual_ms);
    skew_table.AddRow(static_cast<double>(point.workers), ScheduleName(point.schedule),
                      virtual_ms, static_cast<double>(point.result.steals), gain);
  }
  skew_table.Print();

  // --- 4. Cold cache: monolithic stealing vs the pipelined stage DAG -------
  // Every point provisions a fresh cache, so each distinct kernel fingerprint
  // and rootfs key is built exactly once per point. Monolithic schedules
  // model those builds as single-flight groups inside the first boot that
  // needs them; the pipelined DAG splits them into their own tasks so they
  // overlap across workers.
  std::vector<SchedPoint> cold;
  for (size_t workers : worker_counts) {
    for (core::FleetSchedule schedule : schedules) {
      core::KernelCache fresh;
      core::FleetBootOptions options;
      options.workers = workers;
      options.rounds = 1;
      options.schedule = schedule;
      auto result = core::RunFleetBoot(fresh, options);
      if (!result.ok()) {
        std::fprintf(stderr, "cold %s workers=%zu: %s\n", ScheduleName(schedule), workers,
                     result.status().ToString().c_str());
        return 0;
      }
      cold.push_back({workers, schedule, *result});
    }
  }
  std::printf("\ncold cache (fresh cache per point, 1 round):\n");
  Table cold_table({"workers", "schedule", "virtual ms", "steals", "vs static"});
  for (size_t i = 0; i < cold.size(); ++i) {
    const SchedPoint& point = cold[i];
    const double virtual_ms = static_cast<double>(point.result.virtual_makespan) / 1e6;
    const double static_ms =
        static_cast<double>(cold[i - i % schedules.size()].result.virtual_makespan) / 1e6;
    char gain[32];
    std::snprintf(gain, sizeof(gain), "%.2fx", static_ms / virtual_ms);
    cold_table.AddRow(static_cast<double>(point.workers), ScheduleName(point.schedule),
                      virtual_ms, static_cast<double>(point.result.steals), gain);
  }
  cold_table.Print();

  // --- 5. JSON artifact ----------------------------------------------------
  std::FILE* json = std::fopen("BENCH_fleet_boot.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"fleet_size\": %zu,\n", fleet_size);
    std::fprintf(json, "  \"rounds\": %zu,\n", kRounds);
    std::fprintf(json, "  \"boots_per_point\": %zu,\n", fleet_size * kRounds);
    std::fprintf(json, "  \"sweep\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& point = sweep[i];
      const double virtual_ms = static_cast<double>(point.result.virtual_makespan) / 1e6;
      std::fprintf(json,
                   "    {\"workers\": %zu, \"boots\": %zu, \"failures\": %zu, "
                   "\"virtual_makespan_ms\": %.3f, \"boots_per_virtual_sec\": %.3f, "
                   "\"speedup_vs_serial\": %.3f, \"wall_ms\": %.3f}%s\n",
                   point.workers, point.result.boots, point.result.failures, virtual_ms,
                   point.result.boots_per_virtual_sec, serial_ms / virtual_ms,
                   point.result.wall_ms, i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"redundant_rootfs_builds\": %zu,\n", redundant_rootfs_builds);
    std::fprintf(json, "  \"redundant_kernel_builds\": %zu,\n", redundant_kernel_builds);
    std::fprintf(json, "  \"batching_kernel_builds\": %zu,\n", batch_stats.builds);
    std::fprintf(json, "  \"batching_general_served\": %zu,\n", batch_stats.general_served);
    std::fprintf(json, "  \"batching_distinct_kernels\": %zu,\n", batch_stats.distinct_kernels);
    auto write_sched_points = [json](const char* key, const std::vector<SchedPoint>& points) {
      std::fprintf(json, "  \"%s\": [\n", key);
      for (size_t i = 0; i < points.size(); ++i) {
        const SchedPoint& point = points[i];
        std::fprintf(json,
                     "    {\"workers\": %zu, \"schedule\": \"%s\", "
                     "\"virtual_makespan_ms\": %.3f, \"steals\": %zu, "
                     "\"worker_queue_peak\": %zu}%s\n",
                     point.workers, ScheduleName(point.schedule),
                     static_cast<double>(point.result.virtual_makespan) / 1e6,
                     point.result.steals,
                     point.result.worker_queue_peak.empty()
                         ? size_t{0}
                         : *std::max_element(point.result.worker_queue_peak.begin(),
                                             point.result.worker_queue_peak.end()),
                     i + 1 < points.size() ? "," : "");
      }
      std::fprintf(json, "  ]%s\n", std::string(key) == "cold" ? "" : ",");
    };
    write_sched_points("skew", skew);
    write_sched_points("cold", cold);
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_fleet_boot.json\n");
  }
  return 0;
}

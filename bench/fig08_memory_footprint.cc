// Figure 8: memory footprint (minimum memory to pass the success criteria)
// for hello / nginx / redis.
#include "src/core/lineup.h"
#include "src/util/table.h"

using namespace lupine;

int main() {
  PrintBanner("Figure 8: memory footprint (MB)");

  Table table({"system", "hello", "nginx", "redis"});
  for (auto& system : core::MemoryLineup()) {
    std::vector<std::string> row = {system->name()};
    for (const std::string app : {"hello-world", "nginx", "redis"}) {
      auto footprint = system->MemoryFootprint(app);
      if (footprint.ok()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", ToMiB(footprint.value()));
        row.push_back(buf);
      } else {
        row.push_back("-");  // e.g. HermiTux cannot run nginx.
      }
    }
    table.AddRowVec(row);
  }
  table.Print();

  std::printf("\nPaper shape: lupine ~21 MB and flat across apps; microVM higher but\n"
              "also flat; unikernels vary per app (OSv's redis largest of its three);\n"
              "HermiTux cannot run nginx at all.\n");
  return 0;
}

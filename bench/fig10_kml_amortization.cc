// Figure 10: KML syscall-latency improvement vs busy-work iterations
// between syscalls.
#include "src/unikernels/linux_system.h"
#include "src/util/table.h"
#include "src/workload/kml_bench.h"

using namespace lupine;

namespace {

std::unique_ptr<vmm::Vm> MakeBenchVm(const unikernels::LinuxVariantSpec& spec) {
  unikernels::LinuxSystem system(spec);
  auto vm = system.MakeVm("hello-world", 512 * kMiB, /*bench_rootfs=*/true);
  if (!vm.ok()) {
    return nullptr;
  }
  auto owned = std::move(vm.value());
  if (!owned->Boot().ok()) {
    return nullptr;
  }
  owned->kernel().Run();
  return owned;
}

}  // namespace

int main() {
  PrintBanner("Figure 10: KML improvement vs busy-wait iterations between syscalls");

  Table table({"iterations", "nokml (us)", "kml (us)", "KML improvement"});
  for (int iterations : {0, 10, 20, 40, 60, 80, 100, 120, 140, 160}) {
    auto kml_vm = MakeBenchVm(unikernels::LupineGeneralSpec());
    auto nokml_vm = MakeBenchVm(unikernels::LupineGeneralNokmlSpec());
    if (kml_vm == nullptr || nokml_vm == nullptr) {
      return 1;
    }
    double kml = workload::MeasureNullWithWorkUs(*kml_vm, iterations);
    double nokml = workload::MeasureNullWithWorkUs(*nokml_vm, iterations);
    double improvement = 1.0 - kml / nokml;
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.1f%%", improvement * 100);
    table.AddRow(iterations, nokml, kml, pct);
  }
  table.Print();

  std::printf("\nPaper shape: ~40%% at 0 iterations, dropping below 5%% by ~160.\n");
  return 0;
}

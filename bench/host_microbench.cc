// Host-level microbenchmarks (google-benchmark) of the simulator's own
// primitives: fiber switching, scheduler throughput, rootfs codec, config
// resolution. These measure the reproduction infrastructure itself, not the
// simulated guest.
#include <benchmark/benchmark.h>

#include "src/apps/rootfs_builder.h"
#include "src/guestos/rootfs.h"
#include "src/guestos/sched.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"
#include "src/util/fiber.h"

namespace {

using namespace lupine;

void BM_FiberSwitch(benchmark::State& state) {
  bool done = false;
  Fiber fiber([&] {
    while (!done) {
      Fiber::Yield();
    }
  });
  for (auto _ : state) {
    fiber.Resume();
  }
  done = true;
  fiber.Resume();
}
BENCHMARK(BM_FiberSwitch);

void BM_SchedulerYieldPair(benchmark::State& state) {
  for (auto _ : state) {
    VirtualClock clock;
    kbuild::KernelFeatures features;
    guestos::Scheduler sched(&clock, &guestos::DefaultCostModel(), &features);
    for (int t = 0; t < 2; ++t) {
      sched.Spawn(nullptr, [&sched] {
        for (int i = 0; i < 100; ++i) {
          sched.YieldCurrent();
        }
      });
    }
    sched.Run();
    benchmark::DoNotOptimize(clock.now());
  }
}
BENCHMARK(BM_SchedulerYieldPair);

void BM_RootfsFormatParse(benchmark::State& state) {
  std::string blob = apps::BuildAppRootfsForApp("redis", true);
  for (auto _ : state) {
    auto spec = guestos::ParseRootfs(blob);
    benchmark::DoNotOptimize(spec.ok());
  }
}
BENCHMARK(BM_RootfsFormatParse);

void BM_ConfigResolveApp(benchmark::State& state) {
  for (auto _ : state) {
    auto config = kconfig::LupineForApp("nginx");
    benchmark::DoNotOptimize(config.ok());
  }
}
BENCHMARK(BM_ConfigResolveApp);

void BM_KernelImageBuild(benchmark::State& state) {
  kconfig::Config config = kconfig::LupineGeneral();
  kbuild::ImageBuilder builder;
  for (auto _ : state) {
    auto image = builder.Build(config);
    benchmark::DoNotOptimize(image.ok());
  }
}
BENCHMARK(BM_KernelImageBuild);

}  // namespace

BENCHMARK_MAIN();

// Extension: the declarative workload simulator run over the committed
// scenario corpus (bench/scenarios/*.json).
//
// Legs:
//   1. Corpus run — every spec interpreted end-to-end against booted
//      guests: iterations, virtual elapsed, guest syscalls, blocked
//      threads, and whether the spec's own expect-assertions held.
//   2. Worker byte-identity — the whole corpus re-run at 1/2/4/8 host
//      workers; the canonical figures plus each run's canonical journal
//      must hash identically (VM simulations are independent virtual-clock
//      worlds, so host scheduling cannot leak into the figures).
//   3. KML delta — the IPC-shaped scenarios (pipe-latency, hackbench)
//      under forced KML on/off, extending table5's lmbench comparison
//      with declarative equivalents.
//
// Results go to stdout and BENCH_scenarios.json (a CI artifact gated by
// tools/benchdiff). Exit code 0 unless a spec fails to run at all.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/loadspec/interpreter.h"
#include "src/loadspec/parser.h"
#include "src/telemetry/journal.h"
#include "src/util/table.h"

using namespace lupine;

namespace {

#ifndef LUPINE_SCENARIO_DIR
#define LUPINE_SCENARIO_DIR "bench/scenarios"
#endif

struct SpecFile {
  std::string path;
  std::string text;
  loadspec::ScenarioSpec spec;
};

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::vector<SpecFile> LoadCorpus(const std::string& dir) {
  std::vector<SpecFile> corpus;
  std::error_code ec;
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    SpecFile file;
    file.path = path;
    file.text = buffer.str();
    auto spec = loadspec::ParseScenario(file.text);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), spec.status().ToString().c_str());
      continue;
    }
    file.spec = spec.take();
    corpus.push_back(std::move(file));
  }
  return corpus;
}

const loadspec::ScenarioSpec* FindSpec(const std::vector<SpecFile>& corpus,
                                       const std::string& name) {
  for (const SpecFile& file : corpus) {
    if (file.spec.name == name) {
      return &file.spec;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  PrintBanner("Extension: declarative workload scenarios (loadspec corpus)");

  const std::string dir = argc > 1 ? argv[1] : LUPINE_SCENARIO_DIR;
  std::vector<SpecFile> corpus = LoadCorpus(dir);
  if (corpus.empty()) {
    std::printf("no scenario specs under %s; nothing to do\n", dir.c_str());
    return 0;
  }

  // --- 1. Corpus run -------------------------------------------------------
  struct CorpusRow {
    std::string name;
    loadspec::ScenarioResult result;
  };
  std::vector<CorpusRow> rows;
  Table corpus_table(
      {"scenario", "groups", "iterations", "elapsed ms", "syscalls", "blocked", "expect"});
  for (const SpecFile& file : corpus) {
    auto result = loadspec::RunScenario(file.spec);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.spec.name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    for (const std::string& failure : result->failures) {
      std::printf("  %s: EXPECT FAILED: %s\n", file.spec.name.c_str(), failure.c_str());
    }
    uint64_t syscalls = 0;
    for (const auto& vm : result->vms) {
      syscalls += vm.syscalls;
    }
    corpus_table.AddRow(result->name, static_cast<unsigned long long>(result->groups.size()),
                        static_cast<unsigned long long>(result->total_iterations),
                        ToMillis(result->elapsed), static_cast<unsigned long long>(syscalls),
                        static_cast<unsigned long long>(result->blocked),
                        result->ok() ? "OK" : "FAIL");
    rows.push_back({file.spec.name, result.take()});
  }
  corpus_table.Print();

  // --- 2. Worker byte-identity --------------------------------------------
  const std::vector<size_t> worker_counts = {1, 2, 4, 8};
  struct WorkerPoint {
    size_t workers = 0;
    uint64_t digest = 0;
  };
  std::vector<WorkerPoint> points;
  for (size_t workers : worker_counts) {
    std::string canonical;
    for (const SpecFile& file : corpus) {
      telemetry::Journal journal;
      loadspec::ScenarioOptions options;
      options.workers = workers;
      options.journal = &journal;
      auto result = loadspec::RunScenario(file.spec, options);
      if (!result.ok()) {
        std::fprintf(stderr, "workers=%zu %s: %s\n", workers, file.spec.name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      canonical += result->CanonicalFiguresInput();
      canonical += journal.ExportJsonl(false);
    }
    points.push_back({workers, Fnv1a(canonical)});
  }
  bool determinism_ok = true;
  std::printf("\nworker byte-identity (figures + canonical journal, whole corpus):\n");
  Table worker_table({"workers", "digest"});
  for (const WorkerPoint& point : points) {
    determinism_ok = determinism_ok && point.digest == points.front().digest;
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(point.digest));
    worker_table.AddRow(static_cast<double>(point.workers), digest);
  }
  worker_table.Print();
  std::printf("byte-identical across 1/2/4/8 workers: %s\n",
              determinism_ok ? "yes" : "NO");

  // --- 3. KML delta on the IPC-shaped scenarios ----------------------------
  struct KmlRow {
    std::string name;
    Nanos kml = 0;
    Nanos nokml = 0;
  };
  std::vector<KmlRow> kml_rows;
  for (const char* name : {"pipe-latency", "hackbench-pipes", "hackbench-sockets"}) {
    const loadspec::ScenarioSpec* spec = FindSpec(corpus, name);
    if (spec == nullptr) {
      continue;
    }
    loadspec::ScenarioOptions kml_on;
    kml_on.kml_override = 1;
    loadspec::ScenarioOptions kml_off;
    kml_off.kml_override = 0;
    auto fast = loadspec::RunScenario(*spec, kml_on);
    auto slow = loadspec::RunScenario(*spec, kml_off);
    if (!fast.ok() || !slow.ok()) {
      std::fprintf(stderr, "kml leg %s failed\n", name);
      return 1;
    }
    kml_rows.push_back({name, fast->elapsed, slow->elapsed});
  }
  std::printf("\nKML vs non-KML (extends table5's lmbench rows with spec scenarios):\n");
  Table kml_table({"scenario", "kml ms", "nokml ms", "speedup"});
  for (const KmlRow& row : kml_rows) {
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.3fx",
                  static_cast<double>(row.nokml) / static_cast<double>(row.kml));
    kml_table.AddRow(row.name, ToMillis(row.kml), ToMillis(row.nokml), speedup);
  }
  kml_table.Print();

  // --- 4. JSON artifact ----------------------------------------------------
  std::FILE* json = std::fopen("BENCH_scenarios.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"scenarios\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const loadspec::ScenarioResult& r = rows[i].result;
      uint64_t syscalls = 0;
      for (const auto& vm : r.vms) {
        syscalls += vm.syscalls;
      }
      std::fprintf(json,
                   "    {\"name\": \"%s\", \"iterations\": %llu, \"elapsed_ms\": %.3f, "
                   "\"syscalls\": %llu, \"blocked\": %llu, \"expect_ok\": %s}%s\n",
                   r.name.c_str(), static_cast<unsigned long long>(r.total_iterations),
                   ToMillis(r.elapsed), static_cast<unsigned long long>(syscalls),
                   static_cast<unsigned long long>(r.blocked),
                   r.ok() ? "true" : "false", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"determinism\": {\n    \"workers\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
      std::fprintf(json, "      {\"workers\": %zu, \"digest\": \"%016llx\"}%s\n",
                   points[i].workers,
                   static_cast<unsigned long long>(points[i].digest),
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json, "    ],\n    \"ok\": %s\n  },\n", determinism_ok ? "true" : "false");
    std::fprintf(json, "  \"kml\": [\n");
    for (size_t i = 0; i < kml_rows.size(); ++i) {
      const KmlRow& row = kml_rows[i];
      std::fprintf(json,
                   "    {\"scenario\": \"%s\", \"kml_ms\": %.3f, \"nokml_ms\": %.3f, "
                   "\"speedup\": %.3f}%s\n",
                   row.name.c_str(), ToMillis(row.kml), ToMillis(row.nokml),
                   static_cast<double>(row.nokml) / static_cast<double>(row.kml),
                   i + 1 < kml_rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_scenarios.json\n");
  }
  return 0;
}

// Table 4: application performance normalized to microVM (higher is better).
#include "src/core/lineup.h"
#include "src/util/table.h"

using namespace lupine;

namespace {

std::string Normalized(const Result<double>& value, double baseline) {
  if (!value.ok() || baseline <= 0) {
    return "-";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", value.value() / baseline);
  return buf;
}

}  // namespace

int main() {
  PrintBanner("Table 4: application performance normalized to microVM");

  // Measure the microVM baselines first.
  unikernels::LinuxSystem microvm(unikernels::MicrovmSpec());
  auto rg = microvm.RedisThroughput(false);
  auto rs = microvm.RedisThroughput(true);
  auto nc = microvm.NginxThroughput(false);
  auto ns = microvm.NginxThroughput(true);
  if (!rg.ok() || !rs.ok() || !nc.ok() || !ns.ok()) {
    std::fprintf(stderr, "baseline measurement failed\n");
    return 1;
  }

  std::printf("microVM absolute: redis-get %.0f req/s, redis-set %.0f req/s,\n"
              "nginx-conn %.0f req/s, nginx-sess %.0f req/s\n\n",
              rg.value(), rs.value(), nc.value(), ns.value());

  Table table({"Name", "redis-get", "redis-set", "nginx-conn", "nginx-sess"});
  for (auto& system : core::AppPerfLineup()) {
    table.AddRow(system->name(),
                 Normalized(system->RedisThroughput(false), rg.value()),
                 Normalized(system->RedisThroughput(true), rs.value()),
                 Normalized(system->NginxThroughput(false), nc.value()),
                 Normalized(system->NginxThroughput(true), ns.value()));
  }
  table.Print();

  std::printf("\nPaper: lupine 1.21/1.22/1.33/1.14; -tiny costs up to 10 points;\n"
              "KML adds at most 4; hermitux .66/.67/-/-; osv .87/.53/-/-;\n"
              "rump .99/.99/1.25/.53.\n");
  return 0;
}

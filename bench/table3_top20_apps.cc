// Table 3: top-20 Docker Hub applications and the options each needs beyond
// lupine-base — derived by the automatic configuration search (the paper's
// manual boot-inspect-add loop, mechanized).
#include <cstdio>
#include <cstring>

#include "src/core/analysis.h"
#include "src/core/config_search.h"
#include "src/kconfig/presets.h"
#include "src/util/table.h"

using namespace lupine;

int main(int argc, char** argv) {
  // --fast reports manifest-declared counts without running the search.
  bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;

  PrintBanner("Table 3: top-20 Docker Hub applications");
  Table table({"Name", "Downloads (B)", "Description", "#Options atop lupine-base", "boots"});

  for (const auto& row : core::Table3Rows()) {
    if (fast) {
      table.AddRow(row.name, row.downloads_billions, row.description,
                   static_cast<int>(row.options_atop_base), "-");
      continue;
    }
    auto search = core::DeriveMinimalConfig(row.name);
    if (!search.ok() || !search->success) {
      table.AddRow(row.name, row.downloads_billions, row.description, "FAILED", "-");
      continue;
    }
    table.AddRow(row.name, row.downloads_billions, row.description,
                 static_cast<int>(search->added_options.size()), search->boots);
  }
  table.Print();

  std::printf("\nUnion of all application option sets: %zu (paper: 19)\n",
              core::UnionOfAppOptions().size());
  return 0;
}

// Extension experiment: recovery from a ring-0 crash under supervision.
//
// The paper's availability story (Section 2.2) is that a unikernel does not
// recover itself — the monitor restarts it, so what matters operationally is
// restart-to-healthy latency. We crash redis with an injected wild access on
// its first boot and measure, per kernel variant: the clean boot-to-ready
// time, how long the supervisor takes to notice the crash (PANIC_TIMEOUT
// posture: Lupine reboots immediately and is seen at once, microVM halts and
// waits for the next health probe), the full panic-to-serving-again latency,
// and availability over a fixed 5 s window.
#include "src/unikernels/linux_system.h"
#include "src/util/fault.h"
#include "src/util/table.h"
#include "src/vmm/supervisor.h"

using namespace lupine;

namespace {

constexpr Nanos kWindow = Seconds(5);
const char kReady[] = "Ready to accept connections";

struct Recovery {
  Nanos clean_boot = 0;          // Boot-to-ready, no faults.
  Nanos detect_latency = 0;      // Panic -> supervisor notices.
  Nanos restart_to_healthy = 0;  // Panic -> serving again.
  double availability = 0;       // Healthy fraction of the 5 s window.
};

vmm::SupervisorPolicy NoJitterPolicy() {
  vmm::SupervisorPolicy policy;
  policy.backoff_jitter = 0;  // Isolate the variant effects from jitter.
  return policy;
}

Result<Recovery> Measure(const unikernels::LinuxVariantSpec& spec) {
  unikernels::LinuxSystem system(spec);
  Recovery recovery;

  {  // Clean boot-to-ready as the reference point.
    vmm::Supervisor supervisor(NoJitterPolicy());
    supervisor.AddMember("redis",
                         [&system] {
                           auto vm = system.MakeVm("redis", 512 * kMiB);
                           return vm.ok() ? vm.take() : nullptr;
                         },
                         kReady);
    if (supervisor.Run(kWindow) != 0) {
      return Status(Err::kIo, spec.name + ": clean redis boot failed");
    }
    recovery.clean_boot = supervisor.stats("redis").first_healthy_at;
  }

  // Injected crash: a wild access on the 10th syscall of the first boot.
  // The injector outlives the restart, so attempt 2 runs clean.
  FaultInjector faults(FaultPlan{}.FireOnce(FaultSite::kAppFault, 10));
  vmm::Supervisor supervisor(NoJitterPolicy());
  supervisor.AddMember("redis",
                       [&system, &faults] {
                         auto vm = system.MakeVm("redis", 512 * kMiB,
                                                 /*bench_rootfs=*/false, &faults);
                         return vm.ok() ? vm.take() : nullptr;
                       },
                       kReady);
  if (supervisor.Run(kWindow) != 0) {
    return Status(Err::kIo, spec.name + ": redis did not recover");
  }

  Nanos panic_at = -1;
  Nanos detected_at = -1;
  for (const vmm::Incident& incident : supervisor.timeline()) {
    if (incident.kind == "panic" && panic_at < 0) {
      panic_at = incident.at;
    }
    if (incident.kind == "crash" && detected_at < 0) {
      detected_at = incident.at;
    }
  }
  const Nanos healthy_at = supervisor.stats("redis").first_healthy_at;
  if (panic_at < 0 || detected_at < 0 || healthy_at < panic_at) {
    return Status(Err::kIo, spec.name + ": fault did not fire as planned");
  }
  recovery.detect_latency = detected_at - panic_at;
  recovery.restart_to_healthy = healthy_at - panic_at;
  recovery.availability =
      100.0 * static_cast<double>(kWindow - healthy_at) / static_cast<double>(kWindow);
  return recovery;
}

}  // namespace

int main() {
  PrintBanner("Extension: restart-to-healthy after an injected ring-0 crash (redis)");

  Table table({"kernel", "clean boot", "detect latency", "restart-to-healthy",
               "availability-5s %"});
  for (const auto& spec : {unikernels::MicrovmSpec(), unikernels::LupineSpec(),
                           unikernels::LupineGeneralSpec()}) {
    auto recovery = Measure(spec);
    if (!recovery.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   recovery.status().ToString().c_str());
      return 1;
    }
    table.AddRow(spec.name, FormatDuration(recovery->clean_boot),
                 FormatDuration(recovery->detect_latency),
                 FormatDuration(recovery->restart_to_healthy), recovery->availability);
  }
  table.Print();

  std::printf(
      "\nExpected shape: Lupine wins restart-to-healthy despite its slower clean\n"
      "boot (KML drops PARAVIRT, Figure 10's tradeoff): its PANIC_TIMEOUT<0\n"
      "posture reboots into the monitor immediately, while microVM's halted\n"
      "guest sits dead until the next 50 ms health probe before the restart\n"
      "clock even starts.\n");
  return 0;
}

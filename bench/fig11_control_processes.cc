// Figure 11: syscall latency with 2^i background control processes,
// KML and non-KML kernels.
#include "src/unikernels/linux_system.h"
#include "src/util/table.h"
#include "src/workload/control_procs.h"

using namespace lupine;

namespace {

std::unique_ptr<vmm::Vm> MakeBenchVm(const unikernels::LinuxVariantSpec& spec) {
  unikernels::LinuxSystem system(spec);
  auto vm = system.MakeVm("hello-world", 512 * kMiB, /*bench_rootfs=*/true);
  if (!vm.ok()) {
    return nullptr;
  }
  auto owned = std::move(vm.value());
  if (!owned->Boot().ok()) {
    return nullptr;
  }
  owned->kernel().Run();
  return owned;
}

}  // namespace

int main() {
  PrintBanner("Figure 11: syscall latency (us) vs number of control processes");

  Table table({"#ctl procs", "KML null", "KML read", "KML write", "NOKML null", "NOKML read",
               "NOKML write"});
  for (int procs : {1, 4, 16, 64, 256, 1024}) {
    auto kml_vm = MakeBenchVm(unikernels::LupineGeneralSpec());
    auto nokml_vm = MakeBenchVm(unikernels::LupineGeneralNokmlSpec());
    if (kml_vm == nullptr || nokml_vm == nullptr) {
      return 1;
    }
    auto kml = workload::MeasureWithControlProcs(*kml_vm, procs);
    auto nokml = workload::MeasureWithControlProcs(*nokml_vm, procs);
    table.AddRow(procs, kml.null_us, kml.read_us, kml.write_us, nokml.null_us, nokml.read_us,
                 nokml.write_us);
  }
  table.Print();

  std::printf("\nPaper shape: flat lines — idle control processes cost nothing;\n"
              "KML lines sit below NOKML.\n");
  return 0;
}

// Ablation (Section 4.6): the paper attributes "much of Lupine's 20%
// application performance improvement" to disabling recent security
// enhancements (retpoline-style mitigations). Re-enable MITIGATIONS on a
// lupine kernel and watch the win evaporate.
#include "src/apps/builtin.h"
#include "src/apps/manifest.h"
#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"
#include "src/unikernels/linux_system.h"
#include "src/util/table.h"
#include "src/workload/app_bench.h"

using namespace lupine;

namespace {

Result<double> RedisRpsForConfig(kconfig::Config config) {
  kbuild::ImageBuilder builder;
  auto image = builder.Build(config);
  if (!image.ok()) {
    return image.status();
  }
  apps::RegisterBuiltinApps();
  vmm::VmSpec spec;
  spec.monitor = vmm::Firecracker();
  spec.image = image.take();
  spec.rootfs = apps::BuildAppRootfsForApp("redis", config.IsEnabled(kconfig::names::kKml));
  vmm::Vm vm(std::move(spec));
  if (!workload::BootAppServer(vm, "Ready to accept connections")) {
    return Status(Err::kIo, "redis failed to start");
  }
  auto result = workload::RunRedisBenchmark(vm, /*set_workload=*/false);
  return result.requests_per_sec;
}

}  // namespace

int main() {
  PrintBanner("Ablation: re-enabling MITIGATIONS on lupine (redis-get)");

  unikernels::LinuxSystem microvm(unikernels::MicrovmSpec());
  auto baseline = microvm.RedisThroughput(false);
  if (!baseline.ok()) {
    return 1;
  }

  auto lupine_config = kconfig::LupineForApp("redis");
  if (!lupine_config.ok()) {
    return 1;
  }
  auto lupine_rps = RedisRpsForConfig(lupine_config.value());

  kconfig::Config hardened = lupine_config.value();
  kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
  (void)resolver.Enable(hardened, kconfig::names::kMitigations);
  hardened.set_name("lupine-redis+mitigations");
  auto hardened_rps = RedisRpsForConfig(hardened);

  if (!lupine_rps.ok() || !hardened_rps.ok()) {
    return 1;
  }

  Table table({"kernel", "redis-get req/s", "vs microVM"});
  table.AddRow("microvm", baseline.value(), 1.0);
  table.AddRow("lupine-nokml", lupine_rps.value(), lupine_rps.value() / baseline.value());
  table.AddRow("lupine-nokml + MITIGATIONS", hardened_rps.value(),
               hardened_rps.value() / baseline.value());
  table.Print();

  double with = lupine_rps.value() / baseline.value();
  double without = hardened_rps.value() / baseline.value();
  std::printf("\nOf lupine's %.0f%% win over microVM, %.0f points come from dropping\n"
              "the mitigations (paper: \"we attribute much of Lupine's 20%% ...\n"
              "improvement ... to disabling these enhancements\").\n",
              (with - 1) * 100, (with - without) * 100);
  return 0;
}

// Table 5 (Appendix A): full lmbench results, microVM vs lupine-general.
#include "src/unikernels/linux_system.h"
#include "src/util/table.h"
#include "src/workload/lmbench.h"

using namespace lupine;

namespace {

std::unique_ptr<vmm::Vm> MakeBenchVm(const unikernels::LinuxVariantSpec& spec) {
  unikernels::LinuxSystem system(spec);
  auto vm = system.MakeVm("hello-world", 512 * kMiB, /*bench_rootfs=*/true);
  if (!vm.ok()) {
    return nullptr;
  }
  auto owned = std::move(vm.value());
  if (!owned->Boot().ok()) {
    return nullptr;
  }
  owned->kernel().Run();
  return owned;
}

}  // namespace

int main() {
  PrintBanner("Table 5: lmbench, microVM vs lupine-general");

  auto microvm_vm = MakeBenchVm(unikernels::MicrovmSpec());
  auto lupine_vm = MakeBenchVm(unikernels::LupineGeneralNokmlSpec());
  if (microvm_vm == nullptr || lupine_vm == nullptr) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }
  auto microvm_rows = workload::RunLmbenchSuite(*microvm_vm);
  auto lupine_rows = workload::RunLmbenchSuite(*lupine_vm);
  if (microvm_rows.size() != lupine_rows.size()) {
    std::fprintf(stderr, "row mismatch\n");
    return 1;
  }

  std::string section;
  std::vector<std::pair<std::string, Table>> tables;
  for (size_t i = 0; i < microvm_rows.size(); ++i) {
    if (microvm_rows[i].section != section) {
      section = microvm_rows[i].section;
      tables.emplace_back(section, Table({"Op", "MicroVM", "Lupine-general"}));
    }
    tables.back().second.AddRow(microvm_rows[i].name, microvm_rows[i].value,
                                lupine_rows[i].value);
  }
  for (auto& [name, t] : tables) {
    PrintBanner(name);
    t.Print();
  }

  std::printf("\nPaper shape: lupine-general faster on every latency row (1.2-2.5x);\n"
              "pure memory-bandwidth rows essentially identical.\n");
  return 0;
}

// Figure 12: perf messaging benchmark — threads vs processes, KML vs NOKML.
#include "src/unikernels/linux_system.h"
#include "src/util/table.h"
#include "src/workload/perf_messaging.h"

using namespace lupine;

namespace {

std::unique_ptr<vmm::Vm> MakeBenchVm(const unikernels::LinuxVariantSpec& spec) {
  unikernels::LinuxSystem system(spec);
  auto vm = system.MakeVm("hello-world", 512 * kMiB, /*bench_rootfs=*/true);
  if (!vm.ok()) {
    return nullptr;
  }
  auto owned = std::move(vm.value());
  if (!owned->Boot().ok()) {
    return nullptr;
  }
  owned->kernel().Run();
  return owned;
}

double RunMs(const unikernels::LinuxVariantSpec& spec, int groups, bool processes) {
  auto vm = MakeBenchVm(spec);
  if (vm == nullptr) {
    return -1;
  }
  workload::MessagingConfig config;
  config.groups = groups;
  config.messages_per_pair = 10;
  config.use_processes = processes;
  return ToMillis(workload::RunPerfMessaging(*vm, config));
}

}  // namespace

int main() {
  PrintBanner("Figure 12: perf messaging (10 senders + 10 receivers per group, ms)");

  Table table({"groups", "KML thread", "KML process", "NOKML thread", "NOKML process"});
  for (int groups : {1, 2, 4, 8, 16}) {
    table.AddRow(groups,
                 RunMs(unikernels::LupineGeneralSpec(), groups, false),
                 RunMs(unikernels::LupineGeneralSpec(), groups, true),
                 RunMs(unikernels::LupineGeneralNokmlSpec(), groups, false),
                 RunMs(unikernels::LupineGeneralNokmlSpec(), groups, true));
  }
  table.Print();

  std::printf("\nPaper shape: linear in groups; processes within ~3%% of threads\n"
              "(sometimes faster); single address space buys nothing.\n");
  return 0;
}

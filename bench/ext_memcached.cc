// Extension experiment (beyond Table 4): memcached throughput across the
// Linux variants, using the behavioural memcached model and a memtier-style
// client. The paper could not include more apps because the reference
// unikernels could not run them (Section 4.6) — Lupine-side, nothing stops
// us.
#include "src/unikernels/linux_system.h"
#include "src/util/table.h"
#include "src/workload/app_bench.h"

using namespace lupine;

namespace {

Result<double> MemcachedRps(const unikernels::LinuxVariantSpec& spec, bool set_workload) {
  unikernels::LinuxSystem system(spec);
  auto vm = system.MakeVm("memcached", 512 * kMiB);
  if (!vm.ok()) {
    return vm.status();
  }
  if (!workload::BootAppServer(**vm, "server listening")) {
    return Status(Err::kIo, "memcached failed to start");
  }
  auto result = workload::RunMemcachedBenchmark(**vm, set_workload);
  if (result.completed == 0) {
    return Status(Err::kIo, "no requests completed");
  }
  return result.requests_per_sec;
}

}  // namespace

int main() {
  PrintBanner("Extension: memcached throughput normalized to microVM");

  auto base_get = MemcachedRps(unikernels::MicrovmSpec(), false);
  auto base_set = MemcachedRps(unikernels::MicrovmSpec(), true);
  if (!base_get.ok() || !base_set.ok()) {
    std::fprintf(stderr, "baseline failed\n");
    return 1;
  }
  std::printf("microVM absolute: get %.0f req/s, set %.0f req/s\n\n", base_get.value(),
              base_set.value());

  Table table({"kernel", "memcached-get", "memcached-set"});
  for (const auto& spec :
       {unikernels::MicrovmSpec(), unikernels::LupineSpec(), unikernels::LupineTinySpec(),
        unikernels::LupineNokmlSpec(), unikernels::LupineGeneralSpec()}) {
    auto get = MemcachedRps(spec, false);
    auto set = MemcachedRps(spec, true);
    if (get.ok() && set.ok()) {
      table.AddRow(spec.name, get.value() / base_get.value(), set.value() / base_set.value());
    }
  }
  table.Print();

  std::printf("\nExpected shape: the same ~1.2x specialization win as redis (Table 4),\n"
              "since the bottleneck is the identical kernel network path.\n");
  return 0;
}

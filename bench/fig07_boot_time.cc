// Figure 7: boot time for hello world, with the guest-side phase breakdown
// and the PARAVIRT ablation from Section 4.3.
#include "src/core/lineup.h"
#include "src/kconfig/option_names.h"
#include "src/unikernels/linux_system.h"
#include "src/util/table.h"

using namespace lupine;

int main() {
  PrintBanner("Figure 7: boot time for hello world");

  Table table({"system", "boot (ms)", "paper shape"});
  for (auto& system : core::BootTimeLineup()) {
    auto boot = system->BootTime("hello-world");
    if (!boot.ok()) {
      table.AddRow(system->name(), "n/a", boot.status().ToString());
      continue;
    }
    const char* note = "";
    if (system->name() == "microvm") {
      note = "slowest Linux";
    } else if (system->name() == "lupine-nokml") {
      note = "~23 ms";
    } else if (system->name() == "lupine-general-nokml") {
      note = "+~2 ms vs app-specific";
    } else if (system->name() == "osv-zfs") {
      note = "10x slower than rofs";
    }
    table.AddRow(system->name(), ToMillis(boot.value()), note);
  }
  table.Print();

  // Phase breakdown for lupine-nokml.
  unikernels::LinuxSystem lupine(unikernels::LupineNokmlSpec());
  auto vm = lupine.MakeVm("hello-world", 512 * kMiB);
  if (vm.ok() && (*vm)->Boot().ok()) {
    PrintBanner("Boot phase breakdown (lupine-nokml)");
    Table phases({"phase", "ms"});
    for (const auto& phase : (*vm)->boot_report().phases) {
      phases.AddRow(phase.name, ToMillis(phase.duration));
    }
    phases.Print();
  }

  // Ablation: the KML variant loses CONFIG_PARAVIRT (Section 4.3: 71 ms).
  unikernels::LinuxSystem kml(unikernels::LupineSpec());
  auto kml_boot = kml.BootTime("hello-world");
  if (kml_boot.ok()) {
    std::printf("\nAblation: lupine (KML, no CONFIG_PARAVIRT) boots in %.1f ms "
                "(paper: 71 ms)\n", ToMillis(kml_boot.value()));
  }
  return 0;
}

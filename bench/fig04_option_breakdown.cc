// Figure 4: breakdown of the microVM options removed to form lupine-base.
#include "src/kconfig/classify.h"
#include "src/util/table.h"

using namespace lupine;
using namespace lupine::kconfig;

int main() {
  PrintBanner("Figure 4: kernel configuration options by unikernel property");

  RemovalBreakdown b = ClassifyRemovals(OptionDb::Linux40());

  Table table({"category", "options", "paper"});
  table.AddRow("microVM configuration", b.microvm_total, "~833");
  table.AddRow("retained: lupine-base", b.base_retained, "283 (34%)");
  table.AddRow("removed total", b.removed_total(), "~550 (66%)");
  table.AddRow("  application-specific", b.app_specific_total(), "~311");
  table.AddRow("    network protocols", b.app_network, "~100");
  table.AddRow("    filesystems", b.app_filesystem, "35");
  table.AddRow("    syscall-gating (Table 1)", b.app_syscall, "12");
  table.AddRow("    compression", b.app_compression, "20");
  table.AddRow("    crypto", b.app_crypto, "55");
  table.AddRow("    debugging/info", b.app_debug, "65");
  table.AddRow("    other services", b.app_other, "-");
  table.AddRow("  multiple processes", b.multi_process, "89");
  table.AddRow("  hardware management", b.hardware, "150");
  table.Print();
  return 0;
}

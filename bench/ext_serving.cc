// Extension: snapshot/restore serving layer. Cold boot is the cloud
// provider's tax on every scale-from-zero request; this benchmark measures
// how much of it the serving front door (snapshot restore + warm pools)
// takes out of the request path, under an open-loop arrival process.
//
// Methodology: RunServing's figures come from a sequential discrete-event
// simulation over per-app costs measured by really booting, capturing and
// restoring guests in the prelude — so every reported number (TTFR
// percentiles, warm-hit ratio, per-request paths, canonical journal) is a
// pure function of (options, costs) and byte-identical across worker
// counts. Host execution replays the plan against the real WarmPool /
// SnapshotCache / Vm::Restore subsystems; its wall time and steal counts
// are informational columns only.
//
// Legs:
//   1. Launch economics — per app: cold boot vs snapshot capture vs restore
//      (all measured), and the restore/cold ratio. The serving layer's
//      premise is restore < 0.5x cold; the flag is reported per app.
//   2. Arrival sweep — the same tenant mix at 0.5x/1x/2x arrival rates:
//      p50/p99 TTFR, warm-hit ratio, queue waits. Warm hits climb as the
//      pools fill; p99 tracks the cold tail until they do.
//   3. Worker byte-identity — execute=true at 1/2/4/8 workers on identical
//      options; the canonical journal and every serving figure must hash
//      identically (steals/wall are the informational exceptions).
//   4. Chaos — kSnapshotRestore faults strike one app's snapshot through
//      drop, recapture and poison; after the TTL a half-open probe readmits
//      it and warm serving resumes. The leg reports the recovery.
//
// Results go to stdout and BENCH_serving.json (a CI artifact). Exit code is
// always 0: regression gating belongs to the CI dashboards.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/multik.h"
#include "src/core/snapshot_cache.h"
#include "src/serve/front_door.h"
#include "src/telemetry/journal.h"
#include "src/util/fault.h"
#include "src/util/table.h"

using namespace lupine;

namespace {

std::vector<serve::TenantSpec> TenantMix(double multiplier) {
  return {{"nginx", 120.0 * multiplier},
          {"redis", 80.0 * multiplier},
          {"postgres", 40.0 * multiplier}};
}

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

// Everything RunServing promises to keep worker-count-independent, as one
// canonical string: the serving figures, every per-request record, and the
// canonical (non-schedule-scoped) journal export.
std::string FiguresDigestInput(const serve::ServeResult& result,
                               const telemetry::Journal& journal) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "requests=%zu warm=%zu restore=%zu cold=%zu captures=%zu refills=%zu "
                "fail=%zu waits=%zu drops=%zu poison=%zu denials=%zu probes=%zu "
                "p50=%lld p99=%lld max=%lld qp99=%lld end=%lld\n",
                result.requests, result.warm_hits, result.restores, result.cold_boots,
                result.captures, result.refills, result.restore_failures,
                result.queue_waits, result.quarantine_drops, result.quarantine_poisoned,
                result.quarantine_denials, result.probes,
                static_cast<long long>(result.ttfr_p50),
                static_cast<long long>(result.ttfr_p99),
                static_cast<long long>(result.ttfr_max),
                static_cast<long long>(result.queue_wait_p99),
                static_cast<long long>(result.virtual_end));
  out += line;
  for (const serve::RequestRecord& rec : result.records) {
    std::snprintf(line, sizeof(line), "%zu %s %lld %lld %lld %s\n", rec.index,
                  rec.app.c_str(), static_cast<long long>(rec.arrival),
                  static_cast<long long>(rec.dispatch), static_cast<long long>(rec.ttfr),
                  rec.path);
    out += line;
  }
  out += journal.ExportJsonl(false);
  return out;
}

}  // namespace

int main() {
  PrintBanner("Extension: snapshot/restore serving layer (TTFR vs arrival rate)");

  core::KernelCache cache;

  // --- 1. Launch economics: cold vs capture vs restore, per app ------------
  serve::ServeOptions probe_options;
  probe_options.tenants = TenantMix(1.0);
  probe_options.duration = Millis(1);  // Costs only; a near-empty trace.
  probe_options.execute = false;
  core::SnapshotCache probe_snapshots;
  auto probe = serve::RunServing(cache, probe_snapshots, probe_options);
  if (!probe.ok()) {
    std::fprintf(stderr, "costs: %s\n", probe.status().ToString().c_str());
    return 0;
  }
  bool restore_under_half_cold = true;
  Table cost_table({"app", "cold ms", "capture ms", "restore ms", "restore/cold"});
  for (const serve::AppServeCost& cost : probe->costs) {
    restore_under_half_cold = restore_under_half_cold && cost.restore_ratio < 0.5;
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3fx", cost.restore_ratio);
    cost_table.AddRow(cost.app, static_cast<double>(cost.cold_ns) / 1e6,
                      static_cast<double>(cost.capture_ns) / 1e6,
                      static_cast<double>(cost.restore_ns) / 1e6, ratio);
  }
  cost_table.Print();
  std::printf("restore under half of cold boot for every app: %s\n",
              restore_under_half_cold ? "yes" : "NO");

  // --- 2. Arrival sweep: TTFR percentiles and warm-hit ratio ---------------
  const std::vector<double> multipliers = {0.5, 1.0, 2.0};
  struct SweepPoint {
    double multiplier = 0.0;
    serve::ServeResult result;
  };
  std::vector<SweepPoint> sweep;
  for (double multiplier : multipliers) {
    serve::ServeOptions options;
    options.tenants = TenantMix(multiplier);
    options.duration = Seconds(2);
    options.execute = false;
    core::SnapshotCache snapshots;
    auto result = serve::RunServing(cache, snapshots, options);
    if (!result.ok()) {
      std::fprintf(stderr, "sweep %.1fx: %s\n", multiplier,
                   result.status().ToString().c_str());
      return 0;
    }
    sweep.push_back({multiplier, result.take()});
  }
  std::printf("\narrival sweep (2s open-loop window, pools filled on demand):\n");
  Table sweep_table({"rate", "requests", "warm-hit", "p50 ms", "p99 ms", "queue waits"});
  for (const SweepPoint& point : sweep) {
    char rate[32], hit[32];
    std::snprintf(rate, sizeof(rate), "%.1fx", point.multiplier);
    std::snprintf(hit, sizeof(hit), "%.1f%%", point.result.warm_hit_ratio * 100.0);
    sweep_table.AddRow(rate, static_cast<double>(point.result.requests), hit,
                       static_cast<double>(point.result.ttfr_p50) / 1e6,
                       static_cast<double>(point.result.ttfr_p99) / 1e6,
                       static_cast<double>(point.result.queue_waits));
  }
  sweep_table.Print();

  // --- 3. Worker byte-identity with real execution -------------------------
  const std::vector<size_t> worker_counts = {1, 2, 4, 8};
  struct WorkerPoint {
    size_t workers = 0;
    serve::ServeResult result;
    uint64_t digest = 0;
  };
  std::vector<WorkerPoint> workers;
  for (size_t count : worker_counts) {
    serve::ServeOptions options;
    options.tenants = TenantMix(1.0);
    options.duration = Seconds(2);
    options.workers = count;
    options.execute = true;
    telemetry::Journal journal;
    options.journal = &journal;
    core::SnapshotCache snapshots;
    auto result = serve::RunServing(cache, snapshots, options);
    if (!result.ok()) {
      std::fprintf(stderr, "workers=%zu: %s\n", count, result.status().ToString().c_str());
      return 0;
    }
    WorkerPoint point;
    point.workers = count;
    point.result = result.take();
    point.digest = Fnv1a(FiguresDigestInput(point.result, journal));
    workers.push_back(std::move(point));
  }
  bool determinism_ok = true;
  for (const WorkerPoint& point : workers) {
    determinism_ok = determinism_ok && point.digest == workers.front().digest;
  }
  std::printf("\nworker byte-identity (execute=true, figures + canonical journal):\n");
  Table worker_table({"workers", "digest", "divergence", "steals", "wall ms"});
  for (const WorkerPoint& point : workers) {
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(point.digest));
    worker_table.AddRow(static_cast<double>(point.workers), digest,
                        static_cast<double>(point.result.exec_divergence),
                        static_cast<double>(point.result.steals), point.result.wall_ms);
  }
  worker_table.Print();
  std::printf("figures byte-identical across 1/2/4/8 workers: %s\n",
              determinism_ok ? "yes" : "NO");

  // --- 4. Chaos: restore faults -> drop -> poison -> half-open recovery ----
  FaultPlan chaos_plan;
  chaos_plan.Add({.site = FaultSite::kSnapshotRestore,
                  .trigger_on = 1,
                  .period = 1,
                  .max_fires = 4,
                  .app = "redis"});
  serve::ServeOptions chaos_options;
  chaos_options.tenants = TenantMix(1.0);
  chaos_options.duration = Seconds(2);
  chaos_options.execute = false;
  chaos_options.fault_plan = &chaos_plan;
  chaos_options.quarantine.poison_ttl = Millis(120);
  core::SnapshotCache chaos_snapshots;
  auto chaos = serve::RunServing(cache, chaos_snapshots, chaos_options);
  bool chaos_recovered = false;
  if (chaos.ok()) {
    // Recovery: after the last failed restore, the struck app serves off
    // its snapshot path again (warm or on-demand restore).
    Nanos last_failure = -1;
    for (const serve::RequestRecord& rec : chaos->records) {
      if (std::string(rec.path) == "restore-fail-cold") {
        last_failure = std::max(last_failure, rec.dispatch);
      }
    }
    for (const serve::RequestRecord& rec : chaos->records) {
      if (rec.app == "redis" && rec.dispatch > last_failure &&
          (std::string(rec.path) == "warm" || std::string(rec.path) == "restore")) {
        chaos_recovered = true;
        break;
      }
    }
    chaos_recovered = chaos_recovered && chaos->quarantine_poisoned > 0 &&
                      chaos->probes > 0;
    std::printf("\nchaos (redis restores fail 4x, poison TTL 120ms): failures=%zu "
                "drops=%zu poisoned=%zu denials=%zu probes=%zu -> recovered: %s\n",
                chaos->restore_failures, chaos->quarantine_drops,
                chaos->quarantine_poisoned, chaos->quarantine_denials, chaos->probes,
                chaos_recovered ? "yes" : "NO");
  } else {
    std::fprintf(stderr, "chaos: %s\n", chaos.status().ToString().c_str());
  }

  // --- 5. JSON artifact ----------------------------------------------------
  std::FILE* json = std::fopen("BENCH_serving.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"costs\": [\n");
    for (size_t i = 0; i < probe->costs.size(); ++i) {
      const serve::AppServeCost& cost = probe->costs[i];
      std::fprintf(json,
                   "    {\"app\": \"%s\", \"cold_ms\": %.3f, \"capture_ms\": %.3f, "
                   "\"restore_ms\": %.3f, \"restore_ratio\": %.4f}%s\n",
                   cost.app.c_str(), static_cast<double>(cost.cold_ns) / 1e6,
                   static_cast<double>(cost.capture_ns) / 1e6,
                   static_cast<double>(cost.restore_ns) / 1e6, cost.restore_ratio,
                   i + 1 < probe->costs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"restore_under_half_cold\": %s,\n",
                 restore_under_half_cold ? "true" : "false");
    std::fprintf(json, "  \"sweep\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& point = sweep[i];
      std::fprintf(json,
                   "    {\"rate_multiplier\": %.1f, \"requests\": %zu, "
                   "\"warm_hit_ratio\": %.4f, \"ttfr_p50_ms\": %.3f, "
                   "\"ttfr_p99_ms\": %.3f, \"ttfr_max_ms\": %.3f, "
                   "\"queue_waits\": %zu, \"cold_boots\": %zu, \"restores\": %zu, "
                   "\"warm_hits\": %zu}%s\n",
                   point.multiplier, point.result.requests, point.result.warm_hit_ratio,
                   static_cast<double>(point.result.ttfr_p50) / 1e6,
                   static_cast<double>(point.result.ttfr_p99) / 1e6,
                   static_cast<double>(point.result.ttfr_max) / 1e6,
                   point.result.queue_waits, point.result.cold_boots,
                   point.result.restores, point.result.warm_hits,
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"workers\": [\n");
    for (size_t i = 0; i < workers.size(); ++i) {
      const WorkerPoint& point = workers[i];
      std::fprintf(json,
                   "    {\"workers\": %zu, \"digest\": \"%016llx\", "
                   "\"divergence\": %zu, \"steals\": %zu, \"wall_ms\": %.3f}%s\n",
                   point.workers, static_cast<unsigned long long>(point.digest),
                   point.result.exec_divergence, point.result.steals,
                   point.result.wall_ms, i + 1 < workers.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"determinism_ok\": %s,\n", determinism_ok ? "true" : "false");
    if (chaos.ok()) {
      std::fprintf(json,
                   "  \"chaos\": {\"restore_failures\": %zu, \"drops\": %zu, "
                   "\"poisoned\": %zu, \"denials\": %zu, \"probes\": %zu, "
                   "\"recovered\": %s},\n",
                   chaos->restore_failures, chaos->quarantine_drops,
                   chaos->quarantine_poisoned, chaos->quarantine_denials, chaos->probes,
                   chaos_recovered ? "true" : "false");
    }
    std::fprintf(json, "  \"chaos_recovered\": %s\n", chaos_recovered ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_serving.json\n");
  }
  return 0;
}

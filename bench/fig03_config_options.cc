// Figure 3: Linux kernel configuration options per source directory
// (total tree vs microVM vs lupine-base).
#include "src/kconfig/classify.h"
#include "src/kconfig/presets.h"
#include "src/util/table.h"

using namespace lupine;
using namespace lupine::kconfig;

int main() {
  PrintBanner("Figure 3: Linux kernel configuration options (log scale in the paper)");

  const OptionDb& db = OptionDb::Linux40();
  auto total = TreeTotalsByDir(db);
  auto microvm = CountByDir(MicrovmConfig(), db);
  auto base = CountByDir(LupineBase(), db);

  Table table({"directory", "total", "microvm", "lupine-base"});
  size_t sum_total = 0;
  size_t sum_microvm = 0;
  size_t sum_base = 0;
  for (int d = 0; d < kNumSourceDirs; ++d) {
    table.AddRow(SourceDirName(static_cast<SourceDir>(d)), total[d], microvm[d], base[d]);
    sum_total += total[d];
    sum_microvm += microvm[d];
    sum_base += base[d];
  }
  table.AddRow("TOTAL", sum_total, sum_microvm, sum_base);
  table.Print();

  std::printf("\nPaper: 15,953 total options in Linux 4.0; microVM selects 833;\n"
              "lupine-base retains 283 (34%% of microVM).\n");
  return 0;
}

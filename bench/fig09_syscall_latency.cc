// Figure 9: system call latency via the lmbench null/read/write tests.
#include "src/core/lineup.h"
#include "src/util/table.h"

using namespace lupine;

int main() {
  PrintBanner("Figure 9: system call latency via lmbench (us)");

  Table table({"system", "null", "read", "write"});
  for (auto& system : core::SyscallLineup()) {
    auto lat = system->SyscallLatency();
    if (!lat.ok()) {
      table.AddRow(system->name(), "n/a", "n/a", "n/a");
      continue;
    }
    table.AddRow(system->name(), lat->null_us, lat->read_us, lat->write_us);
  }
  table.Print();

  std::printf("\nPaper shape: specialization contributes up to 56%% (write) over\n"
              "microVM; KML a further ~40%% on null; OSv's hardcoded getppid is\n"
              "near-zero while its read path is off-scale; Rump's function calls\n"
              "are uniformly cheap.\n");
  return 0;
}

// Figure 6: kernel image size for a hello-world application.
#include "src/core/lineup.h"
#include "src/util/table.h"

using namespace lupine;

int main() {
  PrintBanner("Figure 6: image size for hello world");

  Table table({"system", "image size (MB)", "paper shape"});
  for (auto& system : core::ImageSizeLineup()) {
    auto size = system->KernelImageSize("hello-world");
    if (!size.ok()) {
      table.AddRow(system->name(), "n/a", size.status().ToString());
      continue;
    }
    const char* note = "";
    if (system->name() == "microvm") {
      note = "largest";
    } else if (system->name() == "lupine") {
      note = "~27% of microVM (~4 MB)";
    } else if (system->name() == "lupine-tiny") {
      note = "further ~6% smaller";
    } else if (system->name() == "lupine-general") {
      note = "< OSv and Rump";
    }
    table.AddRow(system->name(), ToMiB(size.value()), note);
  }
  table.Print();
  return 0;
}

// Figure 5: growth of unique kernel configuration options as more
// applications are supported.
#include "src/core/analysis.h"
#include "src/kconfig/presets.h"
#include "src/util/table.h"

using namespace lupine;

int main() {
  PrintBanner("Figure 5: growth of unique config options to support top-x apps");

  auto curve = core::OptionGrowthCurve();
  const auto& apps = kconfig::Top20AppNames();

  Table table({"apps considered", "through", "unique options"});
  for (size_t i = 0; i < curve.size(); ++i) {
    table.AddRow(static_cast<int>(i + 1), apps[i], static_cast<int>(curve[i]));
  }
  table.Print();

  std::printf("\nPaper: starts at 13 (nginx), flattens, ends at 19 for all 20 apps.\n");
  return 0;
}

// Extension: fleet admission control under a host memory budget.
//
// A fleet host running hundreds of Fig. 8-sized unikernels dies of
// overcommit unless launches are gated. This benchmark boots the top-20
// fleet across 4 workers under a FleetAdmissionController and sweeps the
// host budget through four regimes:
//
//   unlimited  — budget 0: every launch admitted in full (baseline).
//   queueing   — 1 GiB budget, no degradation: workers' 512 MiB requests
//                exceed the budget, so launches block FIFO and drain as
//                earlier VMs exit.
//   degrading  — 1 GiB budget, 128 MiB floor: launches that do not fit in
//                full are granted their minimum instead of waiting.
//   rejecting  — 256 MiB budget: a 512 MiB request with no floor can never
//                fit and is rejected up front.
//
// Every scenario reports per-worker and fleet-wide resident-memory rollups
// and asserts-by-reporting that peak committed bytes stayed under budget.
// The queueing scenario's full metric registry (boot-phase histograms,
// admission counters, cache gauges) plus an exemplar provisioning+boot span
// pipeline are exported to BENCH_telemetry.json (a CI artifact). Exit code
// is always 0: regression gating belongs to the CI dashboards.
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/core/fleet_boot.h"
#include "src/core/multik.h"
#include "src/kconfig/presets.h"
#include "src/telemetry/export.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/span.h"
#include "src/util/table.h"
#include "src/vmm/admission.h"

using namespace lupine;

namespace {

struct Scenario {
  const char* name;
  Bytes budget;      // 0 = unlimited.
  Bytes min_memory;  // 0 = not degradable.
};

}  // namespace

int main() {
  PrintBanner("Extension: fleet admission control (host memory budget)");

  constexpr size_t kWorkers = 4;
  constexpr Bytes kVmMemory = 512 * kMiB;
  const size_t fleet_size = kconfig::Top20AppNames().size();

  // One warm cache for every scenario: admission is about memory, not builds.
  core::KernelCache cache;
  {
    core::FleetBootOptions warmup;
    auto warm = core::RunFleetBoot(cache, warmup);
    if (!warm.ok()) {
      std::fprintf(stderr, "warmup: %s\n", warm.status().ToString().c_str());
      return 0;
    }
  }

  const std::vector<Scenario> scenarios = {
      {"unlimited", 0, 0},
      {"queueing", 1 * kGiB, 0},
      {"degrading", 1 * kGiB, 128 * kMiB},
      {"rejecting", 256 * kMiB, 0},
  };

  struct Run {
    Scenario scenario;
    core::FleetBootResult result;
    vmm::FleetAdmissionController::Stats admission;
  };
  std::vector<Run> runs;
  // The queueing scenario's registry is the exported exemplar: it exercises
  // boot-phase histograms, admission counters, and the cache gauges at once.
  telemetry::MetricRegistry queueing_registry;

  for (const Scenario& scenario : scenarios) {
    telemetry::MetricRegistry local_registry;
    telemetry::MetricRegistry& registry =
        std::string(scenario.name) == "queueing" ? queueing_registry : local_registry;
    vmm::FleetAdmissionController admission({scenario.budget, 0});
    admission.set_metrics(&registry);
    cache.set_metrics(&registry);

    core::FleetBootOptions options;
    options.workers = kWorkers;
    options.memory = kVmMemory;
    options.min_memory = scenario.min_memory;
    options.metrics = &registry;
    options.admission = &admission;
    auto result = core::RunFleetBoot(cache, options);
    cache.set_metrics(nullptr);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", scenario.name, result.status().ToString().c_str());
      return 0;
    }
    runs.push_back({scenario, *result, admission.stats()});
  }

  Table table({"scenario", "budget", "boots", "admitted", "degraded", "queued", "rejected",
               "peak committed", "under budget"});
  for (const Run& run : runs) {
    const bool under = run.scenario.budget == 0 ||
                       run.admission.peak_committed <= run.scenario.budget;
    table.AddRow(run.scenario.name,
                 run.scenario.budget == 0 ? std::string("unlimited")
                                          : FormatSize(run.scenario.budget),
                 static_cast<double>(run.result.boots),
                 static_cast<double>(run.result.admitted),
                 static_cast<double>(run.result.degraded),
                 static_cast<double>(run.result.queue_waits),
                 static_cast<double>(run.result.rejected),
                 FormatSize(run.admission.peak_committed), under ? "yes" : "NO");
  }
  table.Print();
  std::printf("\nfleet: %zu apps x %zu workers, %s per VM\n", fleet_size, kWorkers,
              FormatSize(kVmMemory).c_str());
  for (const Run& run : runs) {
    std::printf("%-10s fleet resident peak %s, sum of VM peaks %s\n", run.scenario.name,
                FormatSize(run.result.fleet_resident_peak).c_str(),
                FormatSize(run.result.fleet_resident_sum).c_str());
  }

  // --- Deterministic admission mechanics -----------------------------------
  // The fleet sweep's queue/degrade counts depend on how much the workers'
  // grant lifetimes happen to overlap on this host; this leg forces each
  // verdict with explicit threads so the exported booleans are stable.
  // Budget 1280 MiB: two full 512 MiB grants fit, a third degrades to its
  // 128 MiB floor, and a fourth (no floor) queues until a release drains it.
  vmm::FleetAdmissionController mechanics({1280 * kMiB, 0});
  vmm::Grant g1 = mechanics.Admit({"svc-a", 512 * kMiB, 0});
  vmm::Grant g2 = mechanics.Admit({"svc-b", 512 * kMiB, 0});
  vmm::Grant g3 = mechanics.Admit({"svc-c", 512 * kMiB, 128 * kMiB});
  const bool degraded_immediately = g3.valid() && g3.degraded() && !g3.waited();
  auto pending = std::async(std::launch::async,
                            [&] { return mechanics.Admit({"svc-d", 512 * kMiB, 0}); });
  while (mechanics.stats().waiting == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  g1.Release();  // 512 MiB back -> the queued launch fits in full and drains.
  vmm::Grant g4 = pending.get();
  const bool queued_then_drained = g4.valid() && g4.waited() && !g4.degraded();
  std::printf("\nmechanics: degrade-at-capacity %s, queue-then-drain-on-exit %s\n",
              degraded_immediately ? "ok" : "FAILED",
              queued_then_drained ? "ok" : "FAILED");

  // Exemplar pipeline: one artifact's host-wall provisioning spans spliced
  // with one VM's virtual boot spans (specialize -> ... -> app-main).
  telemetry::SpanTrace pipeline;
  core::KernelCache fresh;  // Cold, so the exemplar includes a real build.
  if (auto artifact = fresh.GetOrBuild("hello-world"); artifact.ok()) {
    if ((*artifact)->provisioning != nullptr) {
      pipeline.Extend(*(*artifact)->provisioning);
    }
    auto vm = (*artifact)->Launch(kVmMemory);
    if (vm->Boot().ok()) {
      (void)vm->RunToCompletion();
      pipeline.Extend(vm->boot_spans());
    }
  }

  std::string json = "{\n";
  json += "  \"fleet_size\": " + std::to_string(fleet_size) + ",\n";
  json += "  \"workers\": " + std::to_string(kWorkers) + ",\n";
  json += "  \"vm_memory_bytes\": " + std::to_string(kVmMemory) + ",\n";
  json += "  \"scenarios\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    json += "    {\"name\": \"" + std::string(run.scenario.name) + "\"";
    json += ", \"budget_bytes\": " + std::to_string(run.scenario.budget);
    json += ", \"min_memory_bytes\": " + std::to_string(run.scenario.min_memory);
    json += ", \"boots\": " + std::to_string(run.result.boots);
    json += ", \"failures\": " + std::to_string(run.result.failures);
    json += ", \"admitted\": " + std::to_string(run.result.admitted);
    json += ", \"degraded\": " + std::to_string(run.result.degraded);
    json += ", \"queue_waits\": " + std::to_string(run.result.queue_waits);
    json += ", \"rejected\": " + std::to_string(run.result.rejected);
    json += ", \"peak_committed_bytes\": " + std::to_string(run.admission.peak_committed);
    json += ", \"fleet_resident_peak_bytes\": " +
            std::to_string(run.result.fleet_resident_peak);
    json += ", \"fleet_resident_sum_bytes\": " +
            std::to_string(run.result.fleet_resident_sum);
    json += ", \"worker_resident_peak_bytes\": [";
    for (size_t w = 0; w < run.result.worker_resident_peak.size(); ++w) {
      json += (w > 0 ? ", " : "") + std::to_string(run.result.worker_resident_peak[w]);
    }
    json += "]}";
    json += i + 1 < runs.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"mechanics\": {\"degrade_at_capacity\": " +
          std::string(degraded_immediately ? "true" : "false") +
          ", \"queue_then_drain_on_exit\": " +
          std::string(queued_then_drained ? "true" : "false") + "},\n";
  json += "  \"queueing_metrics\": " +
          telemetry::ToJson(queueing_registry.Collect(), "  ") + ",\n";
  json += "  \"exemplar_pipeline_spans\": " + telemetry::ToJson(pipeline, "  ") + "\n";
  json += "}\n";
  if (telemetry::WriteFile("BENCH_telemetry.json", json).ok()) {
    std::printf("\nwrote BENCH_telemetry.json\n");
  }
  return 0;
}

// Table 1: Linux configuration options that enable/disable system calls.
#include <sstream>

#include "src/kbuild/syscalls.h"
#include "src/util/table.h"

using namespace lupine;
using namespace lupine::kbuild;

int main() {
  PrintBanner("Table 1: configuration options that gate system calls");

  Table table({"Option", "Enabled System Call(s)"});
  for (const auto& gate : SyscallGates()) {
    std::ostringstream calls;
    for (size_t i = 0; i < gate.syscalls.size(); ++i) {
      calls << (i ? ", " : "") << SyscallName(gate.syscalls[i]);
    }
    table.AddRow(gate.option, calls.str());
  }
  table.Print();

  std::printf("\n(The 12 Table 1 rows plus the SYSVIPC / POSIX_MQUEUE gates\n"
              "discussed in Section 4.1.)\n");
  return 0;
}

#include "src/unikernels/unikernel_models.h"

#include <map>

#include "src/unikernels/linux_system.h"

namespace lupine::unikernels {

AppSupport UnikernelModel::Supports(const std::string& app) const {
  if (profile_.curated_apps.count(app) != 0) {
    return {.supported = true, .reason = ""};
  }
  return {.supported = false, .reason = profile_.unsupported_reason};
}

Result<Bytes> UnikernelModel::KernelImageSize(const std::string& app) {
  Bytes size = profile_.kernel_image_size;
  if (profile_.statically_linked) {
    auto it = profile_.static_app_extra.find(app);
    if (it != profile_.static_app_extra.end()) {
      size += it->second;
    }
  }
  return size;
}

Result<Nanos> UnikernelModel::BootTime(const std::string& app) {
  (void)app;
  return profile_.boot_time;
}

Result<Bytes> UnikernelModel::MemoryFootprint(const std::string& app) {
  auto support = Supports(app);
  if (!support.supported) {
    return Status(Err::kOpNotSupp, profile_.name + " cannot run " + app + ": " +
                                       support.reason);
  }
  auto it = profile_.footprint.find(app);
  if (it == profile_.footprint.end()) {
    return Status(Err::kNoEnt, "no footprint profile for " + app);
  }
  return it->second;
}

Result<workload::SyscallLatencies> UnikernelModel::SyscallLatency() {
  return profile_.syscalls;
}

Result<double> UnikernelModel::RedisThroughput(bool set_workload) {
  double factor = set_workload ? profile_.redis_set_factor : profile_.redis_get_factor;
  if (factor == 0) {
    return Status(Err::kOpNotSupp, profile_.name + " cannot run redis");
  }
  auto baseline = MicrovmBaselineRps(set_workload ? "redis-set" : "redis-get");
  if (!baseline.ok()) {
    return baseline.status();
  }
  return baseline.value() * factor;
}

Result<double> UnikernelModel::NginxThroughput(bool per_session) {
  double factor = per_session ? profile_.nginx_sess_factor : profile_.nginx_conn_factor;
  if (factor == 0) {
    return Status(Err::kOpNotSupp, profile_.name + " cannot run nginx (" +
                                       profile_.unsupported_reason + ")");
  }
  auto baseline = MicrovmBaselineRps(per_session ? "nginx-sess" : "nginx-conn");
  if (!baseline.ok()) {
    return baseline.status();
  }
  return baseline.value() * factor;
}

Result<double> MicrovmBaselineRps(const std::string& workload_key) {
  static std::map<std::string, double> cache;
  auto it = cache.find(workload_key);
  if (it != cache.end()) {
    return it->second;
  }
  LinuxSystem microvm(MicrovmSpec());
  Result<double> rps = Status(Err::kInval, "unknown workload key " + workload_key);
  if (workload_key == "redis-get") {
    rps = microvm.RedisThroughput(false);
  } else if (workload_key == "redis-set") {
    rps = microvm.RedisThroughput(true);
  } else if (workload_key == "nginx-conn") {
    rps = microvm.NginxThroughput(false);
  } else if (workload_key == "nginx-sess") {
    rps = microvm.NginxThroughput(true);
  }
  if (rps.ok()) {
    cache[workload_key] = rps.value();
  }
  return rps;
}

UnikernelProfile OsvProfile(bool zfs) {
  UnikernelProfile p;
  p.name = zfs ? "osv-zfs" : "osv";
  p.monitor = "firecracker";
  p.kernel_image_size = static_cast<Bytes>(6.7 * kMiB);
  // OSv boots fast with a read-only filesystem; its standard zfs r/w image
  // boots ~10x slower (Section 4.3).
  p.boot_time = zfs ? Millis(110) : Millis(12);
  p.curated_apps = {"hello-world", "redis", "nginx"};
  p.supports_fork = false;
  p.unsupported_reason = "not on OSv's curated application list / no fork support";
  p.footprint = {{"hello-world", 33 * kMiB}, {"nginx", 33 * kMiB}, {"redis", 40 * kMiB}};
  // getppid is hardcoded to return 0 (fast); read of /dev/zero is
  // unsupported (slow error path); write to /dev/null costs nearly as much
  // as microVM (Section 4.5).
  p.syscalls = {.null_us = 0.003, .read_us = 0.190, .write_us = 0.060};
  p.redis_get_factor = 0.87;
  p.redis_set_factor = 0.53;  // Drops connections under set load.
  p.nginx_conn_factor = 0;    // OSv drops connections for nginx (Section 4.6).
  p.nginx_sess_factor = 0;
  p.perf_caveat = "drops connections for redis-set and nginx";
  return p;
}

UnikernelProfile HermituxProfile() {
  UnikernelProfile p;
  p.name = "hermitux";
  p.monitor = "uhyve";
  p.kernel_image_size = static_cast<Bytes>(1.3 * kMiB);
  p.boot_time = Millis(32);
  p.curated_apps = {"hello-world", "redis"};  // nginx is not curated (Section 4.4).
  p.supports_fork = false;
  p.unsupported_reason = "application not curated for HermiTux";
  p.footprint = {{"hello-world", 9 * kMiB}, {"redis", 28 * kMiB}};
  // Binary-compatible syscall interception: cheap null path, expensive
  // read/write emulation (the two off-scale bars in Fig. 9).
  p.syscalls = {.null_us = 0.045, .read_us = 0.190, .write_us = 0.170};
  p.redis_get_factor = 0.66;
  p.redis_set_factor = 0.67;
  p.nginx_conn_factor = 0;
  p.nginx_sess_factor = 0;
  p.perf_caveat = "nginx has not been curated for HermiTux";
  return p;
}

UnikernelProfile RumpProfile() {
  UnikernelProfile p;
  p.name = "rump";
  p.monitor = "solo5-hvt";
  // Rump statically links the NetBSD-derived libOS with the app; hello
  // without libc is the smallest possible image (Section 4.2).
  p.kernel_image_size = static_cast<Bytes>(8.2 * kMiB);
  p.statically_linked = true;
  p.static_app_extra = {{"hello-world", 0},
                        {"redis", static_cast<Bytes>(2.1 * kMiB)},
                        {"nginx", static_cast<Bytes>(1.6 * kMiB)}};
  p.boot_time = Millis(9);
  p.curated_apps = {"hello-world", "redis", "nginx"};
  p.supports_fork = false;
  p.unsupported_reason = "requires relinking against rumprun; fork unsupported";
  p.footprint = {{"hello-world", 12 * kMiB}, {"nginx", 20 * kMiB}, {"redis", 36 * kMiB}};
  // Syscalls are plain function calls into the NetBSD libOS.
  p.syscalls = {.null_us = 0.017, .read_us = 0.021, .write_us = 0.020};
  p.redis_get_factor = 0.99;
  p.redis_set_factor = 0.99;
  p.nginx_conn_factor = 1.25;
  p.nginx_sess_factor = 0.53;
  p.perf_caveat = "nginx-sess collapses under keep-alive load";
  return p;
}

}  // namespace lupine::unikernels

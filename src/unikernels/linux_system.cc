#include "src/unikernels/linux_system.h"

#include "src/apps/builtin.h"
#include "src/apps/manifest.h"
#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"
#include "src/workload/app_bench.h"

namespace lupine::unikernels {

LinuxVariantSpec MicrovmSpec() {
  return {.name = "microvm", .base = LinuxBase::kMicrovm, .kml = false, .tiny = false};
}
LinuxVariantSpec LupineSpec() {
  return {.name = "lupine", .base = LinuxBase::kLupineApp, .kml = true, .tiny = false};
}
LinuxVariantSpec LupineNokmlSpec() {
  return {.name = "lupine-nokml", .base = LinuxBase::kLupineApp, .kml = false, .tiny = false};
}
LinuxVariantSpec LupineTinySpec() {
  return {.name = "lupine-tiny", .base = LinuxBase::kLupineApp, .kml = true, .tiny = true};
}
LinuxVariantSpec LupineNokmlTinySpec() {
  return {.name = "lupine-nokml-tiny", .base = LinuxBase::kLupineApp, .kml = false,
          .tiny = true};
}
LinuxVariantSpec LupineGeneralSpec() {
  return {.name = "lupine-general", .base = LinuxBase::kLupineGeneral, .kml = true,
          .tiny = false};
}
LinuxVariantSpec LupineGeneralNokmlSpec() {
  return {.name = "lupine-general-nokml", .base = LinuxBase::kLupineGeneral, .kml = false,
          .tiny = false};
}

Result<kconfig::Config> BuildVariantConfig(const LinuxVariantSpec& spec,
                                           const std::string& app) {
  kconfig::Config config;
  switch (spec.base) {
    case LinuxBase::kMicrovm:
      config = kconfig::MicrovmConfig();
      break;
    case LinuxBase::kLupineApp: {
      auto result = kconfig::LupineForApp(app);
      if (!result.ok()) {
        return result.status();
      }
      config = result.take();
      break;
    }
    case LinuxBase::kLupineGeneral:
      config = kconfig::LupineGeneral();
      break;
  }
  if (spec.tiny) {
    kconfig::ApplyTiny(config);
  }
  if (spec.base != LinuxBase::kMicrovm) {
    // Lupine's supervised posture (same as LupineBuilder): panic reboots
    // immediately so the monitor restarts the guest. microVM keeps the stock
    // PANIC_TIMEOUT=0 halt.
    config.SetValue(kconfig::names::kPanicTimeout, "-1");
  }
  if (spec.kml) {
    if (Status s = kconfig::ApplyKml(config); !s.ok()) {
      return s;
    }
  }
  config.set_name(spec.name + (spec.base == LinuxBase::kLupineApp ? "-" + app : ""));
  return config;
}

LinuxSystem::LinuxSystem(LinuxVariantSpec spec) : spec_(std::move(spec)) {
  apps::RegisterBuiltinApps();
}

AppSupport LinuxSystem::Supports(const std::string& app) const {
  // Linux runs anything, including multi-process applications (Section 5).
  (void)app;
  return {.supported = true, .reason = ""};
}

Result<std::unique_ptr<vmm::Vm>> LinuxSystem::MakeVm(const std::string& app, Bytes memory,
                                                     bool bench_rootfs,
                                                     FaultInjector* faults) {
  auto config = BuildVariantConfig(spec_, app);
  if (!config.ok()) {
    return config.status();
  }
  kbuild::ImageBuilder builder;
  auto image = builder.Build(config.value());
  if (!image.ok()) {
    return image.status();
  }
  vmm::VmSpec vm_spec;
  vm_spec.monitor = vmm::Firecracker();
  vm_spec.image = image.take();
  vm_spec.rootfs = bench_rootfs ? apps::BuildBenchRootfs(spec_.kml)
                                : apps::BuildAppRootfsForApp(app, spec_.kml);
  vm_spec.memory = memory;
  vm_spec.faults = faults;
  return std::make_unique<vmm::Vm>(std::move(vm_spec));
}

Result<Bytes> LinuxSystem::KernelImageSize(const std::string& app) {
  auto config = BuildVariantConfig(spec_, app);
  if (!config.ok()) {
    return config.status();
  }
  kbuild::ImageBuilder builder;
  auto image = builder.Build(config.value());
  if (!image.ok()) {
    return image.status();
  }
  return image.value().size;
}

Result<Nanos> LinuxSystem::BootTime(const std::string& app) {
  auto vm = MakeVm(app, 512 * kMiB);
  if (!vm.ok()) {
    return vm.status();
  }
  if (Status s = (*vm)->Boot(); !s.ok()) {
    return s;
  }
  return (*vm)->boot_report().to_init;
}

Result<Bytes> LinuxSystem::MemoryFootprint(const std::string& app) {
  const apps::AppManifest* manifest = apps::FindManifest(app);
  if (manifest == nullptr) {
    return Status(Err::kNoEnt, "unknown app " + app);
  }
  const std::string ready = manifest->ready_line;
  bool is_server = manifest->kind == apps::AppKind::kServer;

  auto try_run = [&](Bytes memory) {
    auto vm = MakeVm(app, memory);
    if (!vm.ok()) {
      return false;
    }
    if (is_server) {
      if (!workload::BootAppServer(**vm, ready)) {
        return false;
      }
      // Success criteria: a handful of real requests must succeed.
      if (app == "redis") {
        auto result = workload::RunRedisBenchmark(**vm, /*set_workload=*/true, /*ops=*/32,
                                                  /*connections=*/2);
        return !(*vm)->kernel().oom() && result.errors == 0 && result.completed > 0;
      }
      if (app == "nginx") {
        auto result = workload::RunApacheBench(**vm, /*total_requests=*/32,
                                               /*requests_per_conn=*/4);
        return !(*vm)->kernel().oom() && result.errors == 0 && result.completed > 0;
      }
      return !(*vm)->kernel().oom();
    }
    auto result = (*vm)->BootAndRun();
    return result.status.ok() && result.exit_code == 0 && !(*vm)->kernel().oom() &&
           (*vm)->kernel().console().Contains(ready);
  };
  Bytes footprint = vmm::MinMemoryProbe(kMiB, 512 * kMiB, try_run);
  if (footprint == 0) {
    return Status(Err::kNoMem, app + " does not run in 512 MiB");
  }
  return footprint;
}

Result<workload::SyscallLatencies> LinuxSystem::SyscallLatency() {
  auto vm = MakeVm("hello-world", 512 * kMiB, /*bench_rootfs=*/true);
  if (!vm.ok()) {
    return vm.status();
  }
  if (Status s = (*vm)->Boot(); !s.ok()) {
    return s;
  }
  (*vm)->kernel().Run();
  return workload::MeasureSyscallLatency(**vm);
}

Result<double> LinuxSystem::ServerThroughput(const std::string& app, bool redis_set,
                                             bool per_session) {
  auto vm = MakeVm(app, 512 * kMiB);
  if (!vm.ok()) {
    return vm.status();
  }
  const apps::AppManifest* manifest = apps::FindManifest(app);
  if (!workload::BootAppServer(**vm, manifest->ready_line)) {
    return Status(Err::kIo, app + " failed to start on " + spec_.name);
  }
  workload::ThroughputResult result;
  if (app == "redis") {
    result = workload::RunRedisBenchmark(**vm, redis_set);
  } else {
    result = workload::RunApacheBench(**vm, /*total_requests=*/2000,
                                      /*requests_per_conn=*/per_session ? 100 : 1);
  }
  if (result.completed == 0) {
    return Status(Err::kIo, "no requests completed");
  }
  return result.requests_per_sec;
}

Result<double> LinuxSystem::RedisThroughput(bool set_workload) {
  return ServerThroughput("redis", set_workload, false);
}

Result<double> LinuxSystem::NginxThroughput(bool per_session) {
  return ServerThroughput("nginx", false, per_session);
}

}  // namespace lupine::unikernels

// SystemUnderTest: the uniform measurement interface every system in the
// evaluation implements — the Linux variants (microVM, lupine*) via the full
// guest simulation, and the reference unikernels (OSv, HermiTux, Rump) via
// their documented behaviour models.
#ifndef SRC_UNIKERNELS_SYSTEM_H_
#define SRC_UNIKERNELS_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/units.h"
#include "src/workload/lmbench.h"

namespace lupine::unikernels {

// Why an application cannot run (the generality comparison of Sections 4/5).
struct AppSupport {
  bool supported = false;
  std::string reason;  // e.g. "not on curated application list", "crashes on fork".
};

class SystemUnderTest {
 public:
  virtual ~SystemUnderTest() = default;

  virtual std::string name() const = 0;
  virtual std::string monitor() const = 0;

  // Can this system run `app` unmodified?
  virtual AppSupport Supports(const std::string& app) const = 0;

  // Fig. 6: kernel image size when built/configured for `app`.
  virtual Result<Bytes> KernelImageSize(const std::string& app) = 0;

  // Fig. 7: boot-to-init time for a hello-world image.
  virtual Result<Nanos> BootTime(const std::string& app) = 0;

  // Fig. 8: minimum memory to run `app` successfully.
  virtual Result<Bytes> MemoryFootprint(const std::string& app) = 0;

  // Fig. 9: lmbench null/read/write latency.
  virtual Result<workload::SyscallLatencies> SyscallLatency() = 0;

  // Table 4: absolute server throughput (requests/s).
  virtual Result<double> RedisThroughput(bool set_workload) = 0;
  virtual Result<double> NginxThroughput(bool per_session) = 0;
};

}  // namespace lupine::unikernels

#endif  // SRC_UNIKERNELS_SYSTEM_H_

// Linux-based systems under test: microVM and the Lupine variants.
#ifndef SRC_UNIKERNELS_LINUX_SYSTEM_H_
#define SRC_UNIKERNELS_LINUX_SYSTEM_H_

#include <memory>
#include <string>

#include "src/kconfig/config.h"
#include "src/unikernels/system.h"
#include "src/vmm/vm.h"

namespace lupine::unikernels {

// Which base configuration the variant starts from.
enum class LinuxBase {
  kMicrovm,        // Firecracker's general-purpose config.
  kLupineApp,      // lupine-base + per-app options (Table 3).
  kLupineGeneral,  // lupine-base + the 19-option union.
};

struct LinuxVariantSpec {
  std::string name;       // Display name, e.g. "lupine-tiny".
  LinuxBase base = LinuxBase::kLupineApp;
  bool kml = true;        // Apply the KML patch (off = -nokml).
  bool tiny = false;      // -Os + the 9 space-over-speed options.
};

// The paper's lineup (Table 2 + Section 4 variants).
LinuxVariantSpec MicrovmSpec();
LinuxVariantSpec LupineSpec();            // app-specific + KML.
LinuxVariantSpec LupineNokmlSpec();
LinuxVariantSpec LupineTinySpec();
LinuxVariantSpec LupineNokmlTinySpec();
LinuxVariantSpec LupineGeneralSpec();     // 19-option union + KML.
LinuxVariantSpec LupineGeneralNokmlSpec();

// Builds the kernel configuration for a variant, specialized (where
// applicable) to `app`.
Result<kconfig::Config> BuildVariantConfig(const LinuxVariantSpec& spec, const std::string& app);

class LinuxSystem : public SystemUnderTest {
 public:
  explicit LinuxSystem(LinuxVariantSpec spec);

  std::string name() const override { return spec_.name; }
  std::string monitor() const override { return "firecracker"; }
  AppSupport Supports(const std::string& app) const override;

  Result<Bytes> KernelImageSize(const std::string& app) override;
  Result<Nanos> BootTime(const std::string& app) override;
  Result<Bytes> MemoryFootprint(const std::string& app) override;
  Result<workload::SyscallLatencies> SyscallLatency() override;
  Result<double> RedisThroughput(bool set_workload) override;
  Result<double> NginxThroughput(bool per_session) override;

  // Creates a VM for `app` with `memory` RAM (shared with tests/benches).
  // `faults` (non-owning, may be nullptr) arms the guest's fault injector.
  Result<std::unique_ptr<vmm::Vm>> MakeVm(const std::string& app, Bytes memory,
                                          bool bench_rootfs = false,
                                          FaultInjector* faults = nullptr);

  const LinuxVariantSpec& spec() const { return spec_; }

 private:
  Result<double> ServerThroughput(const std::string& app, bool redis_set, bool per_session);

  LinuxVariantSpec spec_;
};

}  // namespace lupine::unikernels

#endif  // SRC_UNIKERNELS_LINUX_SYSTEM_H_

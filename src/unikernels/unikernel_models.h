// Reference unikernel models: OSv, HermiTux, Rumprun.
//
// These systems' kernels are not Linux and are not re-implemented here;
// each is modelled by its documented, measured behaviour (curated app lists,
// crash-on-fork, OSv's hardcoded getppid and zfs-vs-rofs boot, Rump's static
// linking, connection-drop failure modes). Image sizes, boot phases,
// footprints and syscall latencies are profile constants; application
// throughput is anchored to the simulated microVM baseline via per-system
// factors from Table 4 (see DESIGN.md, substitution table).
#ifndef SRC_UNIKERNELS_UNIKERNEL_MODELS_H_
#define SRC_UNIKERNELS_UNIKERNEL_MODELS_H_

#include <map>
#include <set>
#include <string>

#include "src/unikernels/system.h"

namespace lupine::unikernels {

struct UnikernelProfile {
  std::string name;
  std::string monitor;

  Bytes kernel_image_size = 0;             // Loader/kernel image (Fig. 6).
  bool statically_linked = false;          // Rump: app linked into the image.
  std::map<std::string, Bytes> static_app_extra;  // Extra image bytes per app.

  Nanos boot_time = 0;                     // Monitor + unikernel boot (Fig. 7).

  std::set<std::string> curated_apps;      // The curated application list.
  bool supports_fork = false;
  std::string unsupported_reason;

  std::map<std::string, Bytes> footprint;  // Min memory per app (Fig. 8).

  workload::SyscallLatencies syscalls;     // Fig. 9 (us).

  // Table 4 anchors: throughput relative to the simulated microVM baseline.
  double redis_get_factor = 0;             // 0 = cannot run.
  double redis_set_factor = 0;
  double nginx_conn_factor = 0;
  double nginx_sess_factor = 0;
  std::string perf_caveat;                 // e.g. "drops connections".
};

class UnikernelModel : public SystemUnderTest {
 public:
  explicit UnikernelModel(UnikernelProfile profile) : profile_(std::move(profile)) {}

  std::string name() const override { return profile_.name; }
  std::string monitor() const override { return profile_.monitor; }
  AppSupport Supports(const std::string& app) const override;

  Result<Bytes> KernelImageSize(const std::string& app) override;
  Result<Nanos> BootTime(const std::string& app) override;
  Result<Bytes> MemoryFootprint(const std::string& app) override;
  Result<workload::SyscallLatencies> SyscallLatency() override;
  Result<double> RedisThroughput(bool set_workload) override;
  Result<double> NginxThroughput(bool per_session) override;

  const UnikernelProfile& profile() const { return profile_; }

 private:
  UnikernelProfile profile_;
};

// The evaluated configurations.
UnikernelProfile OsvProfile(bool zfs = false);   // zfs: the slow r/w boot path.
UnikernelProfile HermituxProfile();
UnikernelProfile RumpProfile();

// Simulated microVM reference throughput (cached across calls); unikernel
// profiles scale from this anchor.
Result<double> MicrovmBaselineRps(const std::string& workload_key);

}  // namespace lupine::unikernels

#endif  // SRC_UNIKERNELS_UNIKERNEL_MODELS_H_

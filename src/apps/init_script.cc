#include "src/apps/init_script.h"

#include <sstream>

#include "src/guestos/syscall_api.h"

namespace lupine::apps {
namespace {

using guestos::SyscallApi;

int InitInterpreterMain(SyscallApi& sys, const std::vector<std::string>& argv) {
  if (argv.empty()) {
    (void)sys.Write(2, "init: no script path\n");
    return 1;
  }
  const std::string& script_path = argv[0];
  auto fd = sys.Open(script_path);
  if (!fd.ok()) {
    (void)sys.Write(2, "init: cannot open " + script_path + "\n");
    return 1;
  }
  auto content = sys.Read(fd.value(), 1 << 20);
  (void)sys.Close(fd.value());
  if (!content.ok()) {
    (void)sys.Write(2, "init: cannot read " + script_path + "\n");
    return 1;
  }

  guestos::Process* self = sys.CurrentProcess();
  std::istringstream in(content.value());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream words(line);
    std::string cmd;
    words >> cmd;

    if (cmd == "hostname") {
      std::string name;
      words >> name;
      if (Status s = sys.Sethostname(name); !s.ok()) {
        (void)sys.Write(2, "init: hostname: " + s.ToString() + "\n");
        return 1;
      }
    } else if (cmd == "mount") {
      std::string fstype, path;
      words >> fstype >> path;
      if (Status s = sys.Mount(fstype, path); !s.ok()) {
        (void)sys.Write(2, s.message() + "\n");
        return 1;
      }
    } else if (cmd == "mkdir") {
      std::string path;
      words >> path;
      if (Status s = sys.Mkdir(path); !s.ok() && s.err() != Err::kExist) {
        (void)sys.Write(2, "init: mkdir " + path + ": " + s.ToString() + "\n");
        return 1;
      }
    } else if (cmd == "env") {
      std::string kv;
      words >> kv;
      size_t eq = kv.find('=');
      if (eq != std::string::npos && self != nullptr) {
        self->env[kv.substr(0, eq)] = kv.substr(eq + 1);
      }
    } else if (cmd == "ulimit") {
      std::string resource;
      uint64_t value = 0;
      words >> resource >> value;
      if (Status s = sys.Setrlimit(/*resource=*/7, value); !s.ok()) {
        (void)sys.Write(2, "init: ulimit: " + s.ToString() + "\n");
        return 1;
      }
    } else if (cmd == "entropy") {
      // Seed the entropy pool by reading /dev/urandom.
      auto rng = sys.Open("/dev/urandom");
      if (rng.ok()) {
        (void)sys.Read(rng.value(), 512);
        (void)sys.Close(rng.value());
      }
    } else if (cmd == "exec") {
      std::vector<std::string> exec_argv;
      std::string word;
      while (words >> word) {
        exec_argv.push_back(word);
      }
      if (exec_argv.empty()) {
        (void)sys.Write(2, "init: exec: missing command\n");
        return 1;
      }
      std::string binary = exec_argv[0];
      Status s = sys.Execve(binary, exec_argv);
      // Execve only returns on failure.
      (void)sys.Write(2, "init: exec " + binary + " failed: " + s.ToString() + "\n");
      return 1;
    } else {
      (void)sys.Write(2, "init: unknown command '" + cmd + "'\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace

std::string GenerateInitScript(const ContainerImage& image) {
  std::ostringstream out;
  out << "#!lupine-init\n";
  out << "hostname " << image.app << "\n";
  if (image.mounts_proc) {
    out << "mount proc /proc\n";
  }
  for (const auto& dir : image.setup_dirs) {
    out << "mkdir " << dir << "\n";
  }
  for (const auto& [key, value] : image.env) {
    out << "env " << key << "=" << value << "\n";
  }
  if (image.ulimit_nofile != 0) {
    out << "ulimit nofile " << image.ulimit_nofile << "\n";
  }
  if (image.needs_entropy) {
    out << "entropy\n";
  }
  out << "exec";
  for (const auto& arg : image.entrypoint) {
    out << " " << arg;
  }
  out << "\n";
  return out.str();
}

void RegisterInitInterpreter(guestos::AppRegistry* registry) {
  registry->Register("lupine-init", InitInterpreterMain);
}

}  // namespace lupine::apps

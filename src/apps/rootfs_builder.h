// Rootfs construction: container image -> bootable LUPX2FS blob.
//
// Mirrors Figure 2's bottom half: the application binary and its libraries
// come from the (Alpine-based) container image, a KML-enabled musl libc is
// installed when building for a KML kernel, and the generated startup script
// becomes /sbin/init.
#ifndef SRC_APPS_ROOTFS_BUILDER_H_
#define SRC_APPS_ROOTFS_BUILDER_H_

#include <string>

#include "src/apps/container.h"
#include "src/guestos/rootfs.h"

namespace lupine::apps {

struct RootfsOptions {
  // Install the KML-patched musl (Section 3.2). Dynamically-linked app
  // binaries pick it up without recompilation; static ones must be relinked.
  bool kml_libc = false;
};

// Builds the filesystem spec for `image` (app binary + libs + init script).
guestos::FsSpec BuildAppRootfsSpec(const ContainerImage& image, const RootfsOptions& options);

// Convenience: spec -> serialized image blob.
std::string BuildAppRootfs(const ContainerImage& image, const RootfsOptions& options);
std::string BuildAppRootfsForApp(const std::string& app, bool kml_libc);

// A rootfs with the microbenchmark helpers (/bin/hello, /bin/sh) used by the
// lmbench fork/exec/sh tests.
std::string BuildBenchRootfs(bool kml_libc);

}  // namespace lupine::apps

#endif  // SRC_APPS_ROOTFS_BUILDER_H_

// Container image metadata (the Docker-Hub side of Figure 2).
//
// Lupine leverages container images for minimal root filesystems: the
// image supplies the application binary, its dynamically-linked libraries,
// and metadata (entrypoint, env) from which the startup script is derived.
#ifndef SRC_APPS_CONTAINER_H_
#define SRC_APPS_CONTAINER_H_

#include <map>
#include <string>
#include <vector>

#include "src/apps/manifest.h"

namespace lupine::apps {

struct ContainerImage {
  std::string name;                              // e.g. "redis:alpine".
  std::string app;                               // Manifest / registry key.
  std::vector<std::string> entrypoint;           // argv of the app binary.
  std::map<std::string, std::string> env;        // Environment variables.
  std::vector<std::string> setup_dirs;           // Directories init creates.
  bool mounts_proc = true;
  bool needs_entropy = false;
  uint64_t ulimit_nofile = 0;                    // 0 = leave default.
};

// Synthesizes the Alpine-based container image for a top-20 application.
ContainerImage MakeAlpineImage(const AppManifest& manifest);

}  // namespace lupine::apps

#endif  // SRC_APPS_CONTAINER_H_

// Content-addressed cache of built rootfs blobs.
//
// The fleet path used to call BuildAppRootfs once per GetOrBuild, so a
// top-20 rebuild serialized twenty LUPX2FS images even when nineteen were
// byte-identical to the last run. This cache mirrors the kernel-side
// KernelCache design: blobs are keyed by (container-image digest,
// RootfsOptions), concurrent requests for the same key share one build
// (single flight), and a size-aware LRU keeps the store under a configurable
// byte/entry budget. Blobs are handed out as shared_ptr<const std::string>;
// an entry some fleet member still holds is pinned and never evicted.
#ifndef SRC_APPS_ROOTFS_CACHE_H_
#define SRC_APPS_ROOTFS_CACHE_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/apps/rootfs_builder.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/util/lru.h"

namespace lupine::apps {

class RootfsCache {
 public:
  using BlobPtr = std::shared_ptr<const std::string>;

  // Default: unbounded (never evicts), matching the kernel cache.
  explicit RootfsCache(CacheBudget budget = {}) : budget_(budget) {}

  // Returns the (possibly shared) rootfs blob for `image` built with
  // `options`, building it at most once per distinct key across all
  // threads. Never fails: rootfs construction is deterministic string
  // assembly.
  BlobPtr GetOrBuild(const ContainerImage& image, const RootfsOptions& options);

  // The cache key: a digest over every field of the container image that
  // reaches the blob, plus the build options (a KML rootfs carries a
  // different musl, so kml_libc is part of the key, never collapsed).
  static std::string CacheKey(const ContainerImage& image, const RootfsOptions& options);

  // Pure probe: true when the blob for (image, options) is resident (stored
  // or on a completed flight). No side effects — no stats, no LRU touch —
  // so provisioning planners can ask "would this be a hit?" without
  // perturbing the counters the storm tests assert on.
  bool Contains(const ContainerImage& image, const RootfsOptions& options) const;

  // Drops the cached blob for (image, options) so the next request rebuilds
  // it from scratch — the quarantine path: an artifact whose launches keep
  // failing must not be served its possibly-poisoned rootfs back from cache.
  // Returns true when an entry was actually dropped. An in-flight build is
  // left alone (its waiters hold the blob already); callers invalidate again
  // after the next failure.
  bool Invalidate(const ContainerImage& image, const RootfsOptions& options);

  struct Stats {
    size_t requests = 0;
    size_t builds = 0;       // Key misses that ran BuildAppRootfs.
    size_t hits = 0;         // Served from the store or a completed flight.
    size_t invalidations = 0;  // Quarantine drops (rebuild-forcing).
    size_t evictions = 0;
    Bytes bytes_evicted = 0;
    Bytes bytes_stored = 0;  // Live blob bytes.
    // Blob bytes some caller still references — unevictable until released.
    Bytes bytes_pinned = 0;
    size_t entries = 0;
  };
  Stats stats() const;

  // Publishes the current Stats as absolute-valued `rootfscache.*` gauges.
  // Call at a snapshot point; gauges overwrite, so this is idempotent.
  void PublishMetrics(telemetry::MetricRegistry& registry) const;

  // Replaces the retention budget and immediately evicts down to it.
  void set_budget(CacheBudget budget);

  // Optional, non-owning flight-recorder sink: hit/miss/evict/invalidate
  // events under source "rootfs-cache". Cache outcomes depend on which
  // worker reached the key first, so the events are schedule-scoped (full
  // export / Perfetto only). The journal must outlive the cache.
  void set_journal(telemetry::Journal* journal) {
    std::lock_guard lock(mu_);
    journal_ = journal;
  }

 private:
  // An in-progress build. Waiters take the blob straight off the flight, so
  // even a blob evicted immediately (tiny budget) reaches every waiter.
  struct Flight {
    bool done = false;
    BlobPtr blob;
  };

  void EvictLocked();
  // Caller holds mu_. No-op until set_journal.
  void EmitLocked(const char* type, const std::string& key) const;

  mutable std::mutex mu_;
  telemetry::Journal* journal_ = nullptr;
  std::condition_variable cv_;
  CacheBudget budget_;
  std::map<std::string, BlobPtr> blobs_;                    // By cache key.
  std::map<std::string, std::shared_ptr<Flight>> flights_;  // By cache key.
  LruTracker lru_;
  size_t requests_ = 0;
  size_t builds_ = 0;
  size_t hits_ = 0;
  size_t invalidations_ = 0;
  size_t evictions_ = 0;
  Bytes bytes_evicted_ = 0;
};

}  // namespace lupine::apps

#endif  // SRC_APPS_ROOTFS_CACHE_H_

#include "src/apps/rootfs_cache.h"

#include <functional>
#include <sstream>
#include <utility>

namespace lupine::apps {

std::string RootfsCache::CacheKey(const ContainerImage& image,
                                  const RootfsOptions& options) {
  // Canonical text over every image field the built blob depends on. Field
  // and element separators are control bytes that cannot appear in the
  // values, so distinct images cannot serialize identically. env is a
  // std::map, already in sorted order.
  std::ostringstream canon;
  canon << image.name << '\x1f' << image.app << '\x1f';
  for (const auto& arg : image.entrypoint) {
    canon << arg << '\x1e';
  }
  canon << '\x1f';
  for (const auto& [key, value] : image.env) {
    canon << key << '=' << value << '\x1e';
  }
  canon << '\x1f';
  for (const auto& dir : image.setup_dirs) {
    canon << dir << '\x1e';
  }
  canon << '\x1f' << image.mounts_proc << ';' << image.needs_entropy << ';'
        << image.ulimit_nofile;
  // The option axis stays outside the digest so keys are debuggable: the
  // same image with and without the KML musl is visibly two entries.
  return std::to_string(std::hash<std::string>{}(canon.str())) +
         (options.kml_libc ? ";kml=1" : ";kml=0");
}

void RootfsCache::EmitLocked(const char* type, const std::string& key) const {
  if (journal_ == nullptr) {
    return;
  }
  telemetry::Event event;
  event.source = "rootfs-cache";
  event.type = type;
  event.schedule_scoped = true;  // Outcome depends on worker interleaving.
  event.fields = {{"key", telemetry::FieldValue{key}}};
  journal_->Emit(std::move(event));
}

RootfsCache::BlobPtr RootfsCache::GetOrBuild(const ContainerImage& image,
                                             const RootfsOptions& options) {
  const std::string key = CacheKey(image, options);

  std::unique_lock lock(mu_);
  ++requests_;
  std::shared_ptr<Flight> flight;
  for (;;) {
    auto cached = blobs_.find(key);
    if (cached != blobs_.end()) {
      ++hits_;
      lru_.Touch(key);
      EmitLocked("hit", key);
      return cached->second;
    }
    auto flying = flights_.find(key);
    if (flying == flights_.end()) {
      flight = std::make_shared<Flight>();
      flights_.emplace(key, flight);
      EmitLocked("miss", key);
      break;
    }
    std::shared_ptr<Flight> other = flying->second;
    cv_.wait(lock, [&] { return other->done; });
    // The blob rides on the flight itself: correct even if a tiny budget
    // already evicted the store entry.
    ++hits_;
    EmitLocked("hit", key);
    return other->blob;
  }

  lock.unlock();
  auto blob = std::make_shared<const std::string>(BuildAppRootfs(image, options));
  lock.lock();
  ++builds_;
  blobs_.emplace(key, blob);
  lru_.Insert(key, blob->size());
  EvictLocked();
  flight->blob = blob;
  flight->done = true;
  flights_.erase(key);
  cv_.notify_all();
  return blob;
}

bool RootfsCache::Contains(const ContainerImage& image, const RootfsOptions& options) const {
  const std::string key = CacheKey(image, options);
  std::lock_guard lock(mu_);
  if (blobs_.count(key) > 0) {
    return true;
  }
  auto flight = flights_.find(key);
  return flight != flights_.end() && flight->second->done;
}

bool RootfsCache::Invalidate(const ContainerImage& image, const RootfsOptions& options) {
  const std::string key = CacheKey(image, options);
  std::lock_guard lock(mu_);
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return false;
  }
  lru_.Erase(key);
  blobs_.erase(it);
  ++invalidations_;
  EmitLocked("invalidate", key);
  return true;
}

void RootfsCache::EvictLocked() {
  evictions_ += lru_.EvictOver(
      budget_,
      // Pinned: some caller still holds the blob (the store's own reference
      // is the +1). Such entries survive even over budget.
      [&](const std::string& key) { return blobs_.at(key).use_count() > 1; },
      [&](const std::string& key, Bytes bytes) {
        bytes_evicted_ += bytes;
        blobs_.erase(key);
        EmitLocked("evict", key);
      });
}

RootfsCache::Stats RootfsCache::stats() const {
  std::lock_guard lock(mu_);
  Stats stats;
  stats.requests = requests_;
  stats.builds = builds_;
  stats.hits = hits_;
  stats.invalidations = invalidations_;
  stats.evictions = evictions_;
  stats.bytes_evicted = bytes_evicted_;
  stats.bytes_stored = lru_.bytes();
  for (const auto& [key, blob] : blobs_) {
    if (blob.use_count() > 1) {
      stats.bytes_pinned += blob->size();
    }
  }
  stats.entries = lru_.entries();
  return stats;
}

void RootfsCache::PublishMetrics(telemetry::MetricRegistry& registry) const {
  const Stats s = stats();
  auto set = [&registry](const char* name, uint64_t value) {
    registry.GetGauge(name).Set(static_cast<int64_t>(value));
  };
  set("rootfscache.requests", s.requests);
  set("rootfscache.builds", s.builds);
  set("rootfscache.hits", s.hits);
  set("rootfscache.invalidations", s.invalidations);
  set("rootfscache.evictions", s.evictions);
  set("rootfscache.bytes_evicted", s.bytes_evicted);
  set("rootfscache.bytes_stored", s.bytes_stored);
  set("rootfscache.bytes_pinned", s.bytes_pinned);
  set("rootfscache.entries", s.entries);
}

void RootfsCache::set_budget(CacheBudget budget) {
  std::lock_guard lock(mu_);
  budget_ = budget;
  EvictLocked();
}

}  // namespace lupine::apps

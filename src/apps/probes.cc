#include "src/apps/probes.h"

#include "src/kconfig/option_names.h"

namespace lupine::apps {
namespace {

namespace n = kconfig::names;
using guestos::SockDomain;
using guestos::SockType;
using guestos::SyscallApi;

void Say(SyscallApi& sys, const std::string& message) {
  (void)sys.Write(2, message + "\n");
}

bool ProbeFutex(SyscallApi& sys) {
  static int word = 1;
  // FUTEX_WAIT with a non-matching value returns EAGAIN immediately on a
  // futex-enabled kernel; ENOSYS otherwise.
  Status s = sys.FutexWait(&word, 0);
  if (s.err() == Err::kNoSys) {
    Say(sys, "the futex facility returned an unexpected error code");
    return false;
  }
  return true;
}

bool ProbeEpoll(SyscallApi& sys) {
  auto fd = sys.EpollCreate1();
  if (!fd.ok()) {
    Say(sys, "epoll_create1 failed: function not implemented");
    return false;
  }
  (void)sys.Close(fd.value());
  return true;
}

bool ProbeUnix(SyscallApi& sys) {
  auto fd = sys.Socket(SockDomain::kUnix, SockType::kStream);
  if (!fd.ok()) {
    Say(sys, "can't create UNIX socket");
    return false;
  }
  (void)sys.Close(fd.value());
  return true;
}

bool ProbeEventfd(SyscallApi& sys) {
  auto fd = sys.Eventfd();
  if (!fd.ok()) {
    Say(sys, "eventfd: function not implemented");
    return false;
  }
  (void)sys.Close(fd.value());
  return true;
}

bool ProbeAio(SyscallApi& sys) {
  auto ctx = sys.IoSetup();
  if (!ctx.ok()) {
    Say(sys, "io_setup: function not implemented");
    return false;
  }
  return true;
}

bool ProbeTimerfd(SyscallApi& sys) {
  auto fd = sys.TimerfdCreate();
  if (!fd.ok()) {
    Say(sys, "timerfd_create: function not implemented");
    return false;
  }
  (void)sys.Close(fd.value());
  return true;
}

bool ProbeSignalfd(SyscallApi& sys) {
  auto fd = sys.Signalfd();
  if (!fd.ok()) {
    Say(sys, "signalfd: function not implemented");
    return false;
  }
  (void)sys.Close(fd.value());
  return true;
}

bool ProbeInotify(SyscallApi& sys) {
  auto fd = sys.InotifyInit();
  if (!fd.ok()) {
    Say(sys, "inotify_init failed: function not implemented");
    return false;
  }
  (void)sys.Close(fd.value());
  return true;
}

bool ProbeFanotify(SyscallApi& sys) {
  auto fd = sys.FanotifyInit();
  if (!fd.ok()) {
    Say(sys, "fanotify_init: function not implemented");
    return false;
  }
  (void)sys.Close(fd.value());
  return true;
}

bool ProbeFhandle(SyscallApi& sys) {
  auto fd = sys.OpenByHandleAt("/");
  if (fd.ok()) {
    (void)sys.Close(fd.value());
    return true;
  }
  if (fd.err() == Err::kNoSys) {
    Say(sys, "name_to_handle_at: function not implemented");
    return false;
  }
  return true;  // Other errors mean the syscall exists.
}

bool ProbeFileLocking(SyscallApi& sys) {
  auto fd = sys.Open("/tmp/.lockprobe", /*create=*/true);
  if (!fd.ok()) {
    fd = sys.Open("/.lockprobe", /*create=*/true);
  }
  if (!fd.ok()) {
    Say(sys, "cannot create lock file");
    return false;
  }
  Status s = sys.Flock(fd.value());
  (void)sys.Close(fd.value());
  if (s.err() == Err::kNoSys) {
    Say(sys, "flock: function not implemented");
    return false;
  }
  return true;
}

bool ProbeAdvise(SyscallApi& sys) {
  Status s = sys.Madvise(0);
  if (s.err() == Err::kNoSys) {
    Say(sys, "madvise: function not implemented");
    return false;
  }
  return true;
}

bool ProbeBpf(SyscallApi& sys) {
  Status s = sys.Bpf();
  if (s.err() == Err::kNoSys) {
    Say(sys, "bpf: function not implemented");
    return false;
  }
  return true;
}

bool ProbeSysvipc(SyscallApi& sys) {
  auto id = sys.Shmget(kMiB);
  if (!id.ok()) {
    Say(sys, "could not create shared memory segment: function not implemented");
    return false;
  }
  return true;
}

bool ProbeMqueue(SyscallApi& sys) {
  auto fd = sys.MqOpen("/probe");
  if (!fd.ok()) {
    Say(sys, "mq_open: function not implemented");
    return false;
  }
  (void)sys.Close(fd.value());
  return true;
}

bool ProbeTmpfs(SyscallApi& sys) {
  Status s = sys.Mount("tmpfs", "/dev/shm");
  if (!s.ok()) {
    Say(sys, "mount: unknown filesystem type 'tmpfs'");
    return false;
  }
  return true;
}

bool ProbeProcSysctl(SyscallApi& sys) {
  auto fd = sys.Open("/proc/sys/kernel.pid_max");
  if (!fd.ok()) {
    // Maybe /proc just is not mounted yet (init normally does it).
    (void)sys.Mount("proc", "/proc");
    fd = sys.Open("/proc/sys/kernel.pid_max");
  }
  if (!fd.ok()) {
    Say(sys, "error: can't open /proc/sys: No such file or directory");
    return false;
  }
  (void)sys.Close(fd.value());
  return true;
}

bool ProbeIpv6(SyscallApi& sys) {
  auto fd = sys.Socket(SockDomain::kInet6, SockType::kStream);
  if (!fd.ok()) {
    Say(sys, "socket: Address family not supported by protocol (AF_INET6)");
    return false;
  }
  (void)sys.Close(fd.value());
  return true;
}

bool ProbePacket(SyscallApi& sys) {
  auto fd = sys.Socket(SockDomain::kPacket, SockType::kDgram);
  if (!fd.ok()) {
    Say(sys, "socket: Address family not supported by protocol (AF_PACKET)");
    return false;
  }
  (void)sys.Close(fd.value());
  return true;
}

bool ProbeHugetlbfs(SyscallApi& sys) {
  Status s = sys.Mount("hugetlbfs", "/dev/hugepages");
  if (!s.ok()) {
    Say(sys, "mount: unknown filesystem type 'hugetlbfs'");
    return false;
  }
  return true;
}

}  // namespace

bool ProbeOption(guestos::SyscallApi& sys, const std::string& option) {
  if (option == n::kFutex) return ProbeFutex(sys);
  if (option == n::kEpoll) return ProbeEpoll(sys);
  if (option == n::kUnix) return ProbeUnix(sys);
  if (option == n::kEventfd) return ProbeEventfd(sys);
  if (option == n::kAio) return ProbeAio(sys);
  if (option == n::kTimerfd) return ProbeTimerfd(sys);
  if (option == n::kSignalfd) return ProbeSignalfd(sys);
  if (option == n::kInotifyUser) return ProbeInotify(sys);
  if (option == n::kFanotify) return ProbeFanotify(sys);
  if (option == n::kFhandle) return ProbeFhandle(sys);
  if (option == n::kFileLocking) return ProbeFileLocking(sys);
  if (option == n::kAdviseSyscalls) return ProbeAdvise(sys);
  if (option == n::kBpfSyscall) return ProbeBpf(sys);
  if (option == n::kSysvipc) return ProbeSysvipc(sys);
  if (option == n::kPosixMqueue) return ProbeMqueue(sys);
  if (option == n::kTmpfs) return ProbeTmpfs(sys);
  if (option == n::kProcSysctl) return ProbeProcSysctl(sys);
  if (option == n::kIpv6) return ProbeIpv6(sys);
  if (option == n::kPacket) return ProbePacket(sys);
  if (option == n::kHugetlbfs) return ProbeHugetlbfs(sys);
  return true;  // Unknown options have no probe (nothing to exercise).
}

bool RunStartupProbes(guestos::SyscallApi& sys, const std::vector<std::string>& options) {
  for (const auto& option : options) {
    if (!ProbeOption(sys, option)) {
      return false;
    }
  }
  return true;
}

}  // namespace lupine::apps

// Startup feature probes.
//
// Real applications fail fast at startup when kernel functionality is
// missing ("we noticed that many applications perform a series of checks
// when they start up", Section 6.1). Each probe exercises the syscalls one
// Table 3 option gates and prints the same console diagnostics the paper's
// authors grepped for; the automatic configuration search keys off them.
#ifndef SRC_APPS_PROBES_H_
#define SRC_APPS_PROBES_H_

#include <string>

#include "src/guestos/syscall_api.h"

namespace lupine::apps {

// Exercises the feature gated by `option`; on failure writes a diagnostic to
// the guest console and returns false.
bool ProbeOption(guestos::SyscallApi& sys, const std::string& option);

// Runs the probes for every option in `options`, stopping at the first
// failure (one missing feature surfaces per run, as in the paper's manual
// process). Returns true when all pass.
bool RunStartupProbes(guestos::SyscallApi& sys, const std::vector<std::string>& options);

}  // namespace lupine::apps

#endif  // SRC_APPS_PROBES_H_

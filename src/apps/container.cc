#include "src/apps/container.h"

namespace lupine::apps {

ContainerImage MakeAlpineImage(const AppManifest& manifest) {
  ContainerImage image;
  image.name = manifest.name + ":alpine";
  image.app = manifest.name;
  image.entrypoint = {"/bin/" + manifest.name};
  image.env["PATH"] = "/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin";
  image.env["HOME"] = "/root";
  image.mounts_proc = true;

  // Per-app flavour mirroring the official images.
  if (manifest.name == "redis") {
    image.env["REDIS_VERSION"] = "5.0.5";
    image.setup_dirs = {"/data"};
    image.entrypoint = {"/bin/redis", "/etc/redis.conf"};
  } else if (manifest.name == "nginx") {
    image.env["NGINX_VERSION"] = "1.17.2";
    image.setup_dirs = {"/var/cache/nginx", "/var/run"};
    image.ulimit_nofile = 65536;
  } else if (manifest.name == "postgres") {
    image.env["PGDATA"] = "/var/lib/postgresql/data";
    image.setup_dirs = {"/var/lib/postgresql/data", "/var/run/postgresql"};
    image.needs_entropy = true;
  } else if (manifest.name == "mysql" || manifest.name == "mariadb") {
    image.env["MYSQL_ALLOW_EMPTY_PASSWORD"] = "1";
    image.setup_dirs = {"/var/lib/mysql", "/var/run/mysqld"};
    image.needs_entropy = true;
  } else if (manifest.kind == AppKind::kServer) {
    image.setup_dirs = {"/var/run"};
  }
  return image;
}

}  // namespace lupine::apps

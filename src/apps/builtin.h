// Behavioural application models.
//
// hello-world, redis and nginx have full request-serving implementations
// (they back the macrobenchmarks in Fig. 8 and Table 4); the remaining
// top-20 applications run a generic startup (feature probes, worker forks,
// heap warm-up, readiness line) sufficient for the configuration-search
// experiment (Table 3).
#ifndef SRC_APPS_BUILTIN_H_
#define SRC_APPS_BUILTIN_H_

#include "src/guestos/loader.h"

namespace lupine::apps {

// Registers every top-20 app model plus the init-script interpreter in
// `registry` (defaults to the process-global registry). Idempotent.
void RegisterBuiltinApps(guestos::AppRegistry* registry = nullptr);

// Per-request user-mode CPU costs of the behavioural servers (shared with
// the workload generators for reporting).
inline constexpr Nanos kRedisRequestCpu = 2'600;
inline constexpr Nanos kNginxRequestCpu = 5'200;
inline constexpr Nanos kNginxConnectionCpu = 1'200;

}  // namespace lupine::apps

#endif  // SRC_APPS_BUILTIN_H_

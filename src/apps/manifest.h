// Application manifests for the top-20 Docker Hub applications (Table 3).
//
// A manifest is what the paper assumes exists per application ("at its
// simplest, a developer-supplied kernel configuration and startup script",
// Section 3): identity, popularity, the kernel options it needs beyond
// lupine-base, how it announces readiness, and the shape of its binary.
#ifndef SRC_APPS_MANIFEST_H_
#define SRC_APPS_MANIFEST_H_

#include <string>
#include <vector>

#include "src/util/units.h"

namespace lupine::apps {

enum class AppKind {
  kOneShot,   // Runs to completion (hello, language runtimes).
  kServer,    // Blocks serving requests (redis, nginx, databases).
};

struct AppManifest {
  std::string name;
  std::string description;
  double downloads_billions = 0;  // Docker Hub popularity (Table 3).
  AppKind kind = AppKind::kOneShot;

  // Kernel options required beyond lupine-base, in the order the app's
  // startup exercises them (drives the one-failure-at-a-time discovery).
  std::vector<std::string> required_options;

  // Console line that marks success (the paper's "success criteria").
  std::string ready_line;

  uint16_t listen_port = 0;     // For servers.
  int forked_workers = 0;       // postgres-style background processes.

  // Binary shape (segment sizes for the loader's memory accounting).
  Bytes text_kb = 512;
  Bytes data_kb = 128;
  Bytes bss_kb = 64;
  Bytes stack_kb = 256;
  bool static_binary = false;   // Needs relinking for KML (Section 3.2).

  // Anonymous heap the app touches at startup (working set floor).
  Bytes startup_heap_kb = 1024;
};

// All 20 manifests in popularity order.
const std::vector<AppManifest>& Top20Manifests();

// Lookup by name; nullptr when unknown.
const AppManifest* FindManifest(const std::string& name);

}  // namespace lupine::apps

#endif  // SRC_APPS_MANIFEST_H_

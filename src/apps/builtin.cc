#include "src/apps/builtin.h"

#include <map>
#include <mutex>
#include <sstream>

#include "src/apps/init_script.h"
#include "src/apps/manifest.h"
#include "src/apps/probes.h"
#include "src/guestos/syscall_api.h"

namespace lupine::apps {
namespace {

using guestos::SockDomain;
using guestos::SockType;
using guestos::SyscallApi;

// Shared startup: probes, heap warm-up, binary-proportional init work.
bool CommonStartup(SyscallApi& sys, const AppManifest& m) {
  if (!RunStartupProbes(sys, m.required_options)) {
    return false;
  }
  // Initialization CPU roughly proportional to code size.
  sys.Compute(static_cast<Nanos>(m.text_kb) * 400);
  // Touch the startup working set (demand paging).
  if (Status s = sys.BrkGrow(m.startup_heap_kb * kKiB); !s.ok()) {
    (void)sys.Write(2, "out of memory during startup\n");
    return false;
  }
  if (Status s = sys.TouchHeap(0, m.startup_heap_kb * kKiB); !s.ok()) {
    (void)sys.Write(2, "out of memory during startup\n");
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// hello-world
// ---------------------------------------------------------------------------

int HelloMain(SyscallApi& sys, const std::vector<std::string>& argv) {
  (void)argv;
  (void)sys.Write(1, "Hello from Docker!\n");
  (void)sys.Write(1, "hello world\n");
  return 0;
}

// ---------------------------------------------------------------------------
// redis: epoll server speaking a line-oriented GET/SET/PING/DEL protocol.
// ---------------------------------------------------------------------------

int RedisMain(SyscallApi& sys, const std::vector<std::string>& argv) {
  (void)argv;
  const AppManifest* m = FindManifest("redis");
  if (!CommonStartup(sys, *m)) {
    return 1;
  }

  auto listen_fd = sys.Socket(SockDomain::kInet, SockType::kStream);
  if (!listen_fd.ok()) {
    (void)sys.Write(2, "redis: could not create server TCP listening socket: " +
                       listen_fd.status().ToString() + "\n");
    return 1;
  }
  if (Status s = sys.Bind(listen_fd.value(), m->listen_port, ""); !s.ok()) {
    (void)sys.Write(2, "redis: bind: " + s.ToString() + "\n");
    return 1;
  }
  (void)sys.Listen(listen_fd.value(), 511);
  auto ep = sys.EpollCreate1();
  if (!ep.ok()) {
    (void)sys.Write(2, "epoll_create1 failed: function not implemented\n");
    return 1;
  }
  (void)sys.EpollCtlAdd(ep.value(), listen_fd.value());
  (void)sys.Write(1, "* Ready to accept connections\n");

  std::map<std::string, std::string> store;
  Bytes heap_high_water = m->startup_heap_kb * kKiB;
  Bytes store_bytes = 0;

  for (;;) {
    auto ready = sys.EpollWait(ep.value(), 16);
    if (!ready.ok()) {
      return 1;
    }
    for (int fd : ready.value()) {
      if (fd == listen_fd.value()) {
        auto conn = sys.Accept(fd);
        if (conn.ok()) {
          (void)sys.EpollCtlAdd(ep.value(), conn.value());
        }
        continue;
      }
      auto data = sys.Recv(fd, 16 * 1024);
      if (!data.ok() || data.value().empty()) {
        (void)sys.Close(fd);
        continue;
      }
      std::istringstream in(data.value());
      std::string line;
      std::string reply;
      while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') {
          line.pop_back();
        }
        if (line.empty()) {
          continue;
        }
        sys.Compute(kRedisRequestCpu);
        std::istringstream cmd(line);
        std::string op, key, value;
        cmd >> op >> key;
        std::getline(cmd, value);
        if (!value.empty() && value.front() == ' ') {
          value.erase(0, 1);
        }
        if (op == "PING") {
          reply += "+PONG\r\n";
        } else if (op == "SET") {
          store[key] = value;
          Bytes new_bytes = key.size() + value.size() + 64;
          store_bytes += new_bytes;
          // Grow and touch the heap as the dataset grows.
          if (store_bytes > heap_high_water) {
            Bytes grow = 256 * kKiB;
            if (sys.BrkGrow(grow).ok()) {
              (void)sys.TouchHeap(heap_high_water, grow);
              heap_high_water += grow;
            }
          }
          reply += "+OK\r\n";
        } else if (op == "GET") {
          auto it = store.find(key);
          if (it == store.end()) {
            reply += "$-1\r\n";
          } else {
            reply += "$" + std::to_string(it->second.size()) + "\r\n" + it->second + "\r\n";
          }
        } else if (op == "SHUTDOWN") {
          (void)sys.Write(1, "# User requested shutdown...\n");
          return 0;
        } else {
          reply += "-ERR unknown command '" + op + "'\r\n";
        }
      }
      if (!reply.empty()) {
        (void)sys.Send(fd, reply);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// nginx: epoll HTTP server with keep-alive support.
// ---------------------------------------------------------------------------

int NginxMain(SyscallApi& sys, const std::vector<std::string>& argv) {
  (void)argv;
  const AppManifest* m = FindManifest("nginx");
  if (!CommonStartup(sys, *m)) {
    return 1;
  }

  auto listen_fd = sys.Socket(SockDomain::kInet, SockType::kStream);
  if (!listen_fd.ok()) {
    (void)sys.Write(2, "nginx: socket() failed: " + listen_fd.status().ToString() + "\n");
    return 1;
  }
  if (Status s = sys.Bind(listen_fd.value(), m->listen_port, ""); !s.ok()) {
    (void)sys.Write(2, "nginx: bind() failed: " + s.ToString() + "\n");
    return 1;
  }
  (void)sys.Listen(listen_fd.value(), 511);
  auto ep = sys.EpollCreate1();
  if (!ep.ok()) {
    (void)sys.Write(2, "epoll_create1 failed: function not implemented\n");
    return 1;
  }
  (void)sys.EpollCtlAdd(ep.value(), listen_fd.value());
  (void)sys.Write(1, "nginx: start worker processes\n");

  const std::string body(612, 'x');  // Default index.html payload size.
  const std::string response = "HTTP/1.1 200 OK\r\nContent-Length: 612\r\nConnection: keep-alive"
                               "\r\n\r\n" + body;

  for (;;) {
    auto ready = sys.EpollWait(ep.value(), 16);
    if (!ready.ok()) {
      return 1;
    }
    for (int fd : ready.value()) {
      if (fd == listen_fd.value()) {
        auto conn = sys.Accept(fd);
        if (conn.ok()) {
          sys.Compute(kNginxConnectionCpu);
          (void)sys.EpollCtlAdd(ep.value(), conn.value());
        }
        continue;
      }
      auto data = sys.Recv(fd, 16 * 1024);
      if (!data.ok() || data.value().empty()) {
        (void)sys.Close(fd);
        continue;
      }
      // One "GET ..." line per request; pipelined requests arrive batched.
      size_t requests = 0;
      size_t pos = 0;
      while ((pos = data.value().find("GET ", pos)) != std::string::npos) {
        ++requests;
        pos += 4;
      }
      std::string reply;
      for (size_t i = 0; i < requests; ++i) {
        sys.Compute(kNginxRequestCpu);
        reply += response;
      }
      if (!reply.empty()) {
        (void)sys.Send(fd, reply);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// memcached: text-protocol cache server (get/set/delete/stats).
// ---------------------------------------------------------------------------

int MemcachedMain(SyscallApi& sys, const std::vector<std::string>& argv) {
  (void)argv;
  const AppManifest* m = FindManifest("memcached");
  if (!CommonStartup(sys, *m)) {
    return 1;
  }

  auto listen_fd = sys.Socket(SockDomain::kInet, SockType::kStream);
  if (!listen_fd.ok()) {
    (void)sys.Write(2, "memcached: failed to create listening socket\n");
    return 1;
  }
  if (Status s = sys.Bind(listen_fd.value(), m->listen_port, ""); !s.ok()) {
    (void)sys.Write(2, "memcached: bind: " + s.ToString() + "\n");
    return 1;
  }
  (void)sys.Listen(listen_fd.value(), 1024);
  auto ep = sys.EpollCreate1();
  if (!ep.ok()) {
    (void)sys.Write(2, "epoll_create1 failed: function not implemented\n");
    return 1;
  }
  (void)sys.EpollCtlAdd(ep.value(), listen_fd.value());
  (void)sys.Write(1, "memcached: server listening (1024 max connections)\n");

  std::map<std::string, std::string> cache;
  uint64_t gets = 0;
  uint64_t sets = 0;
  uint64_t hits = 0;

  for (;;) {
    auto ready = sys.EpollWait(ep.value(), 16);
    if (!ready.ok()) {
      return 1;
    }
    for (int fd : ready.value()) {
      if (fd == listen_fd.value()) {
        auto conn = sys.Accept(fd);
        if (conn.ok()) {
          (void)sys.EpollCtlAdd(ep.value(), conn.value());
        }
        continue;
      }
      auto data = sys.Recv(fd, 16 * 1024);
      if (!data.ok() || data.value().empty()) {
        (void)sys.Close(fd);
        continue;
      }
      std::istringstream in(data.value());
      std::string line;
      std::string reply;
      while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') {
          line.pop_back();
        }
        if (line.empty()) {
          continue;
        }
        sys.Compute(kRedisRequestCpu);  // Comparable per-op cost to redis.
        std::istringstream cmd(line);
        std::string op;
        cmd >> op;
        if (op == "set") {
          // "set <key> <flags> <exptime> <bytes>" followed by the data line.
          std::string key;
          cmd >> key;
          std::string value;
          if (std::getline(in, value) && !value.empty() && value.back() == '\r') {
            value.pop_back();
          }
          cache[key] = value;
          ++sets;
          reply += "STORED\r\n";
        } else if (op == "get") {
          std::string key;
          cmd >> key;
          ++gets;
          auto it = cache.find(key);
          if (it != cache.end()) {
            ++hits;
            reply += "VALUE " + key + " 0 " + std::to_string(it->second.size()) + "\r\n" +
                     it->second + "\r\nEND\r\n";
          } else {
            reply += "END\r\n";
          }
        } else if (op == "delete") {
          std::string key;
          cmd >> key;
          reply += cache.erase(key) > 0 ? "DELETED\r\n" : "NOT_FOUND\r\n";
        } else if (op == "stats") {
          reply += "STAT cmd_get " + std::to_string(gets) + "\r\n";
          reply += "STAT cmd_set " + std::to_string(sets) + "\r\n";
          reply += "STAT get_hits " + std::to_string(hits) + "\r\n";
          reply += "END\r\n";
        } else if (op == "quit") {
          (void)sys.Close(fd);
          reply.clear();
          break;
        } else {
          reply += "ERROR\r\n";
        }
      }
      if (!reply.empty()) {
        (void)sys.Send(fd, reply);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Generic top-20 application: probes, worker forks, readiness, serve/exit.
// ---------------------------------------------------------------------------

int GenericMain(SyscallApi& sys, const AppManifest& m) {
  if (!CommonStartup(sys, m)) {
    return 1;
  }

  // postgres-style auxiliary processes (background writer, checkpointer,
  // replicator, stats collector) that mostly sleep.
  for (int i = 0; i < m.forked_workers; ++i) {
    auto pid = sys.Fork([](SyscallApi& child_sys) -> int {
      for (int iteration = 0; iteration < 3; ++iteration) {
        child_sys.Nanosleep(Millis(100));
      }
      // Workers then block forever waiting for work.
      child_sys.Pause();
      return 0;
    });
    if (!pid.ok()) {
      (void)sys.Write(2, m.name + ": could not fork worker process: " + pid.status().ToString() +
                         "\n");
      return 1;
    }
  }

  if (m.kind == AppKind::kOneShot) {
    (void)sys.Write(1, m.ready_line + "\n");
    return 0;
  }

  // Server: listen and announce readiness, then serve trivially.
  auto listen_fd = sys.Socket(SockDomain::kInet, SockType::kStream);
  if (!listen_fd.ok()) {
    (void)sys.Write(2, m.name + ": cannot create listening socket\n");
    return 1;
  }
  if (Status s = sys.Bind(listen_fd.value(), m.listen_port, ""); !s.ok()) {
    (void)sys.Write(2, m.name + ": bind failed: " + s.ToString() + "\n");
    return 1;
  }
  (void)sys.Listen(listen_fd.value(), 128);
  (void)sys.Write(1, m.name + ": " + m.ready_line + "\n");
  for (;;) {
    auto conn = sys.Accept(listen_fd.value());
    if (!conn.ok()) {
      return 0;
    }
    auto data = sys.Recv(conn.value(), 4096);
    if (data.ok() && !data.value().empty()) {
      (void)sys.Send(conn.value(), "OK\n");
    }
    (void)sys.Close(conn.value());
  }
}

}  // namespace

void RegisterBuiltinApps(guestos::AppRegistry* registry) {
  // Serialize registration: LupineBuilders are constructed concurrently by
  // the parallel fleet pipeline and all funnel through here.
  static std::mutex mu;
  std::lock_guard lock(mu);
  guestos::AppRegistry& r = registry != nullptr ? *registry : guestos::AppRegistry::Global();
  if (r.Find("hello-world") != nullptr) {
    return;  // Already registered.
  }
  r.Register("hello-world", HelloMain);
  r.Register("redis", RedisMain);
  r.Register("nginx", NginxMain);
  r.Register("memcached", MemcachedMain);
  // A minimal shell: initializes, then execs its first argument (used by the
  // lmbench "sh proc" test).
  r.Register("sh", [](SyscallApi& sys, const std::vector<std::string>& argv) -> int {
    sys.Compute(150'000);  // Shell startup (parsing rc, environment).
    if (argv.size() > 1) {
      std::vector<std::string> rest(argv.begin() + 1, argv.end());
      Status s = sys.Execve(rest[0], rest);
      (void)sys.Write(2, "sh: " + rest[0] + ": " + s.ToString() + "\n");
      return 127;
    }
    return 0;
  });
  for (const auto& m : Top20Manifests()) {
    if (r.Find(m.name) != nullptr) {
      continue;
    }
    const AppManifest* manifest = FindManifest(m.name);
    r.Register(m.name, [manifest](SyscallApi& sys, const std::vector<std::string>& argv) {
      (void)argv;
      return GenericMain(sys, *manifest);
    });
  }
  RegisterInitInterpreter(&r);
}

}  // namespace lupine::apps

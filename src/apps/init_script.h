// Application-specific startup script ("init") generation + interpreter.
//
// Lupine replaces a general-purpose init system with a script generated from
// container metadata: it sets the environment from the image's env entries,
// performs the setup steps the app expects (mount /proc, create directories,
// seed entropy, set ulimits) and execs the entrypoint (Section 3).
#ifndef SRC_APPS_INIT_SCRIPT_H_
#define SRC_APPS_INIT_SCRIPT_H_

#include <string>

#include "src/apps/container.h"
#include "src/guestos/loader.h"

namespace lupine::apps {

// Renders the #!lupine-init script for a container image.
std::string GenerateInitScript(const ContainerImage& image);

// Registers the "lupine-init" interpreter (BINFMT_SCRIPT target) in
// `registry`.
void RegisterInitInterpreter(guestos::AppRegistry* registry);

}  // namespace lupine::apps

#endif  // SRC_APPS_INIT_SCRIPT_H_

#include "src/apps/manifest.h"

#include "src/kconfig/presets.h"

namespace lupine::apps {
namespace {

AppManifest Make(const std::string& name, const std::string& description, double downloads,
                 AppKind kind, const std::string& ready_line, uint16_t port, int workers,
                 Bytes text_kb, Bytes heap_kb) {
  AppManifest m;
  m.name = name;
  m.description = description;
  m.downloads_billions = downloads;
  m.kind = kind;
  m.required_options = kconfig::AppExtraOptions(name);
  m.ready_line = ready_line;
  m.listen_port = port;
  m.forked_workers = workers;
  m.text_kb = text_kb;
  m.data_kb = text_kb / 4;
  m.bss_kb = text_kb / 8;
  m.startup_heap_kb = heap_kb;
  return m;
}

std::vector<AppManifest> BuildManifests() {
  std::vector<AppManifest> all;
  all.push_back(Make("nginx", "Web server", 1.7, AppKind::kServer,
                     "start worker processes", 80, 0, 1200, 2048));
  all.push_back(Make("postgres", "Database", 1.6, AppKind::kServer,
                     "database system is ready to accept connections", 5432, 4, 7200, 8192));
  all.push_back(Make("httpd", "Web server", 1.4, AppKind::kServer,
                     "resuming normal operations", 80, 0, 2100, 3072));
  all.push_back(Make("node", "Language runtime", 1.2, AppKind::kOneShot,
                     "hello from node", 0, 0, 38000, 16384));
  all.push_back(Make("redis", "Key-value store", 1.2, AppKind::kServer,
                     "Ready to accept connections", 6379, 0, 1700, 3072));
  all.push_back(Make("mongo", "NOSQL database", 1.2, AppKind::kServer,
                     "waiting for connections", 27017, 0, 44000, 32768));
  all.push_back(Make("mysql", "Database", 1.2, AppKind::kServer,
                     "ready for connections", 3306, 0, 24000, 24576));
  all.push_back(Make("traefik", "Edge router", 1.1, AppKind::kServer,
                     "Server configured and ready", 8080, 0, 52000, 12288));
  all.push_back(Make("memcached", "Key-value store", 0.9, AppKind::kServer,
                     "server listening", 11211, 0, 800, 4096));
  all.push_back(Make("hello-world", "C program \"hello\"", 0.9, AppKind::kOneShot,
                     "Hello from Docker!", 0, 0, 12, 64));
  all.push_back(Make("mariadb", "Database", 0.8, AppKind::kServer,
                     "ready for connections", 3306, 0, 23000, 24576));
  all.push_back(Make("golang", "Language runtime", 0.6, AppKind::kOneShot,
                     "hello, world", 0, 0, 1400, 2048));
  all.push_back(Make("python", "Language runtime", 0.5, AppKind::kOneShot,
                     "hello world", 0, 0, 4300, 6144));
  all.push_back(Make("openjdk", "Language runtime", 0.5, AppKind::kOneShot,
                     "hello world", 0, 0, 18000, 32768));
  all.push_back(Make("rabbitmq", "Message broker", 0.5, AppKind::kServer,
                     "Server startup complete", 5672, 0, 14000, 20480));
  all.push_back(Make("php", "Language runtime", 0.4, AppKind::kOneShot,
                     "hello world", 0, 0, 9500, 8192));
  all.push_back(Make("wordpress", "PHP/mysql blog tool", 0.4, AppKind::kServer,
                     "ready to handle connections", 80, 0, 9800, 12288));
  all.push_back(Make("haproxy", "Load balancer", 0.4, AppKind::kServer,
                     "Proxy started", 8080, 0, 2600, 4096));
  all.push_back(Make("influxdb", "Time series database", 0.3, AppKind::kServer,
                     "Listening on HTTP", 8086, 0, 31000, 16384));
  all.push_back(Make("elasticsearch", "Search engine", 0.3, AppKind::kServer,
                     "started", 9200, 0, 2800, 65536));

  // hello-world is a tiny static binary in the real image.
  for (auto& m : all) {
    if (m.name == "hello-world") {
      m.static_binary = true;
      m.data_kb = 4;
      m.bss_kb = 4;
    }
  }
  return all;
}

}  // namespace

const std::vector<AppManifest>& Top20Manifests() {
  static const std::vector<AppManifest> manifests = BuildManifests();
  return manifests;
}

const AppManifest* FindManifest(const std::string& name) {
  for (const auto& m : Top20Manifests()) {
    if (m.name == name) {
      return &m;
    }
  }
  return nullptr;
}

}  // namespace lupine::apps

#include "src/apps/rootfs_builder.h"

#include "src/apps/init_script.h"
#include "src/apps/manifest.h"
#include "src/guestos/loader.h"

namespace lupine::apps {
namespace {

using guestos::BinaryInfo;
using guestos::FsEntry;
using guestos::FsSpec;
using guestos::InodeType;

constexpr char kMuslPath[] = "/lib/ld-musl-x86_64.so.1";

void AddDir(FsSpec& spec, const std::string& path) {
  FsEntry entry;
  entry.type = InodeType::kDir;
  spec[path] = entry;
}

void AddFile(FsSpec& spec, const std::string& path, std::string data, bool executable = false) {
  FsEntry entry;
  entry.type = InodeType::kFile;
  entry.data = std::move(data);
  entry.executable = executable;
  spec[path] = entry;
}

void AddAlpineBase(FsSpec& spec, bool kml_libc) {
  AddDir(spec, "/bin");
  AddDir(spec, "/sbin");
  AddDir(spec, "/lib");
  AddDir(spec, "/etc");
  AddDir(spec, "/tmp");
  AddDir(spec, "/var");
  AddDir(spec, "/proc");
  AddDir(spec, "/sys");
  AddDir(spec, "/dev");
  AddDir(spec, "/root");
  AddFile(spec, "/etc/hostname", "lupine\n");
  AddFile(spec, "/etc/resolv.conf", "nameserver 10.0.2.3\n");
  AddFile(spec, "/etc/alpine-release", "3.10.0\n");
  // musl: the dynamic loader and libc in one object. The KML build replaces
  // every `syscall` instruction with a near call through the vsyscall-
  // exported entry (Section 3.2).
  std::string musl = kml_libc ? "musl libc 1.1.22 [KML-patched: syscall -> call]\n"
                              : "musl libc 1.1.22\n";
  AddFile(spec, kMuslPath, std::move(musl), /*executable=*/true);
  AddFile(spec, "/lib/libz.so.1", "zlib 1.2.11\n");
}

std::string MakeBinary(const AppManifest& m, bool kml_libc) {
  BinaryInfo info;
  info.app = m.name;
  if (m.static_binary) {
    info.libc = kml_libc ? "static-kml" : "static";
    info.interp = "";
  } else {
    info.libc = kml_libc ? "musl-kml" : "musl";
    info.interp = kMuslPath;
  }
  info.text_kb = m.text_kb;
  info.data_kb = m.data_kb;
  info.bss_kb = m.bss_kb;
  info.stack_kb = m.stack_kb;
  return FormatBinary(info);
}

}  // namespace

FsSpec BuildAppRootfsSpec(const ContainerImage& image, const RootfsOptions& options) {
  FsSpec spec;
  AddAlpineBase(spec, options.kml_libc);

  const AppManifest* manifest = FindManifest(image.app);
  AppManifest fallback;
  if (manifest == nullptr) {
    fallback.name = image.app;
    manifest = &fallback;
  }

  const std::string binary_path = image.entrypoint.empty() ? "/bin/" + image.app
                                                           : image.entrypoint[0];
  AddFile(spec, binary_path, MakeBinary(*manifest, options.kml_libc), /*executable=*/true);
  // App config files the official images ship.
  if (image.app == "redis") {
    AddFile(spec, "/etc/redis.conf", "bind 0.0.0.0\nport 6379\nsave \"\"\n");
  } else if (image.app == "nginx") {
    AddFile(spec, "/etc/nginx/nginx.conf", "worker_processes 1;\n");
    AddFile(spec, "/usr/share/nginx/html/index.html", std::string(612, 'x'));
  }

  AddFile(spec, "/sbin/init", GenerateInitScript(image), /*executable=*/true);
  return spec;
}

std::string BuildAppRootfs(const ContainerImage& image, const RootfsOptions& options) {
  return guestos::FormatRootfs(BuildAppRootfsSpec(image, options));
}

std::string BuildAppRootfsForApp(const std::string& app, bool kml_libc) {
  const AppManifest* manifest = FindManifest(app);
  AppManifest fallback;
  if (manifest == nullptr) {
    fallback.name = app;
    fallback.ready_line = app + " ready";
    manifest = &fallback;
  }
  ContainerImage image = MakeAlpineImage(*manifest);
  RootfsOptions options;
  options.kml_libc = kml_libc;
  return BuildAppRootfs(image, options);
}

std::string BuildBenchRootfs(bool kml_libc) {
  const AppManifest* hello = FindManifest("hello-world");
  ContainerImage image = MakeAlpineImage(*hello);
  FsSpec spec = BuildAppRootfsSpec(image, {.kml_libc = kml_libc});

  // /bin/hello: the tiny exec-target for lmbench's exec/sh tests.
  BinaryInfo hello_bin;
  hello_bin.app = "hello-world";
  hello_bin.libc = kml_libc ? "musl-kml" : "musl";
  hello_bin.interp = kMuslPath;
  hello_bin.text_kb = 12;
  hello_bin.data_kb = 4;
  hello_bin.bss_kb = 4;
  AddFile(spec, "/bin/hello", FormatBinary(hello_bin), /*executable=*/true);

  // /bin/sh: a shell that execs its argument (lmbench "sh proc").
  BinaryInfo sh_bin;
  sh_bin.app = "sh";
  sh_bin.libc = kml_libc ? "musl-kml" : "musl";
  sh_bin.interp = kMuslPath;
  sh_bin.text_kb = 820;  // busybox-sized.
  sh_bin.data_kb = 64;
  sh_bin.bss_kb = 32;
  AddFile(spec, "/bin/sh", FormatBinary(sh_bin), /*executable=*/true);
  return guestos::FormatRootfs(spec);
}

}  // namespace lupine::apps

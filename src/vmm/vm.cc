#include "src/vmm/vm.h"

#include <functional>

namespace lupine::vmm {

Vm::Vm(VmSpec spec, const guestos::AppRegistry* registry)
    : spec_(std::move(spec)),
      kernel_(std::make_unique<guestos::Kernel>(spec_.image, spec_.memory, registry,
                                                spec_.faults)) {}

Status Vm::Boot() {
  // Host-side monitor phases. The kernel mirrors its boot phases into
  // `spans_` (one virtual timeline, monitor offset included); the sink is
  // detached again below so a moved-from or long-lived kernel can never
  // write through a stale pointer.
  spans_.Clear();
  kernel_->set_boot_spans(&spans_);
  Nanos monitor_time = MonitorSetupTime(spec_.monitor, spec_.image.size);
  kernel_->clock().Advance(monitor_time);
  report_.phases.push_back({"monitor:" + spec_.monitor.name, monitor_time});
  spans_.Record("monitor:" + spec_.monitor.name, 0, monitor_time);

  // Guest-side boot. A PCI-enabled kernel on a PCI-less monitor skips
  // enumeration; our feature check happens in the kernel, which prices PCI
  // enumeration only when configured (and QEMU-style monitors always expose
  // the bus, so the config decides).
  if (Status s = kernel_->Boot(spec_.rootfs, spec_.boot_plan.get()); !s.ok()) {
    kernel_->set_boot_spans(nullptr);
    return s;
  }
  for (const auto& phase : kernel_->boot_trace().phases) {
    report_.phases.push_back(phase);
  }

  // Start init (the application-specific startup script).
  auto init = kernel_->StartInit("/sbin/init");
  kernel_->set_boot_spans(nullptr);
  if (!init.ok()) {
    return init.status();
  }
  init_ = init.value();

  report_.total = 0;
  for (const auto& phase : report_.phases) {
    report_.total += phase.duration;
  }
  // The init-exec phase was appended by StartInit.
  report_.phases.push_back(kernel_->boot_trace().phases.back());
  report_.total += kernel_->boot_trace().phases.back().duration;
  report_.to_init = report_.total;
  return Status::Ok();
}

Result<int> Vm::RunToCompletion() {
  if (init_ == nullptr) {
    return Status(Err::kInval, "VM not booted");
  }
  const Nanos main_start = kernel_->clock().now();
  size_t blocked = kernel_->Run();
  spans_.Record("app-main", main_start, kernel_->clock().now());
  if (kernel_->oom()) {
    return Status(Err::kNoMem, "guest ran out of memory");
  }
  if (kernel_->panicked()) {
    return Status(Err::kFault, "kernel panic: " + kernel_->panic_reason());
  }
  if (init_->exited) {
    return init_->exit_code;
  }
  return Status(Err::kAgain,
                std::to_string(blocked) + " guest thread(s) still blocked (server running)");
}

Result<std::unique_ptr<Vm>> Vm::Restore(const guestos::Snapshot& snapshot,
                                        FaultInjector* faults,
                                        const guestos::AppRegistry* registry) {
  if (snapshot.kernel == nullptr || snapshot.rootfs == nullptr) {
    return Status(Err::kInval, "snapshot is missing its immutable inputs");
  }
  // The memory file itself is the restore's failure surface (the replayed
  // boot already succeeded once): a corruption fault kills the restore
  // before any state is rebuilt.
  if (faults != nullptr && faults->Check(FaultSite::kSnapshotRestore)) {
    return Status(Err::kIo, "snapshot restore failed: memory file corrupt (" +
                                snapshot.key + ")");
  }

  VmSpec spec;
  spec.monitor = Firecracker();
  spec.image = *snapshot.kernel;
  spec.rootfs = *snapshot.rootfs;
  spec.memory = snapshot.memory;
  spec.boot_plan = snapshot.boot_plan;
  // No injector is threaded into the replay: the boot being re-materialized
  // is one that completed cleanly at capture time.
  auto vm = std::make_unique<Vm>(std::move(spec), registry);
  if (Status s = vm->Boot(); !s.ok()) {
    return Status(Err::kIo, "snapshot restore failed: re-materialization: " + s.ToString());
  }
  const uint64_t digest = guestos::KernelStateDigest(vm->kernel());
  if (digest != snapshot.state_digest) {
    return Status(Err::kIo, "snapshot restore failed: state digest mismatch (" +
                                snapshot.key + ")");
  }

  // Rebase the timeline: the replay charged full boot cost, but the restored
  // instance launches at restore cost. No fiber has run yet, so no absolute
  // deadline references the old timeline.
  vm->kernel_->clock().Rewind(snapshot.restore_ns);
  vm->report_ = BootReport{};
  vm->report_.phases.push_back({"snapshot-restore", snapshot.restore_ns});
  vm->report_.total = snapshot.restore_ns;
  vm->report_.to_init = snapshot.restore_ns;
  vm->spans_.Clear();
  vm->spans_.Record("snapshot-restore", 0, snapshot.restore_ns);
  vm->restored_ = true;
  return vm;
}

Vm::RunResult Vm::BootAndRun() {
  RunResult result;
  result.status = Boot();
  if (!result.status.ok()) {
    result.console = kernel_->console().contents();
    return result;
  }
  auto run = RunToCompletion();
  if (run.ok()) {
    result.exit_code = run.value();
  } else {
    result.status = run.status();
  }
  result.console = kernel_->console().contents();
  return result;
}

Bytes MinMemoryProbe(Bytes low, Bytes high, const std::function<bool(Bytes)>& try_run) {
  // Round to whole MiB like the monitor's --mem-size flag.
  uint64_t lo = low / kMiB;
  uint64_t hi = high / kMiB;
  if (!try_run(hi * kMiB)) {
    return 0;  // Does not even run at the ceiling.
  }
  while (lo < hi) {
    uint64_t mid = (lo + hi) / 2;
    if (try_run(mid * kMiB)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi * kMiB;
}

}  // namespace lupine::vmm

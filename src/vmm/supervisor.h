// Supervisor: the host-side process that keeps a fleet of unikernels alive.
//
// A Lupine guest cannot recover from its own faults — the application is the
// kernel, so a crash takes the whole VM down and recovery is the monitor's
// job (the Firecracker production posture; MultiK-style fleets likewise rely
// on an orchestrator that survives member crashes). The Supervisor owns one
// slot per fleet member, boots it, watches for panics / failed boots /
// non-zero init exits, restarts crashed members with exponential backoff and
// deterministic jitter, detects crash loops (N failures inside a sliding
// window) and quarantines such members as degraded instead of burning host
// CPU on them forever.
//
// Everything runs on a supervisor-owned VirtualClock, so a given fleet +
// fault plan + seed reproduces its incident timeline byte for byte.
//
// Threading: a Supervisor is instance-confined. It owns no globals and is
// safe to construct, drive and destroy entirely on a ThreadPool worker —
// core::RunFleetBoot runs one Supervisor per worker shard this way. What is
// NOT supported is sharing one Supervisor (or its VMs) across threads:
// guest fibers are thread-local, so every VM must run its whole life on the
// thread that called Run().
#ifndef SRC_VMM_SUPERVISOR_H_
#define SRC_VMM_SUPERVISOR_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/util/prng.h"
#include "src/util/vclock.h"
#include "src/vmm/vm.h"

namespace lupine::vmm {

struct SupervisorPolicy {
  // How often a member is probed. A guest that halts on panic
  // (PANIC_TIMEOUT=0) is only discovered dead at the next probe; a guest
  // that reboots (PANIC_TIMEOUT!=0) tells the monitor immediately.
  Nanos health_check_interval = Millis(50);
  // Restart backoff: initial delay, growth factor, ceiling.
  Nanos backoff_initial = Millis(100);
  double backoff_multiplier = 2.0;
  Nanos backoff_cap = Seconds(30);
  // Jitter fraction applied to every backoff (uniform in [1-j, 1+j]),
  // drawn from a per-member PRNG forked off `seed` — deterministic.
  double backoff_jitter = 0.1;
  // Crash-loop detection: this many failures within the window => the
  // member is marked degraded and no longer restarted.
  int crash_loop_failures = 5;
  Nanos crash_loop_window = Seconds(300);
  uint64_t seed = 0x5EED;
};

enum class MemberState {
  kPending,    // Registered, first boot not attempted yet.
  kHealthy,    // Serving (server blocked in accept) — or batch job running.
  kCompleted,  // Batch init exited 0; nothing left to supervise.
  kBackoff,    // Crashed; restart scheduled.
  kDegraded,   // Crash-looping; given up, needs operator attention.
};

const char* MemberStateName(MemberState state);

// One line of a member's incident timeline.
struct Incident {
  Nanos at = 0;             // Supervisor clock.
  std::string vm;           // Member name.
  std::string kind;         // "boot" | "ready" | "exit" | "boot-failed" |
                            // "panic" | "restart-scheduled" | "degraded".
  std::string detail;

  std::string ToString() const;
};

class Supervisor {
 public:
  // Builds a fresh Vm for a (re)start. Restarts call it again: a crashed
  // VM's memory image is gone, exactly like a real monitor re-exec.
  using VmFactory = std::function<std::unique_ptr<Vm>()>;

  explicit Supervisor(SupervisorPolicy policy = {});

  // Registers a fleet member. `ready_marker` empty = batch job (healthy
  // means init exits 0, then the member is completed); non-empty = server
  // (healthy means the console printed the marker and the guest is parked
  // in accept). Boot happens inside Run().
  void AddMember(std::string name, VmFactory factory, std::string ready_marker = "");

  // Event loop: boots every member at t=0 and supervises until the fleet is
  // quiescent (every member healthy, completed or degraded) or the horizon
  // passes. Returns the number of members not healthy/completed.
  size_t Run(Nanos horizon = Seconds(600));

  // Optional, non-owning metric sink. When set, every incident increments
  // `supervisor.incidents{kind}`, backoffs and time-to-first-healthy land in
  // histograms, Run() refreshes `supervisor.members{state}` gauges, and two
  // counters watch the restart policy itself: `supervisor.giveup_total`
  // (members declared degraded) and `supervisor.backoff_capped_total`
  // (backoffs that saturated the policy cap). Set before Run(); the registry
  // must outlive the supervisor.
  void set_metrics(telemetry::MetricRegistry* metrics) { metrics_ = metrics; }

  // Optional, non-owning flight-recorder sink. Every incident (boot, ready,
  // exit, boot-failed, panic, restart-scheduled, degraded) is mirrored as a
  // journal event under source "supervisor", stamped with the supervisor's
  // own virtual clock — deterministic for a given fleet + plan + seed. Set
  // before Run(); the journal must outlive the supervisor.
  void set_journal(telemetry::Journal* journal) { journal_ = journal; }

  // --- Inspection -----------------------------------------------------------
  struct MemberStats {
    MemberState state = MemberState::kPending;
    int attempts = 0;           // Boot attempts, including the first.
    int failures = 0;           // Crashes + failed boots, lifetime.
    Nanos first_healthy_at = -1;
    Nanos last_failure_at = -1;
    std::string last_error;
    // The live VM of a healthy member (nullptr otherwise).
    Vm* vm = nullptr;
  };
  MemberState state(const std::string& name) const;
  const MemberStats& stats(const std::string& name) const;
  size_t count(MemberState state) const;
  size_t member_count() const { return members_.size(); }

  const std::vector<Incident>& timeline() const { return timeline_; }
  // Per-VM incident timeline (all members interleaved when name empty) in a
  // stable text form — two same-seed runs produce identical bytes.
  std::string TimelineText(const std::string& name = "") const;

  const VirtualClock& clock() const { return clock_; }

 private:
  struct Member {
    std::string name;
    VmFactory factory;
    std::string ready_marker;
    MemberStats stats;
    std::unique_ptr<Vm> vm;      // Kept alive while healthy.
    Prng jitter;                 // Forked off policy seed; per-member stream.
    int consecutive_failures = 0;
    std::deque<Nanos> failure_times;  // For crash-loop windowing.
  };

  // Boots + runs one attempt; emits incidents; returns true when the
  // member ended up healthy/completed.
  bool Attempt(Member& member);
  // Handles a failure at supervisor time `at`: windowing, degradation,
  // backoff scheduling.
  void OnFailure(Member& member, Nanos at, const std::string& kind,
                 const std::string& detail);
  void Emit(Nanos at, const Member& member, const std::string& kind,
            const std::string& detail);
  Nanos NextBackoff(Member& member);

  SupervisorPolicy policy_;
  telemetry::MetricRegistry* metrics_ = nullptr;
  telemetry::Journal* journal_ = nullptr;
  VirtualClock clock_;
  Prng master_;  // Seeds per-member jitter streams, in AddMember order.
  std::map<std::string, Member> members_;
  std::vector<Incident> timeline_;

  // Restart queue ordered by due time (FIFO among equal times).
  struct PendingStart {
    Nanos due;
    uint64_t seq;
    Member* member;
    bool operator>(const PendingStart& other) const {
      return due != other.due ? due > other.due : seq > other.seq;
    }
  };
  std::priority_queue<PendingStart, std::vector<PendingStart>, std::greater<PendingStart>>
      queue_;
  uint64_t next_seq_ = 0;
};

}  // namespace lupine::vmm

#endif  // SRC_VMM_SUPERVISOR_H_

#include "src/vmm/supervisor.h"

#include <algorithm>

#include "src/util/retry.h"

namespace lupine::vmm {

const char* MemberStateName(MemberState state) {
  switch (state) {
    case MemberState::kPending:
      return "pending";
    case MemberState::kHealthy:
      return "healthy";
    case MemberState::kCompleted:
      return "completed";
    case MemberState::kBackoff:
      return "backoff";
    case MemberState::kDegraded:
      return "degraded";
  }
  return "unknown";
}

std::string Incident::ToString() const {
  std::string line = "[+" + FormatDuration(at) + "] " + vm + " " + kind;
  if (!detail.empty()) {
    line += ": " + detail;
  }
  return line;
}

Supervisor::Supervisor(SupervisorPolicy policy) : policy_(policy), master_(policy.seed) {}

void Supervisor::AddMember(std::string name, VmFactory factory, std::string ready_marker) {
  Member member;
  member.name = name;
  member.factory = std::move(factory);
  member.ready_marker = std::move(ready_marker);
  member.jitter = master_.Fork();
  members_.emplace(std::move(name), std::move(member));
}

size_t Supervisor::Run(Nanos horizon) {
  // Launch everything not yet started at the current supervisor time.
  for (auto& [name, member] : members_) {
    if (member.stats.state == MemberState::kPending) {
      queue_.push({clock_.now(), next_seq_++, &member});
    }
  }
  while (!queue_.empty()) {
    PendingStart next = queue_.top();
    if (next.due > horizon) {
      break;  // Left queued: a later Run() with a larger horizon resumes.
    }
    queue_.pop();
    clock_.AdvanceTo(next.due);
    if (next.member->stats.state == MemberState::kDegraded) {
      continue;
    }
    Attempt(*next.member);
  }
  size_t unsettled = 0;
  for (const auto& [name, member] : members_) {
    if (member.stats.state != MemberState::kHealthy &&
        member.stats.state != MemberState::kCompleted) {
      ++unsettled;
    }
  }
  if (metrics_ != nullptr) {
    for (MemberState state : {MemberState::kPending, MemberState::kHealthy,
                              MemberState::kCompleted, MemberState::kBackoff,
                              MemberState::kDegraded}) {
      metrics_->GetGauge("supervisor.members", {{"state", MemberStateName(state)}})
          .Set(static_cast<int64_t>(count(state)));
    }
  }
  return unsettled;
}

bool Supervisor::Attempt(Member& member) {
  ++member.stats.attempts;
  const Nanos start = clock_.now();
  Emit(start, member, "boot", "attempt " + std::to_string(member.stats.attempts));

  std::unique_ptr<Vm> vm = member.factory();
  if (vm == nullptr) {
    OnFailure(member, start, "boot-failed", "factory returned no VM");
    return false;
  }
  Status boot = vm->Boot();
  guestos::Kernel& kernel = vm->kernel();

  if (!boot.ok()) {
    Nanos at = start + kernel.clock().now();
    clock_.AdvanceTo(at);
    OnFailure(member, at, "boot-failed", boot.ToString());
    return false;
  }

  kernel.Run();
  const Nanos at = start + kernel.clock().now();
  clock_.AdvanceTo(at);

  if (kernel.panicked()) {
    Emit(at, member, "panic", kernel.panic_reason());
    // Detection latency is where CONFIG_PANIC_TIMEOUT earns its keep: a
    // rebooting guest exits and the monitor knows at once; a halted guest
    // sits dead until the next health probe on the supervisor's grid.
    Nanos detect = at;
    if (!kernel.reboot_on_panic() && policy_.health_check_interval > 0) {
      detect = ((at / policy_.health_check_interval) + 1) * policy_.health_check_interval;
      clock_.AdvanceTo(detect);
    }
    OnFailure(member, detect, "crash", "panic: " + kernel.panic_reason());
    return false;
  }

  guestos::Process* init = kernel.FindProcess(1);
  const bool init_exited = init != nullptr && init->exited;

  if (member.ready_marker.empty()) {
    // Batch job: success is init exiting 0.
    if (init_exited && init->exit_code == 0) {
      member.stats.state = MemberState::kCompleted;
      if (member.stats.first_healthy_at < 0) {
        member.stats.first_healthy_at = at;
        if (metrics_ != nullptr) {
          metrics_->GetHistogram("supervisor.time_to_healthy_ns")
              .Observe(static_cast<double>(at));
        }
      }
      member.consecutive_failures = 0;
      Emit(at, member, "exit", "code=0");
      return true;
    }
    OnFailure(member, at, "crash",
              init_exited ? "init exited with code " + std::to_string(init->exit_code)
                          : "init blocked before completion");
    return false;
  }

  // Server: success is the readiness line with the guest parked in accept.
  if (!init_exited && kernel.console().Contains(member.ready_marker)) {
    member.vm = std::move(vm);
    member.stats.vm = member.vm.get();
    member.stats.state = MemberState::kHealthy;
    if (member.stats.first_healthy_at < 0) {
      member.stats.first_healthy_at = at;
      if (metrics_ != nullptr) {
        metrics_->GetHistogram("supervisor.time_to_healthy_ns")
            .Observe(static_cast<double>(at));
      }
    }
    member.consecutive_failures = 0;
    Emit(at, member, "ready", member.ready_marker);
    return true;
  }
  OnFailure(member, at, "crash",
            init_exited ? "server exited with code " + std::to_string(init->exit_code)
                        : "server never became ready");
  return false;
}

void Supervisor::OnFailure(Member& member, Nanos at, const std::string& kind,
                           const std::string& detail) {
  ++member.stats.failures;
  ++member.consecutive_failures;
  member.stats.last_failure_at = at;
  member.stats.last_error = detail;
  member.vm.reset();
  member.stats.vm = nullptr;
  Emit(at, member, kind, detail);

  // Crash-loop windowing.
  member.failure_times.push_back(at);
  while (!member.failure_times.empty() &&
         member.failure_times.front() + policy_.crash_loop_window < at) {
    member.failure_times.pop_front();
  }
  if (static_cast<int>(member.failure_times.size()) >= policy_.crash_loop_failures) {
    member.stats.state = MemberState::kDegraded;
    Emit(at, member, "degraded",
         std::to_string(member.failure_times.size()) + " failures within " +
             FormatDuration(policy_.crash_loop_window) + "; giving up");
    if (metrics_ != nullptr) {
      metrics_->GetCounter("supervisor.giveup_total").Increment();
    }
    return;
  }

  const Nanos delay = NextBackoff(member);
  member.stats.state = MemberState::kBackoff;
  Emit(at, member, "restart-scheduled", "backoff " + FormatDuration(delay));
  if (metrics_ != nullptr) {
    metrics_->GetHistogram("supervisor.backoff_ns").Observe(static_cast<double>(delay));
  }
  queue_.push({at + delay, next_seq_++, &member});
}

Nanos Supervisor::NextBackoff(Member& member) {
  // Shared backoff formula (util/retry): exponential growth clamped to the
  // policy cap, scaled by deterministic jitter from the member's private PRNG
  // stream — same seed => same schedule, but members decorrelate so a mass
  // crash doesn't restart the whole fleet in lockstep.
  const BackoffSpec spec{.initial = policy_.backoff_initial,
                         .multiplier = policy_.backoff_multiplier,
                         .cap = policy_.backoff_cap,
                         .jitter = policy_.backoff_jitter};
  bool capped = false;
  const Nanos delay = BackoffDelay(spec, member.consecutive_failures, member.jitter, &capped);
  if (capped && metrics_ != nullptr) {
    // A saturated backoff no longer spreads restarts out — the signal that
    // the policy cap is too low for this failure pattern.
    metrics_->GetCounter("supervisor.backoff_capped_total").Increment();
  }
  return delay;
}

void Supervisor::Emit(Nanos at, const Member& member, const std::string& kind,
                      const std::string& detail) {
  timeline_.push_back({at, member.name, kind, detail});
  if (metrics_ != nullptr) {
    metrics_->GetCounter("supervisor.incidents", {{"kind", kind}}).Increment();
  }
  if (journal_ != nullptr) {
    journal_->Emit(at, "supervisor", kind,
                   {{"vm", telemetry::FieldValue{member.name}},
                    {"detail", telemetry::FieldValue{detail}}});
  }
}

MemberState Supervisor::state(const std::string& name) const {
  auto it = members_.find(name);
  return it == members_.end() ? MemberState::kPending : it->second.stats.state;
}

const Supervisor::MemberStats& Supervisor::stats(const std::string& name) const {
  static const MemberStats kEmpty;
  auto it = members_.find(name);
  return it == members_.end() ? kEmpty : it->second.stats;
}

size_t Supervisor::count(MemberState state) const {
  size_t n = 0;
  for (const auto& [name, member] : members_) {
    if (member.stats.state == state) {
      ++n;
    }
  }
  return n;
}

std::string Supervisor::TimelineText(const std::string& name) const {
  std::string out;
  for (const Incident& incident : timeline_) {
    if (!name.empty() && incident.vm != name) {
      continue;
    }
    out += incident.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace lupine::vmm

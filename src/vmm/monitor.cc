#include "src/vmm/monitor.h"

namespace lupine::vmm {

const MonitorProfile& Firecracker() {
  static const MonitorProfile profile = {
      .name = "firecracker",
      .process_start = Millis(4),
      .kernel_load = Micros(400),
      .load_per_mb = Micros(120),
      .device_setup = Micros(900),
      .vcpu_setup = Micros(500),
      .pci_bus = false,
  };
  return profile;
}

const MonitorProfile& Solo5Hvt() {
  static const MonitorProfile profile = {
      .name = "solo5-hvt",
      .process_start = Micros(900),
      .kernel_load = Micros(200),
      .load_per_mb = Micros(100),
      .device_setup = Micros(150),
      .vcpu_setup = Micros(250),
      .pci_bus = false,
  };
  return profile;
}

const MonitorProfile& Uhyve() {
  static const MonitorProfile profile = {
      .name = "uhyve",
      .process_start = Micros(1'000),
      .kernel_load = Micros(200),
      .load_per_mb = Micros(100),
      .device_setup = Micros(200),
      .vcpu_setup = Micros(250),
      .pci_bus = false,
  };
  return profile;
}

const MonitorProfile& Qemu() {
  static const MonitorProfile profile = {
      .name = "qemu",
      .process_start = Millis(120),
      .kernel_load = Millis(2),
      .load_per_mb = Micros(200),
      .device_setup = Millis(35),  // Full device-model + BIOS.
      .vcpu_setup = Millis(1),
      .pci_bus = true,
  };
  return profile;
}

Nanos MonitorSetupTime(const MonitorProfile& profile, Bytes kernel_image_size) {
  return profile.process_start + profile.kernel_load +
         static_cast<Nanos>(ToMiB(kernel_image_size) * static_cast<double>(profile.load_per_mb)) +
         profile.device_setup + profile.vcpu_setup;
}

}  // namespace lupine::vmm

#include "src/vmm/admission.h"

#include <utility>

namespace lupine::vmm {

Grant& Grant::operator=(Grant&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = std::exchange(other.controller_, nullptr);
    granted_ = std::exchange(other.granted_, Bytes{0});
    degraded_ = std::exchange(other.degraded_, false);
    waited_ = std::exchange(other.waited_, false);
  }
  return *this;
}

void Grant::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseBytes(granted_);
    controller_ = nullptr;
    granted_ = 0;
  }
}

FleetAdmissionController::FleetAdmissionController(AdmissionPolicy policy)
    : policy_(policy) {}

const char* FleetAdmissionController::VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAdmit:
      return "admit";
    case Verdict::kDegrade:
      return "degrade";
    case Verdict::kQueue:
      return "queue";
    case Verdict::kReject:
      return "reject";
  }
  return "unknown";
}

FleetAdmissionController::Verdict FleetAdmissionController::Classify(
    const AdmissionRequest& request, Bytes committed, size_t waiting) const {
  if (policy_.host_budget == 0) {
    return Verdict::kAdmit;
  }
  const bool can_full = request.memory <= policy_.host_budget;
  const bool can_min =
      request.min_memory > 0 && request.min_memory <= policy_.host_budget;
  if (!can_full && !can_min) {
    return Verdict::kReject;  // Never fits, even on an idle host.
  }
  if (waiting == 0) {
    if (can_full && committed + request.memory <= policy_.host_budget) {
      return Verdict::kAdmit;
    }
    if (can_min && committed + request.min_memory <= policy_.host_budget) {
      return Verdict::kDegrade;
    }
  }
  if (policy_.max_waiters > 0 && waiting >= policy_.max_waiters) {
    return Verdict::kReject;
  }
  return Verdict::kQueue;
}

FleetAdmissionController::Verdict FleetAdmissionController::Probe(
    const AdmissionRequest& request) const {
  std::lock_guard<std::mutex> lock(mu_);
  return Classify(request, committed_, tickets_.size());
}

Grant FleetAdmissionController::Admit(const AdmissionRequest& request) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.requests;
  if (metrics_ != nullptr) {
    metrics_->GetCounter("admission.requests").Increment();
  }

  const Bytes budget = policy_.host_budget;
  const bool unlimited = budget == 0;
  const bool can_full = unlimited || request.memory <= budget;
  const bool can_min = !unlimited && request.min_memory > 0 &&
                       request.min_memory <= budget;

  auto fits_now = [&]() {
    return (can_full && (unlimited || committed_ + request.memory <= budget)) ||
           (can_min && committed_ + request.min_memory <= budget);
  };
  auto emit_verdict = [&](Verdict verdict, Bytes granted) {
    if (journal_ == nullptr) {
      return;
    }
    telemetry::Event event;
    event.source = "admission";
    event.type = "verdict";
    event.schedule_scoped = true;  // Depends on concurrent committed bytes.
    event.fields = {{"vm", telemetry::FieldValue{request.vm}},
                    {"verdict", telemetry::FieldValue{std::string(VerdictName(verdict))}},
                    {"granted_bytes", telemetry::FieldValue{static_cast<uint64_t>(granted)}}};
    journal_->Emit(std::move(event));
  };
  auto grant_locked = [&](bool waited) {
    Bytes granted = request.memory;
    bool degraded = false;
    if (!unlimited && !(can_full && committed_ + request.memory <= budget)) {
      granted = request.min_memory;
      degraded = true;
    }
    committed_ += granted;
    ++stats_.active;
    stats_.committed = committed_;
    if (committed_ > stats_.peak_committed) {
      stats_.peak_committed = committed_;
    }
    if (degraded) {
      ++stats_.degraded;
    } else {
      ++stats_.admitted;
    }
    if (metrics_ != nullptr) {
      metrics_->GetCounter(degraded ? "admission.degraded" : "admission.admitted")
          .Increment();
    }
    emit_verdict(degraded ? Verdict::kDegrade : Verdict::kAdmit, granted);
    PublishGauges();
    return Grant(this, granted, degraded, waited);
  };
  auto reject_locked = [&]() {
    ++stats_.rejected;
    if (metrics_ != nullptr) {
      metrics_->GetCounter("admission.rejected").Increment();
    }
    emit_verdict(Verdict::kReject, 0);
    return Grant();
  };

  if (!can_full && !can_min) {
    return reject_locked();
  }
  if (tickets_.empty() && fits_now()) {
    return grant_locked(/*waited=*/false);
  }
  if (policy_.max_waiters > 0 && tickets_.size() >= policy_.max_waiters) {
    return reject_locked();
  }

  // Queue FIFO: wait until this ticket reaches the head AND the budget has
  // room (full or degraded). Head-of-line blocking is deliberate — a large
  // request is not starved by small ones slipping past it.
  const uint64_t ticket = next_ticket_++;
  tickets_.push_back(ticket);
  ++stats_.queued;
  stats_.waiting = tickets_.size();
  if (metrics_ != nullptr) {
    metrics_->GetCounter("admission.queued").Increment();
  }
  emit_verdict(Verdict::kQueue, 0);
  cv_.wait(lock, [&]() { return tickets_.front() == ticket && fits_now(); });
  tickets_.pop_front();
  stats_.waiting = tickets_.size();
  Grant grant = grant_locked(/*waited=*/true);
  // The next waiter may also fit in what is left — wake the line.
  cv_.notify_all();
  return grant;
}

Grant FleetAdmissionController::TryAdmit(const AdmissionRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.requests;
  if (metrics_ != nullptr) {
    metrics_->GetCounter("admission.requests").Increment();
  }

  const Bytes budget = policy_.host_budget;
  const bool unlimited = budget == 0;
  const bool can_full = unlimited || request.memory <= budget;
  const bool can_min = !unlimited && request.min_memory > 0 &&
                       request.min_memory <= budget;
  const bool full_fits =
      can_full && (unlimited || committed_ + request.memory <= budget);
  const bool min_fits = can_min && committed_ + request.min_memory <= budget;

  auto emit_try_verdict = [&](const char* verdict, Bytes granted) {
    if (journal_ == nullptr) {
      return;
    }
    telemetry::Event event;
    event.source = "admission";
    event.type = "try-verdict";
    event.schedule_scoped = true;  // Depends on concurrent committed bytes.
    event.fields = {{"vm", telemetry::FieldValue{request.vm}},
                    {"verdict", telemetry::FieldValue{std::string(verdict)}},
                    {"granted_bytes", telemetry::FieldValue{static_cast<uint64_t>(granted)}}};
    journal_->Emit(std::move(event));
  };

  // Respect the FIFO line: stealing budget that a queued Admit() is waiting
  // for would starve it.
  if (tickets_.empty() && (full_fits || min_fits)) {
    const bool degraded = !full_fits;
    const Bytes granted = degraded ? request.min_memory : request.memory;
    committed_ += granted;
    ++stats_.active;
    stats_.committed = committed_;
    if (committed_ > stats_.peak_committed) {
      stats_.peak_committed = committed_;
    }
    if (degraded) {
      ++stats_.degraded;
    } else {
      ++stats_.admitted;
    }
    if (metrics_ != nullptr) {
      metrics_->GetCounter(degraded ? "admission.degraded" : "admission.admitted")
          .Increment();
    }
    emit_try_verdict(degraded ? "degrade" : "admit", granted);
    PublishGauges();
    return Grant(this, granted, degraded, /*waited=*/false);
  }

  ++stats_.try_denied;
  if (metrics_ != nullptr) {
    metrics_->GetCounter("admission.try_denied").Increment();
  }
  emit_try_verdict("deny", 0);
  return Grant();
}

void FleetAdmissionController::ReleaseBytes(Bytes bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    committed_ -= bytes;
    --stats_.active;
    stats_.committed = committed_;
    PublishGauges();
  }
  cv_.notify_all();
}

void FleetAdmissionController::PublishGauges() {
  if (metrics_ == nullptr) {
    return;
  }
  metrics_->GetGauge("admission.committed_bytes")
      .Set(static_cast<int64_t>(committed_));
  metrics_->GetGauge("admission.peak_committed_bytes")
      .Set(static_cast<int64_t>(stats_.peak_committed));
}

FleetAdmissionController::Stats FleetAdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lupine::vmm

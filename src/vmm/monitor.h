// Virtual machine monitor models.
//
// The paper runs Linux variants and OSv on Firecracker, and HermiTux / Rump
// on the unikernel monitors uhyve / solo5-hvt (both ukvm descendants);
// QEMU is the traditional heavyweight baseline (Section 2.2). A monitor
// contributes host-side setup phases to boot time and determines the device
// model the guest sees (Firecracker: virtio-mmio, no PCI enumeration).
#ifndef SRC_VMM_MONITOR_H_
#define SRC_VMM_MONITOR_H_

#include <string>

#include "src/util/units.h"

namespace lupine::vmm {

struct MonitorProfile {
  std::string name;
  Nanos process_start = 0;   // Spawning the monitor process, guest RAM setup.
  Nanos kernel_load = 0;     // Reading & placing the kernel image (per MB extra below).
  Nanos load_per_mb = 0;     // Image-size-dependent load cost.
  Nanos device_setup = 0;    // Device-model construction (virtio-mmio etc.).
  Nanos vcpu_setup = 0;      // vCPU create + register state.
  bool pci_bus = false;      // Exposes a PCI bus (QEMU); forces enumeration.
};

// AWS Firecracker: minimal Rust VMM, virtio-mmio only, no PCI, no BIOS.
const MonitorProfile& Firecracker();
// solo5-hvt (ukvm descendant): unikernel monitor used by Rump.
const MonitorProfile& Solo5Hvt();
// uhyve: unikernel monitor used by HermiTux.
const MonitorProfile& Uhyve();
// QEMU: traditional, general-purpose monitor (boot-time ablation).
const MonitorProfile& Qemu();

// Host-side monitor time before the guest's first instruction.
Nanos MonitorSetupTime(const MonitorProfile& profile, Bytes kernel_image_size);

}  // namespace lupine::vmm

#endif  // SRC_VMM_MONITOR_H_

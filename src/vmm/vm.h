// Vm: a monitor + kernel image + rootfs + RAM, bootable and runnable.
#ifndef SRC_VMM_VM_H_
#define SRC_VMM_VM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/guestos/kernel.h"
#include "src/guestos/snapshot.h"
#include "src/kbuild/image.h"
#include "src/telemetry/span.h"
#include "src/util/fault.h"
#include "src/vmm/monitor.h"

namespace lupine::vmm {

struct VmSpec {
  MonitorProfile monitor;
  kbuild::KernelImage image;
  std::string rootfs;        // LUPX2FS blob.
  Bytes memory = 512 * kMiB; // Guest RAM (the paper's default).
  int vcpus = 1;             // Pinned to 1 in the evaluation.
  // Non-owning fault injector threaded through the guest kernel. Lives
  // outside the Vm so its counters survive a supervisor restart (a fresh Vm
  // on the same injector continues the fault schedule rather than replaying
  // it). nullptr = no faults.
  FaultInjector* faults = nullptr;
  // Precomputed image-invariant boot plan shared by every VM booting this
  // image (KernelCache derives it once per kernel). nullptr = derive at boot.
  std::shared_ptr<const guestos::BootPlan> boot_plan;
};

// One boot-time line item, monitor and guest phases interleaved.
struct BootReport {
  std::vector<guestos::BootPhase> phases;
  Nanos total = 0;
  // Boot time as Firecracker logs it: from monitor start to the guest's
  // readiness I/O port write (init exec'd).
  Nanos to_init = 0;
};

class Vm {
 public:
  explicit Vm(VmSpec spec, const guestos::AppRegistry* registry = nullptr);

  // Monitor setup + guest kernel boot + init start. Init is the rootfs's
  // /sbin/init. On success the boot report is available.
  Status Boot();

  // Runs the guest to quiescence; returns init's exit code when it exited,
  // or an error description of what is still blocked (servers stay blocked).
  Result<int> RunToCompletion();

  guestos::Kernel& kernel() { return *kernel_; }
  const guestos::Kernel& kernel() const { return *kernel_; }
  const BootReport& boot_report() const { return report_; }
  const VmSpec& spec() const { return spec_; }

  // The boot as a span trace on the VM's virtual timeline: the monitor span,
  // every guest phase (decompress ... init-exec), and — once
  // RunToCompletion ran — an `app-main` span covering the application.
  const telemetry::SpanTrace& boot_spans() const { return spans_; }

  // The guest died of a panic (as opposed to exiting or still serving).
  bool crashed() const { return kernel_->panicked(); }

  // Convenience: full boot + run, reporting init's exit code and console.
  struct RunResult {
    Status status;
    int exit_code = -1;
    std::string console;
  };
  RunResult BootAndRun();

  // --- Snapshot/restore boot ------------------------------------------------
  // Builds a ready-to-run VM from a post-init snapshot at restore cost. The
  // state is re-materialized deterministically (replaying Boot+StartInit of
  // the snapshot's immutable inputs — identical state by construction) and
  // verified against the snapshot's state digest; then the virtual timeline
  // is rebased so boot_report().to_init == snapshot.restore_ns, the launch
  // cost a serving fleet actually pays. `faults` (non-owning, optional) is
  // consulted at FaultSite::kSnapshotRestore before the replay — a corrupt
  // memory file fails the restore with kIo (retryable), and the caller
  // should report the failure to its SnapshotCache so the entry is
  // quarantined. Digest mismatches fail kIo the same way. The restored VM
  // has never run a fiber, so it may be parked and later run on any thread.
  static Result<std::unique_ptr<Vm>> Restore(const guestos::Snapshot& snapshot,
                                             FaultInjector* faults = nullptr,
                                             const guestos::AppRegistry* registry = nullptr);

  // This VM was built by Restore() rather than Boot().
  bool restored() const { return restored_; }

 private:
  VmSpec spec_;
  std::unique_ptr<guestos::Kernel> kernel_;
  guestos::Process* init_ = nullptr;
  BootReport report_;
  telemetry::SpanTrace spans_;
  bool restored_ = false;
};

// Finds the minimum guest RAM (in MiB granularity) with which `try_run`
// succeeds — the Fig. 8 memory-footprint methodology ("repeatedly testing
// the unikernel with a decreasing memory parameter").
Bytes MinMemoryProbe(Bytes low, Bytes high, const std::function<bool(Bytes)>& try_run);

}  // namespace lupine::vmm

#endif  // SRC_VMM_VM_H_

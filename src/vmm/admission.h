// FleetAdmissionController: gate VM launches on a host memory budget.
//
// The paper's Fig. 8 measures per-unikernel memory footprints; a fleet host
// multiplies that by hundreds of VMs and dies of overcommit unless launches
// are gated. This controller tracks bytes committed to running VMs against a
// configurable budget and gives each launch one of four verdicts:
//
//   admit   — the full reservation fits; launch now.
//   degrade — the full reservation does not fit, but the caller declared a
//             smaller `min_memory` it can boot with; grant that instead
//             (graceful degradation: a smaller-heap VM beats a queued VM).
//   queue   — nothing fits right now; block FIFO until running VMs exit and
//             release their grants.
//   reject  — the request can never fit (even min_memory exceeds the whole
//             budget), or the wait queue is at max_waiters; fail fast.
//
// Grants are RAII: destroying (or Release()-ing) a Grant returns its bytes
// to the budget and wakes queued waiters in arrival order. The controller is
// thread-safe — fleet-boot workers on a ThreadPool call Admit() concurrently.
#ifndef SRC_VMM_ADMISSION_H_
#define SRC_VMM_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/util/units.h"

namespace lupine::vmm {

struct AdmissionPolicy {
  // Host memory available for guest RAM. 0 = unlimited (every request is
  // admitted in full immediately; useful as the no-op default).
  Bytes host_budget = 0;
  // Maximum number of launches allowed to block in the queue; one more is
  // rejected. 0 = unbounded queue.
  size_t max_waiters = 0;
};

struct AdmissionRequest {
  std::string vm;        // For operator-facing accounting only.
  Bytes memory = 0;      // Full reservation (the VM's --mem-size).
  // Smallest RAM the VM can boot with (Fig. 8 floor). 0 = not degradable:
  // the VM gets its full reservation or waits for it.
  Bytes min_memory = 0;
};

class FleetAdmissionController;

// A committed slice of the host budget. Move-only; returns its bytes on
// destruction or Release(). An invalid grant (valid() == false) means the
// request was rejected and no memory is held.
class Grant {
 public:
  Grant() = default;
  Grant(Grant&& other) noexcept { *this = std::move(other); }
  Grant& operator=(Grant&& other) noexcept;
  Grant(const Grant&) = delete;
  Grant& operator=(const Grant&) = delete;
  ~Grant() { Release(); }

  bool valid() const { return controller_ != nullptr; }
  // Bytes actually committed: the full reservation, or min_memory when the
  // launch was degraded. 0 for a rejected request.
  Bytes granted() const { return granted_; }
  bool degraded() const { return degraded_; }
  // The request blocked in the queue before being granted.
  bool waited() const { return waited_; }

  // Returns the bytes to the budget and wakes waiters. Idempotent.
  void Release();

 private:
  friend class FleetAdmissionController;
  Grant(FleetAdmissionController* controller, Bytes granted, bool degraded, bool waited)
      : controller_(controller), granted_(granted), degraded_(degraded), waited_(waited) {}

  FleetAdmissionController* controller_ = nullptr;
  Bytes granted_ = 0;
  bool degraded_ = false;
  bool waited_ = false;
};

class FleetAdmissionController {
 public:
  explicit FleetAdmissionController(AdmissionPolicy policy = {});
  FleetAdmissionController(const FleetAdmissionController&) = delete;
  FleetAdmissionController& operator=(const FleetAdmissionController&) = delete;

  enum class Verdict { kAdmit, kDegrade, kQueue, kReject };
  static const char* VerdictName(Verdict verdict);

  // What Admit() would do right now, without committing anything. Racy by
  // nature under concurrency — advisory only.
  Verdict Probe(const AdmissionRequest& request) const;

  // Blocks (FIFO) until the request can be satisfied, then commits the bytes
  // and returns the grant. Returns an invalid grant when the request is
  // rejected (can never fit, or the queue is full).
  Grant Admit(const AdmissionRequest& request);

  // Non-blocking Admit: commits and returns a grant only when the request
  // fits right now (full or degraded) with nobody queued ahead of it. Any
  // verdict that would block or reject returns an invalid grant without
  // queuing — the serving front door uses this to fall back to a cold boot
  // (or shed the request) instead of holding a request thread hostage.
  Grant TryAdmit(const AdmissionRequest& request);

  // Optional, non-owning metric sink: admission outcome counters plus
  // `admission.committed_bytes` / `admission.peak_committed_bytes` gauges.
  // Set before the first Admit(); the registry must outlive the controller.
  void set_metrics(telemetry::MetricRegistry* metrics) { metrics_ = metrics; }

  // Optional, non-owning flight-recorder sink: every Admit() outcome lands
  // as a "verdict" event under source "admission". Verdicts depend on what
  // is concurrently committed, so the events are schedule-scoped (full
  // export / Perfetto only, excluded from the canonical deterministic
  // export). Set before the first Admit(); must outlive the controller.
  void set_journal(telemetry::Journal* journal) { journal_ = journal; }

  struct Stats {
    uint64_t requests = 0;
    uint64_t admitted = 0;   // Full grants (including after a wait).
    uint64_t degraded = 0;   // min_memory grants.
    uint64_t queued = 0;     // Requests that blocked before being granted.
    uint64_t rejected = 0;
    uint64_t try_denied = 0; // TryAdmit() calls that found no immediate room.
    size_t waiting = 0;      // Currently blocked in Admit().
    size_t active = 0;       // Outstanding grants.
    Bytes committed = 0;     // Bytes currently held by grants.
    Bytes peak_committed = 0;
  };
  Stats stats() const;

  const AdmissionPolicy& policy() const { return policy_; }

 private:
  friend class Grant;

  // Verdict for `request` given `committed` bytes already held. Lock-free
  // pure function of the policy.
  Verdict Classify(const AdmissionRequest& request, Bytes committed,
                   size_t waiting) const;
  void ReleaseBytes(Bytes bytes);
  void PublishGauges();  // Caller holds mu_.

  const AdmissionPolicy policy_;
  telemetry::MetricRegistry* metrics_ = nullptr;
  telemetry::Journal* journal_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<uint64_t> tickets_;  // FIFO of waiting Admit() calls.
  uint64_t next_ticket_ = 0;
  Bytes committed_ = 0;
  Stats stats_;
};

}  // namespace lupine::vmm

#endif  // SRC_VMM_ADMISSION_H_

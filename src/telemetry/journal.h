// Fleet flight recorder: a thread-safe, virtual-clock-stamped structured
// event journal with deterministic JSON-lines export.
//
// Every subsystem that makes a decision worth explaining after the fact —
// the fleet scheduler (admit/steal/retry/deadline/quarantine), the
// supervisor (probe/backoff/crash-loop/degraded), the admission controller
// (verdicts), and the artifact caches (hit/miss/evict/poison/half-open) —
// emits typed events here. Each event carries a virtual-nanosecond
// timestamp, a source, a type, and a small list of typed fields.
//
// Determinism contract: the exported JSONL is a pure function of the event
// multiset. Export sorts canonically by (at, source, type, serialized
// fields), so producers that race on wall time but emit a deterministic
// multiset (the execute-once / replay-deterministically fleet pattern)
// yield byte-identical exports across 1/2/4/8 workers. Host-racy sources
// that have no virtual timeline stamp at=0 and ride the canonical sort.
//
// Memory is bounded: each source gets a drop-oldest ring (default 4096
// events); overflow increments a per-source dropped counter that is
// surfaced via dropped() and a final "journal"-source event in the export.
// Byte-identity across worker counts holds as long as no ring dropped —
// the storm tests size well under the ring.
#ifndef SRC_TELEMETRY_JOURNAL_H_
#define SRC_TELEMETRY_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "src/util/units.h"

namespace lupine::telemetry {

// One typed field on an event. int64 covers counts and ids, uint64 covers
// sizes and hashes, double covers ratios, bool covers flags.
using FieldValue = std::variant<int64_t, uint64_t, double, bool, std::string>;

struct Field {
  std::string key;
  FieldValue value;
};

struct Event {
  Nanos at = 0;          // virtual time; 0 when the source has no timeline
  std::string source;    // "fleet", "supervisor", "admission", "kernel-cache", ...
  std::string type;      // "task-start", "steal", "retry", "cache-hit", ...
  std::vector<Field> fields;
  // Schedule-scoped events (steals, replay worker attribution) are
  // deterministic for a fixed worker count but naturally differ across
  // worker counts, so the canonical export omits them by default. Not
  // serialized — it's routing metadata, not payload.
  bool schedule_scoped = false;
};

// A named counter track sampled over virtual time — rendered as a Chrome
// trace ph:"C" track by ToChromeTrace (e.g. resident bytes, queue depth).
struct CounterSeries {
  std::string name;
  std::vector<std::pair<Nanos, double>> points;  // (virtual ns, value)
};

// Renders one FieldValue as a JSON scalar (strings quoted + escaped).
std::string FieldValueToJson(const FieldValue& value);

// Renders one event as a single JSON object line (no trailing newline):
//   {"at":1234,"source":"fleet","type":"steal","worker":1,"victim":0}
// Field order is emission order; strings go through lupine::JsonEscape.
std::string EventToJsonLine(const Event& event);

class Journal {
 public:
  static constexpr size_t kDefaultRingCapacity = 4096;

  explicit Journal(size_t ring_capacity = kDefaultRingCapacity)
      : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

  // Thread-safe. Oldest event of the same source is dropped when that
  // source's ring is full.
  void Emit(Event event);
  void Emit(Nanos at, std::string_view source, std::string_view type,
            std::vector<Field> fields = {});

  // All retained events, canonically sorted by (at, source, type,
  // serialized fields). The sort makes the result a function of the event
  // multiset, not of emission interleaving.
  std::vector<Event> Snapshot(bool include_schedule_scoped = true) const;

  // JSON-lines export: one canonical line per event, '\n'-terminated.
  // The default export is the deterministic flight record — byte-identical
  // across 1/2/4/8 worker replays for the same seed/plan, because
  // schedule-scoped events are omitted; pass true for the full per-run
  // record (what the Perfetto trace renders). When any ring dropped
  // events, a final line per affected source records it:
  //   {"at":0,"source":"journal","type":"dropped","from":"fleet","count":12}
  std::string ExportJsonl(bool include_schedule_scoped = false) const;

  // Total events dropped across all rings / for one source.
  uint64_t dropped() const;
  uint64_t dropped(std::string_view source) const;
  size_t size() const;
  void Clear();

 private:
  struct Ring {
    std::deque<Event> events;
    uint64_t dropped = 0;
  };

  const size_t ring_capacity_;
  mutable std::mutex mu_;
  std::map<std::string, Ring, std::less<>> rings_;
};

}  // namespace lupine::telemetry

#endif  // SRC_TELEMETRY_JOURNAL_H_

// Thread-safe metrics plane shared by the whole stack.
//
// The paper's evaluation is entirely measurement-driven — boot-time
// breakdowns (Fig. 7), per-VM memory footprints (Fig. 8), syscall latencies
// (Fig. 9) — and every bench used to hand-roll its own counters. The
// MetricRegistry is the shared substrate instead: named counters, gauges and
// bounded histograms, labeled along the fleet's natural axes (vm, app,
// phase, worker, variant), collected into a stable-order snapshot that
// telemetry/export.h turns into JSON for benches and CI artifacts.
//
// Naming scheme: dotted lowercase `subsystem.metric_unit` (e.g.
// `kernelcache.kernel_builds`, `boot.phase_ns`, `admission.committed_bytes`)
// with dimensions in labels, never baked into the name. Units ride in the
// suffix (`_ns`, `_bytes`) so exported numbers are self-describing.
//
// Threading: GetCounter/GetGauge/GetHistogram are safe from any thread and
// return address-stable references (cells live in node-based maps and are
// never destroyed before the registry), so hot paths may cache the reference
// and update lock-free (counters/gauges are single atomics; histograms take
// a per-cell mutex). Collect() is safe concurrently with updates.
#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/util/stats.h"

namespace lupine::telemetry {

// Dimension pairs of one metric cell. Order-insensitive: labels are
// canonicalized (sorted by key) when the cell is created.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Canonical text form, e.g. `{app=redis,worker=3}`; empty labels -> "".
std::string FormatLabels(const Labels& labels);

// Monotonic event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time level (bytes committed, members healthy, ...).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  // High-water mark: keeps the maximum ever Set this way.
  void SetMax(int64_t value) {
    int64_t seen = value_.load(std::memory_order_relaxed);
    while (value > seen &&
           !value_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Sample distribution with exact count/sum/extremes and bounded-memory
// p50/p95/p99 (util/stats StreamingPercentiles: exact up to `capacity`
// samples, deterministic decimation beyond).
class Histogram {
 public:
  explicit Histogram(size_t capacity = 2048) : quantiles_(capacity) {}

  void Observe(double x) {
    std::lock_guard lock(mu_);
    acc_.Add(x);
    quantiles_.Add(x);
  }

  struct Summary {
    size_t count = 0;
    double min = 0.0;
    double mean = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Summary Snapshot() const {
    std::lock_guard lock(mu_);
    Summary s;
    s.count = acc_.count();
    s.min = acc_.min();
    s.mean = acc_.mean();
    s.max = acc_.max();
    s.sum = acc_.sum();
    s.p50 = quantiles_.p50();
    s.p95 = quantiles_.p95();
    s.p99 = quantiles_.p99();
    return s;
  }
  size_t count() const {
    std::lock_guard lock(mu_);
    return acc_.count();
  }

 private:
  mutable std::mutex mu_;
  Accumulator acc_;
  StreamingPercentiles quantiles_;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Find-or-create. The same (name, labels) always resolves to the same
  // cell; the returned reference stays valid for the registry's lifetime.
  Counter& GetCounter(const std::string& name, Labels labels = {});
  Gauge& GetGauge(const std::string& name, Labels labels = {});
  // `capacity` bounds the histogram's retained samples; it only applies on
  // first creation of the cell.
  Histogram& GetHistogram(const std::string& name, Labels labels = {},
                          size_t capacity = 2048);

  struct CounterSample {
    std::string name;
    Labels labels;
    uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    Labels labels;
    int64_t value = 0;
  };
  struct HistogramSample {
    std::string name;
    Labels labels;
    Histogram::Summary summary;
  };
  struct Snapshot {
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;

    size_t size() const { return counters.size() + gauges.size() + histograms.size(); }
  };
  // Stable order: sorted by (name, canonical labels) — two identical runs
  // export byte-identical snapshots.
  Snapshot Collect() const;

  // Process-wide default registry for callers without an injected one.
  static MetricRegistry& Global();

 private:
  // Key = (name, canonical label text). Cells hold their original labels for
  // snapshotting. std::map nodes are address-stable, so cells can embed
  // atomics/mutexes and be handed out by reference.
  using Key = std::pair<std::string, std::string>;
  struct CounterCell {
    explicit CounterCell(Labels l) : labels(std::move(l)) {}
    Labels labels;
    Counter cell;
  };
  struct GaugeCell {
    explicit GaugeCell(Labels l) : labels(std::move(l)) {}
    Labels labels;
    Gauge cell;
  };
  struct HistogramCell {
    HistogramCell(Labels l, size_t capacity) : labels(std::move(l)), cell(capacity) {}
    Labels labels;
    Histogram cell;
  };

  mutable std::shared_mutex mu_;
  std::map<Key, CounterCell> counters_;
  std::map<Key, GaugeCell> gauges_;
  std::map<Key, HistogramCell> histograms_;
};

}  // namespace lupine::telemetry

#endif  // SRC_TELEMETRY_METRICS_H_

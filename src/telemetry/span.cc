#include "src/telemetry/span.h"

#include <utility>

namespace lupine::telemetry {

void SpanTrace::Record(std::string name, Nanos start, Nanos end) {
  if (end < start) {
    end = start;
  }
  spans_.push_back({std::move(name), start, end});
  if (end > cursor_) {
    cursor_ = end;
  }
}

void SpanTrace::Extend(const SpanTrace& other) {
  if (other.spans_.empty()) {
    return;
  }
  const Nanos base = cursor_ - other.spans_.front().start;
  for (const Span& span : other.spans_) {
    spans_.push_back({span.name, span.start + base, span.end + base});
    if (spans_.back().end > cursor_) {
      cursor_ = spans_.back().end;
    }
  }
}

const Span* SpanTrace::Find(const std::string& name) const {
  for (const Span& span : spans_) {
    if (span.name == name) {
      return &span;
    }
  }
  return nullptr;
}

Nanos SpanTrace::TotalDuration() const {
  Nanos total = 0;
  for (const Span& span : spans_) {
    total += span.duration();
  }
  return total;
}

}  // namespace lupine::telemetry

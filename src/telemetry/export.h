// JSON export of telemetry snapshots.
//
// The exported shape is what benches snapshot into BENCH_*.json artifacts
// and what CI dashboards diff between runs:
//
//   {
//     "counters":   [{"name": ..., "labels": {...}, "value": N}, ...],
//     "gauges":     [{"name": ..., "labels": {...}, "value": N}, ...],
//     "histograms": [{"name": ..., "labels": {...}, "count": N, "min": ...,
//                     "mean": ..., "max": ..., "p50": ..., "p95": ...,
//                     "p99": ...}, ...]
//   }
//
// Snapshots are collected in stable (name, labels) order, so two identical
// runs export byte-identical documents. Spans render as an array of
// {"name", "start_ns", "end_ns", "duration_ns"} objects.
#ifndef SRC_TELEMETRY_EXPORT_H_
#define SRC_TELEMETRY_EXPORT_H_

#include <string>
#include <vector>

#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/span.h"
#include "src/util/json.h"
#include "src/util/result.h"

namespace lupine::telemetry {

// Escapes a string for embedding in a JSON document (quotes not included).
// Forwards to the shared lupine::JsonEscape — kept for call-site stability.
inline std::string JsonEscape(std::string_view s) { return lupine::JsonEscape(s); }

// The snapshot document above. `indent` prefixes every line (for embedding
// the document inside a larger hand-written one).
std::string ToJson(const MetricRegistry::Snapshot& snapshot, const std::string& indent = "");

// A span array: [{"name": ..., "start_ns": ..., "end_ns": ...,
// "duration_ns": ...}, ...].
std::string ToJson(const SpanTrace& trace, const std::string& indent = "");

// Chrome trace_event JSON (the JSON Array Format chrome://tracing and
// Perfetto load directly): one complete event (`"ph": "X"`) per span, with
// `ts`/`dur` in microseconds and one `tid` per timeline — timeline i renders
// as thread i of process 1. Feed it RunFleetBoot's worker_timelines to see
// the per-worker stage-overlap picture.
std::string ToChromeTrace(const std::vector<SpanTrace>& timelines);

// The unified flight-recorder trace: spans render as complete events
// (`ph:"X"`, one tid per timeline), journal events as thread-scoped
// instants (`ph:"i"`, tid from the event's integer "worker" field when
// present, all fields under `args`), and counter series as counter tracks
// (`ph:"C"`, `args.value` — Perfetto draws them as filled graphs). All
// events are emitted in one array, stably sorted by `ts`, so timestamps
// are monotonic within every tid.
std::string ToChromeTrace(const std::vector<SpanTrace>& timelines, const Journal& journal,
                          const std::vector<CounterSeries>& counters);

// Convenience: collect + render a whole registry.
std::string ExportJson(const MetricRegistry& registry);

// Writes `contents` to `path` (the bench-artifact helper).
Status WriteFile(const std::string& path, const std::string& contents);

}  // namespace lupine::telemetry

#endif  // SRC_TELEMETRY_EXPORT_H_

// Span tracing for the provisioning + boot pipeline.
//
// A SpanTrace is one entity's timeline — ordered, possibly nested-free spans
// with start/end timestamps in nanoseconds. The unit of the timeline is the
// caller's: guest boot phases ride on the VM's VirtualClock (deterministic),
// build-pipeline stages on the host's steady clock (measured). The canonical
// fleet pipeline is
//
//   specialize -> resolve -> build -> load-rootfs      (host wall, per artifact)
//   monitor:* -> decompress -> core-init -> initcalls
//     -> rootfs-mount -> init-exec -> app-main         (virtual, per boot)
//
// KernelCache records the first four on the artifact it serves;
// guestos::Kernel emits its boot phases into a sink the owning Vm installs;
// Vm adds the monitor span and app-main. telemetry/export.h renders a trace
// as JSON for bench artifacts.
//
// SpanTrace is not thread-safe: each trace belongs to one VM / one artifact
// build, which is single-threaded by construction.
#ifndef SRC_TELEMETRY_SPAN_H_
#define SRC_TELEMETRY_SPAN_H_

#include <chrono>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace lupine::telemetry {

struct Span {
  std::string name;
  Nanos start = 0;
  Nanos end = 0;

  Nanos duration() const { return end - start; }
};

class SpanTrace {
 public:
  // Appends a span at an explicit position; the cursor moves to `end` if
  // that is later. Spans are expected in (roughly) chronological order.
  void Record(std::string name, Nanos start, Nanos end);

  // Appends a span of `duration` starting at the current cursor — the shape
  // of sequential pipeline stages.
  void AddPhase(std::string name, Nanos duration) {
    Record(std::move(name), cursor_, cursor_ + duration);
  }

  // Moves the cursor forward (a gap nothing is attributed to).
  void AdvanceTo(Nanos t) {
    if (t > cursor_) {
      cursor_ = t;
    }
  }

  // Appends every span of `other`, re-based so other's timeline starts at
  // this trace's cursor — used to splice a boot trace (virtual time) after a
  // provisioning trace (host time) into one pipeline view.
  void Extend(const SpanTrace& other);

  const std::vector<Span>& spans() const { return spans_; }
  const Span* Find(const std::string& name) const;
  Nanos cursor() const { return cursor_; }
  // Sum of span durations (not end-start of the whole trace: gaps excluded).
  Nanos TotalDuration() const;
  bool empty() const { return spans_.empty(); }
  void Clear() {
    spans_.clear();
    cursor_ = 0;
  }

 private:
  std::vector<Span> spans_;
  Nanos cursor_ = 0;
};

// Host-wall-clock stopwatch for timing build-pipeline stages (the virtual
// clock does not run during builds; these spans are real measurements).
class HostStopwatch {
 public:
  HostStopwatch() : start_(std::chrono::steady_clock::now()) {}
  Nanos ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void Restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lupine::telemetry

#endif  // SRC_TELEMETRY_SPAN_H_

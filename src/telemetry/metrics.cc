#include "src/telemetry/metrics.h"

#include <algorithm>

namespace lupine::telemetry {
namespace {

Labels Canonicalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

std::string FormatLabels(const Labels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  out += '}';
  return out;
}

Counter& MetricRegistry::GetCounter(const std::string& name, Labels labels) {
  labels = Canonicalize(std::move(labels));
  Key key{name, FormatLabels(labels)};
  {
    std::shared_lock lock(mu_);
    auto it = counters_.find(key);
    if (it != counters_.end()) {
      return it->second.cell;
    }
  }
  std::unique_lock lock(mu_);
  auto [it, inserted] = counters_.try_emplace(std::move(key), std::move(labels));
  (void)inserted;
  return it->second.cell;
}

Gauge& MetricRegistry::GetGauge(const std::string& name, Labels labels) {
  labels = Canonicalize(std::move(labels));
  Key key{name, FormatLabels(labels)};
  {
    std::shared_lock lock(mu_);
    auto it = gauges_.find(key);
    if (it != gauges_.end()) {
      return it->second.cell;
    }
  }
  std::unique_lock lock(mu_);
  auto [it, inserted] = gauges_.try_emplace(std::move(key), std::move(labels));
  (void)inserted;
  return it->second.cell;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name, Labels labels,
                                        size_t capacity) {
  labels = Canonicalize(std::move(labels));
  Key key{name, FormatLabels(labels)};
  {
    std::shared_lock lock(mu_);
    auto it = histograms_.find(key);
    if (it != histograms_.end()) {
      return it->second.cell;
    }
  }
  std::unique_lock lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::piecewise_construct, std::forward_as_tuple(std::move(key)),
                      std::forward_as_tuple(std::move(labels), capacity))
             .first;
  }
  return it->second.cell;
}

MetricRegistry::Snapshot MetricRegistry::Collect() const {
  std::shared_lock lock(mu_);
  Snapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [key, cell] : counters_) {
    snapshot.counters.push_back({key.first, cell.labels, cell.cell.value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [key, cell] : gauges_) {
    snapshot.gauges.push_back({key.first, cell.labels, cell.cell.value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [key, cell] : histograms_) {
    snapshot.histograms.push_back({key.first, cell.labels, cell.cell.Snapshot()});
  }
  return snapshot;
}

MetricRegistry& MetricRegistry::Global() {
  // Leaked like the option interner: cells handed out by reference must
  // outlive every static destructor that might still update them.
  static MetricRegistry* global = new MetricRegistry();
  return *global;
}

}  // namespace lupine::telemetry

#include "src/telemetry/export.h"

#include <cinttypes>
#include <cstdio>

namespace lupine::telemetry {
namespace {

// %.17g keeps doubles round-trippable; trailing ".0" is not required by JSON.
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string LabelsJson(const Labels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += '"' + JsonEscape(labels[i].first) + "\": \"" + JsonEscape(labels[i].second) + '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToJson(const MetricRegistry::Snapshot& snapshot, const std::string& indent) {
  std::string out = "{\n";
  const std::string i1 = indent + "  ";
  const std::string i2 = indent + "    ";

  out += i1 + "\"counters\": [";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    out += (i == 0 ? "\n" : ",\n") + i2 + "{\"name\": \"" + JsonEscape(c.name) +
           "\", \"labels\": " + LabelsJson(c.labels) +
           ", \"value\": " + std::to_string(c.value) + "}";
  }
  out += snapshot.counters.empty() ? "],\n" : "\n" + i1 + "],\n";

  out += i1 + "\"gauges\": [";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    out += (i == 0 ? "\n" : ",\n") + i2 + "{\"name\": \"" + JsonEscape(g.name) +
           "\", \"labels\": " + LabelsJson(g.labels) +
           ", \"value\": " + std::to_string(g.value) + "}";
  }
  out += snapshot.gauges.empty() ? "],\n" : "\n" + i1 + "],\n";

  out += i1 + "\"histograms\": [";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    const auto& s = h.summary;
    out += (i == 0 ? "\n" : ",\n") + i2 + "{\"name\": \"" + JsonEscape(h.name) +
           "\", \"labels\": " + LabelsJson(h.labels) +
           ", \"count\": " + std::to_string(s.count) + ", \"min\": " + Num(s.min) +
           ", \"mean\": " + Num(s.mean) + ", \"max\": " + Num(s.max) +
           ", \"p50\": " + Num(s.p50) + ", \"p95\": " + Num(s.p95) +
           ", \"p99\": " + Num(s.p99) + "}";
  }
  out += snapshot.histograms.empty() ? "]\n" : "\n" + i1 + "]\n";

  out += indent + "}";
  return out;
}

std::string ToJson(const SpanTrace& trace, const std::string& indent) {
  std::string out = "[";
  const std::string i1 = indent + "  ";
  for (size_t i = 0; i < trace.spans().size(); ++i) {
    const Span& span = trace.spans()[i];
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"%s\", \"start_ns\": %" PRId64 ", \"end_ns\": %" PRId64
                  ", \"duration_ns\": %" PRId64 "}",
                  JsonEscape(span.name).c_str(), span.start, span.end, span.duration());
    out += (i == 0 ? "\n" : ",\n") + i1 + buf;
  }
  out += trace.spans().empty() ? "]" : "\n" + indent + "]";
  return out;
}

std::string ToChromeTrace(const std::vector<SpanTrace>& timelines) {
  // The trace_event "JSON Array Format": a bare array of complete events is
  // a valid document for chrome://tracing and Perfetto. Timestamps and
  // durations are microseconds by that spec; the nanos here are virtual, so
  // sub-microsecond spans keep their precision through the fraction.
  std::string out = "[";
  bool first = true;
  for (size_t tid = 0; tid < timelines.size(); ++tid) {
    for (const Span& span : timelines[tid].spans()) {
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "{\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                    "\"pid\": 1, \"tid\": %zu}",
                    JsonEscape(span.name).c_str(), ToMicros(span.start),
                    ToMicros(span.duration()), tid);
      out += first ? "\n  " : ",\n  ";
      out += buf;
      first = false;
    }
  }
  out += first ? "]" : "\n]";
  return out;
}

std::string ExportJson(const MetricRegistry& registry) { return ToJson(registry.Collect()); }

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status(Err::kIo, "cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const int close_err = std::fclose(f);
  if (written != contents.size() || close_err != 0) {
    return Status(Err::kIo, "short write to " + path);
  }
  return Status::Ok();
}

}  // namespace lupine::telemetry

#include "src/telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace lupine::telemetry {
namespace {

// %.17g keeps doubles round-trippable; trailing ".0" is not required by JSON.
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string LabelsJson(const Labels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += '"' + JsonEscape(labels[i].first) + "\": \"" + JsonEscape(labels[i].second) + '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string ToJson(const MetricRegistry::Snapshot& snapshot, const std::string& indent) {
  std::string out = "{\n";
  const std::string i1 = indent + "  ";
  const std::string i2 = indent + "    ";

  out += i1 + "\"counters\": [";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    out += (i == 0 ? "\n" : ",\n") + i2 + "{\"name\": \"" + JsonEscape(c.name) +
           "\", \"labels\": " + LabelsJson(c.labels) +
           ", \"value\": " + std::to_string(c.value) + "}";
  }
  out += snapshot.counters.empty() ? "],\n" : "\n" + i1 + "],\n";

  out += i1 + "\"gauges\": [";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    out += (i == 0 ? "\n" : ",\n") + i2 + "{\"name\": \"" + JsonEscape(g.name) +
           "\", \"labels\": " + LabelsJson(g.labels) +
           ", \"value\": " + std::to_string(g.value) + "}";
  }
  out += snapshot.gauges.empty() ? "],\n" : "\n" + i1 + "],\n";

  out += i1 + "\"histograms\": [";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    const auto& s = h.summary;
    out += (i == 0 ? "\n" : ",\n") + i2 + "{\"name\": \"" + JsonEscape(h.name) +
           "\", \"labels\": " + LabelsJson(h.labels) +
           ", \"count\": " + std::to_string(s.count) + ", \"min\": " + Num(s.min) +
           ", \"mean\": " + Num(s.mean) + ", \"max\": " + Num(s.max) +
           ", \"p50\": " + Num(s.p50) + ", \"p95\": " + Num(s.p95) +
           ", \"p99\": " + Num(s.p99) + "}";
  }
  out += snapshot.histograms.empty() ? "]\n" : "\n" + i1 + "]\n";

  out += indent + "}";
  return out;
}

std::string ToJson(const SpanTrace& trace, const std::string& indent) {
  std::string out = "[";
  const std::string i1 = indent + "  ";
  for (size_t i = 0; i < trace.spans().size(); ++i) {
    const Span& span = trace.spans()[i];
    // Built by string append (not a fixed snprintf buffer) so long escaped
    // names can never truncate mid-document.
    char nums[120];
    std::snprintf(nums, sizeof(nums),
                  "\", \"start_ns\": %" PRId64 ", \"end_ns\": %" PRId64
                  ", \"duration_ns\": %" PRId64 "}",
                  span.start, span.end, span.duration());
    out += (i == 0 ? "\n" : ",\n") + i1 + "{\"name\": \"" + JsonEscape(span.name) + nums;
  }
  out += trace.spans().empty() ? "]" : "\n" + indent + "]";
  return out;
}

std::string ToChromeTrace(const std::vector<SpanTrace>& timelines) {
  // The trace_event "JSON Array Format": a bare array of complete events is
  // a valid document for chrome://tracing and Perfetto. Timestamps and
  // durations are microseconds by that spec; the nanos here are virtual, so
  // sub-microsecond spans keep their precision through the fraction.
  return ToChromeTrace(timelines, Journal(), {});
}

std::string ToChromeTrace(const std::vector<SpanTrace>& timelines, const Journal& journal,
                          const std::vector<CounterSeries>& counters) {
  struct Entry {
    Nanos at;
    std::string line;
  };
  std::vector<Entry> entries;

  for (size_t tid = 0; tid < timelines.size(); ++tid) {
    for (const Span& span : timelines[tid].spans()) {
      char nums[120];
      std::snprintf(nums, sizeof(nums),
                    "\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %zu}",
                    ToMicros(span.start), ToMicros(span.duration()), tid);
      entries.push_back({span.start, "{\"name\": \"" + JsonEscape(span.name) + nums});
    }
  }

  // Journal events become thread-scoped instants. An integer "worker" field
  // pins the instant to that worker's thread row; everything else lands on
  // tid 0. All fields ride along under args for inspection in the UI.
  for (const Event& event : journal.Snapshot()) {
    long long tid = 0;
    std::string args = "{";
    for (size_t i = 0; i < event.fields.size(); ++i) {
      const Field& field = event.fields[i];
      if (field.key == "worker") {
        if (const auto* w = std::get_if<int64_t>(&field.value)) {
          tid = *w;
        }
      }
      if (i > 0) {
        args += ", ";
      }
      args += '"' + JsonEscape(field.key) + "\": " + FieldValueToJson(field.value);
    }
    args += '}';
    char nums[120];
    std::snprintf(nums, sizeof(nums),
                  "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": 1, \"tid\": %lld, "
                  "\"args\": ",
                  ToMicros(event.at), tid);
    entries.push_back({event.at, "{\"name\": \"" + JsonEscape(event.source) + "/" +
                                     JsonEscape(event.type) + nums + args + "}"});
  }

  for (const CounterSeries& series : counters) {
    for (const auto& [at, value] : series.points) {
      char nums[140];
      std::snprintf(nums, sizeof(nums),
                    "\", \"ph\": \"C\", \"ts\": %.3f, \"pid\": 1, \"tid\": 0, "
                    "\"args\": {\"value\": %.6f}}",
                    ToMicros(at), value);
      entries.push_back({at, "{\"name\": \"" + JsonEscape(series.name) + nums});
    }
  }

  // One array, globally (stably) ordered by virtual time: ts is then
  // monotone within every tid, which trace validators check.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.at < b.at; });

  std::string out = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    out += (i == 0 ? "\n  " : ",\n  ") + entries[i].line;
  }
  out += entries.empty() ? "]" : "\n]";
  return out;
}

std::string ExportJson(const MetricRegistry& registry) { return ToJson(registry.Collect()); }

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status(Err::kIo, "cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const int close_err = std::fclose(f);
  if (written != contents.size() || close_err != 0) {
    return Status(Err::kIo, "short write to " + path);
  }
  return Status::Ok();
}

}  // namespace lupine::telemetry

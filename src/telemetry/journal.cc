#include "src/telemetry/journal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/util/json.h"

namespace lupine::telemetry {

std::string FieldValueToJson(const FieldValue& value) {
  std::string out;
  char buf[64];
  if (const auto* i = std::get_if<int64_t>(&value)) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, *i);
    out += buf;
  } else if (const auto* u = std::get_if<uint64_t>(&value)) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, *u);
    out += buf;
  } else if (const auto* d = std::get_if<double>(&value)) {
    // %.17g round-trips doubles and prints integers without a spurious
    // fraction, keeping the export stable across compilers.
    std::snprintf(buf, sizeof(buf), "%.17g", *d);
    out += buf;
  } else if (const auto* b = std::get_if<bool>(&value)) {
    out += *b ? "true" : "false";
  } else {
    out += '"';
    out += JsonEscape(std::get<std::string>(value));
    out += '"';
  }
  return out;
}

std::string EventToJsonLine(const Event& event) {
  std::string out;
  out.reserve(96);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "{\"at\":%lld", static_cast<long long>(event.at));
  out += buf;
  out += ",\"source\":\"";
  out += JsonEscape(event.source);
  out += "\",\"type\":\"";
  out += JsonEscape(event.type);
  out += '"';
  for (const Field& field : event.fields) {
    out += ",\"";
    out += JsonEscape(field.key);
    out += "\":";
    out += FieldValueToJson(field.value);
  }
  out += '}';
  return out;
}

void Journal::Emit(Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find(event.source);
  if (it == rings_.end()) {
    it = rings_.emplace(event.source, Ring{}).first;
  }
  Ring& ring = it->second;
  if (ring.events.size() >= ring_capacity_) {
    ring.events.pop_front();
    ++ring.dropped;
  }
  ring.events.push_back(std::move(event));
}

void Journal::Emit(Nanos at, std::string_view source, std::string_view type,
                   std::vector<Field> fields) {
  Emit(Event{at, std::string(source), std::string(type), std::move(fields)});
}

std::vector<Event> Journal::Snapshot(bool include_schedule_scoped) const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const auto& [_, ring] : rings_) {
      total += ring.events.size();
    }
    events.reserve(total);
    for (const auto& [_, ring] : rings_) {
      for (const Event& event : ring.events) {
        if (include_schedule_scoped || !event.schedule_scoped) {
          events.push_back(event);
        }
      }
    }
  }
  std::stable_sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    if (a.source != b.source) {
      return a.source < b.source;
    }
    if (a.type != b.type) {
      return a.type < b.type;
    }
    return EventToJsonLine(a) < EventToJsonLine(b);
  });
  return events;
}

std::string Journal::ExportJsonl(bool include_schedule_scoped) const {
  std::vector<Event> events = Snapshot(include_schedule_scoped);
  std::string out;
  out.reserve(events.size() * 96);
  for (const Event& event : events) {
    out += EventToJsonLine(event);
    out += '\n';
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [source, ring] : rings_) {
    if (ring.dropped == 0) {
      continue;
    }
    Event note{0, "journal", "dropped",
               {{"from", FieldValue{std::string(source)}},
                {"count", FieldValue{static_cast<uint64_t>(ring.dropped)}}}};
    out += EventToJsonLine(note);
    out += '\n';
  }
  return out;
}

uint64_t Journal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [_, ring] : rings_) {
    total += ring.dropped;
  }
  return total;
}

uint64_t Journal::dropped(std::string_view source) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find(source);
  return it == rings_.end() ? 0 : it->second.dropped;
}

size_t Journal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [_, ring] : rings_) {
    total += ring.events.size();
  }
  return total;
}

void Journal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
}

}  // namespace lupine::telemetry

#include "src/loadspec/spec.h"

namespace lupine::loadspec {

const std::vector<std::string>& VariantNames() {
  static const std::vector<std::string> kNames = {
      "microvm",     "lupine",           "lupine-nokml",
      "lupine-tiny", "lupine-nokml-tiny", "lupine-general",
      "lupine-general-nokml",
  };
  return kNames;
}

double IntensityAt(const std::vector<PhaseSpec>& phases, Nanos since_start) {
  Nanos end = 0;
  for (const PhaseSpec& phase : phases) {
    end += phase.duration;
    if (since_start < end) {
      return phase.intensity;
    }
  }
  return 1.0;
}

}  // namespace lupine::loadspec

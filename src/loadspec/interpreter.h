// Scenario execution: materializes a validated ScenarioSpec into guest
// processes/threads running inside booted vmm::Vm instances.
//
// Per VM entry the interpreter boots the named variant (bench rootfs),
// drains init, clears the syscall accounting so the figures cover scenario
// work only, wires the declared channel topologies with pre-installed fds
// (the lmbench injection pattern), spawns each group's workers, and runs
// the guest to quiescence. VMs are independent simulations on independent
// virtual clocks, so they execute in parallel on a host thread pool; every
// reported figure is a pure function of (spec, options) and byte-identical
// across 1/2/4/8 host workers. Journal events are stamped with VM-relative
// virtual times and ride Journal's canonical sort.
#ifndef SRC_LOADSPEC_INTERPRETER_H_
#define SRC_LOADSPEC_INTERPRETER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/guestos/trace.h"
#include "src/loadspec/spec.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/util/result.h"

namespace lupine::loadspec {

struct ScenarioOptions {
  size_t workers = 1;         // host threads across VM simulations
  int kml_override = -1;      // -1 = per spec variant; 0/1 force off/on
  bool has_seed_override = false;
  uint64_t seed_override = 0;
  telemetry::Journal* journal = nullptr;          // optional flight record
  telemetry::MetricRegistry* metrics = nullptr;   // optional guest.syscall_*
};

struct GroupResult {
  std::string name;
  uint64_t iterations = 0;    // completed iterations summed over workers
};

struct VmRunResult {
  std::string name;
  std::string variant;
  bool kml = false;
  Nanos elapsed = 0;          // virtual ns, scenario start -> quiescence
  size_t blocked = 0;         // threads still blocked at quiescence
  uint64_t syscalls = 0;      // accounted guest syscalls (scenario only)
  // Non-zero per-syscall rows in syscall-number order: (name, stat).
  std::vector<std::pair<std::string, guestos::SyscallStat>> syscall_stats;
};

struct ScenarioResult {
  std::string name;
  Nanos elapsed = 0;          // max across VMs
  uint64_t total_iterations = 0;
  size_t blocked = 0;         // summed across VMs
  std::vector<GroupResult> groups;    // spec order
  std::vector<VmRunResult> vms;       // spec order
  std::vector<std::string> failures;  // violated expect assertions

  bool ok() const { return failures.empty(); }
  uint64_t SyscallCount(std::string_view name) const;

  // Everything the determinism contract covers, as one canonical string
  // (append the journal's canonical export before hashing).
  std::string CanonicalFiguresInput() const;
};

// Runs a validated spec. Fails (kInval) when a VM cannot be built or
// booted; expect-assertion violations are reported in `failures`, not as a
// Status, so benches can print them.
Result<ScenarioResult> RunScenario(const ScenarioSpec& spec,
                                   const ScenarioOptions& options = {});

// Parse + validate + run in one step.
Result<ScenarioResult> RunScenarioText(std::string_view text,
                                       const ScenarioOptions& options = {});

}  // namespace lupine::loadspec

#endif  // SRC_LOADSPEC_INTERPRETER_H_

#include "src/loadspec/actions.h"

#include <string>

namespace lupine::loadspec {
namespace {

using guestos::SyscallApi;

// ---- syscall_mix menu -------------------------------------------------------
// Each entry issues one (or one small composite of) priced guest syscalls.
// The menu is curated rather than exhaustive: entries must be safe to issue
// from any worker at any time, against the bench rootfs, without leaking
// unbounded guest resources across millions of draws.

void EnsureDevFds(ActionCtx& ctx) {
  if (ctx.dev_zero < 0) {
    auto fd = ctx.sys->Open("/dev/zero");
    ctx.dev_zero = fd.ok() ? fd.value() : -1;
  }
  if (ctx.dev_null < 0) {
    auto fd = ctx.sys->Open("/dev/null");
    ctx.dev_null = fd.ok() ? fd.value() : -1;
  }
}

void MixGetppid(ActionCtx& ctx) { (void)ctx.sys->Getppid(); }
void MixGetpid(ActionCtx& ctx) { (void)ctx.sys->Getpid(); }
void MixClockGettime(ActionCtx& ctx) { (void)ctx.sys->ClockGettime(); }
void MixUname(ActionCtx& ctx) { (void)ctx.sys->Uname(); }
void MixYield(ActionCtx& ctx) { ctx.sys->SchedYield(); }
void MixNanosleep(ActionCtx& ctx) { ctx.sys->Nanosleep(Micros(1)); }

void MixRead(ActionCtx& ctx) {
  EnsureDevFds(ctx);
  if (ctx.dev_zero >= 0) {
    (void)ctx.sys->Read(ctx.dev_zero, 64);
  }
}

void MixWrite(ActionCtx& ctx) {
  EnsureDevFds(ctx);
  if (ctx.dev_null >= 0) {
    (void)ctx.sys->Write(ctx.dev_null, std::string(64, 'w'));
  }
}

void MixOpenClose(ActionCtx& ctx) {
  // One file per worker, created on first use and reopened after that, so
  // the VFS does not grow with the draw count.
  auto fd = ctx.sys->Open("/tmp/mix_" + std::to_string(ctx.worker), /*create=*/true);
  if (fd.ok()) {
    (void)ctx.sys->Close(fd.value());
  }
}

void MixStat(ActionCtx& ctx) { (void)ctx.sys->Stat("/sbin/init"); }

void MixBrk(ActionCtx& ctx) {
  if (ctx.sys->BrkGrow(4096).ok()) {
    ctx.heap_bytes += 4096;
  }
}

void MixMmapMunmap(ActionCtx& ctx) {
  auto vma = ctx.sys->Mmap(4096);
  if (vma.ok()) {
    (void)ctx.sys->Munmap(vma.value());
  }
}

void MixPipeClose(ActionCtx& ctx) {
  auto fds = ctx.sys->Pipe();
  if (fds.ok()) {
    (void)ctx.sys->Close(fds.value().first);
    (void)ctx.sys->Close(fds.value().second);
  }
}

void MixDupClose(ActionCtx& ctx) {
  EnsureDevFds(ctx);
  if (ctx.dev_null >= 0) {
    auto fd = ctx.sys->Dup(ctx.dev_null);
    if (fd.ok()) {
      (void)ctx.sys->Close(fd.value());
    }
  }
}

void MixFutex(ActionCtx& ctx) {
  // A wake with no waiters: the cheapest futex kernel entry.
  (void)ctx.sys->FutexWake(ctx.group->word.get(), 1);
}

struct MixEntry {
  const char* name;
  void (*run)(ActionCtx&);
};

const MixEntry kMixMenu[] = {
    {"getppid", MixGetppid},   {"getpid", MixGetpid},
    {"clock_gettime", MixClockGettime}, {"uname", MixUname},
    {"sched_yield", MixYield}, {"nanosleep", MixNanosleep},
    {"read", MixRead},         {"write", MixWrite},
    {"open_close", MixOpenClose}, {"stat", MixStat},
    {"brk", MixBrk},           {"mmap_munmap", MixMmapMunmap},
    {"pipe_close", MixPipeClose}, {"dup_close", MixDupClose},
    {"futex", MixFutex},
};

void RunMixedSyscall(std::string_view name, ActionCtx& ctx) {
  for (const MixEntry& entry : kMixMenu) {
    if (name == entry.name) {
      entry.run(ctx);
      return;
    }
  }
}

// ---- actions ----------------------------------------------------------------

void RunSyscallMix(const ActionSpec& action, ActionCtx& ctx) {
  double total = 0.0;
  for (const auto& [name, weight] : action.mix) {
    total += weight;
  }
  if (total <= 0.0) {
    return;
  }
  const auto count = static_cast<uint64_t>(NumOr(action, "count", 1));
  for (uint64_t i = 0; i < count; ++i) {
    double draw = ctx.prng.NextDouble() * total;
    for (const auto& [name, weight] : action.mix) {
      draw -= weight;
      if (draw < 0.0) {
        RunMixedSyscall(name, ctx);
        break;
      }
    }
  }
}

void RunCompute(const ActionSpec& action, ActionCtx& ctx) {
  ctx.sys->Compute(static_cast<Nanos>(NumOr(action, "us", 10) * kNanosPerMicro));
}

void RunMemTouch(const ActionSpec& action, ActionCtx& ctx) {
  const Bytes length = static_cast<Bytes>(NumOr(action, "kb", 64)) * kKiB;
  if (ctx.heap_bytes < length) {
    if (ctx.sys->BrkGrow(length - ctx.heap_bytes).ok()) {
      ctx.heap_bytes = length;
    }
  }
  (void)ctx.sys->TouchHeap(0, length);
}

void RunBrkGrow(const ActionSpec& action, ActionCtx& ctx) {
  const Bytes grow = static_cast<Bytes>(NumOr(action, "kb", 16)) * kKiB;
  if (ctx.sys->BrkGrow(grow).ok()) {
    ctx.heap_bytes += grow;
  }
}

void RunSend(const ActionSpec& action, ActionCtx& ctx) {
  auto it = ctx.channels.find(action.strs.at("channel"));
  if (it == ctx.channels.end()) {
    return;
  }
  const auto bytes = static_cast<size_t>(NumOr(action, "bytes", 100));
  const auto count = static_cast<uint64_t>(NumOr(action, "count", 1));
  const std::string msg(bytes, 'm');
  for (uint64_t m = 0; m < count; ++m) {
    for (int fd : it->second.out_fds) {
      if (it->second.kind == ChannelKind::kPipe) {
        (void)ctx.sys->Write(fd, msg);
      } else {
        (void)ctx.sys->Send(fd, msg);
      }
    }
  }
}

void RunRecv(const ActionSpec& action, ActionCtx& ctx) {
  auto it = ctx.channels.find(action.strs.at("channel"));
  if (it == ctx.channels.end()) {
    return;
  }
  const auto bytes = static_cast<size_t>(NumOr(action, "bytes", 100));
  const auto count = static_cast<uint64_t>(NumOr(action, "count", 1));
  for (uint64_t m = 0; m < count; ++m) {
    for (int fd : it->second.in_fds) {
      size_t got = 0;
      while (got < bytes) {
        Result<std::string> data =
            it->second.kind == ChannelKind::kPipe
                ? ctx.sys->Read(fd, bytes - got)
                : ctx.sys->Recv(fd, bytes - got);
        if (!data.ok() || data.value().empty()) {
          return;  // Peer closed; a mismatched spec shows up as short recv.
        }
        got += data.value().size();
      }
    }
  }
}

void RunFutexContend(const ActionSpec& action, ActionCtx& ctx) {
  // The stress.cc baton: workers take strict turns on one futex word,
  // blocking until the word is theirs (mod group size), then waking the
  // rest. One action call advances this worker `rounds` turns.
  const auto rounds = static_cast<int>(NumOr(action, "rounds", 1));
  int* word = ctx.group->word.get();
  const int workers = ctx.group->workers;
  for (int r = 0; r < rounds; ++r) {
    for (;;) {
      int v = *word;
      if (v % workers == ctx.worker) {
        break;
      }
      if (ctx.sys->FutexWait(word, v).err() == Err::kNoSys) {
        return;
      }
    }
    ++*word;
    (void)ctx.sys->FutexWake(word, workers > 1 ? workers - 1 : 1);
  }
}

void RunSemLock(const ActionSpec& action, ActionCtx& ctx) {
  workload::SemWait(*ctx.sys, ctx.group->sem.get());
  ctx.sys->Compute(static_cast<Nanos>(NumOr(action, "compute_ns", 120)));
  workload::SemPost(*ctx.sys, ctx.group->sem.get());
  ctx.sys->SchedYield();  // Hand the semaphore to a sibling.
}

void RunForkWork(const ActionSpec& action, ActionCtx& ctx) {
  const auto units = static_cast<int>(NumOr(action, "units", 1));
  const auto compute = static_cast<Nanos>(NumOr(action, "compute_us", 1500) * kNanosPerMicro);
  const auto write_bytes = static_cast<size_t>(NumOr(action, "write_kb", 8)) * kKiB;
  for (int u = 0; u < units; ++u) {
    const std::string path =
        "/tmp/fw_" + std::to_string(ctx.worker) + "_" + std::to_string(ctx.scratch++ % 16);
    auto pid = ctx.sys->Fork([compute, write_bytes, path](SyscallApi& cc) -> int {
      cc.Compute(compute);
      auto fd = cc.Open(path, /*create=*/true);
      if (fd.ok()) {
        (void)cc.Write(fd.value(), std::string(write_bytes, 'o'));
        (void)cc.Close(fd.value());
      }
      return 0;
    });
    if (pid.ok()) {
      (void)ctx.sys->Wait4(pid.value());
    }
  }
}

void RunSleep(const ActionSpec& action, ActionCtx& ctx) {
  ctx.sys->Nanosleep(static_cast<Nanos>(NumOr(action, "us", 100) * kNanosPerMicro));
}

void RunYield(const ActionSpec& action, ActionCtx& ctx) {
  (void)action;
  ctx.sys->SchedYield();
}

}  // namespace

const std::vector<ActionDef>& ActionRegistry() {
  static const std::vector<ActionDef> kRegistry = {
      {"syscall_mix",
       {{"count", /*required=*/true, 1, 1e9, 1}},
       {},
       /*takes_mix=*/true,
       /*channel_ref=*/false,
       RunSyscallMix},
      {"compute", {{"us", true, 0, 1e9, 10}}, {}, false, false, RunCompute},
      {"mem_touch", {{"kb", true, 1, 1 << 20, 64}}, {}, false, false, RunMemTouch},
      {"brk_grow", {{"kb", true, 1, 1 << 20, 16}}, {}, false, false, RunBrkGrow},
      {"send",
       {{"bytes", false, 1, 1 << 20, 100}, {"count", false, 1, 1e6, 1}},
       {{"channel", true}},
       false,
       /*channel_ref=*/true,
       RunSend},
      {"recv",
       {{"bytes", false, 1, 1 << 20, 100}, {"count", false, 1, 1e6, 1}},
       {{"channel", true}},
       false,
       /*channel_ref=*/true,
       RunRecv},
      {"futex_contend", {{"rounds", false, 1, 1e6, 1}}, {}, false, false, RunFutexContend},
      {"sem_lock", {{"compute_ns", false, 0, 1e9, 120}}, {}, false, false, RunSemLock},
      {"fork_work",
       {{"units", false, 1, 1e4, 1},
        {"compute_us", false, 0, 1e7, 1500},
        {"write_kb", false, 1, 1 << 16, 8}},
       {},
       false,
       false,
       RunForkWork},
      {"sleep", {{"us", false, 0, 1e9, 100}}, {}, false, false, RunSleep},
      {"yield", {}, {}, false, false, RunYield},
  };
  return kRegistry;
}

const ActionDef* FindAction(std::string_view op) {
  for (const ActionDef& def : ActionRegistry()) {
    if (op == def.op) {
      return &def;
    }
  }
  return nullptr;
}

const std::vector<std::string>& MixableSyscalls() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const MixEntry& entry : kMixMenu) {
      names.emplace_back(entry.name);
    }
    return names;
  }();
  return kNames;
}

double NumOr(const ActionSpec& action, const char* key, double def) {
  auto it = action.nums.find(key);
  return it == action.nums.end() ? def : it->second;
}

}  // namespace lupine::loadspec

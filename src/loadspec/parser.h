// Spec text -> ScenarioSpec, with line-precise diagnostics.
//
// Two entry points share one walk of the JSON document:
//
//   LintScenario   collects every problem it can find — syntax errors,
//                  unknown keys, type mismatches, dangling group/channel
//                  references, zero-rate phases, out-of-range parameters —
//                  each rendered as "line:col: message". tools/speccheck
//                  prints these verbatim.
//
//   ParseScenario  returns the validated model or the first diagnostic as a
//                  Status (callers that just want to run a spec).
//
// Validation is registry-driven: action ops, their parameter names/ranges,
// and syscall_mix entries are checked against loadspec::ActionRegistry()
// and MixableSyscalls(), so the linter can never accept a spec the
// interpreter would not understand.
#ifndef SRC_LOADSPEC_PARSER_H_
#define SRC_LOADSPEC_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/loadspec/spec.h"
#include "src/util/result.h"

namespace lupine::loadspec {

struct SpecDiagnostic {
  int line = 1;
  int col = 1;
  std::string message;

  // "line:col: message" — the format speccheck prints and tests golden.
  std::string ToString() const;
};

// Parses and validates `text`. On success returns the model and leaves
// `diags` (if non-null) empty except for non-fatal warnings; on failure
// returns kInval and fills `diags` with everything found.
Result<ScenarioSpec> ParseScenario(std::string_view text,
                                   std::vector<SpecDiagnostic>* diags = nullptr);

// Lint-only entry: every diagnostic, no model. Returns true when clean.
bool LintScenario(std::string_view text, std::vector<SpecDiagnostic>* diags);

}  // namespace lupine::loadspec

#endif  // SRC_LOADSPEC_PARSER_H_

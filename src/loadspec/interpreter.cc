#include "src/loadspec/interpreter.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <utility>

#include "src/guestos/kernel.h"
#include "src/guestos/syscall_api.h"
#include "src/loadspec/actions.h"
#include "src/loadspec/parser.h"
#include "src/unikernels/linux_system.h"
#include "src/util/prng.h"
#include "src/util/thread_pool.h"
#include "src/vmm/vm.h"
#include "src/workload/spawn.h"

namespace lupine::loadspec {
namespace {

using guestos::SyscallApi;

Result<unikernels::LinuxVariantSpec> VariantFor(const std::string& name) {
  if (name == "microvm") return unikernels::MicrovmSpec();
  if (name == "lupine") return unikernels::LupineSpec();
  if (name == "lupine-nokml") return unikernels::LupineNokmlSpec();
  if (name == "lupine-tiny") return unikernels::LupineTinySpec();
  if (name == "lupine-nokml-tiny") return unikernels::LupineNokmlTinySpec();
  if (name == "lupine-general") return unikernels::LupineGeneralSpec();
  if (name == "lupine-general-nokml") return unikernels::LupineGeneralNokmlSpec();
  return Status(Err::kInval, "loadspec: unknown variant " + name);
}

// One worker's execution state, heap-pinned so the spawn closure and the
// channel-wiring pass can both reach it.
struct WorkerPlan {
  const GroupSpec* group = nullptr;
  int worker = 0;
  std::unique_ptr<ActionCtx> ctx = std::make_unique<ActionCtx>();
  guestos::Process* process = nullptr;  // fd-install target
  uint64_t completed = 0;               // iterations; written by the fiber
};

// The per-iteration loop every worker runs: optional pacing on the virtual
// clock (period scaled by the active phase's intensity), then the action
// list in order.
void RunWorkerLoop(SyscallApi& sys, const ScenarioSpec& spec, WorkerPlan* plan,
                   Nanos t0) {
  const GroupSpec& group = *plan->group;
  ActionCtx& ctx = *plan->ctx;
  ctx.sys = &sys;
  Nanos next_release = t0;
  for (int iter = 0; iter < group.iterations; ++iter) {
    if (group.period > 0) {
      const Nanos now = sys.kernel()->clock().now();
      if (now < next_release) {
        sys.Nanosleep(next_release - now);
      }
      const double intensity = IntensityAt(spec.phases, next_release - t0);
      next_release += static_cast<Nanos>(static_cast<double>(group.period) / intensity);
    }
    for (const ActionSpec& action : group.actions) {
      if (const ActionDef* def = FindAction(action.op)) {
        def->run(action, ctx);
      }
    }
    ++plan->completed;
  }
}

struct VmTaskResult {
  VmRunResult vm;
  std::map<std::string, uint64_t> group_iterations;
  Status status = Status::Ok();
};

VmTaskResult RunOneVm(const ScenarioSpec& spec, const VmEntrySpec& entry,
                      size_t vm_index, const ScenarioOptions& options) {
  VmTaskResult out;
  out.vm.name = entry.name;
  out.vm.variant = entry.variant;

  auto variant = VariantFor(entry.variant);
  if (!variant.ok()) {
    out.status = variant.status();
    return out;
  }
  if (options.kml_override >= 0) {
    variant->kml = options.kml_override != 0;
  }
  out.vm.kml = variant->kml;

  unikernels::LinuxSystem system(variant.value());
  auto made = system.MakeVm(entry.app, entry.memory, /*bench_rootfs=*/true);
  if (!made.ok()) {
    out.status = made.status();
    return out;
  }
  std::unique_ptr<vmm::Vm> vm = made.take();
  if (Status s = vm->Boot(); !s.ok()) {
    out.status = s;
    return out;
  }
  guestos::Kernel& k = vm->kernel();
  k.Run();           // Drain init so the figures cover scenario work only.
  k.trace().Clear();
  const Nanos t0 = k.clock().now();

  // Deterministic per-worker PRNG streams: the scenario seed, xored with
  // the VM's spec index, forked in (group, worker) order. Host scheduling
  // of VM tasks never touches the streams.
  const uint64_t seed =
      options.has_seed_override ? options.seed_override : spec.seed;
  Prng vm_prng(seed ^ (0x9E3779B97F4A7C15ull * (vm_index + 1)));

  // Spawn every worker of every group homed on this VM. Thread-mode groups
  // get one leader process whose main thread is worker 0; it spawns the
  // siblings and futex-joins them so the process outlives every worker.
  std::map<std::string, std::unique_ptr<GroupShared>> shared;
  std::vector<std::unique_ptr<WorkerPlan>> plans;
  std::map<std::string, std::vector<WorkerPlan*>> by_group;
  for (const GroupSpec& group : spec.groups) {
    if (group.vm != entry.name) {
      continue;
    }
    auto& group_shared =
        shared.emplace(group.name, std::make_unique<GroupShared>()).first->second;
    group_shared->workers = group.workers;
    std::vector<WorkerPlan*> members;
    for (int w = 0; w < group.workers; ++w) {
      auto plan = std::make_unique<WorkerPlan>();
      plan->group = &group;
      plan->worker = w;
      plan->ctx->worker = w;
      plan->ctx->group = group_shared.get();
      plan->ctx->prng = vm_prng.Fork();
      members.push_back(plan.get());
      plans.push_back(std::move(plan));
    }
    if (group.threads) {
      WorkerPlan* leader = members.front();
      guestos::Process* process = workload::SpawnProcess(
          k, group.name, [&spec, members, t0](SyscallApi& sys) {
            auto done = std::make_shared<int>(0);
            const int siblings = static_cast<int>(members.size()) - 1;
            for (size_t w = 1; w < members.size(); ++w) {
              WorkerPlan* plan = members[w];
              (void)sys.SpawnThread([&spec, plan, t0, done](SyscallApi& ts) {
                RunWorkerLoop(ts, spec, plan, t0);
                ++*done;
                (void)ts.FutexWake(done.get(), 1);
              });
            }
            RunWorkerLoop(sys, spec, members.front(), t0);
            while (*done < siblings) {
              (void)sys.FutexWait(done.get(), *done);
            }
          });
      for (WorkerPlan* plan : members) {
        plan->process = process;  // threads share the leader's fd table
      }
    } else {
      for (WorkerPlan* plan : members) {
        plan->process = workload::SpawnProcess(
            k, group.name + "." + std::to_string(plan->worker),
            [&spec, plan, t0](SyscallApi& sys) { RunWorkerLoop(sys, spec, plan, t0); });
      }
    }
    by_group.emplace(group.name, std::move(members));
  }

  // Wire channels: a full bipartite pairing between the two groups' workers,
  // fds installed before the scheduler first runs any fiber.
  for (const ChannelSpec& channel : spec.channels) {
    auto from_it = by_group.find(channel.from);
    auto to_it = by_group.find(channel.to);
    if (from_it == by_group.end() || to_it == by_group.end()) {
      continue;  // channel belongs to another VM
    }
    for (WorkerPlan* from : from_it->second) {
      for (WorkerPlan* to : to_it->second) {
        ChannelEnds& fe = from->ctx->channels[channel.name];
        ChannelEnds& te = to->ctx->channels[channel.name];
        fe.kind = te.kind = channel.kind;
        if (channel.kind == ChannelKind::kPipe) {
          // Two pipes per pair so ping-pong works.
          auto forward = std::make_shared<guestos::PipeBuffer>(&k.sched());
          auto backward = std::make_shared<guestos::PipeBuffer>(&k.sched());
          fe.out_fds.push_back(
              workload::InstallPipeEnd(from->process, forward, /*read_end=*/false));
          fe.in_fds.push_back(
              workload::InstallPipeEnd(from->process, backward, /*read_end=*/true));
          te.in_fds.push_back(
              workload::InstallPipeEnd(to->process, forward, /*read_end=*/true));
          te.out_fds.push_back(
              workload::InstallPipeEnd(to->process, backward, /*read_end=*/false));
        } else {
          const auto type = channel.kind == ChannelKind::kUnixStream
                                ? guestos::SockType::kStream
                                : guestos::SockType::kDgram;
          auto [sa, sb] = k.net().CreatePair(type);
          const int fa = workload::InstallSocket(from->process, sa);
          const int fb = workload::InstallSocket(to->process, sb);
          fe.out_fds.push_back(fa);
          fe.in_fds.push_back(fa);
          te.out_fds.push_back(fb);
          te.in_fds.push_back(fb);
        }
      }
    }
  }

  out.vm.blocked = k.Run();
  out.vm.elapsed = k.clock().now() - t0;
  out.vm.syscalls = k.trace().accounted_syscalls();
  const auto& stats = k.trace().syscall_stats();
  for (size_t i = 0; i < stats.size(); ++i) {
    if (stats[i].count > 0) {
      out.vm.syscall_stats.emplace_back(
          kbuild::SyscallName(static_cast<kbuild::Sys>(i)), stats[i]);
    }
  }
  for (const auto& [name, members] : by_group) {
    uint64_t iterations = 0;
    for (const WorkerPlan* plan : members) {
      iterations += plan->completed;
    }
    out.group_iterations[name] = iterations;
  }

  if (options.metrics != nullptr) {
    guestos::PublishSyscallMetrics(k.trace(), *options.metrics, entry.app,
                                   variant->kml);
  }
  if (options.journal != nullptr) {
    options.journal->Emit(0, "loadspec", "vm-start",
                          {{"vm", entry.name},
                           {"variant", entry.variant},
                           {"app", entry.app},
                           {"kml", variant->kml}});
    for (const auto& [name, iterations] : out.group_iterations) {
      options.journal->Emit(out.vm.elapsed, "loadspec", "group-done",
                            {{"vm", entry.name},
                             {"group", name},
                             {"iterations", iterations}});
    }
    options.journal->Emit(out.vm.elapsed, "loadspec", "vm-done",
                          {{"vm", entry.name},
                           {"elapsed_ns", static_cast<int64_t>(out.vm.elapsed)},
                           {"blocked", static_cast<int64_t>(out.vm.blocked)},
                           {"syscalls", out.vm.syscalls}});
  }
  return out;
}

void CheckExpect(const ScenarioSpec& spec, ScenarioResult* result) {
  char line[256];
  for (const ExpectSpec& expect : spec.expect) {
    double value = 0;
    std::string label = expect.metric;
    if (expect.metric == "elapsed_ms") {
      value = ToMillis(result->elapsed);
    } else if (expect.metric == "iterations") {
      if (expect.group.empty()) {
        value = static_cast<double>(result->total_iterations);
      } else {
        label += "(" + expect.group + ")";
        for (const GroupResult& group : result->groups) {
          if (group.name == expect.group) {
            value = static_cast<double>(group.iterations);
          }
        }
      }
    } else if (expect.metric == "syscall_count") {
      label += "(" + expect.syscall + ")";
      value = static_cast<double>(result->SyscallCount(expect.syscall));
    } else if (expect.metric == "blocked") {
      value = static_cast<double>(result->blocked);
    }
    if (expect.has_min && value < expect.min) {
      std::snprintf(line, sizeof(line), "%s = %.3f below expected min %.3f",
                    label.c_str(), value, expect.min);
      result->failures.emplace_back(line);
    }
    if (expect.has_max && value > expect.max) {
      std::snprintf(line, sizeof(line), "%s = %.3f above expected max %.3f",
                    label.c_str(), value, expect.max);
      result->failures.emplace_back(line);
    }
  }
}

}  // namespace

uint64_t ScenarioResult::SyscallCount(std::string_view name) const {
  uint64_t total = 0;
  for (const VmRunResult& vm : vms) {
    for (const auto& [sys_name, stat] : vm.syscall_stats) {
      if (sys_name == name) {
        total += stat.count;
      }
    }
  }
  return total;
}

std::string ScenarioResult::CanonicalFiguresInput() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "scenario=%s elapsed=%lld iterations=%llu blocked=%zu\n",
                name.c_str(), static_cast<long long>(elapsed),
                static_cast<unsigned long long>(total_iterations), blocked);
  out += line;
  for (const GroupResult& group : groups) {
    std::snprintf(line, sizeof(line), "group %s iterations=%llu\n", group.name.c_str(),
                  static_cast<unsigned long long>(group.iterations));
    out += line;
  }
  for (const VmRunResult& vm : vms) {
    std::snprintf(line, sizeof(line),
                  "vm %s variant=%s kml=%d elapsed=%lld blocked=%zu syscalls=%llu\n",
                  vm.name.c_str(), vm.variant.c_str(), vm.kml ? 1 : 0,
                  static_cast<long long>(vm.elapsed), vm.blocked,
                  static_cast<unsigned long long>(vm.syscalls));
    out += line;
    for (const auto& [sys_name, stat] : vm.syscall_stats) {
      std::snprintf(line, sizeof(line), "  %s count=%llu total=%llu min=%llu max=%llu\n",
                    sys_name.c_str(), static_cast<unsigned long long>(stat.count),
                    static_cast<unsigned long long>(stat.total_ns),
                    static_cast<unsigned long long>(stat.min_ns),
                    static_cast<unsigned long long>(stat.max_ns));
      out += line;
    }
  }
  for (const std::string& failure : failures) {
    out += "failure " + failure + "\n";
  }
  return out;
}

Result<ScenarioResult> RunScenario(const ScenarioSpec& spec,
                                   const ScenarioOptions& options) {
  ScenarioResult result;
  result.name = spec.name;

  // Each VM is a self-contained simulation; fan them out on the host pool.
  std::vector<VmTaskResult> tasks(spec.vms.size());
  {
    ThreadPool pool(std::max<size_t>(1, options.workers));
    std::vector<std::future<VmTaskResult>> futures;
    futures.reserve(spec.vms.size());
    for (size_t i = 0; i < spec.vms.size(); ++i) {
      futures.push_back(pool.Submit(
          [&spec, i, &options] { return RunOneVm(spec, spec.vms[i], i, options); }));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      tasks[i] = futures[i].get();
    }
  }

  for (VmTaskResult& task : tasks) {
    if (!task.status.ok()) {
      return task.status;
    }
    result.elapsed = std::max(result.elapsed, task.vm.elapsed);
    result.blocked += task.vm.blocked;
    result.vms.push_back(std::move(task.vm));
  }
  for (const GroupSpec& group : spec.groups) {
    GroupResult gr;
    gr.name = group.name;
    for (const VmTaskResult& task : tasks) {
      auto it = task.group_iterations.find(group.name);
      if (it != task.group_iterations.end()) {
        gr.iterations += it->second;
      }
    }
    result.total_iterations += gr.iterations;
    result.groups.push_back(std::move(gr));
  }
  CheckExpect(spec, &result);
  return result;
}

Result<ScenarioResult> RunScenarioText(std::string_view text,
                                       const ScenarioOptions& options) {
  auto spec = ParseScenario(text);
  if (!spec.ok()) {
    return spec.status();
  }
  return RunScenario(spec.value(), options);
}

}  // namespace lupine::loadspec

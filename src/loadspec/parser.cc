#include "src/loadspec/parser.h"

#include <cmath>
#include <set>
#include <utility>

#include "src/kbuild/syscalls.h"
#include "src/loadspec/actions.h"
#include "src/util/json.h"

namespace lupine::loadspec {
namespace {

bool IsKnownSyscallName(std::string_view name) {
  for (int i = 0; i < kbuild::kNumSyscalls; ++i) {
    if (name == kbuild::SyscallName(static_cast<kbuild::Sys>(i))) {
      return true;
    }
  }
  return false;
}

// Walks the parsed document once, accumulating diagnostics and (when clean)
// the model. Every Diag() call anchors on a byte offset recorded by the JSON
// parser, so messages land on the offending token, not "somewhere in vms".
class Validator {
 public:
  Validator(std::string_view text, std::vector<SpecDiagnostic>* diags)
      : text_(text), diags_(diags) {}

  Result<ScenarioSpec> Run() {
    JsonParseError jerr;
    JsonParseOptions options;
    options.max_depth = 32;
    options.reject_duplicate_keys = true;
    Result<JsonValue> doc = ParseJson(text_, options, &jerr);
    if (!doc.ok()) {
      Diag(jerr.offset, jerr.what);
      return Fail();
    }
    const JsonValue& root = doc.value();
    if (!root.is_object()) {
      Diag(root.offset, "scenario must be a JSON object");
      return Fail();
    }
    CheckKeys(root, {"name", "description", "seed", "vms", "groups", "channels",
                     "phases", "expect"},
              "scenario");
    ReadString(root, "name", &spec_.name, /*required=*/true, "scenario");
    ReadString(root, "description", &spec_.description, false, "scenario");
    if (const JsonValue* seed = root.Find("seed")) {
      double value = 0;
      if (ReadNumberValue(*seed, "seed", 0, 1.8e19, &value)) {
        spec_.seed = static_cast<uint64_t>(value);
      }
    }
    Vms(root.Find("vms"));
    Groups(root, root.Find("groups"));
    Channels(root.Find("channels"));
    CheckChannelRefs();
    Phases(root.Find("phases"));
    Expects(root.Find("expect"));
    if (errors_ > 0) {
      return Fail();
    }
    return spec_;
  }

 private:
  void Diag(size_t offset, std::string message) {
    ++errors_;
    LineCol at = OffsetToLineCol(text_, offset);
    if (first_.empty()) {
      first_ = std::to_string(at.line) + ":" + std::to_string(at.col) + ": " + message;
    }
    if (diags_ != nullptr) {
      diags_->push_back({at.line, at.col, std::move(message)});
    }
  }

  Status Fail() const {
    return Status(Err::kInval, "loadspec: " + (first_.empty() ? "invalid spec" : first_));
  }

  void CheckKeys(const JsonValue& obj, std::initializer_list<std::string_view> allowed,
                 const std::string& context) {
    for (const auto& [key, value] : obj.object) {
      bool known = false;
      for (std::string_view a : allowed) {
        if (key == a) {
          known = true;
          break;
        }
      }
      if (!known) {
        Diag(value.key_offset, "unknown key \"" + key + "\" in " + context);
      }
    }
  }

  bool ReadString(const JsonValue& obj, const char* key, std::string* out, bool required,
                  const std::string& context) {
    const JsonValue* v = obj.Find(key);
    if (v == nullptr) {
      if (required) {
        Diag(obj.offset, context + " is missing required key \"" + std::string(key) + "\"");
      }
      return false;
    }
    if (!v->is_string()) {
      Diag(v->offset, "\"" + std::string(key) + "\" must be a string");
      return false;
    }
    if (required && v->str.empty()) {
      Diag(v->offset, "\"" + std::string(key) + "\" must not be empty");
      return false;
    }
    *out = v->str;
    return true;
  }

  bool ReadNumberValue(const JsonValue& v, const char* key, double min_value,
                       double max_value, double* out) {
    if (!v.is_number()) {
      Diag(v.offset, "\"" + std::string(key) + "\" must be a number");
      return false;
    }
    if (v.number < min_value || v.number > max_value) {
      Diag(v.offset, "\"" + std::string(key) + "\" out of range [" +
                         FormatBound(min_value) + ", " + FormatBound(max_value) + "]");
      return false;
    }
    *out = v.number;
    return true;
  }

  bool ReadInt(const JsonValue& obj, const char* key, double min_value, double max_value,
               int* out) {
    const JsonValue* v = obj.Find(key);
    if (v == nullptr) {
      return false;
    }
    double value = 0;
    if (!ReadNumberValue(*v, key, min_value, max_value, &value)) {
      return false;
    }
    if (value != std::floor(value)) {
      Diag(v->offset, "\"" + std::string(key) + "\" must be an integer");
      return false;
    }
    *out = static_cast<int>(value);
    return true;
  }

  static std::string FormatBound(double b) {
    // Bounds are integral by construction; render them without trailing zeros.
    std::string s = std::to_string(static_cast<long long>(b));
    return s;
  }

  void Vms(const JsonValue* vms) {
    if (vms == nullptr) {
      spec_.vms.push_back(VmEntrySpec{});
      return;
    }
    if (!vms->is_array()) {
      Diag(vms->offset, "\"vms\" must be an array");
      return;
    }
    if (vms->array.empty()) {
      spec_.vms.push_back(VmEntrySpec{});
      return;
    }
    std::set<std::string> names;
    for (const JsonValue& entry : vms->array) {
      if (!entry.is_object()) {
        Diag(entry.offset, "vm entry must be an object");
        continue;
      }
      CheckKeys(entry, {"name", "variant", "app", "memory_mb"}, "vm entry");
      VmEntrySpec vm;
      ReadString(entry, "name", &vm.name, false, "vm entry");
      if (const JsonValue* variant = entry.Find("variant")) {
        if (!variant->is_string()) {
          Diag(variant->offset, "\"variant\" must be a string");
        } else {
          bool known = false;
          for (const std::string& name : VariantNames()) {
            if (variant->str == name) {
              known = true;
              break;
            }
          }
          if (!known) {
            Diag(variant->offset, "unknown variant \"" + variant->str + "\"");
          } else {
            vm.variant = variant->str;
          }
        }
      }
      ReadString(entry, "app", &vm.app, false, "vm entry");
      if (const JsonValue* mem = entry.Find("memory_mb")) {
        double mb = 0;
        if (ReadNumberValue(*mem, "memory_mb", 1, 65536, &mb)) {
          vm.memory = static_cast<Bytes>(mb) * kMiB;
        }
      }
      if (!names.insert(vm.name).second) {
        Diag(entry.offset, "duplicate vm name \"" + vm.name + "\"");
      }
      spec_.vms.push_back(std::move(vm));
    }
  }

  bool KnownVm(const std::string& name) const {
    for (const VmEntrySpec& vm : spec_.vms) {
      if (vm.name == name) {
        return true;
      }
    }
    return false;
  }

  void Groups(const JsonValue& root, const JsonValue* groups) {
    if (groups == nullptr) {
      Diag(root.offset, "scenario is missing required key \"groups\"");
      return;
    }
    if (!groups->is_array() || groups->array.empty()) {
      Diag(groups->offset, "\"groups\" must be a non-empty array");
      return;
    }
    std::set<std::string> names;
    for (const JsonValue& entry : groups->array) {
      if (!entry.is_object()) {
        Diag(entry.offset, "group entry must be an object");
        continue;
      }
      GroupSpec group;
      ReadString(entry, "name", &group.name, /*required=*/true, "group");
      CheckKeys(entry, {"name", "vm", "workers", "mode", "iterations", "period_us",
                        "actions"},
                "group \"" + group.name + "\"");
      if (!group.name.empty() && !names.insert(group.name).second) {
        Diag(entry.offset, "duplicate group name \"" + group.name + "\"");
      }
      if (const JsonValue* vm = entry.Find("vm")) {
        if (ReadString(entry, "vm", &group.vm, false, "group") && !KnownVm(group.vm)) {
          Diag(vm->offset, "dangling vm reference \"" + group.vm + "\"");
        }
      } else {
        group.vm = spec_.vms.empty() ? "main" : spec_.vms.front().name;
      }
      ReadInt(entry, "workers", 1, 256, &group.workers);
      if (const JsonValue* mode = entry.Find("mode")) {
        if (!mode->is_string() || (mode->str != "process" && mode->str != "thread")) {
          Diag(mode->offset, "\"mode\" must be \"process\" or \"thread\"");
        } else {
          group.threads = mode->str == "thread";
        }
      }
      ReadInt(entry, "iterations", 1, 1000000000, &group.iterations);
      if (const JsonValue* period = entry.Find("period_us")) {
        double us = 0;
        if (ReadNumberValue(*period, "period_us", 0, 1e12, &us)) {
          group.period = static_cast<Nanos>(us * kNanosPerMicro);
        }
      }
      Actions(entry, &group);
      spec_.groups.push_back(std::move(group));
    }
  }

  void Actions(const JsonValue& entry, GroupSpec* group) {
    const JsonValue* actions = entry.Find("actions");
    if (actions == nullptr) {
      Diag(entry.offset, "group \"" + group->name + "\" is missing required key \"actions\"");
      return;
    }
    if (!actions->is_array() || actions->array.empty()) {
      Diag(actions->offset, "\"actions\" must be a non-empty array");
      return;
    }
    for (const JsonValue& av : actions->array) {
      if (!av.is_object()) {
        Diag(av.offset, "action must be an object");
        continue;
      }
      ActionSpec action;
      if (!ReadString(av, "op", &action.op, /*required=*/true, "action")) {
        continue;
      }
      const ActionDef* def = FindAction(action.op);
      if (def == nullptr) {
        Diag(av.Find("op")->offset, "unknown action op \"" + action.op + "\"");
        continue;
      }
      for (const auto& [key, value] : av.object) {
        if (key == "op") {
          continue;
        }
        if (key == "mix") {
          if (!def->takes_mix) {
            Diag(value.key_offset,
                 "\"" + action.op + "\" does not take a \"mix\" object");
            continue;
          }
          Mix(value, &action);
          continue;
        }
        if (const NumParam* np = FindNum(*def, key)) {
          double num = 0;
          if (ReadNumberValue(value, key.c_str(), np->min_value, np->max_value, &num)) {
            action.nums[key] = num;
          }
          continue;
        }
        if (FindStr(*def, key) != nullptr) {
          if (!value.is_string() || value.str.empty()) {
            Diag(value.offset, "\"" + key + "\" must be a non-empty string");
          } else {
            action.strs[key] = value.str;
          }
          continue;
        }
        Diag(value.key_offset,
             "unknown key \"" + key + "\" for action \"" + action.op + "\"");
      }
      for (const NumParam& np : def->nums) {
        if (np.required && action.nums.find(np.key) == action.nums.end()) {
          action.nums[np.key] = np.def;  // required-with-default: fill it in
        }
      }
      for (const StrParam& sp : def->strs) {
        if (sp.required && action.strs.find(sp.key) == action.strs.end()) {
          Diag(av.offset, "action \"" + action.op + "\" is missing required key \"" +
                              std::string(sp.key) + "\"");
        }
      }
      if (def->takes_mix && action.mix.empty()) {
        Diag(av.offset, "action \"" + action.op + "\" requires a non-empty \"mix\" object");
      }
      group->actions.push_back(std::move(action));
    }
  }

  void Mix(const JsonValue& mix, ActionSpec* action) {
    if (!mix.is_object() || mix.object.empty()) {
      Diag(mix.offset, "\"mix\" must be a non-empty object");
      return;
    }
    double total = 0.0;
    for (const auto& [name, weight] : mix.object) {
      bool known = false;
      for (const std::string& m : MixableSyscalls()) {
        if (name == m) {
          known = true;
          break;
        }
      }
      if (!known) {
        Diag(weight.key_offset, "unknown mix syscall \"" + name + "\"");
        continue;
      }
      if (!weight.is_number() || weight.number < 0) {
        Diag(weight.offset, "mix weight for \"" + name + "\" must be a non-negative number");
        continue;
      }
      total += weight.number;
      action->mix.emplace_back(name, weight.number);
    }
    if (!action->mix.empty() && total <= 0.0) {
      Diag(mix.offset, "all mix weights are zero");
    }
  }

  static const NumParam* FindNum(const ActionDef& def, std::string_view key) {
    for (const NumParam& np : def.nums) {
      if (key == np.key) {
        return &np;
      }
    }
    return nullptr;
  }

  static const StrParam* FindStr(const ActionDef& def, std::string_view key) {
    for (const StrParam& sp : def.strs) {
      if (key == sp.key) {
        return &sp;
      }
    }
    return nullptr;
  }

  bool KnownGroup(const std::string& name) const {
    for (const GroupSpec& g : spec_.groups) {
      if (g.name == name) {
        return true;
      }
    }
    return false;
  }

  void Channels(const JsonValue* channels) {
    if (channels == nullptr) {
      return;
    }
    if (!channels->is_array()) {
      Diag(channels->offset, "\"channels\" must be an array");
      return;
    }
    std::set<std::string> names;
    for (const JsonValue& entry : channels->array) {
      if (!entry.is_object()) {
        Diag(entry.offset, "channel entry must be an object");
        continue;
      }
      ChannelSpec channel;
      ReadString(entry, "name", &channel.name, /*required=*/true, "channel");
      CheckKeys(entry, {"name", "kind", "from", "to"},
                "channel \"" + channel.name + "\"");
      if (!channel.name.empty() && !names.insert(channel.name).second) {
        Diag(entry.offset, "duplicate channel name \"" + channel.name + "\"");
      }
      if (const JsonValue* kind = entry.Find("kind")) {
        if (!kind->is_string()) {
          Diag(kind->offset, "\"kind\" must be a string");
        } else if (kind->str == "pipe") {
          channel.kind = ChannelKind::kPipe;
        } else if (kind->str == "unix") {
          channel.kind = ChannelKind::kUnixStream;
        } else if (kind->str == "dgram") {
          channel.kind = ChannelKind::kUnixDgram;
        } else {
          Diag(kind->offset,
               "\"kind\" must be one of \"pipe\", \"unix\", \"dgram\"");
        }
      }
      for (const char* side : {"from", "to"}) {
        std::string* out = side[0] == 'f' ? &channel.from : &channel.to;
        const JsonValue* v = entry.Find(side);
        if (ReadString(entry, side, out, /*required=*/true, "channel") &&
            !KnownGroup(*out)) {
          Diag(v->offset, "dangling group reference \"" + *out + "\"");
        }
      }
      if (!channel.from.empty() && channel.from == channel.to) {
        Diag(entry.offset,
             "channel \"" + channel.name + "\" connects group \"" + channel.from +
                 "\" to itself");
      }
      // Both endpoint groups must live in the same VM: guest pipes and
      // sockets cannot cross VM boundaries.
      const GroupSpec* from = FindGroup(channel.from);
      const GroupSpec* to = FindGroup(channel.to);
      if (from != nullptr && to != nullptr && from->vm != to->vm) {
        Diag(entry.offset, "channel \"" + channel.name + "\" spans vms \"" + from->vm +
                               "\" and \"" + to->vm + "\"");
      }
      spec_.channels.push_back(std::move(channel));
    }
  }

  const GroupSpec* FindGroup(const std::string& name) const {
    for (const GroupSpec& g : spec_.groups) {
      if (g.name == name) {
        return &g;
      }
    }
    return nullptr;
  }

  const ChannelSpec* FindChannel(const std::string& name) const {
    for (const ChannelSpec& c : spec_.channels) {
      if (c.name == name) {
        return &c;
      }
    }
    return nullptr;
  }

  // send/recv channel references can only be checked once both groups and
  // channels exist; anchor the diagnostics on the whole document since the
  // offending token's offset was consumed during the first pass.
  void CheckChannelRefs() {
    for (const GroupSpec& group : spec_.groups) {
      for (const ActionSpec& action : group.actions) {
        auto it = action.strs.find("channel");
        if (it == action.strs.end()) {
          continue;
        }
        const ChannelSpec* channel = FindChannel(it->second);
        if (channel == nullptr) {
          Diag(0, "group \"" + group.name + "\" references undeclared channel \"" +
                      it->second + "\"");
          continue;
        }
        if (channel->from != group.name && channel->to != group.name) {
          Diag(0, "group \"" + group.name + "\" is not an endpoint of channel \"" +
                      it->second + "\"");
        }
      }
    }
  }

  void Phases(const JsonValue* phases) {
    if (phases == nullptr) {
      return;
    }
    if (!phases->is_array()) {
      Diag(phases->offset, "\"phases\" must be an array");
      return;
    }
    for (const JsonValue& entry : phases->array) {
      if (!entry.is_object()) {
        Diag(entry.offset, "phase entry must be an object");
        continue;
      }
      CheckKeys(entry, {"name", "duration_ms", "intensity"}, "phase");
      PhaseSpec phase;
      ReadString(entry, "name", &phase.name, false, "phase");
      const JsonValue* duration = entry.Find("duration_ms");
      if (duration == nullptr) {
        Diag(entry.offset, "phase is missing required key \"duration_ms\"");
      } else {
        double ms = 0;
        if (ReadNumberValue(*duration, "duration_ms", 0, 1e9, &ms)) {
          if (ms <= 0) {
            Diag(duration->offset, "\"duration_ms\" must be positive");
          } else {
            phase.duration = static_cast<Nanos>(ms * kNanosPerMilli);
          }
        }
      }
      if (const JsonValue* intensity = entry.Find("intensity")) {
        double value = 0;
        if (ReadNumberValue(*intensity, "intensity", 0, 1e6, &value)) {
          if (value <= 0) {
            Diag(intensity->offset, "zero-rate phase \"" + phase.name +
                                        "\": intensity must be positive");
          } else {
            phase.intensity = value;
          }
        }
      }
      spec_.phases.push_back(std::move(phase));
    }
  }

  void Expects(const JsonValue* expects) {
    if (expects == nullptr) {
      return;
    }
    if (!expects->is_array()) {
      Diag(expects->offset, "\"expect\" must be an array");
      return;
    }
    for (const JsonValue& entry : expects->array) {
      if (!entry.is_object()) {
        Diag(entry.offset, "expect entry must be an object");
        continue;
      }
      CheckKeys(entry, {"metric", "group", "syscall", "min", "max"}, "expect entry");
      ExpectSpec expect;
      const JsonValue* metric = entry.Find("metric");
      if (!ReadString(entry, "metric", &expect.metric, /*required=*/true, "expect entry")) {
        continue;
      }
      if (expect.metric != "elapsed_ms" && expect.metric != "iterations" &&
          expect.metric != "syscall_count" && expect.metric != "blocked") {
        Diag(metric->offset, "unknown metric \"" + expect.metric + "\"");
        continue;
      }
      if (const JsonValue* group = entry.Find("group")) {
        if (ReadString(entry, "group", &expect.group, false, "expect entry")) {
          if (expect.metric != "iterations") {
            Diag(group->key_offset,
                 "\"group\" only applies to the \"iterations\" metric");
          } else if (!KnownGroup(expect.group)) {
            Diag(group->offset, "dangling group reference \"" + expect.group + "\"");
          }
        }
      }
      const JsonValue* syscall = entry.Find("syscall");
      if (expect.metric == "syscall_count") {
        if (syscall == nullptr) {
          Diag(entry.offset, "\"syscall_count\" requires a \"syscall\" key");
        } else if (ReadString(entry, "syscall", &expect.syscall, false, "expect entry") &&
                   !IsKnownSyscallName(expect.syscall)) {
          Diag(syscall->offset, "unknown syscall \"" + expect.syscall + "\"");
        }
      } else if (syscall != nullptr) {
        Diag(syscall->key_offset,
             "\"syscall\" only applies to the \"syscall_count\" metric");
      }
      if (const JsonValue* min = entry.Find("min")) {
        double value = 0;
        if (ReadNumberValue(*min, "min", -1e18, 1e18, &value)) {
          expect.has_min = true;
          expect.min = value;
        }
      }
      if (const JsonValue* max = entry.Find("max")) {
        double value = 0;
        if (ReadNumberValue(*max, "max", -1e18, 1e18, &value)) {
          expect.has_max = true;
          expect.max = value;
        }
      }
      if (!expect.has_min && !expect.has_max) {
        Diag(entry.offset, "expect entry needs \"min\" and/or \"max\"");
      } else if (expect.has_min && expect.has_max && expect.min > expect.max) {
        Diag(entry.offset, "expect entry has min > max");
      }
      spec_.expect.push_back(std::move(expect));
    }
  }

  std::string_view text_;
  std::vector<SpecDiagnostic>* diags_;
  ScenarioSpec spec_;
  int errors_ = 0;
  std::string first_;
};

}  // namespace

std::string SpecDiagnostic::ToString() const {
  return std::to_string(line) + ":" + std::to_string(col) + ": " + message;
}

Result<ScenarioSpec> ParseScenario(std::string_view text,
                                   std::vector<SpecDiagnostic>* diags) {
  return Validator(text, diags).Run();
}

bool LintScenario(std::string_view text, std::vector<SpecDiagnostic>* diags) {
  return Validator(text, diags).Run().ok();
}

}  // namespace lupine::loadspec

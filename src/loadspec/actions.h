// The scenario action registry: the vocabulary of per-iteration behaviors a
// spec's worker groups can compose.
//
// One table drives both halves of the subsystem: the validator checks ops,
// parameter names, ranges and mix syscall names against it (so speccheck
// and the interpreter can never disagree about what a spec means), and the
// interpreter dispatches through the same entries to execute actions
// against a guest's SyscallApi.
//
// Library actions re-express the hand-coded workloads as data:
//   syscall_mix    weighted draws over a curated syscall menu (lmbench-ish)
//   compute        user-mode CPU burn
//   mem_touch      demand-page a heap range (brk + touch)
//   brk_grow       grow the heap
//   send / recv    message exchange over a declared channel (hackbench,
//                  perf-messaging, pipe-latency shapes)
//   futex_contend  the stress.cc futex baton generalized to group size
//   sem_lock       sem_posix lock/compute/unlock/yield (stress.cc)
//   fork_work      make -j style fork + compute + object-file write + wait
//   sleep          timer wait (nanosleep)
//   yield          sched_yield
#ifndef SRC_LOADSPEC_ACTIONS_H_
#define SRC_LOADSPEC_ACTIONS_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/guestos/syscall_api.h"
#include "src/loadspec/spec.h"
#include "src/util/prng.h"
#include "src/workload/guest_sync.h"

namespace lupine::loadspec {

// A worker's endpoints for one channel. out/in are paired by peer index:
// out_fds[i] writes toward peer i, in_fds[i] reads from peer i.
struct ChannelEnds {
  ChannelKind kind = ChannelKind::kPipe;
  std::vector<int> out_fds;
  std::vector<int> in_fds;
};

// Per-group state shared by all of a group's workers (they live in one
// guest, scheduled cooperatively, so plain ints are safe).
struct GroupShared {
  std::shared_ptr<int> word = std::make_shared<int>(0);  // futex_contend baton
  std::shared_ptr<workload::GuestSemaphore> sem =
      std::make_shared<workload::GuestSemaphore>();
  int workers = 1;
};

// Everything an action body needs: the syscall interface, the worker's
// deterministic PRNG stream, its channel endpoints, and lazily-created
// resources (device fds, heap growth) cached across iterations.
struct ActionCtx {
  guestos::SyscallApi* sys = nullptr;
  Prng prng;
  int worker = 0;
  GroupShared* group = nullptr;
  std::map<std::string, ChannelEnds> channels;

  int dev_zero = -1;
  int dev_null = -1;
  Bytes heap_bytes = 0;   // brk growth issued so far (beyond startup heap)
  uint64_t scratch = 0;   // unique names for created files
};

// Declarative parameter metadata, consumed by the validator.
struct NumParam {
  const char* key;
  bool required = false;
  double min_value = 0.0;
  double max_value = 1e12;
  double def = 0.0;
};

struct StrParam {
  const char* key;
  bool required = false;
};

struct ActionDef {
  const char* op;
  std::vector<NumParam> nums;
  std::vector<StrParam> strs;
  bool takes_mix = false;       // accepts the "mix" object
  bool channel_ref = false;     // "channel" names a declared channel
  void (*run)(const ActionSpec& action, ActionCtx& ctx);
};

// The registry, in stable order.
const std::vector<ActionDef>& ActionRegistry();
const ActionDef* FindAction(std::string_view op);

// Names accepted inside a syscall_mix "mix" object.
const std::vector<std::string>& MixableSyscalls();

// Numeric parameter lookup with the registry default.
double NumOr(const ActionSpec& action, const char* key, double def);

}  // namespace lupine::loadspec

#endif  // SRC_LOADSPEC_ACTIONS_H_

// The declarative workload spec model (loadbench-style).
//
// A scenario is a JSON document describing load as data instead of C++:
// named worker groups (process- or thread-mode fiber counts with a
// per-iteration action list), IPC channel topologies between groups
// (pipe / AF_UNIX stream / datagram, full N x M pairing as in hackbench),
// phased intensity ramps on the virtual clock, and expected-metric
// assertions. The parser (parser.h) builds this model from text with
// line-precise diagnostics; the interpreter (interpreter.h) materializes
// it into guest processes running inside booted vmm::Vm instances.
//
// Top-level schema (all keys optional unless noted):
//   name       (required) scenario identifier
//   description            free-text comment
//   seed                   PRNG seed for every sampled decision (default 42)
//   vms        [{name, variant, app, memory_mb}]   default: one "main" VM,
//              variant "lupine-general", app "hello-world", 128 MiB
//   groups     (required) [{name (required), vm, workers, mode, iterations,
//              period_us, actions (required)}]
//   channels   [{name, kind: pipe|unix|dgram, from, to}]
//   phases     [{name, duration_ms, intensity}]
//   expect     [{metric: elapsed_ms|iterations|syscall_count|blocked,
//              group, syscall, min, max}]
//
// Action vocabulary lives in actions.h (the registry is the single source
// of truth for ops and their parameters — the validator and the
// interpreter both consult it).
#ifndef SRC_LOADSPEC_SPEC_H_
#define SRC_LOADSPEC_SPEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/util/units.h"

namespace lupine::loadspec {

// One action invocation in a group's per-iteration list. Parameters are
// kept as generic bags validated against the registry's ActionDef, so new
// ops never touch the parser.
struct ActionSpec {
  std::string op;
  std::map<std::string, double> nums;        // numeric parameters
  std::map<std::string, std::string> strs;   // string parameters (e.g. channel)
  // syscall_mix weights in spec order (order matters for determinism).
  std::vector<std::pair<std::string, double>> mix;
};

struct GroupSpec {
  std::string name;
  std::string vm;          // empty = the first (or implicit) VM
  int workers = 1;
  bool threads = false;    // "mode": "process" (default) | "thread"
  int iterations = 1;
  Nanos period = 0;        // "period_us": 0 = free-running, else paced
  std::vector<ActionSpec> actions;
};

struct VmEntrySpec {
  std::string name = "main";
  std::string variant = "lupine-general";  // see loadspec::VariantNames()
  std::string app = "hello-world";
  Bytes memory = 128 * kMiB;
};

enum class ChannelKind { kPipe, kUnixStream, kUnixDgram };

// A full bipartite wiring between two groups: every worker of `from` gets a
// bidirectional endpoint to every worker of `to` (N x M pairs, the
// hackbench shape). "pipe" uses two pipes per pair so ping-pong works.
struct ChannelSpec {
  std::string name;
  ChannelKind kind = ChannelKind::kPipe;
  std::string from;
  std::string to;
};

// Phases partition the run's virtual timeline from t=0; a paced group's
// iteration rate is intensity/period while the clock is inside the phase.
// After the last phase (and for spec without phases) intensity is 1.0.
struct PhaseSpec {
  std::string name;
  Nanos duration = 0;      // "duration_ms"
  double intensity = 1.0;
};

// An expected-metric assertion checked after the run. Supported metrics:
//   elapsed_ms     max virtual elapsed across VMs
//   iterations     completed iterations (per `group`, or total when empty)
//   syscall_count  guest invocations of `syscall` summed across VMs
//   blocked        threads still blocked at quiescence (deadlock tripwire)
struct ExpectSpec {
  std::string metric;
  std::string group;
  std::string syscall;
  bool has_min = false;
  double min = 0.0;
  bool has_max = false;
  double max = 0.0;
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  uint64_t seed = 42;
  std::vector<VmEntrySpec> vms;       // never empty after parsing
  std::vector<GroupSpec> groups;
  std::vector<ChannelSpec> channels;
  std::vector<PhaseSpec> phases;
  std::vector<ExpectSpec> expect;
};

// Known VM variant names, mapped by the interpreter onto the paper's
// lineup (unikernels::LinuxVariantSpec).
const std::vector<std::string>& VariantNames();

// Phase intensity at `since_start` on the virtual clock.
double IntensityAt(const std::vector<PhaseSpec>& phases, Nanos since_start);

}  // namespace lupine::loadspec

#endif  // SRC_LOADSPEC_SPEC_H_

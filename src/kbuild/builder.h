// ImageBuilder: configuration -> kernel image, with the additive size model.
//
// Size model: a fixed unconfigurable core (entry code, linker-script glue,
// built-in initramfs stub) plus the per-option contributions recorded in the
// option database, scaled by the compile mode (-Os shaves a few percent off
// generated code, Section 4.2) and by a link-time factor representing
// section garbage collection.
#ifndef SRC_KBUILD_BUILDER_H_
#define SRC_KBUILD_BUILDER_H_

#include "src/kbuild/image.h"
#include "src/util/result.h"

namespace lupine::kbuild {

struct BuildOptions {
  // Fails the build when the config does not validate against the database
  // (missing deps, conflicts). Always on in production; tests may disable.
  bool validate = true;
};

class ImageBuilder {
 public:
  // Builds against the synthetic Linux 4.0 tree by default; pass a custom
  // database (e.g. parsed from Kconfig text) for user-defined trees.
  explicit ImageBuilder(const kconfig::OptionDb* db = nullptr)
      : db_(db != nullptr ? db : &kconfig::OptionDb::Linux40()) {}

  Result<KernelImage> Build(const kconfig::Config& config,
                            const BuildOptions& options = {}) const;

  // Size attributable to each taxonomy class in `config` (ablation bench).
  Bytes SizeOfClass(const kconfig::Config& config, kconfig::OptionClass cls) const;

  // Fixed size of the unconfigurable kernel core.
  static Bytes CoreSize() { return kCoreSize; }

 private:
  const kconfig::OptionDb* db_;

  static constexpr Bytes kCoreSize = 1152 * kKiB;
  // -Os code-size factor; most of -tiny's win comes from the 9 dropped
  // options, matching the paper's ~6% total.
  static constexpr double kOsSizeFactor = 0.985;
  // Link-time section GC keeps a fraction of nominally-built code out of the
  // final image.
  static constexpr double kLinkFactor = 0.97;
};

}  // namespace lupine::kbuild

#endif  // SRC_KBUILD_BUILDER_H_

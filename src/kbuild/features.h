// KernelFeatures: the runtime-relevant digest of a kernel configuration.
//
// The guest kernel simulator never inspects the Config directly; the image
// builder derives this struct once, mirroring how configuration in real
// Linux becomes compiled-in (or absent) code.
#ifndef SRC_KBUILD_FEATURES_H_
#define SRC_KBUILD_FEATURES_H_

#include <cstddef>

#include "src/kbuild/syscalls.h"
#include "src/kconfig/config.h"

namespace lupine::kbuild {

struct KernelFeatures {
  SyscallSet syscalls;

  // Scheduling / processes.
  // Unikernel-style restriction: a single application process; fork/clone
  // fail (Section 5's crash-on-fork behaviour). Not reachable from any
  // Kconfig option — set by library-OS style builds.
  bool single_process = false;
  bool smp = false;
  bool numa = false;
  bool cgroups = false;
  bool namespaces = false;
  bool modules = false;
  bool audit = false;
  bool seccomp = false;
  bool selinux = false;

  // Transition pricing.
  bool kml = false;          // Application runs in ring 0.
  bool kpti = false;         // Kernel page-table isolation.
  bool mitigations = false;  // Retpoline-style hardening.
  bool paravirt = false;     // Paravirtual ops (faster boot; conflicts KML).

  // IPC / sync.
  bool futex = false;
  bool sysvipc = false;
  bool posix_mqueue = false;

  // Network families.
  bool net_core = false;
  bool inet = false;
  bool ipv6 = false;
  bool unix_sockets = false;
  bool packet_sockets = false;

  // Filesystems & devices.
  bool proc_fs = false;
  bool proc_sysctl = false;
  bool sysfs = false;
  bool tmpfs = false;
  bool hugetlbfs = false;
  bool ext2 = false;
  bool devtmpfs = false;
  bool blk_dev_loop = false;
  bool tty = false;

  // Misc base features.
  bool printk = false;
  bool kallsyms = false;
  bool high_res_timers = false;
  // PANIC_TIMEOUT seconds: 0 = halt on panic, >0 = reboot after that many
  // seconds, <0 = reboot immediately (supervised-unikernel posture).
  int panic_timeout = 0;
  bool multiuser = false;
  bool pci = false;
  bool acpi = false;

  kconfig::CompileMode compile_mode = kconfig::CompileMode::kO2;

  // Boot-cost drivers: how many enabled options contribute initialization
  // work, by coarse category (see guestos::Kernel::Boot).
  size_t enabled_options = 0;
  size_t driver_options = 0;
  size_t net_options = 0;
  size_t fs_options = 0;
  size_t debug_options = 0;
  size_t crypto_options = 0;

  bool HasSyscall(Sys sys) const { return syscalls.test(static_cast<int>(sys)); }
};

// Derives features from a config against `db` (defaults to the Linux 4.0
// tree).
KernelFeatures DeriveFeatures(const kconfig::Config& config,
                              const kconfig::OptionDb* db = nullptr);

}  // namespace lupine::kbuild

#endif  // SRC_KBUILD_FEATURES_H_

#include "src/kbuild/builder.h"

#include "src/kconfig/resolver.h"

namespace lupine::kbuild {

Result<KernelImage> ImageBuilder::Build(const kconfig::Config& config,
                                        const BuildOptions& options) const {
  const auto& db = *db_;
  if (options.validate) {
    kconfig::Resolver resolver(db);
    if (Status s = resolver.Validate(config); !s.ok()) {
      return Status(s.err(), "kernel build failed: " + s.message());
    }
  }

  KernelImage image;
  image.name = config.name();
  image.config = config;
  image.features = DeriveFeatures(config, db_);

  Bytes option_bytes = 0;
  // Id-indexed hot loop: no option-name strings are materialized or hashed.
  for (kconfig::OptionId id : config.EnabledIds()) {
    const kconfig::OptionInfo* info = db.FindById(id);
    if (info == nullptr) {
      continue;
    }
    if (config.ValueOfId(id) == "m") {
      // Modules live in the rootfs (and load at runtime), not in the image —
      // unikernel-style builds compile everything in instead (Section 3.1.2).
      image.modules_size += info->builtin_size;
      ++image.module_count;
      continue;
    }
    option_bytes += info->builtin_size;
  }

  double size = static_cast<double>(kCoreSize + option_bytes) * kLinkFactor;
  if (config.compile_mode() == kconfig::CompileMode::kOs) {
    size *= kOsSizeFactor;
  }
  image.size = static_cast<Bytes>(size);
  // The resident core is the image plus unpacked data structures; page
  // tables, slabs and per-CPU areas are accounted dynamically by the guest.
  image.text_and_data = static_cast<Bytes>(size * 1.10);
  return image;
}

Bytes ImageBuilder::SizeOfClass(const kconfig::Config& config, kconfig::OptionClass cls) const {
  const auto& db = *db_;
  Bytes total = 0;
  for (kconfig::OptionId id : config.EnabledIds()) {
    const kconfig::OptionInfo* info = db.FindById(id);
    if (info != nullptr && info->option_class == cls) {
      total += info->builtin_size;
    }
  }
  return total;
}

}  // namespace lupine::kbuild

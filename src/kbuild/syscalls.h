// System call numbering and the Table 1 option -> syscall mapping.
//
// The guest kernel's dispatch layer (src/guestos/syscalls.*) consults the
// syscall set generated here: a syscall whose gating option was configured
// out returns ENOSYS, exactly the failure mode that drives the paper's
// manual configuration derivation (Section 4.1) and our automated
// config search (src/core/config_search.*).
#ifndef SRC_KBUILD_SYSCALLS_H_
#define SRC_KBUILD_SYSCALLS_H_

#include <bitset>
#include <string>
#include <vector>

#include "src/kconfig/config.h"

namespace lupine::kbuild {

// The syscalls the simulated guest implements. Always-available calls are
// listed first; optionally-gated calls follow grouped by gating option.
enum class Sys : int {
  // Always compiled in.
  kRead = 0,
  kWrite,
  kOpen,
  kClose,
  kStat,
  kFstat,
  kLseek,
  kMmap,
  kMunmap,
  kBrk,
  kIoctl,
  kPipe,
  kDup,
  kNanosleep,
  kGetpid,
  kGetppid,
  kFork,
  kVfork,
  kClone,
  kExecve,
  kExit,
  kWait4,
  kKill,
  kUname,
  kGetcwd,
  kChdir,
  kMkdir,
  kRmdir,
  kUnlink,
  kReadlink,
  kGettimeofday,
  kClockGettime,
  kGetrlimit,
  kSetrlimit,
  kGetuid,
  kSetuid,
  kSocket,
  kBind,
  kListen,
  kAccept,
  kConnect,
  kSendto,
  kRecvfrom,
  kShutdown,
  kSetsockopt,
  kGetsockopt,
  kPoll,
  kSelect,
  kMount,
  kUmount,
  kMprotect,
  kMsync,
  kSchedYield,
  kSigaction,
  kSigprocmask,
  kSethostname,
  // CONFIG_ADVISE_SYSCALLS
  kMadvise,
  kFadvise64,
  // CONFIG_AIO
  kIoSetup,
  kIoDestroy,
  kIoSubmit,
  kIoCancel,
  kIoGetevents,
  // CONFIG_BPF_SYSCALL
  kBpf,
  // CONFIG_EPOLL
  kEpollCreate,
  kEpollCreate1,
  kEpollCtl,
  kEpollWait,
  kEpollPwait,
  // CONFIG_EVENTFD
  kEventfd,
  kEventfd2,
  // CONFIG_FANOTIFY
  kFanotifyInit,
  kFanotifyMark,
  // CONFIG_FHANDLE
  kOpenByHandleAt,
  kNameToHandleAt,
  // CONFIG_FILE_LOCKING
  kFlock,
  // CONFIG_FUTEX
  kFutex,
  kSetRobustList,
  kGetRobustList,
  // CONFIG_INOTIFY_USER
  kInotifyInit,
  kInotifyAddWatch,
  kInotifyRmWatch,
  // CONFIG_SIGNALFD
  kSignalfd,
  kSignalfd4,
  // CONFIG_TIMERFD
  kTimerfdCreate,
  kTimerfdGettime,
  kTimerfdSettime,
  // CONFIG_SYSVIPC
  kShmget,
  kShmat,
  kShmdt,
  kSemget,
  kSemop,
  kMsgget,
  kMsgsnd,
  kMsgrcv,
  // CONFIG_POSIX_MQUEUE
  kMqOpen,
  kMqUnlink,
  kMqTimedsend,
  kMqTimedreceive,

  kNumSyscalls,
};

inline constexpr int kNumSyscalls = static_cast<int>(Sys::kNumSyscalls);

const char* SyscallName(Sys sys);

using SyscallSet = std::bitset<kNumSyscalls>;

// One row of Table 1: a config option and the syscalls it enables.
struct SyscallGate {
  const char* option;
  std::vector<Sys> syscalls;
};

// All rows of Table 1 plus the IPC gates discussed in Section 4.1
// (SYSVIPC for postgres, POSIX_MQUEUE).
const std::vector<SyscallGate>& SyscallGates();

// The gating option for `sys`, or nullptr if it is always available.
const char* GatingOption(Sys sys);

// Computes the syscall set a kernel built from `config` provides.
SyscallSet EnabledSyscalls(const kconfig::Config& config);

}  // namespace lupine::kbuild

#endif  // SRC_KBUILD_SYSCALLS_H_

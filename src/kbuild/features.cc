#include "src/kbuild/features.h"

#include <cstdlib>

#include "src/kconfig/option_names.h"

namespace lupine::kbuild {
namespace {

// Every option name feature derivation consults, interned exactly once per
// process. DeriveFeatures runs once per kernel build and (via BootPlan
// precomputation) its results are reused across every boot of an image, so
// the per-call cost here is ~35 bitset probes instead of ~35 hash lookups
// through the global interner's shared_mutex.
struct FeatureIds {
  kconfig::OptionId smp, numa, cgroups, namespaces, modules, audit, seccomp, selinux;
  kconfig::OptionId kml, kpti, mitigations, paravirt;
  kconfig::OptionId futex, sysvipc, posix_mqueue;
  kconfig::OptionId net, inet, ipv6, unix_sockets, packet;
  kconfig::OptionId proc_fs, proc_sysctl, sysfs, tmpfs, hugetlbfs, ext2, devtmpfs;
  kconfig::OptionId blk_dev_loop, tty;
  kconfig::OptionId printk, kallsyms, high_res_timers, panic_timeout;
  kconfig::OptionId multiuser, pci, acpi;
};

const FeatureIds& Ids() {
  namespace n = kconfig::names;
  auto& interner = kconfig::OptionInterner::Global();
  static const FeatureIds ids = {
      interner.Intern(n::kSmp),        interner.Intern(n::kNuma),
      interner.Intern(n::kCgroups),    interner.Intern(n::kNamespaces),
      interner.Intern(n::kModules),    interner.Intern(n::kAudit),
      interner.Intern(n::kSeccomp),    interner.Intern(n::kSelinux),
      interner.Intern(n::kKml),        interner.Intern(n::kKpti),
      interner.Intern(n::kMitigations), interner.Intern(n::kParavirt),
      interner.Intern(n::kFutex),      interner.Intern(n::kSysvipc),
      interner.Intern(n::kPosixMqueue),
      interner.Intern(n::kNet),        interner.Intern(n::kInet),
      interner.Intern(n::kIpv6),       interner.Intern(n::kUnix),
      interner.Intern(n::kPacket),
      interner.Intern(n::kProcFs),     interner.Intern(n::kProcSysctl),
      interner.Intern(n::kSysfs),      interner.Intern(n::kTmpfs),
      interner.Intern(n::kHugetlbfs),  interner.Intern(n::kExt2Fs),
      interner.Intern(n::kDevtmpfs),
      interner.Intern(n::kBlkDevLoop), interner.Intern(n::kTty),
      interner.Intern(n::kPrintk),     interner.Intern(n::kKallsyms),
      interner.Intern(n::kHighResTimers), interner.Intern(n::kPanicTimeout),
      interner.Intern(n::kMultiuser),  interner.Intern(n::kPci),
      interner.Intern(n::kAcpi),
  };
  return ids;
}

}  // namespace

KernelFeatures DeriveFeatures(const kconfig::Config& config, const kconfig::OptionDb* db_in) {
  const auto& db = db_in != nullptr ? *db_in : kconfig::OptionDb::Linux40();
  const FeatureIds& id = Ids();

  KernelFeatures f;
  f.syscalls = EnabledSyscalls(config);

  f.smp = config.IsEnabledId(id.smp);
  f.numa = config.IsEnabledId(id.numa);
  f.cgroups = config.IsEnabledId(id.cgroups);
  f.namespaces = config.IsEnabledId(id.namespaces);
  f.modules = config.IsEnabledId(id.modules);
  f.audit = config.IsEnabledId(id.audit);
  f.seccomp = config.IsEnabledId(id.seccomp);
  f.selinux = config.IsEnabledId(id.selinux);

  f.kml = config.IsEnabledId(id.kml);
  f.kpti = config.IsEnabledId(id.kpti);
  f.mitigations = config.IsEnabledId(id.mitigations);
  f.paravirt = config.IsEnabledId(id.paravirt);

  f.futex = config.IsEnabledId(id.futex);
  f.sysvipc = config.IsEnabledId(id.sysvipc);
  f.posix_mqueue = config.IsEnabledId(id.posix_mqueue);

  f.net_core = config.IsEnabledId(id.net);
  f.inet = config.IsEnabledId(id.inet);
  f.ipv6 = config.IsEnabledId(id.ipv6);
  f.unix_sockets = config.IsEnabledId(id.unix_sockets);
  f.packet_sockets = config.IsEnabledId(id.packet);

  f.proc_fs = config.IsEnabledId(id.proc_fs);
  f.proc_sysctl = config.IsEnabledId(id.proc_sysctl);
  f.sysfs = config.IsEnabledId(id.sysfs);
  f.tmpfs = config.IsEnabledId(id.tmpfs);
  f.hugetlbfs = config.IsEnabledId(id.hugetlbfs);
  f.ext2 = config.IsEnabledId(id.ext2);
  f.devtmpfs = config.IsEnabledId(id.devtmpfs);
  f.blk_dev_loop = config.IsEnabledId(id.blk_dev_loop);
  f.tty = config.IsEnabledId(id.tty);

  f.printk = config.IsEnabledId(id.printk);
  f.kallsyms = config.IsEnabledId(id.kallsyms);
  f.high_res_timers = config.IsEnabledId(id.high_res_timers);
  if (config.IsEnabledId(id.panic_timeout)) {
    // Valued option; a bare "y" (no explicit value) means the stock default 0.
    // Copied to a std::string before parsing — ValueOfId's view dies on the
    // next side-table mutation (see Config::GetValue's lifetime note).
    const std::string value(config.ValueOfId(id.panic_timeout));
    char* end = nullptr;
    long timeout = std::strtol(value.c_str(), &end, 10);
    f.panic_timeout = (end != value.c_str()) ? static_cast<int>(timeout) : 0;
  }
  f.multiuser = config.IsEnabledId(id.multiuser);
  f.pci = config.IsEnabledId(id.pci);
  f.acpi = config.IsEnabledId(id.acpi);

  f.compile_mode = config.compile_mode();

  for (kconfig::OptionId option : config.EnabledIds()) {
    const kconfig::OptionInfo* info = db.FindById(option);
    if (info == nullptr) {
      continue;
    }
    ++f.enabled_options;
    switch (info->dir) {
      case kconfig::SourceDir::kDrivers:
        ++f.driver_options;
        break;
      case kconfig::SourceDir::kNet:
        ++f.net_options;
        break;
      case kconfig::SourceDir::kFs:
        ++f.fs_options;
        break;
      case kconfig::SourceDir::kCrypto:
        ++f.crypto_options;
        break;
      default:
        break;
    }
    if (info->option_class == kconfig::OptionClass::kAppDebug) {
      ++f.debug_options;
    }
  }
  return f;
}

}  // namespace lupine::kbuild

#include "src/kbuild/features.h"

#include <cstdlib>

#include "src/kconfig/option_names.h"

namespace lupine::kbuild {

KernelFeatures DeriveFeatures(const kconfig::Config& config, const kconfig::OptionDb* db_in) {
  namespace n = kconfig::names;
  const auto& db = db_in != nullptr ? *db_in : kconfig::OptionDb::Linux40();

  KernelFeatures f;
  f.syscalls = EnabledSyscalls(config);

  f.smp = config.IsEnabled(n::kSmp);
  f.numa = config.IsEnabled(n::kNuma);
  f.cgroups = config.IsEnabled(n::kCgroups);
  f.namespaces = config.IsEnabled(n::kNamespaces);
  f.modules = config.IsEnabled(n::kModules);
  f.audit = config.IsEnabled(n::kAudit);
  f.seccomp = config.IsEnabled(n::kSeccomp);
  f.selinux = config.IsEnabled(n::kSelinux);

  f.kml = config.IsEnabled(n::kKml);
  f.kpti = config.IsEnabled(n::kKpti);
  f.mitigations = config.IsEnabled(n::kMitigations);
  f.paravirt = config.IsEnabled(n::kParavirt);

  f.futex = config.IsEnabled(n::kFutex);
  f.sysvipc = config.IsEnabled(n::kSysvipc);
  f.posix_mqueue = config.IsEnabled(n::kPosixMqueue);

  f.net_core = config.IsEnabled(n::kNet);
  f.inet = config.IsEnabled(n::kInet);
  f.ipv6 = config.IsEnabled(n::kIpv6);
  f.unix_sockets = config.IsEnabled(n::kUnix);
  f.packet_sockets = config.IsEnabled(n::kPacket);

  f.proc_fs = config.IsEnabled(n::kProcFs);
  f.proc_sysctl = config.IsEnabled(n::kProcSysctl);
  f.sysfs = config.IsEnabled(n::kSysfs);
  f.tmpfs = config.IsEnabled(n::kTmpfs);
  f.hugetlbfs = config.IsEnabled(n::kHugetlbfs);
  f.ext2 = config.IsEnabled(n::kExt2Fs);
  f.devtmpfs = config.IsEnabled(n::kDevtmpfs);
  f.blk_dev_loop = config.IsEnabled(n::kBlkDevLoop);
  f.tty = config.IsEnabled(n::kTty);

  f.printk = config.IsEnabled(n::kPrintk);
  f.kallsyms = config.IsEnabled(n::kKallsyms);
  f.high_res_timers = config.IsEnabled(n::kHighResTimers);
  if (config.IsEnabled(n::kPanicTimeout)) {
    // Valued option; a bare "y" (no explicit value) means the stock default 0.
    const std::string value(config.GetValue(n::kPanicTimeout));
    char* end = nullptr;
    long timeout = std::strtol(value.c_str(), &end, 10);
    f.panic_timeout = (end != value.c_str()) ? static_cast<int>(timeout) : 0;
  }
  f.multiuser = config.IsEnabled(n::kMultiuser);
  f.pci = config.IsEnabled(n::kPci);
  f.acpi = config.IsEnabled(n::kAcpi);

  f.compile_mode = config.compile_mode();

  for (kconfig::OptionId id : config.EnabledIds()) {
    const kconfig::OptionInfo* info = db.FindById(id);
    if (info == nullptr) {
      continue;
    }
    ++f.enabled_options;
    switch (info->dir) {
      case kconfig::SourceDir::kDrivers:
        ++f.driver_options;
        break;
      case kconfig::SourceDir::kNet:
        ++f.net_options;
        break;
      case kconfig::SourceDir::kFs:
        ++f.fs_options;
        break;
      case kconfig::SourceDir::kCrypto:
        ++f.crypto_options;
        break;
      default:
        break;
    }
    if (info->option_class == kconfig::OptionClass::kAppDebug) {
      ++f.debug_options;
    }
  }
  return f;
}

}  // namespace lupine::kbuild

#include "src/kbuild/syscalls.h"

#include "src/kconfig/option_names.h"

namespace lupine::kbuild {
namespace {

namespace n = kconfig::names;

}  // namespace

const char* SyscallName(Sys sys) {
  switch (sys) {
    case Sys::kRead: return "read";
    case Sys::kWrite: return "write";
    case Sys::kOpen: return "open";
    case Sys::kClose: return "close";
    case Sys::kStat: return "stat";
    case Sys::kFstat: return "fstat";
    case Sys::kLseek: return "lseek";
    case Sys::kMmap: return "mmap";
    case Sys::kMunmap: return "munmap";
    case Sys::kBrk: return "brk";
    case Sys::kIoctl: return "ioctl";
    case Sys::kPipe: return "pipe";
    case Sys::kDup: return "dup";
    case Sys::kNanosleep: return "nanosleep";
    case Sys::kGetpid: return "getpid";
    case Sys::kGetppid: return "getppid";
    case Sys::kFork: return "fork";
    case Sys::kVfork: return "vfork";
    case Sys::kClone: return "clone";
    case Sys::kExecve: return "execve";
    case Sys::kExit: return "exit";
    case Sys::kWait4: return "wait4";
    case Sys::kKill: return "kill";
    case Sys::kUname: return "uname";
    case Sys::kGetcwd: return "getcwd";
    case Sys::kChdir: return "chdir";
    case Sys::kMkdir: return "mkdir";
    case Sys::kRmdir: return "rmdir";
    case Sys::kUnlink: return "unlink";
    case Sys::kReadlink: return "readlink";
    case Sys::kGettimeofday: return "gettimeofday";
    case Sys::kClockGettime: return "clock_gettime";
    case Sys::kGetrlimit: return "getrlimit";
    case Sys::kSetrlimit: return "setrlimit";
    case Sys::kGetuid: return "getuid";
    case Sys::kSetuid: return "setuid";
    case Sys::kSocket: return "socket";
    case Sys::kBind: return "bind";
    case Sys::kListen: return "listen";
    case Sys::kAccept: return "accept";
    case Sys::kConnect: return "connect";
    case Sys::kSendto: return "sendto";
    case Sys::kRecvfrom: return "recvfrom";
    case Sys::kShutdown: return "shutdown";
    case Sys::kSetsockopt: return "setsockopt";
    case Sys::kGetsockopt: return "getsockopt";
    case Sys::kPoll: return "poll";
    case Sys::kSelect: return "select";
    case Sys::kMount: return "mount";
    case Sys::kUmount: return "umount";
    case Sys::kMprotect: return "mprotect";
    case Sys::kMsync: return "msync";
    case Sys::kSchedYield: return "sched_yield";
    case Sys::kSigaction: return "rt_sigaction";
    case Sys::kSigprocmask: return "rt_sigprocmask";
    case Sys::kSethostname: return "sethostname";
    case Sys::kMadvise: return "madvise";
    case Sys::kFadvise64: return "fadvise64";
    case Sys::kIoSetup: return "io_setup";
    case Sys::kIoDestroy: return "io_destroy";
    case Sys::kIoSubmit: return "io_submit";
    case Sys::kIoCancel: return "io_cancel";
    case Sys::kIoGetevents: return "io_getevents";
    case Sys::kBpf: return "bpf";
    case Sys::kEpollCreate: return "epoll_create";
    case Sys::kEpollCreate1: return "epoll_create1";
    case Sys::kEpollCtl: return "epoll_ctl";
    case Sys::kEpollWait: return "epoll_wait";
    case Sys::kEpollPwait: return "epoll_pwait";
    case Sys::kEventfd: return "eventfd";
    case Sys::kEventfd2: return "eventfd2";
    case Sys::kFanotifyInit: return "fanotify_init";
    case Sys::kFanotifyMark: return "fanotify_mark";
    case Sys::kOpenByHandleAt: return "open_by_handle_at";
    case Sys::kNameToHandleAt: return "name_to_handle_at";
    case Sys::kFlock: return "flock";
    case Sys::kFutex: return "futex";
    case Sys::kSetRobustList: return "set_robust_list";
    case Sys::kGetRobustList: return "get_robust_list";
    case Sys::kInotifyInit: return "inotify_init";
    case Sys::kInotifyAddWatch: return "inotify_add_watch";
    case Sys::kInotifyRmWatch: return "inotify_rm_watch";
    case Sys::kSignalfd: return "signalfd";
    case Sys::kSignalfd4: return "signalfd4";
    case Sys::kTimerfdCreate: return "timerfd_create";
    case Sys::kTimerfdGettime: return "timerfd_gettime";
    case Sys::kTimerfdSettime: return "timerfd_settime";
    case Sys::kShmget: return "shmget";
    case Sys::kShmat: return "shmat";
    case Sys::kShmdt: return "shmdt";
    case Sys::kSemget: return "semget";
    case Sys::kSemop: return "semop";
    case Sys::kMsgget: return "msgget";
    case Sys::kMsgsnd: return "msgsnd";
    case Sys::kMsgrcv: return "msgrcv";
    case Sys::kMqOpen: return "mq_open";
    case Sys::kMqUnlink: return "mq_unlink";
    case Sys::kMqTimedsend: return "mq_timedsend";
    case Sys::kMqTimedreceive: return "mq_timedreceive";
    case Sys::kNumSyscalls: break;
  }
  return "?";
}

const std::vector<SyscallGate>& SyscallGates() {
  static const std::vector<SyscallGate> gates = {
      {n::kAdviseSyscalls, {Sys::kMadvise, Sys::kFadvise64}},
      {n::kAio,
       {Sys::kIoSetup, Sys::kIoDestroy, Sys::kIoSubmit, Sys::kIoCancel, Sys::kIoGetevents}},
      {n::kBpfSyscall, {Sys::kBpf}},
      {n::kEpoll,
       {Sys::kEpollCreate, Sys::kEpollCreate1, Sys::kEpollCtl, Sys::kEpollWait,
        Sys::kEpollPwait}},
      {n::kEventfd, {Sys::kEventfd, Sys::kEventfd2}},
      {n::kFanotify, {Sys::kFanotifyInit, Sys::kFanotifyMark}},
      {n::kFhandle, {Sys::kOpenByHandleAt, Sys::kNameToHandleAt}},
      {n::kFileLocking, {Sys::kFlock}},
      {n::kFutex, {Sys::kFutex, Sys::kSetRobustList, Sys::kGetRobustList}},
      {n::kInotifyUser, {Sys::kInotifyInit, Sys::kInotifyAddWatch, Sys::kInotifyRmWatch}},
      {n::kSignalfd, {Sys::kSignalfd, Sys::kSignalfd4}},
      {n::kTimerfd, {Sys::kTimerfdCreate, Sys::kTimerfdGettime, Sys::kTimerfdSettime}},
      {n::kSysvipc,
       {Sys::kShmget, Sys::kShmat, Sys::kShmdt, Sys::kSemget, Sys::kSemop, Sys::kMsgget,
        Sys::kMsgsnd, Sys::kMsgrcv}},
      {n::kPosixMqueue,
       {Sys::kMqOpen, Sys::kMqUnlink, Sys::kMqTimedsend, Sys::kMqTimedreceive}},
  };
  return gates;
}

const char* GatingOption(Sys sys) {
  for (const auto& gate : SyscallGates()) {
    for (Sys gated : gate.syscalls) {
      if (gated == sys) {
        return gate.option;
      }
    }
  }
  return nullptr;
}

SyscallSet EnabledSyscalls(const kconfig::Config& config) {
  // Gate options interned once per process; the per-call work is one bitset
  // probe per gate instead of a hash lookup through the interner.
  static const std::vector<kconfig::OptionId> gate_ids = [] {
    std::vector<kconfig::OptionId> ids;
    ids.reserve(SyscallGates().size());
    for (const auto& gate : SyscallGates()) {
      ids.push_back(kconfig::OptionInterner::Global().Intern(gate.option));
    }
    return ids;
  }();

  SyscallSet set;
  set.set();  // Start with everything...
  const auto& gates = SyscallGates();
  for (size_t i = 0; i < gates.size(); ++i) {
    if (!config.IsEnabledId(gate_ids[i])) {
      for (Sys sys : gates[i].syscalls) {
        set.reset(static_cast<int>(sys));  // ...and knock out unconfigured ones.
      }
    }
  }
  return set;
}

}  // namespace lupine::kbuild

// KernelImage: the artifact produced by building a configured kernel tree.
#ifndef SRC_KBUILD_IMAGE_H_
#define SRC_KBUILD_IMAGE_H_

#include <string>

#include "src/kbuild/features.h"
#include "src/kconfig/config.h"
#include "src/util/units.h"

namespace lupine::kbuild {

struct KernelImage {
  std::string name;           // e.g. "lupine-redis" or "microvm".
  kconfig::Config config;     // The configuration it was built from.
  KernelFeatures features;    // Runtime digest.
  Bytes size = 0;             // Compressed on-disk image size (Fig. 6).
  Bytes text_and_data = 0;    // Resident core at runtime (Fig. 8 floor).
  // Loadable modules (=m options): shipped in the rootfs, not the image.
  Bytes modules_size = 0;
  size_t module_count = 0;
};

}  // namespace lupine::kbuild

#endif  // SRC_KBUILD_IMAGE_H_

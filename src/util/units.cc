#include "src/util/units.h"

#include <cinttypes>
#include <cstdio>

namespace lupine {

std::string FormatSize(Bytes bytes) {
  char buf[64];
  if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", ToMiB(bytes));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", ToKiB(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  }
  return buf;
}

std::string FormatDuration(Nanos ns) {
  char buf[64];
  if (ns >= kNanosPerSecond) {
    std::snprintf(buf, sizeof(buf), "%.2f s", ToSeconds(ns));
  } else if (ns >= kNanosPerMilli) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ToMillis(ns));
  } else if (ns >= kNanosPerMicro) {
    std::snprintf(buf, sizeof(buf), "%.3f us", ToMicros(ns));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 " ns", ns);
  }
  return buf;
}

}  // namespace lupine

// Minimal JSON: a shared escape helper and a small document parser.
//
// Every JSON emitter in the tree (telemetry export, the event journal, the
// Chrome trace renderer, bench artifact writers) escapes strings through
// JsonEscape here — one definition, not per-file copies. The parser is the
// read side: tools/benchdiff loads BENCH_*.json artifacts with it and the
// tests use it to validate that exported documents actually parse.
//
// Scope: the full JSON grammar minus extremes — numbers parse via strtod
// (no bignum), \u escapes decode to UTF-8 (surrogate pairs supported),
// objects preserve insertion order and duplicate keys keep the last value
// on lookup. That covers every document this repo produces.
//
// Spec-sized inputs (src/loadspec scenario files) get two extra guards via
// JsonParseOptions — a configurable nesting depth limit and duplicate-key
// rejection — and every parsed value carries its byte offset in the input
// so consumers can report line-precise semantic errors (OffsetToLineCol).
#ifndef SRC_UTIL_JSON_H_
#define SRC_UTIL_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/result.h"

namespace lupine {

// Escapes `s` for embedding inside a JSON string literal (quotes not
// included): backslash, double quote, and every control character below
// 0x20 (\n, \t, \r named; the rest as \u00XX).
std::string JsonEscape(std::string_view s);

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion order preserved (exports are order-deterministic, so tests
  // can assert on it). Find() returns the last entry for a duplicate key.
  std::vector<std::pair<std::string, JsonValue>> object;

  // Byte offset of this value's first character in the parsed input, and —
  // for object members — of the member's key. Feed them to OffsetToLineCol
  // for "7:13: unknown key" style diagnostics.
  size_t offset = 0;
  size_t key_offset = 0;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

struct JsonParseOptions {
  // Maximum array/object nesting. The default matches the historical limit;
  // spec parsers pass something far smaller.
  int max_depth = 256;
  // Reject objects that bind the same key twice instead of keeping the last
  // value. Scenario specs enable this: a silently-shadowed "workers" key is
  // a user error, not a convenience.
  bool reject_duplicate_keys = false;
};

// Structured parse failure for callers that render their own diagnostics
// (the Status message embeds the same information as text).
struct JsonParseError {
  std::string what;
  size_t offset = 0;
};

// Parses a complete JSON document (leading/trailing whitespace allowed;
// trailing garbage is an error). Errors carry a byte offset; pass `error`
// to also receive it in structured form.
Result<JsonValue> ParseJson(std::string_view text);
Result<JsonValue> ParseJson(std::string_view text, const JsonParseOptions& options,
                            JsonParseError* error = nullptr);

// 1-based line/column for a byte offset into `text` (tabs count one column).
struct LineCol {
  int line = 1;
  int col = 1;
};
LineCol OffsetToLineCol(std::string_view text, size_t offset);

}  // namespace lupine

#endif  // SRC_UTIL_JSON_H_

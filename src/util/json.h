// Minimal JSON: a shared escape helper and a small document parser.
//
// Every JSON emitter in the tree (telemetry export, the event journal, the
// Chrome trace renderer, bench artifact writers) escapes strings through
// JsonEscape here — one definition, not per-file copies. The parser is the
// read side: tools/benchdiff loads BENCH_*.json artifacts with it and the
// tests use it to validate that exported documents actually parse.
//
// Scope: the full JSON grammar minus extremes — numbers parse via strtod
// (no bignum), \u escapes decode to UTF-8 (surrogate pairs supported),
// objects preserve insertion order and duplicate keys keep the last value
// on lookup. That covers every document this repo produces.
#ifndef SRC_UTIL_JSON_H_
#define SRC_UTIL_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/result.h"

namespace lupine {

// Escapes `s` for embedding inside a JSON string literal (quotes not
// included): backslash, double quote, and every control character below
// 0x20 (\n, \t, \r named; the rest as \u00XX).
std::string JsonEscape(std::string_view s);

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion order preserved (exports are order-deterministic, so tests
  // can assert on it). Find() returns the last entry for a duplicate key.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

// Parses a complete JSON document (leading/trailing whitespace allowed;
// trailing garbage is an error). Errors carry a byte offset.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace lupine

#endif  // SRC_UTIL_JSON_H_

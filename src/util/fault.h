// Deterministic fault injection.
//
// A Lupine unikernel runs its application in ring 0: an application fault is
// a kernel fault, and the guest cannot recover itself — it relies on the
// monitor to notice and restart it (Section 2.2's Firecracker posture). To
// exercise that recovery machinery the simulator needs failures on demand.
// A FaultPlan names injection sites in the guest (memory allocation, rootfs
// I/O, the net stack, boot phases, syscall entry) and when they fire: on the
// Nth evaluation, periodically, or with a seeded Bernoulli probability.
// Everything draws from util/prng on the virtual clock, so a plan replays
// byte-identically run after run.
//
// The zero-fault path is a null object: a default-constructed FaultInjector
// is permanently disarmed and Check() is a single predicted branch, so
// threading an injector through the kernel costs nothing when unused.
#ifndef SRC_UTIL_FAULT_H_
#define SRC_UTIL_FAULT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/prng.h"
#include "src/util/result.h"
#include "src/util/units.h"

namespace lupine {

// Named injection sites, each checked at exactly one place in the guest.
enum class FaultSite {
  kMemAlloc,          // MemoryManager::AllocatePages -> ENOMEM.
  kVfsIo,             // File read through the syscall layer -> EIO.
  kRootfsCorrupt,     // Rootfs blob corrupted before mount -> boot fails.
  kBootDecompress,    // Kernel image decompression -> boot fails.
  kBootInitcall,      // An initcall returns an error -> boot fails.
  kNetRecvReset,      // Stream recv -> ECONNRESET.
  kNetSendDrop,       // Packet dropped on send -> retransmission delay.
  kSyscallTransient,  // Syscall entry -> EINTR/EAGAIN, restarted (extra cost).
  kAppFault,          // Wild access in the application -> ring-0 oops/panic.
  kBootStall,         // Decompressor wedges: boot completes but only after a
                      // huge virtual stall — what a stage deadline exists for.
  kSnapshotRestore,   // Snapshot memory file corrupt / ABI mismatch: the
                      // restore fails and the cache entry should be poisoned.
};

inline constexpr size_t kFaultSiteCount = 11;

// Virtual time a kBootStall fault wedges the decompressor for. Orders of
// magnitude beyond any real boot phase, so any sane stage deadline fires
// long before the stall resolves on its own.
inline constexpr Nanos kBootStallPenalty = Seconds(60);

const char* FaultSiteName(FaultSite site);
// Inverse of FaultSiteName; kInval for unknown names.
Result<FaultSite> FaultSiteFromName(const std::string& name);

// When a site fires. Deterministic triggers (`trigger_on`/`period`) and the
// probabilistic trigger compose: the rule fires if either says so, subject
// to `max_fires`.
struct FaultRule {
  FaultSite site = FaultSite::kMemAlloc;
  // Fire on the Nth evaluation of the site (1-based). 0 disables.
  uint64_t trigger_on = 0;
  // With trigger_on: also fire every `period` evaluations afterwards.
  uint64_t period = 0;
  // Bernoulli probability per evaluation (0 disables).
  double probability = 0.0;
  // Stop firing after this many hits; -1 = unlimited.
  int max_fires = -1;
  // Restrict the rule to one application: FaultPlan::ForApp drops rules
  // whose app is set and differs (the fleet driver forks per-task plans, so
  // one rule can skew a single app's boots). Empty = every app.
  std::string app;
  // kBootStall only: custom virtual stall instead of kBootStallPenalty.
  // 0 = the default penalty. Lets a plan dial in, say, a 10x boot cost for
  // one app without wedging it for a full minute.
  Nanos stall = 0;
};

// A named, seeded collection of rules — the experiment's fault schedule.
struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;

  FaultPlan& Add(FaultRule rule) {
    rules.push_back(rule);
    return *this;
  }
  // Convenience constructors for the two common shapes.
  FaultPlan& FireOnce(FaultSite site, uint64_t nth) {
    return Add({.site = site, .trigger_on = nth, .max_fires = 1});
  }
  FaultPlan& FireAlways(FaultSite site, int max_fires = -1) {
    return Add({.site = site, .trigger_on = 1, .period = 1, .max_fires = max_fires});
  }
  // The plan as seen by one application: rules filtered to those whose
  // `app` is empty or matches. Deterministic per app — forked per-task
  // plans stay byte-identical however the fleet is scheduled.
  FaultPlan ForApp(const std::string& app) const;
};

// JSON round-trip so chaos schedules live as data files next to the benches
// (bench/plans/*.json) instead of compiled C++. The document shape:
//
//   {"seed": 42, "rules": [{"site": "boot-initcall", "trigger_on": 1,
//                           "period": 1, "probability": 0.0, "max_fires": 2}]}
//
// Serialization emits every numeric rule field (plus "app"/"stall_ns" when
// set); the parser defaults omitted fields to the FaultRule defaults and
// rejects unknown keys, unknown sites and malformed documents.
// ToJson(FaultPlanFromJson(x)) is a fixed point.
std::string ToJson(const FaultPlan& plan);
Result<FaultPlan> FaultPlanFromJson(const std::string& json);

// One fault that actually fired.
struct FaultRecord {
  FaultSite site = FaultSite::kMemAlloc;
  uint64_t evaluation = 0;  // Per-site evaluation ordinal (1-based).
};

class FaultInjector {
 public:
  // Null object: never fires, costs one branch per check.
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan);

  bool armed() const { return armed_; }

  // Evaluates `site`; true means the caller must inject the failure.
  // Counts the evaluation even when no rule matches, so rule triggers are
  // stable under plan edits at other sites.
  bool Check(FaultSite site);

  // Counters (per-site evaluations / fires) and the fired-fault log.
  uint64_t evaluations(FaultSite site) const {
    return evaluations_[static_cast<size_t>(site)];
  }
  uint64_t fires(FaultSite site) const { return fires_[static_cast<size_t>(site)]; }
  uint64_t total_fires() const { return log_.size(); }
  const std::vector<FaultRecord>& log() const { return log_; }

  // Virtual stall the guest pays for the most recent kBootStall fire: the
  // firing rule's custom `stall` when set, else kBootStallPenalty. The
  // disarmed null object always reports the default penalty.
  Nanos stall_penalty() const { return stall_penalty_; }

  // Forgets counters and the log and re-seeds the PRNG: the next run of the
  // same workload sees the identical schedule (replay).
  void Reset();

 private:
  bool armed_ = false;
  uint64_t seed_ = 0;
  Prng prng_;
  std::vector<FaultRule> rules_;
  // Remaining fires per rule (parallel to rules_); -1 = unlimited.
  std::vector<int> remaining_;
  std::array<uint64_t, kFaultSiteCount> evaluations_{};
  std::array<uint64_t, kFaultSiteCount> fires_{};
  std::vector<FaultRecord> log_;
  Nanos stall_penalty_ = kBootStallPenalty;
};

}  // namespace lupine

#endif  // SRC_UTIL_FAULT_H_

// Size and time unit helpers shared across the simulator.
//
// All simulated durations are held as integral nanoseconds (`Nanos`) so that
// arithmetic is exact and results are deterministic across platforms. Sizes
// are plain byte counts. Formatting helpers render values the way the paper's
// tables do (MB with one decimal, microseconds with two, ...).
#ifndef SRC_UTIL_UNITS_H_
#define SRC_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace lupine {

using Nanos = int64_t;   // Simulated duration in nanoseconds.
using Bytes = uint64_t;  // Size in bytes.

inline constexpr Nanos kNanosPerMicro = 1'000;
inline constexpr Nanos kNanosPerMilli = 1'000'000;
inline constexpr Nanos kNanosPerSecond = 1'000'000'000;

constexpr Nanos Micros(int64_t us) { return us * kNanosPerMicro; }
constexpr Nanos Millis(int64_t ms) { return ms * kNanosPerMilli; }
constexpr Nanos Seconds(int64_t s) { return s * kNanosPerSecond; }

constexpr double ToMicros(Nanos ns) { return static_cast<double>(ns) / kNanosPerMicro; }
constexpr double ToMillis(Nanos ns) { return static_cast<double>(ns) / kNanosPerMilli; }
constexpr double ToSeconds(Nanos ns) { return static_cast<double>(ns) / kNanosPerSecond; }

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

constexpr Bytes KiB(uint64_t n) { return n * kKiB; }
constexpr Bytes MiB(uint64_t n) { return n * kMiB; }

constexpr double ToKiB(Bytes b) { return static_cast<double>(b) / kKiB; }
constexpr double ToMiB(Bytes b) { return static_cast<double>(b) / kMiB; }

// Renders "4.0 MB", "27.5 KB", "123 B" etc. (decimal style used in prose).
std::string FormatSize(Bytes bytes);

// Renders "23.4 ms", "0.056 us", "1.2 s" picking a readable unit.
std::string FormatDuration(Nanos ns);

}  // namespace lupine

#endif  // SRC_UTIL_UNITS_H_

// Virtual-time-aware work-stealing scheduler for the fleet pipeline.
//
// The fleet driver used to shard statically: task i belonged to worker
// i mod W forever, so one expensive task (a fresh kernel build, a 60s
// boot-stall fault) wedged its shard while sibling workers idled. This
// scheduler replaces the shards with per-worker deques: a worker pops its
// own deque LIFO (back), and an idle worker steals FIFO (front) from the
// first victim that has an unpinned task. Tasks form a DAG — a task may
// declare dependencies on earlier-submitted tasks, which is how the fleet
// splits the per-VM chain (build -> rootfs -> boot) into independently
// schedulable stages that overlap across VMs.
//
// The split-brain design is deliberate. Run() executes every task body once
// on real host threads (that is where kernels actually build and VMs
// actually boot — fibers are thread-local, so a body runs start-to-finish
// on one thread). But none of the *reported* figures come from that
// execution: each body returns its virtual cost, and a deterministic
// sequential replay (Simulate) then re-schedules those costs under the very
// same deque policy on W virtual workers. Makespan, per-worker busy time,
// steal counts, queue depths and per-task spans are therefore properties of
// the simulation — byte-identical run after run — and never of how many
// host cores this process happened to get or which thread won a race.
//
// Flight groups model single-flight provisioning for monolithic (whole
// chain in one task) schedules: tasks sharing a group id share one payment
// of the group's cost. In the replay, the first task *dispatched* claims
// the flight and pays; a task dispatched while the flight is in progress
// blocks until it resolves (that is what a worker stuck on another
// flight's condition variable really does); a task dispatched after pays
// nothing. Attribution follows the deterministic virtual dispatch order,
// not the racy host-side winner.
//
// Policy invariants shared by host execution and replay (keep in lockstep):
//   * initial ready tasks are pushed to their home deque in descending
//     submission order, so the owner pops them back-first in ascending
//     order — at one worker the schedule is exactly the legacy serial
//     order;
//   * a completed task's newly-ready children are pushed to the completing
//     worker's deque (locality), unless pinned, in which case they go to
//     the pinned worker's deque;
//   * stealing takes the front-most unpinned task; pinned tasks only ever
//     run on their pinned worker.
#ifndef SRC_UTIL_SCHEDULER_H_
#define SRC_UTIL_SCHEDULER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace lupine {

class WorkStealingScheduler {
 public:
  struct Options {
    size_t workers = 1;
    // false: tasks never leave their home deque (the legacy static shards,
    // expressed as a degenerate policy of the same scheduler).
    bool stealing = true;
  };

  struct TaskSpec {
    // Host-side work. Runs exactly once, entirely on one worker thread
    // (fiber-safe), and returns the task's virtual cost. Must not throw.
    std::function<Nanos()> body;
    std::string label;  // For per-task spans / trace export.
    int home = 0;       // Deque the task is initially pushed to.
    int pin = -1;       // >= 0: only this worker may ever run the task.
    // Earlier-submitted task ids that must complete first.
    std::vector<size_t> deps;
    // Flight groups (DefineFlightGroup ids) this task joins, paid in order.
    std::vector<size_t> groups;
    // Virtual release (arrival) time: the replay will not dispatch the task
    // before this instant even when a worker is idle — how a request-driven
    // serving layer injects open-loop arrivals into the schedule. Host
    // execution ignores it (host wall time is not the virtual timeline);
    // bodies must not depend on it for ordering — use deps.
    Nanos release = 0;
  };

  explicit WorkStealingScheduler(Options options);

  // Declares a single-flight cost shared by every task that joins the
  // group: the first dispatched task pays `cost`, concurrent tasks wait,
  // later tasks ride free. Returns the group id.
  size_t DefineFlightGroup(Nanos cost);

  // Submits a task; returns its id (the submission ordinal). The task set
  // is closed: all Submit calls happen before Run.
  size_t Submit(TaskSpec spec);

  struct TaskRecord {
    size_t id = 0;
    int worker = 0;        // Virtual worker the replay assigned.
    Nanos dispatched = 0;  // Virtual instant the worker took the task.
    Nanos start = 0;       // After any flight-group wait.
    Nanos end = 0;
    bool stolen = false;   // Taken from another worker's deque.
    std::string label;
  };

  struct Report {
    Nanos makespan = 0;                    // Latest virtual completion.
    std::vector<Nanos> worker_busy;        // Occupied time (incl. flight waits).
    std::vector<size_t> worker_queue_peak; // Max deque depth per worker.
    size_t steals = 0;                     // Replay-level migrations.
    std::vector<TaskRecord> tasks;         // Indexed by task id.
    size_t host_steals = 0;  // Host execution's count — informational only,
                             // depends on thread timing; never report it as
                             // a simulation figure.
  };

  // Executes every body on `workers` host threads under the deque policy,
  // then replays the recorded costs deterministically. The returned report
  // is entirely replay-derived (except host_steals).
  Report Run();

  // The deterministic virtual-time replay, exposed for unit tests and for
  // schedules whose costs are known up front. `group_costs[g]` is the cost
  // of flight group g.
  struct SimTask {
    int home = 0;
    int pin = -1;
    Nanos cost = 0;
    std::vector<size_t> deps;
    std::vector<size_t> groups;
    std::string label;
    Nanos release = 0;  // Earliest virtual dispatch instant (see TaskSpec).
  };
  static Report Simulate(const Options& options, const std::vector<SimTask>& tasks,
                         const std::vector<Nanos>& group_costs);

 private:
  Options options_;
  std::vector<TaskSpec> specs_;
  std::vector<Nanos> group_costs_;
};

}  // namespace lupine

#endif  // SRC_UTIL_SCHEDULER_H_

#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace lupine {

void Accumulator::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::Stddev() const { return std::sqrt(Variance()); }

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

double Mean(const std::vector<double>& samples) {
  Accumulator acc;
  for (double s : samples) {
    acc.Add(s);
  }
  return acc.mean();
}

double Stddev(const std::vector<double>& samples) {
  Accumulator acc;
  for (double s : samples) {
    acc.Add(s);
  }
  return acc.Stddev();
}

StreamingPercentiles::StreamingPercentiles(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  samples_.reserve(capacity_);
}

void StreamingPercentiles::Add(double x) {
  ++count_;
  if (++phase_ < stride_) {
    return;  // Decimated away.
  }
  phase_ = 0;
  if (samples_.size() == capacity_) {
    // Halve: keep every other retained sample (arrival order preserved) and
    // double the stride so future arrivals are sampled at the new rate.
    size_t kept = 0;
    for (size_t i = 1; i < samples_.size(); i += 2) {
      samples_[kept++] = samples_[i];
    }
    samples_.resize(kept);
    stride_ *= 2;
  }
  samples_.push_back(x);
}

double StreamingPercentiles::Quantile(double p) const {
  return Percentile(samples_, p);
}

}  // namespace lupine

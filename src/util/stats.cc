#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace lupine {

void Accumulator::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::Stddev() const { return std::sqrt(Variance()); }

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

double Mean(const std::vector<double>& samples) {
  Accumulator acc;
  for (double s : samples) {
    acc.Add(s);
  }
  return acc.mean();
}

double Stddev(const std::vector<double>& samples) {
  Accumulator acc;
  for (double s : samples) {
    acc.Add(s);
  }
  return acc.Stddev();
}

}  // namespace lupine

#include "src/util/fiber.h"

#include <cassert>
#include <cstdlib>

namespace lupine {
namespace {

// The fiber currently executing on this host thread (nullptr in scheduler
// context). Also used to hand the Fiber* into the makecontext trampoline,
// which can only receive int arguments portably.
thread_local Fiber* g_current_fiber = nullptr;

}  // namespace

Fiber::Fiber(Entry entry, size_t stack_size)
    : entry_(std::move(entry)),
      stack_(new char[stack_size]),
      stack_size_(stack_size) {}

Fiber::~Fiber() {
  // Destroying a suspended (started, unfinished) fiber leaks whatever its
  // stack owned; the guest kernel only destroys fibers after exit or via
  // explicit kill, where leak-free teardown is not required for simulation
  // correctness.
  assert(!running_ && "cannot destroy a running fiber");
}

void Fiber::Trampoline() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr);
  self->entry_();
  self->finished_ = true;
  // Return to the resumer; uc_link handles the final switch.
}

void Fiber::Resume() {
  assert(!finished_ && "cannot resume a finished fiber");
  assert(!running_ && "fiber is already running");
  Fiber* previous = g_current_fiber;
  g_current_fiber = this;
  running_ = true;
  if (!started_) {
    started_ = true;
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stack_size_;
    context_.uc_link = &return_context_;
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::Trampoline), 0);
  }
  swapcontext(&return_context_, &context_);
  running_ = false;
  g_current_fiber = previous;
}

void Fiber::Yield() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr && "Yield called outside any fiber");
  swapcontext(&self->context_, &self->return_context_);
}

Fiber* Fiber::Current() { return g_current_fiber; }

}  // namespace lupine

#include "src/util/scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <queue>
#include <thread>

namespace lupine {
namespace {

// Pops a runnable task for `w` under the shared deque policy: own deque
// back-first, then (stealing on) the front-most unpinned task of the first
// victim that has one, scanning (w+1) % W onwards. Returns the task id or
// SIZE_MAX; sets *stolen when the task came from another deque.
size_t TakeTask(std::vector<std::deque<size_t>>& deques, const std::vector<int>& pins,
                size_t w, bool stealing, bool* stolen) {
  *stolen = false;
  if (!deques[w].empty()) {
    size_t id = deques[w].back();
    deques[w].pop_back();
    return id;
  }
  if (!stealing) {
    return SIZE_MAX;
  }
  const size_t workers = deques.size();
  for (size_t step = 1; step < workers; ++step) {
    std::deque<size_t>& victim = deques[(w + step) % workers];
    for (auto it = victim.begin(); it != victim.end(); ++it) {
      if (pins[*it] < 0) {
        size_t id = *it;
        victim.erase(it);
        *stolen = true;
        return id;
      }
    }
  }
  return SIZE_MAX;
}

}  // namespace

WorkStealingScheduler::WorkStealingScheduler(Options options) : options_(options) {
  if (options_.workers == 0) {
    options_.workers = 1;
  }
}

size_t WorkStealingScheduler::DefineFlightGroup(Nanos cost) {
  group_costs_.push_back(cost);
  return group_costs_.size() - 1;
}

size_t WorkStealingScheduler::Submit(TaskSpec spec) {
  specs_.push_back(std::move(spec));
  return specs_.size() - 1;
}

WorkStealingScheduler::Report WorkStealingScheduler::Run() {
  const size_t workers = options_.workers;
  const size_t total = specs_.size();

  // --- Host execution: run every body once, harvesting virtual costs. ----
  // The deque policy here mirrors the replay so wall-clock overlap looks
  // like the reported schedule, but nothing measured here is reported.
  std::vector<Nanos> costs(total, 0);
  size_t host_steals = 0;
  {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::deque<size_t>> deques(workers);
    std::vector<int> pins(total);
    std::vector<size_t> pending(total, 0);
    std::vector<std::vector<size_t>> children(total);
    for (size_t i = 0; i < total; ++i) {
      pins[i] = specs_[i].pin;
      pending[i] = specs_[i].deps.size();
      for (size_t dep : specs_[i].deps) {
        children[dep].push_back(i);
      }
    }
    // Descending push: the owner pops back-first, i.e. in ascending order.
    for (size_t i = total; i-- > 0;) {
      if (pending[i] == 0) {
        const int target = specs_[i].pin >= 0 ? specs_[i].pin : specs_[i].home;
        deques[static_cast<size_t>(target) % workers].push_back(i);
      }
    }
    size_t completed = 0;

    auto worker_loop = [&](size_t w) {
      std::unique_lock lock(mu);
      for (;;) {
        bool stolen = false;
        size_t id = TakeTask(deques, pins, w, options_.stealing, &stolen);
        if (id == SIZE_MAX) {
          if (completed == total) {
            return;
          }
          cv.wait(lock);
          continue;
        }
        if (stolen) {
          ++host_steals;
        }
        lock.unlock();
        const Nanos cost = specs_[id].body ? specs_[id].body() : 0;
        lock.lock();
        costs[id] = cost;
        ++completed;
        // Ready children land on this worker's deque (locality) unless
        // pinned elsewhere; descending id so the owner pops ascending.
        std::vector<size_t> ready;
        for (size_t child : children[id]) {
          if (--pending[child] == 0) {
            ready.push_back(child);
          }
        }
        std::sort(ready.begin(), ready.end(), std::greater<size_t>());
        for (size_t child : ready) {
          const int target = specs_[child].pin >= 0 ? specs_[child].pin
                                                    : static_cast<int>(w);
          deques[static_cast<size_t>(target) % workers].push_back(child);
        }
        cv.notify_all();
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back(worker_loop, w);
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }

  // --- Deterministic replay over the recorded costs. ----------------------
  std::vector<SimTask> sim(total);
  for (size_t i = 0; i < total; ++i) {
    sim[i] = {specs_[i].home, specs_[i].pin, costs[i],
              specs_[i].deps, specs_[i].groups, specs_[i].label, specs_[i].release};
  }
  Report report = Simulate(options_, sim, group_costs_);
  report.host_steals = host_steals;
  return report;
}

WorkStealingScheduler::Report WorkStealingScheduler::Simulate(
    const Options& options_in, const std::vector<SimTask>& tasks,
    const std::vector<Nanos>& group_costs) {
  Options options = options_in;
  if (options.workers == 0) {
    options.workers = 1;
  }
  const size_t workers = options.workers;
  const size_t total = tasks.size();

  Report report;
  report.worker_busy.assign(workers, 0);
  report.worker_queue_peak.assign(workers, 0);
  report.tasks.resize(total);

  std::vector<std::deque<size_t>> deques(workers);
  std::vector<int> pins(total);
  std::vector<size_t> pending(total, 0);
  std::vector<std::vector<size_t>> children(total);
  for (size_t i = 0; i < total; ++i) {
    pins[i] = tasks[i].pin;
    pending[i] = tasks[i].deps.size();
    for (size_t dep : tasks[i].deps) {
      children[dep].push_back(i);
    }
  }

  auto note_depth = [&](size_t w) {
    report.worker_queue_peak[w] = std::max(report.worker_queue_peak[w], deques[w].size());
  };

  // Tasks whose deps are satisfied but whose release instant is still in the
  // future wait here instead of in a deque: a worker must not dispatch a
  // request before it arrives. Ordered by (release, id) so same-instant
  // arrivals enter their deques in submission order.
  struct PendingRelease {
    Nanos at = 0;
    size_t task = 0;
    bool operator>(const PendingRelease& other) const {
      return at != other.at ? at > other.at : task > other.task;
    }
  };
  std::priority_queue<PendingRelease, std::vector<PendingRelease>, std::greater<PendingRelease>>
      releases;

  auto drain_releases = [&](Nanos now) {
    while (!releases.empty() && releases.top().at <= now) {
      const size_t id = releases.top().task;
      releases.pop();
      const size_t target =
          static_cast<size_t>(tasks[id].pin >= 0 ? tasks[id].pin : tasks[id].home) % workers;
      deques[target].push_back(id);
      note_depth(target);
    }
  };

  for (size_t i = total; i-- > 0;) {
    if (pending[i] == 0) {
      if (tasks[i].release > 0) {
        releases.push({tasks[i].release, i});
        continue;
      }
      const size_t target =
          static_cast<size_t>(tasks[i].pin >= 0 ? tasks[i].pin : tasks[i].home) % workers;
      deques[target].push_back(i);
      note_depth(target);
    }
  }

  // Flight-group replay state: unclaimed until first dispatch, then ready at
  // a fixed virtual instant every later member waits on.
  struct GroupState {
    bool started = false;
    Nanos ready_at = 0;
  };
  std::vector<GroupState> groups(group_costs.size());

  // Completion events ordered by (time, worker): the only source of
  // nondeterminism in a parallel schedule, made total here.
  struct Event {
    Nanos time = 0;
    size_t worker = 0;
    size_t task = 0;
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : worker > other.worker;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::vector<bool> busy(workers, false);

  auto dispatch_idle = [&](Nanos now) {
    // Keep handing tasks to idle workers in worker order until nothing
    // moves: a steal can expose work another idle worker then takes.
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t w = 0; w < workers; ++w) {
        if (busy[w]) {
          continue;
        }
        bool stolen = false;
        const size_t id = TakeTask(deques, pins, w, options.stealing, &stolen);
        if (id == SIZE_MAX) {
          continue;
        }
        Nanos start = now;
        for (size_t g : tasks[id].groups) {
          GroupState& group = groups[g];
          if (!group.started) {
            group.started = true;
            group.ready_at = start + group_costs[g];
            start = group.ready_at;
          } else {
            start = std::max(start, group.ready_at);
          }
        }
        const Nanos end = start + tasks[id].cost;
        report.tasks[id] = {id, static_cast<int>(w), now, start, end, stolen,
                           tasks[id].label};
        if (stolen) {
          ++report.steals;
        }
        report.worker_busy[w] += end - now;
        busy[w] = true;
        events.push({end, w, id});
        progress = true;
      }
    }
  };

  dispatch_idle(0);
  while (!events.empty() || !releases.empty()) {
    // All workers idle before the next completion: jump to the next release
    // (the fleet between request arrivals).
    if (events.empty() ||
        (!releases.empty() && releases.top().at < events.top().time)) {
      const Nanos now = releases.top().at;
      drain_releases(now);
      dispatch_idle(now);
      continue;
    }
    const Event event = events.top();
    events.pop();
    busy[event.worker] = false;
    report.makespan = std::max(report.makespan, event.time);
    std::vector<size_t> ready;
    for (size_t child : children[event.task]) {
      if (--pending[child] == 0) {
        ready.push_back(child);
      }
    }
    std::sort(ready.begin(), ready.end(), std::greater<size_t>());
    for (size_t child : ready) {
      if (tasks[child].release > event.time) {
        releases.push({tasks[child].release, child});
        continue;
      }
      const size_t target = static_cast<size_t>(
          tasks[child].pin >= 0 ? tasks[child].pin : static_cast<int>(event.worker)) %
          workers;
      deques[target].push_back(child);
      note_depth(target);
    }
    drain_releases(event.time);
    dispatch_idle(event.time);
  }
  return report;
}

}  // namespace lupine

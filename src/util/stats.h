// Small statistics helpers for benchmark reporting.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace lupine {

// Streaming accumulator (Welford) for mean / variance / extremes.
class Accumulator {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  double Variance() const;
  double Stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Percentile over a copied sample set (nearest-rank).
double Percentile(std::vector<double> samples, double p);

double Mean(const std::vector<double>& samples);
double Stddev(const std::vector<double>& samples);

// Streaming percentile estimator with bounded memory.
//
// Exact while the stream fits in `capacity` samples; beyond that the stream
// is decimated deterministically (keep every stride-th sample, doubling the
// stride each time the buffer fills), which is systematic sampling — quantile
// estimates stay unbiased for streams without stride-aligned periodicity and
// two identical streams always produce identical estimates. Backing store
// for telemetry::Histogram and any bench that reports p50/p95/p99 over long
// runs.
class StreamingPercentiles {
 public:
  explicit StreamingPercentiles(size_t capacity = 4096);

  void Add(double x);

  // Quantile in [0, 100] over the retained samples (interpolated, same
  // convention as Percentile()). Exact when count() <= capacity().
  double Quantile(double p) const;
  double p50() const { return Quantile(50); }
  double p95() const { return Quantile(95); }
  double p99() const { return Quantile(99); }

  size_t count() const { return count_; }        // Samples seen.
  size_t retained() const { return samples_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  size_t stride_ = 1;   // Record every stride-th arrival.
  size_t phase_ = 0;    // Arrivals since the last recorded sample.
  size_t count_ = 0;
  std::vector<double> samples_;  // Arrival order; sorted on demand.
};

}  // namespace lupine

#endif  // SRC_UTIL_STATS_H_

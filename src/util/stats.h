// Small statistics helpers for benchmark reporting.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace lupine {

// Streaming accumulator (Welford) for mean / variance / extremes.
class Accumulator {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  double Variance() const;
  double Stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Percentile over a copied sample set (nearest-rank).
double Percentile(std::vector<double> samples, double p);

double Mean(const std::vector<double>& samples);
double Stddev(const std::vector<double>& samples);

}  // namespace lupine

#endif  // SRC_UTIL_STATS_H_

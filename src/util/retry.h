// Deterministic retry, deadline and circuit-breaker primitives.
//
// The paper's posture (Section 2.2) is that a Lupine guest cannot save
// itself — the application runs in ring 0, so every recovery decision is the
// monitor's. This header is the monitor-side toolbox those decisions share:
//
//   * RetryPolicy / Retrier — exponential backoff with seeded jitter,
//     attempt and virtual-time budgets, and a retryable-error classification
//     over Status. The fleet boot driver, the artifact caches and the
//     vmm::Supervisor all price their restart schedules through the same
//     BackoffDelay formula, so one policy means one timeline everywhere.
//   * DeadlineGuard — a per-stage virtual deadline. A stage that wedges
//     (e.g. a kBootStall fault inflating the decompress phase) does not hang
//     the shard: the guard reports the deadline the monitor would have
//     killed the VM at, and the caller retries.
//   * CircuitBreaker — sliding-window failure-rate tracking across a fleet.
//     In fail-fast mode a tripped breaker denies further launches (with a
//     deterministic half-open probe cadence); in best-effort mode it only
//     counts trips so the fleet keeps limping.
//
// Everything draws from util/prng and prices delays on the virtual
// timeline, so a given policy + seed reproduces its schedule byte for byte.
#ifndef SRC_UTIL_RETRY_H_
#define SRC_UTIL_RETRY_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "src/util/prng.h"
#include "src/util/result.h"
#include "src/util/units.h"
#include "src/util/vclock.h"

namespace lupine {

// The backoff shape shared by Retrier and vmm::Supervisor: delay before the
// (failures+1)-th attempt is initial * multiplier^(failures-1), clamped to
// `cap`, then scaled by a jitter factor uniform in [1-j, 1+j].
struct BackoffSpec {
  Nanos initial = Millis(100);
  double multiplier = 2.0;
  Nanos cap = Seconds(30);
  double jitter = 0.1;
};

// The deterministic delay before the next attempt after `failures` (>= 1)
// consecutive failures, drawn from the caller's private jitter stream. Sets
// `*capped` when the raw exponential hit the ceiling (the signal that a
// policy is saturating instead of spreading restarts out).
Nanos BackoffDelay(const BackoffSpec& spec, int failures, Prng& jitter, bool* capped = nullptr);

// A complete retry policy: how often, how long, and on which errors.
struct RetryPolicy {
  // Attempts in total, including the first; 1 disables retries.
  int max_attempts = 3;
  BackoffSpec backoff = {};
  // Ceiling on the summed backoff delay per task (virtual time); a retry
  // whose delay would cross it is abandoned instead. 0 = unlimited.
  Nanos total_budget = 0;
  uint64_t seed = 0x5EED;
};

// Classification over Status: transient guest/host failures (I/O errors,
// interrupted or timed-out operations, connection resets, ring-0 panics)
// are worth a fresh VM; deterministic ones (bad input, missing manifest,
// quarantined artifact, out-of-memory at a fixed size) are not.
bool IsRetryableError(const Status& status);

// Per-task retry controller. Feed it every failure; it answers whether to
// try again and how long to wait first. Deterministic: (policy, seed_offset)
// fully determine the schedule, so task outcomes are independent of how
// tasks are sharded across workers.
class Retrier {
 public:
  explicit Retrier(const RetryPolicy& policy, uint64_t seed_offset = 0);

  struct Decision {
    bool retry = false;
    Nanos delay = 0;          // Backoff before the next attempt.
    bool capped = false;      // The exponential hit the policy ceiling.
    // Why not: "retryable" when retry is true; otherwise "permanent-error",
    // "attempts-exhausted" or "budget-exhausted".
    const char* reason = "retryable";
  };
  Decision OnFailure(const Status& status);

  int failures() const { return failures_; }
  Nanos backoff_total() const { return backoff_total_; }
  void Reset();

 private:
  RetryPolicy policy_;
  uint64_t seed_;  // policy.seed folded with the task's seed_offset.
  Prng jitter_;
  int failures_ = 0;
  Nanos backoff_total_ = 0;
};

// Watches one named stage against a virtual deadline. Construct at stage
// start; after the stage ran, expired() says whether the monitor would have
// killed it first, and kill_at() is the virtual instant it would have done
// so (what a killed attempt costs the shard — never more than the deadline).
// deadline 0 = unlimited (the guard never expires).
class DeadlineGuard {
 public:
  DeadlineGuard(const VirtualClock& clock, std::string stage, Nanos deadline)
      : clock_(&clock), stage_(std::move(stage)), deadline_(deadline), start_(clock.now()) {}

  Nanos elapsed() const { return clock_->now() - start_; }
  bool expired() const { return deadline_ > 0 && elapsed() > deadline_; }
  // Virtual time the stage consumed as far as the monitor is concerned:
  // capped at the deadline when expired.
  Nanos charged() const { return expired() ? deadline_ : elapsed(); }
  Status Check() const;  // Ok, or kTimedOut naming the stage and overrun.

  // Post-hoc form for stages whose duration arrives as a number (host-wall
  // provisioning spans): Ok, or kTimedOut when elapsed > deadline (> 0).
  static Status CheckElapsed(const std::string& stage, Nanos deadline, Nanos elapsed);

 private:
  const VirtualClock* clock_;
  std::string stage_;
  Nanos deadline_;
  Nanos start_;
};

struct BreakerPolicy {
  size_t window = 32;        // Launch outcomes remembered.
  size_t min_samples = 8;    // No verdict before this many outcomes.
  double trip_ratio = 0.5;   // Failure fraction that trips the breaker.
  // true: a tripped breaker denies launches (fail fast); false: best-effort —
  // trips are counted but every launch is still allowed.
  bool fail_fast = false;
  // Fail-fast half-open cadence: after this many consecutive denials, one
  // probe launch is allowed through; its success closes the breaker again.
  // 0 = a tripped breaker stays open forever.
  size_t probe_after = 16;
};

// Fleet-wide failure-rate tracker. Thread-safe: shards on every worker
// Record() their launch outcomes and Allow()-gate their next launch against
// the shared window. Counts (trips, denials) are exact; in fail-fast mode
// the set of denied launches depends on cross-worker interleaving, which is
// the nature of a shared breaker — single-worker runs are deterministic.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerPolicy policy = {});

  // Gate one launch. False = denied (tripped, fail-fast, not a probe turn).
  bool Allow();
  // Report a launch outcome. A success while tripped closes the breaker and
  // clears the window (the half-open probe proved recovery).
  void Record(bool success);

  bool tripped() const;
  size_t trips() const;
  size_t denied() const;
  double failure_ratio() const;  // Over the current window; 0 when empty.

 private:
  BreakerPolicy policy_;
  mutable std::mutex mu_;
  std::deque<bool> window_;  // true = failure.
  size_t window_failures_ = 0;
  bool tripped_ = false;
  size_t trips_ = 0;
  size_t denied_ = 0;
  size_t denied_since_probe_ = 0;
};

}  // namespace lupine

#endif  // SRC_UTIL_RETRY_H_

#include "src/util/json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lupine {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) {
      found = &v;
    }
  }
  return found;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, const JsonParseOptions& options)
      : text_(text), options_(options) {}

  Result<JsonValue> Document() {
    SkipWs();
    JsonValue value;
    if (Status s = Value(value); !s.ok()) {
      return s;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

  void set_error_sink(JsonParseError* error) { error_ = error; }

 private:
  Status Error(const std::string& what) const {
    if (error_ != nullptr) {
      error_->what = what;
      error_->offset = pos_;
    }
    return Status(Err::kInval, "json: " + what + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t len = std::strlen(word);
    if (text_.substr(pos_, len) == word) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Status Value(JsonValue& out) {
    if (depth_ > options_.max_depth) {
      return Error("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    out.offset = pos_;
    switch (text_[pos_]) {
      case '{':
        return Object(out);
      case '[':
        return Array(out);
      case '"': {
        out.kind = JsonValue::Kind::kString;
        return String(out.str);
      }
      case 't':
        if (ConsumeWord("true")) {
          out.kind = JsonValue::Kind::kBool;
          out.boolean = true;
          return Status::Ok();
        }
        return Error("bad literal");
      case 'f':
        if (ConsumeWord("false")) {
          out.kind = JsonValue::Kind::kBool;
          out.boolean = false;
          return Status::Ok();
        }
        return Error("bad literal");
      case 'n':
        if (ConsumeWord("null")) {
          out.kind = JsonValue::Kind::kNull;
          return Status::Ok();
        }
        return Error("bad literal");
      default:
        return Number(out);
    }
  }

  Status Object(JsonValue& out) {
    ++depth_;
    ++pos_;  // '{'
    out.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) {
      --depth_;
      return Status::Ok();
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      const size_t key_offset = pos_;
      std::string key;
      if (Status s = String(key); !s.ok()) {
        return s;
      }
      if (options_.reject_duplicate_keys) {
        for (const auto& [existing, unused] : out.object) {
          if (existing == key) {
            pos_ = key_offset;
            return Error("duplicate key \"" + key + "\"");
          }
        }
      }
      SkipWs();
      if (!Consume(':')) {
        return Error("expected ':'");
      }
      SkipWs();
      JsonValue value;
      if (Status s = Value(value); !s.ok()) {
        return s;
      }
      value.key_offset = key_offset;
      out.object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        --depth_;
        return Status::Ok();
      }
      return Error("expected ',' or '}'");
    }
  }

  Status Array(JsonValue& out) {
    ++depth_;
    ++pos_;  // '['
    out.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) {
      --depth_;
      return Status::Ok();
    }
    for (;;) {
      SkipWs();
      JsonValue value;
      if (Status s = Value(value); !s.ok()) {
        return s;
      }
      out.array.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        --depth_;
        return Status::Ok();
      }
      return Error("expected ',' or ']'");
    }
  }

  Status String(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          uint32_t cp = 0;
          if (Status s = Hex4(cp); !s.ok()) {
            return s;
          }
          // Surrogate pair: a high surrogate must be followed by \uDC00-DFFF.
          if (cp >= 0xD800 && cp <= 0xDBFF && text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            uint32_t low = 0;
            if (Status s = Hex4(low); !s.ok()) {
              return s;
            }
            if (low >= 0xDC00 && low <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Error("bad low surrogate");
            }
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status Hex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) {
      return Error("truncated \\u escape");
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    return Status::Ok();
  }

  static void AppendUtf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status Number(JsonValue& out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("unexpected character");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      pos_ = start;
      return Error("bad number");
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = value;
    return Status::Ok();
  }

  std::string_view text_;
  JsonParseOptions options_;
  JsonParseError* error_ = nullptr;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text, JsonParseOptions{}).Document();
}

Result<JsonValue> ParseJson(std::string_view text, const JsonParseOptions& options,
                            JsonParseError* error) {
  Parser parser(text, options);
  parser.set_error_sink(error);
  return parser.Document();
}

LineCol OffsetToLineCol(std::string_view text, size_t offset) {
  LineCol at;
  if (offset > text.size()) {
    offset = text.size();
  }
  for (size_t i = 0; i < offset; ++i) {
    if (text[i] == '\n') {
      ++at.line;
      at.col = 1;
    } else {
      ++at.col;
    }
  }
  return at;
}

}  // namespace lupine

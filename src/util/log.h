// Leveled logging for the simulator.
//
// The guest "console" is separate (see guestos::Console); this logger is for
// host-side diagnostics and is silent at default level in benchmarks.
#ifndef SRC_UTIL_LOG_H_
#define SRC_UTIL_LOG_H_

#include <sstream>
#include <string>

namespace lupine {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

namespace logging_internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace logging_internal
}  // namespace lupine

#define LUPINE_LOG(level)                                            \
  if (::lupine::GetLogLevel() <= ::lupine::LogLevel::level)          \
  ::lupine::logging_internal::LogLine(::lupine::LogLevel::level, __FILE__, __LINE__)

#define LOG_DEBUG LUPINE_LOG(kDebug)
#define LOG_INFO LUPINE_LOG(kInfo)
#define LOG_WARN LUPINE_LOG(kWarn)
#define LOG_ERROR LUPINE_LOG(kError)

#endif  // SRC_UTIL_LOG_H_

#include "src/util/table.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace lupine {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRowVec(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Cell(double v) {
  char buf[64];
  double av = std::fabs(v);
  if (v == static_cast<long long>(v) && av < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else if (av >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  } else if (av >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void Table::Print(std::FILE* out) const { std::fputs(ToString().c_str(), out); }

void Table::PrintCsv(std::FILE* out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fputs(row[c].c_str(), out);
      std::fputc(c + 1 == row.size() ? '\n' : ',', out);
    }
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

void PrintBanner(const std::string& title, std::FILE* out) {
  std::fprintf(out, "\n== %s ==\n", title.c_str());
}

}  // namespace lupine

// Console table / CSV rendering for bench binaries.
//
// Every bench prints the same rows/series the paper's table or figure
// reports, first as an aligned console table and optionally as CSV (for
// re-plotting).
#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace lupine {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Variadic row helper: accepts strings and arithmetic values.
  template <typename... Args>
  void AddRow(const Args&... args) {
    std::vector<std::string> row;
    row.reserve(sizeof...(args));
    (row.push_back(Cell(args)), ...);
    AddRowVec(std::move(row));
  }

  void AddRowVec(std::vector<std::string> row);

  // Renders to `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;
  void PrintCsv(std::FILE* out = stdout) const;

  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  static std::string Cell(const std::string& s) { return s; }
  static std::string Cell(const char* s) { return s; }
  static std::string Cell(double v);
  static std::string Cell(int v) { return std::to_string(v); }
  static std::string Cell(long v) { return std::to_string(v); }
  static std::string Cell(long long v) { return std::to_string(v); }
  static std::string Cell(unsigned v) { return std::to_string(v); }
  static std::string Cell(unsigned long v) { return std::to_string(v); }
  static std::string Cell(unsigned long long v) { return std::to_string(v); }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a figure/table banner ("== Figure 7: Boot time (hello world) ==").
void PrintBanner(const std::string& title, std::FILE* out = stdout);

}  // namespace lupine

#endif  // SRC_UTIL_TABLE_H_

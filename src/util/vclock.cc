#include "src/util/vclock.h"

// VirtualClock is header-only today; this TU anchors the target so the
// library always has at least one symbol from this module.
namespace lupine {}

// Stackful cooperative fibers built on ucontext.
//
// Guest threads in src/guestos are fibers: the guest scheduler decides which
// fiber runs, and a fiber gives up the CPU only at simulated blocking points
// (syscalls, futex waits, ...). Running everything on one host thread keeps
// the simulation fully deterministic and lets experiments spawn thousands of
// guest processes (Figs. 11-12 sweep to 1024+) with small, fixed-size stacks.
#ifndef SRC_UTIL_FIBER_H_
#define SRC_UTIL_FIBER_H_

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace lupine {

class Fiber {
 public:
  using Entry = std::function<void()>;

  // Default stack: plenty for app models; tiny versus pthread's 8 MiB.
  static constexpr size_t kDefaultStackSize = 256 * 1024;

  explicit Fiber(Entry entry, size_t stack_size = kDefaultStackSize);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Runs the fiber until it yields or returns. Must be called from outside
  // any fiber (the scheduler context) or from another fiber.
  void Resume();

  // Yields from inside the currently running fiber back to its resumer.
  static void Yield();

  // The fiber currently executing, or nullptr when in scheduler context.
  static Fiber* Current();

  bool finished() const { return finished_; }
  bool running() const { return running_; }

 private:
  static void Trampoline();

  Entry entry_;
  std::unique_ptr<char[]> stack_;
  size_t stack_size_;
  ucontext_t context_;
  ucontext_t return_context_;
  bool started_ = false;
  bool finished_ = false;
  bool running_ = false;
};

}  // namespace lupine

#endif  // SRC_UTIL_FIBER_H_

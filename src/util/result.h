// Minimal Result<T> / Status types for fallible simulator operations.
//
// The guest OS layer reports failures with errno-style codes plus a message
// (the "console output" that drives the configuration search in
// src/core/config_search.*). We deliberately avoid exceptions in the hot
// simulation paths.
#ifndef SRC_UTIL_RESULT_H_
#define SRC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace lupine {

// Errno-style error codes used throughout the guest. Values mirror Linux
// where a mirror exists so that logs read naturally.
enum class Err : int {
  kOk = 0,
  kPerm = 1,         // EPERM
  kNoEnt = 2,        // ENOENT
  kIntr = 4,         // EINTR
  kIo = 5,           // EIO
  kBadF = 9,         // EBADF
  kChild = 10,       // ECHILD
  kAgain = 11,       // EAGAIN
  kNoMem = 12,       // ENOMEM
  kAccess = 13,      // EACCES
  kFault = 14,       // EFAULT
  kExist = 17,       // EEXIST
  kNotDir = 20,      // ENOTDIR
  kIsDir = 21,       // EISDIR
  kInval = 22,       // EINVAL
  kNFile = 23,       // ENFILE
  kMFile = 24,       // EMFILE
  kNoTty = 25,       // ENOTTY
  kNoSpc = 28,       // ENOSPC
  kPipe = 32,        // EPIPE
  kRange = 34,       // ERANGE
  kNameTooLong = 36, // ENAMETOOLONG
  kNoSys = 38,       // ENOSYS
  kNotEmpty = 39,    // ENOTEMPTY
  kNotSock = 88,     // ENOTSOCK
  kAfNoSupport = 97, // EAFNOSUPPORT
  kOpNotSupp = 95,   // EOPNOTSUPP
  kAddrInUse = 98,   // EADDRINUSE
  kNetUnreach = 101, // ENETUNREACH
  kConnReset = 104,  // ECONNRESET
  kNotConn = 107,    // ENOTCONN
  kTimedOut = 110,   // ETIMEDOUT
  kConnRefused = 111 // ECONNREFUSED
};

const char* ErrName(Err e);

// A status: either OK or an error code with a human-readable message.
// [[nodiscard]] because a dropped Status is a swallowed failure — callers
// that truly don't care must say so with a (void) cast.
class [[nodiscard]] Status {
 public:
  Status() : err_(Err::kOk) {}
  explicit Status(Err err, std::string message = "")
      : err_(err), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return err_ == Err::kOk; }
  Err err() const { return err_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string s = ErrName(err_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  Err err_;
  std::string message_;
};

// Result<T>: value or Status. A tiny subset of absl::StatusOr.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) { // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result from OK status needs a value");
  }
  Result(Err err, std::string message = "") : status_(err, std::move(message)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }
  Err err() const { return status_.err(); }

  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& value() {
    assert(ok());
    return *value_;
  }
  T take() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const { return value(); }
  T& operator*() { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace lupine

#endif  // SRC_UTIL_RESULT_H_

#include "src/util/result.h"

namespace lupine {

const char* ErrName(Err e) {
  switch (e) {
    case Err::kOk: return "OK";
    case Err::kPerm: return "EPERM";
    case Err::kNoEnt: return "ENOENT";
    case Err::kIntr: return "EINTR";
    case Err::kIo: return "EIO";
    case Err::kBadF: return "EBADF";
    case Err::kChild: return "ECHILD";
    case Err::kAgain: return "EAGAIN";
    case Err::kNoMem: return "ENOMEM";
    case Err::kAccess: return "EACCES";
    case Err::kFault: return "EFAULT";
    case Err::kExist: return "EEXIST";
    case Err::kNotDir: return "ENOTDIR";
    case Err::kIsDir: return "EISDIR";
    case Err::kInval: return "EINVAL";
    case Err::kNFile: return "ENFILE";
    case Err::kMFile: return "EMFILE";
    case Err::kNoTty: return "ENOTTY";
    case Err::kNoSpc: return "ENOSPC";
    case Err::kPipe: return "EPIPE";
    case Err::kRange: return "ERANGE";
    case Err::kNameTooLong: return "ENAMETOOLONG";
    case Err::kNoSys: return "ENOSYS";
    case Err::kNotEmpty: return "ENOTEMPTY";
    case Err::kNotSock: return "ENOTSOCK";
    case Err::kAfNoSupport: return "EAFNOSUPPORT";
    case Err::kOpNotSupp: return "EOPNOTSUPP";
    case Err::kAddrInUse: return "EADDRINUSE";
    case Err::kNetUnreach: return "ENETUNREACH";
    case Err::kConnReset: return "ECONNRESET";
    case Err::kNotConn: return "ENOTCONN";
    case Err::kTimedOut: return "ETIMEDOUT";
    case Err::kConnRefused: return "ECONNREFUSED";
  }
  return "E?";
}

}  // namespace lupine

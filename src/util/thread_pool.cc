#include "src/util/thread_pool.h"

namespace lupine {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = 1;
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { Worker(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard lock(mu_);
    if (stop_ && workers_.empty()) {
      return;  // Already shut down.
    }
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
  workers_.clear();
}

void ThreadPool::Worker() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

size_t ThreadPool::DefaultThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace lupine

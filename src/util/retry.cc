#include "src/util/retry.h"

#include <algorithm>
#include <cmath>

#include "src/util/units.h"

namespace lupine {

Nanos BackoffDelay(const BackoffSpec& spec, int failures, Prng& jitter, bool* capped) {
  double base = static_cast<double>(spec.initial) *
                std::pow(spec.multiplier, std::max(0, failures - 1));
  const bool hit_cap = base >= static_cast<double>(spec.cap);
  if (capped != nullptr) {
    *capped = hit_cap;
  }
  base = std::min(base, static_cast<double>(spec.cap));
  // Jitter factor uniform in [1-j, 1+j] from the caller's private stream:
  // same seed => same schedule, but independent streams decorrelate, so a
  // mass failure does not retry in lockstep.
  const double factor = 1.0 + spec.jitter * (2.0 * jitter.NextDouble() - 1.0);
  return std::max<Nanos>(1, static_cast<Nanos>(base * factor));
}

bool IsRetryableError(const Status& status) {
  switch (status.err()) {
    case Err::kIo:           // Transient device error / injected boot fault.
    case Err::kIntr:         // Interrupted; restarting is the contract.
    case Err::kAgain:        // Resource momentarily unavailable.
    case Err::kTimedOut:     // Stage deadline or network timeout.
    case Err::kConnReset:    // Peer reset; reconnect is routine.
    case Err::kConnRefused:  // Peer not up yet.
    case Err::kNetUnreach:   // Routing flap.
    case Err::kFault:        // Ring-0 panic: a fresh VM is the only cure.
      return true;
    default:
      // kNoMem (same size will OOM again), kNoEnt/kInval (bad input),
      // kAccess (quarantined artifact) and friends are deterministic:
      // retrying burns budget without changing the outcome.
      return false;
  }
}

Retrier::Retrier(const RetryPolicy& policy, uint64_t seed_offset)
    : policy_(policy), seed_(policy.seed ^ ((seed_offset + 1) * 0x9E3779B97F4A7C15ull)),
      jitter_(seed_) {}

Retrier::Decision Retrier::OnFailure(const Status& status) {
  ++failures_;
  Decision decision;
  if (!IsRetryableError(status)) {
    decision.reason = "permanent-error";
    return decision;
  }
  if (failures_ >= policy_.max_attempts) {
    decision.reason = "attempts-exhausted";
    return decision;
  }
  const Nanos delay = BackoffDelay(policy_.backoff, failures_, jitter_, &decision.capped);
  if (policy_.total_budget > 0 && backoff_total_ + delay > policy_.total_budget) {
    decision.reason = "budget-exhausted";
    return decision;
  }
  backoff_total_ += delay;
  decision.retry = true;
  decision.delay = delay;
  return decision;
}

void Retrier::Reset() {
  failures_ = 0;
  backoff_total_ = 0;
  jitter_ = Prng(seed_);  // Replay: the same task sees the same schedule.
}

Status DeadlineGuard::Check() const {
  return CheckElapsed(stage_, deadline_, elapsed());
}

Status DeadlineGuard::CheckElapsed(const std::string& stage, Nanos deadline, Nanos elapsed) {
  if (deadline <= 0 || elapsed <= deadline) {
    return Status::Ok();
  }
  return Status(Err::kTimedOut, "stage '" + stage + "' exceeded its " +
                                    FormatDuration(deadline) + " deadline (ran " +
                                    FormatDuration(elapsed) + ")");
}

CircuitBreaker::CircuitBreaker(BreakerPolicy policy) : policy_(policy) {}

bool CircuitBreaker::Allow() {
  std::lock_guard lock(mu_);
  if (!tripped_ || !policy_.fail_fast) {
    return true;
  }
  ++denied_;
  ++denied_since_probe_;
  if (policy_.probe_after > 0 && denied_since_probe_ >= policy_.probe_after) {
    // Half-open: let one launch through to test the waters. Its Record()
    // verdict decides whether the breaker closes.
    denied_since_probe_ = 0;
    --denied_;  // The probe is allowed, not denied.
    return true;
  }
  return false;
}

void CircuitBreaker::Record(bool success) {
  std::lock_guard lock(mu_);
  if (success && tripped_) {
    // The probe (or a straggler) succeeded: close and forget the bad window
    // so one stale burst of failures cannot re-trip instantly.
    tripped_ = false;
    window_.clear();
    window_failures_ = 0;
    denied_since_probe_ = 0;
    return;
  }
  window_.push_back(!success);
  window_failures_ += success ? 0 : 1;
  while (window_.size() > policy_.window) {
    window_failures_ -= window_.front() ? 1 : 0;
    window_.pop_front();
  }
  if (!tripped_ && window_.size() >= policy_.min_samples &&
      static_cast<double>(window_failures_) >=
          policy_.trip_ratio * static_cast<double>(window_.size())) {
    tripped_ = true;
    ++trips_;
    denied_since_probe_ = 0;
  }
}

bool CircuitBreaker::tripped() const {
  std::lock_guard lock(mu_);
  return tripped_;
}

size_t CircuitBreaker::trips() const {
  std::lock_guard lock(mu_);
  return trips_;
}

size_t CircuitBreaker::denied() const {
  std::lock_guard lock(mu_);
  return denied_;
}

double CircuitBreaker::failure_ratio() const {
  std::lock_guard lock(mu_);
  if (window_.empty()) {
    return 0.0;
  }
  return static_cast<double>(window_failures_) / static_cast<double>(window_.size());
}

}  // namespace lupine

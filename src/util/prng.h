// Deterministic pseudo-random number generation (xoshiro256** + splitmix64).
//
// Workload generators need randomness (key distributions, request sizes) but
// experiments must be reproducible, so every component that needs randomness
// owns a Prng seeded from the experiment seed.
#ifndef SRC_UTIL_PRNG_H_
#define SRC_UTIL_PRNG_H_

#include <cstdint>

namespace lupine {

class Prng {
 public:
  explicit Prng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial.
  bool NextBool(double p_true);

  // Zipf-like rank selection in [0, n): rank r with weight 1/(r+1)^theta.
  // Used by the redis workload to model hot keys.
  uint64_t NextZipf(uint64_t n, double theta);

  // Derives an independent child generator (for per-connection streams).
  Prng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace lupine

#endif  // SRC_UTIL_PRNG_H_

#include "src/util/prng.h"

#include <cmath>

namespace lupine {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Prng::Prng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    s = SplitMix64(x);
  }
}

uint64_t Prng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Prng::NextBelow(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Prng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
}

double Prng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Prng::NextBool(double p_true) { return NextDouble() < p_true; }

uint64_t Prng::NextZipf(uint64_t n, double theta) {
  if (n <= 1) {
    return 0;
  }
  // Inverse-CDF approximation good enough for workload skew modeling.
  double u = NextDouble();
  double exponent = 1.0 - theta;
  double scale = std::pow(static_cast<double>(n), exponent);
  double rank = std::pow(u * (scale - 1.0) + 1.0, 1.0 / exponent) - 1.0;
  uint64_t r = static_cast<uint64_t>(rank);
  return r >= n ? n - 1 : r;
}

Prng Prng::Fork() { return Prng(Next()); }

}  // namespace lupine

// Virtual clock: the simulated time base of the whole system.
//
// Nothing in the simulator reads the host clock. Every priced operation
// (syscall entry, page fault, packet traversal, ...) advances a VirtualClock,
// so all experiment outputs are exact, deterministic functions of the
// configuration under test.
#ifndef SRC_UTIL_VCLOCK_H_
#define SRC_UTIL_VCLOCK_H_

#include <cassert>

#include "src/util/units.h"

namespace lupine {

class VirtualClock {
 public:
  VirtualClock() = default;

  Nanos now() const { return now_; }

  void Advance(Nanos delta) {
    assert(delta >= 0 && "time cannot move backwards");
    now_ += delta;
  }

  // Moves the clock to an absolute point, e.g. when a blocked fiber resumes
  // at the waking event's timestamp. No-op if `t` is in the past (the waker
  // ran later than the sleeper's deadline).
  void AdvanceTo(Nanos t) {
    if (t > now_) {
      now_ = t;
    }
  }

  // Moves the clock backwards to an absolute point. Snapshot restore only:
  // the guest's post-init state was re-materialized by replaying the boot
  // (full boot cost on this clock), but the restored instance's timeline
  // must begin at the modeled restore cost. Only legal while no fiber has
  // run — once threads block, absolute wake deadlines exist and rewinding
  // would corrupt them.
  void Rewind(Nanos t) {
    assert(t <= now_ && "rewind cannot move forwards");
    now_ = t;
  }

  void Reset() { now_ = 0; }

 private:
  Nanos now_ = 0;
};

// RAII measurement of elapsed virtual time.
class VirtualStopwatch {
 public:
  explicit VirtualStopwatch(const VirtualClock& clock) : clock_(clock), start_(clock.now()) {}
  Nanos Elapsed() const { return clock_.now() - start_; }
  void Restart() { start_ = clock_.now(); }

 private:
  const VirtualClock& clock_;
  Nanos start_;
};

}  // namespace lupine

#endif  // SRC_UTIL_VCLOCK_H_

// A fixed-size worker pool with a futures-based Submit API.
//
// Used to parallelize the fleet build/launch pipeline (examples/fleet,
// bench/ext_build_throughput): tasks are arbitrary callables, results come
// back through std::future, and exceptions thrown by a task propagate to
// future::get(). The pool is deliberately minimal — fixed size, FIFO queue,
// no work stealing — because fleet builds are coarse-grained (one kernel
// build per task) and the interesting contention lives in KernelCache's
// single-flight logic, not here.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace lupine {

class ThreadPool {
 public:
  explicit ThreadPool(size_t threads);
  // Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` and returns a future for its result. Submitting after the
  // destructor has begun is undefined.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  size_t size() const { return workers_.size(); }

  // hardware_concurrency, clamped to at least 1.
  static size_t DefaultThreads();

 private:
  void Worker();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace lupine

#endif  // SRC_UTIL_THREAD_POOL_H_

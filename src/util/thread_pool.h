// A fixed-size worker pool with a futures-based Submit API.
//
// Used to parallelize the fleet build/launch pipeline (examples/fleet,
// bench/ext_build_throughput): tasks are arbitrary callables, results come
// back through std::future, and exceptions thrown by a task propagate to
// future::get(). The pool is deliberately minimal — fixed size, FIFO queue,
// no work stealing — because fleet builds are coarse-grained (one kernel
// build per task) and the interesting contention lives in KernelCache's
// single-flight logic, not here.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace lupine {

class ThreadPool {
 public:
  explicit ThreadPool(size_t threads);
  // Equivalent to Shutdown(): drains every queued task, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Stops accepting work, runs every task already queued to completion
  // (drain semantics: nothing accepted is ever dropped), then joins the
  // workers. Idempotent; safe to call before destruction for an explicit
  // lifecycle point.
  void Shutdown();

  // Enqueues `fn` and returns a future for its result. After Shutdown has
  // begun the task is rejected instead of silently enqueued on a dead
  // queue: the returned future is valid but reports the rejection —
  // future::get() throws std::future_error (broken_promise), the
  // futures-idiomatic failed status. Check stopped() to avoid the throw.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard lock(mu_);
      if (stop_) {
        // Dropping the packaged task breaks its promise; the caller's
        // future.get() throws std::future_error(broken_promise).
        return future;
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  // True once Shutdown (or destruction) has begun: Submit will reject.
  bool stopped() const {
    std::lock_guard lock(mu_);
    return stop_;
  }

  size_t size() const { return workers_.size(); }

  // hardware_concurrency, clamped to at least 1.
  static size_t DefaultThreads();

 private:
  void Worker();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace lupine

#endif  // SRC_UTIL_THREAD_POOL_H_

// Size-aware LRU bookkeeping shared by the artifact caches.
//
// KernelCache and RootfsCache both need the same thing: a recency order over
// string keys, a running byte total, and an eviction sweep that walks
// least-recently-used entries until the cache is back under its budget while
// skipping entries that are pinned (still referenced outside the cache, or
// mid-flight). The tracker is bookkeeping only — it never owns the cached
// values and is deliberately not thread-safe; callers already hold their
// cache mutex around every operation.
#ifndef SRC_UTIL_LRU_H_
#define SRC_UTIL_LRU_H_

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/util/units.h"

namespace lupine {

// Retention limits for a cache. Zero means unlimited on that axis; a cache
// with both limits zero never evicts. A single entry larger than max_bytes
// is evicted right after insertion (the cache effectively refuses to retain
// it), unless it is pinned — pins always win over the budget.
struct CacheBudget {
  Bytes max_bytes = 0;
  size_t max_entries = 0;

  bool bounded() const { return max_bytes != 0 || max_entries != 0; }
};

class LruTracker {
 public:
  // Registers a new key as most-recently-used. The key must not be present.
  void Insert(const std::string& key, Bytes bytes) {
    order_.push_back(key);
    index_.emplace(key, Entry{std::prev(order_.end()), bytes});
    bytes_ += bytes;
  }

  // Marks an existing key most-recently-used. Unknown keys are ignored.
  void Touch(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return;
    }
    order_.splice(order_.end(), order_, it->second.position);
  }

  void Erase(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return;
    }
    bytes_ -= it->second.bytes;
    order_.erase(it->second.position);
    index_.erase(it);
  }

  Bytes bytes() const { return bytes_; }
  size_t entries() const { return index_.size(); }

  bool OverBudget(const CacheBudget& budget) const {
    return (budget.max_bytes != 0 && bytes_ > budget.max_bytes) ||
           (budget.max_entries != 0 && index_.size() > budget.max_entries);
  }

  // Walks victims least-recently-used first until the tracker is within
  // `budget` or only pinned entries remain. `pinned(key)` vetoes eviction of
  // one entry (it is skipped, not re-examined this sweep); `on_evict(key,
  // bytes)` runs after the tracker forgot the entry, so it may erase the
  // owning map's entry without re-entrancy concerns. Returns evictions.
  template <typename Pinned, typename OnEvict>
  size_t EvictOver(const CacheBudget& budget, Pinned&& pinned, OnEvict&& on_evict) {
    size_t evicted = 0;
    auto it = order_.begin();
    while (it != order_.end() && OverBudget(budget)) {
      if (pinned(*it)) {
        ++it;
        continue;
      }
      std::string key = std::move(*it);
      it = order_.erase(it);
      auto entry = index_.find(key);
      Bytes bytes = entry->second.bytes;
      bytes_ -= bytes;
      index_.erase(entry);
      on_evict(key, bytes);
      ++evicted;
    }
    return evicted;
  }

 private:
  struct Entry {
    std::list<std::string>::iterator position;
    Bytes bytes;
  };

  std::list<std::string> order_;  // Front = least recently used.
  std::unordered_map<std::string, Entry> index_;
  Bytes bytes_ = 0;
};

}  // namespace lupine

#endif  // SRC_UTIL_LRU_H_

#include "src/util/fault.h"

namespace lupine {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kMemAlloc:
      return "mem-alloc";
    case FaultSite::kVfsIo:
      return "vfs-io";
    case FaultSite::kRootfsCorrupt:
      return "rootfs-corrupt";
    case FaultSite::kBootDecompress:
      return "boot-decompress";
    case FaultSite::kBootInitcall:
      return "boot-initcall";
    case FaultSite::kNetRecvReset:
      return "net-recv-reset";
    case FaultSite::kNetSendDrop:
      return "net-send-drop";
    case FaultSite::kSyscallTransient:
      return "syscall-transient";
    case FaultSite::kAppFault:
      return "app-fault";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : armed_(!plan.rules.empty()),
      seed_(plan.seed),
      prng_(plan.seed),
      rules_(plan.rules),
      remaining_(plan.rules.size()) {
  for (size_t i = 0; i < rules_.size(); ++i) {
    remaining_[i] = rules_[i].max_fires;
  }
}

bool FaultInjector::Check(FaultSite site) {
  if (!armed_) {
    return false;
  }
  uint64_t n = ++evaluations_[static_cast<size_t>(site)];
  bool fire = false;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (rule.site != site || remaining_[i] == 0) {
      continue;
    }
    bool hit = false;
    if (rule.trigger_on != 0) {
      if (n == rule.trigger_on) {
        hit = true;
      } else if (rule.period != 0 && n > rule.trigger_on &&
                 (n - rule.trigger_on) % rule.period == 0) {
        hit = true;
      }
    }
    // The Bernoulli draw happens for every evaluation the rule observes
    // (hit or not), so the stream's alignment is independent of outcomes.
    if (rule.probability > 0.0 && prng_.NextBool(rule.probability)) {
      hit = true;
    }
    if (hit) {
      fire = true;
      if (remaining_[i] > 0) {
        --remaining_[i];
      }
    }
  }
  if (fire) {
    ++fires_[static_cast<size_t>(site)];
    log_.push_back({site, n});
  }
  return fire;
}

void FaultInjector::Reset() {
  prng_ = Prng(seed_);
  for (size_t i = 0; i < rules_.size(); ++i) {
    remaining_[i] = rules_[i].max_fires;
  }
  evaluations_.fill(0);
  fires_.fill(0);
  log_.clear();
}

}  // namespace lupine

#include "src/util/fault.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace lupine {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kMemAlloc:
      return "mem-alloc";
    case FaultSite::kVfsIo:
      return "vfs-io";
    case FaultSite::kRootfsCorrupt:
      return "rootfs-corrupt";
    case FaultSite::kBootDecompress:
      return "boot-decompress";
    case FaultSite::kBootInitcall:
      return "boot-initcall";
    case FaultSite::kNetRecvReset:
      return "net-recv-reset";
    case FaultSite::kNetSendDrop:
      return "net-send-drop";
    case FaultSite::kSyscallTransient:
      return "syscall-transient";
    case FaultSite::kAppFault:
      return "app-fault";
    case FaultSite::kBootStall:
      return "boot-stall";
    case FaultSite::kSnapshotRestore:
      return "snapshot-restore";
  }
  return "unknown";
}

Result<FaultSite> FaultSiteFromName(const std::string& name) {
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (name == FaultSiteName(site)) {
      return site;
    }
  }
  return Status(Err::kInval, "unknown fault site: " + name);
}

namespace {

// Formats a double so the round trip is exact for the values plans actually
// hold (probabilities): shortest form that parses back to the same double.
std::string FormatProbability(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", p);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, p);
    if (std::strtod(shorter, nullptr) == p) {
      return shorter;
    }
  }
  return buf;
}

// A deliberately small recursive-descent JSON reader: objects, arrays,
// strings (no escapes beyond \" and \\ — site names need none), numbers and
// the literals. Plans are trusted repo data files, not a hostile wire
// format, but malformed input still fails with a position, never crashes.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  Status Fail(const std::string& what) {
    return Status(Err::kInval,
                  "fault plan JSON: " + what + " at offset " + std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  Result<std::string> ReadString() {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        c = text_[pos_++];
        if (c != '"' && c != '\\') {
          return Fail("unsupported escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) {
      return Fail("unterminated string");
    }
    ++pos_;  // Closing quote.
    return out;
  }

  Result<double> ReadNumber() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected number");
    }
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number '" + token + "'");
    }
    return value;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

Status ParseRule(JsonReader& reader, FaultRule& rule) {
  if (!reader.Consume('{')) {
    return reader.Fail("expected rule object");
  }
  bool site_seen = false;
  if (!reader.Consume('}')) {
    do {
      auto key = reader.ReadString();
      if (!key.ok()) {
        return key.status();
      }
      if (!reader.Consume(':')) {
        return reader.Fail("expected ':' after \"" + *key + "\"");
      }
      if (*key == "site") {
        auto name = reader.ReadString();
        if (!name.ok()) {
          return name.status();
        }
        auto site = FaultSiteFromName(*name);
        if (!site.ok()) {
          return site.status();
        }
        rule.site = *site;
        site_seen = true;
        continue;
      }
      if (*key == "app") {
        auto app = reader.ReadString();
        if (!app.ok()) {
          return app.status();
        }
        rule.app = *app;
        continue;
      }
      auto number = reader.ReadNumber();
      if (!number.ok()) {
        return number.status();
      }
      if (*key == "trigger_on") {
        rule.trigger_on = static_cast<uint64_t>(*number);
      } else if (*key == "period") {
        rule.period = static_cast<uint64_t>(*number);
      } else if (*key == "probability") {
        rule.probability = *number;
      } else if (*key == "max_fires") {
        rule.max_fires = static_cast<int>(*number);
      } else if (*key == "stall_ns") {
        rule.stall = static_cast<Nanos>(*number);
      } else {
        return reader.Fail("unknown rule key \"" + *key + "\"");
      }
    } while (reader.Consume(','));
    if (!reader.Consume('}')) {
      return reader.Fail("expected '}' closing rule");
    }
  }
  if (!site_seen) {
    return reader.Fail("rule missing \"site\"");
  }
  return Status::Ok();
}

}  // namespace

std::string ToJson(const FaultPlan& plan) {
  std::string json = "{\"seed\": " + std::to_string(plan.seed) + ", \"rules\": [";
  for (size_t i = 0; i < plan.rules.size(); ++i) {
    const FaultRule& rule = plan.rules[i];
    json += i > 0 ? ", " : "";
    json += "{\"site\": \"" + std::string(FaultSiteName(rule.site)) + "\"";
    json += ", \"trigger_on\": " + std::to_string(rule.trigger_on);
    json += ", \"period\": " + std::to_string(rule.period);
    json += ", \"probability\": " + FormatProbability(rule.probability);
    json += ", \"max_fires\": " + std::to_string(rule.max_fires);
    // Non-default targeting fields only: existing plan files stay stable.
    if (!rule.app.empty()) {
      json += ", \"app\": \"" + rule.app + "\"";
    }
    if (rule.stall != 0) {
      json += ", \"stall_ns\": " + std::to_string(rule.stall);
    }
    json += "}";
  }
  json += "]}";
  return json;
}

Result<FaultPlan> FaultPlanFromJson(const std::string& json) {
  JsonReader reader(json);
  FaultPlan plan;
  if (!reader.Consume('{')) {
    return reader.Fail("expected top-level object");
  }
  if (!reader.Consume('}')) {
    do {
      auto key = reader.ReadString();
      if (!key.ok()) {
        return key.status();
      }
      if (!reader.Consume(':')) {
        return reader.Fail("expected ':' after \"" + *key + "\"");
      }
      if (*key == "seed") {
        auto seed = reader.ReadNumber();
        if (!seed.ok()) {
          return seed.status();
        }
        plan.seed = static_cast<uint64_t>(*seed);
      } else if (*key == "rules") {
        if (!reader.Consume('[')) {
          return reader.Fail("expected rules array");
        }
        if (!reader.Consume(']')) {
          do {
            FaultRule rule;
            if (Status s = ParseRule(reader, rule); !s.ok()) {
              return s;
            }
            plan.rules.push_back(rule);
          } while (reader.Consume(','));
          if (!reader.Consume(']')) {
            return reader.Fail("expected ']' closing rules");
          }
        }
      } else {
        return reader.Fail("unknown plan key \"" + *key + "\"");
      }
    } while (reader.Consume(','));
    if (!reader.Consume('}')) {
      return reader.Fail("expected '}' closing plan");
    }
  }
  if (!reader.AtEnd()) {
    return reader.Fail("trailing content after plan");
  }
  return plan;
}

FaultPlan FaultPlan::ForApp(const std::string& app) const {
  FaultPlan filtered;
  filtered.seed = seed;
  for (const FaultRule& rule : rules) {
    if (rule.app.empty() || rule.app == app) {
      filtered.rules.push_back(rule);
    }
  }
  return filtered;
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : armed_(!plan.rules.empty()),
      seed_(plan.seed),
      prng_(plan.seed),
      rules_(plan.rules),
      remaining_(plan.rules.size()) {
  for (size_t i = 0; i < rules_.size(); ++i) {
    remaining_[i] = rules_[i].max_fires;
  }
}

bool FaultInjector::Check(FaultSite site) {
  if (!armed_) {
    return false;
  }
  uint64_t n = ++evaluations_[static_cast<size_t>(site)];
  bool fire = false;
  Nanos stall = kBootStallPenalty;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (rule.site != site || remaining_[i] == 0) {
      continue;
    }
    bool hit = false;
    if (rule.trigger_on != 0) {
      if (n == rule.trigger_on) {
        hit = true;
      } else if (rule.period != 0 && n > rule.trigger_on &&
                 (n - rule.trigger_on) % rule.period == 0) {
        hit = true;
      }
    }
    // The Bernoulli draw happens for every evaluation the rule observes
    // (hit or not), so the stream's alignment is independent of outcomes.
    if (rule.probability > 0.0 && prng_.NextBool(rule.probability)) {
      hit = true;
    }
    if (hit) {
      fire = true;
      if (rule.stall > 0) {
        stall = rule.stall;
      }
      if (remaining_[i] > 0) {
        --remaining_[i];
      }
    }
  }
  if (fire) {
    ++fires_[static_cast<size_t>(site)];
    log_.push_back({site, n});
    if (site == FaultSite::kBootStall) {
      stall_penalty_ = stall;
    }
  }
  return fire;
}

void FaultInjector::Reset() {
  prng_ = Prng(seed_);
  for (size_t i = 0; i < rules_.size(); ++i) {
    remaining_[i] = rules_[i].max_fires;
  }
  evaluations_.fill(0);
  fires_.fill(0);
  log_.clear();
  stall_penalty_ = kBootStallPenalty;
}

}  // namespace lupine

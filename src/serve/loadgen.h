// Open-loop load generator for the serving front door.
//
// Requests arrive on the virtual clock, independent of service progress (the
// open-loop model: a slow server does not slow arrivals down, it builds
// queue). Each tenant is a Poisson source — exponential inter-arrivals at
// its configured rate, drawn from a per-tenant fork of one seed — and the
// merged trace is sorted by (arrival, tenant, per-tenant ordinal), so the
// trace is a pure function of (tenants, duration, seed): byte-identical
// however many workers later execute it.
#ifndef SRC_SERVE_LOADGEN_H_
#define SRC_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace lupine::serve {

struct TenantSpec {
  std::string app;               // Manifest name; also the tenant identity.
  double arrivals_per_sec = 1.0; // Poisson rate on the virtual clock.
};

struct Request {
  size_t index = 0;      // Ordinal in the merged trace.
  std::string app;       // Tenant the request is for.
  Nanos arrival = 0;     // Virtual arrival instant.
};

// Generates the merged arrival trace over [0, duration). Deterministic in
// (tenants, duration, seed); tenant order matters (each tenant forks the
// seed stream in order).
std::vector<Request> GenerateOpenLoopArrivals(const std::vector<TenantSpec>& tenants,
                                              Nanos duration, uint64_t seed);

}  // namespace lupine::serve

#endif  // SRC_SERVE_LOADGEN_H_

#include "src/serve/warm_pool.h"

#include <utility>

namespace lupine::serve {

void WarmPool::Park(const std::string& app, Parked guest) {
  std::lock_guard lock(mu_);
  pools_[app].push_back(std::move(guest));
  ++stats_.parked;
  ++stats_.live;
  stats_.peak_live = std::max(stats_.peak_live, stats_.live);
  if (metrics_ != nullptr) {
    metrics_->GetCounter("warmpool.parked").Increment();
    metrics_->GetGauge("warmpool.live").Set(static_cast<int64_t>(stats_.live));
  }
  EmitJournal("warm-park", app, stats_.live);
}

std::optional<WarmPool::Parked> WarmPool::TryTake(const std::string& app) {
  std::lock_guard lock(mu_);
  auto it = pools_.find(app);
  if (it == pools_.end() || it->second.empty()) {
    ++stats_.empty_takes;
    if (metrics_ != nullptr) {
      metrics_->GetCounter("warmpool.empty_takes").Increment();
    }
    return std::nullopt;
  }
  Parked guest = std::move(it->second.front());
  it->second.pop_front();
  ++stats_.taken;
  --stats_.live;
  if (metrics_ != nullptr) {
    metrics_->GetCounter("warmpool.taken").Increment();
    metrics_->GetGauge("warmpool.live").Set(static_cast<int64_t>(stats_.live));
  }
  EmitJournal("warm-take", app, stats_.live);
  return guest;
}

size_t WarmPool::Size(const std::string& app) const {
  std::lock_guard lock(mu_);
  auto it = pools_.find(app);
  return it == pools_.end() ? 0 : it->second.size();
}

WarmPool::Stats WarmPool::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void WarmPool::EmitJournal(const char* type, const std::string& app,
                           size_t live) const {
  if (journal_ == nullptr) {
    return;
  }
  telemetry::Event event;
  event.source = "warm-pool";
  event.type = type;
  event.schedule_scoped = true;  // Occupancy is host-timing bound.
  event.fields = {{"app", telemetry::FieldValue{app}},
                  {"live", telemetry::FieldValue{static_cast<uint64_t>(live)}}};
  journal_->Emit(std::move(event));
}

}  // namespace lupine::serve

#include "src/serve/front_door.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <utility>

#include "src/serve/warm_pool.h"
#include "src/util/prng.h"
#include "src/util/scheduler.h"
#include "src/vmm/vm.h"

namespace lupine::serve {
namespace {

uint64_t Fold(uint64_t seed, size_t index) {
  return seed ^ ((static_cast<uint64_t>(index) + 1) * 0x9E3779B97F4A7C15ull);
}

// Per-request service time: the app's mean scaled by +/-20% seeded jitter —
// a pure function of (seed, request index), never of scheduling.
Nanos ServiceTime(Nanos mean, uint64_t seed, size_t index) {
  Prng prng(Fold(seed, index));
  return static_cast<Nanos>(static_cast<double>(mean) * (0.8 + 0.4 * prng.NextDouble()));
}

// What the DES decided for one request; the execution phase replays the
// decision against the real subsystems.
struct Planned {
  enum Path { kWarm, kRestore, kRestoreFailCold, kCold };
  Path path = kCold;
  bool capture = false;     // This request publishes the app's snapshot.
  size_t warm_ordinal = 0;  // 1-based per-app take ordinal (kWarm only).
  int epoch = 0;            // Snapshot generation used (restore) or made.
  Nanos latency = 0;        // dispatch -> response complete.
};

const char* PathName(Planned::Path path) {
  switch (path) {
    case Planned::kWarm:
      return "warm";
    case Planned::kRestore:
      return "restore";
    case Planned::kRestoreFailCold:
      return "restore-fail-cold";
    case Planned::kCold:
      return "cold";
  }
  return "unknown";
}

constexpr size_t kPrebaked = static_cast<size_t>(-1);

Nanos Percentile(const std::vector<Nanos>& sorted, int pct) {
  if (sorted.empty()) {
    return 0;
  }
  return sorted[(static_cast<size_t>(pct) * (sorted.size() - 1)) / 100];
}

}  // namespace

Result<ServeResult> RunServing(core::KernelCache& cache, core::SnapshotCache& snapshots,
                               const ServeOptions& options) {
  if (options.tenants.empty()) {
    return Status(Err::kInval, "serving needs at least one tenant");
  }
  const auto wall_start = std::chrono::steady_clock::now();
  snapshots.set_quarantine(options.quarantine);

  // ---- Phase 1: prelude — measure per-app launch economics for real -------
  struct AppState {
    std::string app;
    core::KernelCache::ArtifactPtr artifact;
    std::string key;
    Nanos cold = 0;
    Nanos capture = 0;
    Nanos restore = 0;
    Nanos service = 0;
    // DES model state.
    size_t warm = 0;              // Parked ready guests.
    size_t refills_inflight = 0;  // Restores running off the request path.
    bool snapshot_ready = false;
    bool capture_inflight = false;
    Nanos poisoned_until = -1;
    int failures = 0;
    int recaptures = 0;
    int epoch = 0;                // Bumped on every (re)capture.
    FaultInjector injector;       // kSnapshotRestore schedule, DES-evaluated.
    // Plan bookkeeping for the execution phase.
    size_t takes = 0;                       // Warm takes so far.
    std::vector<int> refill_epochs;         // Epoch per successful refill.
    std::map<int, size_t> capture_request;  // epoch -> capturing trace index.
  };
  std::map<std::string, size_t> app_index;
  std::vector<AppState> states;
  for (const TenantSpec& tenant : options.tenants) {
    if (app_index.count(tenant.app) > 0) {
      continue;
    }
    app_index.emplace(tenant.app, states.size());
    AppState s;
    s.app = tenant.app;
    auto artifact = cache.GetOrBuild(tenant.app);
    if (!artifact.ok()) {
      return artifact.status();
    }
    s.artifact = *artifact;
    s.key = core::SnapshotCache::Key(s.artifact->fingerprint, s.artifact->rootfs_key,
                                     options.memory);
    auto vm = s.artifact->Launch(options.memory);
    if (Status st = vm->Boot(); !st.ok()) {
      return st;
    }
    s.cold = vm->boot_report().to_init;
    auto captured = guestos::CaptureSnapshot(vm->kernel(), s.key, s.app,
                                             s.artifact->kernel, s.artifact->boot_plan,
                                             s.artifact->rootfs);
    if (!captured.ok()) {
      return captured.status();
    }
    s.capture = captured.value().capture_ns;
    // Round-trip one restore for real: proves the digest matches (state
    // equivalence) and yields the restore-path launch cost as the restored
    // VM reports it, not as the model promises it.
    {
      auto restored = vmm::Vm::Restore(captured.value());
      if (!restored.ok()) {
        return restored.status();
      }
      s.restore = (*restored)->boot_report().to_init;
    }
    s.service = options.default_service_ns;
    if (options.run_workloads) {
      // Serial, fiber-running measurement of one service execution.
      auto probe = s.artifact->Launch(options.memory);
      if (Status st = probe->Boot(); st.ok()) {
        const Nanos before = probe->kernel().clock().now();
        (void)probe->RunToCompletion();
        const Nanos ran = probe->kernel().clock().now() - before;
        if (ran > 0) {
          s.service = ran;
        }
      }
    }
    if (options.prebake_snapshots) {
      snapshots.Put(captured.take());
      s.snapshot_ready = true;
      s.capture_request.emplace(0, kPrebaked);
    }
    if (options.fault_plan != nullptr) {
      FaultPlan forked = options.fault_plan->ForApp(s.app);
      forked.seed = Fold(options.fault_plan->seed, states.size());
      s.injector = FaultInjector(forked);
    }
    states.push_back(std::move(s));
  }

  ServeResult result;
  for (const AppState& s : states) {
    AppServeCost cost;
    cost.app = s.app;
    cost.cold_ns = s.cold;
    cost.capture_ns = s.capture;
    cost.restore_ns = s.restore;
    cost.service_ns = s.service;
    cost.restore_ratio =
        s.cold > 0 ? static_cast<double>(s.restore) / static_cast<double>(s.cold) : 0.0;
    result.costs.push_back(std::move(cost));
  }

  // ---- Phase 2: discrete-event simulation over the arrival trace ----------
  const std::vector<Request> trace =
      GenerateOpenLoopArrivals(options.tenants, options.duration, options.seed);
  result.requests = trace.size();
  std::vector<Planned> plan(trace.size());
  result.records.resize(trace.size());

  enum class Ev { kArrival, kDone, kRefillOk, kRefillFail, kCaptureDone };
  struct Event {
    Nanos at;
    uint64_t seq;  // Tie-break: push order.
    Ev kind;
    size_t idx;  // Request index (kArrival/kDone) or app index (the rest).
    int epoch;   // Refill events: the snapshot generation restored from.
  };
  auto later = [](const Event& a, const Event& b) {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  };
  std::priority_queue<Event, std::vector<Event>, decltype(later)> events(later);
  uint64_t seq = 0;
  for (const Request& r : trace) {
    events.push({r.arrival, seq++, Ev::kArrival, r.index, 0});
  }

  size_t free_slots = std::max<size_t>(1, options.slots);
  std::deque<size_t> waiting;  // FIFO slot queue.
  std::vector<std::pair<Nanos, double>> queue_deltas;
  std::vector<std::pair<Nanos, double>> inflight_deltas;
  std::vector<std::pair<Nanos, double>> warm_deltas;

  auto emit = [&](Nanos at, const char* type, const std::string& app,
                  std::vector<telemetry::Field> fields = {}) {
    if (options.journal == nullptr) {
      return;
    }
    std::vector<telemetry::Field> all;
    all.reserve(fields.size() + 1);
    all.push_back({"app", telemetry::FieldValue{app}});
    for (telemetry::Field& field : fields) {
      all.push_back(std::move(field));
    }
    options.journal->Emit(at, "serve", type, std::move(all));
  };

  // Is the app's snapshot available for a restore right now? Handles the
  // poison TTL and the half-open probe (mirrors SnapshotCache::Find).
  auto usable = [&](AppState& s, Nanos now, bool count_denial) {
    if (s.poisoned_until >= 0) {
      if (now < s.poisoned_until) {
        if (count_denial) {
          ++result.quarantine_denials;
        }
        return false;
      }
      s.poisoned_until = -1;
      s.failures = 0;
      s.recaptures = options.quarantine.recapture_limit;
      ++result.probes;
      emit(now, "snapshot-probe", s.app);
    }
    return s.snapshot_ready;
  };

  // One restore failure against the app's snapshot (mirrors
  // SnapshotCache::ReportRestoreFailure: drop-once, then poison).
  auto strike = [&](AppState& s, Nanos now) {
    if (!options.quarantine.enabled || s.poisoned_until >= 0) {
      return;
    }
    if (++s.failures < options.quarantine.failures_per_strike) {
      return;
    }
    s.failures = 0;
    if (s.recaptures < options.quarantine.recapture_limit) {
      ++s.recaptures;
      ++result.quarantine_drops;
      s.snapshot_ready = false;
      emit(now, "snapshot-drop", s.app);
      return;
    }
    s.poisoned_until = now + options.quarantine.poison_ttl;
    ++result.quarantine_poisoned;
    s.snapshot_ready = false;
    emit(now, "snapshot-poison", s.app);
  };

  // Keep the app's pool heading toward warm_target, bounded by the refill
  // concurrency. Restore faults are evaluated when the refill is scheduled
  // (one injector stream per app, consumed in DES order — deterministic).
  auto top_up = [&](size_t app, Nanos now) {
    AppState& s = states[app];
    while (s.warm + s.refills_inflight < options.warm_target &&
           s.refills_inflight < options.refill_concurrency &&
           usable(s, now, /*count_denial=*/false)) {
      ++s.refills_inflight;
      const bool fail = s.injector.armed() && s.injector.Check(FaultSite::kSnapshotRestore);
      events.push({now + s.restore, seq++, fail ? Ev::kRefillFail : Ev::kRefillOk, app,
                   s.epoch});
    }
  };

  auto maybe_capture = [&](AppState& s, size_t app, size_t req, Nanos ready_at,
                           Planned& p) -> Nanos {
    if (s.snapshot_ready || s.capture_inflight || s.poisoned_until >= 0) {
      return 0;
    }
    s.capture_inflight = true;
    p.capture = true;
    p.epoch = ++s.epoch;
    s.capture_request.emplace(s.epoch, req);
    ++result.captures;
    events.push({ready_at + s.capture, seq++, Ev::kCaptureDone, app, s.epoch});
    return s.capture;
  };

  std::function<void(size_t, Nanos)> dispatch = [&](size_t req, Nanos now) {
    const Request& r = trace[req];
    const size_t app = app_index.at(r.app);
    AppState& s = states[app];
    Planned& p = plan[req];
    --free_slots;
    inflight_deltas.emplace_back(now, 1.0);
    Nanos latency = 0;
    if (s.warm > 0) {
      --s.warm;
      warm_deltas.emplace_back(now, -1.0);
      ++result.warm_hits;
      p.path = Planned::kWarm;
      p.warm_ordinal = ++s.takes;
      latency = options.warm_dispatch_ns + ServiceTime(s.service, options.seed, req);
      emit(now, "warm-take", s.app,
           {{"request", telemetry::FieldValue{static_cast<uint64_t>(req)}}});
      top_up(app, now);
    } else if (usable(s, now, /*count_denial=*/true)) {
      const bool fail = s.injector.armed() && s.injector.Check(FaultSite::kSnapshotRestore);
      if (fail) {
        // The on-demand restore blows up: pay it, report it, cold-boot the
        // request (and recapture if the entry was dropped, not poisoned).
        ++result.restore_failures;
        strike(s, now);
        emit(now + s.restore, "snapshot-restore", s.app,
             {{"ok", telemetry::FieldValue{false}}});
        p.path = Planned::kRestoreFailCold;
        ++result.cold_boots;
        latency = s.restore + s.cold;
        latency += maybe_capture(s, app, req, now + latency, p);
        latency += ServiceTime(s.service, options.seed, req);
      } else {
        ++result.restores;
        p.path = Planned::kRestore;
        p.epoch = s.epoch;
        emit(now + s.restore, "snapshot-restore", s.app,
             {{"ok", telemetry::FieldValue{true}}});
        latency = s.restore + ServiceTime(s.service, options.seed, req);
        top_up(app, now);
      }
    } else {
      ++result.cold_boots;
      p.path = Planned::kCold;
      latency = s.cold;
      latency += maybe_capture(s, app, req, now + s.cold, p);
      latency += ServiceTime(s.service, options.seed, req);
    }
    p.latency = latency;
    RequestRecord& rec = result.records[req];
    rec.index = req;
    rec.app = r.app;
    rec.arrival = r.arrival;
    rec.dispatch = now;
    rec.ttfr = now + latency - r.arrival;
    rec.path = PathName(p.path);
    events.push({now + latency, seq++, Ev::kDone, req, 0});
  };

  if (options.prebake_snapshots) {
    for (size_t app = 0; app < states.size(); ++app) {
      top_up(app, 0);
    }
  }
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    result.virtual_end = std::max(result.virtual_end, ev.at);
    switch (ev.kind) {
      case Ev::kArrival:
        if (free_slots > 0 && waiting.empty()) {
          dispatch(ev.idx, ev.at);
        } else {
          waiting.push_back(ev.idx);
          ++result.queue_waits;
          queue_deltas.emplace_back(ev.at, 1.0);
        }
        break;
      case Ev::kDone:
        ++free_slots;
        inflight_deltas.emplace_back(ev.at, -1.0);
        if (!waiting.empty()) {
          const size_t next = waiting.front();
          waiting.pop_front();
          queue_deltas.emplace_back(ev.at, -1.0);
          dispatch(next, ev.at);
        }
        break;
      case Ev::kRefillOk: {
        AppState& s = states[ev.idx];
        --s.refills_inflight;
        ++s.warm;
        warm_deltas.emplace_back(ev.at, 1.0);
        ++result.refills;
        s.refill_epochs.push_back(ev.epoch);
        emit(ev.at, "warm-park", s.app,
             {{"live", telemetry::FieldValue{static_cast<uint64_t>(s.warm)}}});
        top_up(ev.idx, ev.at);
        break;
      }
      case Ev::kRefillFail: {
        AppState& s = states[ev.idx];
        --s.refills_inflight;
        ++result.restore_failures;
        strike(s, ev.at);
        emit(ev.at, "snapshot-restore", s.app, {{"ok", telemetry::FieldValue{false}}});
        top_up(ev.idx, ev.at);  // Still usable (not struck out)? Try again.
        break;
      }
      case Ev::kCaptureDone: {
        AppState& s = states[ev.idx];
        s.capture_inflight = false;
        if (s.poisoned_until < 0 && ev.epoch == s.epoch) {
          s.snapshot_ready = true;
          emit(ev.at, "snapshot-capture", s.app);
          top_up(ev.idx, ev.at);
        }
        break;
      }
    }
  }

  // Figures. TTFR percentiles over every request; queue-wait p99 over the
  // requests that actually waited.
  {
    std::vector<Nanos> ttfrs;
    std::vector<Nanos> waits;
    ttfrs.reserve(result.records.size());
    double total = 0.0;
    for (const RequestRecord& rec : result.records) {
      ttfrs.push_back(rec.ttfr);
      total += static_cast<double>(rec.ttfr);
      if (rec.dispatch > rec.arrival) {
        waits.push_back(rec.dispatch - rec.arrival);
      }
    }
    std::sort(ttfrs.begin(), ttfrs.end());
    std::sort(waits.begin(), waits.end());
    result.ttfr_p50 = Percentile(ttfrs, 50);
    result.ttfr_p99 = Percentile(ttfrs, 99);
    result.ttfr_max = ttfrs.empty() ? 0 : ttfrs.back();
    result.ttfr_mean_ns = ttfrs.empty() ? 0.0 : total / static_cast<double>(ttfrs.size());
    result.queue_wait_p99 = Percentile(waits, 99);
  }
  if (result.requests > 0) {
    result.warm_hit_ratio =
        static_cast<double>(result.warm_hits) / static_cast<double>(result.requests);
  }

  // DES counter tracks (deterministic Perfetto ph:"C" inputs).
  {
    auto fold = [](std::string name, std::vector<std::pair<Nanos, double>> deltas) {
      std::sort(deltas.begin(), deltas.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      telemetry::CounterSeries series;
      series.name = std::move(name);
      double level = 0.0;
      for (size_t i = 0; i < deltas.size();) {
        const Nanos at = deltas[i].first;
        for (; i < deltas.size() && deltas[i].first == at; ++i) {
          level += deltas[i].second;
        }
        series.points.emplace_back(at, level);
      }
      return series;
    };
    result.counter_tracks.push_back(fold("serve.queue_depth", std::move(queue_deltas)));
    result.counter_tracks.push_back(fold("serve.inflight", std::move(inflight_deltas)));
    result.counter_tracks.push_back(fold("serve.warm_live", std::move(warm_deltas)));
  }

  // ---- Phase 3: host execution against the real subsystems ----------------
  if (options.execute && !trace.empty()) {
    WorkStealingScheduler::Options sched_options;
    sched_options.workers = std::max<size_t>(1, options.workers);
    sched_options.stealing = true;
    WorkStealingScheduler scheduler(sched_options);
    WarmPool pool;
    pool.set_metrics(options.metrics);
    pool.set_journal(options.journal);
    std::unique_ptr<vmm::FleetAdmissionController> admission;
    if (options.host_budget > 0) {
      admission = std::make_unique<vmm::FleetAdmissionController>(
          vmm::AdmissionPolicy{options.host_budget, 0});
      admission->set_metrics(options.metrics);
      admission->set_journal(options.journal);
    }
    std::atomic<size_t> x_warm{0};
    std::atomic<size_t> x_restore{0};
    std::atomic<size_t> x_cold{0};
    std::atomic<size_t> x_capture{0};
    std::atomic<size_t> x_refill{0};
    std::atomic<size_t> x_diverge{0};
    std::atomic<size_t> x_denied{0};

    std::vector<std::vector<size_t>> refill_ids(states.size());
    std::vector<size_t> request_ids(trace.size());

    auto try_admit = [&](const std::string& app) {
      vmm::Grant grant;
      if (admission != nullptr) {
        grant = admission->TryAdmit({app, options.memory, 0});
        if (!grant.valid()) {
          x_denied.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return grant;
    };

    // Refill task `ordinal` (0-based) for `app`: chained on the previous
    // refill and on the request that captured its snapshot epoch, so
    // Find() hits and the park precedes the take that depends on it.
    auto submit_refill = [&](size_t app, size_t ordinal) {
      AppState& s = states[app];
      WorkStealingScheduler::TaskSpec spec;
      spec.label = "refill:" + s.app + "#" + std::to_string(ordinal);
      spec.home = static_cast<int>((app + ordinal) % sched_options.workers);
      if (ordinal > 0) {
        spec.deps.push_back(refill_ids[app][ordinal - 1]);
      }
      const int epoch = s.refill_epochs[ordinal];
      auto owner = s.capture_request.find(epoch);
      if (owner != s.capture_request.end() && owner->second != kPrebaked) {
        spec.deps.push_back(request_ids[owner->second]);
      }
      const Nanos cost = s.restore;
      const std::string key = s.key;
      const std::string app_name = s.app;
      spec.body = [&snapshots, &pool, &try_admit, &x_refill, &x_diverge, key, app_name,
                   cost]() -> Nanos {
        core::SnapshotCache::SnapshotPtr snap = snapshots.Find(key);
        if (snap == nullptr) {
          x_diverge.fetch_add(1, std::memory_order_relaxed);
          return cost;
        }
        vmm::Grant grant = try_admit(app_name);
        auto restored = vmm::Vm::Restore(*snap);
        if (!restored.ok()) {
          snapshots.RecordRestore(*snap, false);
          x_diverge.fetch_add(1, std::memory_order_relaxed);
          return cost;
        }
        snapshots.RecordRestore(*snap, true);
        x_refill.fetch_add(1, std::memory_order_relaxed);
        pool.Park(app_name, {restored.take(), std::move(grant), snap->restore_ns});
        return cost;
      };
      refill_ids[app].push_back(scheduler.Submit(std::move(spec)));
    };

    for (size_t i = 0; i < trace.size(); ++i) {
      const Request& r = trace[i];
      const size_t app = app_index.at(r.app);
      AppState& s = states[app];
      const Planned& p = plan[i];
      if (p.path == Planned::kWarm) {
        // The k-th warm take rides on the k-th successful refill.
        while (refill_ids[app].size() < p.warm_ordinal) {
          submit_refill(app, refill_ids[app].size());
        }
      }
      WorkStealingScheduler::TaskSpec spec;
      spec.label = "req:" + r.app + "#" + std::to_string(i);
      spec.home = static_cast<int>(i % sched_options.workers);
      spec.release = r.arrival;  // Open-loop arrival, replay-level gating.
      if (p.path == Planned::kWarm) {
        spec.deps.push_back(refill_ids[app][p.warm_ordinal - 1]);
      } else if (p.path == Planned::kRestore) {
        auto owner = s.capture_request.find(p.epoch);
        if (owner != s.capture_request.end() && owner->second != kPrebaked) {
          spec.deps.push_back(request_ids[owner->second]);
        }
      }
      const Planned::Path path = p.path;
      const bool capture = p.capture;
      const Nanos latency = p.latency;
      const std::string key = s.key;
      const std::string app_name = r.app;
      core::KernelCache::ArtifactPtr artifact = s.artifact;
      const Bytes memory = options.memory;
      spec.body = [&snapshots, &pool, &try_admit, &x_warm, &x_restore, &x_cold,
                   &x_capture, &x_diverge, path, capture, latency, key, app_name,
                   artifact, memory]() -> Nanos {
        vmm::Grant grant = try_admit(app_name);
        switch (path) {
          case Planned::kWarm: {
            auto guest = pool.TryTake(app_name);
            if (!guest.has_value()) {
              x_diverge.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            x_warm.fetch_add(1, std::memory_order_relaxed);
            // The parked guest serves this request and dies with it (its
            // grant releases here too).
            break;
          }
          case Planned::kRestore: {
            core::SnapshotCache::SnapshotPtr snap = snapshots.Find(key);
            if (snap == nullptr) {
              x_diverge.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            auto restored = vmm::Vm::Restore(*snap);
            snapshots.RecordRestore(*snap, restored.ok());
            if (!restored.ok()) {
              x_diverge.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            x_restore.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          case Planned::kRestoreFailCold:
          case Planned::kCold: {
            auto vm = artifact->Launch(memory);
            if (Status st = vm->Boot(); !st.ok()) {
              x_diverge.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            x_cold.fetch_add(1, std::memory_order_relaxed);
            if (capture && !snapshots.Contains(key)) {
              auto captured = guestos::CaptureSnapshot(vm->kernel(), key, app_name,
                                                       artifact->kernel,
                                                       artifact->boot_plan,
                                                       artifact->rootfs);
              if (captured.ok()) {
                snapshots.Put(captured.take());
                x_capture.fetch_add(1, std::memory_order_relaxed);
              }
            }
            break;
          }
        }
        return latency;
      };
      request_ids[i] = scheduler.Submit(std::move(spec));
    }
    // Refills the DES scheduled past the last warm take still run — they
    // park the steady-state pool nobody happened to claim.
    for (size_t app = 0; app < states.size(); ++app) {
      while (refill_ids[app].size() < states[app].refill_epochs.size()) {
        submit_refill(app, refill_ids[app].size());
      }
    }

    const WorkStealingScheduler::Report report = scheduler.Run();
    result.steals = report.steals;
    result.exec_makespan = report.makespan;
    result.exec_warm_takes = x_warm.load();
    result.exec_restores = x_restore.load();
    result.exec_cold_boots = x_cold.load();
    result.exec_captures = x_capture.load();
    result.exec_refills = x_refill.load();
    result.exec_divergence = x_diverge.load();
    result.exec_admission_denied = x_denied.load();
  }

  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();

  if (options.metrics != nullptr) {
    telemetry::MetricRegistry& m = *options.metrics;
    m.GetCounter("serve.requests").Increment(result.requests);
    m.GetCounter("serve.warm_hits").Increment(result.warm_hits);
    m.GetCounter("serve.restores").Increment(result.restores);
    m.GetCounter("serve.cold_boots").Increment(result.cold_boots);
    m.GetCounter("serve.captures").Increment(result.captures);
    m.GetCounter("serve.refills").Increment(result.refills);
    m.GetCounter("serve.restore_failures").Increment(result.restore_failures);
    m.GetCounter("serve.queue_waits").Increment(result.queue_waits);
    for (const RequestRecord& rec : result.records) {
      m.GetHistogram("serve.ttfr_ns", {{"app", rec.app}})
          .Observe(static_cast<double>(rec.ttfr));
    }
    // Basis points: gauges are integers.
    m.GetGauge("serve.warm_hit_bp")
        .Set(static_cast<int64_t>(result.warm_hit_ratio * 10000.0));
    m.GetGauge("serve.ttfr_p50_ns").Set(static_cast<int64_t>(result.ttfr_p50));
    m.GetGauge("serve.ttfr_p99_ns").Set(static_cast<int64_t>(result.ttfr_p99));
    snapshots.PublishMetrics(m);
  }
  return result;
}

}  // namespace lupine::serve

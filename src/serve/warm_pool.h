// WarmPool: parked, restore-booted guests waiting for requests.
//
// The serving front door hides launch cost by keeping a small per-app pool
// of already-restored VMs, each still holding its admission Grant (the RAM
// is committed while the guest is parked — a parked pool is paid-for
// capacity, which is exactly why warm_target is small). A request that
// finds a warm guest dispatches at warm-dispatch cost; refills happen off
// the request path. Parked guests have never run a fiber (restore replays
// Boot+StartInit only), so parking on one host thread and running on
// another is safe — the fiber is created by whichever thread finally runs
// the guest. Every parked guest is single-use: TryTake transfers ownership
// out and the VM dies with the request that took it.
#ifndef SRC_SERVE_WARM_POOL_H_
#define SRC_SERVE_WARM_POOL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/vmm/admission.h"
#include "src/vmm/vm.h"

namespace lupine::serve {

class WarmPool {
 public:
  struct Parked {
    std::unique_ptr<vmm::Vm> vm;
    vmm::Grant grant;      // Held for the guest's whole parked + serving life.
    Nanos launch_ns = 0;   // What the launch cost (restore or cold boot).
  };

  WarmPool() = default;
  WarmPool(const WarmPool&) = delete;
  WarmPool& operator=(const WarmPool&) = delete;

  // Parks a ready guest for `app`. FIFO per app: the oldest parked guest is
  // taken first.
  void Park(const std::string& app, Parked guest);

  // Takes the oldest parked guest for `app`, or nullopt when the pool is
  // empty for that app (the caller falls back to a cold boot).
  std::optional<Parked> TryTake(const std::string& app);

  // Parked guests for `app` right now.
  size_t Size(const std::string& app) const;

  struct Stats {
    uint64_t parked = 0;       // Lifetime Park() calls.
    uint64_t taken = 0;        // Lifetime successful TryTake() calls.
    uint64_t empty_takes = 0;  // TryTake() calls that found nothing.
    size_t live = 0;           // Currently parked across all apps.
    size_t peak_live = 0;
  };
  Stats stats() const;

  // Optional, non-owning metric sink: `warmpool.parked` / `warmpool.taken` /
  // `warmpool.empty_takes` counters and a `warmpool.live` gauge. Must
  // outlive the pool.
  void set_metrics(telemetry::MetricRegistry* metrics) { metrics_ = metrics; }

  // Optional, non-owning flight-recorder sink: warm-park / warm-take events
  // under source "warm-pool". Pool occupancy is host-timing dependent, so
  // the events are schedule-scoped (full export / Perfetto only). Must
  // outlive the pool.
  void set_journal(telemetry::Journal* journal) { journal_ = journal; }

 private:
  void EmitJournal(const char* type, const std::string& app, size_t live) const;

  telemetry::MetricRegistry* metrics_ = nullptr;
  telemetry::Journal* journal_ = nullptr;

  mutable std::mutex mu_;
  std::map<std::string, std::deque<Parked>> pools_;
  Stats stats_;
};

}  // namespace lupine::serve

#endif  // SRC_SERVE_WARM_POOL_H_

// The serving front door: request-driven serving over snapshot/restore boot
// and a warm pool — cutting cold-start out of the request path.
//
// RunServing turns the repo's boot machinery into a request-serving system
// and measures what a tenant actually feels: time-to-first-response (TTFR)
// under an open-loop arrival process. It runs in three phases:
//
//   1. Prelude (real execution, serial). For every distinct app: build the
//      artifact, cold-boot one guest to measure boot cost, capture its
//      post-init snapshot (guestos::CaptureSnapshot) to price capture and
//      restore, and verify one Vm::Restore round-trips the state digest.
//      The per-app cost table — cold vs capture vs restore — is the
//      "restore is N x cheaper than boot" figure, measured, not assumed.
//
//   2. Discrete-event simulation (sequential, virtual clock). The arrival
//      trace (loadgen) is played against a model of the serving host:
//      `slots` concurrent instances, a per-app warm pool refilled
//      asynchronously (`warm_target`, `refill_concurrency`), snapshot
//      restore on-demand when the pool is dry, cold boot (plus capture)
//      when no snapshot exists, and the SnapshotQuarantine
//      drop-once-then-poison state machine driven by injected
//      kSnapshotRestore faults. Every reported figure — TTFR percentiles,
//      warm-hit ratio, per-request records, canonical journal events
//      (source "serve") — comes from this phase, so the numbers are a pure
//      function of (options, costs) and byte-identical across worker
//      counts by construction.
//
//   3. Host execution (optional, `execute`). The DES-planned request and
//      refill tasks run on util/scheduler worker threads against the REAL
//      subsystems — WarmPool, SnapshotCache, Vm::Restore, and non-blocking
//      FleetAdmissionController::TryAdmit — with arrivals as task release
//      times. Refill k chains on refill k-1 (per app) and the k-th
//      warm-planned request depends on the k-th refill, so a warm take
//      finds its guest by construction; any mismatch counts as a
//      divergence instead of corrupting the figures. Bodies never run
//      guest fibers (boot/restore only), which keeps the storm suites
//      tsan-compatible. Execution yields informational telemetry only
//      (steals, wall clock, schedule-scoped events).
#ifndef SRC_SERVE_FRONT_DOOR_H_
#define SRC_SERVE_FRONT_DOOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/multik.h"
#include "src/core/snapshot_cache.h"
#include "src/serve/loadgen.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/util/fault.h"

namespace lupine::serve {

struct ServeOptions {
  std::vector<TenantSpec> tenants;   // Empty = invalid (nothing to serve).
  Nanos duration = Seconds(2);       // Arrival window on the virtual clock.
  uint64_t seed = 42;                // Arrival + service-jitter seed.
  size_t slots = 8;                  // Concurrent serving instances.
  size_t warm_target = 2;            // Parked guests to keep per app.
  size_t refill_concurrency = 2;     // Concurrent restores per app, off-path.
  size_t workers = 1;                // Host-execution worker threads.
  bool execute = true;               // Run phase 3 (real subsystems).
  // Run each app's workload once in the prelude to measure service time
  // (fibers, serial, not tsan-friendly). false: default_service_ns.
  bool run_workloads = false;
  Nanos default_service_ns = Millis(3);
  Nanos warm_dispatch_ns = Micros(50);  // Handoff cost for a parked guest.
  // Capture every app's snapshot in the prelude (store it in `snapshots`),
  // so the run starts with a full cache and warm pools fill from t=0.
  // false: the first cold request per app captures, like a fresh fleet.
  bool prebake_snapshots = false;
  Bytes memory = 128 * kMiB;         // Per-guest RAM.
  // Host RAM for the execution phase's non-blocking admission gate
  // (TryAdmit per launch; denials are informational). 0 = unlimited.
  Bytes host_budget = 0;
  // Restore-failure containment, mirrored by the DES model and applied to
  // `snapshots` for the execution phase.
  core::SnapshotQuarantine quarantine;
  // Optional fault schedule; kSnapshotRestore rules drive restore failures
  // (per-app injectors forked off plan.seed, DES-evaluated — deterministic).
  const FaultPlan* fault_plan = nullptr;
  // Optional sinks (non-owning, must outlive the call). Canonical "serve"
  // events land at DES virtual times with schedule_scoped=false; the
  // execution phase adds schedule-scoped warm-pool/admission/cache events.
  telemetry::MetricRegistry* metrics = nullptr;
  telemetry::Journal* journal = nullptr;
};

struct RequestRecord {
  size_t index = 0;
  std::string app;
  Nanos arrival = 0;
  Nanos dispatch = 0;   // When a slot picked it up.
  Nanos ttfr = 0;       // arrival -> response complete.
  const char* path = "";  // warm | restore | cold | restore-fail-cold.
};

// Per-app measured launch economics (phase 1).
struct AppServeCost {
  std::string app;
  Nanos cold_ns = 0;     // Full boot to_init.
  Nanos capture_ns = 0;  // Snapshot serialization.
  Nanos restore_ns = 0;  // Restore-path launch (verified by a real restore).
  Nanos service_ns = 0;  // Mean service time used by the DES.
  double restore_ratio = 0.0;  // restore_ns / cold_ns.
};

struct ServeResult {
  // Deterministic serving figures (phases 1-2).
  size_t requests = 0;
  size_t warm_hits = 0;
  size_t restores = 0;          // On-demand restore launches (requests).
  size_t cold_boots = 0;        // Cold launches (incl. restore-fail fallback).
  size_t captures = 0;          // Snapshot publications during the run.
  size_t refills = 0;           // Successful off-path pool refills.
  size_t restore_failures = 0;  // Failed restores (on-demand + refill).
  size_t queue_waits = 0;       // Requests that waited for a slot.
  size_t quarantine_drops = 0;
  size_t quarantine_poisoned = 0;
  size_t quarantine_denials = 0;
  size_t probes = 0;            // Half-open probes after a poison TTL.
  double warm_hit_ratio = 0.0;  // warm_hits / requests.
  Nanos ttfr_p50 = 0;
  Nanos ttfr_p99 = 0;
  Nanos ttfr_max = 0;
  double ttfr_mean_ns = 0.0;
  Nanos queue_wait_p99 = 0;
  Nanos virtual_end = 0;        // Last response completion.
  std::vector<AppServeCost> costs;
  std::vector<RequestRecord> records;
  // DES counter tracks (queue depth, instances in flight, warm guests) for
  // the merged Perfetto document — deterministic like the records.
  std::vector<telemetry::CounterSeries> counter_tracks;

  // Host-execution telemetry (informational; zero when execute=false).
  size_t exec_warm_takes = 0;
  size_t exec_restores = 0;
  size_t exec_cold_boots = 0;
  size_t exec_captures = 0;
  size_t exec_refills = 0;
  size_t exec_divergence = 0;        // Planned path vs real-subsystem outcome.
  size_t exec_admission_denied = 0;  // TryAdmit denials (unlimited budget: 0).
  size_t steals = 0;                 // Replay steals across request tasks.
  Nanos exec_makespan = 0;           // Replay makespan of the task graph.
  double wall_ms = 0.0;
};

// Serves the configured tenant mix. `cache` provides artifacts; `snapshots`
// is the real snapshot store the prelude and execution phase exercise (its
// quarantine policy is set from options.quarantine). Fails only when an
// artifact cannot be built or a tenant list is empty.
Result<ServeResult> RunServing(core::KernelCache& cache, core::SnapshotCache& snapshots,
                               const ServeOptions& options);

}  // namespace lupine::serve

#endif  // SRC_SERVE_FRONT_DOOR_H_

#include "src/serve/loadgen.h"

#include <algorithm>
#include <cmath>

#include "src/util/prng.h"

namespace lupine::serve {

std::vector<Request> GenerateOpenLoopArrivals(const std::vector<TenantSpec>& tenants,
                                              Nanos duration, uint64_t seed) {
  Prng root(seed);
  struct Tagged {
    Nanos arrival;
    size_t tenant;   // Index into `tenants` — the merge tie-break.
    std::string app;
  };
  std::vector<Tagged> merged;
  for (size_t t = 0; t < tenants.size(); ++t) {
    Prng stream = root.Fork();
    if (tenants[t].arrivals_per_sec <= 0.0) {
      continue;
    }
    const double mean_gap_ns = 1e9 / tenants[t].arrivals_per_sec;
    Nanos at = 0;
    for (;;) {
      // Exponential inter-arrival via inverse transform; 1-u keeps the log
      // argument in (0, 1] (NextDouble may return 0).
      const double u = stream.NextDouble();
      const double gap = -std::log(1.0 - u) * mean_gap_ns;
      at += static_cast<Nanos>(gap) + 1;  // +1: arrivals strictly advance.
      if (at >= duration) {
        break;
      }
      merged.push_back({at, t, tenants[t].app});
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Tagged& a, const Tagged& b) {
    if (a.arrival != b.arrival) {
      return a.arrival < b.arrival;
    }
    return a.tenant < b.tenant;
  });
  std::vector<Request> trace;
  trace.reserve(merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    trace.push_back({i, std::move(merged[i].app), merged[i].arrival});
  }
  return trace;
}

}  // namespace lupine::serve

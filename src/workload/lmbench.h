// lmbench-style microbenchmark suite against a booted Linux guest.
//
// Backs Fig. 9 (null/read/write syscall latency) and Appendix A's Table 5
// (the full lmbench run for microVM vs lupine-general). Each measurement
// spawns guest processes, runs them on the virtual clock, and reports
// microseconds (or MB/s for the bandwidth section).
#ifndef SRC_WORKLOAD_LMBENCH_H_
#define SRC_WORKLOAD_LMBENCH_H_

#include <string>
#include <vector>

#include "src/vmm/vm.h"

namespace lupine::workload {

// Fig. 9: lmbench's null (getppid), read (/dev/zero) and write (/dev/null)
// latencies in microseconds.
struct SyscallLatencies {
  double null_us = 0;
  double read_us = 0;
  double write_us = 0;
};

SyscallLatencies MeasureSyscallLatency(vmm::Vm& vm, int iterations = 2000);

// One row of the Table 5 report.
struct LmbenchRow {
  std::string section;
  std::string name;
  double value = 0;      // us, or MB/s for bandwidth rows.
  bool bandwidth = false;
};

// The full suite. The VM must be booted from a bench rootfs
// (apps::BuildBenchRootfs) so fork/exec/sh targets exist.
std::vector<LmbenchRow> RunLmbenchSuite(vmm::Vm& vm);

// Helpers reused by other benches -----------------------------------------

// Context-switch latency via a token-passing ring of `procs` processes, each
// dragging `working_set_kb` of cache state (lmbench lat_ctx).
double MeasureCtxSwitchUs(vmm::Vm& vm, int procs, int working_set_kb, int rounds = 300);

// Pipe / AF_UNIX round-trip latency between two processes (one-way us).
double MeasurePipeLatencyUs(vmm::Vm& vm, bool af_unix, int rounds = 500);

// TCP round-trip latency and connection establishment cost.
double MeasureTcpLatencyUs(vmm::Vm& vm, int rounds = 400);
double MeasureTcpConnUs(vmm::Vm& vm, int conns = 200);

}  // namespace lupine::workload

#endif  // SRC_WORKLOAD_LMBENCH_H_

#include "src/workload/app_bench.h"

#include "src/workload/spawn.h"

namespace lupine::workload {
namespace {

using guestos::Kernel;
using guestos::SockDomain;
using guestos::SockType;
using guestos::SyscallApi;

}  // namespace

bool BootAppServer(vmm::Vm& vm, const std::string& ready_line) {
  if (Status s = vm.Boot(); !s.ok()) {
    return false;
  }
  vm.kernel().Run();  // Run until the server blocks waiting for connections.
  if (vm.kernel().oom()) {
    return false;
  }
  return vm.kernel().console().Contains(ready_line);
}

ThroughputResult RunRedisBenchmark(vmm::Vm& vm, bool set_workload, int ops, int connections,
                                   int value_size, int pipeline) {
  Kernel& k = vm.kernel();
  ThroughputResult result;
  const std::string value(value_size, 'v');

  Nanos t0 = 0;
  Nanos t1 = 0;
  uint64_t done = 0;
  uint64_t errors = 0;
  int finished_clients = 0;

  int per_client = ops / connections;
  for (int c = 0; c < connections; ++c) {
    SpawnOptions options;
    options.free_run = true;  // External load generator.
    SpawnProcess(
        k, "redis-benchmark",
        [&, c, per_client](SyscallApi& sys) {
          auto fd = sys.Socket(SockDomain::kInet, SockType::kStream);
          if (!fd.ok()) {
            ++errors;
            return;
          }
          sys.SchedYield();
          if (!sys.Connect(fd.value(), 6379, "").ok()) {
            ++errors;
            return;
          }
          if (t0 == 0) {
            t0 = k.clock().now();
          }
          for (int i = 0; i < per_client; i += pipeline) {
            int batch = std::min(pipeline, per_client - i);
            std::string request;
            for (int b = 0; b < batch; ++b) {
              std::string key = "key:" + std::to_string((c * per_client + i + b) % 1000);
              request += set_workload ? "SET " + key + " " + value + "\r\n"
                                      : "GET " + key + "\r\n";
            }
            if (!sys.Send(fd.value(), request).ok()) {
              ++errors;
              break;
            }
            // Read until every batched reply arrived. A reply starts with a
            // RESP type marker (+ simple string, $ bulk, - error) at the
            // beginning of a line; bulk payload lines are not counted.
            int replies = 0;
            bool at_line_start = true;
            while (replies < batch) {
              auto reply = sys.Recv(fd.value(), 64 * 1024);
              if (!reply.ok() || reply.value().empty()) {
                ++errors;
                replies = batch;
                break;
              }
              for (char ch : reply.value()) {
                if (at_line_start && (ch == '+' || ch == '$' || ch == '-')) {
                  ++replies;
                }
                at_line_start = ch == '\n';
              }
            }
            done += batch;
          }
          (void)sys.Close(fd.value());
          ++finished_clients;
          t1 = k.clock().now();
        },
        options);
  }
  k.Run();

  result.completed = done;
  result.errors = errors;
  Nanos elapsed = t1 - t0;
  if (elapsed > 0 && done > 0) {
    result.requests_per_sec = static_cast<double>(done) / ToSeconds(elapsed);
  }
  return result;
}

ThroughputResult RunApacheBench(vmm::Vm& vm, int total_requests, int requests_per_conn) {
  Kernel& k = vm.kernel();
  ThroughputResult result;

  Nanos t0 = 0;
  Nanos t1 = 0;
  uint64_t done = 0;
  uint64_t errors = 0;

  const std::string request = "GET / HTTP/1.1\r\nHost: localhost\r\nConnection: keep-alive"
                              "\r\n\r\n";
  int conns = total_requests / requests_per_conn;

  SpawnOptions options;
  options.free_run = true;
  SpawnProcess(
      k, "ab",
      [&, conns, requests_per_conn](SyscallApi& sys) {
        sys.SchedYield();
        t0 = k.clock().now();
        for (int c = 0; c < conns; ++c) {
          auto fd = sys.Socket(SockDomain::kInet, SockType::kStream);
          if (!fd.ok()) {
            ++errors;
            continue;
          }
          if (!sys.Connect(fd.value(), 80, "").ok()) {
            ++errors;
            (void)sys.Close(fd.value());
            continue;
          }
          for (int r = 0; r < requests_per_conn; ++r) {
            if (!sys.Send(fd.value(), request).ok()) {
              ++errors;
              break;
            }
            auto reply = sys.Recv(fd.value(), 16 * 1024);
            if (!reply.ok() || reply.value().empty()) {
              ++errors;
              break;
            }
            ++done;
          }
          (void)sys.Close(fd.value());
        }
        t1 = k.clock().now();
      },
      options);
  k.Run();

  result.completed = done;
  result.errors = errors;
  Nanos elapsed = t1 - t0;
  if (elapsed > 0 && done > 0) {
    result.requests_per_sec = static_cast<double>(done) / ToSeconds(elapsed);
  }
  return result;
}

ThroughputResult RunMemcachedBenchmark(vmm::Vm& vm, bool set_workload, int ops,
                                       int connections, int value_size) {
  Kernel& k = vm.kernel();
  ThroughputResult result;
  const std::string value(value_size, 'm');

  Nanos t0 = 0;
  Nanos t1 = 0;
  uint64_t done = 0;
  uint64_t errors = 0;

  int per_client = ops / connections;
  for (int c = 0; c < connections; ++c) {
    SpawnOptions options;
    options.free_run = true;
    SpawnProcess(
        k, "memtier",
        [&, c, per_client](SyscallApi& sys) {
          auto fd = sys.Socket(SockDomain::kInet, SockType::kStream);
          if (!fd.ok()) {
            ++errors;
            return;
          }
          sys.SchedYield();
          if (!sys.Connect(fd.value(), 11211, "").ok()) {
            ++errors;
            return;
          }
          if (t0 == 0) {
            t0 = k.clock().now();
          }
          for (int i = 0; i < per_client; ++i) {
            std::string key = "key" + std::to_string((c * per_client + i) % 1000);
            std::string request =
                set_workload
                    ? "set " + key + " 0 0 " + std::to_string(value.size()) + "\r\n" + value +
                          "\r\n"
                    : "get " + key + "\r\n";
            if (!sys.Send(fd.value(), request).ok()) {
              ++errors;
              break;
            }
            auto reply = sys.Recv(fd.value(), 4096);
            if (!reply.ok() || reply.value().empty()) {
              ++errors;
              break;
            }
            ++done;
          }
          (void)sys.Close(fd.value());
          t1 = k.clock().now();
        },
        options);
  }
  k.Run();

  result.completed = done;
  result.errors = errors;
  Nanos elapsed = t1 - t0;
  if (elapsed > 0 && done > 0) {
    result.requests_per_sec = static_cast<double>(done) / ToSeconds(elapsed);
  }
  return result;
}

}  // namespace lupine::workload

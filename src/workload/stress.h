// Section 5 SMP worst-case stressors: sem_posix, futex, and make -j.
//
// All run on one VCPU; the question is how much an SMP-enabled kernel's
// locking costs against a uniprocessor build under heavy context switching.
// The paper reports <=3% (sem_posix), <=8% (futex), <=3% (make).
#ifndef SRC_WORKLOAD_STRESS_H_
#define SRC_WORKLOAD_STRESS_H_

#include "src/vmm/vm.h"

namespace lupine::workload {

// `workers` groups of 4 processes sharing one futex word, rapidly blocking
// and waking each other `rounds` times. Returns elapsed virtual time.
Nanos RunFutexStress(vmm::Vm& vm, int workers, int rounds);

// POSIX-semaphore flavour: sem_wait/sem_post implemented (as in libc) over
// the futex syscall with an atomic fast path.
Nanos RunSemStress(vmm::Vm& vm, int workers, int rounds);

// make -jN: forks up to `jobs` concurrent compiler processes for `units`
// compilation units, each exec-ing a compiler and doing file I/O + CPU work.
Nanos RunMakeJob(vmm::Vm& vm, int jobs, int units);

}  // namespace lupine::workload

#endif  // SRC_WORKLOAD_STRESS_H_

#include "src/workload/stress.h"

#include <memory>

#include "src/workload/guest_sync.h"
#include "src/workload/spawn.h"

namespace lupine::workload {
namespace {

using guestos::Kernel;
using guestos::SyscallApi;

}  // namespace

Nanos RunFutexStress(vmm::Vm& vm, int workers, int rounds) {
  Kernel& k = vm.kernel();
  Nanos t0 = k.clock().now();

  for (int w = 0; w < workers; ++w) {
    auto word = std::make_shared<int>(0);
    for (int idx = 0; idx < 4; ++idx) {
      SpawnProcess(k, "futex_stress", [word, idx, rounds](SyscallApi& sys) {
        for (int r = 0; r < rounds; ++r) {
          for (;;) {
            int v = *word;
            if (v % 4 == idx) {
              break;
            }
            if (Status s = sys.FutexWait(word.get(), v);
                s.err() == Err::kNoSys) {
              (void)sys.Write(2, "the futex facility returned an unexpected error code\n");
              return;
            }
          }
          ++*word;
          (void)sys.FutexWake(word.get(), 3);
        }
      });
    }
  }
  k.Run();
  return k.clock().now() - t0;
}

Nanos RunSemStress(vmm::Vm& vm, int workers, int rounds) {
  Kernel& k = vm.kernel();
  Nanos t0 = k.clock().now();

  for (int w = 0; w < workers; ++w) {
    auto sem = std::make_shared<GuestSemaphore>();
    for (int idx = 0; idx < 4; ++idx) {
      SpawnProcess(k, "sem_stress", [sem, rounds](SyscallApi& sys) {
        for (int r = 0; r < rounds; ++r) {
          SemWait(sys, sem.get());
          sys.Compute(120);  // Critical section.
          SemPost(sys, sem.get());
          sys.SchedYield();  // Hand the semaphore to a sibling.
        }
      });
    }
  }
  k.Run();
  return k.clock().now() - t0;
}

Nanos RunMakeJob(vmm::Vm& vm, int jobs, int units) {
  Kernel& k = vm.kernel();
  Nanos t0 = k.clock().now();

  SpawnProcess(k, "make", [jobs, units](SyscallApi& sys) {
    int in_flight = 0;
    for (int u = 0; u < units; ++u) {
      if (in_flight >= jobs) {
        if (sys.Wait4(-1).ok()) {
          --in_flight;
        }
      }
      auto pid = sys.Fork([u](SyscallApi& cc) -> int {
        // A compilation unit: parse + codegen CPU work, then write the
        // object file.
        cc.Compute(Micros(1'500));
        auto fd = cc.Open("/tmp/obj_" + std::to_string(u) + ".o", /*create=*/true);
        if (fd.ok()) {
          (void)cc.Write(fd.value(), std::string(8 * 1024, 'o'));
          (void)cc.Close(fd.value());
        }
        return 0;
      });
      if (pid.ok()) {
        ++in_flight;
      }
    }
    while (in_flight > 0 && sys.Wait4(-1).ok()) {
      --in_flight;
    }
  });
  k.Run();
  return k.clock().now() - t0;
}

}  // namespace lupine::workload

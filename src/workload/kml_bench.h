// KML amortization microbenchmark (Fig. 10).
//
// Issues the null (getppid) syscall in a loop with a configurable amount of
// user-mode busy-work between calls; the benefit of KML's cheap transition
// is amortized away as the busy-work grows (40% at 0 iterations, <5% past
// ~160).
#ifndef SRC_WORKLOAD_KML_BENCH_H_
#define SRC_WORKLOAD_KML_BENCH_H_

#include "src/vmm/vm.h"

namespace lupine::workload {

// Per-busy-iteration user CPU (a tight arithmetic loop iteration).
inline constexpr Nanos kBusyIterationNs = 2;

// Average time (us) of one null-syscall + `busy_iterations` busy loop.
double MeasureNullWithWorkUs(vmm::Vm& vm, int busy_iterations, int samples = 2000);

}  // namespace lupine::workload

#endif  // SRC_WORKLOAD_KML_BENCH_H_

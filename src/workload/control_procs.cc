#include "src/workload/control_procs.h"

#include "src/workload/spawn.h"

namespace lupine::workload {

SyscallLatencies MeasureWithControlProcs(vmm::Vm& vm, int control_processes) {
  guestos::Kernel& k = vm.kernel();
  for (int i = 0; i < control_processes; ++i) {
    SpawnOptions options;
    options.heap_kb = 16;
    SpawnProcess(
        k, "sleep",
        [](guestos::SyscallApi& sys) {
          // `sleep`: a couple of timer ticks, then parked for the run.
          sys.Nanosleep(Millis(1));
          sys.Pause();
        },
        options);
  }
  // Let the control processes reach their parked state.
  k.Run();
  return MeasureSyscallLatency(vm);
}

}  // namespace lupine::workload

// Control-process experiment (Fig. 11).
//
// Spawns 2^i auxiliary "control" processes (shells, monitors, recovery
// agents — modelled as sleeping `sleep`-style processes) and measures
// syscall latency: relaxing the single-process restriction costs nothing
// while the extra processes are idle.
#ifndef SRC_WORKLOAD_CONTROL_PROCS_H_
#define SRC_WORKLOAD_CONTROL_PROCS_H_

#include "src/workload/lmbench.h"

namespace lupine::workload {

// Spawns `control_processes` paused processes, then runs the Fig. 9 syscall
// latency measurements alongside them.
SyscallLatencies MeasureWithControlProcs(vmm::Vm& vm, int control_processes);

}  // namespace lupine::workload

#endif  // SRC_WORKLOAD_CONTROL_PROCS_H_

#include "src/workload/perf_messaging.h"

#include <memory>
#include <vector>

#include "src/workload/spawn.h"

namespace lupine::workload {
namespace {

using guestos::Kernel;
using guestos::Process;
using guestos::SockType;
using guestos::SyscallApi;

constexpr int kMsgSize = 100;

void SenderBody(SyscallApi& sys, const std::vector<int>& fds, int messages) {
  const std::string msg(kMsgSize, 'm');
  for (int m = 0; m < messages; ++m) {
    for (int fd : fds) {
      (void)sys.Send(fd, msg);
    }
  }
}

void ReceiverBody(SyscallApi& sys, const std::vector<int>& fds, int messages) {
  for (int m = 0; m < messages; ++m) {
    for (int fd : fds) {
      size_t got = 0;
      while (got < kMsgSize) {
        auto data = sys.Recv(fd, kMsgSize - got);
        if (!data.ok() || data.value().empty()) {
          return;
        }
        got += data.value().size();
      }
    }
  }
}

}  // namespace

Nanos RunPerfMessaging(vmm::Vm& vm, const MessagingConfig& config) {
  Kernel& k = vm.kernel();
  Nanos t0 = k.clock().now();

  const int S = config.senders_per_group;
  const int R = config.receivers_per_group;
  const int M = config.messages_per_pair;

  for (int g = 0; g < config.groups; ++g) {
    // pairs[s][r]: {sender end, receiver end}.
    std::vector<std::vector<std::pair<std::shared_ptr<guestos::Socket>,
                                      std::shared_ptr<guestos::Socket>>>>
        pairs(S);
    for (int s = 0; s < S; ++s) {
      pairs[s].reserve(R);
      for (int r = 0; r < R; ++r) {
        pairs[s].push_back(k.net().CreatePair(SockType::kStream));
      }
    }

    if (config.use_processes) {
      for (int s = 0; s < S; ++s) {
        auto fds = std::make_shared<std::vector<int>>();
        Process* p = SpawnProcess(k, "msg_snd", [fds, M](SyscallApi& sys) {
          SenderBody(sys, *fds, M);
        });
        for (int r = 0; r < R; ++r) {
          fds->push_back(InstallSocket(p, pairs[s][r].first));
        }
      }
      for (int r = 0; r < R; ++r) {
        auto fds = std::make_shared<std::vector<int>>();
        Process* p = SpawnProcess(k, "msg_rcv", [fds, M](SyscallApi& sys) {
          ReceiverBody(sys, *fds, M);
        });
        for (int s = 0; s < S; ++s) {
          fds->push_back(InstallSocket(p, pairs[s][r].second));
        }
      }
    } else {
      // Thread mode: one process per group; all participants are threads.
      auto done = std::make_shared<int>(0);
      const int participants = S + R;
      Process* p = SpawnProcess(k, "msg_grp", [=](SyscallApi& sys) {
        Process* self = sys.CurrentProcess();
        // Install every socket and collect the fd lists first.
        std::vector<std::vector<int>> sender_fds(S);
        std::vector<std::vector<int>> receiver_fds(R);
        for (int s = 0; s < S; ++s) {
          for (int r = 0; r < R; ++r) {
            sender_fds[s].push_back(InstallSocket(self, pairs[s][r].first));
            receiver_fds[r].push_back(InstallSocket(self, pairs[s][r].second));
          }
        }
        for (int s = 0; s < S; ++s) {
          auto fds = sender_fds[s];
          (void)sys.SpawnThread([fds, M, done](SyscallApi& tsys) {
            SenderBody(tsys, fds, M);
            ++*done;
            (void)tsys.FutexWake(done.get(), 1);
          });
        }
        for (int r = 0; r < R; ++r) {
          auto fds = receiver_fds[r];
          (void)sys.SpawnThread([fds, M, done](SyscallApi& tsys) {
            ReceiverBody(tsys, fds, M);
            ++*done;
            (void)tsys.FutexWake(done.get(), 1);
          });
        }
        // Join: wait for every participant (futex-based, like pthread_join).
        while (*done < participants) {
          int snapshot = *done;
          (void)sys.FutexWait(done.get(), snapshot);
        }
      });
      (void)p;
    }
  }

  k.Run();
  return k.clock().now() - t0;
}

}  // namespace lupine::workload

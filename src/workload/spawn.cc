#include "src/workload/spawn.h"

namespace lupine::workload {

guestos::Process* SpawnProcess(guestos::Kernel& kernel, const std::string& name,
                               std::function<void(guestos::SyscallApi&)> body,
                               const SpawnOptions& options) {
  auto aspace = std::make_shared<guestos::AddressSpace>(&kernel.mm());
  guestos::Process* process = kernel.CreateProcess(/*ppid=*/1, std::move(aspace), name);
  process->free_run = options.free_run;
  process->kml_capable = options.kml_libc && kernel.features().kml;

  guestos::Kernel* k = &kernel;
  Bytes heap_bytes = options.heap_kb * kKiB;
  kernel.sched().Spawn(process, [k, process, heap_bytes, body = std::move(body)]() {
    guestos::SyscallApi& sys = k->sys();
    if (process->heap_vma < 0 && heap_bytes > 0) {
      (void)sys.BrkGrow(heap_bytes);
    }
    body(sys);
    k->ExitProcess(process, 0);
    k->sched().ExitCurrent();
  });
  return process;
}

Nanos RunFor(guestos::Kernel& kernel) {
  Nanos start = kernel.clock().now();
  kernel.Run();
  return kernel.clock().now() - start;
}

int InstallPipeEnd(guestos::Process* process, const std::shared_ptr<guestos::PipeBuffer>& pipe,
                   bool read_end) {
  auto file = std::make_shared<guestos::FileDescription>();
  file->kind = read_end ? guestos::FdKind::kPipeRead : guestos::FdKind::kPipeWrite;
  file->pipe = pipe;
  return process->InstallFd(file);
}

int InstallSocket(guestos::Process* process, const std::shared_ptr<guestos::Socket>& sock) {
  auto file = std::make_shared<guestos::FileDescription>();
  file->kind = guestos::FdKind::kSocket;
  file->socket = sock;
  return process->InstallFd(file);
}

}  // namespace lupine::workload

// Helpers to inject benchmark processes into a running guest.
//
// Microbenchmarks (lmbench, perf messaging, stressors) execute inside the
// guest like any process, but are injected directly instead of going through
// a rootfs binary; load generators are marked free-running so the guest
// clock isolates server-side costs (the paper runs clients on dedicated
// host CPUs).
#ifndef SRC_WORKLOAD_SPAWN_H_
#define SRC_WORKLOAD_SPAWN_H_

#include <functional>
#include <string>

#include "src/guestos/kernel.h"
#include "src/guestos/syscall_api.h"

namespace lupine::workload {

struct SpawnOptions {
  bool free_run = false;   // External load generator: zero guest cost.
  bool kml_libc = true;    // Linked against the KML-patched libc.
  Bytes heap_kb = 256;     // Startup heap.
};

// Creates a process running `body`; the process exits when `body` returns.
guestos::Process* SpawnProcess(guestos::Kernel& kernel, const std::string& name,
                               std::function<void(guestos::SyscallApi&)> body,
                               const SpawnOptions& options = {});

// Runs the guest until quiescent and returns the virtual time elapsed.
Nanos RunFor(guestos::Kernel& kernel);

// Installs one end of a kernel-created pipe into `process`, returning the
// fd — how injected benchmark processes get pre-wired IPC topologies
// without a common fork ancestor (lmbench rings, hackbench groups,
// loadspec channels).
int InstallPipeEnd(guestos::Process* process, const std::shared_ptr<guestos::PipeBuffer>& pipe,
                   bool read_end);

// Same for a socket endpoint (AF_UNIX/TCP pairs from NetStack::CreatePair).
int InstallSocket(guestos::Process* process, const std::shared_ptr<guestos::Socket>& sock);

}  // namespace lupine::workload

#endif  // SRC_WORKLOAD_SPAWN_H_

// perf bench sched messaging equivalent (Fig. 12).
//
// Groups of 10 senders and 10 receivers exchange messages over AF_UNIX
// sockets; the benchmark compares thread-based groups (shared address
// space, approximating unikernel behaviour) against process-based groups,
// on KML and non-KML kernels.
#ifndef SRC_WORKLOAD_PERF_MESSAGING_H_
#define SRC_WORKLOAD_PERF_MESSAGING_H_

#include "src/vmm/vm.h"

namespace lupine::workload {

struct MessagingConfig {
  int groups = 1;
  int senders_per_group = 10;
  int receivers_per_group = 10;
  int messages_per_pair = 20;
  bool use_processes = false;  // false = threads (pthread), true = fork.
};

// Returns the virtual time the run took.
Nanos RunPerfMessaging(vmm::Vm& vm, const MessagingConfig& config);

}  // namespace lupine::workload

#endif  // SRC_WORKLOAD_PERF_MESSAGING_H_

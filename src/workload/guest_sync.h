// User-level synchronization primitives built on the futex syscall, shared
// by the hand-coded stressors (stress.cc) and the declarative workload
// simulator's library actions (src/loadspec/actions.cc).
//
// GuestSemaphore mirrors how libc implements sem_wait/sem_post: an atomic
// fast path in user space, falling into the futex syscall only on
// contention. Single-VCPU cooperative scheduling makes the check-and-
// decrement atomic (no preemption between syscalls), as in a uniprocessor
// kernel with interrupts off.
#ifndef SRC_WORKLOAD_GUEST_SYNC_H_
#define SRC_WORKLOAD_GUEST_SYNC_H_

#include "src/guestos/syscall_api.h"

namespace lupine::workload {

struct GuestSemaphore {
  int value = 1;
};

inline void SemWait(guestos::SyscallApi& sys, GuestSemaphore* sem) {
  for (;;) {
    if (sem->value > 0) {
      --sem->value;
      return;
    }
    (void)sys.FutexWait(&sem->value, 0);
  }
}

inline void SemPost(guestos::SyscallApi& sys, GuestSemaphore* sem) {
  ++sem->value;
  (void)sys.FutexWake(&sem->value, 1);
}

}  // namespace lupine::workload

#endif  // SRC_WORKLOAD_GUEST_SYNC_H_

#include "src/workload/lmbench.h"

#include <memory>

#include "src/workload/spawn.h"

namespace lupine::workload {
namespace {

using guestos::Kernel;
using guestos::PipeBuffer;
using guestos::SockDomain;
using guestos::SockType;
using guestos::SyscallApi;

// Runs `body` in a fresh guest process and returns the virtual time it took.
Nanos TimeInProcess(vmm::Vm& vm, const std::function<void(SyscallApi&)>& body) {
  Kernel& k = vm.kernel();
  Nanos t0 = 0;
  Nanos t1 = 0;
  SpawnProcess(k, "lmbench", [&](SyscallApi& sys) {
    t0 = k.clock().now();
    body(sys);
    t1 = k.clock().now();
  });
  k.Run();
  return t1 - t0;
}

// Memory-subsystem bandwidths (MB/s): user-level, kernel-independent; the
// paper's Table 5 shows them near-identical for microVM and lupine-general.
struct MemBandwidths {
  double mmap_reread = 15'950;
  double bcopy_libc = 12'550;
  double bcopy_hand = 9'056;
  double mem_read = 15'000;
  double mem_write = 12'100;
};

}  // namespace

SyscallLatencies MeasureSyscallLatency(vmm::Vm& vm, int iterations) {
  SyscallLatencies out;
  Kernel& k = vm.kernel();

  Nanos null_total = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < iterations; ++i) {
      (void)sys.Getppid();
    }
  });
  out.null_us = ToMicros(null_total) / iterations;

  Nanos read_total = TimeInProcess(vm, [&](SyscallApi& sys) {
    auto fd = sys.Open("/dev/zero");
    if (!fd.ok()) {
      k.console().Write("lmbench: cannot open /dev/zero\n");
      return;
    }
    for (int i = 0; i < iterations; ++i) {
      (void)sys.Read(fd.value(), 1);
    }
    (void)sys.Close(fd.value());
  });
  out.read_us = ToMicros(read_total) / iterations;

  Nanos write_total = TimeInProcess(vm, [&](SyscallApi& sys) {
    auto fd = sys.Open("/dev/null");
    if (!fd.ok()) {
      k.console().Write("lmbench: cannot open /dev/null\n");
      return;
    }
    for (int i = 0; i < iterations; ++i) {
      (void)sys.Write(fd.value(), "x");
    }
    (void)sys.Close(fd.value());
  });
  out.write_us = ToMicros(write_total) / iterations;
  return out;
}

double MeasureCtxSwitchUs(vmm::Vm& vm, int procs, int working_set_kb, int rounds) {
  Kernel& k = vm.kernel();

  // Baseline: pipe write+read without any switch, measured in one process.
  Nanos baseline_total = TimeInProcess(vm, [&](SyscallApi& sys) {
    auto pipe_fds = sys.Pipe();
    if (!pipe_fds.ok()) {
      return;
    }
    for (int i = 0; i < rounds; ++i) {
      (void)sys.Write(pipe_fds.value().second, "x");
      (void)sys.Read(pipe_fds.value().first, 1);
    }
  });
  double baseline_per_hop = static_cast<double>(baseline_total) / rounds;

  // Token ring: P processes, P pipes; process i reads pipe[i], writes
  // pipe[(i+1) % P].
  std::vector<std::shared_ptr<PipeBuffer>> pipes;
  pipes.reserve(procs);
  for (int i = 0; i < procs; ++i) {
    pipes.push_back(std::make_shared<PipeBuffer>(&k.sched()));
  }

  Nanos t0 = k.clock().now();
  for (int i = 0; i < procs; ++i) {
    auto body = [i, procs, rounds](SyscallApi& sys) {
      // fds 3 and 4 are the read and write ends installed below.
      const int rfd = 3;
      const int wfd = 4;
      if (i == 0) {
        (void)sys.Write(wfd, "t");  // Inject the token.
      }
      for (int r = 0; r < rounds; ++r) {
        (void)sys.Read(rfd, 1);
        (void)sys.Write(wfd, "t");
      }
      if (i == 0) {
        (void)sys.Read(rfd, 1);  // Absorb the token.
      }
    };
    guestos::Process* p = SpawnProcess(k, "lat_ctx", body);
    InstallPipeEnd(p, pipes[i], /*read_end=*/true);            // fd 3
    InstallPipeEnd(p, pipes[(i + 1) % procs], /*read_end=*/false);  // fd 4
    if (!p->threads.empty()) {
      k.sched().SetWorkingSet(p->threads[0], working_set_kb);
    }
  }
  k.Run();
  Nanos elapsed = k.clock().now() - t0;

  double per_hop = static_cast<double>(elapsed) / (static_cast<double>(rounds) * procs);
  double ctxsw_ns = per_hop - baseline_per_hop;
  return ctxsw_ns < 0 ? 0 : ctxsw_ns / 1000.0;
}

double MeasurePipeLatencyUs(vmm::Vm& vm, bool af_unix, int rounds) {
  Kernel& k = vm.kernel();
  Nanos t0 = k.clock().now();

  if (af_unix) {
    auto [sa, sb] = k.net().CreatePair(SockType::kStream);
    guestos::Process* pa = SpawnProcess(k, "lat_unix_a", [rounds](SyscallApi& sys) {
      for (int i = 0; i < rounds; ++i) {
        (void)sys.Send(3, "x");
        (void)sys.Recv(3, 1);
      }
    });
    InstallSocket(pa, sa);
    guestos::Process* pb = SpawnProcess(k, "lat_unix_b", [rounds](SyscallApi& sys) {
      for (int i = 0; i < rounds; ++i) {
        (void)sys.Recv(3, 1);
        (void)sys.Send(3, "x");
      }
    });
    InstallSocket(pb, sb);
  } else {
    auto p1 = std::make_shared<PipeBuffer>(&k.sched());
    auto p2 = std::make_shared<PipeBuffer>(&k.sched());
    guestos::Process* pa = SpawnProcess(k, "lat_pipe_a", [rounds](SyscallApi& sys) {
      for (int i = 0; i < rounds; ++i) {
        (void)sys.Write(4, "x");
        (void)sys.Read(3, 1);
      }
    });
    InstallPipeEnd(pa, p2, /*read_end=*/true);   // fd 3
    InstallPipeEnd(pa, p1, /*read_end=*/false);  // fd 4
    guestos::Process* pb = SpawnProcess(k, "lat_pipe_b", [rounds](SyscallApi& sys) {
      for (int i = 0; i < rounds; ++i) {
        (void)sys.Read(3, 1);
        (void)sys.Write(4, "x");
      }
    });
    InstallPipeEnd(pb, p1, /*read_end=*/true);   // fd 3
    InstallPipeEnd(pb, p2, /*read_end=*/false);  // fd 4
  }
  k.Run();
  Nanos elapsed = k.clock().now() - t0;
  // One-way latency: a round trip is two legs.
  return ToMicros(elapsed) / (2.0 * rounds);
}

double MeasureTcpLatencyUs(vmm::Vm& vm, int rounds) {
  Kernel& k = vm.kernel();
  constexpr uint16_t kPort = 7777;

  SpawnProcess(k, "lat_tcp_srv", [rounds](SyscallApi& sys) {
    auto fd = sys.Socket(SockDomain::kInet, SockType::kStream);
    if (!fd.ok()) {
      return;
    }
    (void)sys.Bind(fd.value(), kPort, "");
    (void)sys.Listen(fd.value(), 4);
    auto conn = sys.Accept(fd.value());
    if (!conn.ok()) {
      return;
    }
    for (int i = 0; i < rounds; ++i) {
      auto data = sys.Recv(conn.value(), 64);
      if (!data.ok() || data.value().empty()) {
        break;
      }
      (void)sys.Send(conn.value(), "y");
    }
    (void)sys.Close(conn.value());
    (void)sys.Close(fd.value());
  });

  Nanos t0 = 0;
  Nanos t1 = 0;
  SpawnProcess(k, "lat_tcp_cli", [&, rounds](SyscallApi& sys) {
    auto fd = sys.Socket(SockDomain::kInet, SockType::kStream);
    if (!fd.ok()) {
      return;
    }
    // Give the server a chance to listen.
    sys.SchedYield();
    if (!sys.Connect(fd.value(), kPort, "").ok()) {
      return;
    }
    t0 = k.clock().now();
    for (int i = 0; i < rounds; ++i) {
      (void)sys.Send(fd.value(), "x");
      (void)sys.Recv(fd.value(), 64);
    }
    t1 = k.clock().now();
    (void)sys.Close(fd.value());
  });
  k.Run();
  // Round-trip time, as lat_tcp reports.
  return ToMicros(t1 - t0) / rounds;
}

double MeasureTcpConnUs(vmm::Vm& vm, int conns) {
  Kernel& k = vm.kernel();
  constexpr uint16_t kPort = 7778;

  SpawnProcess(k, "conn_srv", [conns](SyscallApi& sys) {
    auto fd = sys.Socket(SockDomain::kInet, SockType::kStream);
    if (!fd.ok()) {
      return;
    }
    (void)sys.Bind(fd.value(), kPort, "");
    (void)sys.Listen(fd.value(), 128);
    for (int i = 0; i < conns; ++i) {
      auto conn = sys.Accept(fd.value());
      if (!conn.ok()) {
        break;
      }
      (void)sys.Close(conn.value());
    }
    (void)sys.Close(fd.value());
  });

  Nanos t0 = 0;
  Nanos t1 = 0;
  SpawnProcess(k, "conn_cli", [&, conns](SyscallApi& sys) {
    sys.SchedYield();
    t0 = k.clock().now();
    for (int i = 0; i < conns; ++i) {
      auto fd = sys.Socket(SockDomain::kInet, SockType::kStream);
      if (!fd.ok()) {
        return;
      }
      (void)sys.Connect(fd.value(), kPort, "");
      (void)sys.Close(fd.value());
    }
    t1 = k.clock().now();
  });
  k.Run();
  return ToMicros(t1 - t0) / conns;
}

namespace {

double MeasureUdpLatencyUs(vmm::Vm& vm, int rounds) {
  Kernel& k = vm.kernel();
  auto [sa, sb] = k.net().CreatePair(SockType::kDgram);
  // Price the pair like UDP over loopback rather than AF_UNIX.
  sa->domain = SockDomain::kInet;
  sb->domain = SockDomain::kInet;

  Nanos t0 = k.clock().now();
  guestos::Process* pa = SpawnProcess(k, "lat_udp_a", [rounds](SyscallApi& sys) {
    for (int i = 0; i < rounds; ++i) {
      (void)sys.Send(3, "x");
      (void)sys.Recv(3, 64);
    }
  });
  InstallSocket(pa, sa);
  guestos::Process* pb = SpawnProcess(k, "lat_udp_b", [rounds](SyscallApi& sys) {
    for (int i = 0; i < rounds; ++i) {
      (void)sys.Recv(3, 64);
      (void)sys.Send(3, "x");
    }
  });
  InstallSocket(pb, sb);
  k.Run();
  return ToMicros(k.clock().now() - t0) / (2.0 * rounds);
}

// Streams `total_bytes` through a pipe or socket pair; returns MB/s.
double MeasureStreamBandwidth(vmm::Vm& vm, const std::string& kind) {
  Kernel& k = vm.kernel();
  constexpr size_t kChunk = 64 * 1024;
  constexpr int kChunks = 128;
  const std::string chunk(kChunk, 'b');

  Nanos t0 = k.clock().now();
  if (kind == "pipe") {
    auto pipe = std::make_shared<PipeBuffer>(&k.sched());
    guestos::Process* writer = SpawnProcess(k, "bw_wr", [&chunk](SyscallApi& sys) {
      for (int i = 0; i < kChunks; ++i) {
        (void)sys.Write(3, chunk);
      }
      (void)sys.Close(3);
    });
    InstallPipeEnd(writer, pipe, /*read_end=*/false);  // fd 3
    guestos::Process* reader = SpawnProcess(k, "bw_rd", [](SyscallApi& sys) {
      for (;;) {
        auto data = sys.Read(3, kChunk);
        if (!data.ok() || data.value().empty()) {
          break;
        }
      }
    });
    InstallPipeEnd(reader, pipe, /*read_end=*/true);  // fd 3
  } else {
    auto [sa, sb] = k.net().CreatePair(SockType::kStream);
    if (kind == "tcp") {
      sa->domain = SockDomain::kInet;
      sb->domain = SockDomain::kInet;
    }
    guestos::Process* writer = SpawnProcess(k, "bw_wr", [&chunk](SyscallApi& sys) {
      for (int i = 0; i < kChunks; ++i) {
        (void)sys.Send(3, chunk);
      }
      (void)sys.Close(3);
    });
    InstallSocket(writer, sa);
    guestos::Process* reader = SpawnProcess(k, "bw_rd", [](SyscallApi& sys) {
      for (;;) {
        auto data = sys.Recv(3, kChunk);
        if (!data.ok() || data.value().empty()) {
          break;
        }
      }
    });
    InstallSocket(reader, sb);
  }
  k.Run();
  Nanos elapsed = k.clock().now() - t0;
  double mb = static_cast<double>(kChunk) * kChunks / (1024.0 * 1024.0);
  return mb / ToSeconds(elapsed == 0 ? 1 : elapsed);
}

}  // namespace

std::vector<LmbenchRow> RunLmbenchSuite(vmm::Vm& vm) {
  std::vector<LmbenchRow> rows;
  Kernel& k = vm.kernel();
  const int n = 1000;

  auto add = [&rows](const std::string& section, const std::string& name, double value,
                     bool bandwidth = false) {
    rows.push_back({section, name, value, bandwidth});
  };
  const std::string kProc = "Processor, Processes (us)";
  const std::string kCtx = "Context switching (us)";
  const std::string kComm = "Local communication latencies (us)";
  const std::string kFile = "File & VM system latencies (us)";
  const std::string kBw = "Local communication bandwidths (MB/s)";

  // --- Processor / processes -----------------------------------------------
  SyscallLatencies sys_lat = MeasureSyscallLatency(vm, n);
  add(kProc, "null call", sys_lat.null_us);
  add(kProc, "null I/O", (sys_lat.read_us + sys_lat.write_us) / 2);

  Nanos t = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < n; ++i) {
      (void)sys.Stat("/etc/hostname");
    }
  });
  add(kProc, "stat", ToMicros(t) / n);

  t = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < n; ++i) {
      auto fd = sys.Open("/etc/hostname");
      if (fd.ok()) {
        (void)sys.Close(fd.value());
      }
    }
  });
  add(kProc, "open clos", ToMicros(t) / n);

  t = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < n; ++i) {
      (void)sys.Select(100, /*tcp_fds=*/true);
    }
  });
  add(kProc, "slct TCP", ToMicros(t) / n);

  t = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < n; ++i) {
      (void)sys.Sigaction(10);
    }
  });
  add(kProc, "sig inst", ToMicros(t) / n);

  t = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < n; ++i) {
      (void)sys.SignalSelf(10);
    }
  });
  add(kProc, "sig hndl", ToMicros(t) / n);

  const int kForks = 40;
  t = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < kForks; ++i) {
      auto pid = sys.Fork([](SyscallApi&) { return 0; });
      if (pid.ok()) {
        (void)sys.Wait4(pid.value());
      }
    }
  });
  add(kProc, "fork proc", ToMicros(t) / kForks);

  t = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < kForks; ++i) {
      auto pid = sys.Fork([](SyscallApi& child) -> int {
        (void)child.Execve("/bin/hello", {"/bin/hello"});
        return 127;
      });
      if (pid.ok()) {
        (void)sys.Wait4(pid.value());
      }
    }
  });
  add(kProc, "exec proc", ToMicros(t) / kForks);

  t = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < kForks; ++i) {
      auto pid = sys.Fork([](SyscallApi& child) -> int {
        (void)child.Execve("/bin/sh", {"/bin/sh", "/bin/hello"});
        return 127;
      });
      if (pid.ok()) {
        (void)sys.Wait4(pid.value());
      }
    }
  });
  add(kProc, "sh proc", ToMicros(t) / kForks);

  // --- Context switching ------------------------------------------------------
  add(kCtx, "2p/0K ctxsw", MeasureCtxSwitchUs(vm, 2, 0));
  add(kCtx, "2p/16K ctxsw", MeasureCtxSwitchUs(vm, 2, 16));
  add(kCtx, "2p/64K ctxsw", MeasureCtxSwitchUs(vm, 2, 64));
  add(kCtx, "8p/16K ctxsw", MeasureCtxSwitchUs(vm, 8, 16));
  add(kCtx, "8p/64K ctxsw", MeasureCtxSwitchUs(vm, 8, 64));
  add(kCtx, "16p/16K ctxsw", MeasureCtxSwitchUs(vm, 16, 16));
  add(kCtx, "16p/64K ctxsw", MeasureCtxSwitchUs(vm, 16, 64));

  // --- Local communication latencies -------------------------------------------
  add(kComm, "Pipe", MeasurePipeLatencyUs(vm, /*af_unix=*/false));
  add(kComm, "AF UNIX", MeasurePipeLatencyUs(vm, /*af_unix=*/true));
  add(kComm, "UDP", MeasureUdpLatencyUs(vm, 400));
  add(kComm, "TCP", MeasureTcpLatencyUs(vm));
  add(kComm, "TCP conn", MeasureTcpConnUs(vm));

  // --- File & VM -----------------------------------------------------------------
  t = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < 200; ++i) {
      auto fd = sys.Open("/tmp/lm0k_" + std::to_string(i), /*create=*/true);
      if (fd.ok()) {
        (void)sys.Close(fd.value());
      }
    }
  });
  add(kFile, "0K File Create", ToMicros(t) / 200);

  t = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < 200; ++i) {
      (void)sys.Unlink("/tmp/lm0k_" + std::to_string(i));
    }
  });
  add(kFile, "0K File Delete", ToMicros(t) / 200);

  const std::string ten_kb(10 * 1024, 'f');
  t = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < 100; ++i) {
      auto fd = sys.Open("/tmp/lm10k_" + std::to_string(i), /*create=*/true);
      if (fd.ok()) {
        (void)sys.Write(fd.value(), ten_kb);
        (void)sys.Close(fd.value());
      }
    }
  });
  add(kFile, "10K File Create", ToMicros(t) / 100);

  t = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < 100; ++i) {
      (void)sys.Unlink("/tmp/lm10k_" + std::to_string(i));
    }
  });
  add(kFile, "10K File Delete", ToMicros(t) / 100);

  t = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < 4; ++i) {
      auto vma = sys.Mmap(10 * kMiB, /*populate=*/true);
      if (vma.ok()) {
        (void)sys.Munmap(vma.value());
      }
    }
  });
  add(kFile, "Mmap Latency", ToMicros(t) / 4);

  // Protection faults take the same trap path on every kernel (Table 5 shows
  // ~0.27us on both systems); derived from the fault cost.
  add(kFile, "Prot Fault", ToMicros(k.costs().page_fault * 3) * 0.96);

  t = TimeInProcess(vm, [&](SyscallApi& sys) {
    (void)sys.BrkGrow(4 * kMiB);
    for (int i = 0; i < 1000; ++i) {
      (void)sys.TouchHeap(static_cast<Bytes>(i) * guestos::kPageSize, 1);
    }
  });
  add(kFile, "Page Fault", ToMicros(t) / 1000);

  t = TimeInProcess(vm, [&](SyscallApi& sys) {
    for (int i = 0; i < n; ++i) {
      (void)sys.Select(100, /*tcp_fds=*/false);
    }
  });
  add(kFile, "100fd selct", ToMicros(t) / n);

  // --- Bandwidths -------------------------------------------------------------------
  add(kBw, "Pipe", MeasureStreamBandwidth(vm, "pipe"), true);
  add(kBw, "AF UNIX", MeasureStreamBandwidth(vm, "unix"), true);
  add(kBw, "TCP", MeasureStreamBandwidth(vm, "tcp"), true);

  // File reread: 64 KiB file re-read from the page cache.
  {
    Nanos t0 = 0;
    Nanos t1 = 0;
    const std::string big(64 * 1024, 'r');
    SpawnProcess(k, "bw_file", [&](SyscallApi& sys) {
      auto fd = sys.Open("/tmp/reread", /*create=*/true);
      if (!fd.ok()) {
        return;
      }
      (void)sys.Write(fd.value(), big);
      (void)sys.Close(fd.value());
      t0 = k.clock().now();
      for (int i = 0; i < 64; ++i) {
        auto rfd = sys.Open("/tmp/reread");
        if (rfd.ok()) {
          (void)sys.Read(rfd.value(), 64 * 1024);
          (void)sys.Close(rfd.value());
        }
      }
      t1 = k.clock().now();
    });
    k.Run();
    double mb = 64.0 * 64.0 / 1024.0;
    Nanos elapsed = t1 - t0;
    add(kBw, "File reread", mb / ToSeconds(elapsed <= 0 ? 1 : elapsed), true);
  }

  MemBandwidths mem;
  add(kBw, "Mmap reread", mem.mmap_reread, true);
  add(kBw, "Bcopy (libc)", mem.bcopy_libc, true);
  add(kBw, "Bcopy (hand)", mem.bcopy_hand, true);
  add(kBw, "Mem read", mem.mem_read, true);
  add(kBw, "Mem write", mem.mem_write, true);

  return rows;
}

}  // namespace lupine::workload

// Application load generators: redis-benchmark and ab equivalents.
//
// Table 4's methodology: redis-benchmark issuing GET/SET, ab issuing one
// request per connection (nginx-conn) or one hundred per keep-alive session
// (nginx-sess). Clients run free (their cost is not on the guest clock), so
// throughput isolates the server stack exactly as the paper's host-side
// clients do.
#ifndef SRC_WORKLOAD_APP_BENCH_H_
#define SRC_WORKLOAD_APP_BENCH_H_

#include <string>

#include "src/vmm/vm.h"

namespace lupine::workload {

struct ThroughputResult {
  double requests_per_sec = 0;
  uint64_t completed = 0;
  uint64_t errors = 0;
};

// redis-benchmark: `ops` GETs or SETs over `connections` persistent
// connections against the redis server already running in `vm`.
// `pipeline` batches that many requests per network round trip
// (redis-benchmark's -P flag).
ThroughputResult RunRedisBenchmark(vmm::Vm& vm, bool set_workload, int ops = 3000,
                                   int connections = 8, int value_size = 64,
                                   int pipeline = 1);

// ab: `total_requests` HTTP requests, `requests_per_conn` on each connection
// (1 = nginx-conn, 100 = nginx-sess with --keepalive).
ThroughputResult RunApacheBench(vmm::Vm& vm, int total_requests = 2000,
                                int requests_per_conn = 1);

// memtier/mc-crusher equivalent for the memcached server (extension
// experiment beyond Table 4).
ThroughputResult RunMemcachedBenchmark(vmm::Vm& vm, bool set_workload, int ops = 3000,
                                       int connections = 8, int value_size = 64);

// Boots `vm` (already constructed with an app rootfs) and runs it until the
// server announces readiness. Returns false when the app failed to start.
bool BootAppServer(vmm::Vm& vm, const std::string& ready_line);

}  // namespace lupine::workload

#endif  // SRC_WORKLOAD_APP_BENCH_H_

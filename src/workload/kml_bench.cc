#include "src/workload/kml_bench.h"

#include "src/workload/spawn.h"

namespace lupine::workload {

double MeasureNullWithWorkUs(vmm::Vm& vm, int busy_iterations, int samples) {
  guestos::Kernel& k = vm.kernel();
  Nanos t0 = 0;
  Nanos t1 = 0;
  SpawnProcess(k, "kml_bench", [&](guestos::SyscallApi& sys) {
    t0 = k.clock().now();
    for (int i = 0; i < samples; ++i) {
      (void)sys.Getppid();
      if (busy_iterations > 0) {
        sys.Compute(static_cast<Nanos>(busy_iterations) * kBusyIterationNs);
      }
    }
    t1 = k.clock().now();
  });
  k.Run();
  return ToMicros(t1 - t0) / samples;
}

}  // namespace lupine::workload

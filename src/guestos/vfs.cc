#include "src/guestos/vfs.h"

#include <algorithm>
#include <sstream>

namespace lupine::guestos {
namespace {

constexpr int kMaxSymlinkDepth = 8;

// Splits a path into components, dropping empty ones.
std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : path) {
    if (c == '/') {
      if (!current.empty()) {
        parts.push_back(current);
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) {
    parts.push_back(current);
  }
  return parts;
}

}  // namespace

Vfs::Vfs() : root_(std::make_shared<Inode>()) { root_->type = InodeType::kDir; }

Result<std::shared_ptr<Inode>> Vfs::Resolve(const std::string& path) const {
  return ResolveInternal(path, 0);
}

Result<std::shared_ptr<Inode>> Vfs::ResolveInternal(const std::string& path, int depth) const {
  if (depth > kMaxSymlinkDepth) {
    return Status(Err::kIo, path + ": too many levels of symbolic links");
  }
  std::shared_ptr<Inode> node = root_;
  std::vector<std::string> parts = SplitPath(path);
  std::vector<std::shared_ptr<Inode>> stack = {root_};

  for (size_t i = 0; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    if (part == ".") {
      continue;
    }
    if (part == "..") {
      if (stack.size() > 1) {
        stack.pop_back();
      }
      node = stack.back();
      continue;
    }
    if (node->type != InodeType::kDir) {
      return Status(Err::kNotDir, path + ": not a directory");
    }
    auto it = node->children.find(part);
    if (it == node->children.end()) {
      return Status(Err::kNoEnt, path + ": no such file or directory");
    }
    std::shared_ptr<Inode> next = it->second;
    if (next->type == InodeType::kSymlink) {
      // Re-resolve the target plus the remaining components.
      std::string rest = next->symlink_target;
      for (size_t j = i + 1; j < parts.size(); ++j) {
        rest += "/" + parts[j];
      }
      return ResolveInternal(rest, depth + 1);
    }
    node = next;
    stack.push_back(node);
  }
  return node;
}

Result<std::pair<std::shared_ptr<Inode>, std::string>> Vfs::ResolveParent(
    const std::string& path) const {
  std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) {
    return Status(Err::kInval, "cannot take parent of /");
  }
  std::string leaf = parts.back();
  std::string parent_path = "/";
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    parent_path += parts[i] + "/";
  }
  auto parent = Resolve(parent_path);
  if (!parent.ok()) {
    return parent.status();
  }
  if (parent.value()->type != InodeType::kDir) {
    return Status(Err::kNotDir, parent_path + ": not a directory");
  }
  return std::make_pair(parent.take(), leaf);
}

Result<std::shared_ptr<Inode>> Vfs::CreateFile(const std::string& path, std::string data,
                                               bool executable) {
  auto parent = ResolveParent(path);
  if (!parent.ok()) {
    return parent.status();
  }
  auto& [dir, leaf] = parent.value();
  auto inode = std::make_shared<Inode>();
  inode->type = InodeType::kFile;
  inode->data = std::move(data);
  inode->executable = executable;
  dir->children[leaf] = inode;
  return inode;
}

Result<std::shared_ptr<Inode>> Vfs::CreateDir(const std::string& path) {
  // mkdir -p semantics: create all missing components.
  std::vector<std::string> parts = SplitPath(path);
  std::shared_ptr<Inode> node = root_;
  for (const auto& part : parts) {
    if (node->type != InodeType::kDir) {
      return Status(Err::kNotDir, path + ": component is not a directory");
    }
    auto it = node->children.find(part);
    if (it == node->children.end()) {
      auto dir = std::make_shared<Inode>();
      dir->type = InodeType::kDir;
      node->children[part] = dir;
      node = dir;
    } else {
      node = it->second;
    }
  }
  if (node->type != InodeType::kDir) {
    return Status(Err::kExist, path + ": exists and is not a directory");
  }
  return node;
}

Result<std::shared_ptr<Inode>> Vfs::CreateDevice(const std::string& path, DevId dev) {
  auto parent = ResolveParent(path);
  if (!parent.ok()) {
    return parent.status();
  }
  auto& [dir, leaf] = parent.value();
  auto inode = std::make_shared<Inode>();
  inode->type = InodeType::kCharDev;
  inode->dev = dev;
  dir->children[leaf] = inode;
  return inode;
}

Status Vfs::CreateSymlink(const std::string& path, const std::string& target) {
  auto parent = ResolveParent(path);
  if (!parent.ok()) {
    return parent.status();
  }
  auto& [dir, leaf] = parent.value();
  auto inode = std::make_shared<Inode>();
  inode->type = InodeType::kSymlink;
  inode->symlink_target = target;
  dir->children[leaf] = inode;
  return Status::Ok();
}

Status Vfs::Unlink(const std::string& path) {
  auto parent = ResolveParent(path);
  if (!parent.ok()) {
    return parent.status();
  }
  auto& [dir, leaf] = parent.value();
  auto it = dir->children.find(leaf);
  if (it == dir->children.end()) {
    return Status(Err::kNoEnt, path + ": no such file or directory");
  }
  if (it->second->type == InodeType::kDir && !it->second->children.empty()) {
    return Status(Err::kNotEmpty, path + ": directory not empty");
  }
  dir->children.erase(it);
  return Status::Ok();
}

Status Vfs::Mount(const std::string& fstype, const std::string& path) {
  auto dir = CreateDir(path);
  if (!dir.ok()) {
    return dir.status();
  }
  if (fstype == "proc") {
    // Caller decides sysctl presence; default without. The syscall layer
    // re-populates with sysctl when PROC_SYSCTL is configured.
    PopulateProcfs(*dir.value(), /*with_sysctl=*/false);
  } else if (fstype == "sysfs") {
    PopulateSysfs(*dir.value());
  } else if (fstype == "tmpfs" || fstype == "devtmpfs" || fstype == "ramfs" ||
             fstype == "hugetlbfs") {
    // Empty writable tree.
  } else {
    return Status(Err::kNoEnt, "unknown filesystem type " + fstype);
  }
  mounts_.push_back(path);
  return Status::Ok();
}

bool Vfs::IsMounted(const std::string& path) const {
  return std::find(mounts_.begin(), mounts_.end(), path) != mounts_.end();
}

void PopulateProcfs(Inode& proc_root, bool with_sysctl) {
  auto add_file = [&proc_root](const std::string& name, const std::string& data) {
    auto inode = std::make_shared<Inode>();
    inode->type = InodeType::kFile;
    inode->data = data;
    proc_root.children[name] = inode;
  };
  add_file("meminfo", "MemTotal:  524288 kB\nMemFree:  475000 kB\n");
  add_file("cpuinfo", "processor\t: 0\nmodel name\t: virtual\n");
  add_file("version", "Linux version 4.0.0-lupine (kml) #1\n");
  add_file("uptime", "1.00 1.00\n");
  add_file("filesystems", "\text2\nnodev\tproc\nnodev\ttmpfs\n");
  if (with_sysctl) {
    auto sys = std::make_shared<Inode>();
    sys->type = InodeType::kDir;
    auto add_sys = [&sys](const std::string& name, const std::string& data) {
      auto inode = std::make_shared<Inode>();
      inode->type = InodeType::kFile;
      inode->data = data;
      sys->children[name] = inode;
    };
    add_sys("kernel.pid_max", "32768\n");
    add_sys("fs.file-max", "65536\n");
    add_sys("net.core.somaxconn", "128\n");
    add_sys("vm.overcommit_memory", "0\n");
    proc_root.children["sys"] = sys;
  }
}

void PopulateSysfs(Inode& sys_root) {
  auto devices = std::make_shared<Inode>();
  devices->type = InodeType::kDir;
  auto virtio = std::make_shared<Inode>();
  virtio->type = InodeType::kDir;
  devices->children["virtio-mmio"] = virtio;
  sys_root.children["devices"] = devices;
  auto kernel_dir = std::make_shared<Inode>();
  kernel_dir->type = InodeType::kDir;
  sys_root.children["kernel"] = kernel_dir;
}

}  // namespace lupine::guestos

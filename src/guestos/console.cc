#include "src/guestos/console.h"

#include <cstdio>
#include <sstream>

namespace lupine::guestos {

void Console::Write(const std::string& text) {
  contents_ += text;
  if (echo_) {
    std::fputs(text.c_str(), stderr);
  }
}

std::vector<std::string> Console::Lines() const {
  std::vector<std::string> lines;
  std::istringstream in(contents_);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

}  // namespace lupine::guestos

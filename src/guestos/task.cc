#include "src/guestos/task.h"

namespace lupine::guestos {

Thread::Thread(int tid, Process* process, std::function<void()> entry)
    : tid_(tid), process_(process), fiber_(std::make_unique<Fiber>(std::move(entry))) {}

Process::Process(int pid, int ppid, std::shared_ptr<AddressSpace> aspace, std::string name)
    : pid_(pid), ppid_(ppid), aspace_(std::move(aspace)), name_(std::move(name)) {}

int Process::InstallFd(std::shared_ptr<FileDescription> file) {
  int fd = next_fd_++;
  fds_[fd] = std::move(file);
  return fd;
}

std::shared_ptr<FileDescription> Process::GetFd(int fd) const {
  auto it = fds_.find(fd);
  return it == fds_.end() ? nullptr : it->second;
}

bool Process::CloseFd(int fd) { return fds_.erase(fd) > 0; }

void Process::CloneFdTableFrom(const Process& parent) {
  fds_ = parent.fds_;
  next_fd_ = parent.next_fd_;
}

std::vector<std::shared_ptr<FileDescription>> Process::TakeAllFds() {
  std::vector<std::shared_ptr<FileDescription>> files;
  files.reserve(fds_.size());
  for (auto& [fd, file] : fds_) {
    files.push_back(std::move(file));
  }
  fds_.clear();
  return files;
}

}  // namespace lupine::guestos

#include "src/guestos/trace.h"

#include "src/telemetry/metrics.h"

namespace lupine::guestos {

void PublishSyscallMetrics(const TraceLog& trace, telemetry::MetricRegistry& registry,
                           const std::string& app, bool kml) {
  const std::string kml_label = kml ? "true" : "false";
  const auto& stats = trace.syscall_stats();
  for (size_t nr = 0; nr < stats.size(); ++nr) {
    const SyscallStat& stat = stats[nr];
    if (stat.count == 0) {
      continue;
    }
    const std::string name = kbuild::SyscallName(static_cast<kbuild::Sys>(nr));
    telemetry::Labels labels = {{"app", app}, {"kml", kml_label}, {"syscall", name}};
    registry.GetCounter("guest.syscall_count", labels).Increment(stat.count);

    auto& hist = registry.GetHistogram("guest.syscall_ns", labels);
    if (stat.count == 1) {
      hist.Observe(static_cast<double>(stat.total_ns));
      continue;
    }
    hist.Observe(static_cast<double>(stat.min_ns));
    hist.Observe(static_cast<double>(stat.max_ns));
    const uint64_t rest = stat.count - 2;
    if (rest > 0) {
      // The adjusted mean keeps the histogram's sum (hence mean) exact.
      const double body = static_cast<double>(stat.total_ns - stat.min_ns - stat.max_ns) /
                          static_cast<double>(rest);
      for (uint64_t i = 0; i < rest; ++i) {
        hist.Observe(body);
      }
    }
  }
}

}  // namespace lupine::guestos

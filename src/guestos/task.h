// Threads and processes of the simulated guest.
#ifndef SRC_GUESTOS_TASK_H_
#define SRC_GUESTOS_TASK_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/guestos/mem.h"
#include "src/util/fiber.h"
#include "src/util/units.h"

namespace lupine::guestos {

class Process;
class FileDescription;

enum class ThreadState { kRunnable, kRunning, kBlocked, kSleeping, kZombie };

class Thread {
 public:
  Thread(int tid, Process* process, std::function<void()> entry);

  int tid() const { return tid_; }
  Process* process() const { return process_; }
  Fiber* fiber() { return fiber_.get(); }
  // Frees the fiber stack once the thread is a zombie (sweeps in Figs. 11-12
  // create 1000+ threads; stacks dominate host memory otherwise).
  void ReleaseFiber() { fiber_.reset(); }

  ThreadState state = ThreadState::kRunnable;
  Nanos wake_time = 0;       // Valid while kSleeping.
  Nanos cpu_time = 0;        // Accumulated virtual CPU time.
  // Cache working set dragged across context switches (prices the lmbench
  // 2p/16K vs 2p/64K spread).
  uint64_t working_set_kb = 0;
  // Set while the thread is parked on a wait queue (for targeted wakeups).
  void* wait_channel = nullptr;
  // Set when a timed Block() was woken by its timeout rather than a Wake().
  bool timed_out = false;

 private:
  int tid_;
  Process* process_;
  std::unique_ptr<Fiber> fiber_;
};

class Process {
 public:
  Process(int pid, int ppid, std::shared_ptr<AddressSpace> aspace, std::string name);

  int pid() const { return pid_; }
  int ppid() const { return ppid_; }
  void set_ppid(int ppid) { ppid_ = ppid; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  AddressSpace& aspace() { return *aspace_; }
  const std::shared_ptr<AddressSpace>& aspace_ptr() const { return aspace_; }
  void set_aspace(std::shared_ptr<AddressSpace> aspace) { aspace_ = std::move(aspace); }

  // File descriptor table.
  int InstallFd(std::shared_ptr<FileDescription> file);
  std::shared_ptr<FileDescription> GetFd(int fd) const;
  bool CloseFd(int fd);
  size_t OpenFdCount() const { return fds_.size(); }
  // Removes and returns every open descriptor (process teardown).
  std::vector<std::shared_ptr<FileDescription>> TakeAllFds();
  // fork(): the child shares file descriptions with the parent.
  void CloneFdTableFrom(const Process& parent);

  // Whether this process' libc issues KML `call`s instead of `syscall`
  // (set by the loader from the binary's metadata; Section 3.2).
  bool kml_capable = false;

  // External load generators are marked free-running: their syscalls cost
  // nothing on the guest clock, so measured time isolates the server side
  // (the paper's clients run outside the VM on dedicated host CPUs).
  bool free_run = false;

  std::map<std::string, std::string> env;
  std::string cwd = "/";

  // Signal handling: registered handlers and signals queued for delivery at
  // the process's next syscall boundary (no mid-syscall EINTR in this model;
  // a thread blocked forever never observes signals).
  std::map<int, std::function<void(int)>> signal_handlers;
  std::deque<int> pending_signals;
  bool in_signal_handler = false;

  bool exited = false;
  bool reaped = false;  // A wait4 collected the exit status.
  int exit_code = 0;

  std::vector<Thread*> threads;   // Non-owning; the scheduler owns threads.
  std::vector<int> children;      // Live + zombie child pids.

  // Heap VMA for brk-style allocation (set up by the loader).
  int heap_vma = -1;
  Bytes heap_size = 0;

 private:
  int pid_;
  int ppid_;
  std::shared_ptr<AddressSpace> aspace_;
  std::string name_;
  std::map<int, std::shared_ptr<FileDescription>> fds_;
  int next_fd_ = 3;  // 0/1/2 reserved for stdio.
};

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_TASK_H_

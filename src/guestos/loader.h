// Binary format ("ELF-lite") and application registry.
//
// Executables in a rootfs are small text headers describing the real
// binary's segment sizes, its libc flavour, and which registered behavioural
// model implements it:
//
//   #LUPINE_ELF v1
//   app=redis
//   libc=musl-kml
//   interp=/lib/ld-musl-x86_64.so.1
//   text_kb=700
//   data_kb=180
//   bss_kb=96
//   stack_kb=256
//
// The libc flavour decides whether the process can use KML `call`s when the
// kernel is KML-enabled: dynamically-linked binaries pick it up from the
// patched libc in the rootfs; statically-linked binaries must have been
// relinked ("static-kml"), as in Section 3.2.
#ifndef SRC_GUESTOS_LOADER_H_
#define SRC_GUESTOS_LOADER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/units.h"

namespace lupine::guestos {

class SyscallApi;

struct BinaryInfo {
  std::string app;      // Registered behaviour name.
  std::string libc;     // "musl" | "musl-kml" | "static" | "static-kml" | "none".
  std::string interp;   // Dynamic loader path; empty for static binaries.
  Bytes text_kb = 64;
  Bytes data_kb = 16;
  Bytes bss_kb = 16;
  Bytes stack_kb = 128;

  bool dynamic() const { return !interp.empty(); }
  bool kml_libc() const { return libc == "musl-kml" || libc == "static-kml"; }
};

// Renders / parses the header format above.
std::string FormatBinary(const BinaryInfo& info);
Result<BinaryInfo> ParseBinary(const std::string& content);

// Returns true for "#!lupine-init" scripts (handled by BINFMT_SCRIPT).
bool IsInitScript(const std::string& content);

// A behavioural application: argv in, exit code out, syscalls through the
// provided API.
using AppMain = std::function<int(SyscallApi&, const std::vector<std::string>&)>;

class AppRegistry {
 public:
  void Register(const std::string& name, AppMain main);
  const AppMain* Find(const std::string& name) const;
  std::vector<std::string> Names() const;

  // Process-wide registry used by the apps library's static registration.
  static AppRegistry& Global();

 private:
  std::map<std::string, AppMain> apps_;
};

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_LOADER_H_

// Syscall layer part 5: futexes, epoll & optional fd factories, SysV/POSIX IPC.
#include <algorithm>

#include "src/guestos/kernel.h"
#include "src/guestos/syscall_api.h"

namespace lupine::guestos {

using kbuild::Sys;

// ---------------------------------------------------------------------------
// Futex.
// ---------------------------------------------------------------------------

Status SyscallApi::FutexWait(const int* word, int expected, Nanos timeout) {
  Scope scope(this, Sys::kFutex);
  if (!scope.ok()) {
    return scope.status();
  }
  Nanos op = k_->costs().futex_op;
  if (k_->features().smp) {
    op += k_->costs().smp_lock;  // Hash-bucket spinlock.
  }
  ChargeKernel(op);
  return k_->futexes().Wait(word, expected, timeout);
}

Result<int> SyscallApi::FutexWake(const int* word, int count) {
  Scope scope(this, Sys::kFutex);
  if (!scope.ok()) {
    return scope.status();
  }
  Nanos op = k_->costs().futex_op;
  if (k_->features().smp) {
    op += k_->costs().smp_lock;
  }
  ChargeKernel(op);
  return k_->futexes().Wake(word, count);
}

// ---------------------------------------------------------------------------
// Epoll and the other optional fd factories (Table 1 gates).
// ---------------------------------------------------------------------------

Result<int> SyscallApi::EpollCreate1() {
  Scope scope(this, Sys::kEpollCreate1);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "epoll_create1 outside any process");
  }
  ChargeKernel(k_->costs().work_fd_alloc + 300);
  auto file = std::make_shared<FileDescription>();
  file->kind = FdKind::kEpoll;
  file->epoll = std::make_shared<EpollInstance>(&k_->sched());
  return p->InstallFd(file);
}

Status SyscallApi::EpollCtlAdd(int epfd, int fd) {
  Scope scope(this, Sys::kEpollCtl);
  if (!scope.ok()) {
    return scope.status();
  }
  auto ep = LookupFd(epfd);
  if (!ep.ok()) {
    return ep.status();
  }
  if (ep.value()->kind != FdKind::kEpoll) {
    return Status(Err::kInval, "epoll_ctl on non-epoll fd");
  }
  auto target = LookupFd(fd);
  if (!target.ok()) {
    return target.status();
  }
  ChargeKernel(k_->costs().work_epoll_ctl);
  ep.value()->epoll->watched_fds.insert(fd);
  if (target.value()->kind == FdKind::kSocket) {
    target.value()->socket->watchers.push_back(ep.value()->epoll);
  }
  return Status::Ok();
}

Result<std::vector<int>> SyscallApi::EpollWait(int epfd, int max_events, Nanos timeout) {
  Scope scope(this, Sys::kEpollWait);
  if (!scope.ok()) {
    return scope.status();
  }
  auto ep = LookupFd(epfd);
  if (!ep.ok()) {
    return ep.status();
  }
  if (ep.value()->kind != FdKind::kEpoll) {
    return Status(Err::kInval, "epoll_wait on non-epoll fd");
  }
  Process* p = CurrentProcess();
  auto& epoll = *ep.value()->epoll;

  for (;;) {
    std::vector<int> ready;
    for (int fd : epoll.watched_fds) {
      auto file = p->GetFd(fd);
      if (file == nullptr) {
        continue;
      }
      bool is_ready = false;
      switch (file->kind) {
        case FdKind::kSocket:
          is_ready = file->socket->Readable();
          break;
        case FdKind::kPipeRead:
          is_ready = !file->pipe->data.empty() || file->pipe->write_closed;
          break;
        case FdKind::kEventfd:
          is_ready = file->counter > 0;
          break;
        default:
          break;
      }
      if (is_ready) {
        ready.push_back(fd);
        if (static_cast<int>(ready.size()) >= max_events) {
          break;
        }
      }
    }
    ChargeKernel(k_->costs().work_epoll_wait);
    if (!ready.empty()) {
      return ready;
    }
    bool woken = epoll.wq.Block(timeout);
    if (!woken) {
      return std::vector<int>{};  // Timeout with no events.
    }
  }
}

Result<int> SyscallApi::Eventfd(uint64_t initial) {
  Scope scope(this, Sys::kEventfd2);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "eventfd outside any process");
  }
  ChargeKernel(k_->costs().work_fd_alloc + 150);
  auto file = std::make_shared<FileDescription>();
  file->kind = FdKind::kEventfd;
  file->counter = initial;
  return p->InstallFd(file);
}

Result<int> SyscallApi::TimerfdCreate() {
  Scope scope(this, Sys::kTimerfdCreate);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "timerfd_create outside any process");
  }
  ChargeKernel(k_->costs().work_fd_alloc + 200);
  auto file = std::make_shared<FileDescription>();
  file->kind = FdKind::kTimerfd;
  return p->InstallFd(file);
}

Result<int> SyscallApi::Signalfd() {
  Scope scope(this, Sys::kSignalfd4);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "signalfd outside any process");
  }
  ChargeKernel(k_->costs().work_fd_alloc + 180);
  auto file = std::make_shared<FileDescription>();
  file->kind = FdKind::kSignalfd;
  return p->InstallFd(file);
}

Result<int> SyscallApi::InotifyInit() {
  Scope scope(this, Sys::kInotifyInit);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "inotify_init outside any process");
  }
  ChargeKernel(k_->costs().work_fd_alloc + 250);
  auto file = std::make_shared<FileDescription>();
  file->kind = FdKind::kInotify;
  return p->InstallFd(file);
}

Result<int> SyscallApi::FanotifyInit() {
  Scope scope(this, Sys::kFanotifyInit);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "fanotify_init outside any process");
  }
  ChargeKernel(k_->costs().work_fd_alloc + 300);
  auto file = std::make_shared<FileDescription>();
  file->kind = FdKind::kFanotify;
  return p->InstallFd(file);
}

Status SyscallApi::Bpf() {
  Scope scope(this, Sys::kBpf);
  if (!scope.ok()) {
    return scope.status();
  }
  ChargeKernel(1'500);  // Program verification.
  return Status::Ok();
}

Result<int> SyscallApi::IoSetup() {
  Scope scope(this, Sys::kIoSetup);
  if (!scope.ok()) {
    return scope.status();
  }
  ChargeKernel(900);
  return next_shm_id_++;  // Context ids share the id counter.
}

Status SyscallApi::IoSubmit(int ctx) {
  Scope scope(this, Sys::kIoSubmit);
  if (!scope.ok()) {
    return scope.status();
  }
  (void)ctx;
  ChargeKernel(1'200);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// SysV and POSIX IPC.
// ---------------------------------------------------------------------------

Result<int> SyscallApi::Shmget(Bytes size) {
  Scope scope(this, Sys::kShmget);
  if (!scope.ok()) {
    return scope.status();
  }
  (void)size;
  ChargeKernel(k_->costs().sysv_shm_op);
  return next_shm_id_++;
}

Status SyscallApi::Shmat(int shmid) {
  Scope scope(this, Sys::kShmat);
  if (!scope.ok()) {
    return scope.status();
  }
  (void)shmid;
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "shmat outside any process");
  }
  ChargeKernel(k_->costs().sysv_shm_op);
  auto vma = p->aspace().Map(kMiB, VmaKind::kShared, "sysv-shm");
  return vma.ok() ? Status::Ok() : vma.status();
}

Status SyscallApi::Semget() {
  Scope scope(this, Sys::kSemget);
  if (!scope.ok()) {
    return scope.status();
  }
  ChargeKernel(k_->costs().sem_op);
  return Status::Ok();
}

Status SyscallApi::Semop() {
  Scope scope(this, Sys::kSemop);
  if (!scope.ok()) {
    return scope.status();
  }
  Nanos op = k_->costs().sem_op;
  if (k_->features().smp) {
    op += k_->costs().smp_lock;
  }
  ChargeKernel(op);
  return Status::Ok();
}

Result<int> SyscallApi::MqOpen(const std::string& name) {
  Scope scope(this, Sys::kMqOpen);
  if (!scope.ok()) {
    return scope.status();
  }
  (void)name;
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "mq_open outside any process");
  }
  ChargeKernel(700);
  auto file = std::make_shared<FileDescription>();
  file->kind = FdKind::kInode;  // Message queues behave file-like here.
  file->inode = std::make_shared<Inode>();
  return p->InstallFd(file);
}

}  // namespace lupine::guestos

#include "src/guestos/sched.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace lupine::guestos {

bool WaitQueue::Block(Nanos timeout) {
  Thread* self = sched_->current();
  assert(self != nullptr && "Block outside any thread");
  self->wait_channel = this;
  self->timed_out = false;
  waiters_.push_back(self);
  sched_->BlockCurrent(this, timeout);
  return !self->timed_out;
}

int WaitQueue::Wake(int n) {
  int woken = 0;
  while (woken < n && !waiters_.empty()) {
    Thread* thread = waiters_.front();
    waiters_.pop_front();
    thread->wait_channel = nullptr;
    sched_->WakeThread(thread);
    ++woken;
  }
  return woken;
}

int WaitQueue::WakeAll() { return Wake(static_cast<int>(waiters_.size())); }

Scheduler::Scheduler(VirtualClock* clock, const CostModel* costs,
                     const kbuild::KernelFeatures* features)
    : clock_(clock), costs_(costs), features_(features) {}

Scheduler::~Scheduler() = default;

Thread* Scheduler::Spawn(Process* process, std::function<void()> entry) {
  auto thread = std::make_unique<Thread>(next_tid_++, process, std::move(entry));
  Thread* raw = thread.get();
  threads_.push_back(std::move(thread));
  if (process != nullptr) {
    process->threads.push_back(raw);
  }
  ++alive_;
  Enqueue(raw);
  return raw;
}

void Scheduler::Enqueue(Thread* thread) {
  thread->state = ThreadState::kRunnable;
  runqueue_.push_back(thread);
}

Nanos Scheduler::SwitchCost(Thread* from, Thread* to) const {
  Nanos cycles = costs_->sched_pick + costs_->ctxsw_registers;
  if (features_->smp) {
    cycles += costs_->smp_lock;
  }
  // Cache refill: scaled by how hard the combined working sets press on
  // the cache (more ring processes -> colder caches per switch).
  double pressure = std::min(1.0, costs_->cache_pressure_base +
                                      static_cast<double>(total_working_set_kb_) *
                                          costs_->cache_pressure_per_kb);
  cycles += static_cast<Nanos>(static_cast<double>(to->working_set_kb) *
                               static_cast<double>(costs_->ctxsw_cache_per_kb) * pressure);
  // Longer runqueues cost a little more to scan/balance.
  cycles += costs_->ctxsw_per_queued *
            static_cast<Nanos>(std::min<size_t>(runqueue_.size(), 16));
  bool as_switch =
      from == nullptr || from->process() == nullptr || to->process() == nullptr ||
      from->process()->aspace_ptr() != to->process()->aspace_ptr();
  if (as_switch) {
    cycles += costs_->ctxsw_address_space;
  }
  return costs_->KernelCycles(*features_, cycles);
}

void Scheduler::Dispatch(Thread* next) {
  if (next != last_run_) {
    Nanos cost = SwitchCost(last_run_, next);
    clock_->Advance(cost);
    ++stats_.context_switches;
    if (last_run_ == nullptr || last_run_->process() == nullptr ||
        next->process() == nullptr ||
        last_run_->process()->aspace_ptr() != next->process()->aspace_ptr()) {
      ++stats_.address_space_switches;
    }
  }
  current_ = next;
  last_run_ = next;
  next->state = ThreadState::kRunning;
  slice_start_ = clock_->now();
  next->fiber()->Resume();
  if (next->fiber()->finished() && next->state != ThreadState::kZombie) {
    next->state = ThreadState::kZombie;
    --alive_;
  }
  if (next->state == ThreadState::kZombie) {
    next->ReleaseFiber();
  }
  current_ = nullptr;
}

size_t Scheduler::Run() {
  for (;;) {
    if (stop_requested_) {
      // Panic: whatever is still queued or blocked never runs again.
      return alive_;
    }
    // Promote sleepers that are due.
    while (!sleepers_.empty() && sleepers_.top().wake_time <= clock_->now()) {
      Sleeper sleeper = sleepers_.top();
      sleepers_.pop();
      Thread* thread = sleeper.thread;
      if (thread->state == ThreadState::kSleeping && thread->wake_time == sleeper.wake_time) {
        Enqueue(thread);
      } else if (thread->state == ThreadState::kBlocked && thread->wait_channel != nullptr &&
                 thread->wake_time == sleeper.wake_time) {
        // Timed wait expired: remove from its wait queue and wake with the
        // timed_out flag.
        auto* queue = static_cast<WaitQueue*>(thread->wait_channel);
        auto it = std::find(queue->waiters_.begin(), queue->waiters_.end(), thread);
        if (it != queue->waiters_.end()) {
          queue->waiters_.erase(it);
        }
        thread->wait_channel = nullptr;
        thread->timed_out = true;
        Enqueue(thread);
      }
      // Otherwise: stale entry (the thread was woken earlier); drop it.
    }

    if (runqueue_.empty()) {
      // Drop stale sleeper entries (threads already woken another way) so
      // the idle clock jump only targets live timers.
      while (!sleepers_.empty()) {
        const Sleeper& top = sleepers_.top();
        Thread* thread = top.thread;
        bool live = (thread->state == ThreadState::kSleeping &&
                     thread->wake_time == top.wake_time) ||
                    (thread->state == ThreadState::kBlocked &&
                     thread->wait_channel != nullptr && thread->wake_time == top.wake_time);
        if (live) {
          break;
        }
        sleepers_.pop();
      }
      if (sleepers_.empty()) {
        break;  // Nothing runnable or pending: simulation quiesced.
      }
      // Idle: jump the clock to the next timer and retry promotion.
      clock_->AdvanceTo(sleepers_.top().wake_time);
      continue;
    }

    Thread* next = runqueue_.front();
    runqueue_.pop_front();
    if (next->state != ThreadState::kRunnable) {
      continue;  // Zombie or re-blocked since being queued.
    }
    Dispatch(next);
  }

  size_t blocked = 0;
  for (const auto& thread : threads_) {
    if (thread->state == ThreadState::kBlocked) {
      ++blocked;
    }
  }
  return blocked;
}

void Scheduler::MaybePreempt() {
  if (current_ == nullptr || runqueue_.empty()) {
    return;
  }
  if (clock_->now() - slice_start_ < kTimeslice) {
    return;
  }
  ++stats_.preemptions;
  Enqueue(current_);
  Fiber::Yield();
}

void Scheduler::YieldCurrent() {
  assert(current_ != nullptr);
  ++stats_.voluntary_switches;
  Enqueue(current_);
  Fiber::Yield();
}

void Scheduler::SleepCurrent(Nanos duration) {
  assert(current_ != nullptr);
  Thread* self = current_;
  self->state = ThreadState::kSleeping;
  self->wake_time = clock_->now() + duration;
  sleepers_.push({self->wake_time, self});
  Fiber::Yield();
}

void Scheduler::ExitCurrent() {
  assert(current_ != nullptr);
  current_->state = ThreadState::kZombie;
  --alive_;
  Fiber::Yield();
  // A zombie is never dispatched again.
  std::abort();
}

void Scheduler::SetWorkingSet(Thread* thread, uint64_t kb) {
  total_working_set_kb_ -= std::min(total_working_set_kb_, thread->working_set_kb);
  thread->working_set_kb = kb;
  total_working_set_kb_ += kb;
}

void Scheduler::ChargeCpu(Nanos ns) {
  clock_->Advance(ns);
  if (current_ != nullptr) {
    current_->cpu_time += ns;
  }
}

void Scheduler::BlockCurrent(WaitQueue* queue, Nanos timeout) {
  (void)queue;
  Thread* self = current_;
  self->state = ThreadState::kBlocked;
  if (timeout > 0) {
    self->wake_time = clock_->now() + timeout;
    sleepers_.push({self->wake_time, self});
  } else {
    self->wake_time = 0;
  }
  Fiber::Yield();
}

void Scheduler::WakeThread(Thread* thread) {
  if (thread->state != ThreadState::kBlocked) {
    return;
  }
  Enqueue(thread);
}

}  // namespace lupine::guestos

// Syscall layer part 4: sockets, select/poll.
#include <algorithm>

#include "src/guestos/kernel.h"
#include "src/guestos/syscall_api.h"

namespace lupine::guestos {

using kbuild::Sys;

namespace {

constexpr Bytes kMss = 1448;  // Loopback segment payload.

}  // namespace

uint32_t SyscallApi::PacketsFor(Bytes bytes) {
  // Bulk sends are segmented by GSO/TSO into 64K super-packets; small sends
  // pay per-MSS costs.
  if (bytes >= 16 * 1024) {
    return static_cast<uint32_t>((bytes + 65535) / 65536);
  }
  return static_cast<uint32_t>((bytes + kMss - 1) / kMss);
}

void SyscallApi::ChargeTx(const std::shared_ptr<lupine::guestos::Socket>& peer_sock, Bytes bytes,
                          SockDomain domain) {
  uint32_t packets = std::max<uint32_t>(1, PacketsFor(bytes));
  const CostModel& c = k_->costs();
  Nanos per_packet = c.net_stack_per_packet;
  if (domain == SockDomain::kInet6) {
    per_packet += c.ipv6_extra_per_packet;
  }
  if (domain == SockDomain::kUnix) {
    per_packet = c.unix_transfer;
  }
  if (CurrentIsFree()) {
    // An external client sent this: the server pays the whole receive path
    // (stack + softirq) when it reads.
    if (peer_sock != nullptr) {
      peer_sock->uncharged_rx_packets += packets;
    }
    return;
  }
  ChargeKernel(static_cast<Nanos>(packets) * per_packet);
  ChargeCopy(bytes);
  if (peer_sock != nullptr) {
    // Receiver-side softirq cost settles on recv.
    peer_sock->uncharged_rx_packets += packets;
  }
}

Result<int> SyscallApi::Socket(SockDomain domain, SockType type) {
  Scope scope(this, Sys::kSocket);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "socket outside any process");
  }
  const auto& f = k_->features();
  if (k_->trace().enabled() && !CurrentIsFree()) {
    int pid = p->pid();
    if (domain == SockDomain::kUnix) {
      k_->trace().RecordFeature(pid, TraceFeature::kAfUnix);
    } else if (domain == SockDomain::kInet6) {
      k_->trace().RecordFeature(pid, TraceFeature::kAfInet6);
    } else if (domain == SockDomain::kPacket) {
      k_->trace().RecordFeature(pid, TraceFeature::kAfPacket);
    }
  }
  switch (domain) {
    case SockDomain::kUnix:
      if (!f.unix_sockets) {
        return Status(Err::kAfNoSupport, "address family AF_UNIX not supported");
      }
      break;
    case SockDomain::kInet:
      if (!f.inet) {
        return Status(Err::kAfNoSupport, "address family AF_INET not supported");
      }
      break;
    case SockDomain::kInet6:
      if (!f.ipv6) {
        return Status(Err::kAfNoSupport, "address family AF_INET6 not supported");
      }
      break;
    case SockDomain::kPacket:
      if (!f.packet_sockets) {
        return Status(Err::kAfNoSupport, "address family AF_PACKET not supported");
      }
      break;
  }
  ChargeKernel(k_->costs().socket_create);
  auto sock = k_->net().Create(domain, type);
  auto file = std::make_shared<FileDescription>();
  file->kind = FdKind::kSocket;
  file->socket = std::move(sock);
  return p->InstallFd(file);
}

Status SyscallApi::Bind(int fd, uint16_t port, const std::string& unix_path) {
  Scope scope(this, Sys::kBind);
  if (!scope.ok()) {
    return scope.status();
  }
  auto lookup = LookupFd(fd);
  if (!lookup.ok()) {
    return lookup.status();
  }
  if (lookup.value()->kind != FdKind::kSocket) {
    return Status(Err::kNotSock, "bind on non-socket");
  }
  ChargeKernel(300);
  return k_->net().Bind(lookup.value()->socket, port, unix_path);
}

Status SyscallApi::Listen(int fd, int backlog) {
  Scope scope(this, Sys::kListen);
  if (!scope.ok()) {
    return scope.status();
  }
  auto lookup = LookupFd(fd);
  if (!lookup.ok()) {
    return lookup.status();
  }
  if (lookup.value()->kind != FdKind::kSocket) {
    return Status(Err::kNotSock, "listen on non-socket");
  }
  ChargeKernel(250);
  return k_->net().Listen(lookup.value()->socket, backlog);
}

Result<int> SyscallApi::Accept(int fd) {
  Scope scope(this, Sys::kAccept);
  if (!scope.ok()) {
    return scope.status();
  }
  auto lookup = LookupFd(fd);
  if (!lookup.ok()) {
    return lookup.status();
  }
  if (lookup.value()->kind != FdKind::kSocket) {
    return Status(Err::kNotSock, "accept on non-socket");
  }
  auto conn = k_->net().Accept(lookup.value()->socket);
  if (!conn.ok()) {
    return conn.status();
  }
  // Handshake bookkeeping is charged to the acceptor.
  ChargeKernel(k_->costs().tcp_connect);
  ChargeKernel(k_->costs().work_fd_alloc);
  auto file = std::make_shared<FileDescription>();
  file->kind = FdKind::kSocket;
  file->socket = conn.take();
  return CurrentProcess()->InstallFd(file);
}

Status SyscallApi::Connect(int fd, uint16_t port, const std::string& unix_path) {
  Scope scope(this, Sys::kConnect);
  if (!scope.ok()) {
    return scope.status();
  }
  auto lookup = LookupFd(fd);
  if (!lookup.ok()) {
    return lookup.status();
  }
  if (lookup.value()->kind != FdKind::kSocket) {
    return Status(Err::kNotSock, "connect on non-socket");
  }
  ChargeKernel(k_->costs().tcp_connect);
  return k_->net().Connect(lookup.value()->socket, port, unix_path);
}

Result<size_t> SyscallApi::Send(int fd, const std::string& data) {
  Scope scope(this, Sys::kSendto);
  if (!scope.ok()) {
    return scope.status();
  }
  auto lookup = LookupFd(fd);
  if (!lookup.ok()) {
    return lookup.status();
  }
  auto& file = lookup.value();
  if (file->kind != FdKind::kSocket) {
    return Status(Err::kNotSock, "send on non-socket");
  }
  auto peer = file->socket->peer.lock();
  ChargeTx(peer, data.size(), file->socket->domain);
  Status s = file->socket->type == SockType::kDgram
                 ? k_->net().SendDgram(file->socket, data)
                 : k_->net().Send(file->socket, data);
  if (!s.ok()) {
    return s;
  }
  return data.size();
}

Result<std::string> SyscallApi::Recv(int fd, size_t max_bytes) {
  Scope scope(this, Sys::kRecvfrom);
  if (!scope.ok()) {
    return scope.status();
  }
  auto lookup = LookupFd(fd);
  if (!lookup.ok()) {
    return lookup.status();
  }
  auto& file = lookup.value();
  if (file->kind != FdKind::kSocket) {
    return Status(Err::kNotSock, "recv on non-socket");
  }
  auto& sock = file->socket;

  Result<std::string> data = sock->type == SockType::kDgram
                                 ? k_->net().RecvDgram(sock)
                                 : k_->net().Recv(sock, max_bytes);
  if (!data.ok()) {
    return data;
  }
  // Settle the receive-path cost for packets consumed.
  if (!CurrentIsFree() && sock->uncharged_rx_packets > 0) {
    uint32_t packets = std::min(sock->uncharged_rx_packets,
                                std::max<uint32_t>(1, PacketsFor(data.value().size())));
    sock->uncharged_rx_packets -= packets;
    const CostModel& c = k_->costs();
    ChargeKernel(static_cast<Nanos>(packets) * (c.softirq_per_packet + c.net_stack_per_packet));
    ChargeCopy(data.value().size());
  }
  return data;
}

Result<std::pair<int, int>> SyscallApi::SocketPair(SockType type) {
  Scope scope(this, Sys::kSocket);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "socketpair outside any process");
  }
  if (!k_->features().unix_sockets) {
    return Status(Err::kAfNoSupport, "address family AF_UNIX not supported");
  }
  ChargeKernel(2 * k_->costs().socket_create);
  auto [a, b] = k_->net().CreatePair(type);
  auto fa = std::make_shared<FileDescription>();
  fa->kind = FdKind::kSocket;
  fa->socket = a;
  auto fb = std::make_shared<FileDescription>();
  fb->kind = FdKind::kSocket;
  fb->socket = b;
  int fd_a = p->InstallFd(fa);
  int fd_b = p->InstallFd(fb);
  return std::make_pair(fd_a, fd_b);
}

Status SyscallApi::Setsockopt(int fd) {
  Scope scope(this, Sys::kSetsockopt);
  if (!scope.ok()) {
    return scope.status();
  }
  auto lookup = LookupFd(fd);
  if (!lookup.ok()) {
    return lookup.status();
  }
  ChargeKernel(110);
  return Status::Ok();
}

Status SyscallApi::Select(int nfds, bool tcp_fds) {
  Scope scope(this, Sys::kSelect);
  if (!scope.ok()) {
    return scope.status();
  }
  Nanos per_fd = tcp_fds ? k_->costs().select_per_tcp_fd : k_->costs().select_per_file_fd;
  ChargeKernel(k_->costs().work_select_base + per_fd * static_cast<Nanos>(nfds));
  return Status::Ok();
}

Status SyscallApi::Poll(const std::vector<int>& fds) {
  Scope scope(this, Sys::kPoll);
  if (!scope.ok()) {
    return scope.status();
  }
  ChargeKernel(k_->costs().work_select_base / 2 +
               k_->costs().work_poll_per_fd * static_cast<Nanos>(fds.size()));
  return Status::Ok();
}

}  // namespace lupine::guestos

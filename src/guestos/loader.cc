#include "src/guestos/loader.h"

#include <sstream>

namespace lupine::guestos {
namespace {

constexpr char kMagic[] = "#LUPINE_ELF v1";
constexpr char kScriptMagic[] = "#!lupine-init";

}  // namespace

std::string FormatBinary(const BinaryInfo& info) {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "app=" << info.app << "\n";
  out << "libc=" << info.libc << "\n";
  if (!info.interp.empty()) {
    out << "interp=" << info.interp << "\n";
  }
  out << "text_kb=" << info.text_kb << "\n";
  out << "data_kb=" << info.data_kb << "\n";
  out << "bss_kb=" << info.bss_kb << "\n";
  out << "stack_kb=" << info.stack_kb << "\n";
  return out.str();
}

Result<BinaryInfo> ParseBinary(const std::string& content) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status(Err::kInval, "exec format error: bad magic");
  }
  BinaryInfo info;
  while (std::getline(in, line)) {
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    if (key == "app") {
      info.app = value;
    } else if (key == "libc") {
      info.libc = value;
    } else if (key == "interp") {
      info.interp = value;
    } else if (key == "text_kb") {
      info.text_kb = std::stoull(value);
    } else if (key == "data_kb") {
      info.data_kb = std::stoull(value);
    } else if (key == "bss_kb") {
      info.bss_kb = std::stoull(value);
    } else if (key == "stack_kb") {
      info.stack_kb = std::stoull(value);
    }
  }
  if (info.app.empty()) {
    return Status(Err::kInval, "exec format error: missing app entry point");
  }
  return info;
}

bool IsInitScript(const std::string& content) {
  return content.rfind(kScriptMagic, 0) == 0;
}

void AppRegistry::Register(const std::string& name, AppMain main) {
  apps_[name] = std::move(main);
}

const AppMain* AppRegistry::Find(const std::string& name) const {
  auto it = apps_.find(name);
  return it == apps_.end() ? nullptr : &it->second;
}

std::vector<std::string> AppRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(apps_.size());
  for (const auto& [name, main] : apps_) {
    names.push_back(name);
  }
  return names;
}

AppRegistry& AppRegistry::Global() {
  static AppRegistry registry;
  return registry;
}

}  // namespace lupine::guestos

// Syscall tracing (ktrace/strace-style).
//
// The paper leaves application-manifest generation to "static or dynamic
// analysis [30, 31, 37]" (Section 3.1.1). This is the dynamic-analysis
// substrate: when enabled, the kernel records every syscall a guest process
// issues plus the feature-probing events that are not visible at syscall
// granularity (socket address families, mounted filesystem types,
// /proc/sys accesses). src/core/manifest_gen.* turns a trace into a kernel
// configuration.
#ifndef SRC_GUESTOS_TRACE_H_
#define SRC_GUESTOS_TRACE_H_

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/kbuild/syscalls.h"
#include "src/util/units.h"

namespace lupine::guestos {

// Feature usage that syscall numbers alone cannot express.
enum class TraceFeature {
  kAfUnix,
  kAfInet6,
  kAfPacket,
  kMountTmpfs,
  kMountHugetlbfs,
  kProcSysctl,
};

struct SyscallTraceEvent {
  int pid = 0;
  kbuild::Sys nr = kbuild::Sys::kRead;
};

// A kernel panic with its virtual-clock timestamp. Unlike syscall tracing
// (opt-in, high-volume), panics are always recorded: they are the signal the
// supervising VMM reconstructs incident timelines from.
struct PanicEvent {
  Nanos at = 0;
  std::string reason;
};

class TraceLog {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  void RecordSyscall(int pid, kbuild::Sys nr) {
    if (enabled_) {
      syscalls_.push_back({pid, nr});
      distinct_syscalls_.insert(static_cast<int>(nr));
    }
  }
  void RecordFeature(int pid, TraceFeature feature) {
    if (enabled_) {
      features_.emplace_back(pid, feature);
    }
  }

  void RecordPanic(Nanos at, std::string reason) {
    panics_.push_back({at, std::move(reason)});
  }

  const std::vector<SyscallTraceEvent>& syscalls() const { return syscalls_; }
  const std::vector<std::pair<int, TraceFeature>>& features() const { return features_; }
  const std::vector<PanicEvent>& panics() const { return panics_; }
  size_t distinct_syscall_count() const { return distinct_syscalls_.size(); }

  void Clear() {
    syscalls_.clear();
    features_.clear();
    distinct_syscalls_.clear();
    panics_.clear();
  }

 private:
  bool enabled_ = false;
  std::vector<SyscallTraceEvent> syscalls_;
  std::vector<std::pair<int, TraceFeature>> features_;
  std::vector<PanicEvent> panics_;
  std::set<int> distinct_syscalls_;
};

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_TRACE_H_

// Syscall tracing (ktrace/strace-style).
//
// The paper leaves application-manifest generation to "static or dynamic
// analysis [30, 31, 37]" (Section 3.1.1). This is the dynamic-analysis
// substrate: when enabled, the kernel records every syscall a guest process
// issues plus the feature-probing events that are not visible at syscall
// granularity (socket address families, mounted filesystem types,
// /proc/sys accesses). src/core/manifest_gen.* turns a trace into a kernel
// configuration.
//
// Every buffer is bounded: a supervised server traced for a long run would
// otherwise grow guest memory without limit. Beyond `capacity` events per
// buffer the oldest are dropped (drop-oldest keeps the recent window, which
// is what incident forensics wants) and the drop is counted, so consumers
// can tell a complete trace from a windowed one.
#ifndef SRC_GUESTOS_TRACE_H_
#define SRC_GUESTOS_TRACE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <utility>

#include "src/kbuild/syscalls.h"
#include "src/util/units.h"

namespace lupine::telemetry {
class MetricRegistry;
}  // namespace lupine::telemetry

namespace lupine::guestos {

// Feature usage that syscall numbers alone cannot express.
enum class TraceFeature {
  kAfUnix,
  kAfInet6,
  kAfPacket,
  kMountTmpfs,
  kMountHugetlbfs,
  kProcSysctl,
};

struct SyscallTraceEvent {
  int pid = 0;
  kbuild::Sys nr = kbuild::Sys::kRead;
};

// Always-on per-syscall-number accounting: invocation count and virtual-ns
// latency (entry to exit, including any time blocked inside the call).
// A fixed array indexed by syscall number — O(1) per call, no allocation,
// so it stays on even when event tracing is off. This is what makes KML vs
// non-KML deltas observable per syscall instead of only as table5
// aggregates.
struct SyscallStat {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;
};

// A kernel panic with its virtual-clock timestamp. Unlike syscall tracing
// (opt-in, high-volume), panics are always recorded: they are the signal the
// supervising VMM reconstructs incident timelines from.
struct PanicEvent {
  Nanos at = 0;
  std::string reason;
};

class TraceLog {
 public:
  // Default per-buffer cap: generous for manifest generation (a traced app
  // boot issues a few thousand syscalls) while bounding supervised runs.
  static constexpr size_t kDefaultCapacity = 65536;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Per-buffer event cap; 0 = unbounded. Shrinking trims oldest immediately
  // (trimmed events count as dropped).
  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity) {
    capacity_ = capacity;
    dropped_syscalls_ += Trim(syscalls_);
    dropped_features_ += Trim(features_);
    dropped_panics_ += Trim(panics_);
  }

  void RecordSyscall(int pid, kbuild::Sys nr) {
    if (enabled_) {
      syscalls_.push_back({pid, nr});
      distinct_syscalls_.insert(static_cast<int>(nr));
      dropped_syscalls_ += Trim(syscalls_);
    }
  }
  void RecordFeature(int pid, TraceFeature feature) {
    if (enabled_) {
      features_.emplace_back(pid, feature);
      dropped_features_ += Trim(features_);
    }
  }

  void RecordPanic(Nanos at, std::string reason) {
    panics_.push_back({at, std::move(reason)});
    dropped_panics_ += Trim(panics_);
  }

  // Always-on (independent of enabled_): called from the syscall Scope
  // destructor for every priced syscall.
  void AccountSyscall(kbuild::Sys nr, Nanos latency) {
    const auto index = static_cast<size_t>(nr);
    if (index >= syscall_stats_.size() || latency < 0) {
      return;
    }
    SyscallStat& stat = syscall_stats_[index];
    const auto ns = static_cast<uint64_t>(latency);
    if (stat.count == 0 || ns < stat.min_ns) {
      stat.min_ns = ns;
    }
    if (ns > stat.max_ns) {
      stat.max_ns = ns;
    }
    ++stat.count;
    stat.total_ns += ns;
  }

  const std::deque<SyscallTraceEvent>& syscalls() const { return syscalls_; }
  const std::deque<std::pair<int, TraceFeature>>& features() const { return features_; }
  const std::deque<PanicEvent>& panics() const { return panics_; }
  // Distinct syscall numbers ever seen — a set over values, not a buffer, so
  // drops never lose a number (manifest generation stays exact).
  size_t distinct_syscall_count() const { return distinct_syscalls_.size(); }

  const std::array<SyscallStat, kbuild::kNumSyscalls>& syscall_stats() const {
    return syscall_stats_;
  }
  uint64_t accounted_syscalls() const {
    uint64_t total = 0;
    for (const SyscallStat& stat : syscall_stats_) {
      total += stat.count;
    }
    return total;
  }

  // Events discarded by the cap, per buffer, since the last Clear().
  size_t dropped_syscalls() const { return dropped_syscalls_; }
  size_t dropped_features() const { return dropped_features_; }
  size_t dropped_panics() const { return dropped_panics_; }
  size_t dropped_total() const {
    return dropped_syscalls_ + dropped_features_ + dropped_panics_;
  }

  void Clear() {
    syscalls_.clear();
    features_.clear();
    distinct_syscalls_.clear();
    panics_.clear();
    syscall_stats_.fill(SyscallStat{});
    dropped_syscalls_ = 0;
    dropped_features_ = 0;
    dropped_panics_ = 0;
  }

 private:
  template <typename Buffer>
  size_t Trim(Buffer& buffer) {
    size_t dropped = 0;
    if (capacity_ != 0) {
      while (buffer.size() > capacity_) {
        buffer.pop_front();
        ++dropped;
      }
    }
    return dropped;
  }

  bool enabled_ = false;
  size_t capacity_ = kDefaultCapacity;
  std::deque<SyscallTraceEvent> syscalls_;
  std::deque<std::pair<int, TraceFeature>> features_;
  std::deque<PanicEvent> panics_;
  std::array<SyscallStat, kbuild::kNumSyscalls> syscall_stats_{};
  std::set<int> distinct_syscalls_;
  size_t dropped_syscalls_ = 0;
  size_t dropped_features_ = 0;
  size_t dropped_panics_ = 0;
};

// Surfaces the per-syscall table as labeled registry metrics:
//   counter   guest.syscall_count{app,kml,syscall}
//   histogram guest.syscall_ns{app,kml,syscall}
// The table stores exact count/sum/min/max per syscall (not raw samples),
// so the histogram is reconstructed to preserve those four exactly: min and
// max observed once each, the remaining mass at the adjusted mean. In this
// deterministic cost model per-syscall latencies are near-constant, so the
// percentiles are representative; count/min/mean/max are exact.
void PublishSyscallMetrics(const TraceLog& trace, telemetry::MetricRegistry& registry,
                           const std::string& app, bool kml);

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_TRACE_H_

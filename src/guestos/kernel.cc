#include "src/guestos/kernel.h"

#include "src/guestos/syscall_api.h"
#include "src/util/log.h"

namespace lupine::guestos {
namespace {

// Fraction of the kernel image resident after boot: cold init text and
// never-used paths are reclaimed / stay unmapped, so resident size scales
// with image size but below 1:1.
constexpr double kResidentFraction = 0.72;

// Boot-time floor independent of config: slab caches, per-CPU areas,
// network buffers, and the resident page cache of the base rootfs (libc,
// busybox) that every Alpine-derived guest touches. Calibrated so the
// hello-world footprints land at the paper's ~21 MB (lupine) / ~29 MB
// (microVM) with the kernel-image-dependent part on top.
constexpr Bytes kSlabBase = 17 * kMiB;

// The process-wide null injector backing every kernel built without a fault
// plan; Check() on it is a single always-false branch.
FaultInjector& NullFaultInjector() {
  static FaultInjector null;
  return null;
}

}  // namespace

Nanos BootTrace::Total() const {
  Nanos total = 0;
  for (const auto& phase : phases) {
    total += phase.duration;
  }
  return total;
}

BootPlan ComputeBootPlan(const kbuild::KernelImage& image, const CostModel* costs_in) {
  const CostModel& costs = costs_in != nullptr ? *costs_in : DefaultCostModel();
  const kbuild::KernelFeatures& f = image.features;
  BootPlan plan;

  plan.resident =
      static_cast<Bytes>(static_cast<double>(image.size) * kResidentFraction) + kSlabBase;
  plan.decompress = static_cast<Nanos>(ToMiB(image.size) *
                                       static_cast<double>(costs.boot_decompress_per_mb));

  // Core init: arch setup, memory management, scheduler.
  plan.core_init = costs.boot_core_init;
  if (!f.paravirt) {
    // Without CONFIG_PARAVIRT, timer and TSC calibration loops run in full
    // (Section 4.3: Lupine+KML boots in 71 ms instead of 23 ms).
    plan.core_init += costs.boot_no_paravirt_penalty;
  }
  if (f.smp) {
    plan.smp_bringup = costs.boot_smp_bringup;
  }
  if (f.pci) {
    plan.pci_enumeration = costs.boot_pci_enumeration;
  }

  // Initcalls: every built-in option contributes initialization work; the
  // per-category costs make driver-heavy configs (microVM) pay most.
  size_t categorized = f.driver_options + f.net_options + f.fs_options + f.crypto_options +
                       f.debug_options;
  size_t other = f.enabled_options > categorized ? f.enabled_options - categorized : 0;
  Nanos initcalls = 0;
  initcalls += static_cast<Nanos>(f.driver_options) * costs.boot_initcall_driver;
  initcalls += static_cast<Nanos>(f.net_options) * costs.boot_initcall_net;
  initcalls += static_cast<Nanos>(f.fs_options) * costs.boot_initcall_fs;
  initcalls += static_cast<Nanos>(f.crypto_options) * costs.boot_initcall_crypto;
  initcalls += static_cast<Nanos>(f.debug_options) * costs.boot_initcall_debug;
  initcalls += static_cast<Nanos>(other) * costs.boot_initcall_other;
  if (f.acpi) {
    initcalls += costs.boot_acpi_tables;
  }
  plan.initcalls = initcalls;

  plan.rootfs_mount = costs.boot_rootfs_mount;
  plan.banner = "Linux version 4.0.0-lupine (" + image.name + ")\n";
  return plan;
}

Kernel::Kernel(const kbuild::KernelImage& image, Bytes memory_limit,
               const AppRegistry* registry, FaultInjector* faults)
    : image_(image),
      costs_(&DefaultCostModel()),
      registry_(registry != nullptr ? registry : &AppRegistry::Global()),
      faults_(faults != nullptr ? faults : &NullFaultInjector()),
      mm_(std::make_unique<MemoryManager>(memory_limit)),
      sched_(std::make_unique<Scheduler>(&clock_, costs_, &image_.features)),
      net_(std::make_unique<NetStack>(sched_.get())),
      futexes_(std::make_unique<FutexTable>(sched_.get())),
      sys_(std::make_unique<SyscallApi>(this)) {
  mm_->set_fault_injector(faults_);
  net_->set_fault_injector(faults_);
}

Kernel::~Kernel() = default;

void Kernel::Phase(const char* name, Nanos duration) {
  clock_.Advance(duration);
  boot_trace_.phases.push_back({name, duration});
  if (boot_spans_ != nullptr) {
    boot_spans_->Record(name, clock_.now() - duration, clock_.now());
  }
}

Status Kernel::Boot(const std::string& rootfs_blob, const BootPlan* plan_in) {
  const kbuild::KernelFeatures& f = image_.features;

  // The image-invariant part of the boot either arrives precomputed (fleet
  // callers derive it once per image) or is derived here for this boot.
  BootPlan local;
  if (plan_in == nullptr) {
    local = ComputeBootPlan(image_, costs_);
    plan_in = &local;
  }
  const BootPlan& plan = *plan_in;

  // Resident kernel memory (text + data + static structures).
  if (Status s = mm_->AllocatePages(PagesForBytes(plan.resident), "kernel-resident");
      !s.ok()) {
    oom_ = true;
    return s;
  }

  // Decompress/relocate the image.
  Phase("decompress", plan.decompress);
  if (faults_->Check(FaultSite::kBootDecompress)) {
    console_.Write("crc error\n\n-- System halted\n");
    return Status(Err::kIo, "kernel decompression failed: crc error");
  }
  if (faults_->Check(FaultSite::kBootStall)) {
    // The decompressor wedges but eventually limps through: boot still
    // succeeds, only after a virtual stall no monitor should sit out. This
    // is the failure mode stage deadlines exist for — without one the shard
    // absorbs the whole stall; with one the monitor kills at the deadline.
    // The penalty is the firing rule's custom stall when set (fault plans
    // use small stalls to model skewed per-app boot costs), else 60s.
    Phase("boot-stall", faults_->stall_penalty());
  }

  Phase("core-init", plan.core_init);

  if (plan.smp_bringup >= 0) {
    Phase("smp-bringup", plan.smp_bringup);
  }
  if (plan.pci_enumeration >= 0) {
    Phase("pci-enumeration", plan.pci_enumeration);
  }

  Phase("initcalls", plan.initcalls);
  if (faults_->Check(FaultSite::kBootInitcall)) {
    console_.Write("initcall lupine_subsys_init+0x0/0x40 returned -5\n");
    return Status(Err::kIo, "initcall failed during boot");
  }

  // Device setup: console + rootfs block device.
  if (!f.tty) {
    console_.Write("Warning: no console device configured\n");
  }

  // Mount the root filesystem. A kRootfsCorrupt fault models a bad block
  // clobbering the superblock: the flipped magic byte makes the mount fail
  // deterministically (a flip in file payload could go unnoticed).
  const std::string* blob = &rootfs_blob;
  std::string corrupted;
  bool injected_corruption = false;
  if (faults_->Check(FaultSite::kRootfsCorrupt) && !rootfs_blob.empty()) {
    corrupted = rootfs_blob;
    corrupted[0] ^= 0xFF;
    blob = &corrupted;
    injected_corruption = true;
  }
  auto spec = ParseRootfs(*blob);
  if (!spec.ok()) {
    console_.Write("VFS: Cannot open root device\n");
    if (injected_corruption) {
      // The injected flip models a transient bad-block read, not a
      // malformed image: surface it as an I/O error so the fleet retry
      // policy (and quarantine's rebuild credit) applies. A genuinely
      // malformed blob keeps ParseRootfs's kInval and fails fast.
      return Status(Err::kIo, "rootfs read error (bad block): " + spec.status().message());
    }
    return spec.status();
  }
  if (Status s = MountRootfs(spec.value(), vfs_); !s.ok()) {
    return s;
  }
  // Rootfs metadata (inode/dentry cache): one page per 8 entries.
  if (Status s = mm_->AllocatePages((spec.value().size() + 7) / 8, "dentry-cache"); !s.ok()) {
    oom_ = true;
    return s;
  }
  Phase("rootfs-mount", plan.rootfs_mount);

  // Standard device nodes (devtmpfs) and kernel-managed mounts.
  if (f.devtmpfs) {
    (void)vfs_.CreateDir("/dev");
    (void)vfs_.CreateDevice("/dev/null", DevId::kNull);
    (void)vfs_.CreateDevice("/dev/zero", DevId::kZero);
    (void)vfs_.CreateDevice("/dev/urandom", DevId::kUrandom);
    (void)vfs_.CreateDevice("/dev/console", DevId::kConsole);
  }

  console_.Write(plan.banner);
  booted_ = true;
  return Status::Ok();
}

Result<Process*> Kernel::StartInit(const std::string& path, std::vector<std::string> argv) {
  if (!booted_) {
    return Status(Err::kInval, "kernel not booted");
  }
  Phase("init-exec", costs_->boot_init_exec);

  auto aspace = std::make_shared<AddressSpace>(mm_.get());
  Process* init = CreateProcess(/*ppid=*/0, std::move(aspace), "init");
  if (argv.empty()) {
    argv = {path};
  }
  sched_->Spawn(init, [this, path, argv]() {
    Status s = sys_->Execve(path, argv);
    if (!s.ok()) {
      Panic("No working init found (" + s.ToString() + ")");
    }
  });
  return init;
}

size_t Kernel::Run() {
  size_t blocked = sched_->Run();
  if (oom_ && !panicked_) {
    Process* init = FindProcess(1);
    if (init == nullptr || !init->exited) {
      Panic("Out of memory and no killable processes...");
    }
  }
  return blocked;
}

void Kernel::Panic(const std::string& reason) {
  if (panicked_) {
    return;
  }
  panicked_ = true;
  panic_reason_ = reason;

  // The oops dump an operator (or the supervising VMM's log scraper) greps.
  Thread* current = sched_->current();
  Process* process = current != nullptr ? current->process() : nullptr;
  console_.Write("Kernel panic - not syncing: " + reason + "\n");
  console_.Write("CPU: 0 PID: " + std::to_string(process != nullptr ? process->pid() : 0) +
                 " Comm: " + (process != nullptr ? process->name() : "swapper") +
                 " Not tainted 4.0.0-lupine #1\n");
  console_.Write("Call Trace:\n ? panic+0x1a8/0x39e\n ? do_exit+0x3c/0xa80\n");

  const int timeout = image_.features.panic_timeout;
  reboot_on_panic_ = timeout != 0;
  if (timeout > 0) {
    // CONFIG_PANIC_TIMEOUT > 0: sit in the panic loop for N seconds of
    // virtual time, then request the reboot.
    console_.Write("Rebooting in " + std::to_string(timeout) + " seconds..\n");
    clock_.Advance(Seconds(timeout));
  } else if (timeout < 0) {
    console_.Write("Rebooting immediately..\n");
  } else {
    console_.Write("---[ end Kernel panic - not syncing: " + reason + " ]---\n");
  }
  trace_.RecordPanic(clock_.now(), reason);

  // A panicked kernel never schedules again.
  sched_->RequestStop();
  if (current != nullptr) {
    if (process != nullptr) {
      ExitProcess(process, 128 + 6 /* SIGABRT: the crashing task */);
    }
    sched_->ExitCurrent();
  }
}

Process* Kernel::CreateProcess(int ppid, std::shared_ptr<AddressSpace> aspace,
                               std::string name) {
  int pid = next_pid_++;
  auto process = std::make_unique<Process>(pid, ppid, std::move(aspace), std::move(name));
  Process* raw = process.get();
  processes_.emplace(pid, std::move(process));
  if (Process* parent = FindProcess(ppid)) {
    parent->children.push_back(pid);
  }
  PublishProcDir(raw);
  return raw;
}

void Kernel::PublishProcDir(Process* process) {
  // Per-process procfs entries appear only once /proc is mounted.
  if (!vfs_.IsMounted("/proc") || process == nullptr) {
    return;
  }
  std::string dir = "/proc/" + std::to_string(process->pid());
  (void)vfs_.CreateDir(dir);
  (void)vfs_.CreateFile(dir + "/status", "Name:\t" + process->name() + "\nState:\tR (running)\nPid:\t" +
                                       std::to_string(process->pid()) + "\nPPid:\t" +
                                       std::to_string(process->ppid()) + "\n");
  std::string cmdline = process->name();
  (void)vfs_.CreateFile(dir + "/cmdline", cmdline + std::string(1, '\0'));
}

void Kernel::PublishAllProcDirs() {
  for (const auto& [pid, process] : processes_) {
    if (!process->exited) {
      PublishProcDir(process.get());
    }
  }
}

Process* Kernel::FindProcess(int pid) const {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

void Kernel::ExitProcess(Process* process, int code) {
  if (process == nullptr || process->exited) {
    return;
  }
  process->exited = true;
  process->exit_code = code;
  // Close every fd (wakes peers blocked on sockets/pipes).
  for (const auto& file : process->TakeAllFds()) {
    if (file == nullptr) {
      continue;
    }
    if (file->kind == FdKind::kSocket && file->socket != nullptr) {
      net_->Close(file->socket);
    }
    if (file->kind == FdKind::kPipeWrite && file->pipe != nullptr) {
      file->pipe->write_closed = true;
      file->pipe->read_wq.WakeAll();
    }
    if (file->kind == FdKind::kPipeRead && file->pipe != nullptr) {
      file->pipe->read_closed = true;
      file->pipe->write_wq.WakeAll();
    }
  }
  // Release the address space (frees anonymous pages & page tables).
  process->set_aspace(nullptr);
  ExitQueue(process->pid()).WakeAll();
  // Parent-level queue for wait4(-1) (keyed by negated parent pid).
  ExitQueue(-process->ppid()).WakeAll();
}

WaitQueue& Kernel::ExitQueue(int pid) {
  auto& queue = exit_queues_[pid];
  if (queue == nullptr) {
    queue = std::make_unique<WaitQueue>(sched_.get());
  }
  return *queue;
}

WaitQueue& Kernel::PauseQueue() {
  if (pause_queue_ == nullptr) {
    pause_queue_ = std::make_unique<WaitQueue>(sched_.get());
  }
  return *pause_queue_;
}

Status Kernel::ChargePageCache(Inode& inode, Bytes logical_size) {
  if (inode.in_page_cache) {
    return Status::Ok();
  }
  uint64_t pages = PagesForBytes(logical_size);
  if (Status s = mm_->AllocatePages(pages, "page-cache"); !s.ok()) {
    oom_ = true;
    return s;
  }
  // Cold read: the data comes off the virtio block device the first time.
  Thread* current = sched_->current();
  if (current != nullptr && current->process() != nullptr &&
      !current->process()->free_run) {
    sched_->ChargeCpu(costs_->KernelCycles(image_.features,
                                           static_cast<Nanos>(pages) *
                                               costs_->disk_read_per_page));
  }
  inode.in_page_cache = true;
  return Status::Ok();
}

}  // namespace lupine::guestos

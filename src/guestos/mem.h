// Physical memory accounting and per-process address spaces.
//
// The memory-footprint experiment (Fig. 8) boots a VM with progressively less
// RAM until the workload fails, so the guest must really account every page:
// kernel text/data, slab, page tables, page cache, and anonymous memory that
// is allocated lazily on first touch (the laziness is what makes Linux-based
// footprints flat across applications, Section 4.4).
#ifndef SRC_GUESTOS_MEM_H_
#define SRC_GUESTOS_MEM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/fault.h"
#include "src/util/result.h"
#include "src/util/units.h"

namespace lupine::guestos {

inline constexpr Bytes kPageSize = 4096;

// Virtual reservation for a process heap (brk region); pages appear lazily.
inline constexpr Bytes kHeapReserve = 64 * 1024 * 1024;

inline uint64_t PagesForBytes(Bytes bytes) { return (bytes + kPageSize - 1) / kPageSize; }

// Physical memory of one VM. Allocation fails when the configured limit is
// exhausted (the guest OOMs).
class MemoryManager {
 public:
  explicit MemoryManager(Bytes limit) : limit_(limit) {}

  Status AllocatePages(uint64_t pages, const char* tag);
  void FreePages(uint64_t pages);

  Bytes limit() const { return limit_; }
  Bytes used() const { return used_pages_ * kPageSize; }
  Bytes available() const { return limit_ - used(); }
  uint64_t used_pages() const { return used_pages_; }

  // High-water mark: the basis of the footprint measurement.
  Bytes peak() const { return peak_pages_ * kPageSize; }

  // Non-owning; the kMemAlloc site makes AllocatePages fail on schedule.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

 private:
  Bytes limit_;
  uint64_t used_pages_ = 0;
  uint64_t peak_pages_ = 0;
  FaultInjector* faults_ = nullptr;
};

enum class VmaKind { kText, kData, kHeap, kStack, kFile, kShared };

struct Vma {
  uint64_t start_page = 0;  // Virtual page number.
  uint64_t num_pages = 0;
  VmaKind kind = VmaKind::kData;
  std::string name;          // For /proc/<pid>/maps-style inspection.
  // Which pages are populated (index into the VMA). Shared VMAs populate in
  // the owner only.
  std::vector<bool> present;
  // Pages this address space charged to the MemoryManager for this VMA
  // (a forked child references parent pages without owning them).
  uint64_t owned = 0;

  uint64_t end_page() const { return start_page + num_pages; }
  uint64_t resident_pages() const;
};

// A virtual address space: an ordered set of VMAs with demand paging.
// Threads of one process share an AddressSpace via shared_ptr.
class AddressSpace {
 public:
  explicit AddressSpace(MemoryManager* mm) : mm_(mm) {}
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Maps `bytes` of address space; returns the VMA id. Nothing is populated
  // until Touch (demand paging), except `populate_now` (e.g. MAP_POPULATE or
  // text brought in by the loader).
  Result<int> Map(Bytes bytes, VmaKind kind, const std::string& name, bool populate_now = false);
  Status Unmap(int vma_id);

  // Touches `bytes` starting at `offset` within the VMA; allocates any
  // missing pages and returns the number of page faults taken.
  Result<uint64_t> Touch(int vma_id, Bytes offset, Bytes bytes);

  // Clones this address space for fork(): VMAs are copied, resident pages
  // become shared copy-on-write (we charge page-table pages, not data pages).
  Result<std::unique_ptr<AddressSpace>> ForkCopy() const;

  uint64_t resident_pages() const;
  uint64_t page_table_pages() const;
  size_t vma_count() const { return vmas_.size(); }
  const Vma* FindVma(int vma_id) const;

 private:
  MemoryManager* mm_;
  std::map<int, Vma> vmas_;
  int next_vma_id_ = 1;
  uint64_t next_free_page_ = 0x1000;  // Simple bump allocation of VA space.
  uint64_t owned_pages_ = 0;          // Pages charged to this AS.
};

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_MEM_H_

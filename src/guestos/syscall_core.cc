// Syscall layer part 1: entry/exit pricing, identity, processes, memory.
#include <algorithm>

#include "src/guestos/kernel.h"
#include "src/guestos/syscall_api.h"

namespace lupine::guestos {

using kbuild::Sys;

// ---------------------------------------------------------------------------
// Scope: per-syscall entry/exit accounting.
// ---------------------------------------------------------------------------

SyscallApi::Scope::Scope(SyscallApi* api, Sys nr) : api_(api), nr_(nr) {
  Kernel* k = api_->k_;
  free_run_ = api_->CurrentIsFree();
  status_ = api_->CheckEnabled(nr);
  if (free_run_) {
    return;  // External load generators are neither priced nor traced.
  }
  entry_ = k->clock().now();
  if (k->trace().enabled()) {
    Process* traced = api_->CurrentProcess();
    k->trace().RecordSyscall(traced != nullptr ? traced->pid() : 0, nr);
  }
  const auto& f = k->features();
  Process* p = api_->CurrentProcess();
  Nanos transition = k->costs().Transition(f, p != nullptr && p->kml_capable);
  Nanos fixed = k->costs().KernelCycles(f, k->costs().SyscallFixed(f));
  k->sched().ChargeCpu(transition + fixed);
  if (k->faults().armed()) {
    if (k->faults().Check(FaultSite::kSyscallTransient)) {
      // EINTR/EAGAIN: libc restarts the call — the guest pays one extra
      // kernel round trip and carries on.
      k->sched().ChargeCpu(2 * transition + fixed);
    }
    if (k->faults().Check(FaultSite::kAppFault)) {
      // A wild access in the application. Under KML the app runs in ring 0,
      // so this *is* a kernel fault; without KML the page fault kills pid 1,
      // which panics the kernel just the same (the paper's central
      // robustness trade-off, Section 2.1).
      if (f.kml) {
        k->console().Write("BUG: unable to handle kernel NULL pointer dereference at "
                           "0000000000000008\n");
        k->Panic("Fatal exception in ring 0");
      } else if (p == nullptr || p->pid() == 1) {
        k->console().Write((p != nullptr ? p->name() : "init") +
                           "[1]: segfault at 8 ip 00007f... sp 00007f... error 4\n");
        k->Panic("Attempted to kill init! exitcode=0x0000000b");
      } else {
        // In ring 3 a fault in a non-init process is just a segfault.
        k->console().Write(p->name() + "[" + std::to_string(p->pid()) +
                           "]: segfault at 8 ip 00007f... sp 00007f... error 4\n");
        k->ExitProcess(p, 128 + 11 /* SIGSEGV */);
        k->sched().ExitCurrent();
      }
    }
  }
}

SyscallApi::Scope::~Scope() {
  Kernel* k = api_->k_;
  Process* p = api_->CurrentProcess();
  if (!free_run_) {
    const auto& f = k->features();
    k->sched().ChargeCpu(k->costs().Transition(f, p != nullptr && p->kml_capable));
    // Accounted before signal delivery and the preemption point below, so
    // latency covers entry to exit (including time blocked inside the call)
    // but not whatever the scheduler runs afterwards.
    k->trace().AccountSyscall(nr_, k->clock().now() - entry_);
  }
  // Signal delivery point: pending signals run their handlers on the way
  // out of the kernel (one frame at a time; handlers may issue syscalls).
  if (p != nullptr && !p->exited && !p->pending_signals.empty() && !p->in_signal_handler) {
    int signum = p->pending_signals.front();
    p->pending_signals.pop_front();
    auto handler = p->signal_handlers.find(signum);
    if (handler != p->signal_handlers.end()) {
      p->in_signal_handler = true;
      // Frame setup + sigreturn round trip.
      k->sched().ChargeCpu(k->costs().KernelCycles(k->features(), k->costs().work_sig_handle));
      handler->second(signum);
      p->in_signal_handler = false;
    } else if (signum != 0) {
      // Default disposition: terminate (SIGTERM/SIGKILL-style).
      k->console().Write(p->name() + ": terminated by signal " + std::to_string(signum) +
                         "\n");
      k->ExitProcess(p, 128 + signum);
      k->sched().ExitCurrent();
    }
  }
  // Syscall return is the kernel's cooperative preemption point.
  if (k->sched().current() != nullptr) {
    k->sched().MaybePreempt();
  }
}

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

Process* SyscallApi::CurrentProcess() const {
  Thread* t = k_->sched().current();
  return t == nullptr ? nullptr : t->process();
}

Thread* SyscallApi::CurrentThread() const { return k_->sched().current(); }

bool SyscallApi::CurrentIsFree() const {
  Process* p = CurrentProcess();
  return p != nullptr && p->free_run;
}

Status SyscallApi::CheckEnabled(Sys nr) const {
  if (k_->features().HasSyscall(nr)) {
    return Status::Ok();
  }
  return Status(Err::kNoSys, std::string(kbuild::SyscallName(nr)) + ": function not implemented");
}

void SyscallApi::ChargeKernel(Nanos cycles) {
  if (CurrentIsFree()) {
    return;
  }
  k_->sched().ChargeCpu(k_->costs().KernelCycles(k_->features(), cycles));
}

void SyscallApi::ChargeCopy(Bytes bytes) {
  ChargeKernel(static_cast<Nanos>(k_->costs().copy_per_byte * static_cast<double>(bytes)));
}

Result<std::shared_ptr<FileDescription>> SyscallApi::LookupFd(int fd) {
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kBadF, "no current process");
  }
  auto file = p->GetFd(fd);
  if (file == nullptr) {
    return Status(Err::kBadF, "bad file descriptor " + std::to_string(fd));
  }
  return file;
}

void SyscallApi::Compute(Nanos cpu) {
  // User-mode cycles: unaffected by kernel hardening, but -Os kernels do not
  // slow user code either.
  k_->sched().ChargeCpu(cpu);
}

// ---------------------------------------------------------------------------
// Identity / time / misc.
// ---------------------------------------------------------------------------

Result<int> SyscallApi::Getpid() {
  Scope scope(this, Sys::kGetpid);
  if (!scope.ok()) {
    return scope.status();
  }
  ChargeKernel(k_->costs().work_getppid);
  Process* p = CurrentProcess();
  return p == nullptr ? 0 : p->pid();
}

Result<int> SyscallApi::Getppid() {
  Scope scope(this, Sys::kGetppid);
  if (!scope.ok()) {
    return scope.status();
  }
  ChargeKernel(k_->costs().work_getppid);
  Process* p = CurrentProcess();
  return p == nullptr ? 0 : p->ppid();
}

Result<Nanos> SyscallApi::ClockGettime() {
  Scope scope(this, Sys::kClockGettime);
  if (!scope.ok()) {
    return scope.status();
  }
  ChargeKernel(20);
  return k_->clock().now();
}

Result<std::string> SyscallApi::Uname() {
  Scope scope(this, Sys::kUname);
  if (!scope.ok()) {
    return scope.status();
  }
  ChargeKernel(60);
  std::string version = "Linux lupine 4.0.0";
  if (k_->features().kml) {
    version += "-kml";
  }
  return version + " x86_64";
}

Status SyscallApi::Sethostname(const std::string& name) {
  Scope scope(this, Sys::kSethostname);
  if (!scope.ok()) {
    return scope.status();
  }
  ChargeKernel(80);
  ChargeCopy(name.size());
  return Status::Ok();
}

Status SyscallApi::Setrlimit(int resource, uint64_t value) {
  Scope scope(this, Sys::kSetrlimit);
  if (!scope.ok()) {
    return scope.status();
  }
  (void)resource;
  (void)value;
  ChargeKernel(90);
  return Status::Ok();
}

Status SyscallApi::Sigaction(int signum) {
  Scope scope(this, Sys::kSigaction);
  if (!scope.ok()) {
    return scope.status();
  }
  (void)signum;
  ChargeKernel(k_->costs().work_sig_inst);
  return Status::Ok();
}

Status SyscallApi::SigactionHandler(int signum, std::function<void(int)> handler) {
  Scope scope(this, Sys::kSigaction);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "sigaction outside any process");
  }
  ChargeKernel(k_->costs().work_sig_inst);
  if (handler == nullptr) {
    p->signal_handlers.erase(signum);
  } else {
    p->signal_handlers[signum] = std::move(handler);
  }
  return Status::Ok();
}

Status SyscallApi::Kill(int pid, int signum) {
  Scope scope(this, Sys::kKill);
  if (!scope.ok()) {
    return scope.status();
  }
  ChargeKernel(200);
  Process* target = k_->FindProcess(pid);
  if (target == nullptr || target->exited) {
    return Status(Err::kNoEnt, "kill: no such process " + std::to_string(pid));
  }
  target->pending_signals.push_back(signum);
  return Status::Ok();
}

Status SyscallApi::SignalSelf(int signum) {
  Scope scope(this, Sys::kKill);
  if (!scope.ok()) {
    return scope.status();
  }
  (void)signum;
  // Queue + frame setup + sigreturn: a handler dispatch round trip.
  ChargeKernel(k_->costs().work_sig_handle);
  Process* p = CurrentProcess();
  bool kml = p != nullptr && p->kml_capable;
  k_->sched().ChargeCpu(2 * k_->costs().Transition(k_->features(), kml));
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Processes and threads.
// ---------------------------------------------------------------------------

Result<int> SyscallApi::Fork(std::function<int(SyscallApi&)> child) {
  Scope scope(this, Sys::kFork);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* parent = CurrentProcess();
  if (parent == nullptr) {
    return Status(Err::kInval, "fork outside any process");
  }
  if (k_->features().single_process) {
    // Unikernel-style kernels have no second process to become: the stubbed
    // fork fails and applications typically crash (Section 5).
    k_->console().Write("fork: not supported (single-process library OS)\n");
    return Status(Err::kNoSys, "fork: not supported in a single-process unikernel");
  }

  auto child_as = parent->aspace().ForkCopy();
  if (!child_as.ok()) {
    k_->set_oom();
    return Status(Err::kNoMem, "fork: cannot allocate memory");
  }
  const CostModel& c = k_->costs();
  Nanos cost = c.fork_base + c.fork_per_vma * static_cast<Nanos>(parent->aspace().vma_count()) +
               c.fork_per_page_table_page *
                   static_cast<Nanos>(parent->aspace().page_table_pages());
  ChargeKernel(cost);

  std::shared_ptr<AddressSpace> shared_as(child_as.take().release());
  Process* cp = k_->CreateProcess(parent->pid(), std::move(shared_as), parent->name());
  cp->env = parent->env;
  cp->cwd = parent->cwd;
  cp->kml_capable = parent->kml_capable;
  cp->free_run = parent->free_run;
  cp->heap_vma = parent->heap_vma;
  cp->heap_size = parent->heap_size;
  cp->CloneFdTableFrom(*parent);

  SyscallApi* api = this;
  Kernel* kernel = k_;
  k_->sched().Spawn(cp, [api, kernel, cp, body = std::move(child)]() {
    int code = body(*api);
    kernel->ExitProcess(cp, code);
    kernel->sched().ExitCurrent();
  });
  return cp->pid();
}

void SyscallApi::Exit(int code) {
  {
    Scope scope(this, Sys::kExit);
    Process* p = CurrentProcess();
    ChargeKernel(800);
    k_->ExitProcess(p, code);
  }
  k_->sched().ExitCurrent();
}

Result<int> SyscallApi::Wait4(int pid) {
  Scope scope(this, Sys::kWait4);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* self = CurrentProcess();
  if (self == nullptr) {
    return Status(Err::kInval, "wait4 outside any process");
  }
  ChargeKernel(400);

  for (;;) {
    // Scan children for an un-reaped exited one.
    bool have_candidate = false;
    for (int child_pid : self->children) {
      if (pid != -1 && child_pid != pid) {
        continue;
      }
      Process* child = k_->FindProcess(child_pid);
      if (child == nullptr || child->reaped) {
        continue;
      }
      have_candidate = true;
      if (child->exited) {
        child->reaped = true;
        return child->exit_code;
      }
    }
    if (!have_candidate) {
      return Status(Err::kChild, "no child processes");
    }
    // Block until some child of ours exits (parent queue keyed as -pid).
    k_->ExitQueue(-self->pid()).Block();
  }
}

Result<int> SyscallApi::SpawnThread(std::function<void(SyscallApi&)> body) {
  Scope scope(this, Sys::kClone);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "clone outside any process");
  }
  // Threads (CLONE_VM) are allowed even in single-process mode; unikernels
  // support threads, just not processes.
  ChargeKernel(k_->costs().thread_create);
  SyscallApi* api = this;
  Thread* t = k_->sched().Spawn(p, [api, body = std::move(body)]() { body(*api); });
  return t->tid();
}

void SyscallApi::SchedYield() {
  Scope scope(this, Sys::kSchedYield);
  ChargeKernel(k_->costs().sched_pick);
  k_->sched().YieldCurrent();
}

void SyscallApi::Nanosleep(Nanos duration) {
  Scope scope(this, Sys::kNanosleep);
  ChargeKernel(150);
  k_->sched().SleepCurrent(duration);
}

void SyscallApi::Pause() {
  Scope scope(this, Sys::kNanosleep);
  ChargeKernel(120);
  k_->PauseQueue().Block();
}

// ---------------------------------------------------------------------------
// Memory.
// ---------------------------------------------------------------------------

Result<int> SyscallApi::Mmap(Bytes length, bool populate) {
  Scope scope(this, Sys::kMmap);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "mmap outside any process");
  }
  ChargeKernel(k_->costs().mmap_base);
  auto vma = p->aspace().Map(length, VmaKind::kData, "anon", /*populate_now=*/false);
  if (!vma.ok()) {
    k_->set_oom();
    return vma.status();
  }
  if (populate) {
    auto faults = p->aspace().Touch(vma.value(), 0, length);
    if (!faults.ok()) {
      k_->set_oom();
      return faults.status();
    }
    ChargeKernel(static_cast<Nanos>(faults.value()) *
                 (k_->costs().page_fault + k_->costs().page_zero));
  }
  return vma.value();
}

Status SyscallApi::Munmap(int vma_id) {
  Scope scope(this, Sys::kMunmap);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "munmap outside any process");
  }
  ChargeKernel(k_->costs().mmap_base / 2);
  return p->aspace().Unmap(vma_id);
}

Status SyscallApi::BrkGrow(Bytes bytes) {
  Scope scope(this, Sys::kBrk);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "brk outside any process");
  }
  ChargeKernel(300);
  if (p->heap_vma < 0) {
    auto vma = p->aspace().Map(kHeapReserve, VmaKind::kHeap, "heap");
    if (!vma.ok()) {
      k_->set_oom();
      return vma.status();
    }
    p->heap_vma = vma.value();
    p->heap_size = 0;
  }
  p->heap_size += bytes;
  return Status::Ok();
}

Status SyscallApi::TouchHeap(Bytes offset, Bytes length) {
  // Page faults, not syscalls: no Scope.
  Process* p = CurrentProcess();
  if (p == nullptr || p->heap_vma < 0) {
    return Status(Err::kFault, "no heap");
  }
  if (offset + length > p->heap_size) {
    return Status(Err::kFault, "touch beyond brk");
  }
  auto faults = p->aspace().Touch(p->heap_vma, offset, length);
  if (!faults.ok()) {
    k_->set_oom();
    return faults.status();
  }
  if (!CurrentIsFree()) {
    ChargeKernel(static_cast<Nanos>(faults.value()) *
                 (k_->costs().page_fault + k_->costs().page_zero));
  }
  return Status::Ok();
}

}  // namespace lupine::guestos

// Loopback sockets (AF_INET/AF_INET6 TCP, AF_UNIX), pipes and epoll.
//
// Server applications (the nginx- and redis-like models) and their load
// generators run inside the same guest and talk over this loopback stack,
// matching the paper's methodology of running clients on the same physical
// machine "to avoid uncontrolled network effects" (Section 4.6). Packet
// traversal costs are charged by the syscall layer.
#ifndef SRC_GUESTOS_NET_H_
#define SRC_GUESTOS_NET_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/guestos/sched.h"
#include "src/util/fault.h"
#include "src/util/result.h"

namespace lupine::guestos {

enum class SockDomain { kInet, kInet6, kUnix, kPacket };
enum class SockType { kStream, kDgram };
enum class SockState { kCreated, kBound, kListening, kConnected, kClosed };

struct EpollInstance {
  explicit EpollInstance(Scheduler* sched) : wq(sched) {}
  WaitQueue wq;
  std::set<int> watched_fds;  // fds in the owning process's table.
};

class Socket {
 public:
  Socket(Scheduler* sched, SockDomain domain, SockType type)
      : domain(domain), type(type), read_wq(sched), accept_wq(sched), peer_close_wq(sched) {}

  SockDomain domain;
  SockType type;
  SockState state = SockState::kCreated;
  uint16_t port = 0;
  std::string unix_path;

  std::deque<std::shared_ptr<Socket>> accept_queue;
  int backlog = 0;

  std::string rx;                      // Stream receive buffer.
  std::deque<std::string> rx_dgrams;   // Datagram receive queue.
  // Packets queued by a free-running (external-client) sender whose receive
  // processing cost is charged when this side reads them.
  uint32_t uncharged_rx_packets = 0;
  std::weak_ptr<Socket> peer;
  bool peer_closed = false;

  WaitQueue read_wq;
  WaitQueue accept_wq;
  WaitQueue peer_close_wq;

  // Epoll instances watching this socket (weak: instance may be closed).
  std::vector<std::weak_ptr<EpollInstance>> watchers;

  bool Readable() const {
    if (state == SockState::kListening) {
      return !accept_queue.empty();
    }
    return !rx.empty() || !rx_dgrams.empty() || peer_closed;
  }

  void NotifyWatchers();
};

// The guest's network namespace: listener tables + data movement.
class NetStack {
 public:
  explicit NetStack(Scheduler* sched) : sched_(sched) {}

  std::shared_ptr<Socket> Create(SockDomain domain, SockType type);

  Status Bind(const std::shared_ptr<Socket>& sock, uint16_t port, const std::string& unix_path);
  Status Listen(const std::shared_ptr<Socket>& sock, int backlog);

  // Connects to a loopback listener; returns the connected client socket
  // state (the passed socket becomes connected) or ECONNREFUSED.
  Status Connect(const std::shared_ptr<Socket>& sock, uint16_t port,
                 const std::string& unix_path);

  // Blocks until a connection is pending, then returns the server-side
  // socket of the new connection.
  Result<std::shared_ptr<Socket>> Accept(const std::shared_ptr<Socket>& listener);

  // Stream send/recv. Send never blocks (unbounded loopback buffer); recv
  // blocks until data or peer close (returns empty string on orderly close).
  Status Send(const std::shared_ptr<Socket>& sock, const std::string& data);
  Result<std::string> Recv(const std::shared_ptr<Socket>& sock, size_t max_bytes);

  // Datagram variants (UNIX dgram pairs).
  Status SendDgram(const std::shared_ptr<Socket>& sock, const std::string& data);
  Result<std::string> RecvDgram(const std::shared_ptr<Socket>& sock);

  void Close(const std::shared_ptr<Socket>& sock);

  // Creates a connected AF_UNIX socket pair (socketpair(2)).
  std::pair<std::shared_ptr<Socket>, std::shared_ptr<Socket>> CreatePair(SockType type);

  // Non-owning. kNetRecvReset makes Recv fail with ECONNRESET; kNetSendDrop
  // models a dropped packet as one TCP retransmission timeout on Send.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  // Linux's initial TCP retransmission timeout (RTO) of 200 ms: the latency
  // a lost loopback packet costs the sender before the retransmit lands.
  static constexpr Nanos kRetransmitDelay = Millis(200);

 private:
  Scheduler* sched_;
  FaultInjector* faults_ = nullptr;
  std::map<uint16_t, std::shared_ptr<Socket>> inet_listeners_;
  std::map<std::string, std::shared_ptr<Socket>> unix_listeners_;
};

struct PipeBuffer {
  explicit PipeBuffer(Scheduler* sched) : read_wq(sched), write_wq(sched) {}
  std::string data;
  bool write_closed = false;
  bool read_closed = false;
  WaitQueue read_wq;
  WaitQueue write_wq;
  static constexpr size_t kCapacity = 64 * 1024;
};

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_NET_H_

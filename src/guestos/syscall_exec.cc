// Syscall layer part 2: execve and the program loader.
#include "src/guestos/kernel.h"
#include "src/guestos/syscall_api.h"

namespace lupine::guestos {

using kbuild::Sys;

namespace {

// The registry key for the #!lupine-init script interpreter.
constexpr char kInitInterpreter[] = "lupine-init";

}  // namespace

Status SyscallApi::Execve(const std::string& path, std::vector<std::string> argv) {
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "execve outside any process");
  }

  std::string app_name;
  BinaryInfo info;
  {
    Scope scope(this, Sys::kExecve);
    if (!scope.ok()) {
      return scope.status();
    }

    auto inode = k_->vfs().Resolve(path);
    if (!inode.ok()) {
      return Status(Err::kNoEnt, path + ": no such file or directory");
    }
    if (!inode.value()->executable) {
      return Status(Err::kAccess, path + ": permission denied");
    }

    const std::string& content = inode.value()->data;

    if (IsInitScript(content)) {
      // BINFMT_SCRIPT path: run the init interpreter with the script as
      // argv[0]'s target.
      info.app = kInitInterpreter;
      info.libc = "none";
      info.text_kb = 24;
      info.data_kb = 8;
      info.bss_kb = 8;
      info.stack_kb = 64;
      argv.insert(argv.begin(), path);
    } else {
      auto parsed = ParseBinary(content);
      if (!parsed.ok()) {
        return Status(Err::kInval, path + ": exec format error");
      }
      info = parsed.take();

      if (info.dynamic()) {
        // The dynamic loader and libc must exist in the rootfs.
        auto interp = k_->vfs().Resolve(info.interp);
        if (!interp.ok()) {
          return Status(Err::kNoEnt, info.interp + ": no such file or directory");
        }
        // Charge page cache for the lazily-demand-paged shared libraries.
        if (Status s = k_->ChargePageCache(*interp.value(),
                                           std::max<Bytes>(interp.value()->data.size(),
                                                           300 * kKiB));
            !s.ok()) {
          return s;
        }
      }
    }
    app_name = info.app;

    // Page cache for the binary's file-backed segments. Loading is lazy
    // (Section 4.4: "the binary size of the application is irrelevant if
    // much of it is loaded lazily"), so only the hot first chunk is charged.
    Bytes file_bytes = (info.text_kb + info.data_kb) * kKiB;
    if (Status s = k_->ChargePageCache(*inode.value(), std::min<Bytes>(file_bytes, kMiB));
        !s.ok()) {
      return s;
    }

    const CostModel& c = k_->costs();
    Nanos exec_cost =
        c.exec_base + c.exec_per_mapped_kb * static_cast<Nanos>(info.text_kb + info.data_kb);
    if (info.dynamic()) {
      exec_cost += c.exec_dynlink;
    }
    ChargeKernel(exec_cost);

    // Fresh address space replacing the old image.
    auto aspace = std::make_shared<AddressSpace>(&k_->mm());
    auto text = aspace->Map(info.text_kb * kKiB, VmaKind::kText, path + ":text");
    if (!text.ok()) {
      k_->set_oom();
      return text.status();
    }
    // Demand paging: only the startup-hot prefix of text faults in now.
    auto text_touch = aspace->Touch(text.value(), 0, std::min<Bytes>(info.text_kb * kKiB,
                                                                     512 * kKiB));
    if (!text_touch.ok()) {
      k_->set_oom();
      return text_touch.status();
    }
    auto data = aspace->Map(info.data_kb * kKiB, VmaKind::kData, path + ":data");
    if (!data.ok()) {
      k_->set_oom();
      return data.status();
    }
    auto data_touch = aspace->Touch(data.value(), 0, std::min<Bytes>(info.data_kb * kKiB,
                                                                     128 * kKiB));
    if (!data_touch.ok()) {
      k_->set_oom();
      return data_touch.status();
    }
    auto bss = aspace->Map(std::max<Bytes>(info.bss_kb, 4) * kKiB, VmaKind::kData, path + ":bss");
    if (!bss.ok()) {
      k_->set_oom();
      return bss.status();
    }
    auto stack = aspace->Map(info.stack_kb * kKiB, VmaKind::kStack, "stack");
    if (!stack.ok()) {
      k_->set_oom();
      return stack.status();
    }
    // The first stack pages are touched immediately.
    auto stack_touch = aspace->Touch(stack.value(), 0, 16 * kKiB);
    if (!stack_touch.ok()) {
      k_->set_oom();
      return stack_touch.status();
    }

    p->set_aspace(std::move(aspace));
    p->heap_vma = -1;
    p->heap_size = 0;
    p->set_name(app_name);
    k_->PublishProcDir(p);  // /proc/<pid>/status reflects the new image.
    // KML eligibility comes from the binary's libc flavour (Section 3.2).
    p->kml_capable = info.kml_libc();
    // A fresh heap for the libc allocator.
    if (Status s = BrkGrow(256 * kKiB); !s.ok()) {
      return s;
    }
    // Scope closes here: exec's final kernel->user transition is priced.
  }

  const AppMain* main_fn = k_->apps().Find(app_name);
  if (main_fn == nullptr) {
    k_->console().Write("exec " + path + ": no registered application model '" + app_name +
                        "'\n");
    Exit(127);
  }
  if (argv.empty()) {
    argv.push_back(path);
  }
  int code = (*main_fn)(*this, argv);
  Exit(code);
}

}  // namespace lupine::guestos

// Snapshot/restore of a post-init guest — the Firecracker serving play.
//
// The paper's boot times make a cold VM launch cheap; a serving fleet makes
// it cheaper still by capturing a guest once it reaches post-init and
// cloning that state per instance, so launch cost drops from full Boot() to
// restore cost. In a fiber-based simulator the guest's execution state
// cannot be memcpy'd (fiber stacks are host-thread artifacts), so a
// Snapshot records what a restore needs to *re-materialize* the identical
// post-init machine deterministically: the immutable inputs (kernel image,
// boot plan, rootfs blob — all shared cache artifacts) plus a digest of the
// captured machine state. Restoring replays Boot()+StartInit() — which
// rebuilds byte-identical state, because the simulator is deterministic —
// verifies the digest, and then rebases the virtual timeline so the
// instance's launch cost is the modeled restore cost, not the boot cost.
// Like every figure in this repo, the saving lives on the virtual clock.
//
// Snapshots are only captured between StartInit() and the first Run(): at
// that point no fiber has executed, so the state is a pure function of
// (image, rootfs, memory) and the capture is safe to restore on any host
// thread.
#ifndef SRC_GUESTOS_SNAPSHOT_H_
#define SRC_GUESTOS_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/guestos/kernel.h"
#include "src/kbuild/image.h"
#include "src/util/result.h"
#include "src/util/units.h"

namespace lupine::guestos {

struct Snapshot {
  // Content address: {kernel fingerprint}\x1f{rootfs digest}\x1f{memory}.
  // Callers build it (core::SnapshotCache::Key); the guest layer treats it
  // as opaque.
  std::string key;
  std::string app;  // Operator-facing label.

  // Immutable inputs the restore re-materializes from (shared with the
  // kernel/rootfs caches; holding a snapshot pins them).
  std::shared_ptr<const kbuild::KernelImage> kernel;
  std::shared_ptr<const BootPlan> boot_plan;
  std::shared_ptr<const std::string> rootfs;

  Bytes memory = 0;          // Guest RAM at capture; a restore must match.
  Bytes captured_bytes = 0;  // Resident bytes serialized to the memory file.
  Nanos capture_ns = 0;      // Modeled virtual cost of the capture.
  Nanos restore_ns = 0;      // Modeled virtual cost of each restore.
  uint64_t state_digest = 0; // KernelStateDigest at capture.

  // LRU accounting: a snapshot's retained weight is its memory file.
  Bytes SizeBytes() const { return captured_bytes; }
};

// Digest of the machine state a snapshot must reproduce: image identity,
// process table size, resident/peak memory, console output, boot phases and
// the per-syscall accounting table. Excludes the clock (a restored guest's
// timeline is rebased) — two guests with equal digests behave identically
// from here on.
uint64_t KernelStateDigest(const Kernel& kernel);

// Modeled costs (base + per-MiB over the captured resident bytes).
Nanos SnapshotCaptureCost(const CostModel& costs, Bytes captured_bytes);
Nanos SnapshotRestoreCost(const CostModel& costs, Bytes captured_bytes);

// Captures `kernel`'s post-init state. The shared inputs come from the
// caller (they are the cache artifacts the guest was launched from); the
// guest must be booted, not panicked, and must not have run yet. `memory`
// is the VM's RAM (the restore allocates the same).
Result<Snapshot> CaptureSnapshot(const Kernel& kernel, std::string key, std::string app,
                                 std::shared_ptr<const kbuild::KernelImage> image,
                                 std::shared_ptr<const BootPlan> boot_plan,
                                 std::shared_ptr<const std::string> rootfs);

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_SNAPSHOT_H_

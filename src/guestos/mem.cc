#include "src/guestos/mem.h"

#include <algorithm>

#include "src/util/log.h"

namespace lupine::guestos {

Status MemoryManager::AllocatePages(uint64_t pages, const char* tag) {
  if (faults_ != nullptr && faults_->Check(FaultSite::kMemAlloc)) {
    return Status(Err::kNoMem, std::string("out of memory (injected): ") + tag);
  }
  if ((used_pages_ + pages) * kPageSize > limit_) {
    LOG_DEBUG << "OOM allocating " << pages << " pages for " << tag << " (used "
              << used() / kKiB << " KiB of " << limit_ / kKiB << " KiB)";
    return Status(Err::kNoMem, std::string("out of memory: ") + tag);
  }
  used_pages_ += pages;
  peak_pages_ = std::max(peak_pages_, used_pages_);
  return Status::Ok();
}

void MemoryManager::FreePages(uint64_t pages) {
  used_pages_ = pages > used_pages_ ? 0 : used_pages_ - pages;
}

uint64_t Vma::resident_pages() const {
  return static_cast<uint64_t>(std::count(present.begin(), present.end(), true));
}

AddressSpace::~AddressSpace() {
  if (mm_ != nullptr) {
    mm_->FreePages(owned_pages_ + page_table_pages());
  }
}

Result<int> AddressSpace::Map(Bytes bytes, VmaKind kind, const std::string& name,
                              bool populate_now) {
  uint64_t pages = PagesForBytes(bytes);
  if (pages == 0) {
    return Status(Err::kInval, "zero-length mapping");
  }
  Vma vma;
  vma.start_page = next_free_page_;
  vma.num_pages = pages;
  vma.kind = kind;
  vma.name = name;
  vma.present.assign(pages, false);
  next_free_page_ += pages + 16;  // Guard gap.

  int id = next_vma_id_++;
  // Page-table charge: one PT page per 512 mapped pages (x86-64 PTE density),
  // charged eagerly on map to keep accounting simple.
  uint64_t pt_pages = (pages + 511) / 512;
  if (Status s = mm_->AllocatePages(pt_pages, "page-tables"); !s.ok()) {
    return s;
  }
  vmas_.emplace(id, std::move(vma));
  if (populate_now) {
    auto touched = Touch(id, 0, bytes);
    if (!touched.ok()) {
      // Roll back the mapping so the caller sees a clean failure.
      (void)Unmap(id);
      return touched.status();
    }
  }
  return id;
}

Status AddressSpace::Unmap(int vma_id) {
  auto it = vmas_.find(vma_id);
  if (it == vmas_.end()) {
    return Status(Err::kInval, "unknown VMA");
  }
  uint64_t owned = it->second.owned;
  uint64_t pt_pages = (it->second.num_pages + 511) / 512;
  mm_->FreePages(owned + pt_pages);
  owned_pages_ -= std::min(owned_pages_, owned);
  vmas_.erase(it);
  return Status::Ok();
}

Result<uint64_t> AddressSpace::Touch(int vma_id, Bytes offset, Bytes bytes) {
  auto it = vmas_.find(vma_id);
  if (it == vmas_.end()) {
    return Status(Err::kFault, "touch outside any mapping");
  }
  Vma& vma = it->second;
  uint64_t first = offset / kPageSize;
  uint64_t last = bytes == 0 ? first : (offset + bytes - 1) / kPageSize;
  if (last >= vma.num_pages) {
    return Status(Err::kFault, "touch beyond end of mapping");
  }
  uint64_t faults = 0;
  for (uint64_t p = first; p <= last; ++p) {
    if (!vma.present[p]) {
      if (Status s = mm_->AllocatePages(1, vma.name.c_str()); !s.ok()) {
        return s;
      }
      vma.present[p] = true;
      ++vma.owned;
      ++owned_pages_;
      ++faults;
    }
  }
  return faults;
}

Result<std::unique_ptr<AddressSpace>> AddressSpace::ForkCopy() const {
  auto child = std::make_unique<AddressSpace>(mm_);
  child->next_free_page_ = next_free_page_;
  child->next_vma_id_ = next_vma_id_;
  for (const auto& [id, vma] : vmas_) {
    // Copy-on-write: the child references the parent's pages; we charge only
    // the page-table pages. Writable data re-faults later via Touch, which
    // then charges real pages.
    uint64_t pt_pages = (vma.num_pages + 511) / 512;
    if (Status s = mm_->AllocatePages(pt_pages, "fork-page-tables"); !s.ok()) {
      return s;
    }
    Vma copy = vma;
    copy.owned = 0;  // The child references the parent's pages; it owns none.
    if (vma.kind == VmaKind::kHeap || vma.kind == VmaKind::kData ||
        vma.kind == VmaKind::kStack) {
      // COW mappings start non-present in the child and re-fault via Touch.
      std::fill(copy.present.begin(), copy.present.end(), false);
    }
    child->vmas_.emplace(id, std::move(copy));
  }
  return child;
}

uint64_t AddressSpace::resident_pages() const {
  uint64_t total = 0;
  for (const auto& [id, vma] : vmas_) {
    total += vma.resident_pages();
  }
  return total;
}

uint64_t AddressSpace::page_table_pages() const {
  uint64_t total = 0;
  for (const auto& [id, vma] : vmas_) {
    total += (vma.num_pages + 511) / 512;
  }
  return total;
}

const Vma* AddressSpace::FindVma(int vma_id) const {
  auto it = vmas_.find(vma_id);
  return it == vmas_.end() ? nullptr : &it->second;
}

}  // namespace lupine::guestos

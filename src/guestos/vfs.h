// Virtual filesystem: inodes, file descriptions, mounts, device nodes.
//
// Backs the rootfs (mounted from an ext2-style image, see rootfs.h), ramfs /
// tmpfs mounts, the synthesized /proc and /sys trees, and the character
// devices the startup scripts and lmbench expect (/dev/null, /dev/zero,
// /dev/urandom, /dev/console).
#ifndef SRC_GUESTOS_VFS_H_
#define SRC_GUESTOS_VFS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/units.h"

namespace lupine::guestos {

class Console;
class MemoryManager;

enum class InodeType { kFile, kDir, kCharDev, kSymlink };
enum class DevId { kNone, kNull, kZero, kUrandom, kConsole };

struct Inode {
  InodeType type = InodeType::kFile;
  DevId dev = DevId::kNone;
  std::string data;                                     // File contents.
  std::string symlink_target;
  bool executable = false;
  std::map<std::string, std::shared_ptr<Inode>> children;  // For directories.
  // Page-cache accounting: pages charged when the file was first read.
  bool in_page_cache = false;
};

// What an open file descriptor refers to. Sockets, pipes, epoll instances
// and the fd-producing syscalls (eventfd/timerfd/signalfd/inotify/fanotify)
// are separate kinds so Close() can release the right resources.
enum class FdKind {
  kInode,
  kSocket,
  kPipeRead,
  kPipeWrite,
  kEpoll,
  kEventfd,
  kTimerfd,
  kSignalfd,
  kInotify,
  kFanotify,
};

class Socket;
struct PipeBuffer;
struct EpollInstance;

class FileDescription {
 public:
  FdKind kind = FdKind::kInode;
  std::shared_ptr<Inode> inode;
  size_t offset = 0;
  int flags = 0;
  std::string path;  // Path it was opened by (diagnostics).

  std::shared_ptr<Socket> socket;
  std::shared_ptr<PipeBuffer> pipe;
  std::shared_ptr<EpollInstance> epoll;
  uint64_t counter = 0;  // eventfd value / timerfd expirations.
};

class Vfs {
 public:
  Vfs();

  // Path resolution relative to root; "." and ".." are normalized,
  // symlinks followed (depth-limited).
  Result<std::shared_ptr<Inode>> Resolve(const std::string& path) const;
  bool Exists(const std::string& path) const { return Resolve(path).ok(); }

  Result<std::shared_ptr<Inode>> CreateFile(const std::string& path, std::string data = "",
                                            bool executable = false);
  Result<std::shared_ptr<Inode>> CreateDir(const std::string& path);
  Result<std::shared_ptr<Inode>> CreateDevice(const std::string& path, DevId dev);
  Status CreateSymlink(const std::string& path, const std::string& target);
  Status Unlink(const std::string& path);

  // Mounts a synthesized filesystem at `path` ("proc", "sysfs", "tmpfs",
  // "devtmpfs"). The caller (syscall layer) checks config gating.
  Status Mount(const std::string& fstype, const std::string& path);
  bool IsMounted(const std::string& path) const;

  const std::shared_ptr<Inode>& root() const { return root_; }

  // Splits "/a/b/c" -> parent inode of "c" + leaf name.
  Result<std::pair<std::shared_ptr<Inode>, std::string>> ResolveParent(
      const std::string& path) const;

 private:
  Result<std::shared_ptr<Inode>> ResolveInternal(const std::string& path, int depth) const;

  std::shared_ptr<Inode> root_;
  std::vector<std::string> mounts_;
};

// Populates a freshly mounted /proc (and /proc/sys when `with_sysctl`).
void PopulateProcfs(Inode& proc_root, bool with_sysctl);
// Populates /sys with a minimal device tree.
void PopulateSysfs(Inode& sys_root);

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_VFS_H_

// SyscallApi: the system-call interface guest applications program against.
//
// Every method executes on the current guest thread (a fiber), charges the
// priced transition into and out of the kernel (full privilege switch, or a
// near call under KML), checks CONFIG gating (ENOSYS when the option is
// compiled out), performs the real operation against the kernel's
// subsystems, and may block on wait queues.
//
// Deviation from POSIX: fork() takes the child body as a callable (fibers
// cannot duplicate a running stack), and buffers are std::string. Everything
// else keeps syscall granularity so per-call costs and failure modes match.
#ifndef SRC_GUESTOS_SYSCALL_API_H_
#define SRC_GUESTOS_SYSCALL_API_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/guestos/net.h"
#include "src/guestos/task.h"
#include "src/guestos/vfs.h"
#include "src/kbuild/syscalls.h"
#include "src/util/result.h"

namespace lupine::guestos {

class Kernel;

class SyscallApi {
 public:
  explicit SyscallApi(Kernel* kernel) : k_(kernel) {}

  // ---- User-level helpers (no kernel entry) ---------------------------------
  // Burns user-mode CPU (workload inner loops).
  void Compute(Nanos cpu);
  Process* CurrentProcess() const;
  Thread* CurrentThread() const;

  // ---- Identity / time --------------------------------------------------------
  Result<int> Getpid();
  Result<int> Getppid();  // lmbench's "null call".
  Result<Nanos> ClockGettime();
  Result<std::string> Uname();
  Status Sethostname(const std::string& name);
  Status Setrlimit(int resource, uint64_t value);
  Status Sigaction(int signum);
  // rt_sigaction with a real handler: runs at the target's next syscall
  // boundary. Passing nullptr resets to the default disposition.
  Status SigactionHandler(int signum, std::function<void(int)> handler);
  // kill(2): queues `signum` for `pid`. Default disposition for fatal
  // signals terminates the target process (128+signum).
  Status Kill(int pid, int signum);
  Status SignalSelf(int signum);  // kill(getpid(), sig) + handler dispatch.

  // ---- Files --------------------------------------------------------------------
  Result<int> Open(const std::string& path, bool create = false);
  Status Close(int fd);
  Result<std::string> Read(int fd, size_t max_bytes);
  Result<size_t> Write(int fd, const std::string& data);
  Result<size_t> Stat(const std::string& path);  // Returns file size.
  Result<int> Dup(int fd);
  Status Unlink(const std::string& path);
  Status Mkdir(const std::string& path);
  Result<std::pair<int, int>> Pipe();  // {read_fd, write_fd}.
  Status Flock(int fd);                                     // FILE_LOCKING.
  Status Madvise(int vma_id);                               // ADVISE_SYSCALLS.
  Status Fadvise(int fd);                                   // ADVISE_SYSCALLS.
  Result<int> OpenByHandleAt(const std::string& path);      // FHANDLE.
  Status Mount(const std::string& fstype, const std::string& path);

  // ---- Processes / threads ---------------------------------------------------------
  // Runs `child` in a forked process; returns the child's pid in the parent.
  Result<int> Fork(std::function<int(SyscallApi&)> child);
  // Replaces the current process image; only returns on failure.
  Status Execve(const std::string& path, std::vector<std::string> argv);
  // Terminates the calling thread's process (when called on the last live
  // thread) and the calling thread. Never returns.
  [[noreturn]] void Exit(int code);
  // Waits for child `pid` (-1 = any child); returns its exit code.
  Result<int> Wait4(int pid);
  // pthread_create-alike: new thread sharing the address space.
  Result<int> SpawnThread(std::function<void(SyscallApi&)> body);
  void SchedYield();
  void Nanosleep(Nanos duration);
  // pause(2): blocks the calling thread indefinitely.
  void Pause();

  // ---- Memory -------------------------------------------------------------------------
  Result<int> Mmap(Bytes length, bool populate = false);
  Status Munmap(int vma_id);
  // Grows the heap (brk) by `bytes`; pages appear on TouchHeap.
  Status BrkGrow(Bytes bytes);
  // Touches heap pages (demand paging; charges page faults).
  Status TouchHeap(Bytes offset, Bytes length);

  // ---- Futex / IPC ------------------------------------------------------------------------
  Status FutexWait(const int* word, int expected, Nanos timeout = 0);
  Result<int> FutexWake(const int* word, int count);
  Result<int> Shmget(Bytes size);        // SYSVIPC.
  Status Shmat(int shmid);               // SYSVIPC.
  Status Semget();                       // SYSVIPC.
  Status Semop();                        // SYSVIPC.
  Result<int> MqOpen(const std::string& name);  // POSIX_MQUEUE.

  // ---- Optional fd factories (Table 1 gates) --------------------------------------------------
  Result<int> EpollCreate1();
  Status EpollCtlAdd(int epfd, int fd);
  Result<std::vector<int>> EpollWait(int epfd, int max_events, Nanos timeout = 0);
  Result<int> Eventfd(uint64_t initial = 0);
  Result<int> TimerfdCreate();
  Result<int> Signalfd();
  Result<int> InotifyInit();
  Result<int> FanotifyInit();
  Status Bpf();
  Result<int> IoSetup();   // AIO context.
  Status IoSubmit(int ctx);

  // ---- Sockets ------------------------------------------------------------------------------------
  Result<int> Socket(SockDomain domain, SockType type);
  Status Bind(int fd, uint16_t port, const std::string& unix_path = "");
  Status Listen(int fd, int backlog);
  Result<int> Accept(int fd);
  Status Connect(int fd, uint16_t port, const std::string& unix_path = "");
  Result<size_t> Send(int fd, const std::string& data);
  Result<std::string> Recv(int fd, size_t max_bytes);
  Result<std::pair<int, int>> SocketPair(SockType type);
  Status Setsockopt(int fd);
  Status Select(int nfds, bool tcp_fds = false);
  Status Poll(const std::vector<int>& fds);

  Kernel* kernel() const { return k_; }

 private:
  // Entry/exit bookkeeping shared by every syscall.
  class Scope {
   public:
    Scope(SyscallApi* api, kbuild::Sys nr);
    ~Scope();
    // ENOSYS when the syscall's gating option is configured out.
    const Status& status() const { return status_; }
    bool ok() const { return status_.ok(); }

   private:
    SyscallApi* api_;
    bool free_run_;
    kbuild::Sys nr_;
    Nanos entry_ = 0;  // virtual clock at entry, for per-syscall accounting
    Status status_;
  };

  // Charges kernel-mode cycles scaled by the kernel-wide multipliers.
  void ChargeKernel(Nanos cycles);
  // Charges `bytes` worth of kernel memcpy.
  void ChargeCopy(Bytes bytes);
  // Packet-cost helpers for the loopback path.
  void ChargeTx(const std::shared_ptr<lupine::guestos::Socket>& peer_sock, Bytes bytes, SockDomain domain);
  static uint32_t PacketsFor(Bytes bytes);

  Result<std::shared_ptr<FileDescription>> LookupFd(int fd);
  Status CheckEnabled(kbuild::Sys nr) const;
  bool CurrentIsFree() const;

  Kernel* k_;
  int next_shm_id_ = 1;
};

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_SYSCALL_API_H_

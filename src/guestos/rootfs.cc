#include "src/guestos/rootfs.h"

#include <cstring>

namespace lupine::guestos {
namespace {

constexpr char kMagic[8] = {'L', 'U', 'P', 'X', '2', 'F', 'S', '\1'};

void PutU32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

bool GetU32(const std::string& in, size_t& pos, uint32_t& v) {
  if (pos + 4 > in.size()) {
    return false;
  }
  v = static_cast<uint8_t>(in[pos]) | (static_cast<uint8_t>(in[pos + 1]) << 8) |
      (static_cast<uint8_t>(in[pos + 2]) << 16) |
      (static_cast<uint32_t>(static_cast<uint8_t>(in[pos + 3])) << 24);
  pos += 4;
  return true;
}

bool GetBlob(const std::string& in, size_t& pos, uint32_t len, std::string& out) {
  if (pos + len > in.size()) {
    return false;
  }
  out.assign(in, pos, len);
  pos += len;
  return true;
}

}  // namespace

std::string FormatRootfs(const FsSpec& spec) {
  std::string out(kMagic, sizeof(kMagic));
  PutU32(out, static_cast<uint32_t>(spec.size()));
  for (const auto& [path, entry] : spec) {
    PutU32(out, static_cast<uint32_t>(path.size()));
    out += path;
    out.push_back(static_cast<char>(entry.type));
    out.push_back(static_cast<char>(entry.dev));
    out.push_back(entry.executable ? 1 : 0);
    const std::string& payload =
        entry.type == InodeType::kSymlink ? entry.symlink_target : entry.data;
    PutU32(out, static_cast<uint32_t>(payload.size()));
    out += payload;
  }
  return out;
}

Result<FsSpec> ParseRootfs(const std::string& blob) {
  if (blob.size() < sizeof(kMagic) || std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status(Err::kInval, "bad rootfs magic (not a LUPX2FS image)");
  }
  size_t pos = sizeof(kMagic);
  uint32_t count = 0;
  if (!GetU32(blob, pos, count)) {
    return Status(Err::kInval, "truncated rootfs superblock");
  }
  FsSpec spec;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t path_len = 0;
    std::string path;
    if (!GetU32(blob, pos, path_len) || !GetBlob(blob, pos, path_len, path)) {
      return Status(Err::kInval, "truncated rootfs entry path");
    }
    if (pos + 3 > blob.size()) {
      return Status(Err::kInval, "truncated rootfs entry header");
    }
    FsEntry entry;
    entry.type = static_cast<InodeType>(blob[pos++]);
    entry.dev = static_cast<DevId>(blob[pos++]);
    entry.executable = blob[pos++] != 0;
    uint32_t data_len = 0;
    std::string payload;
    if (!GetU32(blob, pos, data_len) || !GetBlob(blob, pos, data_len, payload)) {
      return Status(Err::kInval, "truncated rootfs entry data");
    }
    if (entry.type == InodeType::kSymlink) {
      entry.symlink_target = std::move(payload);
    } else {
      entry.data = std::move(payload);
    }
    spec.emplace(std::move(path), std::move(entry));
  }
  return spec;
}

Status MountRootfs(const FsSpec& spec, Vfs& vfs) {
  for (const auto& [path, entry] : spec) {
    switch (entry.type) {
      case InodeType::kDir: {
        auto r = vfs.CreateDir(path);
        if (!r.ok()) {
          return r.status();
        }
        break;
      }
      case InodeType::kFile: {
        // Ensure parent directories exist (tar-style images list files only).
        auto parent = path.substr(0, path.find_last_of('/'));
        if (!parent.empty()) {
          auto r = vfs.CreateDir(parent);
          if (!r.ok()) {
            return r.status();
          }
        }
        auto r = vfs.CreateFile(path, entry.data, entry.executable);
        if (!r.ok()) {
          return r.status();
        }
        break;
      }
      case InodeType::kCharDev: {
        auto parent = path.substr(0, path.find_last_of('/'));
        if (!parent.empty()) {
          auto r = vfs.CreateDir(parent);
          if (!r.ok()) {
            return r.status();
          }
        }
        auto r = vfs.CreateDevice(path, entry.dev);
        if (!r.ok()) {
          return r.status();
        }
        break;
      }
      case InodeType::kSymlink: {
        auto parent = path.substr(0, path.find_last_of('/'));
        if (!parent.empty()) {
          auto r = vfs.CreateDir(parent);
          if (!r.ok()) {
            return r.status();
          }
        }
        if (Status s = vfs.CreateSymlink(path, entry.symlink_target); !s.ok()) {
          return s;
        }
        break;
      }
    }
  }
  return Status::Ok();
}

}  // namespace lupine::guestos

// The root-filesystem image format.
//
// Lupine converts a container image into an ext2 image that the kernel
// mounts as its rootfs (Section 3). Our equivalent is a small serialized
// filesystem blob ("LUPX2" format): a superblock followed by path/type/data
// records. The builder side lives in src/core/rootfs_builder.*; this module
// owns the format itself plus mounting into a Vfs.
#ifndef SRC_GUESTOS_ROOTFS_H_
#define SRC_GUESTOS_ROOTFS_H_

#include <map>
#include <string>

#include "src/guestos/vfs.h"
#include "src/util/result.h"
#include "src/util/units.h"

namespace lupine::guestos {

// One file (or directory / device / symlink) in a filesystem spec.
struct FsEntry {
  InodeType type = InodeType::kFile;
  std::string data;            // File contents.
  std::string symlink_target;
  DevId dev = DevId::kNone;
  bool executable = false;
};

// Path -> entry; paths are absolute ("/bin/app"). Directories are implied by
// file paths but may also be listed explicitly (e.g. empty /tmp).
using FsSpec = std::map<std::string, FsEntry>;

// Serializes a spec into an image blob.
std::string FormatRootfs(const FsSpec& spec);

// Parses an image blob back into a spec. Fails on bad magic / truncation.
Result<FsSpec> ParseRootfs(const std::string& blob);

// Materializes a parsed image into a Vfs (the kernel's mount step).
Status MountRootfs(const FsSpec& spec, Vfs& vfs);

// On-disk size of an image (what the monitor reads at boot).
inline Bytes RootfsSize(const std::string& blob) { return blob.size(); }

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_ROOTFS_H_

// The guest kernel facade: owns every subsystem, boots, runs init.
#ifndef SRC_GUESTOS_KERNEL_H_
#define SRC_GUESTOS_KERNEL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/guestos/console.h"
#include "src/guestos/cost_model.h"
#include "src/guestos/futex.h"
#include "src/guestos/loader.h"
#include "src/guestos/mem.h"
#include "src/guestos/net.h"
#include "src/guestos/rootfs.h"
#include "src/guestos/sched.h"
#include "src/guestos/task.h"
#include "src/guestos/trace.h"
#include "src/guestos/vfs.h"
#include "src/kbuild/image.h"
#include "src/telemetry/span.h"
#include "src/util/fault.h"
#include "src/util/result.h"
#include "src/util/vclock.h"

namespace lupine::guestos {

class SyscallApi;

// One phase of the guest-side boot sequence with its duration.
struct BootPhase {
  std::string name;
  Nanos duration = 0;
};

struct BootTrace {
  std::vector<BootPhase> phases;
  Nanos Total() const;
};

// Everything about a boot that depends only on the kernel image: resident
// memory, per-phase durations, and which optional phases run. Every boot of
// the same image replays the same plan, so fleet callers (KernelCache)
// compute it once per image and pass it to Kernel::Boot instead of re-running
// the feature arithmetic for every VM. A boot without a plan computes an
// identical one locally — the plan is purely a cache.
struct BootPlan {
  Bytes resident = 0;          // Kernel-resident pages charged at boot.
  Nanos decompress = 0;
  Nanos core_init = 0;
  Nanos smp_bringup = -1;      // -1 = phase configured out.
  Nanos pci_enumeration = -1;  // -1 = phase configured out.
  Nanos initcalls = 0;
  Nanos rootfs_mount = 0;
  std::string banner;          // The "Linux version ..." console line.
};

// Derives the image-invariant boot plan (costs defaults to the process cost
// model, matching Kernel's constructor).
BootPlan ComputeBootPlan(const kbuild::KernelImage& image, const CostModel* costs = nullptr);

class Kernel {
 public:
  // `memory_limit` is the VM's RAM; `registry` resolves app= entry points
  // (defaults to the process-global registry). `faults` is a non-owning
  // fault injector threaded to every subsystem; nullptr means the shared
  // never-fires null injector (the zero-cost default).
  Kernel(const kbuild::KernelImage& image, Bytes memory_limit,
         const AppRegistry* registry = nullptr, FaultInjector* faults = nullptr);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // Guest-side boot: pays decompression/initcall/mount costs on the virtual
  // clock, charges kernel resident memory, and mounts the rootfs image.
  // `plan` (optional, non-owning) is a precomputed ComputeBootPlan result
  // for this kernel's image; nullptr derives the identical plan locally.
  Status Boot(const std::string& rootfs_blob, const BootPlan* plan = nullptr);

  // Spawns pid 1 executing `path` (usually /sbin/init, the startup script).
  Result<Process*> StartInit(const std::string& path, std::vector<std::string> argv = {});

  // Runs the scheduler until quiescence; returns number of threads still
  // blocked (a server waiting for connections counts as blocked).
  size_t Run();

  // --- Subsystem access -------------------------------------------------------
  SyscallApi& sys() { return *sys_; }
  VirtualClock& clock() { return clock_; }
  Scheduler& sched() { return *sched_; }
  MemoryManager& mm() { return *mm_; }
  const MemoryManager& mm() const { return *mm_; }
  Vfs& vfs() { return vfs_; }
  const Vfs& vfs() const { return vfs_; }
  NetStack& net() { return *net_; }
  FutexTable& futexes() { return *futexes_; }
  Console& console() { return console_; }
  const Console& console() const { return console_; }
  TraceLog& trace() { return trace_; }
  const TraceLog& trace() const { return trace_; }
  FaultInjector& faults() { return *faults_; }
  const kbuild::KernelFeatures& features() const { return image_.features; }
  const kbuild::KernelImage& image() const { return image_; }
  const CostModel& costs() const { return *costs_; }
  const AppRegistry& apps() const { return *registry_; }
  const BootTrace& boot_trace() const { return boot_trace_; }

  // Non-owning span sink: every boot phase is also recorded as a span on the
  // kernel's virtual timeline (start anchored at the clock, so monitor time
  // the VMM charged before Boot offsets the guest phases correctly). The VMM
  // installs its Vm-owned trace here for the duration of Boot/StartInit.
  void set_boot_spans(telemetry::SpanTrace* spans) { boot_spans_ = spans; }

  // --- Process management (used by the syscall layer) ---------------------------
  Process* CreateProcess(int ppid, std::shared_ptr<AddressSpace> aspace, std::string name);
  Process* FindProcess(int pid) const;
  void ExitProcess(Process* process, int code);
  WaitQueue& ExitQueue(int pid);
  // A queue nobody ever wakes: pause(2)-style indefinite blocking.
  WaitQueue& PauseQueue();
  size_t ProcessCount() const { return processes_.size(); }

  // Charges page-cache pages the first time a file's contents are read.
  Status ChargePageCache(Inode& inode, Bytes logical_size);

  // Creates /proc/<pid>/{status,cmdline} for `process` when /proc is
  // mounted (called on process creation; also after exec renames).
  void PublishProcDir(Process* process);
  // Publishes every live process (called when /proc gets mounted).
  void PublishAllProcDirs();

  // Fails boot / exec cleanly when memory is exhausted (Fig. 8 probing).
  bool oom() const { return oom_; }
  void set_oom() { oom_ = true; }

  // Ring-0 crash semantics: writes the oops dump to the console, records
  // the panic in the trace log, and stops the scheduler for good. What
  // happens next is CONFIG_PANIC_TIMEOUT's call: halt (0), reboot after N
  // seconds (>0, charged to the virtual clock), or reboot immediately (<0).
  // Safe to call from fiber context (the calling thread never returns) and
  // from outside the scheduler.
  void Panic(const std::string& reason);
  bool panicked() const { return panicked_; }
  const std::string& panic_reason() const { return panic_reason_; }
  // True when the panicked guest asked its monitor for a reboot rather than
  // sitting dead until a health check notices (PANIC_TIMEOUT != 0).
  bool reboot_on_panic() const { return reboot_on_panic_; }

 private:
  void Phase(const char* name, Nanos duration);

  kbuild::KernelImage image_;
  const CostModel* costs_;
  const AppRegistry* registry_;
  FaultInjector* faults_;

  VirtualClock clock_;
  std::unique_ptr<MemoryManager> mm_;
  std::unique_ptr<Scheduler> sched_;
  Vfs vfs_;
  std::unique_ptr<NetStack> net_;
  std::unique_ptr<FutexTable> futexes_;
  Console console_;
  TraceLog trace_;
  std::unique_ptr<SyscallApi> sys_;

  std::map<int, std::unique_ptr<Process>> processes_;
  std::map<int, std::unique_ptr<WaitQueue>> exit_queues_;
  std::unique_ptr<WaitQueue> pause_queue_;
  int next_pid_ = 1;
  bool booted_ = false;
  bool oom_ = false;
  bool panicked_ = false;
  bool reboot_on_panic_ = false;
  std::string panic_reason_;
  BootTrace boot_trace_;
  telemetry::SpanTrace* boot_spans_ = nullptr;
};

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_KERNEL_H_

#include "src/guestos/snapshot.h"

#include <utility>

namespace lupine::guestos {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void Mix(uint64_t& h, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

void Mix(uint64_t& h, const std::string& s) {
  Mix(h, static_cast<uint64_t>(s.size()));
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
}

}  // namespace

uint64_t KernelStateDigest(const Kernel& kernel) {
  uint64_t h = kFnvOffset;
  Mix(h, kernel.image().name);
  Mix(h, static_cast<uint64_t>(kernel.image().size));
  Mix(h, static_cast<uint64_t>(kernel.mm().limit()));
  Mix(h, static_cast<uint64_t>(kernel.mm().used()));
  Mix(h, static_cast<uint64_t>(kernel.mm().peak()));
  Mix(h, static_cast<uint64_t>(kernel.ProcessCount()));
  Mix(h, kernel.console().contents());
  for (const BootPhase& phase : kernel.boot_trace().phases) {
    Mix(h, phase.name);
    Mix(h, static_cast<uint64_t>(phase.duration));
  }
  const auto& stats = kernel.trace().syscall_stats();
  for (size_t nr = 0; nr < stats.size(); ++nr) {
    if (stats[nr].count == 0) {
      continue;
    }
    Mix(h, static_cast<uint64_t>(nr));
    Mix(h, stats[nr].count);
    Mix(h, stats[nr].total_ns);
  }
  return h;
}

Nanos SnapshotCaptureCost(const CostModel& costs, Bytes captured_bytes) {
  const Nanos per_mb = static_cast<Nanos>(
      static_cast<double>(costs.snapshot_capture_per_mb) *
      (static_cast<double>(captured_bytes) / static_cast<double>(kMiB)));
  return costs.snapshot_capture_base + per_mb;
}

Nanos SnapshotRestoreCost(const CostModel& costs, Bytes captured_bytes) {
  const Nanos per_mb = static_cast<Nanos>(
      static_cast<double>(costs.snapshot_restore_per_mb) *
      (static_cast<double>(captured_bytes) / static_cast<double>(kMiB)));
  return costs.snapshot_restore_base + per_mb;
}

Result<Snapshot> CaptureSnapshot(const Kernel& kernel, std::string key, std::string app,
                                 std::shared_ptr<const kbuild::KernelImage> image,
                                 std::shared_ptr<const BootPlan> boot_plan,
                                 std::shared_ptr<const std::string> rootfs) {
  if (kernel.panicked()) {
    return Status(Err::kInval, "cannot snapshot a panicked guest");
  }
  if (kernel.ProcessCount() == 0) {
    return Status(Err::kInval, "cannot snapshot before init started");
  }
  if (image == nullptr || rootfs == nullptr) {
    return Status(Err::kInval, "snapshot needs the kernel image and rootfs blob");
  }
  Snapshot snapshot;
  snapshot.key = std::move(key);
  snapshot.app = std::move(app);
  snapshot.kernel = std::move(image);
  snapshot.boot_plan = std::move(boot_plan);
  snapshot.rootfs = std::move(rootfs);
  snapshot.memory = kernel.mm().limit();
  snapshot.captured_bytes = kernel.mm().peak();
  snapshot.capture_ns = SnapshotCaptureCost(kernel.costs(), snapshot.captured_bytes);
  snapshot.restore_ns = SnapshotRestoreCost(kernel.costs(), snapshot.captured_bytes);
  snapshot.state_digest = KernelStateDigest(kernel);
  return snapshot;
}

}  // namespace lupine::guestos

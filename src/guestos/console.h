// The guest console (serial output).
//
// Application startup failures land here (e.g. "epoll_create1 failed:
// function not implemented"), and the automatic configuration search in
// src/core/config_search.* greps this text exactly the way the paper's
// authors read boot logs (Section 4.1).
#ifndef SRC_GUESTOS_CONSOLE_H_
#define SRC_GUESTOS_CONSOLE_H_

#include <string>
#include <vector>

namespace lupine::guestos {

class Console {
 public:
  void Write(const std::string& text);

  const std::string& contents() const { return contents_; }
  std::vector<std::string> Lines() const;
  bool Contains(const std::string& needle) const {
    return contents_.find(needle) != std::string::npos;
  }
  void Clear() { contents_.clear(); }

  // When set, console writes are mirrored to the host's stderr (useful in
  // examples and when debugging tests).
  void set_echo(bool echo) { echo_ = echo; }

 private:
  std::string contents_;
  bool echo_ = false;
};

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_CONSOLE_H_

// Futex hash table (CONFIG_FUTEX).
//
// Guest user code owns the futex word (any int in app memory); the kernel
// side is pure wait-queue management keyed by the word's address, like
// Linux's futex hash buckets.
#ifndef SRC_GUESTOS_FUTEX_H_
#define SRC_GUESTOS_FUTEX_H_

#include <cstdint>
#include <map>
#include <memory>

#include "src/guestos/sched.h"
#include "src/util/result.h"

namespace lupine::guestos {

class FutexTable {
 public:
  explicit FutexTable(Scheduler* sched) : sched_(sched) {}

  // FUTEX_WAIT: blocks if *word still equals `expected`. Returns kAgain when
  // the value changed before sleeping, kTimedOut on timeout, OK when woken.
  Status Wait(const int* word, int expected, Nanos timeout = 0);

  // FUTEX_WAKE: wakes up to `count` waiters on `word`.
  int Wake(const int* word, int count);

  size_t BucketCount() const { return queues_.size(); }

 private:
  Scheduler* sched_;
  std::map<const int*, std::unique_ptr<WaitQueue>> queues_;
};

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_FUTEX_H_

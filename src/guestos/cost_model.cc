#include "src/guestos/cost_model.h"

namespace lupine::guestos {

const CostModel& DefaultCostModel() {
  static const CostModel model;
  return model;
}

}  // namespace lupine::guestos

#include "src/guestos/net.h"

#include <algorithm>

namespace lupine::guestos {

void Socket::NotifyWatchers() {
  for (auto it = watchers.begin(); it != watchers.end();) {
    if (auto epoll = it->lock()) {
      epoll->wq.WakeAll();
      ++it;
    } else {
      it = watchers.erase(it);
    }
  }
}

std::shared_ptr<Socket> NetStack::Create(SockDomain domain, SockType type) {
  return std::make_shared<Socket>(sched_, domain, type);
}

Status NetStack::Bind(const std::shared_ptr<Socket>& sock, uint16_t port,
                      const std::string& unix_path) {
  // The address is claimed at bind time (SO_REUSEADDR not modelled).
  if (sock->domain == SockDomain::kUnix) {
    auto [it, inserted] = unix_listeners_.try_emplace(unix_path, sock);
    if (!inserted) {
      return Status(Err::kAddrInUse, "unix path already bound: " + unix_path);
    }
    sock->unix_path = unix_path;
  } else {
    auto [it, inserted] = inet_listeners_.try_emplace(port, sock);
    if (!inserted) {
      return Status(Err::kAddrInUse, "port already bound: " + std::to_string(port));
    }
    sock->port = port;
  }
  sock->state = SockState::kBound;
  return Status::Ok();
}

Status NetStack::Listen(const std::shared_ptr<Socket>& sock, int backlog) {
  if (sock->state != SockState::kBound) {
    return Status(Err::kInval, "listen on unbound socket");
  }
  sock->state = SockState::kListening;
  sock->backlog = backlog;
  return Status::Ok();
}

Status NetStack::Connect(const std::shared_ptr<Socket>& sock, uint16_t port,
                         const std::string& unix_path) {
  std::shared_ptr<Socket> listener;
  if (sock->domain == SockDomain::kUnix) {
    auto it = unix_listeners_.find(unix_path);
    if (it != unix_listeners_.end()) {
      listener = it->second;
    }
  } else {
    auto it = inet_listeners_.find(port);
    if (it != inet_listeners_.end()) {
      listener = it->second;
    }
  }
  if (listener == nullptr || listener->state != SockState::kListening) {
    return Status(Err::kConnRefused, "connection refused");
  }
  if (listener->backlog > 0 &&
      listener->accept_queue.size() >= static_cast<size_t>(listener->backlog)) {
    // SYN queue overflow: the connection is dropped (OSv's redis behaviour
    // in Section 4.6 is modelled with a small effective backlog).
    return Status(Err::kConnRefused, "listen backlog full, connection dropped");
  }

  auto server_side = std::make_shared<Socket>(sched_, sock->domain, sock->type);
  server_side->state = SockState::kConnected;
  server_side->peer = sock;
  sock->peer = server_side;
  sock->state = SockState::kConnected;
  listener->accept_queue.push_back(server_side);
  listener->accept_wq.Wake(1);
  listener->NotifyWatchers();
  return Status::Ok();
}

Result<std::shared_ptr<Socket>> NetStack::Accept(const std::shared_ptr<Socket>& listener) {
  if (listener->state != SockState::kListening) {
    return Status(Err::kInval, "accept on non-listening socket");
  }
  while (listener->accept_queue.empty()) {
    listener->accept_wq.Block();
  }
  auto sock = listener->accept_queue.front();
  listener->accept_queue.pop_front();
  return sock;
}

Status NetStack::Send(const std::shared_ptr<Socket>& sock, const std::string& data) {
  auto peer = sock->peer.lock();
  if (peer == nullptr || sock->state != SockState::kConnected ||
      peer->state == SockState::kClosed) {
    return Status(Err::kPipe, "send on disconnected socket");
  }
  if (faults_ != nullptr && faults_->Check(FaultSite::kNetSendDrop) &&
      sched_->current() != nullptr) {
    // The segment is lost; the sender stalls for one RTO, then the
    // retransmission succeeds (loopback loses at most once here).
    sched_->SleepCurrent(kRetransmitDelay);
  }
  peer->rx += data;
  peer->read_wq.Wake(1);
  peer->NotifyWatchers();
  return Status::Ok();
}

Result<std::string> NetStack::Recv(const std::shared_ptr<Socket>& sock, size_t max_bytes) {
  if (faults_ != nullptr && faults_->Check(FaultSite::kNetRecvReset)) {
    sock->peer_closed = true;
    sock->read_wq.WakeAll();
    return Status(Err::kConnReset, "connection reset by peer (injected)");
  }
  while (sock->rx.empty()) {
    if (sock->peer_closed || sock->state != SockState::kConnected) {
      return std::string();  // Orderly EOF.
    }
    sock->read_wq.Block();
  }
  size_t n = std::min(max_bytes, sock->rx.size());
  std::string out = sock->rx.substr(0, n);
  sock->rx.erase(0, n);
  return out;
}

Status NetStack::SendDgram(const std::shared_ptr<Socket>& sock, const std::string& data) {
  auto peer = sock->peer.lock();
  if (peer == nullptr) {
    return Status(Err::kNotConn, "dgram send without peer");
  }
  peer->rx_dgrams.push_back(data);
  peer->read_wq.Wake(1);
  peer->NotifyWatchers();
  return Status::Ok();
}

Result<std::string> NetStack::RecvDgram(const std::shared_ptr<Socket>& sock) {
  while (sock->rx_dgrams.empty()) {
    if (sock->peer_closed) {
      return Status(Err::kConnReset, "peer closed");
    }
    sock->read_wq.Block();
  }
  std::string out = sock->rx_dgrams.front();
  sock->rx_dgrams.pop_front();
  return out;
}

void NetStack::Close(const std::shared_ptr<Socket>& sock) {
  if (sock->state == SockState::kListening || sock->state == SockState::kBound) {
    if (sock->domain == SockDomain::kUnix) {
      unix_listeners_.erase(sock->unix_path);
    } else {
      inet_listeners_.erase(sock->port);
    }
  }
  if (auto peer = sock->peer.lock()) {
    peer->peer_closed = true;
    peer->read_wq.WakeAll();
    peer->peer_close_wq.WakeAll();
    peer->NotifyWatchers();
  }
  sock->state = SockState::kClosed;
  sock->read_wq.WakeAll();
  sock->accept_wq.WakeAll();
}

std::pair<std::shared_ptr<Socket>, std::shared_ptr<Socket>> NetStack::CreatePair(SockType type) {
  auto a = std::make_shared<Socket>(sched_, SockDomain::kUnix, type);
  auto b = std::make_shared<Socket>(sched_, SockDomain::kUnix, type);
  a->state = SockState::kConnected;
  b->state = SockState::kConnected;
  a->peer = b;
  b->peer = a;
  return {a, b};
}

}  // namespace lupine::guestos

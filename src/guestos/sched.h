// The guest scheduler: a single-runqueue round-robin scheduler driving
// fiber-based threads on the virtual clock.
//
// The evaluation pins every guest to one VCPU (Section 4), so the scheduler
// serializes execution; CONFIG_SMP still matters because an SMP build pays
// lock and barrier costs on every scheduling operation even with one CPU
// online — the <=8% worst-case overhead quantified in Section 5.
#ifndef SRC_GUESTOS_SCHED_H_
#define SRC_GUESTOS_SCHED_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "src/guestos/cost_model.h"
#include "src/guestos/task.h"
#include "src/util/vclock.h"

namespace lupine::guestos {

class Scheduler;

// FIFO wait queue; blocking/waking integrates with the scheduler.
class WaitQueue {
 public:
  explicit WaitQueue(Scheduler* sched) : sched_(sched) {}

  // Blocks the current thread until woken (optionally with a timeout in
  // virtual ns; 0 = no timeout). Returns false when the wait timed out.
  bool Block(Nanos timeout = 0);

  // Wakes up to `n` waiters; returns the number woken.
  int Wake(int n = 1);
  int WakeAll();

  bool empty() const { return waiters_.empty(); }
  size_t size() const { return waiters_.size(); }

 private:
  friend class Scheduler;
  Scheduler* sched_;
  std::deque<Thread*> waiters_;
};

struct SchedStats {
  uint64_t context_switches = 0;
  uint64_t address_space_switches = 0;
  uint64_t voluntary_switches = 0;
  uint64_t preemptions = 0;
};

class Scheduler {
 public:
  Scheduler(VirtualClock* clock, const CostModel* costs, const kbuild::KernelFeatures* features);
  ~Scheduler();

  // Creates a thread in `process` running `entry`; it becomes runnable.
  Thread* Spawn(Process* process, std::function<void()> entry);

  // Runs until no thread is runnable or sleeping (i.e., everything has
  // exited or is blocked forever). Returns the number of threads still
  // blocked (0 means clean completion).
  size_t Run();

  // --- Called from inside a running thread (fiber context) ---
  Thread* current() const { return current_; }
  // Cooperative preemption check: round-robin switch at syscall boundaries
  // once the timeslice is consumed.
  void MaybePreempt();
  // Voluntarily gives up the CPU (sched_yield).
  void YieldCurrent();
  // Sleeps the current thread for `duration` of virtual time.
  void SleepCurrent(Nanos duration);
  // Terminates the current thread; never returns into the fiber.
  [[noreturn]] void ExitCurrent();

  // Stops dispatching: Run() returns before the next dispatch. Used by
  // Kernel::Panic — a panicked kernel schedules nothing ever again.
  void RequestStop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  // Charges `ns` of CPU to the current thread and advances the clock.
  void ChargeCpu(Nanos ns);

  // Declares `thread`'s cache working set (lmbench lat_ctx); the scheduler
  // tracks the total to model cache pressure.
  void SetWorkingSet(Thread* thread, uint64_t kb);

  const SchedStats& stats() const { return stats_; }
  size_t alive_threads() const { return alive_; }
  VirtualClock* clock() const { return clock_; }

  // Timeslice before cooperative preemption kicks in.
  static constexpr Nanos kTimeslice = Millis(1);

 private:
  friend class WaitQueue;

  void BlockCurrent(WaitQueue* queue, Nanos timeout);
  void WakeThread(Thread* thread);
  void Enqueue(Thread* thread);
  // Runs one thread until it yields back; accounts the switch cost.
  void Dispatch(Thread* next);
  Nanos SwitchCost(Thread* from, Thread* to) const;

  VirtualClock* clock_;
  const CostModel* costs_;
  const kbuild::KernelFeatures* features_;

  std::deque<Thread*> runqueue_;
  struct Sleeper {
    Nanos wake_time;
    Thread* thread;
    bool operator>(const Sleeper& other) const { return wake_time > other.wake_time; }
  };
  std::priority_queue<Sleeper, std::vector<Sleeper>, std::greater<Sleeper>> sleepers_;

  std::vector<std::unique_ptr<Thread>> threads_;  // Owns all threads ever made.
  Thread* current_ = nullptr;
  Thread* last_run_ = nullptr;
  Nanos slice_start_ = 0;
  size_t alive_ = 0;
  bool stop_requested_ = false;
  uint64_t total_working_set_kb_ = 0;
  int next_tid_ = 1;
  SchedStats stats_;
};

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_SCHED_H_

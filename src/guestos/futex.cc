#include "src/guestos/futex.h"

namespace lupine::guestos {

Status FutexTable::Wait(const int* word, int expected, Nanos timeout) {
  if (*word != expected) {
    return Status(Err::kAgain, "futex value changed");
  }
  auto& queue = queues_[word];
  if (queue == nullptr) {
    queue = std::make_unique<WaitQueue>(sched_);
  }
  bool woken = queue->Block(timeout);
  if (!woken) {
    return Status(Err::kTimedOut, "futex wait timed out");
  }
  return Status::Ok();
}

int FutexTable::Wake(const int* word, int count) {
  auto it = queues_.find(word);
  if (it == queues_.end()) {
    return 0;
  }
  int woken = it->second->Wake(count);
  if (it->second->empty()) {
    queues_.erase(it);
  }
  return woken;
}

}  // namespace lupine::guestos

// CostModel: every performance constant of the guest simulation, in one
// place, each traceable to a claim in the paper.
//
// The simulator executes real control flow (threads block on real wait
// queues, pages are really allocated on first touch, packets really traverse
// a loopback queue); this header only prices those operations. Shapes in the
// reproduced figures come from the mechanism; these constants pin the scale:
//
//   * KML removes the user<->kernel privilege transition (Section 3.2):
//     a syscall becomes a near call, ~40% off a null syscall (Fig. 9/10).
//   * Mitigations (retpolines & friends) tax both the transition and
//     kernel-mode cycles; disabling them is where Lupine's ~20% macro win
//     comes from (Section 4.6, [52]).
//   * KPTI multiplies transition cost ~10x (Section 3.1.2).
//   * SMP adds lock/barrier costs even on one CPU (Section 5: <=8% worst
//     case on futex stress).
//   * -Os code runs a few percent slower (-tiny loses up to 10 points on
//     nginx-conn, Table 4).
#ifndef SRC_GUESTOS_COST_MODEL_H_
#define SRC_GUESTOS_COST_MODEL_H_

#include "src/kbuild/features.h"
#include "src/util/units.h"

namespace lupine::guestos {

struct CostModel {
  // ---- Privilege transitions -------------------------------------------------
  Nanos transition_base = 8;        // One direction, bare syscall/sysret.
  Nanos transition_mitigations = 8; // Extra per direction with MITIGATIONS.
  double kpti_transition_factor = 10.0;  // KPTI multiplies the transition.
  Nanos transition_kml = 1;         // Near call when KML runs the app in ring 0.

  // ---- Syscall fixed costs (kernel cycles) -----------------------------------
  Nanos syscall_dispatch = 9;       // Entry stub, table lookup.
  Nanos syscall_frame = 5;          // pt_regs save/restore.
  Nanos hook_audit = 5;             // Per-syscall audit hook when CONFIG_AUDIT.
  Nanos hook_seccomp = 5;           // Per-syscall seccomp check when enabled.

  // Kernel-mode cycle multiplier with MITIGATIONS on (indirect-branch
  // thunking through the whole kernel).
  double mitigations_cycle_factor = 1.5;
  // Kernel compiled -Os runs this much slower.
  double os_mode_cycle_factor = 1.07;

  // ---- Simple syscall work ----------------------------------------------------
  Nanos work_getppid = 5;
  Nanos work_read_devzero = 18;
  Nanos work_write_devnull = 15;
  Nanos work_stat = 90;
  Nanos work_open = 160;
  Nanos work_close = 60;
  Nanos work_fd_alloc = 25;
  Nanos work_select_base = 200;
  Nanos select_per_file_fd = 4;     // Table 5 "100fd selct" ~0.5us.
  Nanos select_per_tcp_fd = 13;     // Table 5 "slct TCP" ~1.5us.
  Nanos work_poll_per_fd = 30;
  Nanos work_epoll_wait = 120;
  Nanos work_epoll_ctl = 90;
  Nanos work_sig_inst = 30;
  Nanos work_sig_handle = 250;
  double copy_per_byte = 0.045;     // memcpy through the kernel, ns/byte.

  // ---- Scheduling --------------------------------------------------------------
  Nanos sched_pick = 60;            // Runqueue selection.
  Nanos ctxsw_registers = 240;      // Register + FPU state swap.
  Nanos ctxsw_address_space = 15;   // cr3 write with PCID (cheap: Section 5
                                    // finds processes ~= threads).
  Nanos smp_lock = 12;              // Runqueue/futex-bucket lock even on
                                    // 1 CPU (Section 5: <=8% worst case).
  Nanos ctxsw_cache_per_kb = 13;    // Working-set refill per KiB touched
                                    // (lmbench 2p/16K vs 2p/64K spread).
  // Cache pressure: the refill fraction grows as the combined working set
  // of all switching threads overflows the cache (8p/16p rows sit above 2p).
  double cache_pressure_base = 0.5;
  double cache_pressure_per_kb = 1.0 / 1024.0;
  Nanos ctxsw_per_queued = 15;      // Runqueue-depth effect.

  // ---- Futex / IPC ---------------------------------------------------------------
  Nanos futex_op = 80;              // Hash-bucket lookup + queue op.
  Nanos sem_op = 95;
  Nanos pipe_transfer = 420;        // Per wakeup-synchronized transfer leg.
  Nanos unix_transfer = 520;
  Nanos sysv_shm_op = 300;

  // ---- Memory ---------------------------------------------------------------------
  Nanos page_fault = 95;            // Anonymous minor fault (Table 5 ~0.1us).
  Nanos page_zero = 110;            // Zeroing a fresh 4K page.
  Nanos mmap_base = 600;            // VMA bookkeeping.
  Nanos fork_base = 30'000;         // task_struct, fd table, signal copy
                                    // (Table 5: 57us microVM / 43us lupine).
  Nanos fork_per_vma = 800;
  Nanos fork_per_page_table_page = 180;
  Nanos exec_base = 100'000;        // Binary parsing, stack setup
                                    // (Table 5: 202us / 156us).
  Nanos exec_dynlink = 40'000;      // ld.so relocation work when dynamic.
  Nanos exec_per_mapped_kb = 120;
  Nanos thread_create = 3'500;      // clone(CLONE_VM).

  // ---- Network (loopback) ------------------------------------------------------------
  Nanos net_stack_per_packet = 600; // IP+TCP processing, one direction.
  Nanos softirq_per_packet = 260;   // Delivery/softirq on the receive side.
  Nanos tcp_connect = 2'600;        // Three-way handshake bookkeeping.
  Nanos tcp_close = 900;
  Nanos socket_create = 700;
  Nanos ipv6_extra_per_packet = 60; // When the socket is AF_INET6.

  // ---- Filesystem -----------------------------------------------------------------------
  Nanos fs_create = 1'100;          // 0K create (Table 5 ~1.3-2.8us).
  Nanos fs_delete = 600;
  Nanos fs_write_per_kb = 450;
  Nanos fs_read_per_kb = 40;        // Page-cache hit.
  Nanos disk_read_per_page = 700;   // Cold read: virtio-blk round trip,
                                    // amortized per 4K page.

  // ---- Boot (see also vmm monitor costs) ------------------------------------------------
  Nanos boot_core_init = 2'800'000;       // setup_arch, mm_init, scheduler.
  Nanos boot_no_paravirt_penalty = 48'000'000;  // Timer/TSC calibration loops
                                                // that CONFIG_PARAVIRT skips
                                                // (71ms vs 23ms, Section 4.3).
  Nanos boot_initcall_driver = 60'000;
  Nanos boot_initcall_net = 40'000;
  Nanos boot_initcall_fs = 30'000;
  Nanos boot_initcall_debug = 80'000;
  Nanos boot_initcall_crypto = 20'000;
  Nanos boot_initcall_other = 20'000;
  Nanos boot_acpi_tables = 5'000'000;     // ACPI namespace walk.
  Nanos boot_smp_bringup = 2'000'000;     // Secondary-CPU path even on 1 VCPU.
  Nanos boot_pci_enumeration = 11'000'000;  // Only with CONFIG_PCI monitors.
  Nanos boot_decompress_per_mb = 400'000;
  Nanos boot_rootfs_mount = 1'600'000;
  Nanos boot_init_exec = 1'400'000;

  // ---- Snapshot/restore (Firecracker-style serving play) --------------------
  // Capturing pauses the guest post-init and serializes device state plus the
  // resident pages; restoring maps the memory file and loads vCPU state, then
  // demand-pages the working set. Scaled so a typical specialized kernel
  // restores well under half its full boot cost — the microVM snapshot
  // literature puts restore in single-digit milliseconds against tens of
  // milliseconds of boot.
  Nanos snapshot_capture_base = 4'000'000;   // Pause + device/vCPU state dump.
  Nanos snapshot_capture_per_mb = 200'000;   // Resident-page serialization.
  Nanos snapshot_restore_base = 2'000'000;   // Map memory file, load vCPU state.
  Nanos snapshot_restore_per_mb = 80'000;    // Demand-map the captured pages.

  // ---- Derived helpers ---------------------------------------------------------------

  // One-way privilege transition for a kernel with `f`, for a process whose
  // libc is (not) KML-capable.
  Nanos Transition(const kbuild::KernelFeatures& f, bool process_in_kernel_mode) const {
    if (f.kml && process_in_kernel_mode) {
      return transition_kml;
    }
    double t = static_cast<double>(transition_base);
    if (f.mitigations) {
      t += static_cast<double>(transition_mitigations);
    }
    if (f.kpti) {
      t *= kpti_transition_factor;
    }
    return static_cast<Nanos>(t);
  }

  // Scales kernel-mode cycles by the kernel-wide multipliers.
  Nanos KernelCycles(const kbuild::KernelFeatures& f, Nanos cycles) const {
    double c = static_cast<double>(cycles);
    if (f.mitigations) {
      c *= mitigations_cycle_factor;
    }
    if (f.compile_mode == kconfig::CompileMode::kOs) {
      c *= os_mode_cycle_factor;
    }
    return static_cast<Nanos>(c);
  }

  // Fixed per-syscall kernel cycles (dispatch + frame + hooks), unscaled.
  Nanos SyscallFixed(const kbuild::KernelFeatures& f) const {
    Nanos fixed = syscall_dispatch + syscall_frame;
    if (f.audit) {
      fixed += hook_audit;
    }
    if (f.seccomp) {
      fixed += hook_seccomp;
    }
    return fixed;
  }
};

// The default, calibrated model.
const CostModel& DefaultCostModel();

}  // namespace lupine::guestos

#endif  // SRC_GUESTOS_COST_MODEL_H_

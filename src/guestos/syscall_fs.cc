// Syscall layer part 3: files, pipes, mounts.
#include <algorithm>

#include "src/guestos/kernel.h"
#include "src/guestos/syscall_api.h"
#include "src/kconfig/option_names.h"

namespace lupine::guestos {

using kbuild::Sys;

namespace {

std::string PseudoRandomBytes(size_t n) {
  std::string out(n, '\0');
  uint64_t x = 0x853C49E6748FEA9Bull;
  for (size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    out[i] = static_cast<char>(x >> 33);
  }
  return out;
}

}  // namespace

Result<int> SyscallApi::Open(const std::string& path, bool create) {
  Scope scope(this, Sys::kOpen);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "open outside any process");
  }
  ChargeKernel(k_->costs().work_open);
  if (k_->trace().enabled() && path.rfind("/proc/sys", 0) == 0) {
    k_->trace().RecordFeature(p->pid(), TraceFeature::kProcSysctl);
  }

  auto inode = k_->vfs().Resolve(path);
  if (!inode.ok()) {
    if (!create) {
      return inode.status();
    }
    ChargeKernel(k_->costs().fs_create);
    inode = k_->vfs().CreateFile(path);
    if (!inode.ok()) {
      return inode.status();
    }
  }
  ChargeKernel(k_->costs().work_fd_alloc);
  auto file = std::make_shared<FileDescription>();
  file->kind = FdKind::kInode;
  file->inode = inode.take();
  file->path = path;
  return p->InstallFd(file);
}

Status SyscallApi::Close(int fd) {
  Scope scope(this, Sys::kClose);
  if (!scope.ok()) {
    return scope.status();
  }
  ChargeKernel(k_->costs().work_close);
  if (fd >= 0 && fd <= 2) {
    return Status::Ok();  // stdio to the console stays open.
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "close outside any process");
  }
  auto file = p->GetFd(fd);
  if (file == nullptr) {
    return Status(Err::kBadF, "bad file descriptor");
  }
  if (file->kind == FdKind::kSocket && file->socket != nullptr) {
    ChargeKernel(k_->costs().tcp_close);
    k_->net().Close(file->socket);
  } else if (file->kind == FdKind::kPipeWrite && file->pipe != nullptr) {
    file->pipe->write_closed = true;
    file->pipe->read_wq.WakeAll();
  } else if (file->kind == FdKind::kPipeRead && file->pipe != nullptr) {
    file->pipe->read_closed = true;
    file->pipe->write_wq.WakeAll();
  }
  p->CloseFd(fd);
  return Status::Ok();
}

Result<std::string> SyscallApi::Read(int fd, size_t max_bytes) {
  Scope scope(this, Sys::kRead);
  if (!scope.ok()) {
    return scope.status();
  }
  if (fd >= 0 && fd <= 2) {
    return std::string();  // stdin: EOF.
  }
  auto lookup = LookupFd(fd);
  if (!lookup.ok()) {
    return lookup.status();
  }
  auto& file = lookup.value();

  switch (file->kind) {
    case FdKind::kInode: {
      Inode& inode = *file->inode;
      if (inode.type == InodeType::kCharDev) {
        switch (inode.dev) {
          case DevId::kNull:
            return std::string();
          case DevId::kZero: {
            ChargeKernel(k_->costs().work_read_devzero);
            ChargeCopy(max_bytes);
            return std::string(max_bytes, '\0');
          }
          case DevId::kUrandom: {
            ChargeKernel(k_->costs().work_read_devzero * 4);
            ChargeCopy(max_bytes);
            return PseudoRandomBytes(max_bytes);
          }
          case DevId::kConsole:
          case DevId::kNone:
            return std::string();
        }
      }
      if (inode.type == InodeType::kDir) {
        return Status(Err::kIsDir, file->path + ": is a directory");
      }
      if (k_->faults().Check(FaultSite::kVfsIo)) {
        k_->console().Write("blk_update_request: I/O error, dev vda, sector 2048\n");
        return Status(Err::kIo, file->path + ": I/O error (injected)");
      }
      if (Status s = k_->ChargePageCache(inode, std::max<Bytes>(inode.data.size(), 1));
          !s.ok()) {
        return s;
      }
      size_t n = std::min(max_bytes, inode.data.size() - std::min(file->offset,
                                                                  inode.data.size()));
      ChargeKernel(k_->costs().fs_read_per_kb * static_cast<Nanos>(n / kKiB + 1));
      ChargeCopy(n);
      std::string out = inode.data.substr(file->offset, n);
      file->offset += n;
      return out;
    }
    case FdKind::kPipeRead: {
      PipeBuffer& pipe = *file->pipe;
      while (pipe.data.empty()) {
        if (pipe.write_closed) {
          return std::string();
        }
        pipe.read_wq.Block();
      }
      size_t n = std::min(max_bytes, pipe.data.size());
      std::string out = pipe.data.substr(0, n);
      pipe.data.erase(0, n);
      ChargeKernel(k_->costs().pipe_transfer / 2);
      ChargeCopy(n);
      pipe.write_wq.WakeAll();
      return out;
    }
    case FdKind::kSocket:
      return Recv(fd, max_bytes);
    case FdKind::kEventfd: {
      if (file->counter == 0) {
        return Status(Err::kAgain, "eventfd not ready");
      }
      std::string out(8, '\0');
      file->counter = 0;
      ChargeKernel(120);
      return out;
    }
    default:
      return Status(Err::kInval, "read: unsupported descriptor kind");
  }
}

Result<size_t> SyscallApi::Write(int fd, const std::string& data) {
  Scope scope(this, Sys::kWrite);
  if (!scope.ok()) {
    return scope.status();
  }
  if (fd >= 0 && fd <= 2) {
    // stdout/stderr: the guest console.
    ChargeKernel(900);
    ChargeCopy(data.size());
    k_->console().Write(data);
    return data.size();
  }
  auto lookup = LookupFd(fd);
  if (!lookup.ok()) {
    return lookup.status();
  }
  auto& file = lookup.value();

  switch (file->kind) {
    case FdKind::kInode: {
      Inode& inode = *file->inode;
      if (inode.type == InodeType::kCharDev) {
        switch (inode.dev) {
          case DevId::kNull:
            ChargeKernel(k_->costs().work_write_devnull);
            ChargeCopy(data.size());
            return data.size();
          case DevId::kConsole:
            ChargeKernel(900);
            ChargeCopy(data.size());
            k_->console().Write(data);
            return data.size();
          case DevId::kZero:
          case DevId::kUrandom:
            ChargeKernel(k_->costs().work_write_devnull);
            return data.size();
          case DevId::kNone:
            return Status(Err::kIo, "write to unknown device");
        }
      }
      if (inode.type == InodeType::kDir) {
        return Status(Err::kIsDir, file->path + ": is a directory");
      }
      ChargeKernel(k_->costs().fs_write_per_kb * static_cast<Nanos>(data.size() / kKiB + 1));
      ChargeCopy(data.size());
      if (file->offset > inode.data.size()) {
        inode.data.resize(file->offset, '\0');
      }
      if (file->offset + data.size() > inode.data.size()) {
        inode.data.resize(file->offset + data.size());
      }
      inode.data.replace(file->offset, data.size(), data);
      file->offset += data.size();
      return data.size();
    }
    case FdKind::kPipeWrite: {
      PipeBuffer& pipe = *file->pipe;
      while (pipe.data.size() + data.size() > PipeBuffer::kCapacity) {
        if (pipe.read_closed) {
          return Status(Err::kPipe, "broken pipe");
        }
        pipe.write_wq.Block();
      }
      pipe.data += data;
      ChargeKernel(k_->costs().pipe_transfer / 2);
      ChargeCopy(data.size());
      pipe.read_wq.WakeAll();
      return data.size();
    }
    case FdKind::kSocket:
      return Send(fd, data);
    case FdKind::kEventfd:
      file->counter += 1;
      ChargeKernel(120);
      return data.size();
    default:
      return Status(Err::kInval, "write: unsupported descriptor kind");
  }
}

Result<size_t> SyscallApi::Stat(const std::string& path) {
  Scope scope(this, Sys::kStat);
  if (!scope.ok()) {
    return scope.status();
  }
  ChargeKernel(k_->costs().work_stat);
  auto inode = k_->vfs().Resolve(path);
  if (!inode.ok()) {
    return inode.status();
  }
  return inode.value()->data.size();
}

Result<int> SyscallApi::Dup(int fd) {
  Scope scope(this, Sys::kDup);
  if (!scope.ok()) {
    return scope.status();
  }
  auto lookup = LookupFd(fd);
  if (!lookup.ok()) {
    return lookup.status();
  }
  ChargeKernel(k_->costs().work_fd_alloc);
  return CurrentProcess()->InstallFd(lookup.value());
}

Status SyscallApi::Unlink(const std::string& path) {
  Scope scope(this, Sys::kUnlink);
  if (!scope.ok()) {
    return scope.status();
  }
  ChargeKernel(k_->costs().fs_delete);
  return k_->vfs().Unlink(path);
}

Status SyscallApi::Mkdir(const std::string& path) {
  Scope scope(this, Sys::kMkdir);
  if (!scope.ok()) {
    return scope.status();
  }
  ChargeKernel(k_->costs().fs_create);
  auto result = k_->vfs().CreateDir(path);
  return result.ok() ? Status::Ok() : result.status();
}

Result<std::pair<int, int>> SyscallApi::Pipe() {
  Scope scope(this, Sys::kPipe);
  if (!scope.ok()) {
    return scope.status();
  }
  Process* p = CurrentProcess();
  if (p == nullptr) {
    return Status(Err::kInval, "pipe outside any process");
  }
  ChargeKernel(2 * k_->costs().work_fd_alloc + 400);
  auto pipe = std::make_shared<PipeBuffer>(&k_->sched());
  auto read_end = std::make_shared<FileDescription>();
  read_end->kind = FdKind::kPipeRead;
  read_end->pipe = pipe;
  auto write_end = std::make_shared<FileDescription>();
  write_end->kind = FdKind::kPipeWrite;
  write_end->pipe = pipe;
  int rfd = p->InstallFd(read_end);
  int wfd = p->InstallFd(write_end);
  return std::make_pair(rfd, wfd);
}

Status SyscallApi::Flock(int fd) {
  Scope scope(this, Sys::kFlock);
  if (!scope.ok()) {
    return scope.status();
  }
  auto lookup = LookupFd(fd);
  if (!lookup.ok()) {
    return lookup.status();
  }
  ChargeKernel(150);
  return Status::Ok();
}

Status SyscallApi::Madvise(int vma_id) {
  Scope scope(this, Sys::kMadvise);
  if (!scope.ok()) {
    return scope.status();
  }
  (void)vma_id;
  ChargeKernel(120);
  return Status::Ok();
}

Status SyscallApi::Fadvise(int fd) {
  Scope scope(this, Sys::kFadvise64);
  if (!scope.ok()) {
    return scope.status();
  }
  (void)fd;
  ChargeKernel(120);
  return Status::Ok();
}

Result<int> SyscallApi::OpenByHandleAt(const std::string& path) {
  Scope scope(this, Sys::kOpenByHandleAt);
  if (!scope.ok()) {
    return scope.status();
  }
  return Open(path);
}

Status SyscallApi::Mount(const std::string& fstype, const std::string& path) {
  Scope scope(this, Sys::kMount);
  if (!scope.ok()) {
    return scope.status();
  }
  const auto& f = k_->features();
  if (k_->trace().enabled() && !CurrentIsFree()) {
    int pid = CurrentProcess() != nullptr ? CurrentProcess()->pid() : 0;
    if (fstype == "tmpfs") {
      k_->trace().RecordFeature(pid, TraceFeature::kMountTmpfs);
    } else if (fstype == "hugetlbfs") {
      k_->trace().RecordFeature(pid, TraceFeature::kMountHugetlbfs);
    }
  }
  bool supported = (fstype == "proc" && f.proc_fs) || (fstype == "sysfs" && f.sysfs) ||
                   (fstype == "tmpfs" && f.tmpfs) || (fstype == "devtmpfs" && f.devtmpfs) ||
                   (fstype == "hugetlbfs" && f.hugetlbfs) || fstype == "ramfs";
  if (!supported) {
    return Status(Err::kNoEnt, "mount: unknown filesystem type '" + fstype + "'");
  }
  ChargeKernel(5'000);
  if (Status s = k_->vfs().Mount(fstype, path); !s.ok()) {
    return s;
  }
  if (fstype == "proc" && f.proc_sysctl) {
    auto proc = k_->vfs().Resolve(path);
    if (proc.ok()) {
      PopulateProcfs(*proc.value(), /*with_sysctl=*/true);
    }
  }
  if (fstype == "proc" && path == "/proc") {
    k_->PublishAllProcDirs();
  }
  return Status::Ok();
}

}  // namespace lupine::guestos

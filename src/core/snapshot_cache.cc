#include "src/core/snapshot_cache.h"

#include <chrono>
#include <utility>

namespace lupine::core {

std::string SnapshotCache::Key(const std::string& fingerprint,
                               const std::string& rootfs_key, Bytes memory) {
  return fingerprint + '\x1f' + rootfs_key + '\x1f' + std::to_string(memory);
}

SnapshotCache::SnapshotPtr SnapshotCache::Put(guestos::Snapshot snapshot) {
  std::lock_guard lock(mu_);
  auto existing = entries_.find(snapshot.key);
  if (existing != entries_.end()) {
    // First capture wins: two shards cold-booting the same key before either
    // captured race here; the canonical snapshot is whichever landed first.
    ++stats_.duplicate_captures;
    if (metrics_ != nullptr) {
      metrics_->GetCounter("snapshot.duplicate_capture").Increment();
    }
    return existing->second;
  }
  auto stored = std::make_shared<const guestos::Snapshot>(std::move(snapshot));
  entries_.emplace(stored->key, stored);
  lru_.Insert(stored->key, stored->SizeBytes());
  ++stats_.captures;
  stats_.bytes_stored = lru_.bytes();
  stats_.entries = lru_.entries();
  if (metrics_ != nullptr) {
    metrics_->GetCounter("snapshot.capture").Increment();
    metrics_->GetHistogram("snapshot.capture_ns").Observe(static_cast<double>(stored->capture_ns));
  }
  EmitJournal("snapshot-capture", stored->key, stored->SizeBytes());
  EvictLocked();
  return stored;
}

SnapshotCache::SnapshotPtr SnapshotCache::Find(const std::string& key) {
  std::lock_guard lock(mu_);
  if (quarantine_policy_.enabled) {
    auto health = quarantine_.find(key);
    if (health != quarantine_.end() && health->second.poisoned_until >= 0) {
      if (QuarantineNowLocked() < health->second.poisoned_until) {
        ++stats_.denials;
        ++stats_.misses;
        if (metrics_ != nullptr) {
          metrics_->GetCounter("snapshot.quarantine_denials").Increment();
          metrics_->GetCounter("snapshot.miss").Increment();
        }
        EmitJournal("quarantine-denial", key);
        return nullptr;
      }
      // TTL expired: half-open. This lookup is the probe; another failure
      // poisons again immediately.
      health->second = RestoreHealth{};
      health->second.recaptures = quarantine_policy_.recapture_limit;
      EmitJournal("half-open", key);
    }
  }
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (metrics_ != nullptr) {
      metrics_->GetCounter("snapshot.miss").Increment();
    }
    return nullptr;
  }
  lru_.Touch(key);
  ++stats_.hits;
  if (metrics_ != nullptr) {
    metrics_->GetCounter("snapshot.hit").Increment();
  }
  return it->second;
}

bool SnapshotCache::Contains(const std::string& key) const {
  std::lock_guard lock(mu_);
  return entries_.count(key) != 0;
}

void SnapshotCache::RecordRestore(const guestos::Snapshot& snapshot, bool ok) {
  std::lock_guard lock(mu_);
  if (ok) {
    ++stats_.restores;
  } else {
    ++stats_.restore_failures;
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter(ok ? "snapshot.restore" : "snapshot.restore_failure").Increment();
    if (ok) {
      metrics_->GetHistogram("snapshot.restore_ns")
          .Observe(static_cast<double>(snapshot.restore_ns));
    }
  }
  if (journal_ != nullptr) {
    telemetry::Event event;
    event.source = "snapshot-cache";
    event.type = "snapshot-restore";
    event.schedule_scoped = true;  // Cache interleaving is host-timing bound.
    event.fields = {{"key", telemetry::FieldValue{snapshot.key}},
                    {"ok", telemetry::FieldValue{uint64_t{ok ? 1u : 0u}}},
                    {"restore_ns", telemetry::FieldValue{static_cast<uint64_t>(snapshot.restore_ns)}}};
    journal_->Emit(std::move(event));
  }
}

void SnapshotCache::ReportRestoreFailure(const std::string& key) {
  std::lock_guard lock(mu_);
  if (!quarantine_policy_.enabled) {
    return;
  }
  RestoreHealth& health = quarantine_[key];
  if (health.poisoned_until >= 0) {
    return;  // Already poisoned; stragglers mid-flight change nothing.
  }
  if (++health.failures < quarantine_policy_.failures_per_strike) {
    return;
  }
  health.failures = 0;
  auto drop = [&] {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return;
    }
    lru_.Erase(key);
    entries_.erase(it);
    stats_.bytes_stored = lru_.bytes();
    stats_.entries = lru_.entries();
  };
  if (health.recaptures < quarantine_policy_.recapture_limit) {
    // Strike one: drop-once. The next boot recaptures from scratch instead
    // of re-serving the suspect memory file.
    ++health.recaptures;
    ++stats_.drops;
    drop();
    if (metrics_ != nullptr) {
      metrics_->GetCounter("snapshot.quarantine_drops").Increment();
    }
    EmitJournal("quarantine-drop", key);
    return;
  }
  // The recapture failed too: poison. Every Find until the TTL misses fast,
  // so the fleet cold-boots instead of restore-crash-looping.
  health.poisoned_until = QuarantineNowLocked() + quarantine_policy_.poison_ttl;
  ++stats_.poisoned;
  drop();
  if (metrics_ != nullptr) {
    metrics_->GetCounter("snapshot.quarantine_poisoned").Increment();
  }
  EmitJournal("snapshot-poison", key);
}

void SnapshotCache::set_quarantine(SnapshotQuarantine policy) {
  std::lock_guard lock(mu_);
  quarantine_policy_ = policy;
}

void SnapshotCache::set_quarantine_clock(std::function<Nanos()> now) {
  std::lock_guard lock(mu_);
  quarantine_now_ = std::move(now);
}

Nanos SnapshotCache::QuarantineNowLocked() {
  if (quarantine_now_) {
    return quarantine_now_();
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SnapshotCache::EvictLocked() {
  stats_.evictions += lru_.EvictOver(
      budget_,
      [&](const std::string& key) { return entries_.at(key).use_count() > 1; },
      [&](const std::string& key, Bytes bytes) {
        stats_.bytes_evicted += bytes;
        EmitJournal("evict", key, bytes);
        entries_.erase(key);
      });
  stats_.bytes_stored = lru_.bytes();
  stats_.entries = lru_.entries();
}

void SnapshotCache::set_budget(CacheBudget budget) {
  std::lock_guard lock(mu_);
  budget_ = budget;
  EvictLocked();
}

void SnapshotCache::EmitJournal(const char* type, const std::string& key,
                                uint64_t bytes) const {
  if (journal_ == nullptr) {
    return;
  }
  telemetry::Event event;
  event.source = "snapshot-cache";
  event.type = type;
  event.schedule_scoped = true;  // Cache interleaving is host-timing bound.
  event.fields = {{"key", telemetry::FieldValue{key}}};
  if (bytes != 0) {
    event.fields.push_back({"bytes", telemetry::FieldValue{bytes}});
  }
  journal_->Emit(std::move(event));
}

SnapshotCache::Stats SnapshotCache::stats() const {
  std::lock_guard lock(mu_);
  Stats out = stats_;
  // Pinned bytes: entries some caller still references.
  out.bytes_pinned = 0;
  for (const auto& [key, snapshot] : entries_) {
    if (snapshot.use_count() > 1) {
      out.bytes_pinned += snapshot->SizeBytes();
    }
  }
  return out;
}

void SnapshotCache::PublishMetrics(telemetry::MetricRegistry& registry) const {
  const Stats s = stats();
  registry.GetGauge("snapshotcache.hits").Set(static_cast<int64_t>(s.hits));
  registry.GetGauge("snapshotcache.misses").Set(static_cast<int64_t>(s.misses));
  registry.GetGauge("snapshotcache.captures").Set(static_cast<int64_t>(s.captures));
  registry.GetGauge("snapshotcache.duplicate_captures")
      .Set(static_cast<int64_t>(s.duplicate_captures));
  registry.GetGauge("snapshotcache.restores").Set(static_cast<int64_t>(s.restores));
  registry.GetGauge("snapshotcache.restore_failures")
      .Set(static_cast<int64_t>(s.restore_failures));
  registry.GetGauge("snapshotcache.evictions").Set(static_cast<int64_t>(s.evictions));
  registry.GetGauge("snapshotcache.bytes_stored").Set(static_cast<int64_t>(s.bytes_stored));
  registry.GetGauge("snapshotcache.bytes_evicted").Set(static_cast<int64_t>(s.bytes_evicted));
  registry.GetGauge("snapshotcache.bytes_pinned").Set(static_cast<int64_t>(s.bytes_pinned));
  registry.GetGauge("snapshotcache.entries").Set(static_cast<int64_t>(s.entries));
  registry.GetGauge("snapshotcache.quarantine_drops").Set(static_cast<int64_t>(s.drops));
  registry.GetGauge("snapshotcache.quarantine_poisoned").Set(static_cast<int64_t>(s.poisoned));
  registry.GetGauge("snapshotcache.quarantine_denials").Set(static_cast<int64_t>(s.denials));
}

}  // namespace lupine::core

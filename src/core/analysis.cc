#include "src/core/analysis.h"

#include "src/apps/manifest.h"
#include "src/kconfig/presets.h"

namespace lupine::core {

std::vector<AppConfigRow> Table3Rows() {
  std::vector<AppConfigRow> rows;
  for (const auto& manifest : apps::Top20Manifests()) {
    AppConfigRow row;
    row.name = manifest.name;
    row.downloads_billions = manifest.downloads_billions;
    row.description = manifest.description;
    row.options_atop_base = kconfig::AppExtraOptions(manifest.name).size();
    rows.push_back(row);
  }
  return rows;
}

std::vector<size_t> OptionGrowthCurve() {
  std::vector<size_t> curve;
  std::set<std::string> seen;
  for (const auto& app : kconfig::Top20AppNames()) {
    for (const auto& option : kconfig::AppExtraOptions(app)) {
      seen.insert(option);
    }
    curve.push_back(seen.size());
  }
  return curve;
}

std::set<std::string> UnionOfAppOptions() {
  std::set<std::string> all;
  for (const auto& app : kconfig::Top20AppNames()) {
    for (const auto& option : kconfig::AppExtraOptions(app)) {
      all.insert(option);
    }
  }
  return all;
}

}  // namespace lupine::core

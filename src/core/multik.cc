#include "src/core/multik.h"

#include <functional>
#include <sstream>

namespace lupine::core {

std::unique_ptr<vmm::Vm> KernelCache::AppArtifact::Launch(Bytes memory,
                                                          FaultInjector* faults) const {
  vmm::VmSpec spec;
  spec.monitor = vmm::Firecracker();
  spec.image = *kernel;
  spec.rootfs = rootfs;
  spec.memory = memory;
  spec.faults = faults;
  return std::make_unique<vmm::Vm>(std::move(spec));
}

std::string KernelCache::ConfigFingerprint(const kconfig::Config& config) {
  // Canonical text: sorted option=value lines + build knobs. (EnabledOptions
  // is already sorted; Config::name deliberately excluded — two differently
  // named but identical configs produce identical kernels.)
  std::ostringstream key;
  for (const auto& option : config.EnabledOptions()) {
    key << option << "=" << config.GetValue(option) << ";";
  }
  key << "mode=" << (config.compile_mode() == kconfig::CompileMode::kOs ? "Os" : "O2");
  key << ";kml=" << (config.kml_patch_applied() ? 1 : 0);
  // Content address: a stable hash over the canonical text.
  return std::to_string(std::hash<std::string>{}(key.str()));
}

Result<const KernelCache::AppArtifact*> KernelCache::GetOrBuild(const std::string& app) {
  ++requests_;
  auto cached = apps_.find(app);
  if (cached != apps_.end()) {
    return &cached->second;
  }

  auto built = builder_.BuildForApp(app, options_);
  if (!built.ok()) {
    return built.status();
  }
  std::string fingerprint = ConfigFingerprint(built->config);
  auto it = kernels_.find(fingerprint);
  if (it == kernels_.end()) {
    ++builds_;
    it = kernels_
             .emplace(fingerprint, std::make_unique<kbuild::KernelImage>(built->kernel))
             .first;
  }

  AppArtifact artifact;
  artifact.kernel = it->second.get();
  artifact.rootfs = std::move(built->rootfs);
  artifact.init_script = std::move(built->init_script);
  app_fingerprint_[app] = fingerprint;
  auto [inserted, ok] = apps_.emplace(app, std::move(artifact));
  (void)ok;
  return &inserted->second;
}

KernelCache::Stats KernelCache::stats() const {
  Stats stats;
  stats.requests = requests_;
  stats.builds = builds_;
  stats.apps = apps_.size();
  stats.distinct_kernels = kernels_.size();
  for (const auto& [app, fingerprint] : app_fingerprint_) {
    stats.bytes_if_unshared += kernels_.at(fingerprint)->size;
  }
  for (const auto& [fingerprint, image] : kernels_) {
    stats.bytes_stored += image->size;
  }
  return stats;
}

}  // namespace lupine::core

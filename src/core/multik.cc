#include "src/core/multik.h"

#include <cassert>
#include <functional>
#include <sstream>
#include <utility>

#include "src/apps/builtin.h"
#include "src/apps/init_script.h"
#include "src/kbuild/builder.h"

namespace lupine::core {
namespace {

// Distinguishes per-call BuildOptions in the artifact key so the same app
// built with different knobs never aliases one cache entry.
std::string OptionsKey(const BuildOptions& options) {
  std::ostringstream key;
  key << options.kml << options.tiny << options.general_config << options.batch_general
      << ';' << options.panic_timeout << ';';
  for (const auto& option : options.extra_options) {
    key << option << ',';
  }
  return key.str();
}

}  // namespace

std::unique_ptr<vmm::Vm> KernelCache::AppArtifact::Launch(Bytes memory,
                                                          FaultInjector* faults) const {
  vmm::VmSpec spec;
  spec.monitor = vmm::Firecracker();
  spec.image = *kernel;
  spec.rootfs = *rootfs;
  spec.memory = memory;
  spec.faults = faults;
  spec.boot_plan = boot_plan;
  return std::make_unique<vmm::Vm>(std::move(spec));
}

std::string KernelCache::ConfigFingerprint(const kconfig::Config& config) {
  // Canonical text: sorted option=value lines + build knobs. (EnabledOptions
  // is already sorted; Config::name deliberately excluded — two differently
  // named but identical configs produce identical kernels.)
  std::ostringstream key;
  kconfig::ValueViewGuard guard(config);  // GetValue views held across the loop.
  for (const auto& option : config.EnabledOptions()) {
    key << option << "=" << config.GetValue(option) << ";";
  }
  assert(guard.Check() && "config mutated while fingerprinting");
  (void)guard;
  key << "mode=" << (config.compile_mode() == kconfig::CompileMode::kOs ? "Os" : "O2");
  key << ";kml=" << (config.kml_patch_applied() ? 1 : 0);
  // Content address: a stable hash over the canonical text.
  return std::to_string(std::hash<std::string>{}(key.str()));
}

Result<KernelCache::ArtifactPtr> KernelCache::GetOrBuild(const std::string& app) {
  return GetOrBuildKeyed(app, app, options_);
}

Result<KernelCache::ArtifactPtr> KernelCache::GetOrBuild(const std::string& app,
                                                         const BuildOptions& options) {
  return GetOrBuildKeyed(app + '\x1f' + OptionsKey(options), app, options);
}

Result<KernelCache::ArtifactPtr> KernelCache::GetOrBuildKeyed(const std::string& key,
                                                              const std::string& app,
                                                              const BuildOptions& options) {
  std::unique_lock lock(mu_);
  ++requests_;

  // Fast path / single-flight entry: either the artifact exists, another
  // thread is building it (wait), or we claim the flight.
  std::shared_ptr<Flight> app_flight;
  for (;;) {
    auto cached = apps_.find(key);
    if (cached != apps_.end()) {
      artifact_lru_.Touch(key);
      return cached->second;
    }
    auto flying = app_flights_.find(key);
    if (flying == app_flights_.end()) {
      app_flight = std::make_shared<Flight>();
      app_flights_.emplace(key, app_flight);
      break;
    }
    std::shared_ptr<Flight> flight = flying->second;
    cv_.wait(lock, [&] { return flight->done; });
    if (!flight->status.ok()) {
      return flight->status;
    }
    return flight->artifact;
  }

  // We own the flight for `key`. Resolve it with `status` on every error
  // path; the entry is erased so later calls retry (no negative caching).
  auto fail = [&](Status status) -> Status {
    app_flight->done = true;
    app_flight->status = status;
    app_flights_.erase(key);
    cv_.notify_all();
    return status;
  };

  lock.unlock();
  const apps::AppManifest* manifest = apps::FindManifest(app);
  if (manifest == nullptr) {
    lock.lock();
    return fail(Status(Err::kNoEnt, "no manifest for application " + app));
  }
  auto specialized = builder_.SpecializeConfig(*manifest, options);
  if (!specialized.ok()) {
    lock.lock();
    return fail(specialized.status());
  }
  kconfig::Config config = specialized.take();

  // Cross-build batching: prove the per-app configuration is a subset of
  // lupine-general and, if so, build/serve the shared general kernel
  // instead. The proof is per-app — an extra option outside the general
  // union falls back to the specialized build.
  bool general_kernel = false;
  if (options.batch_general && !options.general_config) {
    BuildOptions general_options = options;
    general_options.general_config = true;
    general_options.batch_general = false;
    general_options.extra_options.clear();
    auto general = builder_.SpecializeConfig(*manifest, general_options);
    if (general.ok() && config.IsSubsetOf(general.value())) {
      config = general.take();
      general_kernel = true;
    }
  }
  const std::string fingerprint = ConfigFingerprint(config);

  // Kernel-level single-flight: apps whose configurations fingerprint
  // identically share one build even when requested concurrently.
  lock.lock();
  KernelEntry kernel;
  while (kernel.image == nullptr) {
    auto hit = kernels_.find(fingerprint);
    if (hit != kernels_.end()) {
      kernel = hit->second;
      kernel_lru_.Touch(fingerprint);
      break;
    }
    auto flying = kernel_flights_.find(fingerprint);
    if (flying != kernel_flights_.end()) {
      std::shared_ptr<KernelFlight> flight = flying->second;
      cv_.wait(lock, [&] { return flight->done; });
      if (!flight->status.ok()) {
        return fail(flight->status);
      }
      kernel = flight->entry;
      break;
    }
    auto kernel_flight = std::make_shared<KernelFlight>();
    kernel_flights_.emplace(fingerprint, kernel_flight);
    lock.unlock();
    kbuild::ImageBuilder image_builder;
    auto built = image_builder.Build(config);
    lock.lock();
    kernel_flight->done = true;
    if (!built.ok()) {
      kernel_flight->status = built.status();
      kernel_flights_.erase(fingerprint);
      cv_.notify_all();
      return fail(built.status());
    }
    ++builds_;
    KernelEntry entry;
    entry.image = std::make_shared<const kbuild::KernelImage>(built.take());
    // The boot plan is the point of the per-image precompute: derived once
    // here, reused by every VM that ever boots this image.
    entry.boot_plan =
        std::make_shared<const guestos::BootPlan>(guestos::ComputeBootPlan(*entry.image));
    kernels_.emplace(fingerprint, entry);
    kernel_lru_.Insert(fingerprint, entry.image->size);
    EvictLocked();  // Our local reference pins the new image.
    kernel_flight->entry = entry;
    kernel_flights_.erase(fingerprint);
    cv_.notify_all();
    kernel = std::move(entry);
  }
  lock.unlock();

  // Per-app artifact: the init script is per-app; the rootfs blob is shared
  // through the content-addressed rootfs cache.
  apps::ContainerImage image = apps::MakeAlpineImage(*manifest);
  apps::RootfsOptions rootfs_options;
  rootfs_options.kml_libc = options.kml;
  auto artifact = std::make_shared<AppArtifact>();
  artifact->kernel = kernel.image;
  artifact->boot_plan = kernel.boot_plan;
  artifact->rootfs = rootfs_cache_.GetOrBuild(image, rootfs_options);
  artifact->init_script = apps::GenerateInitScript(image);
  artifact->general_kernel = general_kernel;
  ArtifactPtr result = std::move(artifact);

  lock.lock();
  app_kernel_bytes_[key] = kernel.image->size;
  if (general_kernel) {
    ++general_served_;
  }
  apps_.emplace(key, result);
  artifact_lru_.Insert(key, result->rootfs->size() + result->init_script.size());
  EvictLocked();  // `result` pins the new artifact.
  app_flight->artifact = result;
  app_flight->done = true;
  app_flights_.erase(key);
  cv_.notify_all();
  return result;
}

void KernelCache::EvictLocked() {
  // Artifacts first: each artifact pins its kernel image, so dropping stale
  // artifacts is what makes stale kernels evictable at all.
  artifact_evictions_ += artifact_lru_.EvictOver(
      artifact_budget_,
      [&](const std::string& key) { return apps_.at(key).use_count() > 1; },
      [&](const std::string& key, Bytes) { apps_.erase(key); });
  kernel_evictions_ += kernel_lru_.EvictOver(
      kernel_budget_,
      [&](const std::string& fingerprint) {
        return kernels_.at(fingerprint).image.use_count() > 1;
      },
      [&](const std::string& fingerprint, Bytes bytes) {
        bytes_evicted_ += bytes;
        kernels_.erase(fingerprint);
      });
}

void KernelCache::set_budgets(CacheBudget artifact_budget, CacheBudget kernel_budget) {
  std::lock_guard lock(mu_);
  artifact_budget_ = artifact_budget;
  kernel_budget_ = kernel_budget;
  EvictLocked();
}

KernelCache::Stats KernelCache::stats() const {
  std::lock_guard lock(mu_);
  Stats stats;
  stats.requests = requests_;
  stats.builds = builds_;
  stats.apps = app_kernel_bytes_.size();
  stats.distinct_kernels = kernels_.size();
  for (const auto& [key, kernel_bytes] : app_kernel_bytes_) {
    stats.bytes_if_unshared += kernel_bytes;
  }
  for (const auto& [fingerprint, entry] : kernels_) {
    stats.bytes_stored += entry.image->size;
  }
  stats.general_served = general_served_;
  stats.artifact_evictions = artifact_evictions_;
  stats.kernel_evictions = kernel_evictions_;
  stats.bytes_evicted = bytes_evicted_;
  return stats;
}

}  // namespace lupine::core

#include "src/core/multik.h"

#include <functional>
#include <sstream>
#include <utility>

#include "src/apps/builtin.h"
#include "src/apps/init_script.h"
#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"

namespace lupine::core {

std::unique_ptr<vmm::Vm> KernelCache::AppArtifact::Launch(Bytes memory,
                                                          FaultInjector* faults) const {
  vmm::VmSpec spec;
  spec.monitor = vmm::Firecracker();
  spec.image = *kernel;
  spec.rootfs = rootfs;
  spec.memory = memory;
  spec.faults = faults;
  return std::make_unique<vmm::Vm>(std::move(spec));
}

std::string KernelCache::ConfigFingerprint(const kconfig::Config& config) {
  // Canonical text: sorted option=value lines + build knobs. (EnabledOptions
  // is already sorted; Config::name deliberately excluded — two differently
  // named but identical configs produce identical kernels.)
  std::ostringstream key;
  for (const auto& option : config.EnabledOptions()) {
    key << option << "=" << config.GetValue(option) << ";";
  }
  key << "mode=" << (config.compile_mode() == kconfig::CompileMode::kOs ? "Os" : "O2");
  key << ";kml=" << (config.kml_patch_applied() ? 1 : 0);
  // Content address: a stable hash over the canonical text.
  return std::to_string(std::hash<std::string>{}(key.str()));
}

Result<const KernelCache::AppArtifact*> KernelCache::GetOrBuild(const std::string& app) {
  std::unique_lock lock(mu_);
  ++requests_;

  // Fast path / single-flight entry: either the artifact exists, another
  // thread is building it (wait), or we claim the flight.
  std::shared_ptr<Flight> app_flight;
  for (;;) {
    auto cached = apps_.find(app);
    if (cached != apps_.end()) {
      return &cached->second;
    }
    auto flying = app_flights_.find(app);
    if (flying == app_flights_.end()) {
      app_flight = std::make_shared<Flight>();
      app_flights_.emplace(app, app_flight);
      break;
    }
    std::shared_ptr<Flight> flight = flying->second;
    cv_.wait(lock, [&] { return flight->done; });
    if (!flight->status.ok()) {
      return flight->status;
    }
    // Success: loop back — apps_ now holds the artifact.
  }

  // We own the flight for `app`. Resolve it with `status` on every error
  // path; the entry is erased so later calls retry (no negative caching).
  auto fail = [&](Status status) -> Status {
    app_flight->done = true;
    app_flight->status = status;
    app_flights_.erase(app);
    cv_.notify_all();
    return status;
  };

  lock.unlock();
  const apps::AppManifest* manifest = apps::FindManifest(app);
  if (manifest == nullptr) {
    lock.lock();
    return fail(Status(Err::kNoEnt, "no manifest for application " + app));
  }
  auto specialized = builder_.SpecializeConfig(*manifest, options_);
  if (!specialized.ok()) {
    lock.lock();
    return fail(specialized.status());
  }
  kconfig::Config config = specialized.take();
  const std::string fingerprint = ConfigFingerprint(config);

  // Kernel-level single-flight: apps whose configurations fingerprint
  // identically share one build even when requested concurrently.
  lock.lock();
  const kbuild::KernelImage* kernel = nullptr;
  while (kernel == nullptr) {
    auto hit = kernels_.find(fingerprint);
    if (hit != kernels_.end()) {
      kernel = hit->second.get();
      break;
    }
    auto flying = kernel_flights_.find(fingerprint);
    if (flying != kernel_flights_.end()) {
      std::shared_ptr<Flight> flight = flying->second;
      cv_.wait(lock, [&] { return flight->done; });
      if (!flight->status.ok()) {
        return fail(flight->status);
      }
      continue;  // kernels_ now holds the image.
    }
    auto kernel_flight = std::make_shared<Flight>();
    kernel_flights_.emplace(fingerprint, kernel_flight);
    lock.unlock();
    kbuild::ImageBuilder image_builder;
    auto built = image_builder.Build(config);
    lock.lock();
    kernel_flight->done = true;
    if (!built.ok()) {
      kernel_flight->status = built.status();
      kernel_flights_.erase(fingerprint);
      cv_.notify_all();
      return fail(built.status());
    }
    ++builds_;
    auto pos =
        kernels_.emplace(fingerprint, std::make_unique<kbuild::KernelImage>(built.take())).first;
    kernel_flights_.erase(fingerprint);
    cv_.notify_all();
    kernel = pos->second.get();
  }
  lock.unlock();

  // Per-app artifact: the rootfs and init script are never shared.
  apps::ContainerImage image = apps::MakeAlpineImage(*manifest);
  apps::RootfsOptions rootfs_options;
  rootfs_options.kml_libc = options_.kml;
  AppArtifact artifact;
  artifact.kernel = kernel;
  artifact.rootfs = apps::BuildAppRootfs(image, rootfs_options);
  artifact.init_script = apps::GenerateInitScript(image);

  lock.lock();
  app_fingerprint_[app] = fingerprint;
  auto [inserted, ok] = apps_.emplace(app, std::move(artifact));
  (void)ok;
  app_flight->done = true;
  app_flights_.erase(app);
  cv_.notify_all();
  return &inserted->second;
}

KernelCache::Stats KernelCache::stats() const {
  std::lock_guard lock(mu_);
  Stats stats;
  stats.requests = requests_;
  stats.builds = builds_;
  stats.apps = apps_.size();
  stats.distinct_kernels = kernels_.size();
  for (const auto& [app, fingerprint] : app_fingerprint_) {
    stats.bytes_if_unshared += kernels_.at(fingerprint)->size;
  }
  for (const auto& [fingerprint, image] : kernels_) {
    stats.bytes_stored += image->size;
  }
  return stats;
}

}  // namespace lupine::core

#include "src/core/multik.h"

#include <cassert>
#include <chrono>
#include <functional>
#include <sstream>
#include <utility>

#include "src/apps/builtin.h"
#include "src/apps/init_script.h"
#include "src/kbuild/builder.h"

namespace lupine::core {
namespace {

// Distinguishes per-call BuildOptions in the artifact key so the same app
// built with different knobs never aliases one cache entry.
std::string OptionsKey(const BuildOptions& options) {
  std::ostringstream key;
  key << options.kml << options.tiny << options.general_config << options.batch_general
      << ';' << options.panic_timeout << ';';
  for (const auto& option : options.extra_options) {
    key << option << ',';
  }
  return key.str();
}

}  // namespace

std::unique_ptr<vmm::Vm> KernelCache::AppArtifact::Launch(Bytes memory,
                                                          FaultInjector* faults) const {
  vmm::VmSpec spec;
  spec.monitor = vmm::Firecracker();
  spec.image = *kernel;
  spec.rootfs = *rootfs;
  spec.memory = memory;
  spec.faults = faults;
  spec.boot_plan = boot_plan;
  return std::make_unique<vmm::Vm>(std::move(spec));
}

std::string KernelCache::ConfigFingerprint(const kconfig::Config& config) {
  // Canonical text: sorted option=value lines + build knobs. (EnabledOptions
  // is already sorted; Config::name deliberately excluded — two differently
  // named but identical configs produce identical kernels.)
  std::ostringstream key;
  kconfig::ValueViewGuard guard(config);  // GetValue views held across the loop.
  for (const auto& option : config.EnabledOptions()) {
    key << option << "=" << config.GetValue(option) << ";";
  }
  assert(guard.Check() && "config mutated while fingerprinting");
  (void)guard;
  key << "mode=" << (config.compile_mode() == kconfig::CompileMode::kOs ? "Os" : "O2");
  key << ";kml=" << (config.kml_patch_applied() ? 1 : 0);
  // Content address: a stable hash over the canonical text.
  return std::to_string(std::hash<std::string>{}(key.str()));
}

Result<KernelCache::ArtifactPtr> KernelCache::GetOrBuild(const std::string& app) {
  return GetOrBuildKeyed(app, app, options_);
}

Result<KernelCache::ArtifactPtr> KernelCache::GetOrBuild(const std::string& app,
                                                         const BuildOptions& options) {
  return GetOrBuildKeyed(app + '\x1f' + OptionsKey(options), app, options);
}

Result<KernelCache::ArtifactPtr> KernelCache::GetOrBuildKeyed(const std::string& key,
                                                              const std::string& app,
                                                              const BuildOptions& options) {
  std::unique_lock lock(mu_);
  ++requests_;
  if (metrics_ != nullptr) {
    metrics_->GetCounter("kernelcache.requests").Increment();
  }

  // Quarantine gate: a poisoned key fails fast instead of handing a known-bad
  // artifact to yet another worker. Past the TTL the poison clears and this
  // very request becomes the probe rebuild.
  if (quarantine_policy_.enabled) {
    auto health = quarantine_.find(key);
    if (health != quarantine_.end() && health->second.poisoned_until >= 0) {
      if (QuarantineNowLocked() < health->second.poisoned_until) {
        ++quarantine_denials_;
        if (metrics_ != nullptr) {
          metrics_->GetCounter("kernelcache.quarantine_denials").Increment();
        }
        EmitJournal("quarantine-denial", app);
        return Status(Err::kAccess, "quarantined: " + app +
                                        " kept failing after a rebuild; poisoned until TTL");
      }
      // TTL expired: half-open. Grant one fresh rebuild cycle.
      health->second = LaunchHealth{};
      EmitJournal("half-open", app);
    }
  }

  // Fast path / single-flight entry: either the artifact exists, another
  // thread is building it (wait), or we claim the flight.
  std::shared_ptr<Flight> app_flight;
  for (;;) {
    auto cached = apps_.find(key);
    if (cached != apps_.end()) {
      artifact_lru_.Touch(key);
      if (metrics_ != nullptr) {
        metrics_->GetCounter("kernelcache.app_hits").Increment();
      }
      EmitJournal("hit", app);
      return cached->second;
    }
    auto flying = app_flights_.find(key);
    if (flying == app_flights_.end()) {
      app_flight = std::make_shared<Flight>();
      app_flights_.emplace(key, app_flight);
      EmitJournal("miss", app);
      break;
    }
    std::shared_ptr<Flight> flight = flying->second;
    cv_.wait(lock, [&] { return flight->done; });
    if (!flight->status.ok()) {
      return flight->status;
    }
    if (metrics_ != nullptr) {
      metrics_->GetCounter("kernelcache.app_hits").Increment();
    }
    EmitJournal("hit", app);
    return flight->artifact;
  }

  // We own the flight for `key`. Resolve it with `status` on every error
  // path; the entry is erased so later calls retry (no negative caching).
  auto fail = [&](Status status) -> Status {
    app_flight->done = true;
    app_flight->status = status;
    app_flights_.erase(key);
    cv_.notify_all();
    return status;
  };

  lock.unlock();
  // This flight's host-wall provisioning timeline: specialize/resolve from
  // SpecializeConfig, `build` only when this flight really built the kernel,
  // `load-rootfs` below. Rides on the artifact for bench exemplars.
  auto provisioning = std::make_shared<telemetry::SpanTrace>();
  auto specialized = SpecializeForApp(app, options, provisioning.get());
  if (!specialized.ok()) {
    lock.lock();
    return fail(specialized.status());
  }
  Specialization spec = specialized.take();
  if (metrics_ != nullptr) {
    for (const char* stage : {"specialize", "resolve"}) {
      if (const telemetry::Span* span = provisioning->Find(stage)) {
        metrics_->GetHistogram("build.stage_ns", {{"stage", stage}})
            .Observe(static_cast<double>(span->duration()));
      }
    }
  }

  // Kernel-level single-flight: apps whose configurations fingerprint
  // identically share one build even when requested concurrently.
  auto ensured = EnsureKernel(spec.config, spec.fingerprint, provisioning.get());
  if (!ensured.ok()) {
    lock.lock();
    return fail(ensured.status());
  }
  KernelEntry kernel = ensured.take();
  const bool general_kernel = spec.general_kernel;

  // Per-app artifact: the init script is per-app; the rootfs blob is shared
  // through the content-addressed rootfs cache.
  apps::ContainerImage image = apps::MakeAlpineImage(*spec.manifest);
  apps::RootfsOptions rootfs_options;
  rootfs_options.kml_libc = options.kml;
  auto artifact = std::make_shared<AppArtifact>();
  artifact->kernel = kernel.image;
  artifact->boot_plan = kernel.boot_plan;
  telemetry::HostStopwatch rootfs_watch;
  artifact->rootfs = rootfs_cache_.GetOrBuild(image, rootfs_options);
  const Nanos rootfs_ns = rootfs_watch.ElapsedNanos();
  provisioning->AddPhase("load-rootfs", rootfs_ns);
  if (metrics_ != nullptr) {
    metrics_->GetHistogram("build.stage_ns", {{"stage", "load-rootfs"}})
        .Observe(static_cast<double>(rootfs_ns));
  }
  artifact->init_script = apps::GenerateInitScript(image);
  artifact->general_kernel = general_kernel;
  artifact->fingerprint = spec.fingerprint;
  artifact->rootfs_key = apps::RootfsCache::CacheKey(image, rootfs_options);
  artifact->provisioning = std::move(provisioning);
  ArtifactPtr result = std::move(artifact);

  lock.lock();
  app_kernel_bytes_[key] = kernel.image->size;
  if (general_kernel) {
    ++general_served_;
  }
  apps_.emplace(key, result);
  artifact_lru_.Insert(key, result->rootfs->size() + result->init_script.size());
  EvictLocked();  // `result` pins the new artifact.
  app_flight->artifact = result;
  app_flight->done = true;
  app_flights_.erase(key);
  cv_.notify_all();
  return result;
}

Result<KernelCache::Specialization> KernelCache::SpecializeForApp(
    const std::string& app, const BuildOptions& options,
    telemetry::SpanTrace* provisioning) {
  const apps::AppManifest* manifest = apps::FindManifest(app);
  if (manifest == nullptr) {
    return Status(Err::kNoEnt, "no manifest for application " + app);
  }
  auto specialized = builder_.SpecializeConfig(*manifest, options, provisioning);
  if (!specialized.ok()) {
    return specialized.status();
  }
  Specialization spec;
  spec.manifest = manifest;
  spec.config = specialized.take();
  // Cross-build batching: prove the per-app configuration is a subset of
  // lupine-general and, if so, build/serve the shared general kernel
  // instead. The proof is per-app — an extra option outside the general
  // union falls back to the specialized build.
  if (options.batch_general && !options.general_config) {
    BuildOptions general_options = options;
    general_options.general_config = true;
    general_options.batch_general = false;
    general_options.extra_options.clear();
    auto general = builder_.SpecializeConfig(*manifest, general_options);
    if (general.ok() && spec.config.IsSubsetOf(general.value())) {
      spec.config = general.take();
      spec.general_kernel = true;
    }
  }
  spec.fingerprint = ConfigFingerprint(spec.config);
  return spec;
}

Result<KernelCache::KernelEntry> KernelCache::EnsureKernel(
    const kconfig::Config& config, const std::string& fingerprint,
    telemetry::SpanTrace* provisioning) {
  std::unique_lock lock(mu_);
  for (;;) {
    auto hit = kernels_.find(fingerprint);
    if (hit != kernels_.end()) {
      kernel_lru_.Touch(fingerprint);
      return hit->second;
    }
    auto flying = kernel_flights_.find(fingerprint);
    if (flying != kernel_flights_.end()) {
      std::shared_ptr<KernelFlight> flight = flying->second;
      cv_.wait(lock, [&] { return flight->done; });
      if (!flight->status.ok()) {
        return flight->status;
      }
      return flight->entry;
    }
    auto kernel_flight = std::make_shared<KernelFlight>();
    kernel_flights_.emplace(fingerprint, kernel_flight);
    lock.unlock();
    telemetry::HostStopwatch build_watch;
    kbuild::ImageBuilder image_builder;
    auto built = image_builder.Build(config);
    const Nanos build_ns = build_watch.ElapsedNanos();
    lock.lock();
    kernel_flight->done = true;
    if (!built.ok()) {
      kernel_flight->status = built.status();
      kernel_flights_.erase(fingerprint);
      cv_.notify_all();
      return built.status();
    }
    ++builds_;
    if (provisioning != nullptr) {
      provisioning->AddPhase("build", build_ns);
    }
    if (metrics_ != nullptr) {
      metrics_->GetCounter("kernelcache.builds").Increment();
      metrics_->GetHistogram("build.stage_ns", {{"stage", "build"}})
          .Observe(static_cast<double>(build_ns));
    }
    KernelEntry entry;
    entry.image = std::make_shared<const kbuild::KernelImage>(built.take());
    // The boot plan is the point of the per-image precompute: derived once
    // here, reused by every VM that ever boots this image.
    entry.boot_plan =
        std::make_shared<const guestos::BootPlan>(guestos::ComputeBootPlan(*entry.image));
    kernels_.emplace(fingerprint, entry);
    kernel_lru_.Insert(fingerprint, entry.image->size);
    EvictLocked();  // Our local reference pins the new image.
    kernel_flight->entry = entry;
    kernel_flights_.erase(fingerprint);
    cv_.notify_all();
    return entry;
  }
}

Result<KernelCache::ProvisionPlan> KernelCache::PlanProvisioning(const std::string& app) {
  auto specialized = SpecializeForApp(app, options_, nullptr);
  if (!specialized.ok()) {
    return specialized.status();
  }
  Specialization spec = specialized.take();
  ProvisionPlan plan;
  plan.app = app;
  plan.fingerprint = spec.fingerprint;
  apps::RootfsOptions rootfs_options;
  rootfs_options.kml_libc = options_.kml;
  const apps::ContainerImage image = apps::MakeAlpineImage(*spec.manifest);
  plan.rootfs_key = apps::RootfsCache::CacheKey(image, rootfs_options);
  plan.rootfs_cached = rootfs_cache_.Contains(image, rootfs_options);
  {
    std::lock_guard lock(mu_);
    plan.kernel_cached = kernels_.count(spec.fingerprint) > 0;
  }
  plan.kernel_cost =
      provision_costs_.kernel_base +
      provision_costs_.kernel_per_option *
          static_cast<Nanos>(spec.config.EnabledOptions().size());
  plan.rootfs_cost = provision_costs_.rootfs;
  return plan;
}

Status KernelCache::PrewarmKernel(const std::string& app) {
  auto specialized = SpecializeForApp(app, options_, nullptr);
  if (!specialized.ok()) {
    return specialized.status();
  }
  Specialization spec = specialized.take();
  auto ensured = EnsureKernel(spec.config, spec.fingerprint, nullptr);
  return ensured.ok() ? Status::Ok() : ensured.status();
}

Status KernelCache::PrewarmRootfs(const std::string& app) {
  const apps::AppManifest* manifest = apps::FindManifest(app);
  if (manifest == nullptr) {
    return Status(Err::kNoEnt, "no manifest for application " + app);
  }
  apps::RootfsOptions rootfs_options;
  rootfs_options.kml_libc = options_.kml;
  (void)rootfs_cache_.GetOrBuild(apps::MakeAlpineImage(*manifest), rootfs_options);
  return Status::Ok();
}

Nanos KernelCache::QuarantineNowLocked() {
  if (quarantine_now_) {
    return quarantine_now_();
  }
  // Host steady clock since the process started: TTLs tick in real time by
  // default; tests inject a manual source for deterministic expiry.
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void KernelCache::DropForRebuildLocked(const std::string& app) {
  artifact_lru_.Erase(app);
  apps_.erase(app);
  // The rootfs blob is keyed by content, not by app: drop it too, or the
  // "rebuild" would be served the identical cached bytes. The shared kernel
  // image stays — other apps' successful boots exonerate it, and a per-app
  // config that really miscompiles rebuilds through the artifact path anyway.
  if (const apps::AppManifest* manifest = apps::FindManifest(app); manifest != nullptr) {
    apps::RootfsOptions rootfs_options;
    rootfs_options.kml_libc = options_.kml;
    (void)rootfs_cache_.Invalidate(apps::MakeAlpineImage(*manifest), rootfs_options);
  }
}

void KernelCache::ReportLaunchFailure(const std::string& app) {
  std::lock_guard lock(mu_);
  if (!quarantine_policy_.enabled) {
    return;
  }
  ++quarantine_failures_;
  if (metrics_ != nullptr) {
    metrics_->GetCounter("kernelcache.quarantine_failures").Increment();
  }
  LaunchHealth& health = quarantine_[app];
  if (health.poisoned_until >= 0) {
    return;  // Already poisoned; stragglers mid-flight change nothing.
  }
  if (++health.failures < quarantine_policy_.failures_per_strike) {
    return;
  }
  health.failures = 0;
  if (health.rebuilds < quarantine_policy_.rebuild_limit) {
    // Strike one: rebuild-once. Drop the artifact and its rootfs blob so the
    // next GetOrBuild builds from scratch instead of re-serving the suspect.
    ++health.rebuilds;
    ++quarantine_rebuilds_;
    DropForRebuildLocked(app);
    if (metrics_ != nullptr) {
      metrics_->GetCounter("kernelcache.quarantine_rebuilds").Increment();
    }
    EmitJournal("quarantine-rebuild", app);
    return;
  }
  // The rebuild failed too: poison. One bad blob must not crash-loop
  // rounds x workers VMs — every GetOrBuild until the TTL fails fast.
  health.poisoned_until = QuarantineNowLocked() + quarantine_policy_.poison_ttl;
  ++quarantine_poisoned_;
  DropForRebuildLocked(app);
  if (metrics_ != nullptr) {
    metrics_->GetCounter("kernelcache.quarantine_poisoned").Increment();
  }
  EmitJournal("poison", app);
}

void KernelCache::set_journal(telemetry::Journal* journal) {
  std::lock_guard lock(mu_);
  journal_ = journal;
  rootfs_cache_.set_journal(journal);
}

void KernelCache::EmitJournal(const char* type, const std::string& app) const {
  if (journal_ == nullptr) {
    return;
  }
  telemetry::Event event;
  event.source = "kernel-cache";
  event.type = type;
  event.schedule_scoped = true;  // Cache interleaving is host-timing bound.
  event.fields = {{"app", telemetry::FieldValue{app}}};
  journal_->Emit(std::move(event));
}

void KernelCache::set_quarantine(QuarantinePolicy policy) {
  std::lock_guard lock(mu_);
  quarantine_policy_ = policy;
}

void KernelCache::set_quarantine_clock(std::function<Nanos()> now) {
  std::lock_guard lock(mu_);
  quarantine_now_ = std::move(now);
}

void KernelCache::EvictLocked() {
  // Artifacts first: each artifact pins its kernel image, so dropping stale
  // artifacts is what makes stale kernels evictable at all.
  artifact_evictions_ += artifact_lru_.EvictOver(
      artifact_budget_,
      [&](const std::string& key) { return apps_.at(key).use_count() > 1; },
      [&](const std::string& key, Bytes) {
        EmitJournal("evict", key);
        apps_.erase(key);
      });
  kernel_evictions_ += kernel_lru_.EvictOver(
      kernel_budget_,
      [&](const std::string& fingerprint) {
        return kernels_.at(fingerprint).image.use_count() > 1;
      },
      [&](const std::string& fingerprint, Bytes bytes) {
        bytes_evicted_ += bytes;
        EmitJournal("evict-kernel", fingerprint);
        kernels_.erase(fingerprint);
      });
}

void KernelCache::set_budgets(CacheBudget artifact_budget, CacheBudget kernel_budget) {
  std::lock_guard lock(mu_);
  artifact_budget_ = artifact_budget;
  kernel_budget_ = kernel_budget;
  EvictLocked();
}

KernelCache::Stats KernelCache::stats() const {
  std::lock_guard lock(mu_);
  Stats stats;
  stats.requests = requests_;
  stats.builds = builds_;
  stats.apps = app_kernel_bytes_.size();
  stats.distinct_kernels = kernels_.size();
  for (const auto& [key, kernel_bytes] : app_kernel_bytes_) {
    stats.bytes_if_unshared += kernel_bytes;
  }
  for (const auto& [fingerprint, entry] : kernels_) {
    stats.bytes_stored += entry.image->size;
    // Pinned = some caller still holds the image (the store's own reference
    // is the +1); eviction cannot reclaim these bytes.
    if (entry.image.use_count() > 1) {
      stats.kernel_bytes_pinned += entry.image->size;
    }
  }
  for (const auto& [key, artifact] : apps_) {
    if (artifact.use_count() > 1) {
      stats.artifact_bytes_pinned += artifact->rootfs->size() + artifact->init_script.size();
    }
  }
  stats.general_served = general_served_;
  stats.quarantine_failures = quarantine_failures_;
  stats.quarantine_rebuilds = quarantine_rebuilds_;
  stats.quarantine_poisoned = quarantine_poisoned_;
  stats.quarantine_denials = quarantine_denials_;
  stats.artifact_evictions = artifact_evictions_;
  stats.kernel_evictions = kernel_evictions_;
  stats.bytes_evicted = bytes_evicted_;
  return stats;
}

void KernelCache::PublishMetrics(telemetry::MetricRegistry& registry) const {
  const Stats s = stats();
  auto set = [&registry](const char* name, uint64_t value, telemetry::Labels labels = {}) {
    registry.GetGauge(name, std::move(labels)).Set(static_cast<int64_t>(value));
  };
  set("kernelcache.apps", s.apps);
  set("kernelcache.distinct_kernels", s.distinct_kernels);
  set("kernelcache.bytes_stored", s.bytes_stored);
  set("kernelcache.bytes_saved", s.bytes_saved());
  set("kernelcache.general_served", s.general_served);
  set("kernelcache.quarantine_failures", s.quarantine_failures);
  set("kernelcache.quarantine_rebuilds", s.quarantine_rebuilds);
  set("kernelcache.quarantine_poisoned", s.quarantine_poisoned);
  set("kernelcache.quarantine_denials", s.quarantine_denials);
  set("kernelcache.bytes_evicted", s.bytes_evicted);
  set("kernelcache.evictions", s.artifact_evictions, {{"tier", "artifact"}});
  set("kernelcache.evictions", s.kernel_evictions, {{"tier", "kernel"}});
  set("kernelcache.bytes_pinned", s.artifact_bytes_pinned, {{"tier", "artifact"}});
  set("kernelcache.bytes_pinned", s.kernel_bytes_pinned, {{"tier", "kernel"}});
  rootfs_cache_.PublishMetrics(registry);
}

}  // namespace lupine::core

// Trace-based application-manifest generation.
//
// The paper assumes a developer-supplied manifest and cites dynamic-analysis
// tooling (DockerSlim, Twistlock, kernel-tailoring frameworks [30, 31, 37])
// as the way to produce one. This module implements that pipeline: run the
// application once on a fully-featured kernel (microVM: everything enabled)
// with syscall tracing on, then map the observed syscalls and feature events
// back to the Kconfig options that gate them (Table 1's reverse mapping).
//
// Compared with the boot-loop search in config_search.*, tracing needs a
// single boot instead of one per missing option — but inherits dynamic
// analysis' blind spot: code paths not exercised during the trace are
// invisible (Section 7's "limited by only considering code executed during
// the analysis phase").
#ifndef SRC_CORE_MANIFEST_GEN_H_
#define SRC_CORE_MANIFEST_GEN_H_

#include <set>
#include <string>
#include <vector>

#include "src/guestos/trace.h"
#include "src/util/result.h"

namespace lupine::core {

struct GeneratedManifest {
  // Options (beyond lupine-base) the trace shows the app needs.
  std::set<std::string> options;
  size_t syscall_events = 0;       // Total syscalls observed.
  size_t distinct_syscalls = 0;    // Distinct syscall numbers.
};

// Maps a raw trace to the gating options it implies.
std::set<std::string> OptionsFromTrace(const guestos::TraceLog& trace);

// Runs `app` on a microVM (fully-featured) kernel with tracing enabled and
// derives its manifest options. Servers are run through their readiness
// announcement; one-shot apps to completion.
Result<GeneratedManifest> GenerateManifestFromTrace(const std::string& app);

// Section 4.1's open question: "provide a guarantee that lupine-general is
// sufficient for a given workload". With a trace-derived option set the
// check becomes mechanical.
struct CoverageReport {
  bool covered = false;
  std::vector<std::string> missing;  // Options lupine-general lacks.
};
CoverageReport CheckLupineGeneralCoverage(const std::set<std::string>& options);

}  // namespace lupine::core

#endif  // SRC_CORE_MANIFEST_GEN_H_

#include "src/core/fleet_boot.h"

#include <algorithm>
#include <chrono>
#include <future>

#include "src/kconfig/presets.h"
#include "src/util/thread_pool.h"
#include "src/vmm/supervisor.h"

namespace lupine::core {
namespace {

struct ShardOutcome {
  Nanos virtual_time = 0;
  size_t boots = 0;
  size_t failures = 0;
  Status status = Status::Ok();  // First artifact-build error, if any.
  Bytes resident_peak = 0;       // Largest single-VM footprint in the shard.
  Bytes resident_sum = 0;        // Sum of VM peak footprints.
  size_t admitted = 0;
  size_t degraded = 0;
  size_t rejected = 0;
  size_t queue_waits = 0;
};

// Boots (and optionally runs) one shard directly, VM by VM.
ShardOutcome RunShardDirect(KernelCache& cache, const std::vector<std::string>& shard,
                            const FleetBootOptions& options) {
  ShardOutcome outcome;
  for (const std::string& app : shard) {
    auto artifact = cache.GetOrBuild(app);
    if (!artifact.ok()) {
      outcome.status = artifact.status();
      return outcome;
    }
    // The grant is declared before the VM so the VM is destroyed first and
    // the bytes return to the budget only once the guest is really gone.
    vmm::Grant grant;
    Bytes memory = options.memory;
    if (options.admission != nullptr) {
      grant = options.admission->Admit({app, options.memory, options.min_memory});
      if (!grant.valid()) {
        ++outcome.rejected;
        ++outcome.failures;
        continue;
      }
      grant.degraded() ? ++outcome.degraded : ++outcome.admitted;
      if (grant.waited()) {
        ++outcome.queue_waits;
      }
      memory = grant.granted();
    }
    auto vm = (*artifact)->Launch(memory);
    if (Status s = vm->Boot(); !s.ok()) {
      ++outcome.failures;
      continue;
    }
    ++outcome.boots;
    outcome.virtual_time += vm->boot_report().to_init;
    if (options.run_workload) {
      auto run = vm->RunToCompletion();
      const bool server_parked = !run.ok() && run.status().err() == Err::kAgain;
      if (!server_parked && (!run.ok() || run.value() != 0)) {
        ++outcome.failures;
      }
    }
    const Bytes peak = vm->kernel().mm().peak();
    outcome.resident_sum += peak;
    outcome.resident_peak = std::max(outcome.resident_peak, peak);
    if (options.metrics != nullptr) {
      options.metrics->GetHistogram("boot.to_init_ns", {{"app", app}})
          .Observe(static_cast<double>(vm->boot_report().to_init));
      for (const telemetry::Span& span : vm->boot_spans().spans()) {
        options.metrics->GetHistogram("boot.phase_ns", {{"phase", span.name}})
            .Observe(static_cast<double>(span.duration()));
      }
      options.metrics->GetHistogram("vm.resident_peak_bytes")
          .Observe(static_cast<double>(peak));
    }
  }
  return outcome;
}

// Boots one shard under a worker-owned Supervisor (restart policy and all).
ShardOutcome RunShardSupervised(KernelCache& cache, const std::vector<std::string>& shard,
                                const FleetBootOptions& options) {
  ShardOutcome outcome;
  vmm::Supervisor supervisor;
  supervisor.set_metrics(options.metrics);
  std::vector<std::string> names;
  names.reserve(shard.size());
  for (size_t i = 0; i < shard.size(); ++i) {
    auto artifact = cache.GetOrBuild(shard[i]);
    if (!artifact.ok()) {
      outcome.status = artifact.status();
      return outcome;
    }
    const apps::AppManifest* manifest = apps::FindManifest(shard[i]);
    std::string ready = manifest != nullptr && manifest->kind == apps::AppKind::kServer
                            ? manifest->ready_line
                            : "";
    KernelCache::ArtifactPtr held = *artifact;
    Bytes memory = options.memory;
    names.push_back(shard[i] + "#" + std::to_string(i));
    supervisor.AddMember(names.back(), [held, memory] { return held->Launch(memory); },
                         ready);
  }
  outcome.failures = supervisor.Run();
  outcome.boots = shard.size() - outcome.failures;
  outcome.virtual_time = supervisor.clock().now();
  // Healthy servers keep their VM alive — those footprints are genuinely
  // concurrent residency on this worker.
  for (const std::string& name : names) {
    const vmm::Supervisor::MemberStats& stats = supervisor.stats(name);
    if (stats.vm == nullptr) {
      continue;
    }
    const Bytes peak = stats.vm->kernel().mm().peak();
    outcome.resident_sum += peak;
    outcome.resident_peak = std::max(outcome.resident_peak, peak);
    if (options.metrics != nullptr) {
      options.metrics->GetHistogram("vm.resident_peak_bytes")
          .Observe(static_cast<double>(peak));
    }
  }
  return outcome;
}

}  // namespace

Result<FleetBootResult> RunFleetBoot(KernelCache& cache, const FleetBootOptions& options) {
  const std::vector<std::string>& apps =
      options.apps.empty() ? kconfig::Top20AppNames() : options.apps;
  const size_t workers = std::max<size_t>(1, options.workers);
  const size_t rounds = std::max<size_t>(1, options.rounds);

  // Static sharding: boot i of round r goes to worker (r * apps + i) mod W.
  // The shard contents — and with them every virtual-time figure — depend
  // only on (apps, rounds, workers), never on thread scheduling.
  std::vector<std::vector<std::string>> shards(workers);
  size_t task = 0;
  for (size_t r = 0; r < rounds; ++r) {
    for (const std::string& app : apps) {
      shards[task++ % workers].push_back(app);
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  ThreadPool pool(workers);
  std::vector<std::future<ShardOutcome>> futures;
  futures.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    futures.push_back(pool.Submit([&cache, &options, shard = std::move(shards[w])] {
      return options.supervised ? RunShardSupervised(cache, shard, options)
                                : RunShardDirect(cache, shard, options);
    }));
  }

  FleetBootResult result;
  for (auto& future : futures) {
    ShardOutcome outcome = future.get();
    if (!outcome.status.ok()) {
      return outcome.status;
    }
    result.boots += outcome.boots;
    result.failures += outcome.failures;
    result.virtual_boot_total += outcome.virtual_time;
    result.virtual_makespan = std::max(result.virtual_makespan, outcome.virtual_time);
    result.worker_virtual.push_back(outcome.virtual_time);
    result.worker_resident_peak.push_back(outcome.resident_peak);
    result.fleet_resident_peak += outcome.resident_peak;
    result.fleet_resident_sum += outcome.resident_sum;
    result.admitted += outcome.admitted;
    result.degraded += outcome.degraded;
    result.rejected += outcome.rejected;
    result.queue_waits += outcome.queue_waits;
  }
  if (options.admission != nullptr) {
    // The controller saw every concurrent grant — its high-water mark beats
    // the sum-of-worker-peaks approximation.
    result.fleet_resident_peak = options.admission->stats().peak_committed;
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  if (result.virtual_makespan > 0) {
    result.boots_per_virtual_sec = static_cast<double>(result.boots) /
                                   (static_cast<double>(result.virtual_makespan) / 1e9);
  }
  if (options.metrics != nullptr) {
    for (size_t w = 0; w < result.worker_resident_peak.size(); ++w) {
      options.metrics
          ->GetGauge("fleet.worker_resident_peak_bytes", {{"worker", std::to_string(w)}})
          .Set(static_cast<int64_t>(result.worker_resident_peak[w]));
    }
    options.metrics->GetGauge("fleet.resident_peak_bytes")
        .Set(static_cast<int64_t>(result.fleet_resident_peak));
    options.metrics->GetGauge("fleet.resident_sum_bytes")
        .Set(static_cast<int64_t>(result.fleet_resident_sum));
    options.metrics->GetGauge("fleet.boots").Set(static_cast<int64_t>(result.boots));
    options.metrics->GetGauge("fleet.failures").Set(static_cast<int64_t>(result.failures));
    cache.PublishMetrics(*options.metrics);
  }
  return result;
}

}  // namespace lupine::core

#include "src/core/fleet_boot.h"

#include <algorithm>
#include <chrono>
#include <future>

#include "src/kconfig/presets.h"
#include "src/util/thread_pool.h"
#include "src/vmm/supervisor.h"

namespace lupine::core {
namespace {

struct ShardOutcome {
  Nanos virtual_time = 0;
  size_t boots = 0;
  size_t failures = 0;
  Status status = Status::Ok();  // First artifact-build error, if any.
};

// Boots (and optionally runs) one shard directly, VM by VM.
ShardOutcome RunShardDirect(KernelCache& cache, const std::vector<std::string>& shard,
                            const FleetBootOptions& options) {
  ShardOutcome outcome;
  for (const std::string& app : shard) {
    auto artifact = cache.GetOrBuild(app);
    if (!artifact.ok()) {
      outcome.status = artifact.status();
      return outcome;
    }
    auto vm = (*artifact)->Launch(options.memory);
    if (Status s = vm->Boot(); !s.ok()) {
      ++outcome.failures;
      continue;
    }
    ++outcome.boots;
    outcome.virtual_time += vm->boot_report().to_init;
    if (options.run_workload) {
      auto run = vm->RunToCompletion();
      const bool server_parked = !run.ok() && run.status().err() == Err::kAgain;
      if (!server_parked && (!run.ok() || run.value() != 0)) {
        ++outcome.failures;
      }
    }
  }
  return outcome;
}

// Boots one shard under a worker-owned Supervisor (restart policy and all).
ShardOutcome RunShardSupervised(KernelCache& cache, const std::vector<std::string>& shard,
                                const FleetBootOptions& options) {
  ShardOutcome outcome;
  vmm::Supervisor supervisor;
  for (size_t i = 0; i < shard.size(); ++i) {
    auto artifact = cache.GetOrBuild(shard[i]);
    if (!artifact.ok()) {
      outcome.status = artifact.status();
      return outcome;
    }
    const apps::AppManifest* manifest = apps::FindManifest(shard[i]);
    std::string ready = manifest != nullptr && manifest->kind == apps::AppKind::kServer
                            ? manifest->ready_line
                            : "";
    KernelCache::ArtifactPtr held = *artifact;
    Bytes memory = options.memory;
    supervisor.AddMember(shard[i] + "#" + std::to_string(i),
                         [held, memory] { return held->Launch(memory); }, ready);
  }
  outcome.failures = supervisor.Run();
  outcome.boots = shard.size() - outcome.failures;
  outcome.virtual_time = supervisor.clock().now();
  return outcome;
}

}  // namespace

Result<FleetBootResult> RunFleetBoot(KernelCache& cache, const FleetBootOptions& options) {
  const std::vector<std::string>& apps =
      options.apps.empty() ? kconfig::Top20AppNames() : options.apps;
  const size_t workers = std::max<size_t>(1, options.workers);
  const size_t rounds = std::max<size_t>(1, options.rounds);

  // Static sharding: boot i of round r goes to worker (r * apps + i) mod W.
  // The shard contents — and with them every virtual-time figure — depend
  // only on (apps, rounds, workers), never on thread scheduling.
  std::vector<std::vector<std::string>> shards(workers);
  size_t task = 0;
  for (size_t r = 0; r < rounds; ++r) {
    for (const std::string& app : apps) {
      shards[task++ % workers].push_back(app);
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  ThreadPool pool(workers);
  std::vector<std::future<ShardOutcome>> futures;
  futures.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    futures.push_back(pool.Submit([&cache, &options, shard = std::move(shards[w])] {
      return options.supervised ? RunShardSupervised(cache, shard, options)
                                : RunShardDirect(cache, shard, options);
    }));
  }

  FleetBootResult result;
  for (auto& future : futures) {
    ShardOutcome outcome = future.get();
    if (!outcome.status.ok()) {
      return outcome.status;
    }
    result.boots += outcome.boots;
    result.failures += outcome.failures;
    result.virtual_boot_total += outcome.virtual_time;
    result.virtual_makespan = std::max(result.virtual_makespan, outcome.virtual_time);
    result.worker_virtual.push_back(outcome.virtual_time);
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  if (result.virtual_makespan > 0) {
    result.boots_per_virtual_sec = static_cast<double>(result.boots) /
                                   (static_cast<double>(result.virtual_makespan) / 1e9);
  }
  return result;
}

}  // namespace lupine::core

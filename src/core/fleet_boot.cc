#include "src/core/fleet_boot.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string_view>
#include <utility>

#include "src/kconfig/presets.h"
#include "src/util/scheduler.h"

namespace lupine::core {
namespace {

// One boot of one app. `index` is the task's global ordinal (round-major),
// which seeds its private fault injector and retrier — both are functions of
// the index alone, so outcomes are identical however tasks are scheduled.
struct BootTask {
  size_t index = 0;
  std::string app;
  // Snapshot plan (empty key = snapshots off for this task). `snapshot_capture`
  // marks the one task per key that cold-boots and publishes the snapshot;
  // every other same-key task restores (and depends on the capture task in
  // the schedule, so the lookup cannot race).
  std::string snapshot_key;
  bool snapshot_capture = false;
};

// Everything one scheduler task reports back. Direct mode fills one per boot
// task; supervised mode fills one per shard. Each task body writes only its
// own slot, so no synchronization is needed beyond the scheduler's joins.
struct TaskOutcome {
  Nanos virtual_time = 0;
  size_t boots = 0;
  size_t failures = 0;
  Status status = Status::Ok();  // First artifact-build error, if any.
  Bytes resident_peak = 0;       // Largest single-VM footprint in the task.
  Bytes resident_sum = 0;        // Sum of VM peak footprints.
  size_t admitted = 0;
  size_t degraded = 0;
  size_t rejected = 0;
  size_t queue_waits = 0;
  size_t retries = 0;
  size_t launch_failures = 0;
  size_t deadline_exceeded = 0;
  size_t quarantined = 0;
  size_t breaker_denied = 0;
  size_t recovered = 0;
  size_t unretried = 0;  // Permanent-error failures that never saw a retry.
  Nanos recovery_total = 0;
  size_t snapshot_captures = 0;
  size_t snapshot_restores = 0;
  size_t snapshot_restore_failures = 0;
  Nanos restore_total = 0;   // to_init over restored launches.
  Nanos coldboot_total = 0;  // to_init over cold-booted launches.
  std::vector<std::pair<size_t, std::string>> fault_logs;  // (task index, line).
};

// Flight-recorder emission for one direct-mode task. `offset` is the task's
// accumulated virtual time at the event — a pure function of (plan, seed,
// task index), never of scheduling — so the journal's canonical export is
// byte-identical across worker counts.
void EmitTaskEvent(const FleetBootOptions& options, const BootTask& task, Nanos offset,
                   std::string_view type, std::vector<telemetry::Field> fields = {}) {
  if (options.journal == nullptr) {
    return;
  }
  std::vector<telemetry::Field> all;
  all.reserve(fields.size() + 2);
  all.push_back({"task", telemetry::FieldValue{static_cast<int64_t>(task.index)}});
  all.push_back({"app", telemetry::FieldValue{task.app}});
  for (telemetry::Field& field : fields) {
    all.push_back(std::move(field));
  }
  options.journal->Emit(offset, "fleet", type, std::move(all));
}

uint64_t TaskSeedFold(uint64_t seed, size_t index) {
  return seed ^ ((static_cast<uint64_t>(index) + 1) * 0x9E3779B97F4A7C15ull);
}

FaultInjector MakeTaskInjector(const FaultPlan* plan, size_t index,
                               const std::string& app) {
  if (plan == nullptr) {
    return FaultInjector();
  }
  // App-filtered rules first (a plan can skew one app's boots), then the
  // per-task seed fold. Both depend only on (plan, index, app), never on
  // which worker runs the task — the replay-determinism contract.
  FaultPlan forked = plan->ForApp(app);
  forked.seed = TaskSeedFold(plan->seed, index);
  return FaultInjector(forked);
}

std::string FormatFaultLog(const BootTask& task, const FaultInjector& injector) {
  std::string line = "#" + std::to_string(task.index) + " " + task.app + ":";
  const char* sep = " ";
  for (const FaultRecord& record : injector.log()) {
    line += sep;
    line += FaultSiteName(record.site);
    line += "@";
    line += std::to_string(record.evaluation);
    sep = ",";
  }
  return line;
}

Nanos InitExecNanos(const vmm::Vm& vm) {
  for (const guestos::BootPhase& phase : vm.boot_report().phases) {
    if (phase.name == "init-exec") {
      return phase.duration;
    }
  }
  return 0;
}

// One launch attempt's verdict. kDenied attempts never consulted a VM
// (admission rejection, breaker denial, quarantine) and are not retried;
// kFatal aborts the whole fleet (an artifact that cannot be built at all).
struct AttemptResult {
  enum Kind { kSuccess, kFail, kDenied, kFatal };
  Kind kind = kFail;
  Status status = Status::Ok();
  Nanos charge = 0;       // Virtual time the failed attempt cost the task.
  bool launched = false;  // A VM ran: the outcome feeds the circuit breaker.
  bool report = false;    // Launch failure worth reporting to quarantine.
};

// One launch attempt: artifact fetch, stage deadlines, admission, boot and
// (optionally) the workload, with counters landing in `outcome`.
AttemptResult RunBootAttempt(KernelCache& cache, const BootTask& task,
                             const FleetBootOptions& options, FaultInjector& injector,
                             bool first_attempt, Nanos offset, TaskOutcome& outcome) {
  AttemptResult result;
  auto artifact = cache.GetOrBuild(task.app);
  if (!artifact.ok()) {
    if (KernelCache::IsQuarantineDenial(artifact.status())) {
      ++outcome.quarantined;
      result.kind = AttemptResult::kDenied;
      EmitTaskEvent(options, task, offset, "quarantine-denied");
    } else if (IsRetryableError(artifact.status())) {
      ++outcome.launch_failures;
      result.kind = AttemptResult::kFail;
      EmitTaskEvent(options, task, offset, "launch-failure",
                    {{"error", telemetry::FieldValue{artifact.status().ToString()}}});
    } else {
      result.kind = AttemptResult::kFatal;
    }
    result.status = artifact.status();
    return result;
  }
  // Host-wall provisioning deadlines apply to fresh builds (artifacts with
  // a provisioning trace) and are priced once, on the task's first attempt,
  // so the counters do not depend on which worker's task happened to
  // trigger the build.
  if (first_attempt && (*artifact)->provisioning != nullptr) {
    struct StageLimit {
      const char* span;
      Nanos limit;
    };
    for (const StageLimit stage : {StageLimit{"build", options.deadlines.build},
                                   StageLimit{"load-rootfs", options.deadlines.rootfs}}) {
      const telemetry::Span* span = (*artifact)->provisioning->Find(stage.span);
      if (span == nullptr) {
        continue;
      }
      if (Status s = DeadlineGuard::CheckElapsed(stage.span, stage.limit, span->duration());
          !s.ok()) {
        ++outcome.deadline_exceeded;
        ++outcome.launch_failures;
        result.kind = AttemptResult::kFail;
        result.status = s;
        EmitTaskEvent(options, task, offset, "deadline",
                      {{"stage", telemetry::FieldValue{std::string(stage.span)}}});
        return result;
      }
    }
  }

  // The grant is declared before the VM so the VM is destroyed first and
  // the bytes return to the budget only once the guest is really gone.
  vmm::Grant grant;
  Bytes memory = options.memory;
  if (options.admission != nullptr) {
    grant = options.admission->Admit({task.app, options.memory, options.min_memory});
    if (!grant.valid()) {
      ++outcome.rejected;
      result.kind = AttemptResult::kDenied;
      result.status = Status(Err::kNoMem, "admission rejected " + task.app);
      EmitTaskEvent(options, task, offset, "reject");
      return result;
    }
    grant.degraded() ? ++outcome.degraded : ++outcome.admitted;
    if (grant.waited()) {
      ++outcome.queue_waits;
    }
    memory = grant.granted();
    EmitTaskEvent(options, task, offset, "admit",
                  {{"degraded", telemetry::FieldValue{grant.degraded()}},
                   {"waited", telemetry::FieldValue{grant.waited()}},
                   {"granted_bytes", telemetry::FieldValue{static_cast<uint64_t>(memory)}}});
  }

  std::unique_ptr<vmm::Vm> vm;
  SnapshotCache::SnapshotPtr snapshot;
  if (options.snapshots != nullptr && !task.snapshot_key.empty() &&
      !task.snapshot_capture) {
    snapshot = options.snapshots->Find(task.snapshot_key);
    if (snapshot != nullptr && snapshot->memory != memory) {
      snapshot = nullptr;  // A degraded grant cannot hold the full-RAM image.
    }
  }
  if (snapshot != nullptr) {
    // Warm launch: re-materialize the captured post-init state at restore
    // cost. Boot-stage deadlines do not apply (there is no boot); a failed
    // restore is charged the modeled restore cost, feeds the store's
    // drop-once-then-poison quarantine, and the retry cold-boots (the
    // suspect entry is gone by then).
    auto restored = vmm::Vm::Restore(*snapshot, injector.armed() ? &injector : nullptr);
    result.launched = true;
    if (!restored.ok()) {
      options.snapshots->RecordRestore(*snapshot, false);
      options.snapshots->ReportRestoreFailure(task.snapshot_key);
      ++outcome.snapshot_restore_failures;
      ++outcome.launch_failures;
      result.kind = AttemptResult::kFail;
      result.status = restored.status();
      result.charge = snapshot->restore_ns;
      EmitTaskEvent(options, task, offset + result.charge, "launch-failure",
                    {{"error", telemetry::FieldValue{restored.status().ToString()}}});
      return result;
    }
    options.snapshots->RecordRestore(*snapshot, true);
    ++outcome.snapshot_restores;
    vm = restored.take();
    EmitTaskEvent(options, task, offset + vm->boot_report().to_init, "snapshot-restore",
                  {{"restore_ns",
                    telemetry::FieldValue{static_cast<uint64_t>(snapshot->restore_ns)}}});
  } else {
  vm = (*artifact)->Launch(memory, injector.armed() ? &injector : nullptr);
  result.launched = true;
  DeadlineGuard boot_guard(vm->kernel().clock(), "boot", options.deadlines.boot);
  if (Status s = vm->Boot(); !s.ok()) {
    // Failed boots charge the task the virtual instant the guest died —
    // or the deadline, had the monitor's timer fired first.
    ++outcome.launch_failures;
    result.kind = AttemptResult::kFail;
    result.status = s;
    result.charge = boot_guard.charged();
    result.report = true;
    if (boot_guard.expired()) {
      ++outcome.deadline_exceeded;
      EmitTaskEvent(options, task, offset + result.charge, "deadline",
                    {{"stage", telemetry::FieldValue{std::string("boot")}}});
    }
    EmitTaskEvent(options, task, offset + result.charge, "launch-failure",
                  {{"error", telemetry::FieldValue{s.ToString()}}});
    return result;
  }
  const Nanos init_ns = InitExecNanos(*vm);
  const Nanos boot_ns = vm->boot_report().to_init - init_ns;
  Status stage = DeadlineGuard::CheckElapsed("boot", options.deadlines.boot, boot_ns);
  Nanos killed_at = options.deadlines.boot;
  if (stage.ok()) {
    stage = DeadlineGuard::CheckElapsed("init", options.deadlines.init, init_ns);
    killed_at = boot_ns + options.deadlines.init;
  }
  if (!stage.ok()) {
    // A stage overran its deadline: the monitor would have killed the VM
    // at that instant (a kBootStall wedge costs the deadline, not 60s).
    ++outcome.deadline_exceeded;
    ++outcome.launch_failures;
    result.kind = AttemptResult::kFail;
    result.status = stage;
    result.charge = killed_at;
    result.report = true;  // An artifact that stalls every boot is a bad artifact.
    EmitTaskEvent(options, task, offset + result.charge, "deadline",
                  {{"stage", telemetry::FieldValue{std::string(
                                 killed_at == options.deadlines.boot ? "boot" : "init")}}});
    return result;
  }

  // Capture: publish this cold boot's post-init state before any workload
  // runs (the digest covers the console and syscall tables, which a run
  // mutates). The guest is paused while the monitor serializes its memory,
  // so the cost lands on the task's timeline, not the guest clock.
  if (options.snapshots != nullptr && task.snapshot_capture &&
      !options.snapshots->Contains(task.snapshot_key)) {
    auto captured = guestos::CaptureSnapshot(vm->kernel(), task.snapshot_key, task.app,
                                             (*artifact)->kernel, (*artifact)->boot_plan,
                                             (*artifact)->rootfs);
    if (captured.ok()) {
      const Nanos capture_ns = captured.value().capture_ns;
      options.snapshots->Put(captured.take());
      ++outcome.snapshot_captures;
      outcome.virtual_time += capture_ns;
      EmitTaskEvent(options, task, offset + vm->boot_report().to_init + capture_ns,
                    "snapshot-capture",
                    {{"capture_ns", telemetry::FieldValue{static_cast<uint64_t>(capture_ns)}}});
    }
  }
  }

  bool workload_failed = false;
  if (options.run_workload) {
    DeadlineGuard guard(vm->kernel().clock(), "workload", options.deadlines.workload);
    auto run = vm->RunToCompletion();
    const bool server_parked = !run.ok() && run.status().err() == Err::kAgain;
    if (guard.expired()) {
      ++outcome.deadline_exceeded;
      ++outcome.launch_failures;
      result.kind = AttemptResult::kFail;
      result.status = guard.Check();
      result.charge = vm->boot_report().to_init + guard.charged();
      EmitTaskEvent(options, task, offset + result.charge, "deadline",
                    {{"stage", telemetry::FieldValue{std::string("workload")}}});
      return result;
    }
    if (!server_parked && !run.ok() && IsRetryableError(run.status())) {
      // Ring-0 panic (or an injected app fault): worth a fresh VM.
      ++outcome.launch_failures;
      result.kind = AttemptResult::kFail;
      result.status = run.status();
      result.charge = vm->kernel().clock().now();
      result.report = true;
      EmitTaskEvent(options, task, offset + result.charge, "launch-failure",
                    {{"error", telemetry::FieldValue{run.status().ToString()}}});
      return result;
    }
    if (!server_parked && (!run.ok() || run.value() != 0)) {
      // Deterministic app failure: the boot held, retrying is pointless.
      workload_failed = true;
    }
  }

  result.kind = AttemptResult::kSuccess;
  if (workload_failed) {
    ++outcome.failures;
  }
  ++outcome.boots;
  outcome.virtual_time += vm->boot_report().to_init;
  // Launch-cost split: a restored VM's to_init is its restore cost.
  (vm->restored() ? outcome.restore_total : outcome.coldboot_total) +=
      vm->boot_report().to_init;
  const Bytes peak = vm->kernel().mm().peak();
  outcome.resident_sum += peak;
  outcome.resident_peak = std::max(outcome.resident_peak, peak);
  if (options.metrics != nullptr) {
    options.metrics->GetHistogram("boot.to_init_ns", {{"app", task.app}})
        .Observe(static_cast<double>(vm->boot_report().to_init));
    for (const telemetry::Span& span : vm->boot_spans().spans()) {
      options.metrics->GetHistogram("boot.phase_ns", {{"phase", span.name}})
          .Observe(static_cast<double>(span.duration()));
    }
    options.metrics->GetHistogram("vm.resident_peak_bytes")
        .Observe(static_cast<double>(peak));
  }
  return result;
}

// One boot task end to end: the retry loop around RunBootAttempt, with
// breaker gating, quarantine feedback and recovery accounting. The VM of
// every attempt is created and destroyed inside this call, on the one worker
// thread running it (fibers are thread-local; migration happens before the
// task starts, never mid-boot).
void RunBootTask(KernelCache& cache, const BootTask& task,
                 const FleetBootOptions& options, TaskOutcome& outcome) {
  FaultInjector injector = MakeTaskInjector(options.fault_plan, task.index, task.app);
  Retrier retrier(options.retry, task.index);
  Nanos recovery = 0;  // Failed-attempt charges + backoff delays.
  Nanos elapsed = 0;   // Task-relative virtual offset for journal events.
  bool completed = false;
  EmitTaskEvent(options, task, 0, "task-start");
  for (int attempt = 0;; ++attempt) {
    if (options.breaker != nullptr && !options.breaker->Allow()) {
      ++outcome.breaker_denied;
      EmitTaskEvent(options, task, elapsed, "breaker-denied");
      break;
    }
    AttemptResult result = RunBootAttempt(cache, task, options, injector,
                                          attempt == 0, elapsed, outcome);
    if (result.kind == AttemptResult::kFatal) {
      outcome.status = result.status;
      return;
    }
    if (result.launched && options.breaker != nullptr) {
      options.breaker->Record(result.kind == AttemptResult::kSuccess);
    }
    if (result.kind == AttemptResult::kSuccess) {
      completed = true;
      break;
    }
    if (result.kind == AttemptResult::kDenied) {
      break;
    }
    outcome.virtual_time += result.charge;
    recovery += result.charge;
    elapsed += result.charge;
    if (result.report) {
      cache.ReportLaunchFailure(task.app);
    }
    Retrier::Decision decision = retrier.OnFailure(result.status);
    if (!decision.retry) {
      if (std::string_view(decision.reason) == "permanent-error") {
        // The failure never entered the retry schedule: surface it instead
        // of letting it hide inside the aggregate failure count.
        ++outcome.unretried;
        EmitTaskEvent(options, task, elapsed, "unretried",
                      {{"error", telemetry::FieldValue{result.status.ToString()}}});
      }
      break;
    }
    ++outcome.retries;
    EmitTaskEvent(options, task, elapsed, "retry",
                  {{"attempt", telemetry::FieldValue{static_cast<int64_t>(attempt + 1)}},
                   {"delay_ns", telemetry::FieldValue{static_cast<int64_t>(decision.delay)}}});
    outcome.virtual_time += decision.delay;
    recovery += decision.delay;
    elapsed += decision.delay;
  }
  if (completed) {
    if (retrier.failures() > 0) {
      ++outcome.recovered;
      outcome.recovery_total += recovery;
    }
  } else {
    ++outcome.failures;
  }
  EmitTaskEvent(options, task, outcome.virtual_time, "task-done",
                {{"ok", telemetry::FieldValue{completed}},
                 {"attempts", telemetry::FieldValue{static_cast<int64_t>(retrier.failures()) +
                                                    (completed ? 1 : 0)}},
                 {"recovered", telemetry::FieldValue{completed && retrier.failures() > 0}}});
  if (injector.total_fires() > 0) {
    outcome.fault_logs.emplace_back(task.index, FormatFaultLog(task, injector));
  }
}

// Boots one shard under a worker-owned Supervisor (restart policy and all).
// The supervisor runs its own retry machinery (options.supervisor_policy);
// the fleet retry/deadline options do not apply here.
TaskOutcome RunShardSupervised(KernelCache& cache, const std::vector<BootTask>& shard,
                               const FleetBootOptions& options) {
  TaskOutcome outcome;
  vmm::Supervisor supervisor(options.supervisor_policy);
  supervisor.set_metrics(options.metrics);
  supervisor.set_journal(options.journal);
  std::vector<std::string> names;
  std::vector<std::unique_ptr<FaultInjector>> injectors;  // Stable addresses.
  names.reserve(shard.size());
  injectors.reserve(shard.size());
  for (const BootTask& task : shard) {
    auto artifact = cache.GetOrBuild(task.app);
    if (!artifact.ok()) {
      outcome.status = artifact.status();
      return outcome;
    }
    const apps::AppManifest* manifest = apps::FindManifest(task.app);
    std::string ready = manifest != nullptr && manifest->kind == apps::AppKind::kServer
                            ? manifest->ready_line
                            : "";
    KernelCache::ArtifactPtr held = *artifact;
    Bytes memory = options.memory;
    injectors.push_back(std::make_unique<FaultInjector>(
        MakeTaskInjector(options.fault_plan, task.index, task.app)));
    FaultInjector* faults = injectors.back()->armed() ? injectors.back().get() : nullptr;
    names.push_back(task.app + "#" + std::to_string(task.index));
    supervisor.AddMember(names.back(),
                         [held, memory, faults] { return held->Launch(memory, faults); },
                         ready);
  }
  outcome.failures = supervisor.Run();
  outcome.boots = shard.size() - outcome.failures;
  outcome.virtual_time = supervisor.clock().now();
  // Healthy servers keep their VM alive — those footprints are genuinely
  // concurrent residency on this worker.
  for (size_t i = 0; i < names.size(); ++i) {
    const vmm::Supervisor::MemberStats& stats = supervisor.stats(names[i]);
    if (stats.attempts > 1) {
      outcome.retries += static_cast<size_t>(stats.attempts - 1);
    }
    outcome.launch_failures += static_cast<size_t>(stats.failures);
    const vmm::MemberState state = supervisor.state(names[i]);
    const bool alive = state == vmm::MemberState::kHealthy ||
                       state == vmm::MemberState::kCompleted;
    if (alive && stats.failures > 0) {
      ++outcome.recovered;
      if (stats.first_healthy_at >= 0) {
        outcome.recovery_total += stats.first_healthy_at;
      }
    }
    if (injectors[i]->total_fires() > 0) {
      outcome.fault_logs.emplace_back(shard[i].index, FormatFaultLog(shard[i], *injectors[i]));
    }
    if (stats.vm == nullptr) {
      continue;
    }
    const Bytes peak = stats.vm->kernel().mm().peak();
    outcome.resident_sum += peak;
    outcome.resident_peak = std::max(outcome.resident_peak, peak);
    if (options.metrics != nullptr) {
      options.metrics->GetHistogram("vm.resident_peak_bytes")
          .Observe(static_cast<double>(peak));
    }
  }
  return outcome;
}

}  // namespace

Result<FleetBootResult> RunFleetBoot(KernelCache& cache, const FleetBootOptions& options) {
  const std::vector<std::string>& apps =
      options.apps.empty() ? kconfig::Top20AppNames() : options.apps;
  const size_t workers = std::max<size_t>(1, options.workers);
  const size_t rounds = std::max<size_t>(1, options.rounds);

  // The task list, round-major. Each task keeps its global ordinal: fault
  // schedules and retry jitter key off it, not off the worker, so those are
  // invariant across worker counts and schedules.
  std::vector<BootTask> boot_tasks;
  boot_tasks.reserve(rounds * apps.size());
  {
    size_t index = 0;
    for (size_t r = 0; r < rounds; ++r) {
      for (const std::string& app : apps) {
        boot_tasks.push_back({index, app});
        ++index;
      }
    }
  }

  // Stage plans, one per distinct app, computed serially up front. Pure
  // planning: stats and quarantine are untouched. This is also where an
  // unbuildable app (no manifest) fails the fleet before anything runs.
  std::map<std::string, KernelCache::ProvisionPlan> plans;
  for (const BootTask& task : boot_tasks) {
    if (plans.count(task.app) > 0) {
      continue;
    }
    auto plan = cache.PlanProvisioning(task.app);
    if (!plan.ok()) {
      return plan.status();
    }
    plans.emplace(task.app, plan.take());
  }

  // Snapshot plan (direct mode): the globally-first task per snapshot key
  // captures; later same-key tasks restore and will depend on the capture
  // task. A key already resident (pre-baked store) restores everywhere with
  // no capture and no dep. Decided here, serially, so restore-vs-capture is
  // a function of the plan — never of which worker won a cache race.
  std::map<std::string, size_t> capture_owner;  // key -> capturing task index.
  if (options.snapshots != nullptr && !options.supervised) {
    for (BootTask& task : boot_tasks) {
      const KernelCache::ProvisionPlan& plan = plans.at(task.app);
      task.snapshot_key =
          SnapshotCache::Key(plan.fingerprint, plan.rootfs_key, options.memory);
      if (options.snapshots->Contains(task.snapshot_key)) {
        continue;  // Restore with no dep.
      }
      auto [it, fresh] = capture_owner.try_emplace(task.snapshot_key, task.index);
      task.snapshot_capture = fresh;
    }
  }

  const size_t trips_before = options.breaker != nullptr ? options.breaker->trips() : 0;
  const auto wall_start = std::chrono::steady_clock::now();

  WorkStealingScheduler::Options sched_options;
  sched_options.workers = workers;
  sched_options.stealing = options.schedule != FleetSchedule::kStaticShards;
  WorkStealingScheduler scheduler(sched_options);

  // Outcome slots, sized before any Submit so the bodies' pointers into the
  // vector stay stable. Direct mode: one per boot task; supervised: one per
  // shard. `sched_ids[slot]` maps a slot back to its scheduler task for
  // replay-worker attribution.
  std::vector<TaskOutcome> outcomes;
  std::vector<size_t> sched_ids;
  std::atomic<bool> fatal{false};
  // Modeled virtual provisioning charged this run (flight groups + pipeline
  // stage tasks) — part of virtual_boot_total so mode comparisons add up.
  Nanos provisioning_virtual = 0;

  if (options.supervised) {
    // One pinned shard task per worker, the legacy layout: a supervisor owns
    // its members (and their fiber-bound VMs) for the whole run. Cold
    // provisioning still rides on flight groups so makespans are comparable.
    std::vector<std::vector<BootTask>> shards(workers);
    for (const BootTask& task : boot_tasks) {
      shards[task.index % workers].push_back(task);
    }
    std::map<std::string, size_t> kernel_groups;  // fingerprint -> group id.
    std::map<std::string, size_t> rootfs_groups;  // rootfs key -> group id.
    outcomes.resize(workers);
    sched_ids.resize(workers);
    for (size_t w = 0; w < workers; ++w) {
      std::vector<size_t> groups;
      for (const BootTask& task : shards[w]) {
        const KernelCache::ProvisionPlan& plan = plans.at(task.app);
        if (!plan.kernel_cached) {
          auto [it, fresh] = kernel_groups.try_emplace(plan.fingerprint, 0);
          if (fresh) {
            it->second = scheduler.DefineFlightGroup(plan.kernel_cost);
            provisioning_virtual += plan.kernel_cost;
          }
          if (std::find(groups.begin(), groups.end(), it->second) == groups.end()) {
            groups.push_back(it->second);
          }
        }
        if (!plan.rootfs_cached) {
          auto [it, fresh] = rootfs_groups.try_emplace(plan.rootfs_key, 0);
          if (fresh) {
            it->second = scheduler.DefineFlightGroup(plan.rootfs_cost);
            provisioning_virtual += plan.rootfs_cost;
          }
          if (std::find(groups.begin(), groups.end(), it->second) == groups.end()) {
            groups.push_back(it->second);
          }
        }
      }
      WorkStealingScheduler::TaskSpec spec;
      TaskOutcome* slot = &outcomes[w];
      spec.body = [&cache, &options, &fatal, slot, shard = std::move(shards[w])] {
        *slot = RunShardSupervised(cache, shard, options);
        if (!slot->status.ok()) {
          fatal.store(true, std::memory_order_relaxed);
        }
        return slot->virtual_time;
      };
      spec.label = "shard#" + std::to_string(w);
      spec.home = static_cast<int>(w);
      spec.pin = static_cast<int>(w);
      spec.groups = std::move(groups);
      sched_ids[w] = scheduler.Submit(std::move(spec));
    }
  } else {
    outcomes.resize(boot_tasks.size());
    sched_ids.resize(boot_tasks.size());

    // Pipelined: one kernel task per distinct cold fingerprint, one rootfs
    // task per distinct cold rootfs key; boots depend on their stages.
    // Monolithic (static / stealing): cold stages become flight groups paid
    // by the first boot task dispatched.
    std::map<std::string, size_t> kernel_stage;  // fingerprint -> task/group id.
    std::map<std::string, size_t> rootfs_stage;  // rootfs key -> task/group id.
    const bool pipelined = options.schedule == FleetSchedule::kPipelined;
    if (pipelined) {
      size_t ordinal = 0;
      for (const BootTask& task : boot_tasks) {
        const KernelCache::ProvisionPlan& plan = plans.at(task.app);
        if (!plan.kernel_cached && kernel_stage.count(plan.fingerprint) == 0) {
          WorkStealingScheduler::TaskSpec spec;
          const Nanos cost = plan.kernel_cost;
          std::string app = task.app;
          spec.body = [&cache, app, cost] {
            // Failures surface through the dependent boots' GetOrBuild,
            // which classifies them (retryable / fatal) like any launch.
            (void)cache.PrewarmKernel(app);
            return cost;
          };
          spec.label = "build:" + task.app;
          spec.home = static_cast<int>(ordinal++ % workers);
          kernel_stage.emplace(plan.fingerprint, scheduler.Submit(std::move(spec)));
          provisioning_virtual += cost;
        }
      }
      for (const BootTask& task : boot_tasks) {
        const KernelCache::ProvisionPlan& plan = plans.at(task.app);
        if (!plan.rootfs_cached && rootfs_stage.count(plan.rootfs_key) == 0) {
          WorkStealingScheduler::TaskSpec spec;
          const Nanos cost = plan.rootfs_cost;
          std::string app = task.app;
          spec.body = [&cache, app, cost] {
            (void)cache.PrewarmRootfs(app);
            return cost;
          };
          spec.label = "rootfs:" + task.app;
          spec.home = static_cast<int>(ordinal++ % workers);
          rootfs_stage.emplace(plan.rootfs_key, scheduler.Submit(std::move(spec)));
          provisioning_virtual += cost;
        }
      }
    } else {
      for (const BootTask& task : boot_tasks) {
        const KernelCache::ProvisionPlan& plan = plans.at(task.app);
        if (!plan.kernel_cached && kernel_stage.count(plan.fingerprint) == 0) {
          kernel_stage.emplace(plan.fingerprint,
                               scheduler.DefineFlightGroup(plan.kernel_cost));
          provisioning_virtual += plan.kernel_cost;
        }
        if (!plan.rootfs_cached && rootfs_stage.count(plan.rootfs_key) == 0) {
          rootfs_stage.emplace(plan.rootfs_key,
                               scheduler.DefineFlightGroup(plan.rootfs_cost));
          provisioning_virtual += plan.rootfs_cost;
        }
      }
    }

    for (const BootTask& task : boot_tasks) {
      const KernelCache::ProvisionPlan& plan = plans.at(task.app);
      WorkStealingScheduler::TaskSpec spec;
      TaskOutcome* slot = &outcomes[task.index];
      spec.body = [&cache, &options, &fatal, slot, task] {
        if (fatal.load(std::memory_order_relaxed)) {
          return Nanos{0};  // Result is discarded on fatal; skip the work.
        }
        RunBootTask(cache, task, options, *slot);
        if (!slot->status.ok()) {
          fatal.store(true, std::memory_order_relaxed);
        }
        return slot->virtual_time;
      };
      spec.label = task.app + "#" + std::to_string(task.index);
      spec.home = static_cast<int>(task.index % workers);
      if (pipelined) {
        if (!plan.kernel_cached) {
          spec.deps.push_back(kernel_stage.at(plan.fingerprint));
        }
        if (!plan.rootfs_cached) {
          spec.deps.push_back(rootfs_stage.at(plan.rootfs_key));
        }
      } else {
        if (!plan.kernel_cached) {
          spec.groups.push_back(kernel_stage.at(plan.fingerprint));
        }
        if (!plan.rootfs_cached) {
          spec.groups.push_back(rootfs_stage.at(plan.rootfs_key));
        }
      }
      // Restore tasks run after their key's capture task in every direct
      // schedule (boot tasks are submitted in index order, so the capture
      // task's scheduler id is already known).
      if (!task.snapshot_key.empty() && !task.snapshot_capture) {
        auto owner = capture_owner.find(task.snapshot_key);
        if (owner != capture_owner.end() && owner->second != task.index) {
          spec.deps.push_back(sched_ids[owner->second]);
        }
      }
      sched_ids[task.index] = scheduler.Submit(std::move(spec));
    }
  }

  WorkStealingScheduler::Report report = scheduler.Run();

  // First fatal status in task order wins (deterministic, unlike the host
  // race over which body noticed first).
  for (const TaskOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) {
      return outcome.status;
    }
  }

  FleetBootResult result;
  std::vector<std::pair<size_t, std::string>> fault_logs;
  for (const TaskOutcome& outcome : outcomes) {
    result.boots += outcome.boots;
    result.failures += outcome.failures;
    result.virtual_boot_total += outcome.virtual_time;
    result.fleet_resident_sum += outcome.resident_sum;
    result.admitted += outcome.admitted;
    result.degraded += outcome.degraded;
    result.rejected += outcome.rejected;
    result.queue_waits += outcome.queue_waits;
    result.retries += outcome.retries;
    result.launch_failures += outcome.launch_failures;
    result.deadline_exceeded += outcome.deadline_exceeded;
    result.quarantined += outcome.quarantined;
    result.breaker_denied += outcome.breaker_denied;
    result.recovered += outcome.recovered;
    result.unretried_failures += outcome.unretried;
    result.virtual_recovery_total += outcome.recovery_total;
    result.snapshot_captures += outcome.snapshot_captures;
    result.snapshot_restores += outcome.snapshot_restores;
    result.snapshot_restore_failures += outcome.snapshot_restore_failures;
    result.virtual_restore_total += outcome.restore_total;
    result.virtual_coldboot_total += outcome.coldboot_total;
    fault_logs.insert(fault_logs.end(), outcome.fault_logs.begin(),
                      outcome.fault_logs.end());
  }
  result.virtual_boot_total += provisioning_virtual;

  // Replay-derived scheduling figures: makespan, per-worker busy time,
  // steals, queue peaks, and the per-worker span timelines.
  result.virtual_makespan = report.makespan;
  result.worker_virtual = report.worker_busy;
  result.steals = report.steals;
  result.worker_queue_peak = report.worker_queue_peak;
  result.worker_timelines.resize(workers);
  {
    std::vector<std::vector<const WorkStealingScheduler::TaskRecord*>> by_worker(workers);
    for (const WorkStealingScheduler::TaskRecord& record : report.tasks) {
      by_worker[static_cast<size_t>(record.worker)].push_back(&record);
    }
    for (size_t w = 0; w < workers; ++w) {
      std::sort(by_worker[w].begin(), by_worker[w].end(),
                [](const auto* a, const auto* b) {
                  return a->start != b->start ? a->start < b->start : a->id < b->id;
                });
      for (const auto* record : by_worker[w]) {
        result.worker_timelines[w].Record(record->label, record->start, record->end);
      }
    }
  }

  // Replay steal events: genuinely schedule-dependent (one worker never
  // steals), so they ride in the journal as schedule-scoped — part of the
  // full Perfetto record, excluded from the canonical deterministic export.
  if (options.journal != nullptr) {
    for (const WorkStealingScheduler::TaskRecord& record : report.tasks) {
      if (!record.stolen) {
        continue;
      }
      telemetry::Event event;
      event.at = record.start;
      event.source = "sched";
      event.type = "steal";
      event.schedule_scoped = true;
      event.fields = {{"label", telemetry::FieldValue{record.label}},
                      {"worker", telemetry::FieldValue{static_cast<int64_t>(record.worker)}}};
      options.journal->Emit(std::move(event));
    }
  }

  // Counter tracks over the replay timeline (ph:"C" inputs for the merged
  // Perfetto trace): tasks in flight, resident bytes, cumulative boots.
  {
    auto fold = [](std::string name, std::vector<std::pair<Nanos, double>> deltas) {
      std::sort(deltas.begin(), deltas.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      telemetry::CounterSeries series;
      series.name = std::move(name);
      double level = 0.0;
      for (size_t i = 0; i < deltas.size();) {
        const Nanos at = deltas[i].first;
        for (; i < deltas.size() && deltas[i].first == at; ++i) {
          level += deltas[i].second;
        }
        series.points.emplace_back(at, level);
      }
      return series;
    };
    std::vector<std::pair<Nanos, double>> inflight;
    std::vector<std::pair<Nanos, double>> resident;
    std::vector<std::pair<Nanos, double>> cumulative;
    for (size_t slot = 0; slot < outcomes.size(); ++slot) {
      const WorkStealingScheduler::TaskRecord& record = report.tasks[sched_ids[slot]];
      inflight.emplace_back(record.start, 1.0);
      inflight.emplace_back(record.end, -1.0);
      const double peak = static_cast<double>(outcomes[slot].resident_peak);
      if (peak > 0.0) {
        resident.emplace_back(record.start, peak);
        resident.emplace_back(record.end, -peak);
      }
      if (outcomes[slot].boots > 0) {
        cumulative.emplace_back(record.end, static_cast<double>(outcomes[slot].boots));
      }
    }
    result.counter_tracks.push_back(fold("fleet.tasks_inflight", std::move(inflight)));
    result.counter_tracks.push_back(fold("fleet.resident_bytes", std::move(resident)));
    result.counter_tracks.push_back(fold("fleet.boots_cumulative", std::move(cumulative)));
  }

  // Memory rollups, attributed to the replay's worker assignment: host
  // concurrency is W threads, so "one VM per worker at a time" still holds.
  result.worker_resident_peak.assign(workers, 0);
  for (size_t slot = 0; slot < outcomes.size(); ++slot) {
    const size_t w = static_cast<size_t>(report.tasks[sched_ids[slot]].worker);
    result.worker_resident_peak[w] =
        std::max(result.worker_resident_peak[w], outcomes[slot].resident_peak);
  }
  for (Bytes peak : result.worker_resident_peak) {
    result.fleet_resident_peak += peak;
  }

  if (options.breaker != nullptr) {
    result.breaker_trips = options.breaker->trips() - trips_before;
  }
  // Fault logs merge in task order, independent of scheduling.
  std::sort(fault_logs.begin(), fault_logs.end());
  result.fault_log.reserve(fault_logs.size());
  for (auto& [index, line] : fault_logs) {
    result.fault_log.push_back(std::move(line));
  }
  if (options.admission != nullptr) {
    // The controller saw every concurrent grant — its high-water mark beats
    // the sum-of-worker-peaks approximation.
    result.fleet_resident_peak = options.admission->stats().peak_committed;
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  if (result.virtual_makespan > 0) {
    result.boots_per_virtual_sec = static_cast<double>(result.boots) /
                                   (static_cast<double>(result.virtual_makespan) / 1e9);
  }
  if (options.metrics != nullptr) {
    for (size_t w = 0; w < result.worker_resident_peak.size(); ++w) {
      options.metrics
          ->GetGauge("fleet.worker_resident_peak_bytes", {{"worker", std::to_string(w)}})
          .Set(static_cast<int64_t>(result.worker_resident_peak[w]));
    }
    options.metrics->GetGauge("fleet.resident_peak_bytes")
        .Set(static_cast<int64_t>(result.fleet_resident_peak));
    options.metrics->GetGauge("fleet.resident_sum_bytes")
        .Set(static_cast<int64_t>(result.fleet_resident_sum));
    options.metrics->GetGauge("fleet.boots").Set(static_cast<int64_t>(result.boots));
    options.metrics->GetGauge("fleet.failures").Set(static_cast<int64_t>(result.failures));
    options.metrics->GetGauge("fleet.retries").Set(static_cast<int64_t>(result.retries));
    options.metrics->GetGauge("fleet.launch_failures")
        .Set(static_cast<int64_t>(result.launch_failures));
    options.metrics->GetGauge("fleet.deadline_exceeded")
        .Set(static_cast<int64_t>(result.deadline_exceeded));
    options.metrics->GetGauge("fleet.quarantined")
        .Set(static_cast<int64_t>(result.quarantined));
    options.metrics->GetGauge("fleet.breaker_denied")
        .Set(static_cast<int64_t>(result.breaker_denied));
    options.metrics->GetGauge("fleet.breaker_trips")
        .Set(static_cast<int64_t>(result.breaker_trips));
    options.metrics->GetGauge("fleet.recovered").Set(static_cast<int64_t>(result.recovered));
    options.metrics->GetGauge("fleet.unretried_failures")
        .Set(static_cast<int64_t>(result.unretried_failures));
    options.metrics->GetGauge("fleet.snapshot_captures")
        .Set(static_cast<int64_t>(result.snapshot_captures));
    options.metrics->GetGauge("fleet.snapshot_restores")
        .Set(static_cast<int64_t>(result.snapshot_restores));
    options.metrics->GetGauge("fleet.snapshot_restore_failures")
        .Set(static_cast<int64_t>(result.snapshot_restore_failures));
    options.metrics->GetGauge("fleet.steals").Set(static_cast<int64_t>(result.steals));
    for (size_t w = 0; w < result.worker_queue_peak.size(); ++w) {
      options.metrics
          ->GetGauge("fleet.worker_queue_peak", {{"worker", std::to_string(w)}})
          .Set(static_cast<int64_t>(result.worker_queue_peak[w]));
    }
    cache.PublishMetrics(*options.metrics);
    if (options.snapshots != nullptr) {
      options.snapshots->PublishMetrics(*options.metrics);
    }
  }
  return result;
}

}  // namespace lupine::core

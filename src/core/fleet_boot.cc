#include "src/core/fleet_boot.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <utility>

#include "src/kconfig/presets.h"
#include "src/util/thread_pool.h"

namespace lupine::core {
namespace {

// One boot of one app. `index` is the task's global ordinal (round-major),
// which seeds its private fault injector and retrier — both are functions of
// the index alone, so outcomes are identical however tasks shard.
struct BootTask {
  size_t index = 0;
  std::string app;
};

struct ShardOutcome {
  Nanos virtual_time = 0;
  size_t boots = 0;
  size_t failures = 0;
  Status status = Status::Ok();  // First artifact-build error, if any.
  Bytes resident_peak = 0;       // Largest single-VM footprint in the shard.
  Bytes resident_sum = 0;        // Sum of VM peak footprints.
  size_t admitted = 0;
  size_t degraded = 0;
  size_t rejected = 0;
  size_t queue_waits = 0;
  size_t retries = 0;
  size_t launch_failures = 0;
  size_t deadline_exceeded = 0;
  size_t quarantined = 0;
  size_t breaker_denied = 0;
  size_t recovered = 0;
  Nanos recovery_total = 0;
  std::vector<std::pair<size_t, std::string>> fault_logs;  // (task index, line).
};

uint64_t TaskSeedFold(uint64_t seed, size_t index) {
  return seed ^ ((static_cast<uint64_t>(index) + 1) * 0x9E3779B97F4A7C15ull);
}

FaultInjector MakeTaskInjector(const FaultPlan* plan, size_t index) {
  if (plan == nullptr) {
    return FaultInjector();
  }
  FaultPlan forked = *plan;
  forked.seed = TaskSeedFold(plan->seed, index);
  return FaultInjector(forked);
}

std::string FormatFaultLog(const BootTask& task, const FaultInjector& injector) {
  std::string line = "#" + std::to_string(task.index) + " " + task.app + ":";
  const char* sep = " ";
  for (const FaultRecord& record : injector.log()) {
    line += sep;
    line += FaultSiteName(record.site);
    line += "@";
    line += std::to_string(record.evaluation);
    sep = ",";
  }
  return line;
}

Nanos InitExecNanos(const vmm::Vm& vm) {
  for (const guestos::BootPhase& phase : vm.boot_report().phases) {
    if (phase.name == "init-exec") {
      return phase.duration;
    }
  }
  return 0;
}

// One launch attempt's verdict. kDenied attempts never consulted a VM
// (admission rejection, breaker denial, quarantine) and are not retried;
// kFatal aborts the whole fleet (an artifact that cannot be built at all).
struct AttemptResult {
  enum Kind { kSuccess, kFail, kDenied, kFatal };
  Kind kind = kFail;
  Status status = Status::Ok();
  Nanos charge = 0;     // Virtual time the failed attempt cost the shard.
  bool launched = false;  // A VM ran: the outcome feeds the circuit breaker.
  bool report = false;    // Launch failure worth reporting to quarantine.
};

// Boots (and optionally runs) one shard directly, VM by VM, with per-task
// retry, stage deadlines, artifact-quarantine feedback and breaker gating.
ShardOutcome RunShardDirect(KernelCache& cache, const std::vector<BootTask>& shard,
                            const FleetBootOptions& options) {
  ShardOutcome outcome;

  auto run_attempt = [&](const BootTask& task, FaultInjector& injector,
                         bool first_attempt) -> AttemptResult {
    AttemptResult result;
    auto artifact = cache.GetOrBuild(task.app);
    if (!artifact.ok()) {
      if (KernelCache::IsQuarantineDenial(artifact.status())) {
        ++outcome.quarantined;
        result.kind = AttemptResult::kDenied;
      } else if (IsRetryableError(artifact.status())) {
        ++outcome.launch_failures;
        result.kind = AttemptResult::kFail;
      } else {
        result.kind = AttemptResult::kFatal;
      }
      result.status = artifact.status();
      return result;
    }
    // Host-wall provisioning deadlines apply to fresh builds (artifacts with
    // a provisioning trace) and are priced once, on the task's first attempt,
    // so the counters do not depend on which worker's task happened to
    // trigger the build.
    if (first_attempt && (*artifact)->provisioning != nullptr) {
      struct StageLimit {
        const char* span;
        Nanos limit;
      };
      for (const StageLimit stage : {StageLimit{"build", options.deadlines.build},
                                     StageLimit{"load-rootfs", options.deadlines.rootfs}}) {
        const telemetry::Span* span = (*artifact)->provisioning->Find(stage.span);
        if (span == nullptr) {
          continue;
        }
        if (Status s = DeadlineGuard::CheckElapsed(stage.span, stage.limit, span->duration());
            !s.ok()) {
          ++outcome.deadline_exceeded;
          ++outcome.launch_failures;
          result.kind = AttemptResult::kFail;
          result.status = s;
          return result;
        }
      }
    }

    // The grant is declared before the VM so the VM is destroyed first and
    // the bytes return to the budget only once the guest is really gone.
    vmm::Grant grant;
    Bytes memory = options.memory;
    if (options.admission != nullptr) {
      grant = options.admission->Admit({task.app, options.memory, options.min_memory});
      if (!grant.valid()) {
        ++outcome.rejected;
        result.kind = AttemptResult::kDenied;
        result.status = Status(Err::kNoMem, "admission rejected " + task.app);
        return result;
      }
      grant.degraded() ? ++outcome.degraded : ++outcome.admitted;
      if (grant.waited()) {
        ++outcome.queue_waits;
      }
      memory = grant.granted();
    }

    auto vm = (*artifact)->Launch(memory, injector.armed() ? &injector : nullptr);
    result.launched = true;
    DeadlineGuard boot_guard(vm->kernel().clock(), "boot", options.deadlines.boot);
    if (Status s = vm->Boot(); !s.ok()) {
      // Failed boots charge the shard the virtual instant the guest died —
      // or the deadline, had the monitor's timer fired first.
      ++outcome.launch_failures;
      if (boot_guard.expired()) {
        ++outcome.deadline_exceeded;
      }
      result.kind = AttemptResult::kFail;
      result.status = s;
      result.charge = boot_guard.charged();
      result.report = true;
      return result;
    }
    const Nanos init_ns = InitExecNanos(*vm);
    const Nanos boot_ns = vm->boot_report().to_init - init_ns;
    Status stage = DeadlineGuard::CheckElapsed("boot", options.deadlines.boot, boot_ns);
    Nanos killed_at = options.deadlines.boot;
    if (stage.ok()) {
      stage = DeadlineGuard::CheckElapsed("init", options.deadlines.init, init_ns);
      killed_at = boot_ns + options.deadlines.init;
    }
    if (!stage.ok()) {
      // A stage overran its deadline: the monitor would have killed the VM
      // at that instant (a kBootStall wedge costs the deadline, not 60s).
      ++outcome.deadline_exceeded;
      ++outcome.launch_failures;
      result.kind = AttemptResult::kFail;
      result.status = stage;
      result.charge = killed_at;
      result.report = true;  // An artifact that stalls every boot is a bad artifact.
      return result;
    }

    bool workload_failed = false;
    if (options.run_workload) {
      DeadlineGuard guard(vm->kernel().clock(), "workload", options.deadlines.workload);
      auto run = vm->RunToCompletion();
      const bool server_parked = !run.ok() && run.status().err() == Err::kAgain;
      if (guard.expired()) {
        ++outcome.deadline_exceeded;
        ++outcome.launch_failures;
        result.kind = AttemptResult::kFail;
        result.status = guard.Check();
        result.charge = vm->boot_report().to_init + guard.charged();
        return result;
      }
      if (!server_parked && !run.ok() && IsRetryableError(run.status())) {
        // Ring-0 panic (or an injected app fault): worth a fresh VM.
        ++outcome.launch_failures;
        result.kind = AttemptResult::kFail;
        result.status = run.status();
        result.charge = vm->kernel().clock().now();
        result.report = true;
        return result;
      }
      if (!server_parked && (!run.ok() || run.value() != 0)) {
        // Deterministic app failure: the boot held, retrying is pointless.
        workload_failed = true;
      }
    }

    result.kind = AttemptResult::kSuccess;
    if (workload_failed) {
      ++outcome.failures;
    }
    ++outcome.boots;
    outcome.virtual_time += vm->boot_report().to_init;
    const Bytes peak = vm->kernel().mm().peak();
    outcome.resident_sum += peak;
    outcome.resident_peak = std::max(outcome.resident_peak, peak);
    if (options.metrics != nullptr) {
      options.metrics->GetHistogram("boot.to_init_ns", {{"app", task.app}})
          .Observe(static_cast<double>(vm->boot_report().to_init));
      for (const telemetry::Span& span : vm->boot_spans().spans()) {
        options.metrics->GetHistogram("boot.phase_ns", {{"phase", span.name}})
            .Observe(static_cast<double>(span.duration()));
      }
      options.metrics->GetHistogram("vm.resident_peak_bytes")
          .Observe(static_cast<double>(peak));
    }
    return result;
  };

  for (const BootTask& task : shard) {
    FaultInjector injector = MakeTaskInjector(options.fault_plan, task.index);
    Retrier retrier(options.retry, task.index);
    Nanos recovery = 0;  // Failed-attempt charges + backoff delays.
    bool completed = false;
    for (int attempt = 0;; ++attempt) {
      if (options.breaker != nullptr && !options.breaker->Allow()) {
        ++outcome.breaker_denied;
        break;
      }
      AttemptResult result = run_attempt(task, injector, attempt == 0);
      if (result.kind == AttemptResult::kFatal) {
        outcome.status = result.status;
        return outcome;
      }
      if (result.launched && options.breaker != nullptr) {
        options.breaker->Record(result.kind == AttemptResult::kSuccess);
      }
      if (result.kind == AttemptResult::kSuccess) {
        completed = true;
        break;
      }
      if (result.kind == AttemptResult::kDenied) {
        break;
      }
      outcome.virtual_time += result.charge;
      recovery += result.charge;
      if (result.report) {
        cache.ReportLaunchFailure(task.app);
      }
      Retrier::Decision decision = retrier.OnFailure(result.status);
      if (!decision.retry) {
        break;
      }
      ++outcome.retries;
      outcome.virtual_time += decision.delay;
      recovery += decision.delay;
    }
    if (completed) {
      if (retrier.failures() > 0) {
        ++outcome.recovered;
        outcome.recovery_total += recovery;
      }
    } else {
      ++outcome.failures;
    }
    if (injector.total_fires() > 0) {
      outcome.fault_logs.emplace_back(task.index, FormatFaultLog(task, injector));
    }
  }
  return outcome;
}

// Boots one shard under a worker-owned Supervisor (restart policy and all).
// The supervisor runs its own retry machinery (options.supervisor_policy);
// the fleet retry/deadline options do not apply here.
ShardOutcome RunShardSupervised(KernelCache& cache, const std::vector<BootTask>& shard,
                                const FleetBootOptions& options) {
  ShardOutcome outcome;
  vmm::Supervisor supervisor(options.supervisor_policy);
  supervisor.set_metrics(options.metrics);
  std::vector<std::string> names;
  std::vector<std::unique_ptr<FaultInjector>> injectors;  // Stable addresses.
  names.reserve(shard.size());
  injectors.reserve(shard.size());
  for (const BootTask& task : shard) {
    auto artifact = cache.GetOrBuild(task.app);
    if (!artifact.ok()) {
      outcome.status = artifact.status();
      return outcome;
    }
    const apps::AppManifest* manifest = apps::FindManifest(task.app);
    std::string ready = manifest != nullptr && manifest->kind == apps::AppKind::kServer
                            ? manifest->ready_line
                            : "";
    KernelCache::ArtifactPtr held = *artifact;
    Bytes memory = options.memory;
    injectors.push_back(
        std::make_unique<FaultInjector>(MakeTaskInjector(options.fault_plan, task.index)));
    FaultInjector* faults = injectors.back()->armed() ? injectors.back().get() : nullptr;
    names.push_back(task.app + "#" + std::to_string(task.index));
    supervisor.AddMember(names.back(),
                         [held, memory, faults] { return held->Launch(memory, faults); },
                         ready);
  }
  outcome.failures = supervisor.Run();
  outcome.boots = shard.size() - outcome.failures;
  outcome.virtual_time = supervisor.clock().now();
  // Healthy servers keep their VM alive — those footprints are genuinely
  // concurrent residency on this worker.
  for (size_t i = 0; i < names.size(); ++i) {
    const vmm::Supervisor::MemberStats& stats = supervisor.stats(names[i]);
    if (stats.attempts > 1) {
      outcome.retries += static_cast<size_t>(stats.attempts - 1);
    }
    outcome.launch_failures += static_cast<size_t>(stats.failures);
    const vmm::MemberState state = supervisor.state(names[i]);
    const bool alive = state == vmm::MemberState::kHealthy ||
                       state == vmm::MemberState::kCompleted;
    if (alive && stats.failures > 0) {
      ++outcome.recovered;
      if (stats.first_healthy_at >= 0) {
        outcome.recovery_total += stats.first_healthy_at;
      }
    }
    if (injectors[i]->total_fires() > 0) {
      outcome.fault_logs.emplace_back(shard[i].index, FormatFaultLog(shard[i], *injectors[i]));
    }
    if (stats.vm == nullptr) {
      continue;
    }
    const Bytes peak = stats.vm->kernel().mm().peak();
    outcome.resident_sum += peak;
    outcome.resident_peak = std::max(outcome.resident_peak, peak);
    if (options.metrics != nullptr) {
      options.metrics->GetHistogram("vm.resident_peak_bytes")
          .Observe(static_cast<double>(peak));
    }
  }
  return outcome;
}

}  // namespace

Result<FleetBootResult> RunFleetBoot(KernelCache& cache, const FleetBootOptions& options) {
  const std::vector<std::string>& apps =
      options.apps.empty() ? kconfig::Top20AppNames() : options.apps;
  const size_t workers = std::max<size_t>(1, options.workers);
  const size_t rounds = std::max<size_t>(1, options.rounds);

  // Static sharding: boot i of round r goes to worker (r * apps + i) mod W.
  // The shard contents — and with them every virtual-time figure — depend
  // only on (apps, rounds, workers), never on thread scheduling. Each task
  // keeps its global ordinal: fault schedules and retry jitter key off it,
  // not off the worker, so those are invariant across worker counts too.
  std::vector<std::vector<BootTask>> shards(workers);
  size_t task = 0;
  for (size_t r = 0; r < rounds; ++r) {
    for (const std::string& app : apps) {
      shards[task % workers].push_back({task, app});
      ++task;
    }
  }

  const size_t trips_before = options.breaker != nullptr ? options.breaker->trips() : 0;
  const auto wall_start = std::chrono::steady_clock::now();
  ThreadPool pool(workers);
  std::vector<std::future<ShardOutcome>> futures;
  futures.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    futures.push_back(pool.Submit([&cache, &options, shard = std::move(shards[w])] {
      return options.supervised ? RunShardSupervised(cache, shard, options)
                                : RunShardDirect(cache, shard, options);
    }));
  }

  FleetBootResult result;
  std::vector<std::pair<size_t, std::string>> fault_logs;
  for (auto& future : futures) {
    ShardOutcome outcome = future.get();
    if (!outcome.status.ok()) {
      return outcome.status;
    }
    result.boots += outcome.boots;
    result.failures += outcome.failures;
    result.virtual_boot_total += outcome.virtual_time;
    result.virtual_makespan = std::max(result.virtual_makespan, outcome.virtual_time);
    result.worker_virtual.push_back(outcome.virtual_time);
    result.worker_resident_peak.push_back(outcome.resident_peak);
    result.fleet_resident_peak += outcome.resident_peak;
    result.fleet_resident_sum += outcome.resident_sum;
    result.admitted += outcome.admitted;
    result.degraded += outcome.degraded;
    result.rejected += outcome.rejected;
    result.queue_waits += outcome.queue_waits;
    result.retries += outcome.retries;
    result.launch_failures += outcome.launch_failures;
    result.deadline_exceeded += outcome.deadline_exceeded;
    result.quarantined += outcome.quarantined;
    result.breaker_denied += outcome.breaker_denied;
    result.recovered += outcome.recovered;
    result.virtual_recovery_total += outcome.recovery_total;
    fault_logs.insert(fault_logs.end(), outcome.fault_logs.begin(), outcome.fault_logs.end());
  }
  if (options.breaker != nullptr) {
    result.breaker_trips = options.breaker->trips() - trips_before;
  }
  // Fault logs merge in task order, independent of sharding.
  std::sort(fault_logs.begin(), fault_logs.end());
  result.fault_log.reserve(fault_logs.size());
  for (auto& [index, line] : fault_logs) {
    result.fault_log.push_back(std::move(line));
  }
  if (options.admission != nullptr) {
    // The controller saw every concurrent grant — its high-water mark beats
    // the sum-of-worker-peaks approximation.
    result.fleet_resident_peak = options.admission->stats().peak_committed;
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  if (result.virtual_makespan > 0) {
    result.boots_per_virtual_sec = static_cast<double>(result.boots) /
                                   (static_cast<double>(result.virtual_makespan) / 1e9);
  }
  if (options.metrics != nullptr) {
    for (size_t w = 0; w < result.worker_resident_peak.size(); ++w) {
      options.metrics
          ->GetGauge("fleet.worker_resident_peak_bytes", {{"worker", std::to_string(w)}})
          .Set(static_cast<int64_t>(result.worker_resident_peak[w]));
    }
    options.metrics->GetGauge("fleet.resident_peak_bytes")
        .Set(static_cast<int64_t>(result.fleet_resident_peak));
    options.metrics->GetGauge("fleet.resident_sum_bytes")
        .Set(static_cast<int64_t>(result.fleet_resident_sum));
    options.metrics->GetGauge("fleet.boots").Set(static_cast<int64_t>(result.boots));
    options.metrics->GetGauge("fleet.failures").Set(static_cast<int64_t>(result.failures));
    options.metrics->GetGauge("fleet.retries").Set(static_cast<int64_t>(result.retries));
    options.metrics->GetGauge("fleet.launch_failures")
        .Set(static_cast<int64_t>(result.launch_failures));
    options.metrics->GetGauge("fleet.deadline_exceeded")
        .Set(static_cast<int64_t>(result.deadline_exceeded));
    options.metrics->GetGauge("fleet.quarantined")
        .Set(static_cast<int64_t>(result.quarantined));
    options.metrics->GetGauge("fleet.breaker_denied")
        .Set(static_cast<int64_t>(result.breaker_denied));
    options.metrics->GetGauge("fleet.breaker_trips")
        .Set(static_cast<int64_t>(result.breaker_trips));
    options.metrics->GetGauge("fleet.recovered").Set(static_cast<int64_t>(result.recovered));
    cache.PublishMetrics(*options.metrics);
  }
  return result;
}

}  // namespace lupine::core

// Configuration-diversity analysis (Section 4.1, Figs. 4-5, Table 3).
#ifndef SRC_CORE_ANALYSIS_H_
#define SRC_CORE_ANALYSIS_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace lupine::core {

// One Table 3 row.
struct AppConfigRow {
  std::string name;
  double downloads_billions = 0;
  std::string description;
  size_t options_atop_base = 0;
};

std::vector<AppConfigRow> Table3Rows();

// Fig. 5: cumulative count of unique options as apps are considered in
// popularity order. Element i covers apps [0, i].
std::vector<size_t> OptionGrowthCurve();

// The union of all per-app option sets (lupine-general's additions).
std::set<std::string> UnionOfAppOptions();

}  // namespace lupine::core

#endif  // SRC_CORE_ANALYSIS_H_

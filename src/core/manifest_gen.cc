#include "src/core/manifest_gen.h"

#include "src/apps/builtin.h"
#include "src/apps/manifest.h"
#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"
#include "src/vmm/vm.h"

namespace lupine::core {
namespace {

namespace n = kconfig::names;

const char* FeatureOption(guestos::TraceFeature feature) {
  switch (feature) {
    case guestos::TraceFeature::kAfUnix: return n::kUnix;
    case guestos::TraceFeature::kAfInet6: return n::kIpv6;
    case guestos::TraceFeature::kAfPacket: return n::kPacket;
    case guestos::TraceFeature::kMountTmpfs: return n::kTmpfs;
    case guestos::TraceFeature::kMountHugetlbfs: return n::kHugetlbfs;
    case guestos::TraceFeature::kProcSysctl: return n::kProcSysctl;
  }
  return nullptr;
}

}  // namespace

std::set<std::string> OptionsFromTrace(const guestos::TraceLog& trace) {
  std::set<std::string> options;
  for (const auto& event : trace.syscalls()) {
    const char* option = kbuild::GatingOption(event.nr);
    if (option != nullptr) {
      options.insert(option);
    }
  }
  for (const auto& [pid, feature] : trace.features()) {
    const char* option = FeatureOption(feature);
    if (option != nullptr) {
      options.insert(option);
    }
  }
  return options;
}

Result<GeneratedManifest> GenerateManifestFromTrace(const std::string& app) {
  apps::RegisterBuiltinApps();
  const apps::AppManifest* manifest = apps::FindManifest(app);
  if (manifest == nullptr) {
    return Status(Err::kNoEnt, "no manifest for application " + app);
  }

  // Fully-featured kernel: every feature exists, so the trace records what
  // the app actually uses rather than what fails.
  kbuild::ImageBuilder builder;
  auto image = builder.Build(kconfig::MicrovmConfig());
  if (!image.ok()) {
    return image.status();
  }
  vmm::VmSpec spec;
  spec.monitor = vmm::Firecracker();
  spec.image = image.take();
  spec.rootfs = apps::BuildAppRootfsForApp(app, /*kml_libc=*/false);
  spec.memory = 512 * kMiB;
  vmm::Vm vm(std::move(spec));

  vm.kernel().trace().set_enabled(true);
  if (Status s = vm.Boot(); !s.ok()) {
    return s;
  }
  auto run = vm.RunToCompletion();
  const std::string& console = vm.kernel().console().contents();
  bool ok = manifest->kind == apps::AppKind::kServer
                ? console.find(manifest->ready_line) != std::string::npos
                : run.ok() && run.value() == 0;
  if (!ok) {
    return Status(Err::kIo, app + " did not reach its success criteria during tracing");
  }

  GeneratedManifest result;
  result.syscall_events = vm.kernel().trace().syscalls().size();
  result.distinct_syscalls = vm.kernel().trace().distinct_syscall_count();
  result.options = OptionsFromTrace(vm.kernel().trace());
  return result;
}

CoverageReport CheckLupineGeneralCoverage(const std::set<std::string>& options) {
  kconfig::Config general = kconfig::LupineGeneral();
  CoverageReport report;
  for (const auto& option : options) {
    if (!general.IsEnabled(option)) {
      report.missing.push_back(option);
    }
  }
  report.covered = report.missing.empty();
  return report;
}

}  // namespace lupine::core

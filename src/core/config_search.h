// Automatic derivation of an application's minimal viable configuration.
//
// Mechanizes the paper's Section 4.1 process: start from lupine-base, boot
// the app, read the console for failure diagnostics ("epoll_create1 failed:
// function not implemented" -> CONFIG_EPOLL), add one option, rebuild,
// reboot — until the app reaches its success criteria.
#ifndef SRC_CORE_CONFIG_SEARCH_H_
#define SRC_CORE_CONFIG_SEARCH_H_

#include <string>
#include <vector>

#include "src/kconfig/config.h"
#include "src/util/result.h"

namespace lupine::core {

// A console diagnostic substring and the candidate options it suggests (in
// trial order — some messages are ambiguous and need trial and error).
struct ErrorHint {
  std::string needle;
  std::vector<std::string> candidates;
};

const std::vector<ErrorHint>& ConsoleErrorHints();

struct SearchResult {
  bool success = false;
  std::vector<std::string> added_options;  // In discovery order.
  int boots = 0;                           // Build+boot cycles taken.
  std::string failure;                     // Last console tail when !success.
};

struct SearchOptions {
  int max_boots = 64;
  Bytes memory = 512 * kMiB;
};

// Derives the options `app` needs beyond lupine-base.
Result<SearchResult> DeriveMinimalConfig(const std::string& app,
                                         const SearchOptions& options = {});

}  // namespace lupine::core

#endif  // SRC_CORE_CONFIG_SEARCH_H_

// LupineBuilder: the paper's headline artifact.
//
// Given an application manifest and its container image, produce a Lupine
// "unikernel": a specialized Linux kernel image (lupine-base + the app's
// options, optionally KML-patched and/or size-optimized) plus a root
// filesystem holding the app, a (KML-patched) musl libc and a generated
// startup script — launchable on a Firecracker-style monitor (Figs. 1-2).
#ifndef SRC_CORE_LUPINE_H_
#define SRC_CORE_LUPINE_H_

#include <memory>
#include <string>

#include "src/apps/container.h"
#include "src/apps/manifest.h"
#include "src/kbuild/image.h"
#include "src/telemetry/span.h"
#include "src/vmm/vm.h"

namespace lupine::core {

struct BuildOptions {
  bool kml = true;             // Apply Kernel Mode Linux (Section 3.2).
  bool tiny = false;           // Optimize for size over performance (-Os).
  bool general_config = false; // Use lupine-general instead of per-app.
  // PANIC_TIMEOUT value baked into the image. A supervised unikernel cannot
  // recover itself (the app runs in ring 0), so the default reboots
  // immediately and lets the monitor's supervisor restart it; 0 halts the
  // way a stock microVM kernel does.
  int panic_timeout = -1;
  // Extra options beyond the manifest (developer-supplied manifest knobs).
  std::vector<std::string> extra_options;
  // Cross-build batching (KernelCache only): when the per-app specialized
  // configuration proves to be a subset of lupine-general, serve the shared
  // general kernel instead of building a per-app image. Trades a bigger,
  // slower-booting kernel for one build serving the whole fleet.
  bool batch_general = false;
};

// The build artifact: everything needed to launch.
struct Unikernel {
  kbuild::KernelImage kernel;
  std::string rootfs;          // LUPX2FS blob.
  std::string init_script;     // For inspection.
  kconfig::Config config;      // The specialized configuration.

  // Launches on Firecracker with `memory` of guest RAM; `faults` (non-owning,
  // may be nullptr) threads a fault schedule through the guest.
  std::unique_ptr<vmm::Vm> Launch(Bytes memory = 512 * kMiB,
                                  FaultInjector* faults = nullptr) const;
};

class LupineBuilder {
 public:
  LupineBuilder();

  // Stage 1 of Build: the specialized kernel configuration for a manifest
  // (lupine-base or lupine-general, manifest/extra options resolved, -tiny /
  // PANIC_TIMEOUT / KML applied). Exposed separately so callers like
  // KernelCache can fingerprint the configuration *before* committing to a
  // kernel build and deduplicate identical builds across concurrent requests.
  // When `spans` is non-null, two host-wall-clock spans land on it at its
  // cursor: `specialize` (preset + tiny/KML application) and `resolve`
  // (dependency resolution of manifest + extra options).
  Result<kconfig::Config> SpecializeConfig(const apps::AppManifest& manifest,
                                           const BuildOptions& options = {},
                                           telemetry::SpanTrace* spans = nullptr) const;

  // Builds from an explicit manifest + container image.
  Result<Unikernel> Build(const apps::AppManifest& manifest, const apps::ContainerImage& image,
                          const BuildOptions& options = {}) const;

  // Convenience for the top-20 apps (synthesizes the Alpine image).
  Result<Unikernel> BuildForApp(const std::string& app, const BuildOptions& options = {}) const;
};

}  // namespace lupine::core

#endif  // SRC_CORE_LUPINE_H_

// SnapshotCache: content-addressed, LRU-budgeted store of post-init guest
// snapshots (src/guestos/snapshot.h) for the serving fleet.
//
// Keying is by content identity — {kernel config fingerprint, rootfs cache
// key, guest RAM} — not by app name: two apps whose specialized configs
// fingerprint identically (the Table 3 zero-extra-option runtimes) share one
// snapshot exactly as they share one kernel image. Retention is a size-aware
// LRU over memory-file bytes; entries still referenced outside the cache
// (a restore in flight, a parked warm guest) are pinned against eviction.
//
// Restore failures are contained with the same drop-once-then-poison state
// machine KernelCache uses for launch failures: the first reported failure
// drops the entry so the next boot recaptures from scratch (maybe the
// capture was the problem); a failure after the recapture poisons the key —
// Find() returns a denial (miss) until the TTL passes, at which point one
// half-open probe lookup is allowed through again.
#ifndef SRC_CORE_SNAPSHOT_CACHE_H_
#define SRC_CORE_SNAPSHOT_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/guestos/snapshot.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/util/lru.h"

namespace lupine::core {

// Restore-failure containment policy (mirrors core::QuarantinePolicy for
// kernel artifacts; see the header comment for the state machine).
struct SnapshotQuarantine {
  bool enabled = true;
  // Reported failures that trigger a drop/recapture or (post-recapture) poison.
  int failures_per_strike = 1;
  // Recaptures granted before the key is poisoned ("recapture-once").
  int recapture_limit = 1;
  // How long a poisoned key misses fast before a probe is allowed.
  Nanos poison_ttl = Seconds(30);
};

class SnapshotCache {
 public:
  using SnapshotPtr = std::shared_ptr<const guestos::Snapshot>;

  explicit SnapshotCache(CacheBudget budget = {}) : budget_(budget) {}
  SnapshotCache(const SnapshotCache&) = delete;
  SnapshotCache& operator=(const SnapshotCache&) = delete;

  // The content address: fingerprint + rootfs key + guest RAM, joined with a
  // separator neither identity can contain.
  static std::string Key(const std::string& fingerprint, const std::string& rootfs_key,
                         Bytes memory);

  // Publishes a captured snapshot. First capture wins: a concurrent
  // duplicate (two shards cold-booting the same key before either captured)
  // is dropped and counted, so every holder of the key serves one canonical
  // snapshot. Returns the stored (or already-stored) snapshot.
  SnapshotPtr Put(guestos::Snapshot snapshot);

  // Looks up a snapshot. A poisoned key misses (counted as a denial) until
  // its TTL passes; the first lookup after expiry is the half-open probe —
  // it sees the entry again (if still resident) and a subsequent
  // ReportRestoreFailure poisons immediately.
  SnapshotPtr Find(const std::string& key);

  // Residency check without touching hit/miss counters or the LRU order.
  bool Contains(const std::string& key) const;

  // Accounting for a restore attempt against `snapshot` (drives the
  // snapshot.restore counters + restore_ns histogram + journal event).
  void RecordRestore(const guestos::Snapshot& snapshot, bool ok);

  // A restored guest faulted (corrupt memory file, digest mismatch). Drives
  // the drop-once-then-poison state machine above.
  void ReportRestoreFailure(const std::string& key);

  void set_quarantine(SnapshotQuarantine policy);
  // TTL time source, monotonic nanos. Default: host steady clock since
  // construction. Tests inject a manual clock for deterministic expiry.
  void set_quarantine_clock(std::function<Nanos()> now);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t captures = 0;            // Snapshots stored.
    uint64_t duplicate_captures = 0;  // Puts dropped by first-capture-wins.
    uint64_t restores = 0;            // Successful restores recorded.
    uint64_t restore_failures = 0;    // Failed restores recorded.
    uint64_t evictions = 0;
    Bytes bytes_stored = 0;    // Memory-file bytes currently resident.
    Bytes bytes_evicted = 0;   // Lifetime bytes dropped by eviction.
    Bytes bytes_pinned = 0;    // Bytes callers still reference (un-evictable).
    size_t entries = 0;
    // Quarantine.
    uint64_t drops = 0;     // Entries dropped for recapture.
    uint64_t poisoned = 0;  // Keys poisoned so far, lifetime.
    uint64_t denials = 0;   // Finds denied while poisoned.
  };
  Stats stats() const;

  // Optional, non-owning metric sink: `snapshot.hit` / `snapshot.miss` /
  // `snapshot.capture` / `snapshot.restore` / `snapshot.restore_failure`
  // counters plus `snapshot.capture_ns` / `snapshot.restore_ns` histograms.
  // Set before the first Put; the registry must outlive the cache.
  void set_metrics(telemetry::MetricRegistry* metrics) { metrics_ = metrics; }

  // Optional, non-owning flight-recorder sink: cache decisions
  // (snapshot-capture, snapshot-restore, evict, quarantine drop/poison/
  // half-open/denial) land under source "snapshot-cache". Cache interleaving
  // is host-timing dependent, so the events are schedule-scoped (full
  // export / Perfetto only). Must outlive the cache.
  void set_journal(telemetry::Journal* journal) { journal_ = journal; }

  // Publishes the current Stats as absolute-valued `snapshotcache.*` gauges.
  // Idempotent — call at a snapshot point (end of a serving run).
  void PublishMetrics(telemetry::MetricRegistry& registry) const;

  // Replaces the retention budget and immediately evicts down to it.
  void set_budget(CacheBudget budget);

 private:
  void EvictLocked();
  void EmitJournal(const char* type, const std::string& key,
                   uint64_t bytes = 0) const;
  Nanos QuarantineNowLocked();

  telemetry::MetricRegistry* metrics_ = nullptr;
  telemetry::Journal* journal_ = nullptr;

  mutable std::mutex mu_;
  CacheBudget budget_;
  std::map<std::string, SnapshotPtr> entries_;
  LruTracker lru_;

  struct RestoreHealth {
    int failures = 0;           // Since the last capture.
    int recaptures = 0;         // Recaptures already spent.
    Nanos poisoned_until = -1;  // -1 = not poisoned.
  };
  SnapshotQuarantine quarantine_policy_;
  std::map<std::string, RestoreHealth> quarantine_;
  std::function<Nanos()> quarantine_now_;  // Unset = host steady clock.

  Stats stats_;
};

}  // namespace lupine::core

#endif  // SRC_CORE_SNAPSHOT_CACHE_H_

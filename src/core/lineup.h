// Standard system lineups for the evaluation benches.
#ifndef SRC_CORE_LINEUP_H_
#define SRC_CORE_LINEUP_H_

#include <memory>
#include <vector>

#include "src/unikernels/linux_system.h"
#include "src/unikernels/unikernel_models.h"

namespace lupine::core {

using SystemList = std::vector<std::unique_ptr<unikernels::SystemUnderTest>>;

// Fig. 6 lineup: microVM, lupine, lupine-general, hermitux, osv, rump.
SystemList ImageSizeLineup();
// Fig. 7 lineup: microVM, lupine-nokml, lupine-nokml-general, hermitux,
// osv-rofs, osv-zfs, rump.
SystemList BootTimeLineup();
// Fig. 8 lineup: microVM, lupine, lupine-general, hermitux, osv, rump.
SystemList MemoryLineup();
// Fig. 9 lineup: microvm, lupine-nokml, lupine, lupine-general, hermitux,
// osv, rump.
SystemList SyscallLineup();
// Table 4 lineup: microVM + five lupine variants + the three unikernels.
SystemList AppPerfLineup();

}  // namespace lupine::core

#endif  // SRC_CORE_LINEUP_H_

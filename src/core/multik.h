// MultiK-style kernel orchestration (the authors' companion framework,
// reference [36]: "MultiK: A Framework for Orchestrating Multiple
// Specialized Kernels").
//
// A fleet of Lupine unikernels builds one kernel per application; many of
// those are identical (every language runtime needs zero options beyond
// lupine-base, Table 3). The KernelCache content-addresses built kernel
// images by their configuration so identical specializations share one
// image — root filesystems stay per-application — and reports fleet-level
// statistics (distinct kernels, image bytes saved).
//
// The cache is thread-safe with single-flight deduplication at two levels:
// concurrent GetOrBuild("node") calls produce exactly one build (per-app
// flight), and concurrent requests for *different* apps whose specialized
// configurations fingerprint identically (e.g. the zero-extra-option
// language runtimes of Table 3) also share one kernel build (per-fingerprint
// flight). Configurations are fingerprinted via LupineBuilder's
// SpecializeConfig *before* the expensive kernel build, so deduplication
// happens up front rather than after redundant work. Failed flights are not
// cached: waiters observe the failure, later calls retry from scratch,
// matching the serial cache's semantics.
#ifndef SRC_CORE_MULTIK_H_
#define SRC_CORE_MULTIK_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/core/lupine.h"

namespace lupine::core {

class KernelCache {
 public:
  explicit KernelCache(BuildOptions options = {}) : options_(std::move(options)) {}

  // What a fleet member deploys: a (possibly shared) kernel image plus its
  // own rootfs.
  struct AppArtifact {
    const kbuild::KernelImage* kernel = nullptr;  // Owned by the cache.
    std::string rootfs;
    std::string init_script;

    std::unique_ptr<vmm::Vm> Launch(Bytes memory = 512 * kMiB,
                                    FaultInjector* faults = nullptr) const;
  };

  // Builds (or reuses) the specialized kernel for `app`. Returned pointer
  // is owned by the cache and stable for its lifetime. Safe to call from
  // multiple threads; concurrent duplicate requests wait on one build.
  Result<const AppArtifact*> GetOrBuild(const std::string& app);

  struct Stats {
    size_t requests = 0;          // GetOrBuild calls.
    size_t builds = 0;            // Kernel builds (fingerprint misses).
    size_t apps = 0;              // Distinct applications served.
    size_t distinct_kernels = 0;
    Bytes bytes_if_unshared = 0;  // Sum of per-app image sizes without sharing.
    Bytes bytes_stored = 0;       // Sum of distinct image sizes.
    Bytes bytes_saved() const { return bytes_if_unshared - bytes_stored; }
  };
  Stats stats() const;

  // The cache key: a canonical fingerprint of the enabled option set and
  // build knobs (what makes two kernels byte-identical in this model).
  static std::string ConfigFingerprint(const kconfig::Config& config);

 private:
  // An in-progress build other threads can wait on. Waiters hold the
  // shared_ptr, so the flight outlives its map entry (entries are erased on
  // completion; failures leave no trace, preserving retry semantics).
  struct Flight {
    bool done = false;
    Status status = Status::Ok();
  };

  BuildOptions options_;
  LupineBuilder builder_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::unique_ptr<kbuild::KernelImage>> kernels_;  // By fingerprint.
  std::map<std::string, AppArtifact> apps_;                              // By app name.
  std::map<std::string, std::string> app_fingerprint_;
  std::map<std::string, std::shared_ptr<Flight>> app_flights_;       // By app name.
  std::map<std::string, std::shared_ptr<Flight>> kernel_flights_;    // By fingerprint.
  size_t requests_ = 0;
  size_t builds_ = 0;
};

}  // namespace lupine::core

#endif  // SRC_CORE_MULTIK_H_

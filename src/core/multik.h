// MultiK-style kernel orchestration (the authors' companion framework,
// reference [36]: "MultiK: A Framework for Orchestrating Multiple
// Specialized Kernels").
//
// A fleet of Lupine unikernels builds one kernel per application; many of
// those are identical (every language runtime needs zero options beyond
// lupine-base, Table 3). The KernelCache content-addresses built kernel
// images by their configuration so identical specializations share one
// image — root filesystems stay per-application — and reports fleet-level
// statistics (distinct kernels, image bytes saved).
#ifndef SRC_CORE_MULTIK_H_
#define SRC_CORE_MULTIK_H_

#include <map>
#include <memory>
#include <string>

#include "src/core/lupine.h"

namespace lupine::core {

class KernelCache {
 public:
  explicit KernelCache(BuildOptions options = {}) : options_(std::move(options)) {}

  // What a fleet member deploys: a (possibly shared) kernel image plus its
  // own rootfs.
  struct AppArtifact {
    const kbuild::KernelImage* kernel = nullptr;  // Owned by the cache.
    std::string rootfs;
    std::string init_script;

    std::unique_ptr<vmm::Vm> Launch(Bytes memory = 512 * kMiB,
                                    FaultInjector* faults = nullptr) const;
  };

  // Builds (or reuses) the specialized kernel for `app`. Returned pointer
  // is owned by the cache and stable for its lifetime.
  Result<const AppArtifact*> GetOrBuild(const std::string& app);

  struct Stats {
    size_t requests = 0;          // GetOrBuild calls.
    size_t builds = 0;            // Kernel builds (fingerprint misses).
    size_t apps = 0;              // Distinct applications served.
    size_t distinct_kernels = 0;
    Bytes bytes_if_unshared = 0;  // Sum of per-app image sizes without sharing.
    Bytes bytes_stored = 0;       // Sum of distinct image sizes.
    Bytes bytes_saved() const { return bytes_if_unshared - bytes_stored; }
  };
  Stats stats() const;

  // The cache key: a canonical fingerprint of the enabled option set and
  // build knobs (what makes two kernels byte-identical in this model).
  static std::string ConfigFingerprint(const kconfig::Config& config);

 private:
  BuildOptions options_;
  LupineBuilder builder_;
  std::map<std::string, std::unique_ptr<kbuild::KernelImage>> kernels_;  // By fingerprint.
  std::map<std::string, AppArtifact> apps_;                              // By app name.
  std::map<std::string, std::string> app_fingerprint_;
  size_t requests_ = 0;
  size_t builds_ = 0;
};

}  // namespace lupine::core

#endif  // SRC_CORE_MULTIK_H_

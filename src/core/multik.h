// MultiK-style kernel orchestration (the authors' companion framework,
// reference [36]: "MultiK: A Framework for Orchestrating Multiple
// Specialized Kernels").
//
// A fleet of Lupine unikernels builds one kernel per application; many of
// those are identical (every language runtime needs zero options beyond
// lupine-base, Table 3). The KernelCache content-addresses built kernel
// images by their configuration so identical specializations share one
// image, content-addresses rootfs blobs by (container-image digest,
// RootfsOptions) so each distinct rootfs is built once, and reports
// fleet-level statistics (distinct kernels, image bytes saved, rootfs hit
// rates).
//
// The cache is thread-safe with single-flight deduplication at two levels:
// concurrent GetOrBuild("node") calls produce exactly one build (per-app
// flight), and concurrent requests for *different* apps whose specialized
// configurations fingerprint identically (e.g. the zero-extra-option
// language runtimes of Table 3) also share one kernel build (per-fingerprint
// flight). Configurations are fingerprinted via LupineBuilder's
// SpecializeConfig *before* the expensive kernel build, so deduplication
// happens up front rather than after redundant work. Failed flights are not
// cached: waiters observe the failure, later calls retry from scratch,
// matching the serial cache's semantics.
//
// Retention is bounded by optional size-aware LRU budgets (one for app
// artifacts, one for kernel images). Eviction only drops entries the cache
// is the sole owner of: artifacts and kernels are handed out as shared_ptr,
// and any entry a caller still references — including every in-flight build,
// whose result is published through the flight itself — is pinned. A fleet
// rebuilding under churning extra_options therefore stays under its byte
// budget instead of growing without bound.
#ifndef SRC_CORE_MULTIK_H_
#define SRC_CORE_MULTIK_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/apps/rootfs_cache.h"
#include "src/core/lupine.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/span.h"
#include "src/util/lru.h"

namespace lupine::core {

// How the cache contains an artifact whose launches keep failing. A cached
// blob every shard re-boots is a fleet-wide blast radius: without
// containment one bad artifact crash-loops rounds x workers VMs. The policy
// is rebuild-once-then-poison: the first reported failure drops the cached
// artifact and its rootfs blob so the next request rebuilds from scratch
// (maybe the build was the problem); a failure after the rebuild poisons the
// key — GetOrBuild fails fast with kAccess ("quarantined") until the TTL
// passes, at which point one probe rebuild is allowed through again.
struct QuarantinePolicy {
  bool enabled = true;
  // Reported failures that trigger a drop/rebuild or (post-rebuild) poison.
  int failures_per_strike = 1;
  // Rebuilds granted before the key is poisoned ("rebuild-once").
  int rebuild_limit = 1;
  // How long a poisoned key fails fast before a probe is allowed.
  Nanos poison_ttl = Seconds(30);
};

class KernelCache {
 public:
  explicit KernelCache(BuildOptions options = {}, CacheBudget artifact_budget = {},
                       CacheBudget kernel_budget = {})
      : options_(std::move(options)),
        artifact_budget_(artifact_budget),
        kernel_budget_(kernel_budget) {}

  // What a fleet member deploys: a (possibly shared) kernel image with its
  // precomputed boot plan, plus a (possibly shared) rootfs. All shared
  // pieces are immutable and reference-counted; an artifact outlives its
  // cache entry, so holding one across an eviction is safe.
  struct AppArtifact {
    std::shared_ptr<const kbuild::KernelImage> kernel;
    std::shared_ptr<const guestos::BootPlan> boot_plan;  // Per-image, per-boot reuse.
    std::shared_ptr<const std::string> rootfs;
    std::string init_script;
    // Content identities of the immutable inputs: the kernel config
    // fingerprint and the rootfs cache key. Together (plus guest RAM) they
    // key snapshot/restore state — two artifacts with equal identities boot
    // to byte-identical post-init state.
    std::string fingerprint;
    std::string rootfs_key;
    // The batching mode substituted the shared lupine-general kernel after
    // proving this app's config is a subset of it.
    bool general_kernel = false;
    // Host-wall provisioning timeline of the flight that built this
    // artifact: specialize -> resolve -> build (when this flight built the
    // kernel) -> load-rootfs. Shared by every holder; null for artifacts
    // served from the store (their provisioning already happened).
    std::shared_ptr<const telemetry::SpanTrace> provisioning;

    std::unique_ptr<vmm::Vm> Launch(Bytes memory = 512 * kMiB,
                                    FaultInjector* faults = nullptr) const;
  };
  using ArtifactPtr = std::shared_ptr<const AppArtifact>;

  // Builds (or reuses) the specialized kernel for `app` with the cache's
  // default build options. Safe to call from multiple threads; concurrent
  // duplicate requests wait on one build.
  Result<ArtifactPtr> GetOrBuild(const std::string& app);
  // Same, with per-call build options (keyed separately from the defaults).
  Result<ArtifactPtr> GetOrBuild(const std::string& app, const BuildOptions& options);

  // --- Staged provisioning --------------------------------------------------
  // GetOrBuild runs the whole chain (specialize -> kernel -> rootfs) as one
  // opaque step. A pipelining fleet scheduler wants the stages as separate
  // schedulable tasks so one VM's kernel build overlaps another's rootfs
  // assembly. PlanProvisioning exposes the stage keys and which stages are
  // already resident; PrewarmKernel/PrewarmRootfs execute one stage each
  // (single-flight with each other and with GetOrBuild). A boot task that
  // runs after its prewarm deps is then a pure cache hit.

  // Modeled virtual cost of cold provisioning stages. Builds run on the host
  // wall clock; fleet virtual makespans charge these deterministic figures
  // instead so scheduling results never depend on host core count or load.
  struct ProvisionCostModel {
    // Kernel build: a fixed compile floor plus a per-enabled-option cost
    // (more config surface = more translation units in this model).
    Nanos kernel_base = Millis(1500);
    Nanos kernel_per_option = Millis(3);
    // Rootfs assembly: flat — blob contents are config-independent string
    // assembly (ContainerImage carries no byte size to scale by).
    Nanos rootfs = Millis(250);
  };

  // One app's provisioning, staged: the kernel stage key (shared by every
  // app whose specialized config fingerprints identically), the rootfs stage
  // key, residency of each stage, and the modeled cost of the cold ones.
  struct ProvisionPlan {
    std::string app;
    std::string fingerprint;  // Kernel stage key.
    std::string rootfs_key;   // Rootfs stage key.
    bool kernel_cached = false;
    bool rootfs_cached = false;
    Nanos kernel_cost = 0;  // Modeled cost if the kernel stage is cold.
    Nanos rootfs_cost = 0;  // Modeled cost if the rootfs stage is cold.
  };

  // Computes the plan for `app` under the default build options. Pure
  // planning: no request/hit counters move, the quarantine gate is not
  // consulted, and nothing is built — safe to call while deciding what to
  // schedule without perturbing the stats storm tests assert on.
  Result<ProvisionPlan> PlanProvisioning(const std::string& app);

  // Stage executors (default build options). Each builds its stage at most
  // once fleet-wide (kernel builds single-flight with GetOrBuild's own
  // kernel path; the rootfs cache single-flights internally) and is a cheap
  // no-op when the stage is already resident.
  Status PrewarmKernel(const std::string& app);
  Status PrewarmRootfs(const std::string& app);

  void set_provision_costs(ProvisionCostModel model) { provision_costs_ = model; }
  const ProvisionCostModel& provision_costs() const { return provision_costs_; }

  // --- Quarantine -----------------------------------------------------------
  // Launch-failure feedback from fleet members: `app` (default-keyed, the
  // fleet path's GetOrBuild(app) counterpart) booted from its artifact and
  // failed. Drives the rebuild-once-then-poison state machine above.
  void ReportLaunchFailure(const std::string& app);
  // True when `status` is a quarantine denial from GetOrBuild.
  static bool IsQuarantineDenial(const Status& status) {
    return status.err() == Err::kAccess;
  }
  void set_quarantine(QuarantinePolicy policy);
  // TTL time source, monotonic nanos. Default: host steady clock since
  // construction. Tests inject a manual clock for deterministic expiry.
  void set_quarantine_clock(std::function<Nanos()> now);

  struct Stats {
    size_t requests = 0;          // GetOrBuild calls.
    size_t builds = 0;            // Kernel builds (fingerprint misses).
    size_t apps = 0;              // Distinct artifact keys ever served.
    size_t distinct_kernels = 0;  // Kernel images currently stored.
    Bytes bytes_if_unshared = 0;  // Sum of per-app image sizes without sharing.
    Bytes bytes_stored = 0;       // Sum of distinct stored image sizes.
    size_t general_served = 0;    // Artifacts served the shared general kernel.
    // Quarantine (launch-failure containment).
    size_t quarantine_failures = 0;  // Launch failures reported.
    size_t quarantine_rebuilds = 0;  // Artifacts dropped for a from-scratch rebuild.
    size_t quarantine_poisoned = 0;  // Keys poisoned (fail-fast) so far, lifetime.
    size_t quarantine_denials = 0;   // GetOrBuild calls denied while poisoned.
    size_t artifact_evictions = 0;
    size_t kernel_evictions = 0;
    Bytes bytes_evicted = 0;      // Kernel image bytes dropped by eviction.
    // Bytes the cache cannot evict because callers still hold references.
    Bytes kernel_bytes_pinned = 0;
    Bytes artifact_bytes_pinned = 0;
    Bytes bytes_saved() const { return bytes_if_unshared - bytes_stored; }
  };
  Stats stats() const;

  // Optional, non-owning metric sink for live counters and stage timings:
  // `kernelcache.requests` / `kernelcache.app_hits` / `kernelcache.builds`
  // counters and `build.stage_ns{stage}` histograms (specialize, resolve,
  // build, load-rootfs — host wall clock). Set before the first GetOrBuild;
  // the registry must outlive the cache.
  void set_metrics(telemetry::MetricRegistry* metrics) { metrics_ = metrics; }

  // Optional, non-owning flight-recorder sink: cache decisions (hit, miss,
  // evict, quarantine rebuild/poison/half-open/denial) land as journal
  // events under source "kernel-cache" (the rootfs side gets the sink too,
  // under "rootfs-cache"). Cache interleaving is host-timing dependent, so
  // the events are schedule-scoped (full export / Perfetto only). Set
  // before the first GetOrBuild; the journal must outlive the cache.
  void set_journal(telemetry::Journal* journal);

  // Publishes the current Stats (and the rootfs cache's) as absolute-valued
  // gauges: `kernelcache.*` with eviction/pinned bytes split by
  // `{tier=artifact|kernel}`, plus `rootfscache.*`. Call at a snapshot point
  // (end of a fleet run) — gauges overwrite, so this is idempotent.
  void PublishMetrics(telemetry::MetricRegistry& registry) const;

  // The rootfs-side cache (content-addressed blobs, own LRU budget).
  apps::RootfsCache& rootfs_cache() { return rootfs_cache_; }
  apps::RootfsCache::Stats rootfs_stats() const { return rootfs_cache_.stats(); }

  // Replaces the retention budgets and immediately evicts down to them.
  void set_budgets(CacheBudget artifact_budget, CacheBudget kernel_budget);

  // The cache key: a canonical fingerprint of the enabled option set and
  // build knobs (what makes two kernels byte-identical in this model).
  static std::string ConfigFingerprint(const kconfig::Config& config);

 private:
  // An in-progress build other threads can wait on. Waiters hold the
  // shared_ptr, so the flight outlives its map entry (entries are erased on
  // completion; failures leave no trace, preserving retry semantics). The
  // successful artifact is published on the flight itself so waiters get it
  // even if a tight budget evicts the store entry immediately.
  struct Flight {
    bool done = false;
    Status status = Status::Ok();
    ArtifactPtr artifact;
  };

  struct KernelEntry {
    std::shared_ptr<const kbuild::KernelImage> image;
    std::shared_ptr<const guestos::BootPlan> boot_plan;
  };

  // Kernel-level flight: the built image rides on the flight so waiters are
  // immune to an immediate eviction of the store entry.
  struct KernelFlight {
    bool done = false;
    Status status = Status::Ok();
    KernelEntry entry;
  };

  Result<ArtifactPtr> GetOrBuildKeyed(const std::string& key, const std::string& app,
                                      const BuildOptions& options);

  // The front half of provisioning, shared by GetOrBuildKeyed and the staged
  // API: manifest lookup, SpecializeConfig, the batch-general subset proof,
  // and the config fingerprint. Lock-free (the builder is stateless).
  struct Specialization {
    const apps::AppManifest* manifest = nullptr;
    kconfig::Config config;
    bool general_kernel = false;
    std::string fingerprint;
  };
  Result<Specialization> SpecializeForApp(const std::string& app,
                                          const BuildOptions& options,
                                          telemetry::SpanTrace* provisioning);
  // The kernel stage: serve `fingerprint` from the store, join its flight,
  // or build `config` and publish. Takes mu_ itself (caller must not hold
  // it); `provisioning` (optional) receives the "build" phase on a build.
  Result<KernelEntry> EnsureKernel(const kconfig::Config& config,
                                   const std::string& fingerprint,
                                   telemetry::SpanTrace* provisioning);

  void EvictLocked();
  // Journal emission (schedule-scoped, source "kernel-cache"). Safe under
  // mu_: the journal's own mutex is a leaf.
  void EmitJournal(const char* type, const std::string& app) const;
  // Drops the cached artifact + rootfs blob for `app` (default key) so the
  // next GetOrBuild rebuilds from scratch. Caller holds mu_.
  void DropForRebuildLocked(const std::string& app);
  Nanos QuarantineNowLocked();

  BuildOptions options_;
  LupineBuilder builder_;
  apps::RootfsCache rootfs_cache_;
  telemetry::MetricRegistry* metrics_ = nullptr;
  telemetry::Journal* journal_ = nullptr;
  ProvisionCostModel provision_costs_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  CacheBudget artifact_budget_;
  CacheBudget kernel_budget_;
  std::map<std::string, KernelEntry> kernels_;  // By fingerprint.
  std::map<std::string, ArtifactPtr> apps_;     // By artifact key.
  // Every artifact key ever served -> the size of its kernel image; survives
  // eviction so bytes_if_unshared reflects the whole fleet, not the
  // currently-resident slice.
  std::map<std::string, Bytes> app_kernel_bytes_;
  std::map<std::string, std::shared_ptr<Flight>> app_flights_;           // By artifact key.
  std::map<std::string, std::shared_ptr<KernelFlight>> kernel_flights_;  // By fingerprint.
  LruTracker artifact_lru_;
  LruTracker kernel_lru_;

  // Quarantine state, keyed like apps_ (default key = app name).
  struct LaunchHealth {
    int failures = 0;          // Since the last (re)build.
    int rebuilds = 0;          // Rebuilds already spent.
    Nanos poisoned_until = -1; // -1 = not poisoned.
  };
  QuarantinePolicy quarantine_policy_;
  std::map<std::string, LaunchHealth> quarantine_;
  std::function<Nanos()> quarantine_now_;  // Unset = host steady clock.
  size_t quarantine_failures_ = 0;
  size_t quarantine_rebuilds_ = 0;
  size_t quarantine_poisoned_ = 0;
  size_t quarantine_denials_ = 0;

  size_t requests_ = 0;
  size_t builds_ = 0;
  size_t general_served_ = 0;
  size_t artifact_evictions_ = 0;
  size_t kernel_evictions_ = 0;
  Bytes bytes_evicted_ = 0;
};

}  // namespace lupine::core

#endif  // SRC_CORE_MULTIK_H_

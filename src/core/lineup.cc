#include "src/core/lineup.h"

namespace lupine::core {

using unikernels::HermituxProfile;
using unikernels::LinuxSystem;
using unikernels::OsvProfile;
using unikernels::RumpProfile;
using unikernels::UnikernelModel;

SystemList ImageSizeLineup() {
  SystemList systems;
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::MicrovmSpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineSpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineTinySpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineGeneralSpec()));
  systems.push_back(std::make_unique<UnikernelModel>(HermituxProfile()));
  systems.push_back(std::make_unique<UnikernelModel>(OsvProfile()));
  systems.push_back(std::make_unique<UnikernelModel>(RumpProfile()));
  return systems;
}

SystemList BootTimeLineup() {
  SystemList systems;
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::MicrovmSpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineNokmlSpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineGeneralNokmlSpec()));
  systems.push_back(std::make_unique<UnikernelModel>(HermituxProfile()));
  systems.push_back(std::make_unique<UnikernelModel>(OsvProfile(/*zfs=*/false)));
  systems.push_back(std::make_unique<UnikernelModel>(OsvProfile(/*zfs=*/true)));
  systems.push_back(std::make_unique<UnikernelModel>(RumpProfile()));
  return systems;
}

SystemList MemoryLineup() {
  SystemList systems;
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::MicrovmSpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineSpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineGeneralSpec()));
  systems.push_back(std::make_unique<UnikernelModel>(HermituxProfile()));
  systems.push_back(std::make_unique<UnikernelModel>(OsvProfile()));
  systems.push_back(std::make_unique<UnikernelModel>(RumpProfile()));
  return systems;
}

SystemList SyscallLineup() {
  SystemList systems;
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::MicrovmSpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineNokmlSpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineSpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineGeneralSpec()));
  systems.push_back(std::make_unique<UnikernelModel>(HermituxProfile()));
  systems.push_back(std::make_unique<UnikernelModel>(OsvProfile()));
  systems.push_back(std::make_unique<UnikernelModel>(RumpProfile()));
  return systems;
}

SystemList AppPerfLineup() {
  SystemList systems;
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::MicrovmSpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineGeneralSpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineSpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineTinySpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineNokmlSpec()));
  systems.push_back(std::make_unique<LinuxSystem>(unikernels::LupineNokmlTinySpec()));
  systems.push_back(std::make_unique<UnikernelModel>(HermituxProfile()));
  systems.push_back(std::make_unique<UnikernelModel>(OsvProfile()));
  systems.push_back(std::make_unique<UnikernelModel>(RumpProfile()));
  return systems;
}

}  // namespace lupine::core

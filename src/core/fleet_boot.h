// Fleet boot driver: boots a whole fleet of cached unikernels across worker
// threads and reports throughput on the virtual timeline.
//
// Scheduling rides on util/scheduler's work-stealing deques instead of the
// old static shards: each boot is one task, pushed to a home deque
// (index mod W) and stolen by idle workers when its home runs long — one
// expensive boot (a fresh build, a stall fault) no longer wedges a shard
// while siblings idle. Fibers are thread-local, so a VM still lives and
// dies on the one worker thread that ran its task; migration happens
// before the task starts, never mid-boot. Every reported figure (makespan,
// per-worker busy time, steals, queue peaks) comes from the scheduler's
// deterministic virtual-time replay, so the speedup is a property of the
// simulation, not of how many host cores this process happens to get —
// and fault logs and retry counts replay byte-identically across 1/2/4/8
// workers, stealing on or off.
//
// The per-VM chain (kernel build -> rootfs -> boot) is a dependency DAG in
// the default pipelined schedule: one kernel task per distinct config
// fingerprint, one rootfs task per distinct rootfs key, with each boot
// depending on its two provisioning stages. Cold-cache provisioning stages
// overlap across VMs instead of serializing inside the first boot that
// happens to need them. Stage costs are the cache's deterministic
// ProvisionCostModel figures, charged in virtual time only when the stage
// is actually cold.
#ifndef SRC_CORE_FLEET_BOOT_H_
#define SRC_CORE_FLEET_BOOT_H_

#include <string>
#include <vector>

#include "src/core/multik.h"
#include "src/core/snapshot_cache.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/span.h"
#include "src/util/fault.h"
#include "src/util/retry.h"
#include "src/vmm/admission.h"
#include "src/vmm/supervisor.h"

namespace lupine::core {

// How the fleet maps onto workers.
enum class FleetSchedule {
  // The legacy layout: task i belongs to worker i mod W forever. Kept as
  // the baseline the benches compare against (and as the degenerate
  // stealing=off policy of the same scheduler).
  kStaticShards,
  // Work-stealing deques over monolithic tasks: each boot task runs the
  // whole provisioning+boot chain; cold provisioning is modeled as
  // single-flight groups (first task dispatched pays, concurrent ones wait).
  kWorkStealing,
  // Work-stealing deques over the staged DAG (default): kernel-build and
  // rootfs tasks are split out per distinct stage key and overlap across
  // VMs. On a warm cache no provisioning tasks exist and this is
  // kWorkStealing with zero flight groups.
  kPipelined,
};

// Per-stage deadlines over the provisioning+boot pipeline. Zero = unlimited.
// build/rootfs are host-wall (the cache's provisioning spans); boot, init
// and workload are virtual time on the VM's own clock. A stage that crosses
// its deadline is treated as the monitor killing the VM at that instant:
// the attempt fails with kTimedOut (retryable), and the shard is charged
// the deadline, not the stall (a kBootStall fault inflates the decompress
// phase by 60 virtual seconds — the deadline caps the damage).
struct StageDeadlines {
  Nanos build = 0;     // Kernel build (host wall, fresh builds only).
  Nanos rootfs = 0;    // Rootfs load (host wall, fresh builds only).
  Nanos boot = 0;      // Monitor start -> rootfs mounted (virtual).
  Nanos init = 0;      // init-exec (virtual).
  Nanos workload = 0;  // app-main, run_workload mode only (virtual).
};

struct FleetBootOptions {
  std::vector<std::string> apps;  // Empty = the paper's top-20 list.
  size_t workers = 1;
  size_t rounds = 1;              // Each round boots every app once.
  Bytes memory = 512 * kMiB;
  // false: Boot() + StartInit only — no fiber ever runs, which keeps the
  // storm tsan-compatible. true: run each guest to quiescence (batch jobs
  // must exit 0; servers parking in accept count as success).
  bool run_workload = false;
  // Drive each worker's shard through its own vmm::Supervisor instead of
  // booting VMs directly (demonstrates pool-thread confinement).
  bool supervised = false;
  // Optional, non-owning metric sink: per-boot `boot.to_init_ns{app}` /
  // `boot.phase_ns{phase}` / `vm.resident_peak_bytes` histograms, per-worker
  // `fleet.worker_resident_peak_bytes{worker}` gauges, fleet rollup gauges,
  // and — at the end of the run — the cache's PublishMetrics snapshot. Must
  // outlive the call; shared safely by all workers.
  telemetry::MetricRegistry* metrics = nullptr;
  // Optional, non-owning flight-recorder sink. Direct-mode tasks emit
  // structured events (task-start, admit/reject, retry, deadline,
  // quarantine-denied, breaker-denied, launch-failure, unretried,
  // task-done) stamped with task-relative virtual offsets — a pure
  // function of (plan, seed, task index), so Journal::ExportJsonl() is
  // byte-identical across 1/2/4/8 workers like the fault logs. Replay
  // steal events land under source "sched" as schedule-scoped events
  // (full export / Perfetto only). Supervised shards forward the sink to
  // their per-worker Supervisor. Must outlive the call; thread-safe.
  telemetry::Journal* journal = nullptr;
  // Optional, non-owning admission controller: every direct-mode launch
  // holds a Grant for the VM's lifetime, so the whole fleet stays under the
  // controller's host budget (rejected launches count as failures).
  // Supervised shards ignore it: a supervisor restarts members on its own
  // schedule, so its memory is accounted at member granularity elsewhere.
  vmm::FleetAdmissionController* admission = nullptr;
  // Smallest RAM a degraded launch may be granted (0 = not degradable).
  Bytes min_memory = 0;

  // --- Resilience -----------------------------------------------------------
  // Per-task retry schedule: a failed attempt (boot fault, panic, deadline
  // kill) backs off deterministically and tries a fresh VM. The default
  // max_attempts=1 keeps the historical fail-once behavior. Each task forks
  // its jitter stream off (retry.seed, task index), so schedules are
  // identical however the fleet is sharded.
  RetryPolicy retry = {.max_attempts = 1};
  // Stage deadlines (see above). All zero = no deadline enforcement.
  StageDeadlines deadlines;
  // Optional fault schedule. Each boot task (round, app) owns a private
  // FaultInjector forked deterministically off plan.seed and the task index;
  // the injector survives the task's retries (a restarted VM continues the
  // schedule, it does not replay it), and per-task fault logs are returned
  // in task order — byte-identical across 1/2/4/8 workers. Must outlive the
  // call.
  const FaultPlan* fault_plan = nullptr;
  // Optional, non-owning snapshot store (direct mode only; supervised shards
  // ignore it — a supervisor owns its members' lifecycles). With a store,
  // the fleet plans snapshot use up front: the first task per snapshot key
  // ({kernel fingerprint, rootfs key, RAM}) cold-boots and captures; every
  // later same-key task depends on that capture task in the schedule and
  // launches by restore instead of Boot(), so restore-vs-capture is a
  // property of the plan — byte-identical across worker counts — never a
  // lookup race. A key already resident in the store (pre-baked by a
  // previous run) skips the capture and restores everywhere. Restore
  // failures feed the store's drop-once-then-poison quarantine and the task
  // retries with a cold boot. Must outlive the call; thread-safe.
  SnapshotCache* snapshots = nullptr;
  // Optional, non-owning fleet circuit breaker shared by every worker. Each
  // launch is Allow()-gated and its outcome Record()ed; in fail-fast mode a
  // tripped breaker denies launches (counted as failures + breaker_denied).
  CircuitBreaker* breaker = nullptr;
  // Supervised-mode restart policy (backoff base/cap, crash-loop window) —
  // the supervisor's knobs are fleet configuration, not constants.
  vmm::SupervisorPolicy supervisor_policy;

  // Worker scheduling policy (see FleetSchedule). Supervised mode always
  // runs one pinned shard task per worker regardless (a supervisor owns its
  // members for their whole lifetime), with cold provisioning still modeled
  // as flight groups.
  FleetSchedule schedule = FleetSchedule::kPipelined;
};

struct FleetBootResult {
  size_t boots = 0;
  size_t failures = 0;
  Nanos virtual_makespan = 0;           // Replay makespan (latest completion).
  Nanos virtual_boot_total = 0;         // Sum of all task + provisioning costs.
  double boots_per_virtual_sec = 0.0;   // boots / virtual_makespan.
  double wall_ms = 0.0;                 // Host wall clock, informational.
  std::vector<Nanos> worker_virtual;    // Per-worker busy virtual time (replay).

  // Scheduler telemetry, all from the deterministic replay.
  size_t steals = 0;                      // Tasks that ran off-home.
  std::vector<size_t> worker_queue_peak;  // Max deque depth per worker.
  // Per-worker virtual timelines (one span per task, flight waits excluded):
  // the stage-overlap picture. telemetry::ToChromeTrace renders them as a
  // chrome://tracing / Perfetto document.
  std::vector<telemetry::SpanTrace> worker_timelines;

  // Memory rollups (Fig. 8 footprints, fleet-scale). A worker boots its
  // shard serially, so its concurrent residency is one VM: the per-worker
  // peak is its largest single-VM footprint.
  std::vector<Bytes> worker_resident_peak;  // Max VM peak per worker.
  Bytes fleet_resident_peak = 0;  // Sum of worker peaks (W VMs live at once);
                                  // with admission: the controller's
                                  // peak-committed bytes (true high water).
  Bytes fleet_resident_sum = 0;   // Sum of every VM's peak footprint.

  // Admission outcomes (all zero without a controller).
  size_t admitted = 0;   // Full-memory grants.
  size_t degraded = 0;   // min_memory grants.
  size_t rejected = 0;   // Never admitted; counted as failures too.
  size_t queue_waits = 0;  // Grants that blocked before being issued.

  // Resilience outcomes. `failures` stays what it was: tasks that never
  // completed (now: after retries were exhausted, denied or not worth it).
  size_t retries = 0;            // Re-attempts after retryable failures.
  size_t launch_failures = 0;    // Individual failed attempts (pre-retry).
  size_t deadline_exceeded = 0;  // Attempts killed by a stage deadline.
  size_t quarantined = 0;        // Launches denied by artifact quarantine.
  size_t breaker_denied = 0;     // Launches denied by a tripped breaker.
  size_t breaker_trips = 0;      // Breaker trip transitions during the run.
  size_t recovered = 0;          // Tasks that failed at least once but completed.
  // Tasks that failed without a single retry because the error was
  // classified permanent (the observable for intentional fail-fast paths).
  size_t unretried_failures = 0;
  // Extra virtual time recovered tasks burned (failed attempts + backoffs):
  // divided by `recovered`, the fleet's mean virtual time-to-recovery.
  Nanos virtual_recovery_total = 0;

  // Snapshot/restore outcomes (all zero without options.snapshots).
  size_t snapshot_captures = 0;          // Cold boots that published a snapshot.
  size_t snapshot_restores = 0;          // Launches served by restore.
  size_t snapshot_restore_failures = 0;  // Restore attempts that failed.
  // Launch-cost split: to_init summed over restored vs cold-booted launches.
  // restore_total / restores vs coldboot_total / cold boots is the headline
  // "restore is N x cheaper than boot" figure.
  Nanos virtual_restore_total = 0;
  Nanos virtual_coldboot_total = 0;
  // One line per task, task order, only tasks whose injector fired:
  // "#<task> <app>: <site>@<evaluation>,...". Byte-identical across worker
  // counts for a given (plan, seed) — the replay-determinism contract.
  std::vector<std::string> fault_log;

  // Replay-derived counter tracks over the virtual timeline (tasks in
  // flight, resident bytes, cumulative boots) — the `ph:"C"` inputs to
  // telemetry::ToChromeTrace's merged Perfetto document.
  std::vector<telemetry::CounterSeries> counter_tracks;
};

// Boots `rounds` x `apps` VMs from `cache` artifacts on `workers` pool
// threads. Fails only when an artifact cannot be built at all; individual
// boot/workload failures are counted in the result.
Result<FleetBootResult> RunFleetBoot(KernelCache& cache, const FleetBootOptions& options);

}  // namespace lupine::core

#endif  // SRC_CORE_FLEET_BOOT_H_

// Fleet boot driver: boots a whole fleet of cached unikernels across
// ThreadPool workers and reports throughput on the virtual timeline.
//
// Fibers (and therefore VMs mid-run) are thread-local, so the driver shards
// the fleet statically: task i belongs to worker i mod W, and every VM a
// worker creates lives and dies on that worker's thread. Each worker sums
// the virtual boot time (monitor start -> init exec) of its shard; the fleet
// makespan is the maximum shard sum — the virtual wall-clock of W monitor
// processes booting their shards concurrently. That makes the reported
// speedup a property of the simulation, not of how many host cores this
// process happens to get.
#ifndef SRC_CORE_FLEET_BOOT_H_
#define SRC_CORE_FLEET_BOOT_H_

#include <string>
#include <vector>

#include "src/core/multik.h"
#include "src/telemetry/metrics.h"
#include "src/vmm/admission.h"

namespace lupine::core {

struct FleetBootOptions {
  std::vector<std::string> apps;  // Empty = the paper's top-20 list.
  size_t workers = 1;
  size_t rounds = 1;              // Each round boots every app once.
  Bytes memory = 512 * kMiB;
  // false: Boot() + StartInit only — no fiber ever runs, which keeps the
  // storm tsan-compatible. true: run each guest to quiescence (batch jobs
  // must exit 0; servers parking in accept count as success).
  bool run_workload = false;
  // Drive each worker's shard through its own vmm::Supervisor instead of
  // booting VMs directly (demonstrates pool-thread confinement).
  bool supervised = false;
  // Optional, non-owning metric sink: per-boot `boot.to_init_ns{app}` /
  // `boot.phase_ns{phase}` / `vm.resident_peak_bytes` histograms, per-worker
  // `fleet.worker_resident_peak_bytes{worker}` gauges, fleet rollup gauges,
  // and — at the end of the run — the cache's PublishMetrics snapshot. Must
  // outlive the call; shared safely by all workers.
  telemetry::MetricRegistry* metrics = nullptr;
  // Optional, non-owning admission controller: every direct-mode launch
  // holds a Grant for the VM's lifetime, so the whole fleet stays under the
  // controller's host budget (rejected launches count as failures).
  // Supervised shards ignore it: a supervisor restarts members on its own
  // schedule, so its memory is accounted at member granularity elsewhere.
  vmm::FleetAdmissionController* admission = nullptr;
  // Smallest RAM a degraded launch may be granted (0 = not degradable).
  Bytes min_memory = 0;
};

struct FleetBootResult {
  size_t boots = 0;
  size_t failures = 0;
  Nanos virtual_makespan = 0;           // Max over workers of shard virtual time.
  Nanos virtual_boot_total = 0;         // Sum of every boot's to_init.
  double boots_per_virtual_sec = 0.0;   // boots / virtual_makespan.
  double wall_ms = 0.0;                 // Host wall clock, informational.
  std::vector<Nanos> worker_virtual;    // Per-worker shard virtual time.

  // Memory rollups (Fig. 8 footprints, fleet-scale). A worker boots its
  // shard serially, so its concurrent residency is one VM: the per-worker
  // peak is its largest single-VM footprint.
  std::vector<Bytes> worker_resident_peak;  // Max VM peak per worker.
  Bytes fleet_resident_peak = 0;  // Sum of worker peaks (W VMs live at once);
                                  // with admission: the controller's
                                  // peak-committed bytes (true high water).
  Bytes fleet_resident_sum = 0;   // Sum of every VM's peak footprint.

  // Admission outcomes (all zero without a controller).
  size_t admitted = 0;   // Full-memory grants.
  size_t degraded = 0;   // min_memory grants.
  size_t rejected = 0;   // Never admitted; counted as failures too.
  size_t queue_waits = 0;  // Grants that blocked before being issued.
};

// Boots `rounds` x `apps` VMs from `cache` artifacts on `workers` pool
// threads. Fails only when an artifact cannot be built at all; individual
// boot/workload failures are counted in the result.
Result<FleetBootResult> RunFleetBoot(KernelCache& cache, const FleetBootOptions& options);

}  // namespace lupine::core

#endif  // SRC_CORE_FLEET_BOOT_H_

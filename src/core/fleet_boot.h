// Fleet boot driver: boots a whole fleet of cached unikernels across
// ThreadPool workers and reports throughput on the virtual timeline.
//
// Fibers (and therefore VMs mid-run) are thread-local, so the driver shards
// the fleet statically: task i belongs to worker i mod W, and every VM a
// worker creates lives and dies on that worker's thread. Each worker sums
// the virtual boot time (monitor start -> init exec) of its shard; the fleet
// makespan is the maximum shard sum — the virtual wall-clock of W monitor
// processes booting their shards concurrently. That makes the reported
// speedup a property of the simulation, not of how many host cores this
// process happens to get.
#ifndef SRC_CORE_FLEET_BOOT_H_
#define SRC_CORE_FLEET_BOOT_H_

#include <string>
#include <vector>

#include "src/core/multik.h"

namespace lupine::core {

struct FleetBootOptions {
  std::vector<std::string> apps;  // Empty = the paper's top-20 list.
  size_t workers = 1;
  size_t rounds = 1;              // Each round boots every app once.
  Bytes memory = 512 * kMiB;
  // false: Boot() + StartInit only — no fiber ever runs, which keeps the
  // storm tsan-compatible. true: run each guest to quiescence (batch jobs
  // must exit 0; servers parking in accept count as success).
  bool run_workload = false;
  // Drive each worker's shard through its own vmm::Supervisor instead of
  // booting VMs directly (demonstrates pool-thread confinement).
  bool supervised = false;
};

struct FleetBootResult {
  size_t boots = 0;
  size_t failures = 0;
  Nanos virtual_makespan = 0;           // Max over workers of shard virtual time.
  Nanos virtual_boot_total = 0;         // Sum of every boot's to_init.
  double boots_per_virtual_sec = 0.0;   // boots / virtual_makespan.
  double wall_ms = 0.0;                 // Host wall clock, informational.
  std::vector<Nanos> worker_virtual;    // Per-worker shard virtual time.
};

// Boots `rounds` x `apps` VMs from `cache` artifacts on `workers` pool
// threads. Fails only when an artifact cannot be built at all; individual
// boot/workload failures are counted in the result.
Result<FleetBootResult> RunFleetBoot(KernelCache& cache, const FleetBootOptions& options);

}  // namespace lupine::core

#endif  // SRC_CORE_FLEET_BOOT_H_

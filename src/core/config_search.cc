#include "src/core/config_search.h"

#include "src/apps/builtin.h"
#include "src/apps/manifest.h"
#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"
#include "src/vmm/vm.h"
#include "src/workload/app_bench.h"

namespace lupine::core {
namespace {

namespace n = kconfig::names;

// One build+boot+run cycle. Returns the console output; success is reported
// through `ok`.
std::string TryBoot(const kconfig::Config& config, const apps::AppManifest& manifest,
                    Bytes memory, bool* ok) {
  *ok = false;
  kbuild::ImageBuilder builder;
  auto image = builder.Build(config);
  if (!image.ok()) {
    return "kernel build failed: " + image.status().ToString();
  }
  vmm::VmSpec spec;
  spec.monitor = vmm::Firecracker();
  spec.image = image.take();
  spec.rootfs = apps::BuildAppRootfsForApp(manifest.name, /*kml_libc=*/false);
  spec.memory = memory;
  vmm::Vm vm(std::move(spec));

  if (Status s = vm.Boot(); !s.ok()) {
    return vm.kernel().console().contents() + "\nboot failed: " + s.ToString();
  }
  auto run = vm.RunToCompletion();
  const std::string console = vm.kernel().console().contents();
  if (manifest.kind == apps::AppKind::kServer) {
    // A healthy server blocks; success criteria is the readiness line.
    *ok = console.find(manifest.ready_line) != std::string::npos;
  } else {
    *ok = run.ok() && run.value() == 0 &&
          console.find(manifest.ready_line) != std::string::npos;
  }
  return console;
}

}  // namespace

const std::vector<ErrorHint>& ConsoleErrorHints() {
  static const std::vector<ErrorHint> hints = {
      // Unambiguous diagnostics (Section 4.1's examples).
      {"futex facility returned an unexpected error code", {n::kFutex}},
      {"epoll_create1 failed", {n::kEpoll}},
      {"can't create UNIX socket", {n::kUnix}},
      {"eventfd: function not implemented", {n::kEventfd}},
      {"io_setup: function not implemented", {n::kAio}},
      {"timerfd_create: function not implemented", {n::kTimerfd}},
      {"signalfd: function not implemented", {n::kSignalfd}},
      {"inotify_init failed", {n::kInotifyUser}},
      {"fanotify_init: function not implemented", {n::kFanotify}},
      {"name_to_handle_at: function not implemented", {n::kFhandle}},
      {"bpf: function not implemented", {n::kBpfSyscall}},
      {"mq_open: function not implemented", {n::kPosixMqueue}},
      {"could not create shared memory segment", {n::kSysvipc}},
      {"unknown filesystem type 'tmpfs'", {n::kTmpfs}},
      {"unknown filesystem type 'hugetlbfs'", {n::kHugetlbfs}},
      {"can't open /proc/sys", {n::kProcSysctl}},
      {"AF_INET6", {n::kIpv6}},
      {"AF_PACKET", {n::kPacket}},
      // Less helpful messages requiring trial and error (the paper's
      // experience): a bare "function not implemented" from flock or
      // madvise, tried in likelihood order.
      {"flock: function not implemented", {n::kFileLocking}},
      {"madvise: function not implemented", {n::kAdviseSyscalls}},
      {"function not implemented", {n::kFileLocking, n::kAdviseSyscalls, n::kFutex}},
  };
  return hints;
}

Result<SearchResult> DeriveMinimalConfig(const std::string& app, const SearchOptions& options) {
  apps::RegisterBuiltinApps();
  const apps::AppManifest* manifest = apps::FindManifest(app);
  if (manifest == nullptr) {
    return Status(Err::kNoEnt, "no manifest for application " + app);
  }

  kconfig::Config config = kconfig::LupineBase();
  config.set_name("search-" + app);
  kconfig::Resolver resolver(kconfig::OptionDb::Linux40());

  SearchResult result;
  for (int boot = 0; boot < options.max_boots; ++boot) {
    bool ok = false;
    ++result.boots;
    std::string console = TryBoot(config, *manifest, options.memory, &ok);
    if (ok) {
      result.success = true;
      return result;
    }

    // Read the console like the authors did: find a diagnostic, derive a
    // candidate option, enable it, rebuild and reboot.
    bool advanced = false;
    for (const auto& hint : ConsoleErrorHints()) {
      if (console.find(hint.needle) == std::string::npos) {
        continue;
      }
      for (const auto& candidate : hint.candidates) {
        if (config.IsEnabled(candidate)) {
          continue;  // Already tried; ambiguous hint, try the next candidate.
        }
        auto enabled = resolver.Enable(config, candidate);
        if (!enabled.ok()) {
          continue;
        }
        result.added_options.push_back(candidate);
        advanced = true;
        break;
      }
      if (advanced) {
        break;
      }
    }
    if (!advanced) {
      // No diagnostic we can act on: the app likely is not unikernel-suited.
      result.failure = console.size() > 500 ? console.substr(console.size() - 500) : console;
      return result;
    }
  }
  result.failure = "exceeded max boot attempts";
  return result;
}

}  // namespace lupine::core

#include "src/core/lupine.h"

#include "src/apps/builtin.h"
#include "src/apps/init_script.h"
#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"

namespace lupine::core {

std::unique_ptr<vmm::Vm> Unikernel::Launch(Bytes memory, FaultInjector* faults) const {
  vmm::VmSpec spec;
  spec.monitor = vmm::Firecracker();
  spec.image = kernel;
  spec.rootfs = rootfs;
  spec.memory = memory;
  spec.faults = faults;
  return std::make_unique<vmm::Vm>(std::move(spec));
}

LupineBuilder::LupineBuilder() { apps::RegisterBuiltinApps(); }

Result<kconfig::Config> LupineBuilder::SpecializeConfig(const apps::AppManifest& manifest,
                                                        const BuildOptions& options,
                                                        telemetry::SpanTrace* spans) const {
  // Host-wall timing: `resolve` covers the dependency-resolution loops,
  // `specialize` everything else (preset load, -tiny, PANIC_TIMEOUT, KML).
  telemetry::HostStopwatch total;
  Nanos resolve_ns = 0;

  // 1. Specialize the kernel configuration (Section 3.1).
  kconfig::Config config;
  if (options.general_config) {
    config = kconfig::LupineGeneral();
  } else {
    config = kconfig::LupineBase();
    config.set_name("lupine-" + manifest.name);
    kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
    telemetry::HostStopwatch resolve;
    for (const auto& option : manifest.required_options) {
      auto enabled = resolver.Enable(config, option);
      if (!enabled.ok()) {
        return Status(enabled.status().err(),
                      "manifest option " + option + ": " + enabled.status().message());
      }
    }
    resolve_ns += resolve.ElapsedNanos();
  }
  kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
  {
    telemetry::HostStopwatch resolve;
    for (const auto& option : options.extra_options) {
      auto enabled = resolver.Enable(config, option);
      if (!enabled.ok()) {
        return Status(enabled.status().err(),
                      "extra option " + option + ": " + enabled.status().message());
      }
    }
    resolve_ns += resolve.ElapsedNanos();
  }
  if (options.tiny) {
    kconfig::ApplyTiny(config);
  }
  config.SetValue(kconfig::names::kPanicTimeout, std::to_string(options.panic_timeout));
  // 2. Eliminate system call overhead via KML (Section 3.2).
  if (options.kml) {
    if (Status s = kconfig::ApplyKml(config); !s.ok()) {
      return s;
    }
  }
  if (spans != nullptr) {
    const Nanos elapsed = total.ElapsedNanos();
    spans->AddPhase("specialize", elapsed > resolve_ns ? elapsed - resolve_ns : 0);
    spans->AddPhase("resolve", resolve_ns);
  }
  return config;
}

Result<Unikernel> LupineBuilder::Build(const apps::AppManifest& manifest,
                                       const apps::ContainerImage& image,
                                       const BuildOptions& options) const {
  // 1-2. Specialize the configuration (options resolved, -tiny/KML applied).
  auto specialized = SpecializeConfig(manifest, options);
  if (!specialized.ok()) {
    return specialized.status();
  }
  kconfig::Config config = specialized.take();

  // 3. Build the kernel image.
  kbuild::ImageBuilder builder;
  auto kernel = builder.Build(config);
  if (!kernel.ok()) {
    return kernel.status();
  }

  // 4. Convert the container image into the rootfs with the startup script
  //    and (for KML) the patched libc.
  apps::RootfsOptions rootfs_options;
  rootfs_options.kml_libc = options.kml;

  Unikernel result;
  result.kernel = kernel.take();
  result.rootfs = apps::BuildAppRootfs(image, rootfs_options);
  result.init_script = apps::GenerateInitScript(image);
  result.config = std::move(config);
  return result;
}

Result<Unikernel> LupineBuilder::BuildForApp(const std::string& app,
                                             const BuildOptions& options) const {
  const apps::AppManifest* manifest = apps::FindManifest(app);
  if (manifest == nullptr) {
    return Status(Err::kNoEnt, "no manifest for application " + app);
  }
  return Build(*manifest, apps::MakeAlpineImage(*manifest), options);
}

}  // namespace lupine::core

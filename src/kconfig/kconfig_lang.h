// A front end for (a practical subset of) the Kconfig language itself.
//
// The paper's entire specialization mechanism is "the kernel's Kconfig
// mechanism" (Section 3.1); this parser lets users define option trees in
// the native syntax instead of C++:
//
//   config FUTEX
//       bool "Fast user-space mutexes"
//       depends on MMU
//       select RT_MUTEXES
//       help
//         Enables the futex system call.
//
// Supported: `config NAME`, types (`bool`/`tristate`/`int`/`string`) with
// optional prompt, `depends on A && B`, `select X`, `conflicts Y` (our
// extension for KML-style mutual exclusion), `help` blocks, and `#`
// comments. Unsupported Kconfig constructs (menus, choices, defaults with
// expressions) are rejected with a line-numbered error.
#ifndef SRC_KCONFIG_KCONFIG_LANG_H_
#define SRC_KCONFIG_KCONFIG_LANG_H_

#include <string>

#include "src/kconfig/option_db.h"
#include "src/util/result.h"

namespace lupine::kconfig {

struct KconfigParseOptions {
  // Directory and class assigned to parsed options (Kconfig files do not
  // carry our taxonomy; callers set it per file, as the per-directory
  // Kconfig layout does in Linux).
  SourceDir dir = SourceDir::kKernel;
  OptionClass option_class = OptionClass::kNotSelected;
  Bytes default_size = 10 * kKiB;
};

// Parses Kconfig text into options appended to `db`. Returns the number of
// options added.
Result<size_t> ParseKconfig(const std::string& text, const KconfigParseOptions& options,
                            OptionDb& db);

// Renders an option back in Kconfig syntax (round-trip / inspection).
std::string ToKconfig(const OptionInfo& option);

}  // namespace lupine::kconfig

#endif  // SRC_KCONFIG_KCONFIG_LANG_H_

#include "src/kconfig/dotconfig.h"

#include <sstream>

namespace lupine::kconfig {
namespace {

constexpr char kPrefix[] = "CONFIG_";
constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;

bool NeedsQuotes(std::string_view value) {
  if (value == "y" || value == "n" || value == "m") {
    return false;
  }
  for (char c : value) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == 'x' ||
          (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))) {
      return true;
    }
  }
  return false;
}

// Strips surrounding double quotes if present.
std::string Unquote(const std::string& s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

}  // namespace

std::string ToDotConfig(const Config& config, const OptionDb* db) {
  std::ostringstream out;
  out << "#\n# Automatically generated file; DO NOT EDIT.\n# " << config.name() << "\n#\n";
  for (const auto& name : config.EnabledOptions()) {
    const std::string_view value = config.GetValue(name);
    out << kPrefix << name << "=";
    if (NeedsQuotes(value)) {
      out << '"' << value << '"';
    } else {
      out << value;
    }
    out << "\n";
  }
  if (db != nullptr) {
    for (const auto& option : db->options()) {
      if (option.option_class != OptionClass::kNotSelected && !config.IsEnabled(option.name)) {
        out << "# " << kPrefix << option.name << " is not set\n";
      }
    }
  }
  return out.str();
}

Result<Config> ParseDotConfig(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Trim leading whitespace.
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) {
      continue;
    }
    line = line.substr(start);
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      // "# CONFIG_FOO is not set" is valid and meaningful but parses to the
      // absence we already have; other comments are skipped.
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos || line.compare(0, kPrefixLen, kPrefix) != 0) {
      return Status(Err::kInval,
                    "malformed .config line " + std::to_string(lineno) + ": " + line);
    }
    std::string name = line.substr(kPrefixLen, eq - kPrefixLen);
    std::string value = Unquote(line.substr(eq + 1));
    if (name.empty()) {
      return Status(Err::kInval, "empty option name on line " + std::to_string(lineno));
    }
    if (value == "n") {
      continue;
    }
    config.SetValue(name, value);
  }
  return config;
}

}  // namespace lupine::kconfig

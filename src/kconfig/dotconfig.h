// Serialization to and from the `.config` text format used by Kconfig:
//
//   CONFIG_FUTEX=y
//   CONFIG_NR_CPUS=1
//   CONFIG_CMDLINE="console=ttyS0"
//   # CONFIG_SMP is not set
//
// Round-tripping lets users inspect generated Lupine configs with familiar
// tools and feed externally-authored configs into the builder.
#ifndef SRC_KCONFIG_DOTCONFIG_H_
#define SRC_KCONFIG_DOTCONFIG_H_

#include <string>

#include "src/kconfig/config.h"
#include "src/util/result.h"

namespace lupine::kconfig {

// Renders `config` in .config syntax. When `db` is non-null, explicitly
// annotates microVM-selected options that are disabled ("# ... is not set"),
// matching what `make savedefconfig` diffs look like.
std::string ToDotConfig(const Config& config, const OptionDb* db = nullptr);

// Parses .config text. Unknown options are accepted here (the Resolver
// validates against a database separately); malformed lines fail.
Result<Config> ParseDotConfig(const std::string& text);

}  // namespace lupine::kconfig

#endif  // SRC_KCONFIG_DOTCONFIG_H_

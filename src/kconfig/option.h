// Kconfig option model.
//
// Mirrors the knobs of Linux 4.0's configuration system that the paper's
// specialization story depends on: every option lives in a source directory
// (Fig. 3's x-axis), carries the taxonomy class the paper assigns it when
// deriving lupine-base from Firecracker's microVM config (Fig. 4), and has a
// size contribution used by the image-size model (Fig. 6).
#ifndef SRC_KCONFIG_OPTION_H_
#define SRC_KCONFIG_OPTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace lupine::kconfig {

enum class OptionType { kBool, kTristate, kInt, kString };

// Top-level Linux source directories with Kconfig files (Fig. 3).
enum class SourceDir {
  kDrivers,
  kArch,
  kSound,
  kNet,
  kFs,
  kLib,
  kKernel,
  kInit,
  kCrypto,
  kMm,
  kSecurity,
  kBlock,
  kVirt,
  kSamples,
  kUsr,
};

inline constexpr int kNumSourceDirs = 15;
const char* SourceDirName(SourceDir dir);

// Why an option is (or is not) part of lupine-base, following the paper's
// Fig. 4 taxonomy. Options in the microVM config are either retained
// (kBase) or removed into one of the categories below; everything else in
// the tree is kNotSelected.
enum class OptionClass {
  kBase,             // Retained: the 283-option lupine-base.
  kAppNetwork,       // Application-specific: network protocols (~100).
  kAppFilesystem,    // Application-specific: filesystems (~35).
  kAppSyscall,       // Application-specific: syscall-gating options (Table 1).
  kAppCompression,   // Application-specific: compression (~20).
  kAppCrypto,        // Application-specific: crypto (~55).
  kAppDebug,         // Application-specific: debugging/info (~65).
  kAppOther,         // Application-specific: misc services (/proc, sysctl...).
  kMultiProcess,     // Unnecessary: single-process nature (cgroups, namespaces,
                     // SysV IPC, security modules, KPTI, SMP/NUMA, modules).
  kHardware,         // Unnecessary: cloud virtual hardware (power mgmt,
                     // hotplug, physical device drivers).
  kNotSelected,      // In the tree but not in the microVM config.
};

const char* OptionClassName(OptionClass c);

bool IsApplicationSpecific(OptionClass c);
// True for classes removed from microVM when deriving lupine-base (i.e.
// everything except kBase and kNotSelected).
bool IsRemovedFromMicrovm(OptionClass c);

struct OptionInfo {
  std::string name;                      // Without the CONFIG_ prefix, e.g. "FUTEX".
  OptionType type = OptionType::kBool;
  SourceDir dir = SourceDir::kKernel;
  OptionClass option_class = OptionClass::kNotSelected;
  Bytes builtin_size = 0;                // Image-size contribution when =y.
  std::vector<std::string> depends_on;   // All must be enabled.
  std::vector<std::string> selects;      // Force-enabled alongside this one.
  std::vector<std::string> conflicts;    // Mutually exclusive options (e.g.
                                         // KERNEL_MODE_LINUX vs PARAVIRT).
  std::string help;                      // One-line description.
};

}  // namespace lupine::kconfig

#endif  // SRC_KCONFIG_OPTION_H_

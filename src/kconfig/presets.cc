#include "src/kconfig/presets.h"

#include <map>

#include "src/kconfig/option_names.h"
#include "src/kconfig/resolver.h"

namespace lupine::kconfig {
namespace {

namespace n = names;

// Table 3: options each application needs beyond lupine-base. The counts per
// app and the size of the union (19) match the paper exactly; see
// tests/kconfig/presets_test.cc for the invariants.
const std::map<std::string, std::vector<std::string>>& AppOptionTable() {
  static const std::map<std::string, std::vector<std::string>> table = {
      {"nginx",
       {n::kFutex, n::kEpoll, n::kUnix, n::kEventfd, n::kAio, n::kTimerfd, n::kInotifyUser,
        n::kFileLocking, n::kProcSysctl, n::kTmpfs, n::kAdviseSyscalls, n::kIpv6, n::kPacket}},
      {"postgres",
       {n::kFutex, n::kEpoll, n::kUnix, n::kSysvipc, n::kPosixMqueue, n::kFileLocking,
        n::kProcSysctl, n::kTmpfs, n::kAio, n::kAdviseSyscalls}},
      {"httpd",
       {n::kFutex, n::kEpoll, n::kUnix, n::kEventfd, n::kAio, n::kTimerfd, n::kInotifyUser,
        n::kFileLocking, n::kProcSysctl, n::kTmpfs, n::kSysvipc, n::kIpv6, n::kSignalfd}},
      {"node", {n::kFutex, n::kEpoll, n::kUnix, n::kEventfd, n::kInotifyUser}},
      {"redis",
       {n::kFutex, n::kEpoll, n::kUnix, n::kTmpfs, n::kProcSysctl, n::kAdviseSyscalls,
        n::kFileLocking, n::kTimerfd, n::kInotifyUser, n::kIpv6}},
      {"mongo",
       {n::kFutex, n::kEpoll, n::kUnix, n::kEventfd, n::kAio, n::kFileLocking, n::kProcSysctl,
        n::kTmpfs, n::kAdviseSyscalls, n::kIpv6, n::kFhandle}},
      {"mysql",
       {n::kFutex, n::kEpoll, n::kUnix, n::kEventfd, n::kAio, n::kTimerfd, n::kFileLocking,
        n::kProcSysctl, n::kTmpfs}},
      {"traefik",
       {n::kFutex, n::kEpoll, n::kUnix, n::kEventfd, n::kInotifyUser, n::kTimerfd, n::kIpv6,
        n::kProcSysctl}},
      {"memcached",
       {n::kFutex, n::kEpoll, n::kUnix, n::kEventfd, n::kTimerfd, n::kProcSysctl, n::kIpv6,
        n::kFileLocking, n::kAdviseSyscalls, n::kSignalfd}},
      {"hello-world", {}},
      {"mariadb",
       {n::kFutex, n::kEpoll, n::kUnix, n::kEventfd, n::kAio, n::kTimerfd, n::kFileLocking,
        n::kProcSysctl, n::kTmpfs, n::kAdviseSyscalls, n::kIpv6, n::kSysvipc, n::kInotifyUser}},
      {"golang", {}},
      {"python", {}},
      {"openjdk", {}},
      {"rabbitmq",
       {n::kFutex, n::kEpoll, n::kUnix, n::kEventfd, n::kTimerfd, n::kInotifyUser,
        n::kFileLocking, n::kProcSysctl, n::kTmpfs, n::kIpv6, n::kSignalfd, n::kPosixMqueue}},
      {"php", {}},
      {"wordpress",
       {n::kFutex, n::kEpoll, n::kUnix, n::kInotifyUser, n::kFileLocking, n::kProcSysctl,
        n::kTmpfs, n::kSysvipc, n::kIpv6}},
      {"haproxy",
       {n::kFutex, n::kEpoll, n::kUnix, n::kEventfd, n::kTimerfd, n::kIpv6, n::kProcSysctl,
        n::kFileLocking}},
      {"influxdb",
       {n::kFutex, n::kEpoll, n::kUnix, n::kEventfd, n::kTimerfd, n::kProcSysctl, n::kIpv6,
        n::kFileLocking, n::kAdviseSyscalls, n::kInotifyUser, n::kBpfSyscall}},
      {"elasticsearch",
       {n::kFutex, n::kEpoll, n::kUnix, n::kEventfd, n::kAio, n::kTimerfd, n::kInotifyUser,
        n::kFileLocking, n::kProcSysctl, n::kTmpfs, n::kAdviseSyscalls, n::kFanotify}},
  };
  return table;
}

}  // namespace

Config MicrovmConfig() {
  // Built once (a scan over all 15,953 options), then copied out — a Config
  // copy is a couple of small bitsets, not a option-map deep copy.
  static const Config microvm = [] {
    Config config("microvm");
    for (const auto& option : OptionDb::Linux40().options()) {
      if (option.option_class != OptionClass::kNotSelected) {
        config.Enable(option.name);
      }
    }
    return config;
  }();
  return microvm;
}

Config LupineBase() {
  // The shared lupine-base closure: every fleet build starts from this, so
  // the full-tree scan runs once per process instead of once per build.
  static const Config base = [] {
    Config config("lupine-base");
    for (const auto& option : OptionDb::Linux40().options()) {
      if (option.option_class == OptionClass::kBase) {
        config.Enable(option.name);
      }
    }
    return config;
  }();
  return base;
}

const std::vector<std::string>& Top20AppNames() {
  static const std::vector<std::string> apps = {
      "nginx",    "postgres",  "httpd",  "node",   "redis",    "mongo",     "mysql",
      "traefik",  "memcached", "hello-world", "mariadb", "golang", "python", "openjdk",
      "rabbitmq", "php",       "wordpress",   "haproxy", "influxdb", "elasticsearch"};
  return apps;
}

const std::vector<std::string>& AppExtraOptions(const std::string& app) {
  static const std::vector<std::string> empty;
  const auto& table = AppOptionTable();
  auto it = table.find(app);
  return it == table.end() ? empty : it->second;
}

Result<Config> LupineForApp(const std::string& app) {
  Config config = LupineBase();
  config.set_name("lupine-" + app);
  Resolver resolver(OptionDb::Linux40());
  for (const auto& option : AppExtraOptions(app)) {
    auto result = resolver.Enable(config, option);
    if (!result.ok()) {
      return result.status();
    }
  }
  return config;
}

Config LupineGeneral() {
  static const Config general = [] {
    Config config = LupineBase();
    config.set_name("lupine-general");
    Resolver resolver(OptionDb::Linux40());
    for (const auto& app : Top20AppNames()) {
      for (const auto& option : AppExtraOptions(app)) {
        auto result = resolver.Enable(config, option);
        (void)result;  // All Table 3 options resolve inside lupine-base deps.
      }
    }
    return config;
  }();
  return general;
}

const std::vector<std::string>& TinyDisabledOptions() {
  static const std::vector<std::string> options = {
      n::kBaseFull,        n::kKallsyms,  n::kBug,        n::kElfCore,   n::kSlubDebug,
      n::kVmEventCounters, n::kDebugBugverbose, n::kPrintkTime, n::kMagicSysrq};
  return options;
}

void ApplyTiny(Config& config) {
  for (const auto& option : TinyDisabledOptions()) {
    config.Disable(option);
  }
  config.set_compile_mode(CompileMode::kOs);
  config.set_name(config.name() + "-tiny");
}

Status ApplyKml(Config& config) {
  config.set_kml_patch_applied(true);
  // The KML patch is incompatible with CONFIG_PARAVIRT (Section 4.3).
  config.Disable(n::kParavirt);
  Resolver resolver(OptionDb::Linux40());
  auto result = resolver.Enable(config, n::kKml);
  if (!result.ok()) {
    return result.status();
  }
  config.set_name(config.name() + "-kml");
  return Status::Ok();
}

}  // namespace lupine::kconfig

#include "src/kconfig/option_db.h"

#include <atomic>

namespace lupine::kconfig {

uint64_t OptionDb::NextSerial() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

OptionDb::OptionDb() : serial_(NextSerial()) {}

OptionDb::OptionDb(const OptionDb& other)
    : options_(other.options_),
      edges_(other.edges_),
      index_(other.index_),
      id_index_(other.id_index_),
      serial_(NextSerial()) {}

OptionDb& OptionDb::operator=(const OptionDb& other) {
  if (this != &other) {
    options_ = other.options_;
    edges_ = other.edges_;
    index_ = other.index_;
    id_index_ = other.id_index_;
    serial_ = NextSerial();
  }
  return *this;
}

bool OptionDb::Add(OptionInfo info) {
  auto [it, inserted] = index_.try_emplace(info.name, options_.size());
  if (!inserted) {
    return false;
  }
  auto& interner = OptionInterner::Global();
  OptionEdges edges;
  edges.self = interner.Intern(info.name);
  edges.depends_on.reserve(info.depends_on.size());
  for (const auto& dep : info.depends_on) {
    edges.depends_on.push_back(interner.Intern(dep));
  }
  edges.selects.reserve(info.selects.size());
  for (const auto& sel : info.selects) {
    edges.selects.push_back(interner.Intern(sel));
  }
  edges.conflicts.reserve(info.conflicts.size());
  for (const auto& conflict : info.conflicts) {
    edges.conflicts.push_back(interner.Intern(conflict));
  }
  id_index_.emplace(edges.self, options_.size());
  edges_.push_back(std::move(edges));
  options_.push_back(std::move(info));
  return true;
}

const OptionInfo* OptionDb::Find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return nullptr;
  }
  return &options_[it->second];
}

const OptionInfo* OptionDb::FindById(OptionId id) const {
  auto it = id_index_.find(id);
  if (it == id_index_.end()) {
    return nullptr;
  }
  return &options_[it->second];
}

const OptionDb::OptionEdges* OptionDb::EdgesById(OptionId id) const {
  auto it = id_index_.find(id);
  if (it == id_index_.end()) {
    return nullptr;
  }
  return &edges_[it->second];
}

size_t OptionDb::CountInDir(SourceDir dir) const {
  size_t n = 0;
  for (const auto& o : options_) {
    if (o.dir == dir) {
      ++n;
    }
  }
  return n;
}

size_t OptionDb::CountInClass(OptionClass c) const {
  size_t n = 0;
  for (const auto& o : options_) {
    if (o.option_class == c) {
      ++n;
    }
  }
  return n;
}

std::vector<const OptionInfo*> OptionDb::AllInDir(SourceDir dir) const {
  std::vector<const OptionInfo*> out;
  for (const auto& o : options_) {
    if (o.dir == dir) {
      out.push_back(&o);
    }
  }
  return out;
}

std::vector<const OptionInfo*> OptionDb::AllInClass(OptionClass c) const {
  std::vector<const OptionInfo*> out;
  for (const auto& o : options_) {
    if (o.option_class == c) {
      out.push_back(&o);
    }
  }
  return out;
}

}  // namespace lupine::kconfig

#include "src/kconfig/option_db.h"

namespace lupine::kconfig {

bool OptionDb::Add(OptionInfo info) {
  auto [it, inserted] = index_.try_emplace(info.name, options_.size());
  if (!inserted) {
    return false;
  }
  options_.push_back(std::move(info));
  return true;
}

const OptionInfo* OptionDb::Find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return nullptr;
  }
  return &options_[it->second];
}

size_t OptionDb::CountInDir(SourceDir dir) const {
  size_t n = 0;
  for (const auto& o : options_) {
    if (o.dir == dir) {
      ++n;
    }
  }
  return n;
}

size_t OptionDb::CountInClass(OptionClass c) const {
  size_t n = 0;
  for (const auto& o : options_) {
    if (o.option_class == c) {
      ++n;
    }
  }
  return n;
}

std::vector<const OptionInfo*> OptionDb::AllInDir(SourceDir dir) const {
  std::vector<const OptionInfo*> out;
  for (const auto& o : options_) {
    if (o.dir == dir) {
      out.push_back(&o);
    }
  }
  return out;
}

std::vector<const OptionInfo*> OptionDb::AllInClass(OptionClass c) const {
  std::vector<const OptionInfo*> out;
  for (const auto& o : options_) {
    if (o.option_class == c) {
      out.push_back(&o);
    }
  }
  return out;
}

}  // namespace lupine::kconfig

// Construction of the synthetic Linux 4.0 option tree.
//
// Two layers compose the database:
//   1. Named options: everything the simulator's behaviour depends on
//      (syscall gating, subsystems, SMP/KML/KPTI, boot phases, sizes of the
//      big-ticket items). These are real Linux option names.
//   2. Filler options: anonymous options that make the aggregate counts match
//      the paper -- 15,953 options total in the tree (Fig. 3), 833 selected
//      by Firecracker's microVM config, of which 283 survive into
//      lupine-base and 550 are removed in the Fig. 4 categories
//      (311 application-specific + 89 multi-process + 150 hardware).
//
// Filler options are not dead weight: they carry directory, class and size
// attributes, so Fig. 3/4 counting, image-size modelling (Fig. 6) and the
// boot-time initcall model all traverse them.
#include <cassert>
#include <cstdio>

#include "src/kconfig/option_db.h"
#include "src/kconfig/option_names.h"

namespace lupine::kconfig {
namespace {

namespace n = names;

struct FillerSpec {
  OptionClass option_class;
  SourceDir dir;
  int total;          // Total options of this (class, dir) cell, named included.
  Bytes each;         // builtin_size per filler option.
  const char* prefix; // Name prefix for generated options.
};

// Target totals per (class, dir) cell for the microVM-selected options.
//   lupine-base:           283
//   app-specific:          311 (network 100, filesystem 35, syscall 12,
//                               compression 20, crypto 55, debugging 65,
//                               other 24)
//   multiple-processes:     89
//   hardware-management:   150
// Sum = 833 = Firecracker microVM configuration.
constexpr FillerSpec kSelectedCells[] = {
    // lupine-base (283).
    {OptionClass::kBase, SourceDir::kInit, 28, 7 * kKiB, "BASE_INIT"},
    {OptionClass::kBase, SourceDir::kKernel, 68, 7 * kKiB, "BASE_CORE"},
    {OptionClass::kBase, SourceDir::kMm, 30, 7 * kKiB, "BASE_MM"},
    {OptionClass::kBase, SourceDir::kFs, 40, 7 * kKiB, "BASE_FS"},
    {OptionClass::kBase, SourceDir::kNet, 34, 7 * kKiB, "BASE_NET"},
    {OptionClass::kBase, SourceDir::kLib, 26, 7 * kKiB, "BASE_LIB"},
    {OptionClass::kBase, SourceDir::kDrivers, 22, 7 * kKiB, "BASE_DRV"},
    {OptionClass::kBase, SourceDir::kArch, 20, 7 * kKiB, "BASE_ARCH"},
    {OptionClass::kBase, SourceDir::kBlock, 8, 7 * kKiB, "BASE_BLK"},
    {OptionClass::kBase, SourceDir::kSecurity, 2, 7 * kKiB, "BASE_SEC"},
    {OptionClass::kBase, SourceDir::kVirt, 2, 7 * kKiB, "BASE_VIRT"},
    {OptionClass::kBase, SourceDir::kUsr, 3, 7 * kKiB, "BASE_USR"},
    // Application-specific: network protocols (100).
    {OptionClass::kAppNetwork, SourceDir::kNet, 100, 16 * kKiB, "NET_PROTO"},
    // Application-specific: filesystems (35).
    {OptionClass::kAppFilesystem, SourceDir::kFs, 35, 18 * kKiB, "FS_FEAT"},
    // Application-specific: syscall-gating (12; all named, Table 1).
    {OptionClass::kAppSyscall, SourceDir::kInit, 8, 10 * kKiB, "SYSC_INIT"},
    {OptionClass::kAppSyscall, SourceDir::kFs, 3, 10 * kKiB, "SYSC_FS"},
    {OptionClass::kAppSyscall, SourceDir::kKernel, 1, 10 * kKiB, "SYSC_KERN"},
    // Application-specific: compression (20).
    {OptionClass::kAppCompression, SourceDir::kLib, 20, 14 * kKiB, "COMP_LIB"},
    // Application-specific: crypto (55).
    {OptionClass::kAppCrypto, SourceDir::kCrypto, 55, 17 * kKiB, "CRYPTO_ALG"},
    // Application-specific: debugging / information (65).
    {OptionClass::kAppDebug, SourceDir::kKernel, 50, 22 * kKiB, "DEBUG_KERN"},
    {OptionClass::kAppDebug, SourceDir::kLib, 15, 22 * kKiB, "DEBUG_LIB"},
    // Application-specific: other kernel services (24).
    {OptionClass::kAppOther, SourceDir::kKernel, 14, 13 * kKiB, "SVC_KERN"},
    {OptionClass::kAppOther, SourceDir::kMm, 10, 13 * kKiB, "SVC_MM"},
    // Multiple-processes (89), incl. the single-security-domain options.
    {OptionClass::kMultiProcess, SourceDir::kInit, 28, 13 * kKiB, "MP_INIT"},
    {OptionClass::kMultiProcess, SourceDir::kKernel, 36, 13 * kKiB, "MP_KERN"},
    {OptionClass::kMultiProcess, SourceDir::kArch, 4, 13 * kKiB, "MP_ARCH"},
    {OptionClass::kMultiProcess, SourceDir::kSecurity, 19, 13 * kKiB, "MP_SEC"},
    {OptionClass::kMultiProcess, SourceDir::kMm, 2, 13 * kKiB, "MP_MM"},
    // Hardware management (150), incl. 24 power-management options.
    {OptionClass::kHardware, SourceDir::kDrivers, 110, 27 * kKiB, "HW_DRV"},
    {OptionClass::kHardware, SourceDir::kArch, 36, 27 * kKiB, "HW_ARCH"},
    {OptionClass::kHardware, SourceDir::kBlock, 4, 27 * kKiB, "HW_BLK"},
};

// Total options per source directory in the whole tree (Fig. 3 "total").
// Sum = 15,953 (the paper's count for Linux 4.0).
struct DirTotal {
  SourceDir dir;
  int total;
};
constexpr DirTotal kTreeTotals[] = {
    {SourceDir::kDrivers, 7838}, {SourceDir::kArch, 3201},
    {SourceDir::kSound, 1436},   {SourceDir::kNet, 1103},
    {SourceDir::kFs, 632},       {SourceDir::kLib, 397},
    {SourceDir::kKernel, 390},   {SourceDir::kInit, 191},
    {SourceDir::kCrypto, 301},   {SourceDir::kMm, 122},
    {SourceDir::kSecurity, 141}, {SourceDir::kBlock, 93},
    {SourceDir::kVirt, 26},      {SourceDir::kSamples, 51},
    {SourceDir::kUsr, 31},
};

void AddNamed(OptionDb& db, const char* name, SourceDir dir, OptionClass cls, Bytes size,
              std::vector<std::string> depends = {}, std::vector<std::string> conflicts = {},
              const char* help = "") {
  OptionInfo info;
  info.name = name;
  info.dir = dir;
  info.option_class = cls;
  info.builtin_size = size;
  info.depends_on = std::move(depends);
  info.conflicts = std::move(conflicts);
  info.help = help;
  bool added = db.Add(std::move(info));
  assert(added && "duplicate named option in the synthetic tree");
  (void)added;
}

void AddNamedOptions(OptionDb& db) {
  using SD = SourceDir;
  using OC = OptionClass;

  // ---- Table 1: options that gate system calls (class kAppSyscall). -------
  AddNamed(db, n::kAdviseSyscalls, SD::kInit, OC::kAppSyscall, 12 * kKiB, {}, {},
           "madvise/fadvise64 syscalls");
  AddNamed(db, n::kAio, SD::kInit, OC::kAppSyscall, 72 * kKiB, {}, {}, "io_* syscalls");
  AddNamed(db, n::kBpfSyscall, SD::kKernel, OC::kAppSyscall, 64 * kKiB, {}, {}, "bpf syscall");
  AddNamed(db, n::kEpoll, SD::kInit, OC::kAppSyscall, 40 * kKiB, {}, {}, "epoll_* syscalls");
  AddNamed(db, n::kEventfd, SD::kInit, OC::kAppSyscall, 12 * kKiB, {}, {}, "eventfd syscalls");
  AddNamed(db, n::kFanotify, SD::kFs, OC::kAppSyscall, 24 * kKiB, {}, {}, "fanotify syscalls");
  AddNamed(db, n::kFhandle, SD::kInit, OC::kAppSyscall, 8 * kKiB, {}, {},
           "open_by_handle_at/name_to_handle_at");
  AddNamed(db, n::kFileLocking, SD::kFs, OC::kAppSyscall, 28 * kKiB, {}, {}, "flock syscall");
  AddNamed(db, n::kFutex, SD::kInit, OC::kAppSyscall, 36 * kKiB, {}, {},
           "futex/robust-list syscalls");
  AddNamed(db, n::kInotifyUser, SD::kFs, OC::kAppSyscall, 24 * kKiB, {}, {},
           "inotify_* syscalls");
  AddNamed(db, n::kSignalfd, SD::kInit, OC::kAppSyscall, 12 * kKiB, {}, {}, "signalfd syscalls");
  AddNamed(db, n::kTimerfd, SD::kInit, OC::kAppSyscall, 16 * kKiB, {}, {}, "timerfd_* syscalls");

  // ---- Other application-specific named options. ---------------------------
  AddNamed(db, n::kUnix, SD::kNet, OC::kAppNetwork, 96 * kKiB, {n::kNet}, {}, "AF_UNIX sockets");
  AddNamed(db, n::kIpv6, SD::kNet, OC::kAppNetwork, 420 * kKiB, {n::kInet}, {}, "IPv6 stack");
  AddNamed(db, n::kPacket, SD::kNet, OC::kAppNetwork, 48 * kKiB, {n::kNet}, {},
           "AF_PACKET sockets");
  AddNamed(db, n::kTmpfs, SD::kFs, OC::kAppFilesystem, 56 * kKiB, {n::kShmem}, {}, "tmpfs");
  AddNamed(db, n::kProcSysctl, SD::kFs, OC::kAppFilesystem, 24 * kKiB, {n::kProcFs}, {},
           "/proc/sys interface");
  AddNamed(db, n::kHugetlbfs, SD::kFs, OC::kAppFilesystem, 48 * kKiB, {}, {}, "hugetlbfs");

  // ---- Multi-process / single-security-domain options. ---------------------
  AddNamed(db, n::kSysvipc, SD::kInit, OC::kMultiProcess, 124 * kKiB, {}, {}, "System V IPC");
  AddNamed(db, n::kPosixMqueue, SD::kInit, OC::kMultiProcess, 40 * kKiB, {}, {},
           "POSIX message queues");
  AddNamed(db, n::kCgroups, SD::kInit, OC::kMultiProcess, 120 * kKiB, {}, {}, "control groups");
  AddNamed(db, n::kCpusets, SD::kInit, OC::kMultiProcess, 24 * kKiB, {n::kCgroups, n::kSmp}, {},
           "cpuset controller");
  AddNamed(db, n::kNamespaces, SD::kInit, OC::kMultiProcess, 60 * kKiB, {}, {}, "namespaces");
  AddNamed(db, n::kUtsNs, SD::kInit, OC::kMultiProcess, 16 * kKiB, {n::kNamespaces}, {}, "");
  AddNamed(db, n::kPidNs, SD::kInit, OC::kMultiProcess, 16 * kKiB, {n::kNamespaces}, {}, "");
  AddNamed(db, n::kNetNs, SD::kInit, OC::kMultiProcess, 16 * kKiB, {n::kNamespaces, n::kNet}, {},
           "");
  AddNamed(db, n::kIpcNs, SD::kInit, OC::kMultiProcess, 16 * kKiB, {n::kNamespaces}, {}, "");
  AddNamed(db, n::kUserNs, SD::kInit, OC::kMultiProcess, 16 * kKiB, {n::kNamespaces}, {}, "");
  AddNamed(db, n::kModules, SD::kInit, OC::kMultiProcess, 80 * kKiB, {}, {},
           "loadable module support");
  AddNamed(db, n::kAudit, SD::kKernel, OC::kMultiProcess, 70 * kKiB, {}, {}, "audit subsystem");
  AddNamed(db, n::kSeccomp, SD::kKernel, OC::kMultiProcess, 24 * kKiB, {}, {}, "seccomp filters");
  AddNamed(db, n::kSmp, SD::kArch, OC::kMultiProcess, 180 * kKiB, {}, {},
           "symmetric multi-processing");
  AddNamed(db, n::kNuma, SD::kArch, OC::kMultiProcess, 90 * kKiB, {n::kSmp}, {}, "NUMA support");
  AddNamed(db, n::kMitigations, SD::kArch, OC::kMultiProcess, 40 * kKiB, {}, {},
           "CPU vulnerability mitigations");
  AddNamed(db, n::kSecurity, SD::kSecurity, OC::kMultiProcess, 30 * kKiB, {}, {},
           "security framework");
  AddNamed(db, n::kSelinux, SD::kSecurity, OC::kMultiProcess, 400 * kKiB,
           {n::kSecurity, n::kAudit}, {}, "SELinux");

  // ---- Hardware management. -------------------------------------------------
  AddNamed(db, n::kAcpi, SD::kDrivers, OC::kHardware, 350 * kKiB, {}, {}, "ACPI");
  AddNamed(db, n::kPm, SD::kDrivers, OC::kHardware, 120 * kKiB, {}, {}, "power management core");
  AddNamed(db, n::kCpuFreq, SD::kDrivers, OC::kHardware, 80 * kKiB, {}, {}, "CPU freq scaling");
  AddNamed(db, n::kHotplugCpu, SD::kArch, OC::kHardware, 40 * kKiB, {n::kSmp}, {}, "CPU hotplug");
  AddNamed(db, n::kThermal, SD::kDrivers, OC::kHardware, 60 * kKiB, {}, {}, "thermal control");
  AddNamed(db, n::kWatchdog, SD::kDrivers, OC::kHardware, 30 * kKiB, {}, {}, "watchdog drivers");

  // ---- lupine-base infrastructure. -------------------------------------------
  AddNamed(db, n::kTty, SD::kDrivers, OC::kBase, 120 * kKiB, {}, {}, "TTY layer");
  AddNamed(db, n::kSerial8250, SD::kDrivers, OC::kBase, 60 * kKiB, {n::kTty}, {}, "8250 UART");
  AddNamed(db, n::kUnix98Ptys, SD::kDrivers, OC::kBase, 16 * kKiB, {n::kTty}, {}, "ptys");
  AddNamed(db, n::kPrintk, SD::kInit, OC::kBase, 60 * kKiB, {}, {}, "kernel console output");
  AddNamed(db, n::kBinfmtElf, SD::kFs, OC::kBase, 40 * kKiB, {}, {}, "ELF loader");
  AddNamed(db, n::kBinfmtScript, SD::kFs, OC::kBase, 8 * kKiB, {}, {}, "#! script loader");
  AddNamed(db, n::kShmem, SD::kMm, OC::kBase, 48 * kKiB, {}, {}, "shared memory core");
  AddNamed(db, n::kNet, SD::kNet, OC::kBase, 300 * kKiB, {}, {}, "network core");
  AddNamed(db, n::kInet, SD::kNet, OC::kBase, 450 * kKiB, {n::kNet}, {}, "TCP/IP");
  AddNamed(db, n::kVirtio, SD::kDrivers, OC::kBase, 20 * kKiB, {}, {}, "virtio core");
  AddNamed(db, n::kVirtioMmio, SD::kDrivers, OC::kBase, 16 * kKiB, {n::kVirtio}, {},
           "virtio-mmio transport");
  AddNamed(db, n::kVirtioNet, SD::kDrivers, OC::kBase, 40 * kKiB, {n::kVirtio, n::kNet}, {},
           "virtio net device");
  AddNamed(db, n::kVirtioBlk, SD::kDrivers, OC::kBase, 24 * kKiB, {n::kVirtio, n::kBlkDev}, {},
           "virtio block device");
  AddNamed(db, n::kExt2Fs, SD::kFs, OC::kBase, 80 * kKiB, {n::kBlkDev}, {}, "ext2 filesystem");
  AddNamed(db, n::kProcFs, SD::kFs, OC::kBase, 80 * kKiB, {}, {}, "/proc filesystem");
  AddNamed(db, n::kSysfs, SD::kFs, OC::kBase, 60 * kKiB, {}, {}, "sysfs");
  AddNamed(db, n::kDevtmpfs, SD::kDrivers, OC::kBase, 16 * kKiB, {}, {}, "devtmpfs");
  AddNamed(db, n::kBlkDev, SD::kBlock, OC::kBase, 40 * kKiB, {}, {}, "block layer");
  AddNamed(db, n::kBlkDevLoop, SD::kBlock, OC::kBase, 28 * kKiB, {n::kBlkDev}, {},
           "loopback block device");
  AddNamed(db, n::kParavirt, SD::kArch, OC::kBase, 48 * kKiB, {}, {n::kKml},
           "paravirtualized ops (conflicts with the KML patch)");
  AddNamed(db, n::kHighResTimers, SD::kKernel, OC::kBase, 28 * kKiB, {}, {}, "hrtimers");
  AddNamed(db, n::kPanicTimeout, SD::kKernel, OC::kBase, 2 * kKiB, {}, {},
           "panic behaviour: reboot timeout in seconds (0 = halt, <0 = immediate)");
  AddNamed(db, n::kPosixTimers, SD::kKernel, OC::kBase, 32 * kKiB, {}, {}, "POSIX timers");
  AddNamed(db, n::kMultiuser, SD::kInit, OC::kBase, 24 * kKiB, {}, {}, "uid/gid support");
  AddNamed(db, n::kSlub, SD::kMm, OC::kBase, 64 * kKiB, {}, {}, "SLUB allocator");
  AddNamed(db, n::kVsyscallEmulation, SD::kArch, OC::kBase, 8 * kKiB, {}, {},
           "vsyscall page (exports the KML call entry)");

  // Space/performance trade-off options (the -tiny variant disables these 9).
  AddNamed(db, n::kBaseFull, SD::kInit, OC::kBase, 50 * kKiB, {}, {},
           "full-size kernel data structures");
  AddNamed(db, n::kKallsyms, SD::kInit, OC::kBase, 90 * kKiB, {}, {}, "symbol table");
  AddNamed(db, n::kBug, SD::kInit, OC::kBase, 12 * kKiB, {}, {}, "BUG() support");
  AddNamed(db, n::kElfCore, SD::kInit, OC::kBase, 24 * kKiB, {}, {}, "core dumps");
  AddNamed(db, n::kSlubDebug, SD::kMm, OC::kBase, 40 * kKiB, {n::kSlub}, {}, "SLUB debugging");
  AddNamed(db, n::kVmEventCounters, SD::kMm, OC::kBase, 12 * kKiB, {}, {}, "vmstat counters");
  AddNamed(db, n::kDebugBugverbose, SD::kLib, OC::kBase, 8 * kKiB, {n::kBug}, {},
           "verbose BUG() reports");
  AddNamed(db, n::kPrintkTime, SD::kLib, OC::kBase, 4 * kKiB, {n::kPrintk}, {},
           "printk timestamps");
  AddNamed(db, n::kMagicSysrq, SD::kLib, OC::kBase, 16 * kKiB, {n::kTty}, {}, "magic SysRq");

  // ---- Outside the microVM config (ablations / patches). ----------------------
  AddNamed(db, n::kKml, SD::kArch, OC::kNotSelected, 36 * kKiB, {n::kVsyscallEmulation},
           {n::kParavirt}, "Kernel Mode Linux (out-of-tree patch)");
  AddNamed(db, n::kKpti, SD::kArch, OC::kNotSelected, 30 * kKiB, {}, {n::kKml},
           "kernel page-table isolation (Meltdown mitigation)");
  AddNamed(db, n::kPci, SD::kDrivers, OC::kNotSelected, 180 * kKiB, {}, {},
           "PCI bus support (Firecracker has no PCI)");
}

void AddFiller(OptionDb& db) {
  // Named counts per cell.
  auto named_in_cell = [&db](OptionClass cls, SourceDir dir) {
    size_t count = 0;
    for (const auto& o : db.options()) {
      if (o.option_class == cls && o.dir == dir) {
        ++count;
      }
    }
    return count;
  };

  // Selected cells (microVM config member options).
  for (const auto& cell : kSelectedCells) {
    size_t have = named_in_cell(cell.option_class, cell.dir);
    for (size_t i = have; i < static_cast<size_t>(cell.total); ++i) {
      OptionInfo info;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s_%04zu", cell.prefix, i);
      info.name = buf;
      info.dir = cell.dir;
      info.option_class = cell.option_class;
      info.builtin_size = cell.each;
      bool added = db.Add(std::move(info));
      assert(added && "filler option names are unique by construction");
      (void)added;
    }
  }

  // Unselected remainder: top each directory up to its Fig. 3 tree total.
  for (const auto& [dir, total] : kTreeTotals) {
    size_t have = db.CountInDir(dir);
    for (size_t i = have; i < static_cast<size_t>(total); ++i) {
      OptionInfo info;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "UNSEL_%s_%05zu", SourceDirName(dir), i);
      info.name = buf;
      info.dir = dir;
      info.option_class = OptionClass::kNotSelected;
      info.builtin_size = 10 * kKiB;
      bool added = db.Add(std::move(info));
      assert(added && "filler option names are unique by construction");
      (void)added;
    }
  }
}

OptionDb BuildLinux40() {
  OptionDb db;
  AddNamedOptions(db);
  AddFiller(db);
  return db;
}

}  // namespace

const OptionDb& OptionDb::Linux40() {
  static const OptionDb db = BuildLinux40();
  return db;
}

}  // namespace lupine::kconfig

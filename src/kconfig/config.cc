#include "src/kconfig/config.h"

namespace lupine::kconfig {

bool Config::IsEnabled(const std::string& option) const {
  auto it = values_.find(option);
  return it != values_.end() && it->second != "n";
}

std::string Config::GetValue(const std::string& option) const {
  auto it = values_.find(option);
  return it == values_.end() ? "" : it->second;
}

std::vector<std::string> Config::EnabledOptions() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, value] : values_) {
    if (value != "n") {
      out.push_back(name);
    }
  }
  return out;
}

std::vector<std::string> Config::Minus(const Config& other) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (value != "n" && !other.IsEnabled(name)) {
      out.push_back(name);
    }
  }
  return out;
}

void Config::UnionWith(const Config& other) {
  for (const auto& name : other.EnabledOptions()) {
    values_[name] = other.GetValue(name);
  }
}

}  // namespace lupine::kconfig

#include "src/kconfig/config.h"

#include <algorithm>

namespace lupine::kconfig {
namespace {

// Visits every set bit in ascending id order.
template <typename Fn>
void ForEachBit(const std::vector<uint64_t>& words, Fn&& fn) {
  for (size_t w = 0; w < words.size(); ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      int bit = __builtin_ctzll(word);
      fn(static_cast<OptionId>(w * 64 + bit));
      word &= word - 1;
    }
  }
}

}  // namespace

void Config::Disable(const std::string& option) {
  OptionId id = OptionInterner::Global().Find(option);
  if (id == kNoOption || !bits::Test(present_, id)) {
    return;
  }
  bits::Clear(present_, id);
  bits::Clear(enabled_, id);
  valued_.erase(id);
  ++value_generation_;
  --present_count_;
}

bool Config::IsEnabled(const std::string& option) const {
  OptionId id = OptionInterner::Global().Find(option);
  return id != kNoOption && IsEnabledId(id);
}

void Config::SetValue(const std::string& option, const std::string& value) {
  OptionId id = OptionInterner::Global().Intern(option);
  if (!bits::Test(present_, id)) {
    bits::Set(present_, id);
    ++present_count_;
  }
  if (value == "y") {
    valued_.erase(id);
  } else {
    valued_[id] = value;
  }
  ++value_generation_;
  if (value == "n") {
    bits::Clear(enabled_, id);
  } else {
    bits::Set(enabled_, id);
  }
}

std::string_view Config::GetValue(const std::string& option) const {
  OptionId id = OptionInterner::Global().Find(option);
  return id == kNoOption ? std::string_view() : ValueOfId(id);
}

void Config::EnableId(OptionId id) {
  if (!bits::Test(present_, id)) {
    bits::Set(present_, id);
    ++present_count_;
  }
  bits::Set(enabled_, id);
  valued_.erase(id);  // Enable overwrites any explicit value with "y".
  ++value_generation_;
}

std::string_view Config::ValueOfId(OptionId id) const {
  if (!bits::Test(present_, id)) {
    return {};
  }
  auto it = valued_.find(id);
  return it == valued_.end() ? std::string_view("y") : std::string_view(it->second);
}

std::vector<OptionId> Config::EnabledIds() const {
  std::vector<OptionId> out;
  out.reserve(present_count_);
  ForEachBit(enabled_, [&](OptionId id) { out.push_back(id); });
  return out;
}

std::vector<std::string> Config::EnabledOptions() const {
  const auto& interner = OptionInterner::Global();
  std::vector<std::string> out;
  out.reserve(present_count_);
  ForEachBit(enabled_, [&](OptionId id) { out.push_back(interner.NameOf(id)); });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Config::Minus(const Config& other) const {
  const auto& interner = OptionInterner::Global();
  std::vector<std::string> out;
  ForEachBit(enabled_, [&](OptionId id) {
    if (!other.IsEnabledId(id)) {
      out.push_back(interner.NameOf(id));
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

void Config::UnionWith(const Config& other) {
  ForEachBit(other.enabled_, [&](OptionId id) {
    if (!bits::Test(present_, id)) {
      bits::Set(present_, id);
      ++present_count_;
    }
    bits::Set(enabled_, id);
    auto it = other.valued_.find(id);
    if (it == other.valued_.end()) {
      valued_.erase(id);
    } else {
      valued_[id] = it->second;
    }
  });
  ++value_generation_;
}

bool Config::IsSubsetOf(const Config& other) const {
  if (compile_mode_ != other.compile_mode_ ||
      kml_patch_applied_ != other.kml_patch_applied_) {
    return false;
  }
  bool subset = true;
  ForEachBit(enabled_, [&](OptionId id) {
    if (!subset) {
      return;
    }
    if (!other.IsEnabledId(id) || ValueOfId(id) != other.ValueOfId(id)) {
      subset = false;
    }
  });
  return subset;
}

bool Config::operator==(const Config& other) const {
  return present_count_ == other.present_count_ && bits::Equal(present_, other.present_) &&
         valued_ == other.valued_;
}

}  // namespace lupine::kconfig

// A kernel configuration: the set of enabled options plus build knobs.
//
// Internally the option set is an id-indexed bitset over interned option
// names (see interning.h) plus a small side table for explicit values other
// than "y". The string-keyed API is a thin shim over the id-based one;
// membership tests and bulk enables on the build hot path are O(1) bit ops
// and copying a Config is a couple of small memcpys instead of a
// std::map<std::string, std::string> deep copy.
#ifndef SRC_KCONFIG_CONFIG_H_
#define SRC_KCONFIG_CONFIG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/kconfig/option_db.h"

namespace lupine::kconfig {

// Compiler optimization target (Lupine's -tiny uses -Os; everything else -O2).
enum class CompileMode { kO2, kOs };

class Config {
 public:
  Config() = default;
  explicit Config(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Bool options (string shim).
  void Enable(const std::string& option) {
    EnableId(OptionInterner::Global().Intern(option));
  }
  void Disable(const std::string& option);
  bool IsEnabled(const std::string& option) const;

  // Valued options (ints / strings); also marks the option enabled.
  void SetValue(const std::string& option, const std::string& value);
  // View into the stored value ("y" for plain-enabled options, "" when the
  // option is absent).
  //
  // LIFETIME: the view aliases the side-table entry. Any mutator that can
  // touch the side table (SetValue, Disable, EnableId/Enable, UnionWith)
  // invalidates it — rehashing or erasure frees the backing string. Copy
  // into a std::string before mutating, as DeriveFeatures does for
  // PANIC_TIMEOUT. value_generation() snapshots let debug builds assert a
  // view was not held across a mutation (see ValueViewGuard).
  std::string_view GetValue(const std::string& option) const;

  // Id-based hot path (used by Resolver, ImageBuilder, feature derivation).
  void EnableId(OptionId id);
  bool IsEnabledId(OptionId id) const { return bits::Test(enabled_, id); }
  std::string_view ValueOfId(OptionId id) const;
  // Enabled ids in ascending id order.
  std::vector<OptionId> EnabledIds() const;
  // Raw membership bitset of enabled (value != "n") options.
  const std::vector<uint64_t>& enabled_bits() const { return enabled_; }

  size_t EnabledCount() const { return present_count_; }
  // Enabled option names, sorted lexicographically.
  std::vector<std::string> EnabledOptions() const;

  CompileMode compile_mode() const { return compile_mode_; }
  void set_compile_mode(CompileMode mode) { compile_mode_ = mode; }

  // Whether the out-of-tree KML patch has been applied to the source tree.
  // The KERNEL_MODE_LINUX option is only legal to enable when this is set
  // (enforced by the Resolver).
  bool kml_patch_applied() const { return kml_patch_applied_; }
  void set_kml_patch_applied(bool applied) { kml_patch_applied_ = applied; }

  // Set algebra used by the configuration-diversity analysis (Fig. 5).
  // Options present in `this` but not in `other`, sorted lexicographically.
  std::vector<std::string> Minus(const Config& other) const;
  // Adds every option of `other` (values from `other` win on clash).
  void UnionWith(const Config& other);

  // True when a kernel built from `other` can serve this configuration:
  // every enabled option of `this` is enabled in `other` with an identical
  // value, and the build knobs (compile mode, KML patch) match. Used by the
  // cross-build batching mode to prove a per-app config against
  // lupine-general before substituting the shared kernel.
  bool IsSubsetOf(const Config& other) const;

  bool operator==(const Config& other) const;

  // Bumped by every mutation that can invalidate GetValue/ValueOfId views
  // (side-table writes, erasures, bulk unions). Debug-time detection of
  // use-after-mutation on the returned string_views.
  uint64_t value_generation() const { return value_generation_; }

 private:
  std::string name_;
  // present_: the option has an entry (any value, including "n").
  // enabled_: present and value != "n" — the set IsEnabled answers for.
  std::vector<uint64_t> present_;
  std::vector<uint64_t> enabled_;
  // Values other than the implicit "y", keyed by id (includes "n" entries).
  std::unordered_map<OptionId, std::string> valued_;
  size_t present_count_ = 0;
  CompileMode compile_mode_ = CompileMode::kO2;
  bool kml_patch_applied_ = false;
  uint64_t value_generation_ = 0;
};

// Asserts (in debug builds) that a Config was not mutated while a value view
// was live. Construct right after GetValue/ValueOfId; Check() fails once any
// side-table mutation happened on the watched Config.
class ValueViewGuard {
 public:
  explicit ValueViewGuard(const Config& config)
      : config_(&config), generation_(config.value_generation()) {}
  bool Check() const { return config_->value_generation() == generation_; }

 private:
  const Config* config_;
  uint64_t generation_;
};

}  // namespace lupine::kconfig

#endif  // SRC_KCONFIG_CONFIG_H_

// A kernel configuration: the set of enabled options plus build knobs.
#ifndef SRC_KCONFIG_CONFIG_H_
#define SRC_KCONFIG_CONFIG_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/kconfig/option_db.h"

namespace lupine::kconfig {

// Compiler optimization target (Lupine's -tiny uses -Os; everything else -O2).
enum class CompileMode { kO2, kOs };

class Config {
 public:
  Config() = default;
  explicit Config(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Bool options.
  void Enable(const std::string& option) { values_[option] = "y"; }
  void Disable(const std::string& option) { values_.erase(option); }
  bool IsEnabled(const std::string& option) const;

  // Valued options (ints / strings); also marks the option enabled.
  void SetValue(const std::string& option, const std::string& value) { values_[option] = value; }
  std::string GetValue(const std::string& option) const;

  size_t EnabledCount() const { return values_.size(); }
  std::vector<std::string> EnabledOptions() const;

  CompileMode compile_mode() const { return compile_mode_; }
  void set_compile_mode(CompileMode mode) { compile_mode_ = mode; }

  // Whether the out-of-tree KML patch has been applied to the source tree.
  // The KERNEL_MODE_LINUX option is only legal to enable when this is set
  // (enforced by the Resolver).
  bool kml_patch_applied() const { return kml_patch_applied_; }
  void set_kml_patch_applied(bool applied) { kml_patch_applied_ = applied; }

  // Set algebra used by the configuration-diversity analysis (Fig. 5).
  // Options present in `this` but not in `other`.
  std::vector<std::string> Minus(const Config& other) const;
  // Adds every option of `other` (values from `other` win on clash).
  void UnionWith(const Config& other);

  bool operator==(const Config& other) const { return values_ == other.values_; }

 private:
  std::string name_;
  std::map<std::string, std::string> values_;
  CompileMode compile_mode_ = CompileMode::kO2;
  bool kml_patch_applied_ = false;
};

}  // namespace lupine::kconfig

#endif  // SRC_KCONFIG_CONFIG_H_

// Process-wide interning of configuration option names.
//
// Every option name that enters the system (database registration, Config
// mutation, .config parsing) is mapped to a dense integer OptionId. The hot
// paths — Config membership tests, dependency resolution, image sizing —
// operate on these ids with bitsets and vectors instead of hashing
// std::string keys at every step. Ids are process-global (not per-database),
// so a Config never needs to know which OptionDb its names came from, and
// ids are never reused or freed.
#ifndef SRC_KCONFIG_INTERNING_H_
#define SRC_KCONFIG_INTERNING_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lupine::kconfig {

using OptionId = uint32_t;
inline constexpr OptionId kNoOption = 0xFFFFFFFFu;

// Thread-safe append-only string table. NameOf() references stay valid for
// the process lifetime (names live in a deque and are never removed).
class OptionInterner {
 public:
  static OptionInterner& Global();

  // Returns the id for `name`, assigning the next dense id on first sight.
  OptionId Intern(std::string_view name);

  // Returns the id for `name`, or kNoOption if it was never interned.
  // A name that was never interned cannot be present in any Config.
  OptionId Find(std::string_view name) const;

  // The name behind an id. The id must have been returned by Intern.
  const std::string& NameOf(OptionId id) const;

  size_t size() const;

 private:
  OptionInterner() = default;

  mutable std::shared_mutex mu_;
  std::deque<std::string> names_;                      // Stable references.
  std::unordered_map<std::string_view, OptionId> ids_; // Views into names_.
};

// Fixed-width bitset helpers shared by Config and the resolver (word = 64
// ids). Out-of-range ids read as 0; writes grow the vector.
namespace bits {

inline bool Test(const std::vector<uint64_t>& words, OptionId id) {
  size_t w = id >> 6;
  return w < words.size() && (words[w] >> (id & 63)) & 1;
}

inline void Set(std::vector<uint64_t>& words, OptionId id) {
  size_t w = id >> 6;
  if (w >= words.size()) {
    words.resize(w + 1, 0);
  }
  words[w] |= uint64_t{1} << (id & 63);
}

inline void Clear(std::vector<uint64_t>& words, OptionId id) {
  size_t w = id >> 6;
  if (w < words.size()) {
    words[w] &= ~(uint64_t{1} << (id & 63));
  }
}

inline bool Intersects(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) {
      return true;
    }
  }
  return false;
}

// Equality modulo trailing zero words.
inline bool Equal(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  const auto& shorter = a.size() <= b.size() ? a : b;
  const auto& longer = a.size() <= b.size() ? b : a;
  for (size_t i = 0; i < shorter.size(); ++i) {
    if (shorter[i] != longer[i]) {
      return false;
    }
  }
  for (size_t i = shorter.size(); i < longer.size(); ++i) {
    if (longer[i] != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace bits

}  // namespace lupine::kconfig

#endif  // SRC_KCONFIG_INTERNING_H_

#include "src/kconfig/kconfig_lang.h"

#include <sstream>

namespace lupine::kconfig {
namespace {

std::string Trim(const std::string& s) {
  size_t start = s.find_first_not_of(" \t");
  if (start == std::string::npos) {
    return "";
  }
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(start, end - start + 1);
}

bool ValidOptionName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (char c : name) {
    if (!(std::isupper(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

Status ParseError(int line, const std::string& message) {
  return Status(Err::kInval, "Kconfig:" + std::to_string(line) + ": " + message);
}

// Splits "A && B && C" into names; rejects "||" and parentheses.
Result<std::vector<std::string>> ParseDependsExpr(const std::string& expr, int line) {
  if (expr.find("||") != std::string::npos || expr.find('(') != std::string::npos ||
      expr.find('!') != std::string::npos) {
    return ParseError(line, "only conjunctive depends-on expressions are supported");
  }
  std::vector<std::string> names;
  size_t pos = 0;
  while (pos < expr.size()) {
    size_t amp = expr.find("&&", pos);
    std::string name = Trim(amp == std::string::npos ? expr.substr(pos)
                                                     : expr.substr(pos, amp - pos));
    if (!ValidOptionName(name)) {
      return ParseError(line, "bad option name in depends on: '" + name + "'");
    }
    names.push_back(name);
    if (amp == std::string::npos) {
      break;
    }
    pos = amp + 2;
  }
  return names;
}

}  // namespace

Result<size_t> ParseKconfig(const std::string& text, const KconfigParseOptions& options,
                            OptionDb& db) {
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  size_t added = 0;

  OptionInfo current;
  bool have_current = false;
  bool in_help = false;

  auto flush = [&]() -> Status {
    if (!have_current) {
      return Status::Ok();
    }
    if (!db.Add(current)) {
      return Status(Err::kExist, "duplicate option " + current.name);
    }
    ++added;
    current = OptionInfo();
    have_current = false;
    return Status::Ok();
  };

  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = Trim(raw);

    if (in_help) {
      // Help text continues while lines are indented (or blank).
      if (raw.empty() || raw[0] == ' ' || raw[0] == '\t') {
        if (!line.empty()) {
          if (!current.help.empty()) {
            current.help += " ";
          }
          current.help += line;
        }
        continue;
      }
      in_help = false;  // Falls through to normal parsing of this line.
    }

    if (line.empty() || line[0] == '#') {
      continue;
    }

    std::istringstream words(line);
    std::string keyword;
    words >> keyword;

    if (keyword == "config") {
      if (Status s = flush(); !s.ok()) {
        return s;
      }
      std::string name;
      words >> name;
      if (!ValidOptionName(name)) {
        return ParseError(lineno, "bad config name '" + name + "'");
      }
      current = OptionInfo();
      current.name = name;
      current.dir = options.dir;
      current.option_class = options.option_class;
      current.builtin_size = options.default_size;
      have_current = true;
      continue;
    }

    if (!have_current) {
      return ParseError(lineno, "'" + keyword + "' outside any config block");
    }

    if (keyword == "bool" || keyword == "tristate" || keyword == "int" ||
        keyword == "string") {
      current.type = keyword == "tristate" ? OptionType::kTristate
                     : keyword == "int"    ? OptionType::kInt
                     : keyword == "string" ? OptionType::kString
                                           : OptionType::kBool;
      // Optional quoted prompt becomes part of help if help is absent.
      std::string rest;
      std::getline(words, rest);
      rest = Trim(rest);
      if (rest.size() >= 2 && rest.front() == '"' && rest.back() == '"' &&
          current.help.empty()) {
        current.help = rest.substr(1, rest.size() - 2);
      }
    } else if (keyword == "depends") {
      std::string on;
      words >> on;
      if (on != "on") {
        return ParseError(lineno, "expected 'depends on'");
      }
      std::string expr;
      std::getline(words, expr);
      auto names = ParseDependsExpr(Trim(expr), lineno);
      if (!names.ok()) {
        return names.status();
      }
      for (auto& name : names.value()) {
        current.depends_on.push_back(std::move(name));
      }
    } else if (keyword == "select") {
      std::string name;
      words >> name;
      if (!ValidOptionName(name)) {
        return ParseError(lineno, "bad select target '" + name + "'");
      }
      current.selects.push_back(name);
    } else if (keyword == "conflicts") {
      std::string name;
      words >> name;
      if (!ValidOptionName(name)) {
        return ParseError(lineno, "bad conflicts target '" + name + "'");
      }
      current.conflicts.push_back(name);
    } else if (keyword == "help" || keyword == "---help---") {
      in_help = true;
      current.help.clear();
    } else if (keyword == "menu" || keyword == "endmenu" || keyword == "choice" ||
               keyword == "endchoice" || keyword == "default" || keyword == "source" ||
               keyword == "if" || keyword == "endif") {
      return ParseError(lineno, "unsupported Kconfig construct '" + keyword + "'");
    } else {
      return ParseError(lineno, "unknown keyword '" + keyword + "'");
    }
  }
  if (Status s = flush(); !s.ok()) {
    return s;
  }
  return added;
}

std::string ToKconfig(const OptionInfo& option) {
  std::ostringstream out;
  out << "config " << option.name << "\n";
  const char* type = option.type == OptionType::kTristate ? "tristate"
                     : option.type == OptionType::kInt    ? "int"
                     : option.type == OptionType::kString ? "string"
                                                          : "bool";
  out << "\t" << type;
  if (!option.help.empty()) {
    out << " \"" << option.help << "\"";
  }
  out << "\n";
  if (!option.depends_on.empty()) {
    out << "\tdepends on ";
    for (size_t i = 0; i < option.depends_on.size(); ++i) {
      out << (i ? " && " : "") << option.depends_on[i];
    }
    out << "\n";
  }
  for (const auto& sel : option.selects) {
    out << "\tselect " << sel << "\n";
  }
  for (const auto& conflict : option.conflicts) {
    out << "\tconflicts " << conflict << "\n";
  }
  return out.str();
}

}  // namespace lupine::kconfig

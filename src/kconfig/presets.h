// Canonical configurations from the paper.
//
//   * microVM      — Firecracker's general-purpose cloud config (833 options)
//   * lupine-base  — microVM minus the 550 unikernel-unnecessary options
//   * per-app sets — Table 3: the options each top-20 Docker Hub app needs
//                    beyond lupine-base
//   * lupine-general — lupine-base + the 19-option union of all app sets
//   * -tiny        — 9 space/performance options off, compiled -Os
//   * KML          — PARAVIRT swapped for KERNEL_MODE_LINUX (patch applied)
#ifndef SRC_KCONFIG_PRESETS_H_
#define SRC_KCONFIG_PRESETS_H_

#include <string>
#include <vector>

#include "src/kconfig/config.h"
#include "src/util/result.h"

namespace lupine::kconfig {

// Firecracker microVM configuration adapted to Linux 4.0.
Config MicrovmConfig();

// The 283-option application-agnostic Lupine base.
Config LupineBase();

// Top-20 Docker Hub applications in popularity order (Table 3).
const std::vector<std::string>& Top20AppNames();

// Per-application additions atop lupine-base (Table 3 rightmost column).
// Returns an empty vector for apps that need nothing (hello-world, golang,
// python, openjdk, php) and for unknown names.
const std::vector<std::string>& AppExtraOptions(const std::string& app);

// lupine-base plus `AppExtraOptions(app)`, dependency-resolved.
Result<Config> LupineForApp(const std::string& app);

// lupine-base plus the union of all 20 app sets (19 options).
Config LupineGeneral();

// The 9 options the -tiny variant flips for size, plus -Os.
const std::vector<std::string>& TinyDisabledOptions();
void ApplyTiny(Config& config);

// Applies the KML patch: marks the tree patched, drops PARAVIRT (the patch
// conflicts with it; Section 4.3) and enables KERNEL_MODE_LINUX.
Status ApplyKml(Config& config);

}  // namespace lupine::kconfig

#endif  // SRC_KCONFIG_PRESETS_H_
